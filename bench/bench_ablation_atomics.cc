// Section 6.3 ablation: NIC atomicity level. At IBV_ATOMIC_HCA (the
// paper's ConnectX-3) RDMA CAS is atomic only against RDMA CAS, so the
// fallback handler and read-only transactions must lock even *local*
// records through the NIC (14.5 us vs 0.08 us for processor CAS). The
// paper measures ~15% throughput loss when the fallback path is hot.
// A GLOB-level NIC (e.g. QLogic QLE) removes that cost.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/driver.h"
#include "src/workload/smallbank.h"

namespace {

using namespace drtm;

enum class Path {
  kNormal,        // SmallBank mix, HTM path
  kFallbackOnly,  // htm_retry_limit = 0: every txn runs 2PL
  kReadOnly,      // balance-only: RO txns lease two *local* records each
};

double Run(rdma::AtomicLevel level, Path path, uint64_t duration_ms) {
  txn::ClusterConfig config;
  config.num_nodes = 2;
  config.workers_per_node = 2;
  config.region_bytes = 24 << 20;
  // Closer-to-calibrated network so the 14.5 us vs 0.08 us CAS gap
  // (section 6.3) is visible through the simulation noise.
  config.latency = rdma::LatencyModel::Calibrated(0.5);
  config.atomic_level = level;
  if (path == Path::kFallbackOnly) {
    config.htm_retry_limit = 0;  // every transaction runs the 2PL fallback
  }
  txn::Cluster cluster(config);
  workload::SmallBankDb::Params params;
  params.accounts_per_node = 5000;
  params.hot_accounts_per_node = 100;
  params.cross_node_probability = 0.05;
  workload::SmallBankDb db(&cluster, params);
  cluster.Start();
  db.Load();
  workload::RunOptions run;
  run.nodes = 2;
  run.workers_per_node = 2;
  run.warmup_ms = 150;
  run.duration_ms = duration_ms;
  run.record_latency = false;
  const workload::RunResult result =
      workload::RunWorkers(&cluster, run, [&](txn::Worker& worker) {
        if (path == Path::kReadOnly) {
          return db.RunBalance(&worker) == txn::TxnStatus::kCommitted;
        }
        return db.RunMix(&worker).status == txn::TxnStatus::kCommitted;
      });
  cluster.Stop();
  return result.Throughput();
}

const char* Name(Path path) {
  switch (path) {
    case Path::kNormal:
      return "normal (HTM path)";
    case Path::kFallbackOnly:
      return "fallback-only";
    case Path::kReadOnly:
      return "read-only (BAL)";
  }
  return "?";
}

}  // namespace

int main() {
  const uint64_t duration_ms = benchutil::DurationMs(600);
  benchutil::Header("Ablation (sec 6.3)", "NIC atomicity level: HCA vs GLOB");
  benchutil::PaperNote(
      "HCA-level NICs force RDMA CAS (14.5 us) instead of processor CAS "
      "(0.08 us) for local records in the fallback handler and read-only "
      "transactions; the paper measures ~15%% slowdown with a hot fallback");

  std::printf("%-22s %12s %12s %10s\n", "path", "hca_tps", "glob_tps",
              "glob_gain");
  for (const Path path :
       {Path::kNormal, Path::kFallbackOnly, Path::kReadOnly}) {
    const double hca = Run(rdma::AtomicLevel::kHca, path, duration_ms);
    const double glob = Run(rdma::AtomicLevel::kGlob, path, duration_ms);
    std::printf("%-22s %12.0f %12.0f %9.1f%%\n", Name(path), hca, glob,
                (glob / hca - 1.0) * 100);
  }
  return 0;
}
