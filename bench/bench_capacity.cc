// HTM capacity stress: YCSB update transactions with value sizes swept
// toward the write-set line budget (htm::Config::max_write_lines x 64 B
// cache lines, ~32 KB by default). Once a value no longer fits, every
// HTM attempt aborts with kAbortCapacity deterministically — retrying is
// pure waste. Two mitigations are measured against the static baseline:
//   * the adaptive retry budget (ClusterConfig::adaptive_retry_budget),
//     which stops retrying a capacity-dominant mix and reaches the 2PL
//     fallback sooner;
//   * the chop planner (ClusterConfig::enable_chop_planner), which
//     slices the oversized write into a chain of budget-sized WriteRange
//     pieces that commit in HTM — flattening the capacity cliff instead
//     of falling back over it.
// The abort_causes series records the per-size cause breakdown
// (capacity / conflict / lock / lease / explicit) for both paths.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/workload/driver.h"
#include "src/workload/ycsb.h"

namespace {

using namespace drtm;

struct Outcome {
  double tps = 0;
  double capacity_abort_rate = 0;  // capacity aborts / HTM attempts
  double fallback_rate = 0;        // fallbacks / committed
  int64_t retry_budget = 0;        // txn.adaptive.retry_budget at the end
  txn::TxnStats txn_stats;
  stat::Snapshot stats;
};

Outcome Measure(uint32_t value_size, bool adaptive, bool chop,
                uint64_t duration_ms) {
  txn::ClusterConfig config;
  config.num_nodes = 2;
  config.workers_per_node = 2;
  config.region_bytes = size_t{96} << 20;
  config.latency = rdma::LatencyModel::Calibrated(0.1);
  config.adaptive_retry_budget = adaptive;
  config.enable_chop_planner = chop;
  txn::Cluster cluster(config);

  workload::YcsbDb::Params params;
  params.records_per_node = 1024;
  params.value_size = value_size;
  params.mix = workload::YcsbDb::Mix::kA;
  // Update-only: the line budget constrains writes, and 36 KB lease
  // reads cost the same everywhere — they would only dilute the sweep.
  params.update_fraction = 1.0;
  params.distribution = workload::YcsbDb::Distribution::kUniform;
  params.ops_per_txn = 1;
  workload::YcsbDb db(&cluster, params);
  cluster.Start();
  db.Load();

  workload::RunOptions run;
  run.nodes = config.num_nodes;
  run.workers_per_node = config.workers_per_node;
  run.warmup_ms = 100;
  run.duration_ms = duration_ms;
  run.record_latency = false;
  const workload::RunResult result = workload::RunWorkers(
      &cluster, run,
      [&](txn::Worker& worker) { return db.RunTxn(&worker).committed; });
  cluster.Stop();

  Outcome out;
  out.tps = result.Throughput();
  const uint64_t htm_attempts =
      result.htm_stats.commits + result.htm_stats.TotalAborts();
  out.capacity_abort_rate =
      htm_attempts > 0
          ? static_cast<double>(result.txn_stats.htm_capacity_aborts) /
                static_cast<double>(htm_attempts)
          : 0;
  out.fallback_rate =
      result.committed > 0
          ? static_cast<double>(result.txn_stats.fallbacks) /
                static_cast<double>(result.committed)
          : 0;
  out.retry_budget = result.stats_delta.Gauge("txn.adaptive.retry_budget");
  out.txn_stats = result.txn_stats;
  out.stats = result.stats_delta;
  return out;
}

void AddAbortCauses(stat::BenchReport::Series* series, uint32_t value_size,
                    const char* config, const Outcome& out) {
  benchutil::AddPoint(
      series,
      {{"value_bytes", std::to_string(value_size)}, {"config", config}},
      {{"capacity_aborts",
        static_cast<double>(out.txn_stats.htm_capacity_aborts)},
       {"conflict_aborts",
        static_cast<double>(out.txn_stats.htm_conflict_aborts)},
       {"lock_aborts", static_cast<double>(out.txn_stats.htm_lock_aborts)},
       {"lease_aborts", static_cast<double>(out.txn_stats.htm_lease_aborts)},
       {"explicit_aborts", static_cast<double>(out.txn_stats.user_aborts)},
       {"fallbacks", static_cast<double>(out.txn_stats.fallbacks)}});
}

}  // namespace

int main() {
  const uint64_t duration_ms = benchutil::DurationMs(500);
  benchutil::Header("capacity", "YCSB-A vs HTM write-set capacity");
  benchutil::PaperNote(
      "values past the write-line budget (512 lines x 64 B) abort every "
      "HTM attempt; the adaptive budget stops retrying them and the chop "
      "planner slices them into chains that commit in HTM");

  // The write-set budget in bytes, from the default htm::Config.
  const htm::Config htm_defaults;
  const size_t budget_bytes = htm_defaults.max_write_lines * 64;
  const std::vector<uint32_t> value_sizes =
      benchutil::Quick()
          ? std::vector<uint32_t>{4096, static_cast<uint32_t>(budget_bytes +
                                                              4096)}
          : std::vector<uint32_t>{1024, 8192,
                                  static_cast<uint32_t>(budget_bytes / 2),
                                  static_cast<uint32_t>(budget_bytes - 4096),
                                  static_cast<uint32_t>(budget_bytes + 4096),
                                  static_cast<uint32_t>(budget_bytes + 16384)};

  stat::BenchReport report;
  report.bench = "capacity_ycsb";
  report.title = "YCSB-A vs HTM write-set capacity";
  report.AddConfig("duration_ms", std::to_string(duration_ms));
  report.AddConfig("write_budget_bytes", std::to_string(budget_bytes));
  report.AddConfig("quick", benchutil::Quick() ? "1" : "0");
  stat::BenchReport::Series& chopped_series = report.AddSeries("chopped");
  stat::BenchReport::Series& adaptive_series = report.AddSeries("adaptive");
  stat::BenchReport::Series& static_series = report.AddSeries("static");
  stat::BenchReport::Series& abort_series = report.AddSeries("abort_causes");

  std::printf("%-12s %12s %12s %12s %10s %10s %8s\n", "value_bytes",
              "chop_tps", "adapt_tps", "static_tps", "cap_abort", "fallback",
              "budget");
  for (const uint32_t value_size : value_sizes) {
    const Outcome chopped = Measure(value_size, true, true, duration_ms);
    const Outcome adaptive = Measure(value_size, true, false, duration_ms);
    const Outcome fixed = Measure(value_size, false, false, duration_ms);
    std::printf("%-12u %12.0f %12.0f %12.0f %9.1f%% %9.2f %8lld\n", value_size,
                chopped.tps, adaptive.tps, fixed.tps,
                chopped.capacity_abort_rate * 100, chopped.fallback_rate,
                static_cast<long long>(adaptive.retry_budget));
    benchutil::AddPoint(
        &chopped_series, {{"value_bytes", std::to_string(value_size)}},
        {{"tps", chopped.tps},
         {"capacity_abort_rate", chopped.capacity_abort_rate},
         {"fallback_rate", chopped.fallback_rate}});
    benchutil::AddPoint(
        &adaptive_series, {{"value_bytes", std::to_string(value_size)}},
        {{"tps", adaptive.tps},
         {"capacity_abort_rate", adaptive.capacity_abort_rate},
         {"fallback_rate", adaptive.fallback_rate},
         {"retry_budget", static_cast<double>(adaptive.retry_budget)}});
    benchutil::AddPoint(
        &static_series, {{"value_bytes", std::to_string(value_size)}},
        {{"tps", fixed.tps},
         {"capacity_abort_rate", fixed.capacity_abort_rate},
         {"fallback_rate", fixed.fallback_rate}});
    AddAbortCauses(&abort_series, value_size, "chopped", chopped);
    AddAbortCauses(&abort_series, value_size, "monolithic", adaptive);
    report.stats.Merge(chopped.stats);
  }

  report.WriteJsonFile();
  return 0;
}
