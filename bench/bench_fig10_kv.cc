// Figure 10: the DrTM-KV evaluation.
//  (a) one-sided RDMA READ throughput vs payload size;
//  (b) remote GET throughput vs value size for Pilaf, FaRM-KV/I,
//      FaRM-KV/O, DrTM-KV and DrTM-KV/$ (location cache);
//  (c) latency vs throughput at 64-byte values (client-thread sweep);
//  (d) DrTM-KV/$ throughput vs cache size, cold vs warm, uniform vs
//      Zipf(0.99).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/histogram.h"
#include "src/common/rand.h"
#include "src/common/zipf.h"
#include "src/rdma/fabric.h"
#include "src/store/cluster_hash.h"
#include "src/store/farm_hopscotch.h"
#include "src/store/location_cache.h"
#include "src/store/pilaf_cuckoo.h"
#include "src/store/remote_kv.h"

namespace {

using namespace drtm;

constexpr uint64_t kKeys = 50000;
constexpr double kLatencyScale = 0.25;  // calibrated model, shrunk for host

std::unique_ptr<rdma::Fabric> MakeFabric() {
  rdma::Fabric::Config config;
  config.num_nodes = 2;
  config.region_bytes = size_t{512} << 20;
  config.latency = rdma::LatencyModel::Calibrated(kLatencyScale);
  return std::make_unique<rdma::Fabric>(config);
}

struct KeyPicker {
  bool zipf_dist;
  std::unique_ptr<ZipfGenerator> zipf;
  Xoshiro256 rng;

  explicit KeyPicker(bool z, uint64_t seed)
      : zipf_dist(z),
        zipf(z ? std::make_unique<ZipfGenerator>(kKeys, 0.99, seed) : nullptr),
        rng(seed) {}
  uint64_t Next() {
    return zipf_dist ? zipf->Next() : rng.NextBounded(kKeys);
  }
};

// --- (a) raw READ throughput -------------------------------------------------

void PartA(uint64_t duration_ms, stat::BenchReport* report) {
  benchutil::Header("Fig 10(a)", "one-sided RDMA READ throughput vs payload");
  benchutil::PaperNote(
      "throughput decays with payload; ~26.3 Mops for small payloads on 40 "
      "client threads");
  auto fabric = MakeFabric();
  // Independent target regions per client (parallel NIC streams).
  const uint64_t offs[2] = {fabric->memory(1).Allocate(1 << 20),
                            fabric->memory(1).Allocate(1 << 20)};
  std::printf("%-10s %12s\n", "payload_B", "ops_per_sec");
  stat::BenchReport::Series& series = report->AddSeries("raw_read_tput");
  for (const size_t payload : {16u, 64u, 256u, 1024u, 4096u}) {
    std::vector<std::vector<uint8_t>> bufs(2,
                                           std::vector<uint8_t>(payload));
    const double ops = benchutil::MeasureOpsPerSec(
        2, duration_ms, [&](int t) {
          fabric->Read(1, offs[t], bufs[static_cast<size_t>(t)].data(),
                       payload);
        });
    std::printf("%-10zu %12.0f\n", payload, ops);
    benchutil::AddPoint(&series, {{"payload_B", std::to_string(payload)}},
                        {{"ops_per_sec", ops}});
  }
}

// --- (b)/(c)/(d) GET throughput ----------------------------------------------

enum class System { kPilaf, kFarmInline, kFarmOffset, kDrtm, kDrtmCached };

const char* Name(System system) {
  switch (system) {
    case System::kPilaf:
      return "pilaf";
    case System::kFarmInline:
      return "farm-kv/I";
    case System::kFarmOffset:
      return "farm-kv/O";
    case System::kDrtm:
      return "drtm-kv";
    case System::kDrtmCached:
      return "drtm-kv/$";
  }
  return "?";
}

struct Stores {
  std::unique_ptr<rdma::Fabric> fabric;
  std::unique_ptr<store::PilafCuckooTable> pilaf;
  std::unique_ptr<store::FarmHopscotchTable> farm_inline;
  std::unique_ptr<store::FarmHopscotchTable> farm_offset;
  std::unique_ptr<store::ClusterHashTable> drtm;
};

Stores BuildStores(uint32_t value_size) {
  Stores stores;
  stores.fabric = MakeFabric();
  std::vector<uint8_t> value(value_size, 0x5a);

  store::PilafCuckooTable::Config pilaf_config;
  pilaf_config.buckets = 1 << 16;  // ~76% occupancy, like the paper's runs
  pilaf_config.capacity = kKeys + 16;
  pilaf_config.value_size = value_size;
  stores.pilaf = std::make_unique<store::PilafCuckooTable>(
      &stores.fabric->memory(1), pilaf_config);

  store::FarmHopscotchTable::Config farm_config;
  farm_config.buckets = 1 << 17;
  farm_config.value_size = value_size;
  farm_config.mode = store::FarmHopscotchTable::Mode::kInlineValue;
  stores.farm_inline = std::make_unique<store::FarmHopscotchTable>(
      &stores.fabric->memory(1), farm_config);
  farm_config.mode = store::FarmHopscotchTable::Mode::kOffsetValue;
  stores.farm_offset = std::make_unique<store::FarmHopscotchTable>(
      &stores.fabric->memory(1), farm_config);

  store::ClusterHashTable::Config drtm_config;
  drtm_config.main_buckets = 1 << 14;
  drtm_config.indirect_buckets = 1 << 13;
  drtm_config.capacity = kKeys + 64;
  drtm_config.value_size = value_size;
  stores.drtm = std::make_unique<store::ClusterHashTable>(
      &stores.fabric->memory(1), drtm_config);

  for (uint64_t k = 0; k < kKeys; ++k) {
    stores.pilaf->Insert(k, value.data());
    stores.farm_inline->Insert(k, value.data());
    stores.farm_offset->Insert(k, value.data());
    stores.drtm->Insert(k, value.data());
  }
  return stores;
}

struct GetResult {
  double ops_per_sec;
  double mean_latency_us;
};

GetResult MeasureGets(Stores& stores, System system, uint32_t value_size,
                      int threads, uint64_t duration_ms, bool zipf_dist,
                      store::LocationCache* cache) {
  std::vector<KeyPicker> pickers;
  std::vector<std::unique_ptr<store::RemoteKv>> clients;
  for (int t = 0; t < threads; ++t) {
    pickers.emplace_back(zipf_dist, 100 + static_cast<uint64_t>(t));
    clients.push_back(std::make_unique<store::RemoteKv>(
        stores.fabric.get(), 1, stores.drtm->geometry(),
        (system == System::kDrtmCached) ? cache : nullptr));
  }
  std::vector<std::vector<uint8_t>> outs(
      static_cast<size_t>(threads), std::vector<uint8_t>(value_size));
  std::vector<Histogram> latencies(static_cast<size_t>(threads));
  const double ops = benchutil::MeasureOpsPerSec(
      threads, duration_ms, [&](int t) {
        const uint64_t key = pickers[static_cast<size_t>(t)].Next();
        uint8_t* out = outs[static_cast<size_t>(t)].data();
        const uint64_t begin = MonotonicNanos();
        int reads = 0;
        switch (system) {
          case System::kPilaf:
            stores.pilaf->RemoteGet(stores.fabric.get(), 1, key, out, &reads);
            break;
          case System::kFarmInline:
            stores.farm_inline->RemoteGet(stores.fabric.get(), 1, key, out,
                                          &reads);
            break;
          case System::kFarmOffset:
            stores.farm_offset->RemoteGet(stores.fabric.get(), 1, key, out,
                                          &reads);
            break;
          case System::kDrtm:
          case System::kDrtmCached:
            clients[static_cast<size_t>(t)]->Get(key, out);
            break;
        }
        latencies[static_cast<size_t>(t)].Record(
            (MonotonicNanos() - begin) / 1000);
      });
  Histogram merged;
  for (const Histogram& h : latencies) {
    merged.Merge(h);
  }
  return GetResult{ops, merged.Mean()};
}

void PartB(uint64_t duration_ms, stat::BenchReport* report) {
  benchutil::Header("Fig 10(b)", "GET throughput vs value size (uniform)");
  benchutil::PaperNote(
      "farm-kv/I wins only at small values (single READ, amplified size); "
      "drtm-kv/$ best overall (2.09x farm-kv/O, 2.74x pilaf at 128 B)");
  const std::vector<uint32_t> sizes =
      benchutil::Quick() ? std::vector<uint32_t>{64, 512}
                         : std::vector<uint32_t>{16, 64, 128, 256, 512, 1024};
  std::printf("%-8s %10s %12s %12s %10s %12s\n", "value_B", "pilaf",
              "farm-kv/I", "farm-kv/O", "drtm-kv", "drtm-kv/$");
  stat::BenchReport::Series& series = report->AddSeries("get_tput_vs_value");
  for (const uint32_t size : sizes) {
    Stores stores = BuildStores(size);
    store::LocationCache cache(store::LocationCache::BudgetFromEnv(8 << 20));
    double results[5];
    for (const System system :
         {System::kPilaf, System::kFarmInline, System::kFarmOffset,
          System::kDrtm, System::kDrtmCached}) {
      results[static_cast<int>(system)] =
          MeasureGets(stores, system, size, 2, duration_ms, false, &cache)
              .ops_per_sec;
      benchutil::AddPoint(&series,
                          {{"value_B", std::to_string(size)},
                           {"system", Name(system)}},
                          {{"ops_per_sec", results[static_cast<int>(system)]}});
    }
    std::printf("%-8u %10.0f %12.0f %12.0f %10.0f %12.0f\n", size, results[0],
                results[1], results[2], results[3], results[4]);
  }
}

void PartC(uint64_t duration_ms, stat::BenchReport* report) {
  benchutil::Header("Fig 10(c)", "latency vs throughput at 64 B values");
  benchutil::PaperNote(
      "farm-kv/I: lowest latency, poorest peak; drtm-kv ~ farm-kv/O; "
      "drtm-kv/$ both lowest latency and highest throughput");
  Stores stores = BuildStores(64);
  std::printf("%-10s %8s %12s %12s\n", "system", "threads", "ops_per_sec",
              "mean_us");
  const std::vector<int> thread_counts =
      benchutil::Quick() ? std::vector<int>{2} : std::vector<int>{1, 2, 4};
  stat::BenchReport::Series& series = report->AddSeries("latency_vs_tput");
  for (const System system :
       {System::kPilaf, System::kFarmInline, System::kFarmOffset,
        System::kDrtm, System::kDrtmCached}) {
    store::LocationCache cache(store::LocationCache::BudgetFromEnv(8 << 20));
    for (const int threads : thread_counts) {
      const GetResult result =
          MeasureGets(stores, system, 64, threads, duration_ms, false, &cache);
      std::printf("%-10s %8d %12.0f %12.1f\n", Name(system), threads,
                  result.ops_per_sec, result.mean_latency_us);
      benchutil::AddPoint(&series,
                          {{"system", Name(system)},
                           {"threads", std::to_string(threads)}},
                          {{"ops_per_sec", result.ops_per_sec},
                           {"mean_us", result.mean_latency_us}});
    }
  }
}

void PartD(uint64_t duration_ms, stat::BenchReport* report) {
  benchutil::Header("Fig 10(d)", "DrTM-KV/$ throughput vs cache size");
  benchutil::PaperNote(
      "a full-location cache reaches raw-READ throughput; skewed workloads "
      "tolerate small caches (20 MB of 320 MB still 19.1 of 25.1 Mops); "
      "uniform drops fast; cold ~ warm thanks to whole-bucket fetches");
  Stores stores = BuildStores(64);
  // Full location footprint here: main+indirect buckets * 144 B/frame.
  const size_t full = (1 << 14) * 2 * (sizeof(store::Bucket) + 16);
  std::printf("%-10s %12s %10s %12s\n", "cache", "dist", "state",
              "ops_per_sec");
  const std::vector<size_t> cache_sizes =
      benchutil::Quick()
          ? std::vector<size_t>{full / 16, full}
          : std::vector<size_t>{full / 64, full / 16, full / 4, full};
  stat::BenchReport::Series& series = report->AddSeries("cache_sweep");
  for (const bool zipf_dist : {false, true}) {
    for (const size_t cache_bytes : cache_sizes) {
      for (const bool warm : {false, true}) {
        store::LocationCache cache(cache_bytes);
        if (warm) {
          // 10-second warmup in the paper; here: one full pass.
          store::RemoteKv warmer(stores.fabric.get(), 1,
                                 stores.drtm->geometry(), &cache);
          std::vector<uint8_t> out(64);
          KeyPicker picker(zipf_dist, 55);
          for (uint64_t i = 0; i < kKeys; ++i) {
            warmer.Get(picker.Next(), out.data());
          }
        }
        const GetResult result = MeasureGets(stores, System::kDrtmCached, 64,
                                             2, duration_ms, zipf_dist,
                                             &cache);
        std::printf("%-10zu %12s %10s %12.0f\n", cache_bytes,
                    zipf_dist ? "zipf" : "uniform", warm ? "warm" : "cold",
                    result.ops_per_sec);
        benchutil::AddPoint(&series,
                            {{"cache_bytes", std::to_string(cache_bytes)},
                             {"dist", zipf_dist ? "zipf" : "uniform"},
                             {"state", warm ? "warm" : "cold"}},
                            {{"ops_per_sec", result.ops_per_sec}});
      }
    }
  }
}

// --- (e) chain-walk cost: scalar vs hint-pipelined ---------------------------

void PartE(stat::BenchReport* report) {
  benchutil::Header("Fig 10(e)",
                    "bucket-chain walk cost: doorbells per lookup");
  benchutil::PaperNote(
      "chain-shape hints let a revalidation walk post the whole predicted "
      "chain as one doorbell batch instead of one round trip per hop");
  auto fabric = MakeFabric();
  // Deliberately chain-heavy: ~3 entries per main-bucket slot force
  // multi-hop walks, the case doorbell batching targets.
  const uint64_t keys = benchutil::Quick() ? 3000 : 10000;
  store::ClusterHashTable::Config config;
  config.main_buckets = benchutil::Quick() ? (1 << 7) : (1 << 9);
  config.indirect_buckets = 1 << 10;
  config.capacity = 1 << 14;
  config.value_size = 64;
  store::ClusterHashTable table(&fabric->memory(1), config);
  std::vector<uint8_t> value(64, 0x5a);
  for (uint64_t k = 0; k < keys; ++k) {
    table.Insert(k, value.data());
  }
  std::printf("%-14s %18s %22s\n", "walk", "reads_per_lookup",
              "doorbells_per_lookup");
  stat::BenchReport::Series& series = report->AddSeries("lookup_cost");
  const auto add = [&](const char* walk, double reads, double doorbells) {
    std::printf("%-14s %18.2f %22.2f\n", walk, reads, doorbells);
    benchutil::AddPoint(&series, {{"walk", walk}},
                        {{"reads_per_lookup", reads},
                         {"doorbells_per_lookup", doorbells}});
  };

  // Scalar walk: no hints, so every hop is its own doorbell.
  {
    store::RemoteKv client(fabric.get(), 1, table.geometry());
    uint64_t reads = 0;
    uint64_t doorbells = 0;
    for (uint64_t k = 0; k < keys; ++k) {
      const store::RemoteEntryRef ref = client.Lookup(k);
      reads += static_cast<uint64_t>(ref.rdma_reads);
      doorbells += static_cast<uint64_t>(ref.rdma_doorbells);
    }
    add("uncached", double(reads) / double(keys),
        double(doorbells) / double(keys));
  }

  // Revalidation walk: the cache knows every chain's shape but each
  // content snapshot has been dropped (what an incarnation miss does).
  // The walk refetches every hop, pipelined into one doorbell.
  {
    store::LocationCache cache(store::LocationCache::BudgetFromEnv(8 << 20));
    store::RemoteKv client(fabric.get(), 1, table.geometry(), &cache);
    std::vector<uint8_t> out(64);
    for (uint64_t k = 0; k < keys; ++k) {
      client.Get(k, out.data());
    }
    uint64_t reads = 0;
    uint64_t doorbells = 0;
    for (uint64_t k = 0; k < keys; ++k) {
      uint64_t cur = table.geometry().MainBucketOffset(k);
      while (cur != store::kInvalidOffset) {
        cache.Invalidate(cur);
        uint64_t next = store::kInvalidOffset;
        if (!cache.NextHint(cur, &next)) {
          break;
        }
        cur = next;
      }
      const store::RemoteEntryRef ref = client.Lookup(k);
      reads += static_cast<uint64_t>(ref.rdma_reads);
      doorbells += static_cast<uint64_t>(ref.rdma_doorbells);
    }
    add("revalidation", double(reads) / double(keys),
        double(doorbells) / double(keys));
  }
}

}  // namespace

int main() {
  const uint64_t duration_ms = benchutil::DurationMs(300);
  const stat::Snapshot window = benchutil::BeginReportWindow();
  stat::BenchReport report;
  report.bench = "fig10_kv";
  report.title = "DrTM-KV evaluation (raw READ, GET sweeps, location cache)";
  report.AddConfig("duration_ms", std::to_string(duration_ms));
  report.AddConfig("latency_scale", std::to_string(kLatencyScale));
  report.AddConfig("keys", std::to_string(kKeys));
  report.AddConfig("quick", benchutil::Quick() ? "1" : "0");
  PartA(duration_ms, &report);
  PartB(duration_ms, &report);
  PartC(duration_ms, &report);
  PartD(duration_ms, &report);
  PartE(&report);
  benchutil::FinishReport(&report, window);
  return 0;
}
