// Figure 11 (ablation): softtime acquisition strategies.
//
// DrTM's timer thread publishes softtime; a transaction that reads the
// softtime word *transactionally* conflicts with the timer. Strategy (b)
// reads it in every local operation; DrTM's default (c) reuses the
// Start-phase value and reads softtime transactionally only for the
// lease confirmation right before commit. The ablation drives a
// lease-heavy workload (remote readers keep local records leased, so
// local writers must check lease expiry) and reports throughput and HTM
// abort rates across softtime update intervals.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/workload/driver.h"

namespace {

using namespace drtm;

struct Outcome {
  double tps;
  double htm_abort_rate;
};

Outcome Run(bool read_every_op, uint64_t interval_us, uint64_t duration_ms) {
  txn::ClusterConfig config;
  config.num_nodes = 2;
  config.workers_per_node = 2;
  config.region_bytes = 24 << 20;
  config.latency = rdma::LatencyModel::Calibrated(0.05);
  config.softtime_read_every_local_op = read_every_op;
  config.softtime_interval_us = interval_us;
  config.delta_us = interval_us + 100;
  config.lease_rw_us = 8000;
  txn::Cluster cluster(config);
  txn::TableSpec spec;
  spec.value_size = 8;
  spec.capacity = 1 << 12;
  spec.partition = [](uint64_t key) { return static_cast<int>(key >> 32); };
  const int table = cluster.AddTable(spec);
  cluster.Start();
  for (int node = 0; node < 2; ++node) {
    for (uint64_t i = 0; i < 64; ++i) {
      const uint64_t v = 0;
      cluster.hash_table(node, table)->Insert(
          (static_cast<uint64_t>(node) << 32) | i, &v);
    }
  }
  workload::RunOptions run;
  run.nodes = 2;
  run.workers_per_node = 2;
  run.warmup_ms = 100;
  run.duration_ms = duration_ms;
  run.record_latency = false;
  const workload::RunResult result =
      workload::RunWorkers(&cluster, run, [&](txn::Worker& worker) {
        Xoshiro256& rng = worker.rng();
        // Half the workers read remote hot records (installing leases on
        // the peer's records); the other half write local hot records
        // (whose lease checks consult softtime).
        if (worker.worker_id() == 0) {
          const int peer = 1 - worker.node();
          txn::Transaction txn(&worker);
          const uint64_t key =
              (static_cast<uint64_t>(peer) << 32) | rng.NextBounded(64);
          txn.AddRead(table, key);
          return txn.Run([&](txn::Transaction& t) {
            uint64_t v;
            return t.Read(table, key, &v);
          }) == txn::TxnStatus::kCommitted;
        }
        txn::Transaction txn(&worker);
        const uint64_t key = (static_cast<uint64_t>(worker.node()) << 32) |
                             rng.NextBounded(64);
        txn.AddWrite(table, key);
        return txn.Run([&](txn::Transaction& t) {
          uint64_t v;
          if (!t.Read(table, key, &v)) {
            return false;
          }
          ++v;
          return t.Write(table, key, &v);
        }) == txn::TxnStatus::kCommitted;
      });
  cluster.Stop();
  const uint64_t attempts =
      result.htm_stats.commits + result.htm_stats.TotalAborts();
  return Outcome{result.Throughput(),
                 attempts > 0 ? static_cast<double>(
                                    result.htm_stats.TotalAborts()) /
                                    static_cast<double>(attempts)
                              : 0};
}

}  // namespace

int main() {
  const uint64_t duration_ms = benchutil::DurationMs(500);
  benchutil::Header("Fig 11 (ablation)", "softtime strategy vs false aborts");
  benchutil::PaperNote(
      "reading softtime transactionally in every local op (b) widens the "
      "conflict window with the timer; DrTM (c) reuses the Start value and "
      "reads fresh softtime only at lease confirmation");

  std::printf("%-22s %12s %10s %12s\n", "strategy", "interval_us", "tps",
              "htm_aborts");
  const std::vector<uint64_t> intervals =
      benchutil::Quick() ? std::vector<uint64_t>{100}
                         : std::vector<uint64_t>{50, 200, 1000};
  for (const uint64_t interval : intervals) {
    const Outcome every = Run(true, interval, duration_ms);
    const Outcome confirm = Run(false, interval, duration_ms);
    std::printf("%-22s %12llu %10.0f %11.2f%%\n", "(b) every local op",
                static_cast<unsigned long long>(interval), every.tps,
                every.htm_abort_rate * 100);
    std::printf("%-22s %12llu %10.0f %11.2f%%\n", "(c) confirm only",
                static_cast<unsigned long long>(interval), confirm.tps,
                confirm.htm_abort_rate * 100);
  }
  return 0;
}
