// Figure 12: TPC-C new-order and standard-mix throughput vs number of
// machines, DrTM against the Calvin baseline.
//
// Constant-resources adaptation (see tpcc_bench_common.h): a fixed pool
// of worker threads is spread over 1..6 logical machines, so the curve
// isolates the protocol's distribution cost rather than the host's core
// count. The paper's claims reproduced here: DrTM sustains throughput as
// machines (and hence distributed transactions) are added, and
// outperforms Calvin by well over an order of magnitude (17.9x-21.9x).
#include <cstdio>
#include <vector>

#include "bench/calvin_tpcc_common.h"
#include "bench/tpcc_bench_common.h"

int main() {
  using namespace drtm;
  const uint64_t duration_ms = benchutil::DurationMs(800);
  benchutil::Header("Fig 12", "TPC-C throughput vs machines: DrTM vs Calvin");
  benchutil::PaperNote(
      "6 machines: DrTM 1.65M new-order/s, 3.67M mix/s; DrTM >= 17.9x "
      "Calvin (up to 21.9x); Calvin on 100 machines < 500k mix/s");

  constexpr int kTotalWorkers = 8;
  const std::vector<int> machine_counts =
      benchutil::Quick() ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};

  std::printf("%-9s %14s %14s %14s %10s\n", "machines", "drtm_neworder",
              "drtm_mix_tps", "calvin_tps", "speedup");
  for (const int machines : machine_counts) {
    benchutil::TpccOptions options;
    options.nodes = machines;
    options.workers_per_node = kTotalWorkers / machines;
    options.warehouses_per_node = kTotalWorkers / machines;
    options.duration_ms = duration_ms;
    const benchutil::TpccOutcome drtm = benchutil::RunTpcc(options);

    benchutil::CalvinTpccOptions calvin;
    calvin.nodes = machines;
    calvin.workers_per_node = 2;
    calvin.warehouses_per_node = kTotalWorkers / machines;
    calvin.clients = kTotalWorkers;
    calvin.duration_ms = duration_ms;
    const double calvin_tps = RunCalvinTpccNewOrder(calvin);

    std::printf("%-9d %14.0f %14.0f %14.0f %9.1fx%s\n", machines,
                drtm.neworder_tps, drtm.mix_tps, calvin_tps,
                calvin_tps > 0 ? drtm.mix_tps / calvin_tps : 0.0,
                drtm.consistent ? "" : "  (CONSISTENCY FAIL)");
  }
  return 0;
}
