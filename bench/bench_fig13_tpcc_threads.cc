// Figure 13: TPC-C throughput vs worker threads per machine, including
// the DrTM(S) configuration (two logical nodes per machine, which the
// paper uses to sidestep the non-NUMA-friendly B+ tree) and a Calvin
// point at its hard-coded 8 threads.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/calvin_tpcc_common.h"
#include "bench/tpcc_bench_common.h"
#include "src/replay/recorder.h"

int main() {
  using namespace drtm;
  const uint64_t duration_ms = benchutil::DurationMs(800);
  benchutil::Header("Fig 13", "TPC-C throughput vs threads per machine");
  benchutil::PaperNote(
      "DrTM scales to 8 threads (5.56x); beyond a socket the B+ tree "
      "degrades; DrTM(S) with 2 logical nodes reaches 8.29x at 16 threads; "
      "Calvin runs only at 8 threads, far below");

  constexpr int kMachines = 2;
  const std::vector<int> thread_counts =
      benchutil::Quick() ? std::vector<int>{1, 4}
                         : std::vector<int>{1, 2, 4, 8};

  stat::RegisterStandardPhaseTimers();
  stat::BenchReport report;
  report.bench = "fig13_tpcc_threads";
  report.title = "TPC-C throughput vs threads per machine";
  report.AddConfig("machines", std::to_string(kMachines));
  report.AddConfig("duration_ms", std::to_string(duration_ms));
  report.AddConfig("quick", benchutil::Quick() ? "1" : "0");
  stat::BenchReport::Series& mix_series = report.AddSeries("drtm_mix");
  stat::BenchReport::Series& abort_series = report.AddSeries("abort_causes");

  std::printf("%-9s %14s %14s %10s\n", "threads", "drtm_neworder",
              "drtm_mix_tps", "speedup");
  double base_mix = 0;
  for (const int threads : thread_counts) {
    benchutil::TpccOptions options;
    options.nodes = kMachines;
    options.workers_per_node = threads;
    options.warehouses_per_node = 4;
    options.duration_ms = duration_ms;
    const benchutil::TpccOutcome drtm = benchutil::RunTpcc(options);
    if (base_mix == 0) {
      base_mix = drtm.mix_tps;
    }
    std::printf("%-9d %14.0f %14.0f %9.2fx%s\n", threads, drtm.neworder_tps,
                drtm.mix_tps, drtm.mix_tps / base_mix,
                drtm.consistent ? "" : "  (CONSISTENCY FAIL)");
    benchutil::AddPoint(&mix_series, {{"threads", std::to_string(threads)}},
                        {{"mix_tps", drtm.mix_tps},
                         {"neworder_tps", drtm.neworder_tps},
                         {"speedup", drtm.mix_tps / base_mix},
                         {"fallback_rate", drtm.fallback_rate},
                         {"consistent", drtm.consistent ? 1.0 : 0.0}});
    // Abort-cause breakdown per thread count (ROADMAP: abort-mix
    // measurement) — what drives the scaling losses at each point.
    const txn::TxnStats& ts = drtm.result.txn_stats;
    benchutil::AddPoint(
        &abort_series, {{"threads", std::to_string(threads)}},
        {{"capacity_aborts", static_cast<double>(ts.htm_capacity_aborts)},
         {"conflict_aborts", static_cast<double>(ts.htm_conflict_aborts)},
         {"lock_aborts", static_cast<double>(ts.htm_lock_aborts)},
         {"lease_aborts", static_cast<double>(ts.htm_lease_aborts)},
         {"explicit_aborts", static_cast<double>(ts.user_aborts)},
         {"fallbacks", static_cast<double>(ts.fallbacks)}});
    report.stats.Merge(drtm.result.stats_delta);
  }

  // DrTM(S): the same hardware presented as twice the logical nodes with
  // half the threads each; cross-"socket" interaction uses the RDMA path.
  {
    benchutil::TpccOptions options;
    options.nodes = kMachines * 2;
    options.workers_per_node = thread_counts.back() / 2;
    options.warehouses_per_node = 2;
    options.duration_ms = duration_ms;
    const benchutil::TpccOutcome drtm_s = benchutil::RunTpcc(options);
    std::printf("%-9s %14.0f %14.0f %9.2fx\n", "DrTM(S)", drtm_s.neworder_tps,
                drtm_s.mix_tps, drtm_s.mix_tps / base_mix);
    stat::BenchReport::Series& s = report.AddSeries("drtm_s");
    benchutil::AddPoint(
        &s,
        {{"logical_nodes", std::to_string(kMachines * 2)},
         {"threads", std::to_string(thread_counts.back() / 2)}},
        {{"mix_tps", drtm_s.mix_tps}, {"neworder_tps", drtm_s.neworder_tps}});
    report.stats.Merge(drtm_s.result.stats_delta);
  }

  // Record-mode overhead at the 4-thread point: the same mix run twice,
  // replay recorder disarmed vs armed (per-thread ring pushes + the
  // publish-hook write-set capture are the entire cost — the gate stays
  // open in record mode). The budget is <= 10% on mix_tps;
  // record_overhead_pct is lower-is-better for bench_diff.
  {
    benchutil::TpccOptions options;
    options.nodes = kMachines;
    options.workers_per_node = 4;
    options.warehouses_per_node = 4;
    options.duration_ms = duration_ms;
    const benchutil::TpccOutcome off = benchutil::RunTpcc(options);
    replay::Recorder::Global().Arm(replay::Recorder::Config{});
    const benchutil::TpccOutcome on = benchutil::RunTpcc(options);
    replay::Recorder::Global().Disarm();
    const double overhead_pct =
        off.mix_tps > 0 ? (off.mix_tps - on.mix_tps) / off.mix_tps * 100.0
                        : 0.0;
    std::printf("%-9s %14.0f %14.0f %8.1f%%\n", "record@4", off.mix_tps,
                on.mix_tps, overhead_pct);
    stat::BenchReport::Series& s = report.AddSeries("record_overhead");
    benchutil::AddPoint(&s, {{"threads", "4"}},
                        {{"mix_tps_record_off", off.mix_tps},
                         {"mix_tps_record_on", on.mix_tps},
                         {"record_overhead_pct", overhead_pct}});
  }

  // Calvin's single point (its release is hard-coded to 8 workers).
  {
    benchutil::CalvinTpccOptions calvin;
    calvin.nodes = kMachines;
    calvin.workers_per_node = 8;
    calvin.warehouses_per_node = 4;
    calvin.clients = 8;
    calvin.duration_ms = duration_ms;
    const double calvin_tps = RunCalvinTpccNewOrder(calvin);
    std::printf("%-9s %14s %14.0f\n", "calvin@8", "-", calvin_tps);
    stat::BenchReport::Series& s = report.AddSeries("calvin");
    benchutil::AddPoint(&s, {{"threads", "8"}},
                        {{"neworder_tps", calvin_tps}});
  }

  // Scatter-engine observability (merged over every DrTM run above):
  // doorbells each phase rang, how many scatter rounds they rode on, and
  // the modeled latency the cross-target overlap saved — plus the 2PL
  // fallback's latency tail, which the optimistic batched first pass is
  // meant to shrink.
  {
    stat::BenchReport::Series& s = report.AddSeries("scatter_phases");
    for (const char* phase : {"lookup", "start_lock", "prefetch", "writeback",
                              "fallback_lock", "ro_lease"}) {
      const std::string base = std::string("rdma.scatter.") + phase + ".";
      const double rounds =
          static_cast<double>(report.stats.Counter(base + "rounds"));
      const double doorbells =
          static_cast<double>(report.stats.Counter(base + "doorbells"));
      benchutil::AddPoint(
          &s, {{"phase", phase}},
          {{"rounds", rounds},
           {"doorbells", doorbells},
           {"wqes", static_cast<double>(report.stats.Counter(base + "wqes"))},
           {"overlap_saved_ns",
            static_cast<double>(
                report.stats.Counter(base + "overlap_saved_ns"))},
           {"doorbells_per_round", rounds > 0 ? doorbells / rounds : 0}});
    }
    stat::BenchReport::Series& lat = report.AddSeries("fallback_latency");
    const Histogram* hist = report.stats.Hist("phase.fallback_ns");
    benchutil::AddPoint(
        &lat, {{"metric", "phase.fallback_ns"}},
        {{"p50_ns",
          hist ? static_cast<double>(hist->Percentile(50)) : 0.0},
         {"p99_ns",
          hist ? static_cast<double>(hist->Percentile(99)) : 0.0},
         {"count", hist ? static_cast<double>(hist->count()) : 0.0}});
  }

  report.WriteJsonFile();
  return 0;
}
