// Figure 14: TPC-C scale-out emulation with logical nodes (the paper runs
// up to 24 logical nodes, 4 worker threads each, to extrapolate beyond
// its 6-machine cluster; it reaches 2.42M new-order/s at 24 nodes).
//
// On this host the total worker-thread pool is fixed and spread across
// the logical nodes (constant-resources adaptation), so the figure reads
// as "how much does the protocol lose as the same resources are split
// into ever more machines" — the paper's question asked inversely.
//
// DRTM_F14_NODES overrides the sweep with a single logical-node count
// (e.g. 64 for the elastic CI job's large-cluster smoke run); counts
// past the worker pool run one worker per node. Large sweeps shrink the
// per-pair location-cache budget so lazily materialized caches cannot
// blow up a 64-node host.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/tpcc_bench_common.h"

int main() {
  using namespace drtm;
  const uint64_t duration_ms = benchutil::DurationMs(800);
  benchutil::Header("Fig 14", "TPC-C over logical nodes (fixed worker pool)");
  benchutil::PaperNote(
      "paper: scales to 24 logical nodes, 2.42M new-order / 5.38M mix per "
      "second; the protocol keeps working as the cluster grows");

  constexpr int kTotalWorkers = 8;
  std::vector<int> node_counts = benchutil::Quick()
                                     ? std::vector<int>{2, 8}
                                     : std::vector<int>{1, 2, 4, 8};
  if (const char* env = std::getenv("DRTM_F14_NODES")) {
    const int forced = std::atoi(env);
    if (forced > 0) {
      node_counts = {forced};
    }
  }

  const stat::Snapshot window = benchutil::BeginReportWindow();
  stat::BenchReport report;
  report.bench = "fig14_tpcc_logical";
  report.title = "TPC-C throughput vs logical node count";
  report.AddConfig("total_workers", std::to_string(kTotalWorkers));
  report.AddConfig("duration_ms", std::to_string(duration_ms));
  report.AddConfig("quick", benchutil::Quick() ? "1" : "0");
  stat::BenchReport::Series& series = report.AddSeries("logical_nodes_sweep");

  std::printf("%-14s %9s %14s %14s %12s\n", "logical_nodes", "workers",
              "drtm_neworder", "drtm_mix_tps", "fallback%");
  bool all_consistent = true;
  for (const int nodes : node_counts) {
    benchutil::TpccOptions options;
    options.nodes = nodes;
    options.workers_per_node = std::max(1, kTotalWorkers / nodes);
    options.warehouses_per_node = 1;
    options.duration_ms = duration_ms;
    options.config_hook = [nodes](txn::ClusterConfig* config) {
      if (nodes >= 16) {
        // O(nodes^2) cache pairs can materialize; cap each shard so the
        // aggregate stays bounded on one host.
        config->location_cache_bytes = size_t{1} << 20;
      }
    };
    const benchutil::TpccOutcome drtm = benchutil::RunTpcc(options);
    all_consistent = all_consistent && drtm.consistent;
    std::printf("%-14d %9d %14.0f %14.0f %11.2f%%%s\n", nodes,
                options.workers_per_node, drtm.neworder_tps, drtm.mix_tps,
                drtm.fallback_rate * 100,
                drtm.consistent ? "" : "  (CONSISTENCY FAIL)");
    benchutil::AddPoint(&series, {{"logical_nodes", std::to_string(nodes)}},
                        {{"mix_tps", drtm.mix_tps},
                         {"neworder_tps", drtm.neworder_tps},
                         {"fallback_rate", drtm.fallback_rate},
                         {"consistent", drtm.consistent ? 1.0 : 0.0}});
  }
  benchutil::FinishReport(&report, window);
  return all_consistent ? 0 : 1;
}
