// Figure 14: TPC-C scale-out emulation with logical nodes (the paper runs
// up to 24 logical nodes, 4 worker threads each, to extrapolate beyond
// its 6-machine cluster; it reaches 2.42M new-order/s at 24 nodes).
//
// On this host the total worker-thread pool is fixed and spread across
// the logical nodes (constant-resources adaptation), so the figure reads
// as "how much does the protocol lose as the same resources are split
// into ever more machines" — the paper's question asked inversely.
#include <cstdio>
#include <vector>

#include "bench/tpcc_bench_common.h"

int main() {
  using namespace drtm;
  const uint64_t duration_ms = benchutil::DurationMs(800);
  benchutil::Header("Fig 14", "TPC-C over logical nodes (fixed worker pool)");
  benchutil::PaperNote(
      "paper: scales to 24 logical nodes, 2.42M new-order / 5.38M mix per "
      "second; the protocol keeps working as the cluster grows");

  constexpr int kTotalWorkers = 8;
  const std::vector<int> node_counts =
      benchutil::Quick() ? std::vector<int>{2, 8}
                         : std::vector<int>{1, 2, 4, 8};

  std::printf("%-14s %9s %14s %14s %12s\n", "logical_nodes", "workers",
              "drtm_neworder", "drtm_mix_tps", "fallback%%");
  for (const int nodes : node_counts) {
    benchutil::TpccOptions options;
    options.nodes = nodes;
    options.workers_per_node = kTotalWorkers / nodes;
    options.warehouses_per_node = 1;
    options.duration_ms = duration_ms;
    const benchutil::TpccOutcome drtm = benchutil::RunTpcc(options);
    std::printf("%-14d %9d %14.0f %14.0f %11.2f%%%s\n", nodes,
                options.workers_per_node, drtm.neworder_tps, drtm.mix_tps,
                drtm.fallback_rate * 100,
                drtm.consistent ? "" : "  (CONSISTENCY FAIL)");
  }
  return 0;
}
