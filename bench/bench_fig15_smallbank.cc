// Figure 15: SmallBank standard-mix throughput as machines and threads
// vary, for different probabilities of cross-machine accesses in
// send-payment and amalgamate (1% / 5% / 10%). The paper reaches 138M
// txns/s on 6 machines at 1% distributed probability; the reproduction
// target is the ordering (lower distributed probability => higher
// throughput) and stable scaling.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/workload/driver.h"
#include "src/workload/smallbank.h"

namespace {

using namespace drtm;

workload::RunResult RunSmallBank(int nodes, int workers_per_node,
                                 double cross_prob, uint64_t duration_ms) {
  txn::ClusterConfig config;
  config.num_nodes = nodes;
  config.workers_per_node = workers_per_node;
  config.region_bytes = 24 << 20;
  config.latency = rdma::LatencyModel::Calibrated(1.0);  // full network weight: SmallBank txns are tiny
  txn::Cluster cluster(config);
  workload::SmallBankDb::Params params;
  params.accounts_per_node = 20000;
  params.hot_accounts_per_node = 200;
  params.cross_node_probability = cross_prob;
  workload::SmallBankDb db(&cluster, params);
  cluster.Start();
  db.Load();
  workload::RunOptions run;
  run.nodes = nodes;
  run.workers_per_node = workers_per_node;
  run.warmup_ms = 150;
  run.duration_ms = duration_ms;
  run.record_latency = false;
  const workload::RunResult result =
      workload::RunWorkers(&cluster, run, [&](txn::Worker& worker) {
        return db.RunMix(&worker).status == txn::TxnStatus::kCommitted;
      });
  cluster.Stop();
  return result;
}

}  // namespace

int main() {
  const uint64_t duration_ms = benchutil::DurationMs(600);
  benchutil::Header("Fig 15", "SmallBank throughput vs machines and threads");
  benchutil::PaperNote(
      "1%% distributed: 138M txns/s on 6 machines, 4.52x over 1 machine; "
      "higher distributed probability costs throughput but still scales");

  constexpr int kTotalWorkers = 8;
  const std::vector<double> probabilities =
      benchutil::Quick() ? std::vector<double>{0.01, 0.10}
                         : std::vector<double>{0.01, 0.05, 0.10};

  stat::RegisterStandardPhaseTimers();
  stat::BenchReport report;
  report.bench = "fig15_smallbank";
  report.title = "SmallBank throughput vs machines and threads";
  report.AddConfig("total_workers", std::to_string(kTotalWorkers));
  report.AddConfig("duration_ms", std::to_string(duration_ms));
  report.AddConfig("quick", benchutil::Quick() ? "1" : "0");
  stat::BenchReport::Series& machine_series =
      report.AddSeries("machines_sweep");
  stat::BenchReport::Series& thread_series = report.AddSeries("threads_sweep");

  std::printf("-- machines sweep (fixed %d total workers) --\n",
              kTotalWorkers);
  std::printf("%-9s", "machines");
  for (const double p : probabilities) {
    std::printf("  dist=%2.0f%%_tps", p * 100);
  }
  std::printf("\n");
  const std::vector<int> machines = benchutil::Quick()
                                        ? std::vector<int>{2, 4}
                                        : std::vector<int>{1, 2, 4, 8};
  for (const int m : machines) {
    std::printf("%-9d", m);
    for (const double p : probabilities) {
      const workload::RunResult result =
          RunSmallBank(m, kTotalWorkers / m, p, duration_ms);
      std::printf("  %12.0f", result.Throughput());
      benchutil::AddPoint(
          &machine_series,
          {{"machines", std::to_string(m)},
           {"dist_pct", std::to_string(static_cast<int>(p * 100))}},
          {{"tps", result.Throughput()},
           {"abort_rate", result.AbortRate()}});
      report.stats.Merge(result.stats_delta);
    }
    std::printf("\n");
  }

  std::printf("-- threads sweep (2 machines) --\n");
  std::printf("%-9s", "threads");
  for (const double p : probabilities) {
    std::printf("  dist=%2.0f%%_tps", p * 100);
  }
  std::printf("\n");
  const std::vector<int> threads = benchutil::Quick()
                                       ? std::vector<int>{1, 4}
                                       : std::vector<int>{1, 2, 4};
  for (const int t : threads) {
    std::printf("%-9d", t);
    for (const double p : probabilities) {
      const workload::RunResult result = RunSmallBank(2, t, p, duration_ms);
      std::printf("  %12.0f", result.Throughput());
      benchutil::AddPoint(
          &thread_series,
          {{"threads", std::to_string(t)},
           {"dist_pct", std::to_string(static_cast<int>(p * 100))}},
          {{"tps", result.Throughput()},
           {"abort_rate", result.AbortRate()}});
      report.stats.Merge(result.stats_delta);
    }
    std::printf("\n");
  }

  report.WriteJsonFile();
  return 0;
}
