// Figure 16: TPC-C new-order throughput as the probability of
// cross-warehouse item accesses rises from the spec's 1% to 100%
// (10% item-level probability already means ~57% distributed
// transactions). The paper measures a moderate 15% slowdown at 5% and an
// ~85% slowdown at 100%, where no transaction can benefit from HTM-only
// execution.
#include <cstdio>
#include <vector>

#include "bench/tpcc_bench_common.h"

int main() {
  using namespace drtm;
  const uint64_t duration_ms = benchutil::DurationMs(800);
  benchutil::Header("Fig 16", "new-order throughput vs cross-warehouse %");
  benchutil::PaperNote(
      "5% cross-warehouse => ~15% slowdown; 100% => ~85% slowdown");

  const std::vector<double> cross =
      benchutil::Quick()
          ? std::vector<double>{0.01, 1.0}
          : std::vector<double>{0.01, 0.05, 0.10, 0.25, 0.50, 1.0};

  std::printf("%-12s %14s %10s\n", "cross_wh", "neworder_tps", "slowdown");
  double base = 0;
  for (const double probability : cross) {
    benchutil::TpccOptions options;
    // Few threads (no host oversubscription) and the fully calibrated
    // network: the remote-access cost must dominate like on real
    // hardware for the 85% figure to be reproducible.
    options.nodes = 2;
    options.workers_per_node = 1;
    // One warehouse per node: every cross-warehouse access is a genuine
    // remote access, as on the paper's testbed.
    options.warehouses_per_node = 1;
    options.latency_scale = 4.0;  // keeps remote:local cost ratio at the
                                  // hardware level (our emulated local path
                                  // is ~15x slower than real HTM, so the
                                  // network must scale with it)
    options.duration_ms = duration_ms;
    options.new_order_only = true;
    options.cross_warehouse_new_order = probability;
    const benchutil::TpccOutcome drtm = benchutil::RunTpcc(options);
    if (base == 0) {
      base = drtm.neworder_tps;
    }
    std::printf("%-11.0f%% %14.0f %9.1f%%%s\n", probability * 100,
                drtm.neworder_tps, (1.0 - drtm.neworder_tps / base) * 100,
                drtm.consistent ? "" : "  (CONSISTENCY FAIL)");
  }
  return 0;
}
