// Figure 17: the read-lease micro-benchmarks.
//
//  * read-write: transactions access 10 records (10% of accesses remote,
//    like a 10% cross-warehouse new-order); a varying fraction of the
//    accesses are reads. Without leases every remote read takes the
//    exclusive lock, so added read-share exposes no extra concurrency;
//    with leases throughput climbs with the read ratio.
//  * hotspot: transactions access 10 records of which one is a *read* of
//    a small global hot set (120 records spread over all machines).
//    Leases let all machines share the hot records; exclusive locking
//    serializes on them. The paper measures up to 29% improvement at 6
//    machines.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/workload/driver.h"

namespace {

using namespace drtm;

struct Setup {
  std::unique_ptr<txn::Cluster> cluster;
  int table;
};

Setup MakeCluster(int nodes, int workers, bool lease) {
  txn::ClusterConfig config;
  config.num_nodes = nodes;
  config.workers_per_node = workers;
  config.region_bytes = 24 << 20;
  config.latency = rdma::LatencyModel::Calibrated(0.5);
  config.enable_read_lease = lease;
  // Paper-like proportions: short leases (0.4 ms there) relative to
  // transaction length, so writers wait bounded time for readers.
  config.lease_rw_us = 800;
  config.lease_ro_us = 1500;
  config.softtime_interval_us = 50;
  config.delta_us = 100;
  Setup setup;
  setup.cluster = std::make_unique<txn::Cluster>(config);
  txn::TableSpec spec;
  spec.value_size = 8;
  spec.capacity = 1 << 14;
  spec.main_buckets = 1 << 11;
  spec.indirect_buckets = 1 << 10;
  spec.partition = [](uint64_t key) { return static_cast<int>(key >> 32); };
  setup.table = setup.cluster->AddTable(spec);
  setup.cluster->Start();
  for (int node = 0; node < nodes; ++node) {
    for (uint64_t i = 0; i < 4000; ++i) {
      const uint64_t v = 1;
      setup.cluster
          ->hash_table(node, setup.table)
          ->Insert((static_cast<uint64_t>(node) << 32) | i, &v);
    }
  }
  return setup;
}

// One read-write transaction: 10 records, `read_pct` of the accesses are
// reads, ~10% of the records remote (the paper derives this micro from a
// 10% cross-warehouse new-order). Remote picks are NURand-skewed so
// concurrent remote readers genuinely share records.
bool ReadWriteTxn(Setup& setup, txn::Worker& worker, int read_pct) {
  Xoshiro256& rng = worker.rng();
  const int nodes = setup.cluster->num_nodes();
  std::vector<std::pair<uint64_t, bool>> records;  // key, is_write
  for (int i = 0; i < 10; ++i) {
    int node = worker.node();
    uint64_t index;
    if (nodes > 1 && rng.Bernoulli(0.10)) {
      do {
        node =
            static_cast<int>(rng.NextBounded(static_cast<uint64_t>(nodes)));
      } while (node == worker.node());
      // Mild skew over a wide range, like new-order's NURand item picks:
      // readers share the popular records while writers rarely land on a
      // leased one.
      index = (rng.NextBounded(64) | rng.NextBounded(4000)) % 4000;
    } else {
      index = rng.NextBounded(4000);
    }
    const uint64_t key = (static_cast<uint64_t>(node) << 32) | index;
    const bool is_write =
        static_cast<int>(rng.NextBounded(100)) >= read_pct;
    bool duplicate = false;
    for (auto& [existing, write] : records) {
      if (existing == key) {
        write |= is_write;
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      records.emplace_back(key, is_write);
    }
  }
  txn::Transaction txn(&worker);
  for (const auto& [key, is_write] : records) {
    if (is_write) {
      txn.AddWrite(setup.table, key);
    } else {
      txn.AddRead(setup.table, key);
    }
  }
  return txn.Run([&](txn::Transaction& t) {
    for (const auto& [key, is_write] : records) {
      uint64_t value = 0;
      if (!t.Read(setup.table, key, &value)) {
        return false;
      }
      if (is_write) {
        ++value;
        if (!t.Write(setup.table, key, &value)) {
          return false;
        }
      }
    }
    return true;
  }) == txn::TxnStatus::kCommitted;
}

// Hotspot transaction: 9 local skewless writes plus one read of a global
// hot set of 120 records spread over all machines.
bool HotspotTxn(Setup& setup, txn::Worker& worker) {
  Xoshiro256& rng = worker.rng();
  const int nodes = setup.cluster->num_nodes();
  const uint64_t hot_index = rng.NextBounded(120);
  const int hot_node = static_cast<int>(hot_index % static_cast<uint64_t>(nodes));
  const uint64_t hot_key = (static_cast<uint64_t>(hot_node) << 32) |
                           (hot_index / static_cast<uint64_t>(nodes));
  txn::Transaction txn(&worker);
  std::vector<uint64_t> writes;
  for (int i = 0; i < 9; ++i) {
    const uint64_t key = (static_cast<uint64_t>(worker.node()) << 32) |
                         (200 + rng.NextBounded(3800));
    writes.push_back(key);
    txn.AddWrite(setup.table, key);
  }
  txn.AddRead(setup.table, hot_key);
  return txn.Run([&](txn::Transaction& t) {
    uint64_t hot = 0;
    if (!t.Read(setup.table, hot_key, &hot)) {
      return false;
    }
    for (const uint64_t key : writes) {
      uint64_t value = 0;
      if (!t.Read(setup.table, key, &value)) {
        return false;
      }
      ++value;
      if (!t.Write(setup.table, key, &value)) {
        return false;
      }
    }
    return true;
  }) == txn::TxnStatus::kCommitted;
}

double Measure(int nodes, int workers, bool lease, uint64_t duration_ms,
               const std::function<bool(Setup&, txn::Worker&)>& body) {
  Setup setup = MakeCluster(nodes, workers, lease);
  workload::RunOptions run;
  run.nodes = nodes;
  run.workers_per_node = workers;
  run.warmup_ms = 150;
  run.duration_ms = duration_ms;
  run.record_latency = false;
  const workload::RunResult result = workload::RunWorkers(
      setup.cluster.get(), run,
      [&](txn::Worker& worker) { return body(setup, worker); });
  setup.cluster->Stop();
  return result.Throughput() / nodes;  // per-node, like the paper
}

}  // namespace

int main() {
  const uint64_t duration_ms = benchutil::DurationMs(600);
  benchutil::Header("Fig 17", "read-lease micro-benchmarks (per-node tps)");
  benchutil::PaperNote(
      "read-write: without leases the read ratio barely helps; with leases "
      "throughput grows with reads. hotspot: lease improvement grows with "
      "machines, up to 29%% at 6");

  stat::BenchReport report;
  report.bench = "fig17_lease";
  report.title = "read-lease micro-benchmarks (per-node tps)";
  report.AddConfig("duration_ms", std::to_string(duration_ms));
  report.AddConfig("quick", benchutil::Quick() ? "1" : "0");
  const stat::Snapshot window = stat::Registry::Global().TakeSnapshot();

  std::printf("-- read-write transaction (3 machines) --\n");
  std::printf("%-9s %14s %14s %10s\n", "read%%", "lease_tps", "nolease_tps",
              "gain");
  const std::vector<int> ratios = benchutil::Quick()
                                      ? std::vector<int>{0, 90}
                                      : std::vector<int>{0, 30, 60, 90, 100};
  stat::BenchReport::Series& rw_series = report.AddSeries("read_write");
  for (const int read_pct : ratios) {
    const double with_lease =
        Measure(3, 2, true, duration_ms, [&](Setup& s, txn::Worker& w) {
          return ReadWriteTxn(s, w, read_pct);
        });
    const double without_lease =
        Measure(3, 2, false, duration_ms, [&](Setup& s, txn::Worker& w) {
          return ReadWriteTxn(s, w, read_pct);
        });
    std::printf("%-9d %14.0f %14.0f %9.1f%%\n", read_pct, with_lease,
                without_lease,
                (with_lease / without_lease - 1.0) * 100);
    benchutil::AddPoint(&rw_series,
                        {{"read_pct", std::to_string(read_pct)}},
                        {{"lease_tps", with_lease},
                         {"nolease_tps", without_lease},
                         {"gain", with_lease / without_lease - 1.0}});
  }

  std::printf("-- hotspot transaction --\n");
  std::printf("%-9s %14s %14s %10s\n", "machines", "lease_tps", "nolease_tps",
              "gain");
  const std::vector<int> machines =
      benchutil::Quick() ? std::vector<int>{2} : std::vector<int>{2, 3, 4};
  stat::BenchReport::Series& hot_series = report.AddSeries("hotspot");
  for (const int m : machines) {
    const double with_lease =
        Measure(m, 1, true, duration_ms, HotspotTxn);
    const double without_lease =
        Measure(m, 1, false, duration_ms, HotspotTxn);
    std::printf("%-9d %14.0f %14.0f %9.1f%%\n", m, with_lease, without_lease,
                (with_lease / without_lease - 1.0) * 100);
    benchutil::AddPoint(&hot_series, {{"machines", std::to_string(m)}},
                        {{"lease_tps", with_lease},
                         {"nolease_tps", without_lease},
                         {"gain", with_lease / without_lease - 1.0}});
  }

  // Scatter-engine doorbell accounting over the whole run (the ro_lease
  // phase is the one this micro-benchmark exercises hardest).
  report.stats = stat::Registry::Global().TakeSnapshot().DeltaSince(window);
  {
    stat::BenchReport::Series& s = report.AddSeries("scatter_phases");
    for (const char* phase : {"lookup", "start_lock", "prefetch", "writeback",
                              "fallback_lock", "ro_lease"}) {
      const std::string base = std::string("rdma.scatter.") + phase + ".";
      const double rounds =
          static_cast<double>(report.stats.Counter(base + "rounds"));
      const double doorbells =
          static_cast<double>(report.stats.Counter(base + "doorbells"));
      benchutil::AddPoint(
          &s, {{"phase", phase}},
          {{"rounds", rounds},
           {"doorbells", doorbells},
           {"overlap_saved_ns",
            static_cast<double>(
                report.stats.Counter(base + "overlap_saved_ns"))},
           {"doorbells_per_round", rounds > 0 ? doorbells / rounds : 0}});
    }
  }
  report.WriteJsonFile();
  return 0;
}
