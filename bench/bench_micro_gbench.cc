// Google-benchmark micro-benchmarks over the substrates: HTM transact
// cost, strong accesses, simulated RDMA verbs, store operations, and the
// lock-word helpers. These are regression guards, not paper figures.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/common/zipf.h"
#include "src/htm/htm.h"
#include "src/rdma/fabric.h"
#include "src/store/bplus_tree.h"
#include "src/store/cluster_hash.h"
#include "src/store/remote_kv.h"
#include "src/txn/lock_state.h"

namespace {

using namespace drtm;

void BM_HtmEmptyTransact(benchmark::State& state) {
  htm::HtmThread htm;
  for (auto _ : state) {
    benchmark::DoNotOptimize(htm.Transact([] {}));
  }
}
BENCHMARK(BM_HtmEmptyTransact);

void BM_HtmReadModifyWrite(benchmark::State& state) {
  alignas(64) static uint64_t value = 0;
  htm::HtmThread htm;
  for (auto _ : state) {
    htm.Transact([&] {
      const uint64_t v = htm.Load(&value);
      htm.Store(&value, v + 1);
    });
  }
}
BENCHMARK(BM_HtmReadModifyWrite);

void BM_HtmWideWriteSet(benchmark::State& state) {
  static std::vector<uint64_t> data(64 * 64, 0);
  htm::HtmThread htm;
  const int lines = static_cast<int>(state.range(0));
  for (auto _ : state) {
    htm.Transact([&] {
      for (int i = 0; i < lines; ++i) {
        htm.Store(&data[static_cast<size_t>(i) * 8], uint64_t{1});
      }
    });
  }
}
BENCHMARK(BM_HtmWideWriteSet)->Arg(8)->Arg(64);

void BM_StrongLoad64(benchmark::State& state) {
  alignas(64) static uint64_t value = 42;
  for (auto _ : state) {
    benchmark::DoNotOptimize(htm::StrongLoad(&value));
  }
}
BENCHMARK(BM_StrongLoad64);

void BM_StrongCas64(benchmark::State& state) {
  alignas(64) static uint64_t value = 0;
  uint64_t expected = 0;
  for (auto _ : state) {
    expected = htm::StrongCas64(&value, expected, expected + 1);
    ++expected;
  }
}
BENCHMARK(BM_StrongCas64);

void BM_RdmaReadNoLatency(benchmark::State& state) {
  static rdma::Fabric fabric([] {
    rdma::Fabric::Config config;
    config.num_nodes = 2;
    config.region_bytes = 1 << 20;
    return config;
  }());
  static const uint64_t off = fabric.memory(1).Allocate(4096);
  std::vector<uint8_t> buf(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    fabric.Read(1, off, buf.data(), buf.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RdmaReadNoLatency)->Arg(64)->Arg(1024);

void BM_ClusterHashLocalGet(benchmark::State& state) {
  static rdma::Fabric fabric([] {
    rdma::Fabric::Config config;
    config.num_nodes = 1;
    config.region_bytes = 64 << 20;
    return config;
  }());
  static store::ClusterHashTable table(&fabric.memory(0), [] {
    store::ClusterHashTable::Config config;
    config.main_buckets = 1 << 12;
    config.capacity = 1 << 15;
    config.value_size = 64;
    return config;
  }());
  static bool loaded = [] {
    std::vector<uint8_t> value(64, 1);
    for (uint64_t k = 0; k < 20000; ++k) {
      table.Insert(k, value.data());
    }
    return true;
  }();
  (void)loaded;
  std::vector<uint8_t> out(64);
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Get(key, out.data()));
    key = (key + 7919) % 20000;
  }
}
BENCHMARK(BM_ClusterHashLocalGet);

void BM_BPlusTreeGet(benchmark::State& state) {
  static store::BPlusTree tree([] {
    store::BPlusTree::Config config;
    config.value_size = 8;
    config.max_nodes = 1 << 14;
    return config;
  }());
  static bool loaded = [] {
    for (uint64_t k = 0; k < 20000; ++k) {
      tree.Insert(k, &k);
    }
    return true;
  }();
  (void)loaded;
  uint64_t out = 0;
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Get(key, &out));
    key = (key + 7919) % 20000;
  }
}
BENCHMARK(BM_BPlusTreeGet);

void BM_LockStateHelpers(benchmark::State& state) {
  uint64_t word = txn::MakeLease(123456);
  for (auto _ : state) {
    benchmark::DoNotOptimize(txn::IsWriteLocked(word));
    benchmark::DoNotOptimize(txn::LeaseEnd(word));
    benchmark::DoNotOptimize(txn::LeaseValid(txn::LeaseEnd(word), 123000, 50));
    word ^= 1;
  }
}
BENCHMARK(BM_LockStateHelpers);

void BM_ZipfNext(benchmark::State& state) {
  ZipfGenerator zipf(1000000, 0.99, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next());
  }
}
BENCHMARK(BM_ZipfNext);

}  // namespace

BENCHMARK_MAIN();
