// Re-sharding benchmark (elastic tier). Not a paper figure — this drives
// the src/elastic subsystem the way an operator would: a transfer-ledger
// workload runs continuously while ~10% of the routing buckets migrate
// from node 0 to node 1, then an admission-control stage saturates a
// server thread and checks that load is shed at the door instead of
// letting the queue grow without bound.
//
// Pass criteria (all overridable by env for slow CI hosts):
//   - migration completes, mid-migration copy oracle + post-run
//     conservation + commit-ledger invariants all green
//   - committed-txn p99 during migration < DRTM_RESHARD_P99_MULT (3x)
//     of steady-state p99
//   - admission stage sheds (> 0) while admitted throughput stays within
//     DRTM_RESHARD_SHED_MARGIN (default 35%) of the unthrottled peak
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/chaos/invariants.h"
#include "src/common/clock.h"
#include "src/elastic/admission.h"
#include "src/elastic/migration.h"
#include "src/elastic/routing.h"
#include "src/txn/cluster.h"
#include "src/txn/transaction.h"

namespace {

using namespace drtm;

constexpr uint64_t kKeys = 4096;
constexpr int64_t kInitialBalance = 1000;
constexpr uint32_t kRoutingBuckets = 256;
constexpr uint32_t kPingRpc = txn::Cluster::kUserRpcBase + 7;
constexpr uint64_t kPingServiceNs = 30'000;  // emulated handler work

double EnvDouble(const char* name, double dflt) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::strtod(env, nullptr) : dflt;
}

double Percentile(std::vector<uint64_t>* ns, double p) {
  if (ns->empty()) {
    return 0.0;
  }
  std::sort(ns->begin(), ns->end());
  const size_t idx =
      static_cast<size_t>(p * static_cast<double>(ns->size() - 1));
  return static_cast<double>((*ns)[idx]) / 1000.0;  // us
}

enum Phase : int { kSteady = 0, kMigrate = 1, kPost = 2, kDone = 3 };

struct PhaseLats {
  std::vector<uint64_t> ns[3];
};

}  // namespace

int main() {
  const bool quick = benchutil::Quick();
  // Floor at 300ms: the p99-during-migration gate needs a steady-state
  // sample large enough that its tail is real, whatever DRTM_BENCH_MS says.
  const uint64_t phase_ms =
      std::max<uint64_t>(300, benchutil::DurationMs(quick ? 400 : 1500));
  benchutil::Header("Re-sharding", "live migration + admission control");
  benchutil::PaperNote(
      "beyond the paper: DrTM pins a key to its home node for life; the "
      "elastic tier moves 10% of the buckets under traffic instead");

  const stat::Snapshot window = benchutil::BeginReportWindow();
  stat::BenchReport report;
  report.bench = "resharding";
  report.title = "bucket migration under traffic + admission shedding";
  report.AddConfig("keys", std::to_string(kKeys));
  report.AddConfig("routing_buckets", std::to_string(kRoutingBuckets));
  report.AddConfig("phase_ms", std::to_string(phase_ms));
  report.AddConfig("quick", quick ? "1" : "0");

  elastic::RoutingTable routing(kRoutingBuckets, 2);
  txn::ClusterConfig config;
  config.num_nodes = 2;
  config.workers_per_node = 2;
  config.region_bytes = 64 << 20;
  txn::Cluster cluster(config);
  txn::TableSpec spec;
  spec.value_size = 8;
  spec.main_buckets = 1 << 11;
  spec.capacity = 1 << 14;
  spec.partition = routing.PartitionFn();
  const int table = cluster.AddTable(spec);
  cluster.RegisterRpcHandler(kPingRpc, [](const rdma::Message&) {
    SpinFor(kPingServiceNs);
    return std::vector<uint8_t>{1};
  });
  cluster.Start();
  for (uint64_t k = 0; k < kKeys; ++k) {
    const uint64_t balance = kInitialBalance;
    if (!cluster.hash_table(cluster.PartitionOf(table, k), table)
             ->Insert(k, &balance)) {
      std::fprintf(stderr, "load failed at key %llu\n",
                   static_cast<unsigned long long>(k));
      return 1;
    }
  }

  // ---- Phases 1-3: transfer traffic across steady / migrate / post ----
  std::atomic<int> phase{kSteady};
  std::atomic<uint64_t> committed{0};
  // Commit-intent ledger: per-key signed delta, applied only after a
  // transfer returns kCommitted. Deltas commute, so the final expected
  // balance is exact regardless of interleaving.
  std::vector<std::atomic<int64_t>> ledger(kKeys);
  for (auto& d : ledger) {
    d.store(0, std::memory_order_relaxed);
  }

  constexpr int kTrafficThreads = 4;
  std::vector<PhaseLats> lats(kTrafficThreads);
  std::vector<std::thread> traffic;
  for (int t = 0; t < kTrafficThreads; ++t) {
    traffic.emplace_back([&, t] {
      txn::Worker worker(&cluster, t % 2, t / 2);
      uint64_t x = 0x9e3779b9u * (t + 1);
      while (true) {
        const int now = phase.load(std::memory_order_acquire);
        if (now == kDone) {
          break;
        }
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        const uint64_t from = (x >> 17) % kKeys;
        const uint64_t to = (x >> 41) % kKeys;
        if (from == to) {
          continue;
        }
        const int64_t amount = static_cast<int64_t>(1 + (x & 7));
        const uint64_t begin = MonotonicNanos();
        txn::Transaction txn(&worker);
        txn.AddWrite(table, from);
        txn.AddWrite(table, to);
        bool moved = false;
        const txn::TxnStatus status = txn.Run([&](txn::Transaction& t2) {
          uint64_t a = 0;
          uint64_t b = 0;
          if (!t2.Read(table, from, &a) || !t2.Read(table, to, &b)) {
            return false;
          }
          if (a < static_cast<uint64_t>(amount)) {
            moved = false;
            return true;
          }
          a -= static_cast<uint64_t>(amount);
          b += static_cast<uint64_t>(amount);
          moved = t2.Write(table, from, &a) && t2.Write(table, to, &b);
          return moved;
        });
        if (status == txn::TxnStatus::kCommitted) {
          lats[t].ns[now].push_back(MonotonicNanos() - begin);
          committed.fetch_add(1, std::memory_order_relaxed);
          if (moved) {
            ledger[from].fetch_sub(amount, std::memory_order_relaxed);
            ledger[to].fetch_add(amount, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  auto sleep_ms = [](uint64_t ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  };
  const uint64_t steady_begin = MonotonicNanos();
  sleep_ms(phase_ms);

  // Migrate ~10% of the routing buckets currently homed on node 0.
  std::vector<uint32_t> owned = routing.BucketsOwnedBy(0);
  const size_t slice = std::max<size_t>(1, kRoutingBuckets / 10);
  elastic::MigrationPlan plan;
  plan.table = table;
  plan.source = 0;
  plan.dest = 1;
  plan.buckets.assign(owned.begin(),
                      owned.begin() +
                          std::min(slice, owned.size()));

  chaos::InvariantChecker checker;
  elastic::MigrationEngine engine(&cluster, &routing);
  phase.store(kMigrate, std::memory_order_release);
  const uint64_t migrate_begin = MonotonicNanos();
  const elastic::MigrationReport mig = engine.Migrate(plan, [&] {
    // Quiescent copy point: plan keys must hold identical bytes on both
    // sides; compare the sums (any single mismatch skews them).
    int64_t src_sum = 0;
    int64_t dst_sum = 0;
    for (uint64_t k = 0; k < kKeys; ++k) {
      if (routing.OwnerOf(k) != plan.source ||
          !routing.Frozen(k)) {
        continue;
      }
      uint64_t sv = 0;
      uint64_t dv = 0;
      if (cluster.hash_table(plan.source, table)->Get(k, &sv)) {
        src_sum += static_cast<int64_t>(sv);
      }
      if (cluster.hash_table(plan.dest, table)->Get(k, &dv)) {
        dst_sum += static_cast<int64_t>(dv);
      }
    }
    checker.CheckConservation("mid-migration src/dst copy bytes", src_sum,
                              dst_sum);
  });
  const uint64_t migrate_ns = MonotonicNanos() - migrate_begin;
  // Keep the migrate phase at least as long as steady so the p99 compare
  // has a comparable sample count.
  if (migrate_ns < phase_ms * 1'000'000) {
    sleep_ms(phase_ms - migrate_ns / 1'000'000);
  }

  phase.store(kPost, std::memory_order_release);
  sleep_ms(phase_ms);
  phase.store(kDone, std::memory_order_release);
  const uint64_t run_ns = MonotonicNanos() - steady_begin;
  for (std::thread& t : traffic) {
    t.join();
  }

  // ---- Quiescent invariants: conservation + commit ledger ----
  int64_t total = 0;
  std::vector<std::pair<uint64_t, int64_t>> expected;
  expected.reserve(kKeys);
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint64_t v = 0;
    if (cluster.hash_table(cluster.PartitionOf(table, k), table)
            ->Get(k, &v)) {
      total += static_cast<int64_t>(v);
    }
    expected.emplace_back(
        k, kInitialBalance + ledger[k].load(std::memory_order_relaxed));
  }
  checker.CheckConservation("post-migration total balance",
                            kKeys * kInitialBalance, total);
  checker.CheckCommitLedger(&cluster, table, expected);

  std::vector<uint64_t> merged[3];
  for (const PhaseLats& pl : lats) {
    for (int p = 0; p < 3; ++p) {
      merged[p].insert(merged[p].end(), pl.ns[p].begin(), pl.ns[p].end());
    }
  }
  const double p99_steady = Percentile(&merged[kSteady], 0.99);
  const double p99_migrate = Percentile(&merged[kMigrate], 0.99);
  const double p99_post = Percentile(&merged[kPost], 0.99);
  const double p99_mult = EnvDouble("DRTM_RESHARD_P99_MULT", 3.0);
  const double tps =
      static_cast<double>(committed.load()) / (run_ns / 1e9);

  std::printf("%-10s %10s %12s %12s\n", "phase", "commits", "p50_us",
              "p99_us");
  const char* names[3] = {"steady", "migrate", "post"};
  stat::BenchReport::Series& phases = report.AddSeries("phases");
  for (int p = 0; p < 3; ++p) {
    const double p50 = Percentile(&merged[p], 0.50);
    const double p99 = Percentile(&merged[p], 0.99);
    std::printf("%-10s %10zu %12.1f %12.1f\n", names[p], merged[p].size(),
                p50, p99);
    benchutil::AddPoint(&phases, {{"phase", names[p]}},
                        {{"commits", static_cast<double>(merged[p].size())},
                         {"p50_us", p50},
                         {"p99_us", p99}});
  }
  std::printf(
      "migrated %llu keys (%zu/%u buckets) in %.1f ms; shipped %llu bytes, "
      "%llu dual-writes caught up %llu, %llu cache-inval acks\n",
      static_cast<unsigned long long>(mig.moved_keys), plan.buckets.size(),
      kRoutingBuckets, migrate_ns / 1e6,
      static_cast<unsigned long long>(mig.shipped_bytes),
      static_cast<unsigned long long>(mig.copied),
      static_cast<unsigned long long>(mig.caught_up),
      static_cast<unsigned long long>(mig.cache_inval_acks));
  std::printf("overall %.0f committed tps; invariant checks: %d, "
              "violations: %zu\n",
              tps, checker.report().checks,
              checker.report().violations.size());

  bool ok = mig.ok && checker.report().ok();
  if (!checker.report().ok()) {
    std::printf("%s", checker.report().ToString().c_str());
  }
  if (p99_steady > 0 && p99_migrate > p99_steady * p99_mult) {
    std::printf("FAIL: p99 during migration %.1f us > %.1fx steady %.1f "
                "us\n",
                p99_migrate, p99_mult, p99_steady);
    ok = false;
  }

  // ---- Phase 4: admission control at the saturation knee ----
  // Unthrottled probe first: closed-loop clients against a ~30us ping
  // handler measure the server thread's service capacity (the pre-knee
  // peak — in the queue-based fabric overload grows the queue and the
  // latency, not the loss rate, so the peak IS the capacity).
  constexpr int kProbeClients = 4;
  const uint64_t probe_ms = quick ? 250 : 800;
  const double peak_tps = benchutil::MeasureOpsPerSec(
      kProbeClients, probe_ms, [&](int t) {
        std::vector<uint8_t> reply;
        cluster.Rpc(1, 0, kPingRpc, {}, &reply);
        (void)t;
      });

  // Saturate open-loop: an arrival generator offers 2x the measured
  // capacity at the door; the token bucket refills at ~capacity, so the
  // excess is shed immediately (never queued) while admitted arrivals
  // are executed by a closed-loop worker pool that can just keep up.
  // Closed-loop saturation cannot show shedding — blocked clients
  // self-throttle to capacity — which is exactly the failure mode
  // admission control exists to prevent in the open-loop world.
  elastic::AdmissionConfig admission_config;
  admission_config.base_rate_per_us = peak_tps / 1e6;
  // Arrivals come in 1ms batches (below); the burst must cover a few
  // batches of refill or scheduling jitter on a small host caps the
  // admitted rate below the refill rate.
  admission_config.burst = std::max(64.0, 4.0 * peak_tps / 1e3);
  elastic::AdmissionController admission(&cluster, 0, admission_config);
  std::atomic<bool> saturate{true};
  std::atomic<int64_t> credits{0};
  std::atomic<uint64_t> executed{0};
  std::thread arrivals([&] {
    // Deficit pacer, batched: sleep 1ms (yield the core — a spinning
    // generator starves the server thread on a small host), then issue
    // every arrival that came due. Slow Admit() calls or oversleeping
    // never depress the offered load below the intended 2x capacity.
    const double rate_per_ns = 2.0 * peak_tps / 1e9;
    const uint64_t begin = MonotonicNanos();
    uint64_t issued = 0;
    while (saturate.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      const uint64_t due = static_cast<uint64_t>(
          static_cast<double>(MonotonicNanos() - begin) * rate_per_ns);
      while (issued < due) {
        if (admission.Admit()) {
          credits.fetch_add(1, std::memory_order_relaxed);
        }
        ++issued;
      }
    }
  });
  std::vector<std::thread> executors;
  for (int t = 0; t < kProbeClients; ++t) {
    executors.emplace_back([&] {
      while (saturate.load(std::memory_order_acquire)) {
        if (credits.fetch_sub(1, std::memory_order_relaxed) <= 0) {
          credits.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
          continue;
        }
        std::vector<uint8_t> reply;
        cluster.Rpc(1, 0, kPingRpc, {}, &reply);
        executed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const uint64_t sat_begin = MonotonicNanos();
  std::this_thread::sleep_for(std::chrono::milliseconds(probe_ms));
  saturate.store(false, std::memory_order_release);
  const double sat_secs = (MonotonicNanos() - sat_begin) / 1e9;
  arrivals.join();
  for (std::thread& t : executors) {
    t.join();
  }
  const double admitted_tps =
      static_cast<double>(executed.load()) / sat_secs;

  const double shed_margin = EnvDouble("DRTM_RESHARD_SHED_MARGIN", 0.35);
  std::printf("admission: peak %.0f rpc/s, admitted %.0f rpc/s "
              "(%.0f%% of peak), shed %llu\n",
              peak_tps, admitted_tps, 100.0 * admitted_tps / peak_tps,
              static_cast<unsigned long long>(admission.shed()));
  if (admission.shed() == 0) {
    std::printf("FAIL: admission never shed under 2x overload\n");
    ok = false;
  }
  if (admitted_tps < peak_tps * (1.0 - shed_margin)) {
    std::printf("FAIL: admitted throughput %.0f below %.0f%% of peak "
                "%.0f\n",
                admitted_tps, 100.0 * (1.0 - shed_margin), peak_tps);
    ok = false;
  }

  stat::BenchReport::Series& adm = report.AddSeries("admission");
  benchutil::AddPoint(
      &adm, {{"stage", "saturation"}},
      {{"peak_rpc_per_sec", peak_tps},
       {"admitted_rpc_per_sec", admitted_tps},
       {"shed", static_cast<double>(admission.shed())},
       {"admitted", static_cast<double>(admission.admitted())}});
  stat::BenchReport::Series& mig_series = report.AddSeries("migration");
  benchutil::AddPoint(
      &mig_series, {{"slice", "10pct"}},
      {{"moved_keys", static_cast<double>(mig.moved_keys)},
       {"shipped_bytes", static_cast<double>(mig.shipped_bytes)},
       {"duration_ms", migrate_ns / 1e6},
       {"p99_steady_us", p99_steady},
       {"p99_migrate_us", p99_migrate},
       {"p99_post_us", p99_post},
       {"commit_tps", tps},
       {"invariant_violations",
        static_cast<double>(checker.report().violations.size())}});
  report.AddConfig("result", ok ? "pass" : "fail");
  benchutil::FinishReport(&report, window);

  cluster.Stop();
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
