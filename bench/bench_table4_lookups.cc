// Table 4: average number of RDMA READs per lookup at 50/75/90% slot
// occupancy, uniform and Zipf(0.99) key distributions, for the three
// RDMA-friendly hash tables: Pilaf-style cuckoo, FaRM-style hopscotch,
// and DrTM-KV cluster chaining. Lookup cost excludes the final key-value
// READ (as in the paper). A cached cluster-chaining row reproduces the
// paper's "20 MB cache eliminates ~75% of READs under Zipf" note.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rand.h"
#include "src/common/zipf.h"
#include "src/rdma/fabric.h"
#include "src/store/cluster_hash.h"
#include "src/store/farm_hopscotch.h"
#include "src/store/location_cache.h"
#include "src/store/pilaf_cuckoo.h"
#include "src/store/remote_kv.h"

namespace {

using namespace drtm;

constexpr uint64_t kBuckets = 1 << 16;  // slots for cuckoo/hopscotch
constexpr uint32_t kValueSize = 64;
constexpr int kLookups = 60000;

rdma::Fabric MakeFabric() {
  rdma::Fabric::Config config;
  config.num_nodes = 2;
  config.region_bytes = size_t{512} << 20;
  config.latency = rdma::LatencyModel::Zero();
  return rdma::Fabric(config);
}

// Key sequence: inserted keys are 0..n-1; lookups draw from the same set.
std::vector<uint64_t> LookupKeys(uint64_t n, bool zipf_dist) {
  std::vector<uint64_t> keys(kLookups);
  if (zipf_dist) {
    ZipfGenerator zipf(n, 0.99, 11);
    for (auto& key : keys) {
      key = zipf.Next();
    }
  } else {
    Xoshiro256 rng(13);
    for (auto& key : keys) {
      key = rng.NextBounded(n);
    }
  }
  return keys;
}

double CuckooCost(rdma::Fabric* fabric, uint64_t n,
                  const std::vector<uint64_t>& lookups) {
  store::PilafCuckooTable::Config config;
  config.buckets = kBuckets;
  config.capacity = kBuckets;
  config.value_size = kValueSize;
  store::PilafCuckooTable table(&fabric->memory(1), config);
  std::vector<uint8_t> value(kValueSize, 1);
  for (uint64_t k = 0; k < n; ++k) {
    if (!table.Insert(k, value.data())) {
      std::fprintf(stderr, "cuckoo insert failed at %llu/%llu\n",
                   static_cast<unsigned long long>(k),
                   static_cast<unsigned long long>(n));
      break;
    }
  }
  uint64_t reads = 0;
  uint64_t found = 0;
  std::vector<uint8_t> out(kValueSize);
  for (const uint64_t key : lookups) {
    int r = 0;
    if (table.RemoteGet(fabric, 1, key, out.data(), &r)) {
      ++found;
      reads += static_cast<uint64_t>(r - 1);  // exclude the kv READ
    } else {
      reads += static_cast<uint64_t>(r);
    }
  }
  return static_cast<double>(reads) / static_cast<double>(found);
}

double HopscotchCost(rdma::Fabric* fabric, uint64_t n,
                     const std::vector<uint64_t>& lookups) {
  store::FarmHopscotchTable::Config config;
  config.buckets = kBuckets;
  config.value_size = kValueSize;
  config.mode = store::FarmHopscotchTable::Mode::kOffsetValue;
  store::FarmHopscotchTable table(&fabric->memory(1), config);
  std::vector<uint8_t> value(kValueSize, 1);
  for (uint64_t k = 0; k < n; ++k) {
    table.Insert(k, value.data());
  }
  uint64_t reads = 0;
  uint64_t found = 0;
  std::vector<uint8_t> out(kValueSize);
  for (const uint64_t key : lookups) {
    int r = 0;
    if (table.RemoteGet(fabric, 1, key, out.data(), &r)) {
      ++found;
      reads += static_cast<uint64_t>(r - 1);
    } else {
      reads += static_cast<uint64_t>(r);
    }
  }
  return static_cast<double>(reads) / static_cast<double>(found);
}

double ClusterCost(rdma::Fabric* fabric, uint64_t n,
                   const std::vector<uint64_t>& lookups,
                   store::LocationCache* cache) {
  store::ClusterHashTable::Config config;
  // Same slot budget as the baselines: kBuckets slots over 8-way buckets.
  config.main_buckets = kBuckets / store::kSlotsPerBucket;
  config.indirect_buckets = kBuckets / store::kSlotsPerBucket;
  config.capacity = kBuckets;
  config.value_size = kValueSize;
  store::ClusterHashTable table(&fabric->memory(1), config);
  std::vector<uint8_t> value(kValueSize, 1);
  for (uint64_t k = 0; k < n; ++k) {
    table.Insert(k, value.data());
  }
  store::RemoteKv client(fabric, 1, table.geometry(), cache);
  uint64_t reads = 0;
  for (const uint64_t key : lookups) {
    reads += static_cast<uint64_t>(client.Lookup(key).rdma_reads);
  }
  return static_cast<double>(reads) / static_cast<double>(lookups.size());
}

}  // namespace

int main() {
  benchutil::Header("Table 4", "avg RDMA READs per lookup vs occupancy");
  benchutil::PaperNote(
      "uniform 90%: cuckoo 1.956, hopscotch 1.044, cluster 1.100; "
      "zipf 90%: 1.924 / 1.040 / 1.091; cluster + small cache removes ~75% "
      "of READs under zipf");

  std::printf("%-8s %-5s %8s %10s %9s %12s\n", "dist", "occ", "cuckoo",
              "hopscotch", "cluster", "cluster+$");
  for (const bool zipf_dist : {false, true}) {
    for (const int occ : {50, 75, 90}) {
      const uint64_t n = kBuckets * static_cast<uint64_t>(occ) / 100;
      const auto lookups = LookupKeys(n, zipf_dist);
      rdma::Fabric f1 = MakeFabric();
      const double cuckoo = CuckooCost(&f1, n, lookups);
      rdma::Fabric f2 = MakeFabric();
      const double hopscotch = HopscotchCost(&f2, n, lookups);
      rdma::Fabric f3 = MakeFabric();
      const double cluster = ClusterCost(&f3, n, lookups, nullptr);
      rdma::Fabric f4 = MakeFabric();
      // A cache sized at ~1/60 of the full location footprint, like the
      // paper's 20 MB vs 20M keys example, warmed by the run itself.
      store::LocationCache cache((kBuckets / store::kSlotsPerBucket) *
                                 sizeof(store::Bucket) / 18);
      const double cached = ClusterCost(&f4, n, lookups, &cache);
      std::printf("%-8s %3d%% %8.3f %10.3f %9.3f %12.3f\n",
                  zipf_dist ? "zipf" : "uniform", occ, cuckoo, hopscotch,
                  cluster, cached);
    }
  }
  return 0;
}
