// Table 6: the cost of durability. TPC-C with logging off vs on —
// new-order throughput, capacity-abort and fallback rates (logging grows
// the HTM write set, so both rise slightly), and latency percentiles
// (the paper: -11.6% throughput, +4.42%/+4.78% abort/fallback, <10 us
// added at p50/p90/p99 — still orders of magnitude under Calvin's
// millisecond latencies).
#include <cstdio>

#include "bench/tpcc_bench_common.h"

int main() {
  using namespace drtm;
  const uint64_t duration_ms = benchutil::DurationMs(900);
  benchutil::Header("Table 6", "durability cost on TPC-C");
  benchutil::PaperNote(
      "logging on: -11.6%% new-order throughput, capacity aborts +4.42%%, "
      "fallbacks +4.78%%, latency +<10us at p50/p90/p99 "
      "(Calvin without logging: 6.04/15.84/60.54 ms)");

  std::printf("%-9s %14s %12s %11s %8s %8s %8s\n", "logging", "neworder_tps",
              "capacity%%", "fallback%%", "p50_us", "p90_us", "p99_us");
  double base_tps = 0;
  for (const bool logging : {false, true}) {
    benchutil::TpccOptions options;
    options.nodes = 3;
    options.workers_per_node = 2;
    options.warehouses_per_node = 2;
    options.duration_ms = duration_ms;
    options.logging = logging;
    options.config_hook = [](txn::ClusterConfig* config) {
      config->log_segment_bytes = 2 << 20;
      config->region_bytes = 96 << 20;
      // Emulate real RTM's tight L1-tracked write set: new-order sits
      // near the capacity edge, so the WAL's extra write-set lines push
      // some executions over (the paper's +4.42% capacity aborts and
      // +4.78% fallbacks).
      config->htm.max_write_lines = 110;
      config->htm.max_read_lines = 2048;
    };
    const benchutil::TpccOutcome outcome = benchutil::RunTpcc(options);
    if (!logging) {
      base_tps = outcome.neworder_tps;
    }
    std::printf(
        "%-9s %14.0f %11.3f%% %10.3f%% %8llu %8llu %8llu%s\n",
        logging ? "on" : "off", outcome.neworder_tps,
        outcome.capacity_abort_rate * 100, outcome.fallback_rate * 100,
        static_cast<unsigned long long>(outcome.result.latency_us.Percentile(50)),
        static_cast<unsigned long long>(outcome.result.latency_us.Percentile(90)),
        static_cast<unsigned long long>(outcome.result.latency_us.Percentile(99)),
        outcome.consistent ? "" : "  (CONSISTENCY FAIL)");
    if (logging && base_tps > 0) {
      std::printf("throughput change with logging: %+.1f%%\n",
                  (outcome.neworder_tps / base_tps - 1.0) * 100);
    }
  }
  return 0;
}
