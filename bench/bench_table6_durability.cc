// Table 6: the cost of durability. TPC-C with logging off vs on —
// new-order throughput, capacity-abort and fallback rates (logging grows
// the HTM write set, so both rise slightly), and latency percentiles
// (the paper: -11.6% throughput, +4.42%/+4.78% abort/fallback, <10 us
// added at p50/p90/p99 — still orders of magnitude under Calvin's
// millisecond latencies).
//
// Besides the paper table, the bench probes the other half of
// durability: how long recovery takes to scan a crashed node's NVRAM
// log, so the BENCH_table6_durability.json report carries a recovery
// latency trend (vs log fill) for bench_diff to watch.
#include <cstdio>
#include <string>

#include "bench/tpcc_bench_common.h"
#include "src/txn/recovery.h"

namespace {

using namespace drtm;

struct RecoveryProbe {
  double wall_us = 0;      // RecoveryManager::Recover(0) wall time
  double log_bytes = 0;    // crashed node's log fill at crash time
  txn::RecoveryManager::Report report;
};

// Runs a short logging TPC-C burst, crashes node 0 and times the
// recovery scan of its log. After a clean quiesce most transactions
// carry Complete records, so the probe measures the scan itself — the
// component that grows with log fill.
RecoveryProbe MeasureRecovery(uint64_t run_ms) {
  txn::ClusterConfig config;
  config.num_nodes = 3;
  config.workers_per_node = 2;
  config.region_bytes = 96 << 20;
  config.latency = rdma::LatencyModel::Calibrated(0.1);
  config.logging = true;
  config.log_segment_bytes = 2 << 20;
  txn::Cluster cluster(config);

  workload::TpccDb::Params params;
  params.warehouses = config.num_nodes * 2;
  params.customers_per_district = 100;
  params.items = 400;
  params.name_count = 30;
  params.initial_orders_per_district = 8;
  workload::TpccDb db(&cluster, params);
  cluster.Start();
  db.Load();

  workload::RunOptions run;
  run.nodes = config.num_nodes;
  run.workers_per_node = config.workers_per_node;
  run.warmup_ms = 50;
  run.duration_ms = run_ms;
  workload::RunWorkers(&cluster, run, [&](txn::Worker& worker) {
    return db.RunMix(&worker).status == txn::TxnStatus::kCommitted;
  });

  RecoveryProbe probe;
  for (int w = 0; w < config.workers_per_node; ++w) {
    probe.log_bytes += static_cast<double>(cluster.log(0)->UsedBytes(w));
  }
  cluster.Crash(0);
  txn::RecoveryManager recovery(&cluster);
  const uint64_t begin = MonotonicNanos();
  probe.report = recovery.Recover(0);
  probe.wall_us = static_cast<double>(MonotonicNanos() - begin) / 1e3;
  cluster.Revive(0);
  cluster.Stop();
  return probe;
}

}  // namespace

int main() {
  using namespace drtm;
  const uint64_t duration_ms = benchutil::DurationMs(900);
  benchutil::Header("Table 6", "durability cost on TPC-C");
  benchutil::PaperNote(
      "logging on: -11.6%% new-order throughput, capacity aborts +4.42%%, "
      "fallbacks +4.78%%, latency +<10us at p50/p90/p99 "
      "(Calvin without logging: 6.04/15.84/60.54 ms)");

  stat::BenchReport report;
  report.bench = "table6_durability";
  report.title = "durability cost on TPC-C";
  report.AddConfig("duration_ms", std::to_string(duration_ms));
  report.AddConfig("quick", benchutil::Quick() ? "1" : "0");
  const stat::Snapshot window = benchutil::BeginReportWindow();

  std::printf("%-9s %14s %12s %11s %8s %8s %8s\n", "logging", "neworder_tps",
              "capacity%%", "fallback%%", "p50_us", "p90_us", "p99_us");
  stat::BenchReport::Series& durability = report.AddSeries("durability");
  double base_tps = 0;
  for (const bool logging : {false, true}) {
    benchutil::TpccOptions options;
    options.nodes = 3;
    options.workers_per_node = 2;
    options.warehouses_per_node = 2;
    options.duration_ms = duration_ms;
    options.logging = logging;
    options.config_hook = [](txn::ClusterConfig* config) {
      config->log_segment_bytes = 2 << 20;
      config->region_bytes = 96 << 20;
      // Emulate real RTM's tight L1-tracked write set: new-order sits
      // near the capacity edge, so the WAL's extra write-set lines push
      // some executions over (the paper's +4.42% capacity aborts and
      // +4.78% fallbacks).
      config->htm.max_write_lines = 110;
      config->htm.max_read_lines = 2048;
    };
    const benchutil::TpccOutcome outcome = benchutil::RunTpcc(options);
    if (!logging) {
      base_tps = outcome.neworder_tps;
    }
    const double p50 =
        static_cast<double>(outcome.result.latency_us.Percentile(50));
    const double p90 =
        static_cast<double>(outcome.result.latency_us.Percentile(90));
    const double p99 =
        static_cast<double>(outcome.result.latency_us.Percentile(99));
    std::printf(
        "%-9s %14.0f %11.3f%% %10.3f%% %8.0f %8.0f %8.0f%s\n",
        logging ? "on" : "off", outcome.neworder_tps,
        outcome.capacity_abort_rate * 100, outcome.fallback_rate * 100, p50,
        p90, p99, outcome.consistent ? "" : "  (CONSISTENCY FAIL)");
    benchutil::AddPoint(&durability, {{"logging", logging ? "on" : "off"}},
                        {{"neworder_tps", outcome.neworder_tps},
                         {"capacity_abort_rate", outcome.capacity_abort_rate},
                         {"fallback_rate", outcome.fallback_rate},
                         {"p50_us", p50},
                         {"p90_us", p90},
                         {"p99_us", p99},
                         {"consistent", outcome.consistent ? 1.0 : 0.0}});
    if (logging && base_tps > 0) {
      std::printf("throughput change with logging: %+.1f%%\n",
                  (outcome.neworder_tps / base_tps - 1.0) * 100);
    }
  }

  // --- group-commit epoch sweep -------------------------------------------
  // With a non-free flush device (flush_base_ns below; the default model
  // keeps flushes free per the paper's UPS argument), the sync baseline
  // pays one device flush per commit while group commit amortizes it
  // across an epoch. Throughput should recover as the epoch grows; the
  // price is durability-ack latency (txn.durability.ack_ns).
  std::printf("-- group-commit epoch sweep (flush device armed) --\n");
  std::printf("%-12s %12s %12s %12s %12s\n", "epoch", "mix_tps",
              "ack_p50_us", "ack_p99_us", "acks");
  stat::BenchReport::Series& sweep = report.AddSeries("epoch_sweep");
  const std::vector<size_t> epoch_sizes =
      benchutil::Quick() ? std::vector<size_t>{0, size_t{64} << 10}
                         : std::vector<size_t>{0, size_t{4} << 10,
                                               size_t{16} << 10,
                                               size_t{64} << 10,
                                               size_t{256} << 10};
  double sync_tps = 0;
  double largest_tps = 0;
  for (const size_t epoch_bytes : epoch_sizes) {
    const bool group = epoch_bytes > 0;
    benchutil::TpccOptions options;
    options.nodes = 3;
    options.workers_per_node = 2;
    options.warehouses_per_node = 2;
    options.duration_ms = duration_ms / 2;
    options.logging = true;
    options.config_hook = [epoch_bytes, group](txn::ClusterConfig* config) {
      config->log_segment_bytes = 4 << 20;
      config->region_bytes = 96 << 20;
      // A flush device that costs real time (~300 us at the calibrated
      // 0.1 scale, NVDIMM-flush territory): per-record for sync,
      // per-epoch for group commit.
      config->latency.flush_base_ns = 3000000;
      config->latency.flush_per_byte_ns = 0.05;
      config->group_commit = group;
      if (group) {
        config->durability_epoch_bytes = epoch_bytes;
        config->durability_epoch_us = 200;
      }
    };
    const stat::Snapshot before = stat::Registry::Global().TakeSnapshot();
    const benchutil::TpccOutcome outcome = benchutil::RunTpcc(options);
    const stat::Snapshot delta =
        stat::Registry::Global().TakeSnapshot().DeltaSince(before);
    const Histogram* ack = delta.Hist("txn.durability.ack_ns");
    const double ack_p50_us =
        ack ? static_cast<double>(ack->Percentile(50)) / 1e3 : 0.0;
    const double ack_p99_us =
        ack ? static_cast<double>(ack->Percentile(99)) / 1e3 : 0.0;
    const double acks = ack ? static_cast<double>(ack->count()) : 0.0;
    std::string label = "sync";
    if (group) {
      label = std::to_string(epoch_bytes >> 10) + "K";
    }
    std::printf("%-12s %12.0f %12.1f %12.1f %12.0f\n", label.c_str(),
                outcome.mix_tps, ack_p50_us, ack_p99_us, acks);
    benchutil::AddPoint(&sweep,
                        {{"mode", group ? "group" : "sync"},
                         {"epoch_bytes", std::to_string(epoch_bytes)}},
                        {{"mix_tps", outcome.mix_tps},
                         {"neworder_tps", outcome.neworder_tps},
                         {"ack_p50_us", ack_p50_us},
                         {"ack_p99_us", ack_p99_us},
                         {"acks", acks},
                         {"consistent", outcome.consistent ? 1.0 : 0.0}});
    if (!group) {
      sync_tps = outcome.mix_tps;
    }
    largest_tps = outcome.mix_tps;  // sizes ascend; the last one sticks
  }
  if (sync_tps > 0) {
    std::printf("largest epoch vs sync: %.2fx\n", largest_tps / sync_tps);
  }

  std::printf("-- recovery latency vs log fill --\n");
  std::printf("%-9s %12s %12s %10s %10s\n", "run_ms", "log_bytes", "scan_us",
              "committed", "aborted");
  const std::vector<uint64_t> fills =
      benchutil::Quick() ? std::vector<uint64_t>{duration_ms / 4}
                         : std::vector<uint64_t>{duration_ms / 4,
                                                 duration_ms / 2, duration_ms};
  stat::BenchReport::Series& recovery_series = report.AddSeries("recovery");
  for (const uint64_t run_ms : fills) {
    const RecoveryProbe probe = MeasureRecovery(run_ms);
    std::printf("%-9llu %12.0f %12.1f %10d %10d\n",
                static_cast<unsigned long long>(run_ms), probe.log_bytes,
                probe.wall_us, probe.report.committed_txns,
                probe.report.aborted_txns);
    benchutil::AddPoint(
        &recovery_series, {{"run_ms", std::to_string(run_ms)}},
        {{"log_bytes", probe.log_bytes},
         {"recover_wall_us", probe.wall_us},
         {"committed_txns", static_cast<double>(probe.report.committed_txns)},
         {"aborted_txns", static_cast<double>(probe.report.aborted_txns)},
         {"redone_updates", static_cast<double>(probe.report.redone_updates)},
         {"released_locks", static_cast<double>(probe.report.released_locks)}});
  }

  benchutil::FinishReport(&report, window);
  return 0;
}
