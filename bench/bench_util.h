// Shared helpers for the reproduction benchmarks. Each binary regenerates
// one table or figure of the paper and prints the paper's corresponding
// numbers next to the measured ones (absolute values differ — the
// substrate is a simulator on a small host — the reproduced target is the
// *shape*: who wins, by what rough factor, where the knees are).
//
// Environment knobs:
//   DRTM_BENCH_MS     per-point measure duration in ms (default per bench)
//   DRTM_BENCH_QUICK  when set, sweeps use fewer points
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/stat/bench_report.h"
#include "src/stat/metrics.h"
#include "src/stat/timer.h"

namespace drtm {
namespace benchutil {

inline uint64_t DurationMs(uint64_t dflt) {
  const char* env = std::getenv("DRTM_BENCH_MS");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : dflt;
}

inline bool Quick() { return std::getenv("DRTM_BENCH_QUICK") != nullptr; }

inline void Header(const char* id, const char* title) {
  std::printf("\n=== %s: %s ===\n", id, title);
}

inline void PaperNote(const char* note) { std::printf("paper: %s\n", note); }

// Runs `threads` copies of op for duration_ms and returns ops/sec.
// op(thread_index) performs one operation.
inline double MeasureOpsPerSec(int threads, uint64_t duration_ms,
                               const std::function<void(int)>& op) {
  std::atomic<bool> running{true};
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      uint64_t local = 0;
      while (running.load(std::memory_order_acquire)) {
        op(t);
        ++local;
      }
      total.fetch_add(local);
    });
  }
  const uint64_t begin = MonotonicNanos();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  running.store(false, std::memory_order_release);
  const uint64_t end = MonotonicNanos();
  for (auto& thread : pool) {
    thread.join();
  }
  return static_cast<double>(total.load()) /
         (static_cast<double>(end - begin) / 1e9);
}

// Opens a report window: pre-registers the standard phase timers (so the
// report always carries the full histogram set) and returns the current
// registry state as the baseline to subtract at the end.
inline stat::Snapshot BeginReportWindow() {
  stat::RegisterStandardPhaseTimers();
  return stat::Registry::Global().TakeSnapshot();
}

// Closes the window opened by BeginReportWindow and writes
// BENCH_<report->bench>.json (honouring DRTM_BENCH_OUT).
inline std::string FinishReport(stat::BenchReport* report,
                                const stat::Snapshot& window_begin) {
  report->stats =
      stat::Registry::Global().TakeSnapshot().DeltaSince(window_begin);
  return report->WriteJsonFile();
}

// Convenience for sweep points: one labelled point with named values.
inline void AddPoint(
    stat::BenchReport::Series* series,
    std::vector<std::pair<std::string, std::string>> labels,
    std::vector<std::pair<std::string, double>> values) {
  series->points.push_back(
      stat::BenchReport::Point{std::move(labels), std::move(values)});
}

}  // namespace benchutil
}  // namespace drtm

#endif  // BENCH_BENCH_UTIL_H_
