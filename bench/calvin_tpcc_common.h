// TPC-C new-order on the Calvin baseline, for the Fig. 12/13 comparison.
//
// Calvin's deterministic model requires pre-declared write sets, so the
// order id is client-generated rather than drawn from district.next_o_id
// (Calvin's published TPC-C uses the same device — OLLP handles the rest
// of the dependency). The lock/message/epoch structure — what the
// comparison is actually about — is exercised in full: a new-order takes
// district + stock locks, and cross-warehouse lines make the transaction
// multi-partition with reads pushed over IPoIB-latency messages.
#ifndef BENCH_CALVIN_TPCC_COMMON_H_
#define BENCH_CALVIN_TPCC_COMMON_H_

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/calvin/calvin.h"
#include "src/common/clock.h"
#include "src/common/rand.h"

namespace drtm {
namespace benchutil {

struct CalvinTpccOptions {
  int nodes = 2;
  int workers_per_node = 2;
  int warehouses_per_node = 2;
  int items = 400;
  int clients = 8;  // closed-loop client threads (total)
  uint64_t epoch_us = 10000;  // Calvin's published batch epoch
  double latency_scale = 0.1;
  double cross_warehouse = 0.01;
  uint64_t duration_ms = 800;
};

inline double RunCalvinTpccNewOrder(const CalvinTpccOptions& options) {
  calvin::CalvinCluster::Config config;
  config.num_nodes = options.nodes;
  config.workers_per_node = options.workers_per_node;
  config.epoch_us = options.epoch_us;
  config.latency_scale = options.latency_scale;
  calvin::CalvinCluster cluster(config);

  const int nodes = options.nodes;
  const int district_table = cluster.AddTable([nodes](uint64_t key) {
    return static_cast<int>((key / 10) % static_cast<uint64_t>(nodes));
  });
  const int stock_table = cluster.AddTable([nodes](uint64_t key) {
    return static_cast<int>((key >> 24) % static_cast<uint64_t>(nodes));
  });
  const int order_table = cluster.AddTable([nodes](uint64_t key) {
    return static_cast<int>((key >> 48) % static_cast<uint64_t>(nodes));
  });

  const uint64_t warehouses = static_cast<uint64_t>(options.nodes) *
                              static_cast<uint64_t>(options.warehouses_per_node);
  calvin::Row eight(8, 0);
  for (uint64_t w = 0; w < warehouses; ++w) {
    for (uint64_t d = 0; d < 10; ++d) {
      cluster.LoadRow(district_table, w * 10 + d, eight);
    }
    for (uint64_t i = 0; i < static_cast<uint64_t>(options.items); ++i) {
      calvin::Row qty(8);
      const uint64_t q = 50;
      std::memcpy(qty.data(), &q, 8);
      cluster.LoadRow(stock_table, (w << 24) | i, qty);
    }
  }
  cluster.Start();

  std::atomic<bool> running{true};
  std::atomic<uint64_t> order_seq{1};
  std::vector<std::thread> clients;
  for (int c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      Xoshiro256 rng(991 + static_cast<uint64_t>(c));
      while (running.load(std::memory_order_acquire)) {
        const uint64_t w = rng.NextBounded(warehouses);
        const uint64_t d = rng.NextBounded(10);
        auto request = std::make_shared<calvin::TxnRequest>();
        request->home_node = cluster.PartitionOf(district_table, w * 10 + d);
        request->read_set.push_back({district_table, w * 10 + d});
        request->write_set.push_back({district_table, w * 10 + d});
        const uint64_t order_key =
            (w << 48) | order_seq.fetch_add(1, std::memory_order_relaxed);
        request->write_set.push_back({order_table, order_key});
        const int lines = 5 + static_cast<int>(rng.NextBounded(11));
        std::vector<uint64_t> stock_keys;
        for (int l = 0; l < lines; ++l) {
          uint64_t sw = w;
          if (warehouses > 1 && rng.Bernoulli(options.cross_warehouse)) {
            do {
              sw = rng.NextBounded(warehouses);
            } while (sw == w);
          }
          const uint64_t key =
              (sw << 24) |
              rng.NextBounded(static_cast<uint64_t>(options.items));
          stock_keys.push_back(key);
          request->read_set.push_back({stock_table, key});
          request->write_set.push_back({stock_table, key});
        }
        const int dt = district_table;
        const int st = stock_table;
        const int ot = order_table;
        request->logic = [dt, st, ot, order_key, stock_keys, w, d](
                             const calvin::ReadMap& reads,
                             calvin::WriteMap* writes) {
          uint64_t next = 0;
          const auto district = reads.find({dt, w * 10 + d});
          if (district != reads.end() && district->second.size() >= 8) {
            std::memcpy(&next, district->second.data(), 8);
          }
          calvin::Row row(8);
          const uint64_t bumped = next + 1;
          std::memcpy(row.data(), &bumped, 8);
          (*writes)[{dt, w * 10 + d}] = row;
          (*writes)[{ot, order_key}] = row;
          for (const uint64_t key : stock_keys) {
            uint64_t qty = 0;
            const auto stock = reads.find({st, key});
            if (stock != reads.end() && stock->second.size() >= 8) {
              std::memcpy(&qty, stock->second.data(), 8);
            }
            calvin::Row stock_row(8);
            const uint64_t updated = qty > 10 ? qty - 1 : qty + 91;
            std::memcpy(stock_row.data(), &updated, 8);
            (*writes)[{st, key}] = stock_row;
          }
        };
        cluster.Execute(std::move(request));
      }
    });
  }

  std::this_thread::sleep_for(
      std::chrono::milliseconds(options.duration_ms / 4));  // warmup
  const uint64_t committed_begin = cluster.committed();
  const uint64_t time_begin = MonotonicNanos();
  std::this_thread::sleep_for(std::chrono::milliseconds(options.duration_ms));
  const uint64_t committed_end = cluster.committed();
  const uint64_t time_end = MonotonicNanos();
  running.store(false, std::memory_order_release);
  for (auto& client : clients) {
    client.join();
  }
  cluster.Stop();
  return static_cast<double>(committed_end - committed_begin) /
         (static_cast<double>(time_end - time_begin) / 1e9);
}

}  // namespace benchutil
}  // namespace drtm

#endif  // BENCH_CALVIN_TPCC_COMMON_H_
