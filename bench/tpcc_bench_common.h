// Shared TPC-C runners for the Fig. 12-16 / Table 6 benchmarks.
//
// Host-scaling note: the simulation runs every "machine" as threads on
// one small host, so aggregate wall-clock throughput saturates at the
// host's core count — machine-count sweeps therefore keep the *total*
// worker-thread count constant and spread it over more logical machines.
// What that preserves (and what the paper's figures are about): the
// relative cost of distribution, and the DrTM-vs-Calvin gap.
#ifndef BENCH_TPCC_BENCH_COMMON_H_
#define BENCH_TPCC_BENCH_COMMON_H_

#include <atomic>
#include <memory>

#include "bench/bench_util.h"
#include "src/txn/cluster.h"
#include "src/workload/driver.h"
#include "src/workload/tpcc.h"

namespace drtm {
namespace benchutil {

struct TpccOptions {
  int nodes = 2;
  int workers_per_node = 2;
  int warehouses_per_node = 2;
  uint64_t duration_ms = 800;
  uint64_t warmup_ms = 200;
  double latency_scale = 0.1;
  bool logging = false;
  bool new_order_only = false;
  double cross_warehouse_new_order = 0.01;  // <0 keeps the spec default
  std::function<void(txn::ClusterConfig*)> config_hook;
};

struct TpccOutcome {
  double mix_tps = 0;
  double neworder_tps = 0;
  workload::RunResult result;
  double capacity_abort_rate = 0;  // capacity aborts / HTM attempts
  double fallback_rate = 0;        // fallbacks / committed
  bool consistent = false;
};

inline TpccOutcome RunTpcc(const TpccOptions& options) {
  txn::ClusterConfig config;
  config.num_nodes = options.nodes;
  config.workers_per_node = options.workers_per_node;
  config.region_bytes = size_t{48} << 20;
  config.latency = rdma::LatencyModel::Calibrated(options.latency_scale);
  config.logging = options.logging;
  if (options.config_hook) {
    options.config_hook(&config);
  }
  txn::Cluster cluster(config);

  workload::TpccDb::Params params;
  params.warehouses = options.nodes * options.warehouses_per_node;
  params.customers_per_district = 100;
  params.items = 400;
  params.name_count = 30;
  params.initial_orders_per_district = 8;
  if (options.cross_warehouse_new_order >= 0) {
    params.cross_warehouse_new_order = options.cross_warehouse_new_order;
  }
  workload::TpccDb db(&cluster, params);
  cluster.Start();
  db.Load();

  std::atomic<uint64_t> neworder_committed{0};
  workload::RunOptions run;
  run.nodes = options.nodes;
  run.workers_per_node = options.workers_per_node;
  run.warmup_ms = options.warmup_ms;
  run.duration_ms = options.duration_ms;
  const workload::RunResult result =
      workload::RunWorkers(&cluster, run, [&](txn::Worker& worker) {
        if (options.new_order_only) {
          const bool ok =
              db.RunNewOrder(&worker) == txn::TxnStatus::kCommitted;
          if (ok) {
            neworder_committed.fetch_add(1, std::memory_order_relaxed);
          }
          return ok;
        }
        const auto mix = db.RunMix(&worker);
        const bool ok = mix.status == txn::TxnStatus::kCommitted;
        if (ok && mix.type == workload::TpccDb::TxnType::kNewOrder) {
          neworder_committed.fetch_add(1, std::memory_order_relaxed);
        }
        return ok;
      });

  TpccOutcome outcome;
  outcome.result = result;
  outcome.mix_tps = result.Throughput();
  outcome.neworder_tps =
      static_cast<double>(neworder_committed.load()) / result.seconds;
  const uint64_t htm_attempts =
      result.htm_stats.commits + result.htm_stats.TotalAborts();
  outcome.capacity_abort_rate =
      htm_attempts > 0 ? static_cast<double>(
                             result.txn_stats.htm_capacity_aborts) /
                             static_cast<double>(htm_attempts)
                       : 0;
  outcome.fallback_rate =
      result.committed > 0
          ? static_cast<double>(result.txn_stats.fallbacks) /
                static_cast<double>(result.committed)
          : 0;
  outcome.consistent = db.CheckConsistency();
  cluster.Stop();
  return outcome;
}

}  // namespace benchutil
}  // namespace drtm

#endif  // BENCH_TPCC_BENCH_COMMON_H_
