# Empty dependencies file for bench_ablation_atomics.
# This may be replaced when dependencies are built.
