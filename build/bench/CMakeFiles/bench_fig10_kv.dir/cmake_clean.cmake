file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_kv.dir/bench_fig10_kv.cc.o"
  "CMakeFiles/bench_fig10_kv.dir/bench_fig10_kv.cc.o.d"
  "bench_fig10_kv"
  "bench_fig10_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
