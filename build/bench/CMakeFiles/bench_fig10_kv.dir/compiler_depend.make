# Empty compiler generated dependencies file for bench_fig10_kv.
# This may be replaced when dependencies are built.
