file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_softtime.dir/bench_fig11_softtime.cc.o"
  "CMakeFiles/bench_fig11_softtime.dir/bench_fig11_softtime.cc.o.d"
  "bench_fig11_softtime"
  "bench_fig11_softtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_softtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
