# Empty dependencies file for bench_fig12_tpcc_machines.
# This may be replaced when dependencies are built.
