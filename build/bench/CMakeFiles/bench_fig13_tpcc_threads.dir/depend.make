# Empty dependencies file for bench_fig13_tpcc_threads.
# This may be replaced when dependencies are built.
