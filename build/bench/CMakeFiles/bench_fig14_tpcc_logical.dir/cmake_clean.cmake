file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_tpcc_logical.dir/bench_fig14_tpcc_logical.cc.o"
  "CMakeFiles/bench_fig14_tpcc_logical.dir/bench_fig14_tpcc_logical.cc.o.d"
  "bench_fig14_tpcc_logical"
  "bench_fig14_tpcc_logical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_tpcc_logical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
