# Empty compiler generated dependencies file for bench_fig14_tpcc_logical.
# This may be replaced when dependencies are built.
