# Empty dependencies file for bench_fig15_smallbank.
# This may be replaced when dependencies are built.
