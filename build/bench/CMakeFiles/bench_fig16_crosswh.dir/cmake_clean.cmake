file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_crosswh.dir/bench_fig16_crosswh.cc.o"
  "CMakeFiles/bench_fig16_crosswh.dir/bench_fig16_crosswh.cc.o.d"
  "bench_fig16_crosswh"
  "bench_fig16_crosswh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_crosswh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
