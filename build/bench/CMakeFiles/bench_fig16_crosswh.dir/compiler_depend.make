# Empty compiler generated dependencies file for bench_fig16_crosswh.
# This may be replaced when dependencies are built.
