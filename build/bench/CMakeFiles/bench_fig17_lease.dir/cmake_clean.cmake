file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_lease.dir/bench_fig17_lease.cc.o"
  "CMakeFiles/bench_fig17_lease.dir/bench_fig17_lease.cc.o.d"
  "bench_fig17_lease"
  "bench_fig17_lease.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_lease.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
