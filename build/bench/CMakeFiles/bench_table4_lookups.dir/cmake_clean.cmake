file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_lookups.dir/bench_table4_lookups.cc.o"
  "CMakeFiles/bench_table4_lookups.dir/bench_table4_lookups.cc.o.d"
  "bench_table4_lookups"
  "bench_table4_lookups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_lookups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
