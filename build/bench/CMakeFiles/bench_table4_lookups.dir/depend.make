# Empty dependencies file for bench_table4_lookups.
# This may be replaced when dependencies are built.
