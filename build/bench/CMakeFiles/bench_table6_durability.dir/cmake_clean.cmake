file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_durability.dir/bench_table6_durability.cc.o"
  "CMakeFiles/bench_table6_durability.dir/bench_table6_durability.cc.o.d"
  "bench_table6_durability"
  "bench_table6_durability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_durability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
