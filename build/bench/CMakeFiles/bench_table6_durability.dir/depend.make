# Empty dependencies file for bench_table6_durability.
# This may be replaced when dependencies are built.
