file(REMOVE_RECURSE
  "CMakeFiles/kv_cache_demo.dir/kv_cache_demo.cc.o"
  "CMakeFiles/kv_cache_demo.dir/kv_cache_demo.cc.o.d"
  "kv_cache_demo"
  "kv_cache_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_cache_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
