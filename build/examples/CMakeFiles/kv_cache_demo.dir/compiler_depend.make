# Empty compiler generated dependencies file for kv_cache_demo.
# This may be replaced when dependencies are built.
