file(REMOVE_RECURSE
  "CMakeFiles/tpcc_node.dir/tpcc_node.cc.o"
  "CMakeFiles/tpcc_node.dir/tpcc_node.cc.o.d"
  "tpcc_node"
  "tpcc_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
