# Empty compiler generated dependencies file for tpcc_node.
# This may be replaced when dependencies are built.
