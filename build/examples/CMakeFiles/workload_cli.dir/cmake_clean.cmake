file(REMOVE_RECURSE
  "CMakeFiles/workload_cli.dir/workload_cli.cc.o"
  "CMakeFiles/workload_cli.dir/workload_cli.cc.o.d"
  "workload_cli"
  "workload_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
