# Empty compiler generated dependencies file for workload_cli.
# This may be replaced when dependencies are built.
