file(REMOVE_RECURSE
  "CMakeFiles/drtm_calvin.dir/calvin.cc.o"
  "CMakeFiles/drtm_calvin.dir/calvin.cc.o.d"
  "libdrtm_calvin.a"
  "libdrtm_calvin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtm_calvin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
