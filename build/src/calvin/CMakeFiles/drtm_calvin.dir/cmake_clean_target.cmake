file(REMOVE_RECURSE
  "libdrtm_calvin.a"
)
