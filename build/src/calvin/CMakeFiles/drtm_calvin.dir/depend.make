# Empty dependencies file for drtm_calvin.
# This may be replaced when dependencies are built.
