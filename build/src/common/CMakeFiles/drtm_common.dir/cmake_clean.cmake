file(REMOVE_RECURSE
  "CMakeFiles/drtm_common.dir/clock.cc.o"
  "CMakeFiles/drtm_common.dir/clock.cc.o.d"
  "CMakeFiles/drtm_common.dir/histogram.cc.o"
  "CMakeFiles/drtm_common.dir/histogram.cc.o.d"
  "CMakeFiles/drtm_common.dir/zipf.cc.o"
  "CMakeFiles/drtm_common.dir/zipf.cc.o.d"
  "libdrtm_common.a"
  "libdrtm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
