file(REMOVE_RECURSE
  "libdrtm_common.a"
)
