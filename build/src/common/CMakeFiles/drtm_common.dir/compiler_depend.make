# Empty compiler generated dependencies file for drtm_common.
# This may be replaced when dependencies are built.
