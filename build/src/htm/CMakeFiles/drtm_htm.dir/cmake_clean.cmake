file(REMOVE_RECURSE
  "CMakeFiles/drtm_htm.dir/htm.cc.o"
  "CMakeFiles/drtm_htm.dir/htm.cc.o.d"
  "CMakeFiles/drtm_htm.dir/version_table.cc.o"
  "CMakeFiles/drtm_htm.dir/version_table.cc.o.d"
  "libdrtm_htm.a"
  "libdrtm_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtm_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
