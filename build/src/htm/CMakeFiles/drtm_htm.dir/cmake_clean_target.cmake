file(REMOVE_RECURSE
  "libdrtm_htm.a"
)
