# Empty compiler generated dependencies file for drtm_htm.
# This may be replaced when dependencies are built.
