file(REMOVE_RECURSE
  "CMakeFiles/drtm_rdma.dir/fabric.cc.o"
  "CMakeFiles/drtm_rdma.dir/fabric.cc.o.d"
  "CMakeFiles/drtm_rdma.dir/latency.cc.o"
  "CMakeFiles/drtm_rdma.dir/latency.cc.o.d"
  "CMakeFiles/drtm_rdma.dir/messaging.cc.o"
  "CMakeFiles/drtm_rdma.dir/messaging.cc.o.d"
  "CMakeFiles/drtm_rdma.dir/node_memory.cc.o"
  "CMakeFiles/drtm_rdma.dir/node_memory.cc.o.d"
  "libdrtm_rdma.a"
  "libdrtm_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtm_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
