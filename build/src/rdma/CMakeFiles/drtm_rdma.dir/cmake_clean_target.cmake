file(REMOVE_RECURSE
  "libdrtm_rdma.a"
)
