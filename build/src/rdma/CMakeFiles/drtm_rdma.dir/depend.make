# Empty dependencies file for drtm_rdma.
# This may be replaced when dependencies are built.
