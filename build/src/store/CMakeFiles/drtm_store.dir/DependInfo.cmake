
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/bplus_tree.cc" "src/store/CMakeFiles/drtm_store.dir/bplus_tree.cc.o" "gcc" "src/store/CMakeFiles/drtm_store.dir/bplus_tree.cc.o.d"
  "/root/repo/src/store/cluster_hash.cc" "src/store/CMakeFiles/drtm_store.dir/cluster_hash.cc.o" "gcc" "src/store/CMakeFiles/drtm_store.dir/cluster_hash.cc.o.d"
  "/root/repo/src/store/farm_hopscotch.cc" "src/store/CMakeFiles/drtm_store.dir/farm_hopscotch.cc.o" "gcc" "src/store/CMakeFiles/drtm_store.dir/farm_hopscotch.cc.o.d"
  "/root/repo/src/store/location_cache.cc" "src/store/CMakeFiles/drtm_store.dir/location_cache.cc.o" "gcc" "src/store/CMakeFiles/drtm_store.dir/location_cache.cc.o.d"
  "/root/repo/src/store/pilaf_cuckoo.cc" "src/store/CMakeFiles/drtm_store.dir/pilaf_cuckoo.cc.o" "gcc" "src/store/CMakeFiles/drtm_store.dir/pilaf_cuckoo.cc.o.d"
  "/root/repo/src/store/remote_kv.cc" "src/store/CMakeFiles/drtm_store.dir/remote_kv.cc.o" "gcc" "src/store/CMakeFiles/drtm_store.dir/remote_kv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/drtm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/drtm_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/drtm_rdma.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
