file(REMOVE_RECURSE
  "CMakeFiles/drtm_store.dir/bplus_tree.cc.o"
  "CMakeFiles/drtm_store.dir/bplus_tree.cc.o.d"
  "CMakeFiles/drtm_store.dir/cluster_hash.cc.o"
  "CMakeFiles/drtm_store.dir/cluster_hash.cc.o.d"
  "CMakeFiles/drtm_store.dir/farm_hopscotch.cc.o"
  "CMakeFiles/drtm_store.dir/farm_hopscotch.cc.o.d"
  "CMakeFiles/drtm_store.dir/location_cache.cc.o"
  "CMakeFiles/drtm_store.dir/location_cache.cc.o.d"
  "CMakeFiles/drtm_store.dir/pilaf_cuckoo.cc.o"
  "CMakeFiles/drtm_store.dir/pilaf_cuckoo.cc.o.d"
  "CMakeFiles/drtm_store.dir/remote_kv.cc.o"
  "CMakeFiles/drtm_store.dir/remote_kv.cc.o.d"
  "libdrtm_store.a"
  "libdrtm_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtm_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
