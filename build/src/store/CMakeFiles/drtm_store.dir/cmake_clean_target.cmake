file(REMOVE_RECURSE
  "libdrtm_store.a"
)
