# Empty dependencies file for drtm_store.
# This may be replaced when dependencies are built.
