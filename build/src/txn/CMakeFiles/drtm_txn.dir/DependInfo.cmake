
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/chopping.cc" "src/txn/CMakeFiles/drtm_txn.dir/chopping.cc.o" "gcc" "src/txn/CMakeFiles/drtm_txn.dir/chopping.cc.o.d"
  "/root/repo/src/txn/cluster.cc" "src/txn/CMakeFiles/drtm_txn.dir/cluster.cc.o" "gcc" "src/txn/CMakeFiles/drtm_txn.dir/cluster.cc.o.d"
  "/root/repo/src/txn/failure_detector.cc" "src/txn/CMakeFiles/drtm_txn.dir/failure_detector.cc.o" "gcc" "src/txn/CMakeFiles/drtm_txn.dir/failure_detector.cc.o.d"
  "/root/repo/src/txn/nvram_log.cc" "src/txn/CMakeFiles/drtm_txn.dir/nvram_log.cc.o" "gcc" "src/txn/CMakeFiles/drtm_txn.dir/nvram_log.cc.o.d"
  "/root/repo/src/txn/recovery.cc" "src/txn/CMakeFiles/drtm_txn.dir/recovery.cc.o" "gcc" "src/txn/CMakeFiles/drtm_txn.dir/recovery.cc.o.d"
  "/root/repo/src/txn/sync_time.cc" "src/txn/CMakeFiles/drtm_txn.dir/sync_time.cc.o" "gcc" "src/txn/CMakeFiles/drtm_txn.dir/sync_time.cc.o.d"
  "/root/repo/src/txn/transaction.cc" "src/txn/CMakeFiles/drtm_txn.dir/transaction.cc.o" "gcc" "src/txn/CMakeFiles/drtm_txn.dir/transaction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/drtm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/htm/CMakeFiles/drtm_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/drtm_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/drtm_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
