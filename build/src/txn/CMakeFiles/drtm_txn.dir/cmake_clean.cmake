file(REMOVE_RECURSE
  "CMakeFiles/drtm_txn.dir/chopping.cc.o"
  "CMakeFiles/drtm_txn.dir/chopping.cc.o.d"
  "CMakeFiles/drtm_txn.dir/cluster.cc.o"
  "CMakeFiles/drtm_txn.dir/cluster.cc.o.d"
  "CMakeFiles/drtm_txn.dir/failure_detector.cc.o"
  "CMakeFiles/drtm_txn.dir/failure_detector.cc.o.d"
  "CMakeFiles/drtm_txn.dir/nvram_log.cc.o"
  "CMakeFiles/drtm_txn.dir/nvram_log.cc.o.d"
  "CMakeFiles/drtm_txn.dir/recovery.cc.o"
  "CMakeFiles/drtm_txn.dir/recovery.cc.o.d"
  "CMakeFiles/drtm_txn.dir/sync_time.cc.o"
  "CMakeFiles/drtm_txn.dir/sync_time.cc.o.d"
  "CMakeFiles/drtm_txn.dir/transaction.cc.o"
  "CMakeFiles/drtm_txn.dir/transaction.cc.o.d"
  "libdrtm_txn.a"
  "libdrtm_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtm_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
