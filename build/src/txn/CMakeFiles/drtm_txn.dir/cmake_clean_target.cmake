file(REMOVE_RECURSE
  "libdrtm_txn.a"
)
