# Empty dependencies file for drtm_txn.
# This may be replaced when dependencies are built.
