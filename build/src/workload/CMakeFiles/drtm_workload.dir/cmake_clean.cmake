file(REMOVE_RECURSE
  "CMakeFiles/drtm_workload.dir/driver.cc.o"
  "CMakeFiles/drtm_workload.dir/driver.cc.o.d"
  "CMakeFiles/drtm_workload.dir/smallbank.cc.o"
  "CMakeFiles/drtm_workload.dir/smallbank.cc.o.d"
  "CMakeFiles/drtm_workload.dir/tpcc.cc.o"
  "CMakeFiles/drtm_workload.dir/tpcc.cc.o.d"
  "CMakeFiles/drtm_workload.dir/ycsb.cc.o"
  "CMakeFiles/drtm_workload.dir/ycsb.cc.o.d"
  "libdrtm_workload.a"
  "libdrtm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drtm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
