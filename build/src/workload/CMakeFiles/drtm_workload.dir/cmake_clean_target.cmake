file(REMOVE_RECURSE
  "libdrtm_workload.a"
)
