# Empty compiler generated dependencies file for drtm_workload.
# This may be replaced when dependencies are built.
