file(REMOVE_RECURSE
  "CMakeFiles/calvin_extended_test.dir/calvin_extended_test.cc.o"
  "CMakeFiles/calvin_extended_test.dir/calvin_extended_test.cc.o.d"
  "calvin_extended_test"
  "calvin_extended_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calvin_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
