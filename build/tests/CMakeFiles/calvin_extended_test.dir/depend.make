# Empty dependencies file for calvin_extended_test.
# This may be replaced when dependencies are built.
