file(REMOVE_RECURSE
  "CMakeFiles/calvin_test.dir/calvin_test.cc.o"
  "CMakeFiles/calvin_test.dir/calvin_test.cc.o.d"
  "calvin_test"
  "calvin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calvin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
