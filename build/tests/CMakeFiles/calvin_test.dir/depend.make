# Empty dependencies file for calvin_test.
# This may be replaced when dependencies are built.
