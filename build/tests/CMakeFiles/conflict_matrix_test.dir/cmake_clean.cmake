file(REMOVE_RECURSE
  "CMakeFiles/conflict_matrix_test.dir/conflict_matrix_test.cc.o"
  "CMakeFiles/conflict_matrix_test.dir/conflict_matrix_test.cc.o.d"
  "conflict_matrix_test"
  "conflict_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
