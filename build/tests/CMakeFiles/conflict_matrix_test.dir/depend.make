# Empty dependencies file for conflict_matrix_test.
# This may be replaced when dependencies are built.
