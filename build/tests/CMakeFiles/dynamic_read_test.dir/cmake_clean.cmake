file(REMOVE_RECURSE
  "CMakeFiles/dynamic_read_test.dir/dynamic_read_test.cc.o"
  "CMakeFiles/dynamic_read_test.dir/dynamic_read_test.cc.o.d"
  "dynamic_read_test"
  "dynamic_read_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_read_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
