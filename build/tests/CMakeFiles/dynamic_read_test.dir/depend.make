# Empty dependencies file for dynamic_read_test.
# This may be replaced when dependencies are built.
