file(REMOVE_RECURSE
  "CMakeFiles/htm_property_test.dir/htm_property_test.cc.o"
  "CMakeFiles/htm_property_test.dir/htm_property_test.cc.o.d"
  "htm_property_test"
  "htm_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htm_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
