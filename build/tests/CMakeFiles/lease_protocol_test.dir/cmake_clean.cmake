file(REMOVE_RECURSE
  "CMakeFiles/lease_protocol_test.dir/lease_protocol_test.cc.o"
  "CMakeFiles/lease_protocol_test.dir/lease_protocol_test.cc.o.d"
  "lease_protocol_test"
  "lease_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lease_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
