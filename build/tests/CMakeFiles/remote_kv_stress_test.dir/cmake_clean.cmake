file(REMOVE_RECURSE
  "CMakeFiles/remote_kv_stress_test.dir/remote_kv_stress_test.cc.o"
  "CMakeFiles/remote_kv_stress_test.dir/remote_kv_stress_test.cc.o.d"
  "remote_kv_stress_test"
  "remote_kv_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_kv_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
