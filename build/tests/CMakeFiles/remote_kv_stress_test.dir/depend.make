# Empty dependencies file for remote_kv_stress_test.
# This may be replaced when dependencies are built.
