file(REMOVE_RECURSE
  "CMakeFiles/tpcc_spec_test.dir/tpcc_spec_test.cc.o"
  "CMakeFiles/tpcc_spec_test.dir/tpcc_spec_test.cc.o.d"
  "tpcc_spec_test"
  "tpcc_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
