file(REMOVE_RECURSE
  "CMakeFiles/txn_protocol_test.dir/txn_protocol_test.cc.o"
  "CMakeFiles/txn_protocol_test.dir/txn_protocol_test.cc.o.d"
  "txn_protocol_test"
  "txn_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
