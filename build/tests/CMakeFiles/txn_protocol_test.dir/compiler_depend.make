# Empty compiler generated dependencies file for txn_protocol_test.
# This may be replaced when dependencies are built.
