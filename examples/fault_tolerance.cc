// Fault-tolerance walkthrough: run a transfer workload with logging
// enabled, fail-stop one machine mid-run, perform cooperative recovery
// from its NVRAM log (paper section 4.6), and verify that no money was
// created or destroyed and no lock was leaked.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/common/rand.h"
#include "src/htm/htm.h"
#include "src/store/kv_layout.h"
#include "src/txn/cluster.h"
#include "src/txn/lock_state.h"
#include "src/txn/recovery.h"
#include "src/txn/transaction.h"

namespace {

constexpr uint64_t kAccounts = 64;
constexpr uint64_t kInitialBalance = 1000;

}  // namespace

int main() {
  using namespace drtm;

  txn::ClusterConfig config;
  config.num_nodes = 3;
  config.workers_per_node = 1;
  config.region_bytes = 32 << 20;
  config.logging = true;  // lock-ahead + write-ahead logs to "NVRAM"
  txn::Cluster cluster(config);

  txn::TableSpec spec;
  spec.value_size = sizeof(uint64_t);
  spec.partition = [](uint64_t key) { return static_cast<int>(key % 3); };
  const int table = cluster.AddTable(spec);
  cluster.Start();

  for (uint64_t k = 0; k < kAccounts; ++k) {
    cluster.hash_table(cluster.PartitionOf(table, k), table)
        ->Insert(k, &kInitialBalance);
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      txn::Worker worker(&cluster, t, 0);
      Xoshiro256 rng(17 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t from = rng.NextBounded(kAccounts);
        uint64_t to = rng.NextBounded(kAccounts);
        if (to == from) {
          to = (to + 1) % kAccounts;
        }
        txn::Transaction txn(&worker);
        txn.AddWrite(table, from);
        txn.AddWrite(table, to);
        (void)txn.Run([&](txn::Transaction& t2) {
          uint64_t a = 0;
          uint64_t b = 0;
          if (!t2.Read(table, from, &a) || !t2.Read(table, to, &b)) {
            return false;
          }
          if (a == 0) {
            return true;
          }
          a -= 1;
          b += 1;
          return t2.Write(table, from, &a) && t2.Write(table, to, &b);
        });
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::printf("crashing node 2 mid-workload...\n");
  cluster.Crash(2);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  txn::RecoveryManager recovery(&cluster);
  auto report = recovery.Recover(2);
  std::printf(
      "recovery pass 1 (node down): %d committed redone, %d aborted rolled "
      "back, %d locks released\n",
      report.committed_txns, report.aborted_txns, report.released_locks);

  cluster.Revive(2);
  report = recovery.Recover(2);
  std::printf("recovery pass 2 (after revive): %d locks released\n",
              report.released_locks);

  stop.store(true);
  for (auto& worker : workers) {
    worker.join();
  }

  uint64_t sum = 0;
  int leaked_locks = 0;
  for (uint64_t k = 0; k < kAccounts; ++k) {
    store::ClusterHashTable* host =
        cluster.hash_table(cluster.PartitionOf(table, k), table);
    uint64_t balance = 0;
    host->Get(k, &balance);
    sum += balance;
    const uint64_t entry = host->FindEntry(k);
    if (txn::IsWriteLocked(htm::StrongLoad(host->StatePtr(entry)))) {
      ++leaked_locks;
    }
  }
  std::printf("total money: %llu (expected %llu), leaked locks: %d\n",
              static_cast<unsigned long long>(sum),
              static_cast<unsigned long long>(kAccounts * kInitialBalance),
              leaked_locks);
  cluster.Stop();
  return (sum == kAccounts * kInitialBalance && leaked_locks == 0) ? 0 : 1;
}
