// DrTM-KV demo: remote GETs over one-sided RDMA with and without the
// location-based cache, printing the average number of RDMA READs per
// lookup (the metric of the paper's Table 4 / Fig. 10(d)).
#include <cstdio>
#include <vector>

#include "src/common/zipf.h"
#include "src/rdma/fabric.h"
#include "src/store/cluster_hash.h"
#include "src/store/location_cache.h"
#include "src/store/remote_kv.h"

int main() {
  using namespace drtm;

  rdma::Fabric::Config config;
  config.num_nodes = 2;
  config.region_bytes = 256 << 20;
  config.latency = rdma::LatencyModel::Calibrated(0.1);
  rdma::Fabric fabric(config);

  store::ClusterHashTable::Config table_config;
  table_config.main_buckets = 1 << 14;
  table_config.indirect_buckets = 1 << 12;
  table_config.capacity = 1 << 17;
  table_config.value_size = 64;
  store::ClusterHashTable host(&fabric.memory(1), table_config);

  constexpr uint64_t kKeys = 100000;
  std::vector<uint8_t> value(64, 0xcd);
  for (uint64_t k = 0; k < kKeys; ++k) {
    host.Insert(k, value.data());
  }
  std::printf("host node 1 holds %llu key-value pairs\n",
              static_cast<unsigned long long>(host.live_entries()));

  ZipfGenerator zipf(kKeys, 0.99, 7);
  constexpr int kLookups = 20000;

  auto run = [&](store::LocationCache* cache, const char* label) {
    store::RemoteKv client(&fabric, 1, host.geometry(), cache);
    rdma::LocalThreadStats().Reset();
    std::vector<uint8_t> out(64);
    int found = 0;
    for (int i = 0; i < kLookups; ++i) {
      found += client.Get(zipf.Next(), out.data()) ? 1 : 0;
    }
    const double reads_per_lookup =
        static_cast<double>(rdma::LocalThreadStats().reads) / kLookups;
    std::printf("%-28s %d/%d found, %.3f RDMA READs per GET\n", label, found,
                kLookups, reads_per_lookup);
  };

  run(nullptr, "uncached client:");
  store::LocationCache cache(16 << 20);  // 16 MB caches ~1M locations
  run(&cache, "location-cached client:");
  std::printf("cache: %llu hits, %llu misses\n",
              static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.misses()));
  return 0;
}
