// Quickstart: a two-node DrTM cluster, one table, one distributed
// transaction, one read-only transaction.
//
//   $ ./quickstart
//
// Demonstrates the public API end to end: cluster setup, table
// registration with a partition function, loading, Transaction with
// declared read/write sets, and ReadOnlyTransaction.
#include <cstdio>

#include "src/txn/cluster.h"
#include "src/txn/transaction.h"

int main() {
  using namespace drtm;

  // 1. A cluster of two simulated machines connected by "RDMA".
  txn::ClusterConfig config;
  config.num_nodes = 2;
  config.workers_per_node = 1;
  config.region_bytes = 32 << 20;
  // Paper-calibrated network latency, scaled 10x down for the host.
  config.latency = rdma::LatencyModel::Calibrated(0.1);
  txn::Cluster cluster(config);

  // 2. One key-value table, partitioned by key parity.
  txn::TableSpec spec;
  spec.value_size = sizeof(uint64_t);
  spec.partition = [](uint64_t key) { return static_cast<int>(key % 2); };
  const int kAccounts = cluster.AddTable(spec);

  cluster.Start();

  // 3. Load two accounts, one per node.
  const uint64_t alice = 0;  // node 0
  const uint64_t bob = 1;    // node 1
  const uint64_t initial = 100;
  cluster.hash_table(0, kAccounts)->Insert(alice, &initial);
  cluster.hash_table(1, kAccounts)->Insert(bob, &initial);

  // 4. A distributed transaction from node 0: alice (local record, HTM)
  //    pays bob (remote record: RDMA CAS lock + prefetch + write-back).
  txn::Worker worker(&cluster, /*node=*/0, /*worker_id=*/0);
  txn::Transaction txn(&worker);
  txn.AddWrite(kAccounts, alice);
  txn.AddWrite(kAccounts, bob);
  const txn::TxnStatus status = txn.Run([&](txn::Transaction& t) {
    uint64_t a = 0;
    uint64_t b = 0;
    if (!t.Read(kAccounts, alice, &a) || !t.Read(kAccounts, bob, &b)) {
      return false;
    }
    a -= 30;
    b += 30;
    return t.Write(kAccounts, alice, &a) && t.Write(kAccounts, bob, &b);
  });
  std::printf("transfer committed: %s\n",
              status == txn::TxnStatus::kCommitted ? "yes" : "no");

  // 5. A read-only transaction (lease-based, no HTM region): a consistent
  //    snapshot of both balances.
  txn::ReadOnlyTransaction ro(&worker);
  ro.AddRead(kAccounts, alice);
  ro.AddRead(kAccounts, bob);
  if (ro.Execute() == txn::TxnStatus::kCommitted) {
    uint64_t a = 0;
    uint64_t b = 0;
    ro.Get(kAccounts, alice, &a);
    ro.Get(kAccounts, bob, &b);
    std::printf("alice=%llu bob=%llu (sum %llu)\n",
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b),
                static_cast<unsigned long long>(a + b));
  }

  cluster.Stop();
  return 0;
}
