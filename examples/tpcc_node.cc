// TPC-C demo: a small cluster runs the standard mix for a second and
// reports per-type throughput plus the database consistency check.
#include <atomic>
#include <cstdio>

#include "src/workload/driver.h"
#include "src/workload/tpcc.h"

int main() {
  using namespace drtm;

  txn::ClusterConfig config;
  config.num_nodes = 2;
  config.workers_per_node = 2;
  config.region_bytes = 96 << 20;
  config.latency = rdma::LatencyModel::Calibrated(0.1);
  txn::Cluster cluster(config);

  workload::TpccDb::Params params;
  params.warehouses = 4;
  params.customers_per_district = 120;
  params.items = 500;
  workload::TpccDb db(&cluster, params);

  cluster.Start();
  db.Load();
  std::printf("loaded %d warehouses over %d nodes\n", params.warehouses,
              config.num_nodes);

  std::atomic<uint64_t> per_type[5] = {};
  workload::RunOptions options;
  options.nodes = config.num_nodes;
  options.workers_per_node = config.workers_per_node;
  options.warmup_ms = 200;
  options.duration_ms = 1000;
  const workload::RunResult result =
      workload::RunWorkers(&cluster, options, [&](txn::Worker& worker) {
        const auto mix = db.RunMix(&worker);
        if (mix.status == txn::TxnStatus::kCommitted) {
          per_type[static_cast<int>(mix.type)].fetch_add(1);
          return true;
        }
        return false;
      });

  static const char* kNames[5] = {"new-order", "payment", "order-status",
                                  "delivery", "stock-level"};
  std::printf("standard-mix throughput: %.0f txns/sec (abort rate %.2f%%)\n",
              result.Throughput(), result.AbortRate() * 100);
  for (int i = 0; i < 5; ++i) {
    std::printf("  %-12s %8llu committed\n", kNames[i],
                static_cast<unsigned long long>(per_type[i].load()));
  }
  std::printf("latency (us): %s\n", result.latency_us.Summary().c_str());
  std::printf("HTM: %llu commits, %llu aborts; fallbacks: %llu\n",
              static_cast<unsigned long long>(result.htm_stats.commits),
              static_cast<unsigned long long>(result.htm_stats.TotalAborts()),
              static_cast<unsigned long long>(result.txn_stats.fallbacks));

  const bool consistent = db.CheckConsistency();
  std::printf("consistency check: %s\n", consistent ? "PASS" : "FAIL");
  cluster.Stop();
  return consistent ? 0 : 1;
}
