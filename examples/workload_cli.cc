// Configurable workload runner: pick a workload, cluster shape, and
// duration from the command line and get a full statistics report.
//
//   ./workload_cli [--workload=tpcc|smallbank|ycsb-a|ycsb-b|ycsb-c]
//                  [--nodes=N] [--workers=W] [--ms=D] [--latency=S]
//                  [--logging]
//
// Example: ./workload_cli --workload=smallbank --nodes=3 --workers=2
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/workload/driver.h"
#include "src/workload/smallbank.h"
#include "src/workload/tpcc.h"
#include "src/workload/ycsb.h"

namespace {

using namespace drtm;

struct Options {
  std::string workload = "smallbank";
  int nodes = 2;
  int workers = 2;
  uint64_t ms = 1000;
  double latency_scale = 0.1;
  bool logging = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

Options ParseOptions(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "workload", &value)) {
      options.workload = value;
    } else if (ParseFlag(argv[i], "nodes", &value)) {
      options.nodes = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "workers", &value)) {
      options.workers = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "ms", &value)) {
      options.ms = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "latency", &value)) {
      options.latency_scale = std::atof(value.c_str());
    } else if (std::strcmp(argv[i], "--logging") == 0) {
      options.logging = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return options;
}

void Report(const workload::RunResult& result) {
  std::printf("throughput      : %.0f txns/sec\n", result.Throughput());
  std::printf("committed       : %llu of %llu attempts (abort %.2f%%)\n",
              static_cast<unsigned long long>(result.committed),
              static_cast<unsigned long long>(result.attempted),
              result.AbortRate() * 100);
  std::printf("latency (us)    : %s\n", result.latency_us.Summary().c_str());
  const auto& t = result.txn_stats;
  std::printf(
      "txn layer       : start-conflicts %llu, htm aborts "
      "(conflict/capacity/lock/lease) %llu/%llu/%llu/%llu, fallbacks %llu\n",
      static_cast<unsigned long long>(t.start_conflicts),
      static_cast<unsigned long long>(t.htm_conflict_aborts),
      static_cast<unsigned long long>(t.htm_capacity_aborts),
      static_cast<unsigned long long>(t.htm_lock_aborts),
      static_cast<unsigned long long>(t.htm_lease_aborts),
      static_cast<unsigned long long>(t.fallbacks));
  std::printf("read-only       : %llu committed, %llu retries\n",
              static_cast<unsigned long long>(t.read_only_committed),
              static_cast<unsigned long long>(t.read_only_retries));
  std::printf("HTM             : %llu commits, %llu aborts\n",
              static_cast<unsigned long long>(result.htm_stats.commits),
              static_cast<unsigned long long>(
                  result.htm_stats.TotalAborts()));
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseOptions(argc, argv);

  txn::ClusterConfig config;
  config.num_nodes = options.nodes;
  config.workers_per_node = options.workers;
  config.region_bytes = 96 << 20;
  config.latency = rdma::LatencyModel::Calibrated(options.latency_scale);
  config.logging = options.logging;
  txn::Cluster cluster(config);

  workload::RunOptions run;
  run.nodes = options.nodes;
  run.workers_per_node = options.workers;
  run.warmup_ms = options.ms / 4;
  run.duration_ms = options.ms;

  std::printf("workload=%s nodes=%d workers/node=%d duration=%llums "
              "latency-scale=%.2f logging=%s\n",
              options.workload.c_str(), options.nodes, options.workers,
              static_cast<unsigned long long>(options.ms),
              options.latency_scale, options.logging ? "on" : "off");

  if (options.workload == "tpcc") {
    workload::TpccDb::Params params;
    params.warehouses = options.nodes * 2;
    params.customers_per_district = 100;
    params.items = 400;
    workload::TpccDb db(&cluster, params);
    cluster.Start();
    db.Load();
    const auto result =
        workload::RunWorkers(&cluster, run, [&](txn::Worker& worker) {
          return db.RunMix(&worker).status == txn::TxnStatus::kCommitted;
        });
    Report(result);
    std::printf("consistency     : %s\n",
                db.CheckConsistency() ? "PASS" : "FAIL");
  } else if (options.workload == "smallbank") {
    workload::SmallBankDb::Params params;
    workload::SmallBankDb db(&cluster, params);
    cluster.Start();
    db.Load();
    const auto result =
        workload::RunWorkers(&cluster, run, [&](txn::Worker& worker) {
          return db.RunMix(&worker).status == txn::TxnStatus::kCommitted;
        });
    Report(result);
  } else if (options.workload.rfind("ycsb-", 0) == 0) {
    workload::YcsbDb::Params params;
    const char mix = options.workload.back();
    params.mix = mix == 'a'   ? workload::YcsbDb::Mix::kA
                 : mix == 'b' ? workload::YcsbDb::Mix::kB
                 : mix == 'f' ? workload::YcsbDb::Mix::kF
                              : workload::YcsbDb::Mix::kC;
    workload::YcsbDb db(&cluster, params);
    cluster.Start();
    db.Load();
    const auto result = workload::RunWorkers(
        &cluster, run,
        [&](txn::Worker& worker) { return db.RunTxn(&worker).committed; });
    Report(result);
  } else {
    std::fprintf(stderr, "unknown workload: %s\n", options.workload.c_str());
    return 2;
  }
  cluster.Stop();
  return 0;
}
