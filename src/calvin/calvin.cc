#include "src/calvin/calvin.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/clock.h"

namespace drtm {
namespace calvin {

namespace {
constexpr uint32_t kMsgBatch = 1;
constexpr uint32_t kMsgReads = 2;

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t base = out->size();
  out->resize(base + 8);
  std::memcpy(out->data() + base, &v, 8);
}

uint64_t ReadU64(const std::vector<uint8_t>& in, size_t* pos) {
  uint64_t v;
  std::memcpy(&v, in.data() + *pos, 8);
  *pos += 8;
  return v;
}
}  // namespace

struct CalvinCluster::LockQueue {
  struct Waiter {
    std::shared_ptr<PendingTxn> txn;
    bool exclusive;
    bool granted = false;
  };
  std::deque<Waiter> waiters;
};

struct CalvinCluster::PendingTxn {
  std::shared_ptr<TxnRequest> request;
  std::vector<std::pair<RecordKey, bool>> local_locks;  // key, exclusive
  size_t locks_granted = 0;
  std::vector<int> participants;
  int awaiting_peers = 0;
  bool reads_collected = false;
  ReadMap reads;
};

struct CalvinCluster::NodeState {
  int id = 0;
  std::mutex mu;
  std::condition_variable ready_cv;
  std::unordered_map<RecordKey, LockQueue, RecordKeyHash> lock_table;
  std::deque<std::shared_ptr<PendingTxn>> ready;
  std::unordered_map<uint64_t, std::shared_ptr<PendingTxn>> pending;
  // Remote reads that arrived before this node processed the batch.
  std::unordered_map<uint64_t, ReadMap> early_reads;
  std::unordered_map<uint64_t, int> early_read_sources;
  std::unordered_map<RecordKey, Row, RecordKeyHash> rows;
};

CalvinCluster::CalvinCluster(const Config& config) : config_(config) {
  rdma::Fabric::Config fabric_config;
  fabric_config.num_nodes = config.num_nodes;
  fabric_config.region_bytes = 1 << 20;  // messaging only
  fabric_config.latency = config.latency_scale == 0.0
                              ? rdma::LatencyModel::Zero()
                              : rdma::LatencyModel::Ipoib(config.latency_scale);
  fabric_ = std::make_unique<rdma::Fabric>(fabric_config);
  for (int i = 0; i < config.num_nodes; ++i) {
    auto node = std::make_unique<NodeState>();
    node->id = i;
    nodes_.push_back(std::move(node));
  }
}

CalvinCluster::~CalvinCluster() { Stop(); }

int CalvinCluster::AddTable(std::function<int(uint64_t)> partition) {
  partitions_.push_back(std::move(partition));
  return static_cast<int>(partitions_.size()) - 1;
}

void CalvinCluster::LoadRow(int table, uint64_t key, Row row) {
  NodeState& node = *nodes_[static_cast<size_t>(PartitionOf(table, key))];
  node.rows[RecordKey{table, key}] = std::move(row);
}

bool CalvinCluster::PeekRow(int table, uint64_t key, Row* out) {
  NodeState& node = *nodes_[static_cast<size_t>(PartitionOf(table, key))];
  std::lock_guard<std::mutex> lock(node.mu);
  auto it = node.rows.find(RecordKey{table, key});
  if (it == node.rows.end()) {
    return false;
  }
  *out = it->second;
  return true;
}

std::vector<int> CalvinCluster::ParticipantsOf(
    const TxnRequest& request) const {
  std::vector<int> nodes;
  auto add = [&](const RecordKey& key) {
    const int node = PartitionOf(key.table, key.key);
    if (std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
      nodes.push_back(node);
    }
  };
  for (const RecordKey& key : request.read_set) {
    add(key);
  }
  for (const RecordKey& key : request.write_set) {
    add(key);
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

void CalvinCluster::Start() {
  if (running_.exchange(true)) {
    return;
  }
  threads_.emplace_back([this] { SequencerLoop(); });
  for (int n = 0; n < config_.num_nodes; ++n) {
    threads_.emplace_back([this, n] { SchedulerLoop(n); });
    for (int w = 0; w < config_.workers_per_node; ++w) {
      threads_.emplace_back([this, n] { WorkerLoop(n); });
    }
  }
}

void CalvinCluster::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  for (int n = 0; n < config_.num_nodes; ++n) {
    fabric_->queue(n).Shutdown();
    nodes_[static_cast<size_t>(n)]->ready_cv.notify_all();
  }
  for (auto& thread : threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
  threads_.clear();
}

void CalvinCluster::Execute(std::shared_ptr<TxnRequest> request) {
  // Client -> sequencer hop (one IPoIB message worth of latency).
  SpinFor(fabric_->latency().SendNs(config_.bytes_per_txn_on_wire));
  {
    std::lock_guard<std::mutex> lock(submit_mu_);
    submit_queue_.push_back(request);
  }
  std::unique_lock<std::mutex> lock(request->done_mu);
  request->done_cv.wait(lock, [&] { return request->done; });
}

void CalvinCluster::Quiesce() {
  // Callers guarantee all Execute() calls have returned, and the home
  // node's commit (which finalizes expected_) happens before Execute()
  // signals done — so expected_ is already final here and applied_ only
  // climbs toward it as the remaining participants install their writes.
  while (running_.load(std::memory_order_acquire) &&
         applied_participations_.load(std::memory_order_acquire) <
             expected_participations_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

void CalvinCluster::SequencerLoop() {
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(config_.epoch_us));
    std::deque<std::shared_ptr<TxnRequest>> batch;
    {
      std::lock_guard<std::mutex> lock(submit_mu_);
      batch.swap(submit_queue_);
    }
    if (batch.empty()) {
      continue;
    }
    std::vector<uint8_t> payload;
    AppendU64(&payload, batch.size());
    {
      std::lock_guard<std::mutex> lock(registry_mu_);
      for (auto& request : batch) {
        request->global_id = next_global_id_.fetch_add(1);
        AppendU64(&payload, registry_.size());
        registry_.push_back(request);
      }
    }
    // Account for the real wire size of shipping full transaction inputs.
    payload.resize(payload.size() +
                   batch.size() * config_.bytes_per_txn_on_wire);
    for (int n = 0; n < config_.num_nodes; ++n) {
      fabric_->Send(0, n, kMsgBatch, payload);
    }
  }
}

void CalvinCluster::RequestLocks(NodeState& node,
                                 const std::shared_ptr<PendingTxn>& txn) {
  // Deduplicated local keys; writes take exclusive locks.
  std::map<RecordKey, bool> wanted;
  for (const RecordKey& key : txn->request->read_set) {
    if (PartitionOf(key.table, key.key) == node.id) {
      wanted.emplace(key, false);
    }
  }
  for (const RecordKey& key : txn->request->write_set) {
    if (PartitionOf(key.table, key.key) == node.id) {
      wanted[key] = true;
    }
  }
  for (const auto& [key, exclusive] : wanted) {
    txn->local_locks.emplace_back(key, exclusive);
  }
  for (const auto& [key, exclusive] : txn->local_locks) {
    LockQueue& queue = node.lock_table[key];
    queue.waiters.push_back(LockQueue::Waiter{txn, exclusive, false});
    TryGrant(node, queue);
  }
  if (txn->local_locks.empty()) {
    // Participant via reads hosted elsewhere only — cannot happen, since
    // participation is defined by hosting a key; still, treat as granted.
    OnAllLocksGranted(node, txn);
  }
}

void CalvinCluster::TryGrant(NodeState& node, LockQueue& queue) {
  bool exclusive_seen = false;
  bool any_granted = false;
  for (auto& waiter : queue.waiters) {
    if (waiter.granted) {
      any_granted = true;
      exclusive_seen |= waiter.exclusive;
      continue;
    }
    if (waiter.exclusive) {
      if (any_granted || exclusive_seen) {
        break;
      }
      waiter.granted = true;
      any_granted = true;
      exclusive_seen = true;
      waiter.txn->locks_granted++;
      if (waiter.txn->locks_granted == waiter.txn->local_locks.size()) {
        OnAllLocksGranted(node, waiter.txn);
      }
      break;
    }
    if (exclusive_seen) {
      break;
    }
    waiter.granted = true;
    any_granted = true;
    waiter.txn->locks_granted++;
    if (waiter.txn->locks_granted == waiter.txn->local_locks.size()) {
      OnAllLocksGranted(node, waiter.txn);
    }
  }
}

void CalvinCluster::OnAllLocksGranted(NodeState& node,
                                      const std::shared_ptr<PendingTxn>& txn) {
  // Collect this node's read values and push them to the other
  // participants immediately (Calvin serves remote reads as soon as the
  // locks are held, which is what makes bounded worker pools safe).
  ReadMap local_reads;
  for (const RecordKey& key : txn->request->read_set) {
    if (PartitionOf(key.table, key.key) != node.id) {
      continue;
    }
    auto it = node.rows.find(key);
    local_reads[key] = it != node.rows.end() ? it->second : Row{};
  }
  txn->reads = local_reads;
  txn->reads_collected = true;

  if (txn->participants.size() > 1) {
    std::vector<uint8_t> payload;
    AppendU64(&payload, txn->request->global_id);
    AppendU64(&payload, local_reads.size());
    for (const auto& [key, row] : local_reads) {
      AppendU64(&payload, static_cast<uint64_t>(key.table));
      AppendU64(&payload, key.key);
      AppendU64(&payload, row.size());
      payload.insert(payload.end(), row.begin(), row.end());
    }
    for (int peer : txn->participants) {
      if (peer != node.id) {
        fabric_->Send(node.id, peer, kMsgReads, payload);
      }
    }
  }

  // Merge reads that raced ahead of the batch.
  auto early = node.early_reads.find(txn->request->global_id);
  if (early != node.early_reads.end()) {
    for (auto& [key, row] : early->second) {
      txn->reads[key] = std::move(row);
    }
    txn->awaiting_peers -= node.early_read_sources[txn->request->global_id];
    node.early_reads.erase(early);
    node.early_read_sources.erase(txn->request->global_id);
  }

  if (txn->awaiting_peers <= 0) {
    node.ready.push_back(txn);
    node.ready_cv.notify_one();
  }
}

void CalvinCluster::SchedulerLoop(int node_index) {
  NodeState& node = *nodes_[static_cast<size_t>(node_index)];
  while (running_.load(std::memory_order_acquire)) {
    rdma::Message msg;
    if (!fabric_->queue(node_index).PopWait(&msg, 1000)) {
      continue;
    }
    if (msg.kind == kMsgBatch) {
      size_t pos = 0;
      const uint64_t count = ReadU64(msg.payload, &pos);
      for (uint64_t i = 0; i < count; ++i) {
        const uint64_t registry_index = ReadU64(msg.payload, &pos);
        std::shared_ptr<TxnRequest> request;
        {
          std::lock_guard<std::mutex> lock(registry_mu_);
          request = registry_[registry_index];
        }
        const std::vector<int> participants = ParticipantsOf(*request);
        if (std::find(participants.begin(), participants.end(), node_index) ==
            participants.end()) {
          continue;
        }
        auto txn = std::make_shared<PendingTxn>();
        txn->request = request;
        txn->participants = participants;
        txn->awaiting_peers = static_cast<int>(participants.size()) - 1;
        std::lock_guard<std::mutex> lock(node.mu);
        node.pending.emplace(request->global_id, txn);
        RequestLocks(node, txn);
      }
    } else if (msg.kind == kMsgReads) {
      size_t pos = 0;
      const uint64_t txn_id = ReadU64(msg.payload, &pos);
      const uint64_t entries = ReadU64(msg.payload, &pos);
      ReadMap reads;
      for (uint64_t i = 0; i < entries; ++i) {
        RecordKey key;
        key.table = static_cast<int32_t>(ReadU64(msg.payload, &pos));
        key.key = ReadU64(msg.payload, &pos);
        const uint64_t len = ReadU64(msg.payload, &pos);
        Row row(msg.payload.begin() + static_cast<long>(pos),
                msg.payload.begin() + static_cast<long>(pos + len));
        pos += len;
        reads.emplace(key, std::move(row));
      }
      std::lock_guard<std::mutex> lock(node.mu);
      auto it = node.pending.find(txn_id);
      if (it == node.pending.end() || !it->second->reads_collected) {
        // Reads raced ahead of the batch (or ahead of our lock grant).
        auto& stash = node.early_reads[txn_id];
        for (auto& [key, row] : reads) {
          stash[key] = std::move(row);
        }
        node.early_read_sources[txn_id] += 1;
        continue;
      }
      PendingTxn& txn = *it->second;
      for (auto& [key, row] : reads) {
        txn.reads[key] = std::move(row);
      }
      if (--txn.awaiting_peers == 0 &&
          txn.locks_granted == txn.local_locks.size()) {
        node.ready.push_back(it->second);
        node.ready_cv.notify_one();
      }
    }
  }
}

void CalvinCluster::ReleaseLocks(NodeState& node, PendingTxn& txn) {
  for (const auto& [key, exclusive] : txn.local_locks) {
    auto it = node.lock_table.find(key);
    if (it == node.lock_table.end()) {
      continue;
    }
    LockQueue& queue = it->second;
    for (auto waiter = queue.waiters.begin(); waiter != queue.waiters.end();
         ++waiter) {
      if (waiter->txn.get() == &txn) {
        queue.waiters.erase(waiter);
        break;
      }
    }
    if (queue.waiters.empty()) {
      node.lock_table.erase(it);
    } else {
      TryGrant(node, queue);
    }
  }
}

void CalvinCluster::WorkerLoop(int node_index) {
  NodeState& node = *nodes_[static_cast<size_t>(node_index)];
  while (running_.load(std::memory_order_acquire)) {
    std::shared_ptr<PendingTxn> txn;
    {
      std::unique_lock<std::mutex> lock(node.mu);
      node.ready_cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return !node.ready.empty() ||
               !running_.load(std::memory_order_acquire);
      });
      if (node.ready.empty()) {
        continue;
      }
      txn = node.ready.front();
      node.ready.pop_front();
    }

    WriteMap writes;
    txn->request->logic(txn->reads, &writes);

    {
      std::lock_guard<std::mutex> lock(node.mu);
      for (auto& [key, row] : writes) {
        if (PartitionOf(key.table, key.key) == node_index) {
          node.rows[key] = std::move(row);
        }
      }
      ReleaseLocks(node, *txn);
      node.pending.erase(txn->request->global_id);
    }
    applied_participations_.fetch_add(1, std::memory_order_release);

    if (txn->request->home_node == node_index) {
      expected_participations_.fetch_add(txn->participants.size(),
                                         std::memory_order_relaxed);
      committed_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(txn->request->done_mu);
        txn->request->done = true;
      }
      txn->request->done_cv.notify_all();
    }
  }
}

}  // namespace calvin
}  // namespace drtm
