// A compact Calvin baseline (Thomson et al., SIGMOD'12), the comparison
// system of the paper's Fig. 12/13.
//
// Faithful-in-shape pieces:
//   * clients submit transactions with pre-declared read/write sets;
//   * a global sequencer batches submissions into fixed epochs and
//     broadcasts each epoch's batch to every node in a global order;
//   * each node's scheduler thread acquires that node's locks in the
//     deterministic global order (shared for reads, exclusive for
//     writes), collects the local read values and pushes them to the
//     other participants as soon as the locks are granted;
//   * worker threads wait for the remote reads, run the deterministic
//     transaction logic, apply the local writes and release the locks;
//   * all traffic crosses the messaging fabric at IPoIB latency — the
//     paper runs Calvin over IPoIB because it was not designed for RDMA.
//
// Simulation shortcut: transaction bodies are std::functions, so the
// batch broadcast carries transaction *ids* while bodies live in a
// process-global registry; the broadcast still pays per-transaction
// serialized bytes on the wire.
#ifndef SRC_CALVIN_CALVIN_H_
#define SRC_CALVIN_CALVIN_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/rdma/fabric.h"

namespace drtm {
namespace calvin {

struct RecordKey {
  int32_t table;
  uint64_t key;

  bool operator<(const RecordKey& o) const {
    return table != o.table ? table < o.table : key < o.key;
  }
  bool operator==(const RecordKey& o) const {
    return table == o.table && key == o.key;
  }
};

struct RecordKeyHash {
  size_t operator()(const RecordKey& k) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(k.table) << 56) ^
                                 k.key * 0x9e3779b97f4a7c15ULL);
  }
};

using Row = std::vector<uint8_t>;
using ReadMap = std::map<RecordKey, Row>;
using WriteMap = std::map<RecordKey, Row>;

// Deterministic transaction logic: given the full read set, produce the
// write set. Runs identically at every participant.
using TxnLogic = std::function<void(const ReadMap& reads, WriteMap* writes)>;

struct TxnRequest {
  std::vector<RecordKey> read_set;
  std::vector<RecordKey> write_set;
  TxnLogic logic;
  int home_node = 0;  // completion is signaled when this node applies

  // Filled by the runtime.
  uint64_t global_id = 0;
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
};

class CalvinCluster {
 public:
  struct Config {
    int num_nodes = 2;
    int workers_per_node = 2;
    uint64_t epoch_us = 5000;  // Calvin's batching interval
    double latency_scale = 0.0;  // 0 = no simulated latency (tests)
    size_t bytes_per_txn_on_wire = 96;
  };

  explicit CalvinCluster(const Config& config);
  ~CalvinCluster();

  CalvinCluster(const CalvinCluster&) = delete;
  CalvinCluster& operator=(const CalvinCluster&) = delete;

  // Table partitioning, mirroring the DrTM cluster's scheme.
  int AddTable(std::function<int(uint64_t)> partition);
  int PartitionOf(int table, uint64_t key) const {
    return partitions_[static_cast<size_t>(table)](key);
  }

  // Direct storage access for loading (single-threaded, before Start).
  void LoadRow(int table, uint64_t key, Row row);
  bool PeekRow(int table, uint64_t key, Row* out);

  void Start();
  void Stop();

  // Blocking submit: returns once the transaction has been applied at its
  // home node. Thread-safe; callable from any client thread.
  void Execute(std::shared_ptr<TxnRequest> request);

  // Waits until every participant of every committed transaction has
  // applied its writes. Execute() returns at the home node's commit, so a
  // distributed transaction's remote writes may still be in flight when
  // the client resumes; call this before reading cross-partition state
  // directly (PeekRow). Only meaningful once the submitting clients have
  // returned from Execute().
  void Quiesce();

  uint64_t committed() const {
    return committed_.load(std::memory_order_relaxed);
  }

 private:
  struct LockQueue;
  struct NodeState;
  struct PendingTxn;

  void SequencerLoop();
  void SchedulerLoop(int node);
  void WorkerLoop(int node);

  // Lock-manager helpers (NodeState::mu held).
  void RequestLocks(NodeState& node, const std::shared_ptr<PendingTxn>& txn);
  void ReleaseLocks(NodeState& node, PendingTxn& txn);
  void TryGrant(NodeState& node, LockQueue& queue);
  void OnAllLocksGranted(NodeState& node,
                         const std::shared_ptr<PendingTxn>& txn);

  std::vector<int> ParticipantsOf(const TxnRequest& request) const;

  Config config_;
  std::unique_ptr<rdma::Fabric> fabric_;
  std::vector<std::function<int(uint64_t)>> partitions_;

  // Process-global registry standing in for shipping bodies on the wire.
  std::mutex registry_mu_;
  std::vector<std::shared_ptr<TxnRequest>> registry_;

  // Sequencer input.
  std::mutex submit_mu_;
  std::deque<std::shared_ptr<TxnRequest>> submit_queue_;

  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> committed_{0};
  std::atomic<uint64_t> next_global_id_{1};
  // Quiesce() bookkeeping: the home node's commit adds the transaction's
  // participant count to expected_; every participant (home included)
  // bumps applied_ after installing its writes.
  std::atomic<uint64_t> expected_participations_{0};
  std::atomic<uint64_t> applied_participations_{0};
};

}  // namespace calvin
}  // namespace drtm

#endif  // SRC_CALVIN_CALVIN_H_
