#include "src/chaos/chaos_replay.h"

#include <map>
#include <memory>
#include <utility>

#include "src/chaos/chaos_run.h"
#include "src/chaos/chaos_workload.h"
#include "src/common/rand.h"
#include "src/txn/transaction.h"

namespace drtm {
namespace chaos {
namespace {

// One recorded worker identity, hosted on the replay thread. The rng is
// the same per-identity stream the chaos worker loop seeds, resumed from
// op 0 — the replayer guarantees each identity's ops arrive in ascending
// order, so the draw sequence stays aligned with the recording.
struct ReplayWorker {
  std::unique_ptr<txn::Worker> worker;
  Xoshiro256 rng;

  ReplayWorker(txn::Cluster* cluster, uint64_t seed, int node, int worker_id)
      : worker(std::make_unique<txn::Worker>(cluster, node, worker_id)),
        rng(seed * 0x9e3779b97f4a7c15ULL + 1 +
            static_cast<uint64_t>(node * 64 + worker_id)) {}
};

}  // namespace

ChaosReplayResult ReplayChaosLog(const replay::ReplayLog& log) {
  ChaosReplayResult result;
  ChaosWorkload workload;
  if (!ParseChaosWorkload(log.workload, &workload)) {
    result.error = "log header names unknown workload '" + log.workload + "'";
    return result;
  }
  if (log.nodes < 1 || log.workers_per_node < 1) {
    result.error = "log header has degenerate shape (nodes=" +
                   std::to_string(log.nodes) +
                   " workers=" + std::to_string(log.workers_per_node) + ")";
    return result;
  }
  if (workload == ChaosWorkload::kTpcc && !log.single_threaded) {
    // TPC-C's delivery op commits one transaction per district, and the
    // replayer schedules at op granularity (an op's commits replay
    // back-to-back). Two concurrent multi-commit ops whose commits
    // interleaved in the recording cannot be serialized faithfully that
    // way, so a threaded tpcc recording would report a scheduling
    // divergence that is a replayer limit, not a workload bug. Refuse
    // loudly instead; single-threaded recordings are totally ordered and
    // replay fine.
    result.error =
        "threaded tpcc recordings are not replayable (multi-commit ops "
        "interleave below op granularity); re-record with "
        "--single-threaded, or use transfer/smallbank/ycsb";
    return result;
  }

  WorkloadShape shape;
  shape.workload = workload;
  shape.nodes = log.nodes;
  shape.cluster_workers_per_node = log.workers_per_node;
  shape.group_commit = log.group_commit;
  shape.transfer_ro_enabled = log.ro_enabled;
  WorkloadHarness harness(shape);
  result.loaded = true;

  std::map<std::pair<int, int>, ReplayWorker> workers;
  replay::ReplayCallbacks callbacks;
  callbacks.run_op = [&](int node, int worker_id, uint64_t op) {
    const auto key = std::make_pair(node, worker_id);
    auto it = workers.find(key);
    if (it == workers.end()) {
      it = workers
               .emplace(std::piecewise_construct, std::forward_as_tuple(key),
                        std::forward_as_tuple(&harness.cluster(), log.seed,
                                              node, worker_id))
               .first;
    }
    harness.RunOp(*it->second.worker, it->second.rng, op);
  };
  callbacks.state_digest = [&] { return harness.StateDigest(); };
  result.report = replay::Replay(log, callbacks);
  return result;
}

ChaosReplayResult ReplayChaosLogText(const std::string& text) {
  replay::ReplayLog log;
  std::string error;
  if (!replay::ReplayLog::Parse(text, &log, &error)) {
    ChaosReplayResult result;
    result.error = "unusable replay log: " + error;
    return result;
  }
  return ReplayChaosLog(log);
}

}  // namespace chaos
}  // namespace drtm
