// Chaos-side wiring for the replay engine (src/chaos). A replay log
// header carries the full WorkloadShape of the recorded run; this module
// rebuilds that environment with WorkloadHarness, hosts every recorded
// worker identity on the calling thread (persistent txn::Worker + rng
// stream per identity, so each continues its own recorded draw
// sequence), and drives replay::Replay over the workload's RunOp path.
//
// The fault plan is deliberately NOT re-armed: recorded chaos firings
// ride along as timeline context, and their *effects* on the committed
// schedule are reproduced by the recorder's commit gate (an op replays
// exactly as many commits as the recording holds — a transaction the
// recorded run lost to a crash aborts here too).
#ifndef SRC_CHAOS_CHAOS_REPLAY_H_
#define SRC_CHAOS_CHAOS_REPLAY_H_

#include <string>

#include "src/replay/replay_log.h"
#include "src/replay/replayer.h"

namespace drtm {
namespace chaos {

struct ChaosReplayResult {
  // Environment rebuilt and the replay engine ran. False means the log
  // header was unusable (unknown workload, bad shape); see `error`.
  bool loaded = false;
  std::string error;
  replay::ReplayReport report;

  bool ok() const { return loaded && report.ok(); }
};

// Replays a parsed log against a freshly built workload environment.
ChaosReplayResult ReplayChaosLog(const replay::ReplayLog& log);

// Convenience: parse (checksum + chain validation) then replay.
ChaosReplayResult ReplayChaosLogText(const std::string& text);

}  // namespace chaos
}  // namespace drtm

#endif  // SRC_CHAOS_CHAOS_REPLAY_H_
