#include "src/chaos/chaos_run.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/chaos/injector.h"
#include "src/common/rand.h"
#include "src/txn/cluster.h"
#include "src/txn/recovery.h"
#include "src/txn/transaction.h"
#include "src/workload/smallbank.h"
#include "src/workload/tpcc.h"
#include "src/workload/ycsb.h"

namespace drtm {
namespace chaos {
namespace {

// --- transfer workload shape ------------------------------------------------
// Per node: kPairsPerNode pairs of accounts (keys 2p / 2p+1, high word =
// node) plus one commit counter. Intra-pair transfers preserve each
// pair's sum; a client-side per-key delta ledger — updated only after
// Run() returned kCommitted — gives the oracle an exact expected value
// for every record.
constexpr uint64_t kPairsPerNode = 48;
constexpr int64_t kInitialBalance = 1000;
constexpr uint64_t kCounterIndex = uint64_t{1} << 20;

uint64_t PairKey(int node, uint64_t pair, int half) {
  return (static_cast<uint64_t>(node) << 32) | (2 * pair + half);
}

uint64_t CounterKey(int node) {
  return (static_cast<uint64_t>(node) << 32) | kCounterIndex;
}

// Scratch keys live above the counter index so the conservation and
// commit-ledger oracles never scan them; they exist only to drive the
// server-thread RPC path (rpc.dispatch plus the shipped INSERT/DELETE
// chaos points), which pure one-sided transfer traffic never touches.
uint64_t ScratchKey(int target, int node, int worker_id) {
  return (static_cast<uint64_t>(target) << 32) | (kCounterIndex << 1) |
         static_cast<uint64_t>(node * 64 + worker_id);
}

struct TransferState {
  int table = -1;
  int nodes = 0;
  // node-major: [node * stride + 2p | 2p+1], counter at [node * stride +
  // 2 * kPairsPerNode]. Deltas, not absolute values.
  static constexpr size_t kStride = 2 * kPairsPerNode + 1;
  std::unique_ptr<std::atomic<int64_t>[]> ledger;
  // Read-only pair checks acquire wall-clock leases (a later write's
  // fate depends on how much real time the lease window has left), so
  // the single-threaded deterministic mode — which promises the same
  // run outcome for the same seed — skips them; the threaded runs keep
  // the full mix and the lease-safety oracle.
  bool ro_enabled = true;
  std::atomic<uint64_t> ro_commits{0};
  std::atomic<uint64_t> ro_anomalies{0};

  explicit TransferState(int num_nodes) : nodes(num_nodes) {
    ledger = std::make_unique<std::atomic<int64_t>[]>(
        static_cast<size_t>(num_nodes) * kStride);
    for (size_t i = 0; i < static_cast<size_t>(num_nodes) * kStride; ++i) {
      ledger[i].store(0, std::memory_order_relaxed);
    }
  }

  size_t LedgerIndex(uint64_t key) const {
    const size_t node = static_cast<size_t>(key >> 32);
    const uint64_t low = key & 0xffffffffULL;
    if (low == kCounterIndex) {
      return node * kStride + 2 * kPairsPerNode;
    }
    return node * kStride + low;
  }
};

// --- fail-stop choreography -------------------------------------------------
// Cluster::Crash only flips liveness flags; worker threads keep running.
// To keep the simulation honest — a dead machine does not keep
// committing — the crash handler pauses the node's workers (they park at
// the top of their loop) and a dedicated operator thread performs the
// revive: wait for the node's workers to quiesce, survivor-side
// Recover(), Revive(), then a second Recover() to scrub the node's own
// leftover locks. The operator thread (never mid-transaction itself)
// avoids the deadlock of running recovery from inside an injection-point
// handler on a worker that still holds locks.
struct CrashControl {
  txn::Cluster* cluster = nullptr;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<bool> paused;
  std::vector<bool> crashed;
  std::vector<int> active;          // workers currently mid-attempt, per node
  std::deque<int> pending_revives;  // consumed by the operator thread
  std::vector<int64_t> applied_skew_us;
  bool stop = false;
  std::thread operator_thread;
  std::atomic<uint64_t> crashes{0};

  explicit CrashControl(txn::Cluster* c)
      : cluster(c),
        paused(static_cast<size_t>(c->num_nodes()), false),
        crashed(static_cast<size_t>(c->num_nodes()), false),
        active(static_cast<size_t>(c->num_nodes()), 0),
        applied_skew_us(static_cast<size_t>(c->num_nodes()), 0) {}

  void Crash(int node) {
    std::lock_guard<std::mutex> lock(mu);
    // Node 0 is never killed: a survivor must be able to drive recovery.
    if (node <= 0 || node >= cluster->num_nodes() ||
        crashed[static_cast<size_t>(node)]) {
      return;
    }
    crashed[static_cast<size_t>(node)] = true;
    paused[static_cast<size_t>(node)] = true;
    cluster->Crash(node);
    crashes.fetch_add(1, std::memory_order_relaxed);
  }

  void QueueRevive(int node) {
    std::lock_guard<std::mutex> lock(mu);
    if (node <= 0 || node >= cluster->num_nodes() ||
        !crashed[static_cast<size_t>(node)]) {
      return;
    }
    if (std::find(pending_revives.begin(), pending_revives.end(), node) ==
        pending_revives.end()) {
      pending_revives.push_back(node);
    }
    cv.notify_all();
  }

  void Skew(int node, int64_t skew_us) {
    std::lock_guard<std::mutex> lock(mu);
    if (node < 0 || node >= cluster->num_nodes()) {
      return;
    }
    applied_skew_us[static_cast<size_t>(node)] = skew_us;
    cluster->synctime().SetSkew(node, skew_us);
  }

  void OperatorLoop() {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      cv.wait(lock, [&] { return stop || !pending_revives.empty(); });
      if (pending_revives.empty()) {
        return;  // stop && drained
      }
      const int node = pending_revives.front();
      pending_revives.pop_front();
      // Quiesce the dead node's (zombie) workers: they park once their
      // in-flight attempt finishes. Bounded wait — an attempt can stall
      // a couple of seconds retrying verbs against another dead node.
      cv.wait_for(lock, std::chrono::seconds(30),
                  [&] { return active[static_cast<size_t>(node)] == 0; });
      lock.unlock();
      // Recovery issues fabric verbs which pass chaos points (and may
      // fire more handlers), so the control mutex must not be held here.
      txn::RecoveryManager recovery(cluster);
      recovery.Recover(node);
      cluster->Revive(node);
      recovery.Recover(node);  // scrub the node's own leftover locks
      lock.lock();
      crashed[static_cast<size_t>(node)] = false;
      paused[static_cast<size_t>(node)] = false;
      cv.notify_all();
    }
  }

  void StartOperator() {
    operator_thread = std::thread([this] { OperatorLoop(); });
  }

  void StopOperator() {
    {
      std::lock_guard<std::mutex> lock(mu);
      stop = true;
    }
    cv.notify_all();
    if (operator_thread.joinable()) {
      operator_thread.join();
    }
  }

  // Park while this worker's node is down. Returns false when the node
  // stayed dead so long the worker should give up its remaining ops
  // (e.g. a hand-written plan with a crash and no revive).
  bool WaitRunnable(int node) {
    std::unique_lock<std::mutex> lock(mu);
    for (int spins = 0; spins < 300; ++spins) {
      if (!paused[static_cast<size_t>(node)]) {
        ++active[static_cast<size_t>(node)];
        return true;
      }
      cv.wait_for(lock, std::chrono::milliseconds(50));
    }
    return false;
  }

  void EndAttempt(int node) {
    {
      std::lock_guard<std::mutex> lock(mu);
      --active[static_cast<size_t>(node)];
    }
    cv.notify_all();
  }

  std::vector<int> StillDead() {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<int> dead;
    for (size_t n = 0; n < crashed.size(); ++n) {
      if (crashed[n]) {
        dead.push_back(static_cast<int>(n));
      }
    }
    return dead;
  }
};

uint64_t Fnv1a(uint64_t hash, const void* data, size_t len) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// One transfer-workload attempt. Returns true on commit.
bool TransferStep(txn::Worker& worker, Xoshiro256& rng,
                  TransferState* state) {
  txn::Cluster& cluster = worker.cluster();
  const int home = worker.node();
  const uint64_t roll = rng.NextBounded(100);
  if (roll < 55) {
    // Intra-pair transfer (any node's pair — remote pairs make the
    // transaction distributed) + home commit-counter bump.
    const int target = static_cast<int>(rng.NextBounded(
        static_cast<uint64_t>(cluster.num_nodes())));
    const uint64_t pair = rng.NextBounded(kPairsPerNode);
    const int64_t amount = 1 + static_cast<int64_t>(rng.NextBounded(8));
    const bool flip = rng.NextBounded(2) == 1;
    const uint64_t from = PairKey(target, pair, flip ? 1 : 0);
    const uint64_t to = PairKey(target, pair, flip ? 0 : 1);
    const uint64_t counter = CounterKey(home);
    txn::Transaction txn(&worker);
    txn.AddWrite(state->table, from);
    txn.AddWrite(state->table, to);
    txn.AddWrite(state->table, counter);
    const txn::TxnStatus status = txn.Run([&](txn::Transaction& t) {
      int64_t a = 0;
      int64_t b = 0;
      int64_t c = 0;
      if (!t.Read(state->table, from, &a) || !t.Read(state->table, to, &b) ||
          !t.Read(state->table, counter, &c)) {
        return false;
      }
      a -= amount;
      b += amount;
      c += 1;
      return t.Write(state->table, from, &a) &&
             t.Write(state->table, to, &b) &&
             t.Write(state->table, counter, &c);
    });
    if (status != txn::TxnStatus::kCommitted) {
      return false;
    }
    state->ledger[state->LedgerIndex(from)].fetch_add(
        -amount, std::memory_order_relaxed);
    state->ledger[state->LedgerIndex(to)].fetch_add(
        amount, std::memory_order_relaxed);
    state->ledger[state->LedgerIndex(counter)].fetch_add(
        1, std::memory_order_relaxed);
    return true;
  }
  if (roll < 80 && state->ro_enabled) {
    // Read-only pair check: lease fencing means the snapshot can never
    // show a half-applied transfer, so the pair sum must be exact.
    const int target = static_cast<int>(rng.NextBounded(
        static_cast<uint64_t>(cluster.num_nodes())));
    const uint64_t pair = rng.NextBounded(kPairsPerNode);
    const uint64_t x = PairKey(target, pair, 0);
    const uint64_t y = PairKey(target, pair, 1);
    txn::ReadOnlyTransaction ro(&worker);
    ro.AddRead(state->table, x);
    ro.AddRead(state->table, y);
    if (ro.Execute() != txn::TxnStatus::kCommitted) {
      return false;
    }
    int64_t vx = 0;
    int64_t vy = 0;
    if (!ro.Get(state->table, x, &vx) || !ro.Get(state->table, y, &vy)) {
      return false;
    }
    state->ro_commits.fetch_add(1, std::memory_order_relaxed);
    if (vx + vy != 2 * kInitialBalance) {
      state->ro_anomalies.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }
  // Local commit-counter increment.
  const uint64_t counter = CounterKey(home);
  txn::Transaction txn(&worker);
  txn.AddWrite(state->table, counter);
  const txn::TxnStatus status = txn.Run([&](txn::Transaction& t) {
    int64_t c = 0;
    if (!t.Read(state->table, counter, &c)) {
      return false;
    }
    c += 1;
    return t.Write(state->table, counter, &c);
  });
  if (status != txn::TxnStatus::kCommitted) {
    return false;
  }
  state->ledger[state->LedgerIndex(counter)].fetch_add(
      1, std::memory_order_relaxed);
  return true;
}

}  // namespace

const char* ChaosWorkloadName(ChaosWorkload workload) {
  switch (workload) {
    case ChaosWorkload::kTransfer:
      return "transfer";
    case ChaosWorkload::kSmallBank:
      return "smallbank";
    case ChaosWorkload::kTpcc:
      return "tpcc";
    case ChaosWorkload::kYcsb:
      return "ycsb";
  }
  return "?";
}

bool ParseChaosWorkload(const std::string& name, ChaosWorkload* out) {
  if (name == "transfer") {
    *out = ChaosWorkload::kTransfer;
  } else if (name == "smallbank") {
    *out = ChaosWorkload::kSmallBank;
  } else if (name == "tpcc") {
    *out = ChaosWorkload::kTpcc;
  } else if (name == "ycsb") {
    *out = ChaosWorkload::kYcsb;
  } else {
    return false;
  }
  return true;
}

std::string ChaosRunResult::Artifact() const {
  std::ostringstream out;
  out << "chaos " << (ok() ? "ok" : "FAILED") << ": seed=" << seed
      << " workload=" << workload << " nodes=" << nodes << " workers="
      << workers_per_node << " ops=" << ops_per_worker << "\n";
  out << "reproduce: chaos_runner --seed " << seed << " --workload "
      << workload << " --nodes " << nodes << " --workers "
      << workers_per_node << " --ops " << ops_per_worker << "\n";
  out << "attempted=" << attempted << " committed=" << committed
      << " ro_commits=" << ro_commits << " crashes=" << crashes << "\n";
  out << "--- fault plan ---\n" << plan_script;
  out << "--- firings ---\n" << firing_log;
  out << "--- " << invariants.ToString();
  return out.str();
}

ChaosRunResult RunChaos(uint64_t seed, const ChaosRunConfig& config) {
  ChaosRunResult result;
  result.seed = seed;
  result.workload = ChaosWorkloadName(config.workload);
  result.nodes = config.nodes;
  result.workers_per_node = config.single_threaded ? 1 : config.workers_per_node;
  result.ops_per_worker = config.ops_per_worker;

  FaultPlan plan;
  if (!config.plan_script.empty()) {
    std::string error;
    if (!FaultPlan::Parse(config.plan_script, &plan, &error)) {
      result.invariants.violations.push_back("unparsable plan script: " +
                                             error);
      return result;
    }
    plan.set_seed(seed);
  } else {
    PlanParams params = config.plan_params;
    params.num_nodes = config.nodes;
    plan = FaultPlan::FromSeed(seed, params);
  }
  result.plan_script = plan.ToScript();

  txn::ClusterConfig cluster_config;
  cluster_config.num_nodes = config.nodes;
  cluster_config.workers_per_node = std::max(1, config.workers_per_node);
  cluster_config.region_bytes = size_t{48} << 20;
  cluster_config.logging = true;
  cluster_config.group_commit = config.group_commit;
  cluster_config.latency = rdma::LatencyModel::Zero();
  // Short leases: with the default 10 ms RO lease, a chaos-shifted
  // pile-up of read-only renewals on one hot pair can make every writer
  // wait out (and lose) lease after lease — hundreds of fallback
  // attempts at ~10 ms each turns one transaction into minutes. Chaos
  // runs want many fault/recovery cycles per second, not long leases.
  cluster_config.lease_rw_us = 1500;
  cluster_config.lease_ro_us = 2000;
  cluster_config.delta_us = 300;
  cluster_config.softtime_interval_us = 200;

  txn::Cluster cluster(cluster_config);

  // Per-workload setup ------------------------------------------------------
  std::unique_ptr<TransferState> transfer;
  std::unique_ptr<workload::SmallBankDb> smallbank;
  std::unique_ptr<workload::TpccDb> tpcc;
  std::unique_ptr<workload::YcsbDb> ycsb;
  int64_t smallbank_expected = 0;

  if (config.workload == ChaosWorkload::kTransfer) {
    transfer = std::make_unique<TransferState>(config.nodes);
    transfer->ro_enabled = !config.single_threaded;
    txn::TableSpec spec;
    spec.value_size = 8;
    spec.main_buckets = 1 << 8;
    spec.indirect_buckets = 1 << 7;
    spec.capacity = 1 << 12;
    spec.partition = [](uint64_t key) { return static_cast<int>(key >> 32); };
    transfer->table = cluster.AddTable(spec);
    cluster.Start();
    for (int node = 0; node < config.nodes; ++node) {
      for (uint64_t p = 0; p < kPairsPerNode; ++p) {
        for (int half = 0; half < 2; ++half) {
          const int64_t balance = kInitialBalance;
          cluster.hash_table(node, transfer->table)
              ->Insert(PairKey(node, p, half), &balance);
        }
      }
      const int64_t zero = 0;
      cluster.hash_table(node, transfer->table)
          ->Insert(CounterKey(node), &zero);
    }
  } else if (config.workload == ChaosWorkload::kSmallBank) {
    workload::SmallBankDb::Params params;
    params.accounts_per_node = 256;
    params.hot_accounts_per_node = 32;
    params.cross_node_probability = 0.1;
    smallbank = std::make_unique<workload::SmallBankDb>(&cluster, params);
    cluster.Start();
    smallbank->Load();
    smallbank_expected = smallbank->TotalMoney();
  } else if (config.workload == ChaosWorkload::kTpcc) {
    workload::TpccDb::Params params;
    params.warehouses = config.nodes;
    params.customers_per_district = 64;
    params.items = 256;
    params.initial_orders_per_district = 4;
    tpcc = std::make_unique<workload::TpccDb>(&cluster, params);
    cluster.Start();
    tpcc->Load();
  } else {
    workload::YcsbDb::Params params;
    params.records_per_node = 2048;
    params.value_size = 64;
    params.mix = workload::YcsbDb::Mix::kB;
    params.ops_per_txn = 2;
    ycsb = std::make_unique<workload::YcsbDb>(&cluster, params);
    cluster.Start();
    ycsb->Load();
  }

  // Arm --------------------------------------------------------------------
  CrashControl control(&cluster);
  control.StartOperator();
  Injector& injector = Injector::Global();
  injector.SetCrashHandler([&control](int node) { control.Crash(node); });
  injector.SetReviveHandler(
      [&control](int node) { control.QueueRevive(node); });
  injector.SetSkewHandler([&control](int node, int64_t skew_us) {
    control.Skew(node, skew_us);
  });
  injector.Arm(plan);

  // Run --------------------------------------------------------------------
  std::atomic<uint64_t> attempted{0};
  std::atomic<uint64_t> committed{0};
  auto worker_loop = [&](int node, int worker_id) {
    txn::Worker worker(&cluster, node, worker_id);
    Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 1 +
                   static_cast<uint64_t>(node * 64 + worker_id));
    for (uint64_t op = 0; op < config.ops_per_worker; ++op) {
      if (!control.WaitRunnable(node)) {
        return;  // node stayed dead (script without a revive): give up
      }
      bool ok = false;
      if (transfer != nullptr) {
        if ((op & 7) == 3) {
          // Structural scratch op: a shipped INSERT then DELETE against a
          // random host. A chaos-dropped DELETE leaves a stray scratch
          // key, which no oracle reads; the point is to put traffic on
          // the RPC dispatch path while faults fire.
          const int target =
              static_cast<int>(rng.NextBounded(config.nodes));
          const uint64_t scratch = ScratchKey(target, node, worker_id);
          const int64_t one = 1;
          if (cluster.RemoteInsert(node, transfer->table, scratch, &one)) {
            cluster.RemoteRemove(node, transfer->table, scratch);
          }
        }
        ok = TransferStep(worker, rng, transfer.get());
      } else if (smallbank != nullptr) {
        // Conservation-preserving mix only: send-payment and amalgamate
        // move money between accounts, balance reads it. The deposit /
        // write-check / transact-savings types legitimately change
        // TotalMoney, which would blind the conservation oracle.
        txn::TxnStatus status;
        const uint64_t roll = rng.NextBounded(4);
        if (roll < 2) {
          status = smallbank->RunSendPayment(&worker);
        } else if (roll == 2) {
          status = smallbank->RunAmalgamate(&worker);
        } else {
          status = smallbank->RunBalance(&worker);
        }
        ok = status == txn::TxnStatus::kCommitted;
      } else if (tpcc != nullptr) {
        ok = tpcc->RunMix(&worker).status == txn::TxnStatus::kCommitted;
      } else {
        ok = ycsb->RunTxn(&worker).committed;
      }
      attempted.fetch_add(1, std::memory_order_relaxed);
      if (ok) {
        committed.fetch_add(1, std::memory_order_relaxed);
      }
      control.EndAttempt(node);
    }
  };

  if (config.single_threaded) {
    worker_loop(0, 0);
  } else {
    std::vector<std::thread> threads;
    for (int node = 0; node < config.nodes; ++node) {
      for (int w = 0; w < config.workers_per_node; ++w) {
        threads.emplace_back(worker_loop, node, w);
      }
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }

  // Repair -----------------------------------------------------------------
  control.StopOperator();  // drains queued revives first
  result.firing_log = injector.FiringLog();
  injector.Disarm();  // the operator's manual repair pass runs fault-free
  for (const int node : control.StillDead()) {
    txn::RecoveryManager recovery(&cluster);
    recovery.Recover(node);
    cluster.Revive(node);
    recovery.Recover(node);
    std::lock_guard<std::mutex> lock(control.mu);
    control.crashed[static_cast<size_t>(node)] = false;
    control.paused[static_cast<size_t>(node)] = false;
  }
  for (int node = 0; node < config.nodes; ++node) {
    if (control.applied_skew_us[static_cast<size_t>(node)] != 0) {
      cluster.synctime().SetSkew(node, 0);
    }
  }
  // Cooperative pass (§4.6): a crash also strands locks *on* the dead
  // node — a survivor mid-commit against it aborts, but its unlock
  // writes die with the target, and crashed-owner recovery only
  // releases locks the crashed node itself held. With every node back
  // and the cluster quiescent, replay each node's own log once: the
  // lock-ahead records of its incomplete transactions name exactly the
  // locks it still holds on the revived machine.
  if (control.crashes.load() > 0) {
    txn::RecoveryManager recovery(&cluster);
    for (int node = 0; node < config.nodes; ++node) {
      recovery.Recover(node);
    }
  }
  // The injector is a process-global singleton: drop the handlers before
  // the cluster they capture goes away.
  injector.SetCrashHandler(nullptr);
  injector.SetReviveHandler(nullptr);
  injector.SetSkewHandler(nullptr);

  result.attempted = attempted.load();
  result.committed = committed.load();
  result.crashes = control.crashes.load();

  // Judge ------------------------------------------------------------------
  InvariantChecker checker;
  const std::vector<int> still_dead = control.StillDead();
  if (transfer != nullptr) {
    const int table = transfer->table;
    int64_t pair_total = 0;
    std::vector<std::pair<uint64_t, int64_t>> expected;
    std::vector<std::pair<int, uint64_t>> records;
    uint64_t digest = 0xcbf29ce484222325ULL;
    for (int node = 0; node < config.nodes; ++node) {
      for (uint64_t p = 0; p < kPairsPerNode; ++p) {
        for (int half = 0; half < 2; ++half) {
          const uint64_t key = PairKey(node, p, half);
          int64_t value = 0;
          cluster.hash_table(node, table)->Get(key, &value);
          pair_total += value;
          digest = Fnv1a(digest, &value, sizeof(value));
          expected.emplace_back(
              key, kInitialBalance +
                       transfer->ledger[transfer->LedgerIndex(key)].load());
          records.emplace_back(table, key);
        }
      }
      const uint64_t counter = CounterKey(node);
      int64_t value = 0;
      cluster.hash_table(node, table)->Get(counter, &value);
      digest = Fnv1a(digest, &value, sizeof(value));
      expected.emplace_back(
          counter, transfer->ledger[transfer->LedgerIndex(counter)].load());
      records.emplace_back(table, counter);
    }
    result.state_digest = digest;
    result.ro_commits = transfer->ro_commits.load();
    result.ro_anomalies = transfer->ro_anomalies.load();
    checker.CheckConservation(
        "pair balances",
        static_cast<int64_t>(config.nodes) * kPairsPerNode * 2 *
            kInitialBalance,
        pair_total);
    checker.CheckCommitLedger(&cluster, table, expected);
    checker.CheckLeaseSafety(result.ro_anomalies, result.ro_commits);
    checker.CheckCleanRecovery(&cluster, records, still_dead);
  } else if (smallbank != nullptr) {
    checker.CheckConservation("smallbank total money", smallbank_expected,
                              smallbank->TotalMoney());
    std::vector<std::pair<int, uint64_t>> records;
    for (int node = 0; node < config.nodes; ++node) {
      for (uint64_t i = 0; i < smallbank->params().accounts_per_node; ++i) {
        const uint64_t key = workload::SmallBankDb::AccountKey(node, i);
        records.emplace_back(smallbank->savings_table(), key);
        records.emplace_back(smallbank->checking_table(), key);
      }
    }
    checker.CheckCleanRecovery(&cluster, records, still_dead);
  } else if (tpcc != nullptr) {
    ++checker.report().checks;
    if (!tpcc->CheckConsistency()) {
      checker.report().violations.push_back(
          "conservation: TPC-C consistency conditions (YTD sums / order "
          "continuity) violated");
    }
    std::vector<std::pair<int, uint64_t>> records;
    for (uint64_t w = 0; w < static_cast<uint64_t>(tpcc->params().warehouses);
         ++w) {
      records.emplace_back(tpcc->warehouse_table(), w);
      for (uint64_t d = 0; d < 10; ++d) {
        records.emplace_back(tpcc->district_table(),
                             workload::DistrictKey(w, d));
      }
    }
    checker.CheckCleanRecovery(&cluster, records, still_dead);
  } else {
    std::vector<std::pair<int, uint64_t>> records;
    for (uint64_t logical = 0; logical < ycsb->total_records(); ++logical) {
      records.emplace_back(ycsb->table(), ycsb->KeyAt(logical));
    }
    checker.CheckCleanRecovery(&cluster, records, still_dead);
  }
  result.invariants = checker.report();

  cluster.Stop();
  return result;
}

}  // namespace chaos
}  // namespace drtm
