#include "src/chaos/chaos_run.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/chaos/chaos_workload.h"
#include "src/chaos/injector.h"
#include "src/common/rand.h"
#include "src/replay/recorder.h"
#include "src/replay/replay_log.h"
#include "src/txn/cluster.h"
#include "src/txn/recovery.h"
#include "src/txn/transaction.h"

namespace drtm {
namespace chaos {
namespace {

// --- fail-stop choreography -------------------------------------------------
// Cluster::Crash only flips liveness flags; worker threads keep running.
// To keep the simulation honest — a dead machine does not keep
// committing — the crash handler pauses the node's workers (they park at
// the top of their loop) and a dedicated operator thread performs the
// revive: wait for the node's workers to quiesce, survivor-side
// Recover(), Revive(), then a second Recover() to scrub the node's own
// leftover locks. The operator thread (never mid-transaction itself)
// avoids the deadlock of running recovery from inside an injection-point
// handler on a worker that still holds locks.
struct CrashControl {
  txn::Cluster* cluster = nullptr;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<bool> paused;
  std::vector<bool> crashed;
  std::vector<int> active;          // workers currently mid-attempt, per node
  std::deque<int> pending_revives;  // consumed by the operator thread
  std::vector<int64_t> applied_skew_us;
  bool stop = false;
  std::thread operator_thread;
  std::atomic<uint64_t> crashes{0};

  explicit CrashControl(txn::Cluster* c)
      : cluster(c),
        paused(static_cast<size_t>(c->num_nodes()), false),
        crashed(static_cast<size_t>(c->num_nodes()), false),
        active(static_cast<size_t>(c->num_nodes()), 0),
        applied_skew_us(static_cast<size_t>(c->num_nodes()), 0) {}

  void Crash(int node) {
    std::lock_guard<std::mutex> lock(mu);
    // Node 0 is never killed: a survivor must be able to drive recovery.
    if (node <= 0 || node >= cluster->num_nodes() ||
        crashed[static_cast<size_t>(node)]) {
      return;
    }
    crashed[static_cast<size_t>(node)] = true;
    paused[static_cast<size_t>(node)] = true;
    cluster->Crash(node);
    crashes.fetch_add(1, std::memory_order_relaxed);
  }

  void QueueRevive(int node) {
    std::lock_guard<std::mutex> lock(mu);
    if (node <= 0 || node >= cluster->num_nodes() ||
        !crashed[static_cast<size_t>(node)]) {
      return;
    }
    if (std::find(pending_revives.begin(), pending_revives.end(), node) ==
        pending_revives.end()) {
      pending_revives.push_back(node);
    }
    cv.notify_all();
  }

  void Skew(int node, int64_t skew_us) {
    std::lock_guard<std::mutex> lock(mu);
    if (node < 0 || node >= cluster->num_nodes()) {
      return;
    }
    applied_skew_us[static_cast<size_t>(node)] = skew_us;
    cluster->synctime().SetSkew(node, skew_us);
  }

  void OperatorLoop() {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      cv.wait(lock, [&] { return stop || !pending_revives.empty(); });
      if (pending_revives.empty()) {
        return;  // stop && drained
      }
      const int node = pending_revives.front();
      pending_revives.pop_front();
      // Quiesce the dead node's (zombie) workers: they park once their
      // in-flight attempt finishes. Bounded wait — an attempt can stall
      // a couple of seconds retrying verbs against another dead node.
      cv.wait_for(lock, std::chrono::seconds(30),
                  [&] { return active[static_cast<size_t>(node)] == 0; });
      lock.unlock();
      // Recovery issues fabric verbs which pass chaos points (and may
      // fire more handlers), so the control mutex must not be held here.
      txn::RecoveryManager recovery(cluster);
      recovery.Recover(node);
      cluster->Revive(node);
      recovery.Recover(node);  // scrub the node's own leftover locks
      lock.lock();
      crashed[static_cast<size_t>(node)] = false;
      paused[static_cast<size_t>(node)] = false;
      cv.notify_all();
    }
  }

  void StartOperator() {
    operator_thread = std::thread([this] { OperatorLoop(); });
  }

  void StopOperator() {
    {
      std::lock_guard<std::mutex> lock(mu);
      stop = true;
    }
    cv.notify_all();
    if (operator_thread.joinable()) {
      operator_thread.join();
    }
  }

  // Park while this worker's node is down. Returns false when the node
  // stayed dead so long the worker should give up its remaining ops
  // (e.g. a hand-written plan with a crash and no revive).
  bool WaitRunnable(int node) {
    std::unique_lock<std::mutex> lock(mu);
    for (int spins = 0; spins < 300; ++spins) {
      if (!paused[static_cast<size_t>(node)]) {
        ++active[static_cast<size_t>(node)];
        return true;
      }
      cv.wait_for(lock, std::chrono::milliseconds(50));
    }
    return false;
  }

  void EndAttempt(int node) {
    {
      std::lock_guard<std::mutex> lock(mu);
      --active[static_cast<size_t>(node)];
    }
    cv.notify_all();
  }

  std::vector<int> StillDead() {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<int> dead;
    for (size_t n = 0; n < crashed.size(); ++n) {
      if (crashed[n]) {
        dead.push_back(static_cast<int>(n));
      }
    }
    return dead;
  }
};

}  // namespace

const char* ChaosWorkloadName(ChaosWorkload workload) {
  switch (workload) {
    case ChaosWorkload::kTransfer:
      return "transfer";
    case ChaosWorkload::kSmallBank:
      return "smallbank";
    case ChaosWorkload::kTpcc:
      return "tpcc";
    case ChaosWorkload::kYcsb:
      return "ycsb";
  }
  return "?";
}

bool ParseChaosWorkload(const std::string& name, ChaosWorkload* out) {
  if (name == "transfer") {
    *out = ChaosWorkload::kTransfer;
  } else if (name == "smallbank") {
    *out = ChaosWorkload::kSmallBank;
  } else if (name == "tpcc") {
    *out = ChaosWorkload::kTpcc;
  } else if (name == "ycsb") {
    *out = ChaosWorkload::kYcsb;
  } else {
    return false;
  }
  return true;
}

std::string ChaosRunResult::Artifact() const {
  std::ostringstream out;
  out << "chaos " << (ok() ? "ok" : "FAILED") << ": seed=" << seed
      << " workload=" << workload << " nodes=" << nodes << " workers="
      << workers_per_node << " ops=" << ops_per_worker << "\n";
  out << "reproduce: chaos_runner --seed " << seed << " --workload "
      << workload << " --nodes " << nodes << " --workers "
      << workers_per_node << " --ops " << ops_per_worker << "\n";
  out << "attempted=" << attempted << " committed=" << committed
      << " ro_commits=" << ro_commits << " crashes=" << crashes << "\n";
  if (!replay_log_text.empty()) {
    out << "replay log: recorded (" << replay_log_text.size()
        << " bytes, dropped=" << replay_dropped << ")\n";
  }
  out << "--- fault plan ---\n" << plan_script;
  out << "--- firings ---\n" << firing_log;
  out << "--- " << invariants.ToString();
  return out.str();
}

ChaosRunResult RunChaos(uint64_t seed, const ChaosRunConfig& config) {
  ChaosRunResult result;
  result.seed = seed;
  result.workload = ChaosWorkloadName(config.workload);
  result.nodes = config.nodes;
  result.workers_per_node = config.single_threaded ? 1 : config.workers_per_node;
  result.ops_per_worker = config.ops_per_worker;

  FaultPlan plan;
  if (!config.plan_script.empty()) {
    std::string error;
    if (!FaultPlan::Parse(config.plan_script, &plan, &error)) {
      result.invariants.violations.push_back("unparsable plan script: " +
                                             error);
      return result;
    }
    plan.set_seed(seed);
  } else {
    PlanParams params = config.plan_params;
    params.num_nodes = config.nodes;
    plan = FaultPlan::FromSeed(seed, params);
  }
  result.plan_script = plan.ToScript();

  // Environment + workload (shared with replay mode, which rebuilds the
  // identical harness from the recorded log header).
  WorkloadShape shape;
  shape.workload = config.workload;
  shape.nodes = config.nodes;
  shape.cluster_workers_per_node = std::max(1, config.workers_per_node);
  shape.group_commit = config.group_commit;
  shape.transfer_ro_enabled = !config.single_threaded;
  WorkloadHarness harness(shape);
  txn::Cluster& cluster = harness.cluster();

  // Arm --------------------------------------------------------------------
  CrashControl control(&cluster);
  control.StartOperator();
  Injector& injector = Injector::Global();
  injector.SetCrashHandler([&control](int node) { control.Crash(node); });
  injector.SetReviveHandler(
      [&control](int node) { control.QueueRevive(node); });
  injector.SetSkewHandler([&control](int node, int64_t skew_us) {
    control.Skew(node, skew_us);
  });
  if (config.record) {
    // Arm before the first worker op so every commit is captured; the
    // firing observer interleaves injector firings into the event
    // stream (sequence numbers allocated at firing time).
    replay::Recorder::Global().Arm(replay::Recorder::Config{});
    injector.SetFiringObserver([](const Injector::Firing& firing) {
      replay::Recorder::Global().RecordChaosFiring(firing.point,
                                                   firing.arrival,
                                                   firing.node);
    });
  }
  injector.Arm(plan);

  // Run --------------------------------------------------------------------
  std::atomic<uint64_t> attempted{0};
  std::atomic<uint64_t> committed{0};
  auto worker_loop = [&](int node, int worker_id) {
    txn::Worker worker(&cluster, node, worker_id);
    Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 1 +
                   static_cast<uint64_t>(node * 64 + worker_id));
    for (uint64_t op = 0; op < config.ops_per_worker; ++op) {
      if (!control.WaitRunnable(node)) {
        return;  // node stayed dead (script without a revive): give up
      }
      if (config.record) {
        replay::Recorder::Global().BeginOp(node, worker_id, op);
      }
      const bool ok = harness.RunOp(worker, rng, op);
      if (config.record) {
        replay::Recorder::Global().EndOp(ok);
      }
      attempted.fetch_add(1, std::memory_order_relaxed);
      if (ok) {
        committed.fetch_add(1, std::memory_order_relaxed);
      }
      control.EndAttempt(node);
    }
  };

  if (config.single_threaded) {
    worker_loop(0, 0);
  } else {
    std::vector<std::thread> threads;
    for (int node = 0; node < config.nodes; ++node) {
      for (int w = 0; w < config.workers_per_node; ++w) {
        threads.emplace_back(worker_loop, node, w);
      }
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }

  if (config.record) {
    // Workers are quiesced; stop capturing before the repair pass so the
    // log ends at the last workload op (recovery redo re-installs
    // already-recorded committed writes and is digest-neutral).
    replay::Recorder::Global().Disarm();
  }

  // Repair -----------------------------------------------------------------
  control.StopOperator();  // drains queued revives first
  result.firing_log = injector.FiringLog();
  injector.Disarm();  // the operator's manual repair pass runs fault-free
  injector.SetFiringObserver(nullptr);
  for (const int node : control.StillDead()) {
    txn::RecoveryManager recovery(&cluster);
    recovery.Recover(node);
    cluster.Revive(node);
    recovery.Recover(node);
    std::lock_guard<std::mutex> lock(control.mu);
    control.crashed[static_cast<size_t>(node)] = false;
    control.paused[static_cast<size_t>(node)] = false;
  }
  for (int node = 0; node < config.nodes; ++node) {
    if (control.applied_skew_us[static_cast<size_t>(node)] != 0) {
      cluster.synctime().SetSkew(node, 0);
    }
  }
  // Cooperative pass (§4.6): a crash also strands locks *on* the dead
  // node — a survivor mid-commit against it aborts, but its unlock
  // writes die with the target, and crashed-owner recovery only
  // releases locks the crashed node itself held. With every node back
  // and the cluster quiescent, replay each node's own log once: the
  // lock-ahead records of its incomplete transactions name exactly the
  // locks it still holds on the revived machine.
  if (control.crashes.load() > 0) {
    txn::RecoveryManager recovery(&cluster);
    for (int node = 0; node < config.nodes; ++node) {
      recovery.Recover(node);
    }
  }
  // The injector is a process-global singleton: drop the handlers before
  // the cluster they capture goes away.
  injector.SetCrashHandler(nullptr);
  injector.SetReviveHandler(nullptr);
  injector.SetSkewHandler(nullptr);

  result.attempted = attempted.load();
  result.committed = committed.load();
  result.crashes = control.crashes.load();

  // Judge ------------------------------------------------------------------
  InvariantChecker checker;
  const std::vector<int> still_dead = control.StillDead();
  result.state_digest = harness.StateDigest();
  if (TransferState* transfer = harness.transfer()) {
    const int table = transfer->table;
    int64_t pair_total = 0;
    std::vector<std::pair<uint64_t, int64_t>> expected;
    std::vector<std::pair<int, uint64_t>> records;
    for (int node = 0; node < config.nodes; ++node) {
      for (uint64_t p = 0; p < kPairsPerNode; ++p) {
        for (int half = 0; half < 2; ++half) {
          const uint64_t key = PairKey(node, p, half);
          int64_t value = 0;
          cluster.hash_table(node, table)->Get(key, &value);
          pair_total += value;
          expected.emplace_back(
              key, kInitialBalance +
                       transfer->ledger[transfer->LedgerIndex(key)].load());
          records.emplace_back(table, key);
        }
      }
      const uint64_t counter = CounterKey(node);
      expected.emplace_back(
          counter, transfer->ledger[transfer->LedgerIndex(counter)].load());
      records.emplace_back(table, counter);
    }
    result.ro_commits = transfer->ro_commits.load();
    result.ro_anomalies = transfer->ro_anomalies.load();
    checker.CheckConservation(
        "pair balances",
        static_cast<int64_t>(config.nodes) * kPairsPerNode * 2 *
            kInitialBalance,
        pair_total);
    checker.CheckCommitLedger(&cluster, table, expected);
    checker.CheckLeaseSafety(result.ro_anomalies, result.ro_commits);
    checker.CheckCleanRecovery(&cluster, records, still_dead);
  } else if (workload::SmallBankDb* smallbank = harness.smallbank()) {
    checker.CheckConservation("smallbank total money",
                              harness.smallbank_expected(),
                              smallbank->TotalMoney());
    std::vector<std::pair<int, uint64_t>> records;
    for (int node = 0; node < config.nodes; ++node) {
      for (uint64_t i = 0; i < smallbank->params().accounts_per_node; ++i) {
        const uint64_t key = workload::SmallBankDb::AccountKey(node, i);
        records.emplace_back(smallbank->savings_table(), key);
        records.emplace_back(smallbank->checking_table(), key);
      }
    }
    checker.CheckCleanRecovery(&cluster, records, still_dead);
  } else if (workload::TpccDb* tpcc = harness.tpcc()) {
    ++checker.report().checks;
    if (!tpcc->CheckConsistency()) {
      checker.report().violations.push_back(
          "conservation: TPC-C consistency conditions (YTD sums / order "
          "continuity) violated");
    }
    std::vector<std::pair<int, uint64_t>> records;
    for (uint64_t w = 0; w < static_cast<uint64_t>(tpcc->params().warehouses);
         ++w) {
      records.emplace_back(tpcc->warehouse_table(), w);
      for (uint64_t d = 0; d < 10; ++d) {
        records.emplace_back(tpcc->district_table(),
                             workload::DistrictKey(w, d));
      }
    }
    checker.CheckCleanRecovery(&cluster, records, still_dead);
  } else {
    workload::YcsbDb* ycsb = harness.ycsb();
    std::vector<std::pair<int, uint64_t>> records;
    for (uint64_t logical = 0; logical < ycsb->total_records(); ++logical) {
      records.emplace_back(ycsb->table(), ycsb->KeyAt(logical));
    }
    checker.CheckCleanRecovery(&cluster, records, still_dead);
  }
  result.invariants = checker.report();

  // Seal the replay log ----------------------------------------------------
  if (config.record) {
    replay::ReplayLog log;
    replay::Recorder::Global().Merge(&log);
    log.seed = seed;
    log.workload = result.workload;
    log.nodes = config.nodes;
    log.workers_per_node = shape.cluster_workers_per_node;
    log.ops_per_worker = config.ops_per_worker;
    log.single_threaded = config.single_threaded;
    log.ro_enabled = shape.transfer_ro_enabled;
    log.group_commit = config.group_commit;
    log.final_digest = result.state_digest;
    result.replay_dropped = log.dropped;
    result.replay_log_text = log.Serialize();
  }

  // WorkloadHarness's destructor stops the cluster.
  return result;
}

}  // namespace chaos
}  // namespace drtm
