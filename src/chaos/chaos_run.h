// The chaos harness: builds a logging-enabled cluster, arms the injector
// with a seeded (or explicit) FaultPlan, runs a workload under fire,
// performs full recovery, and validates the four invariant families
// (invariants.h). One RunChaos call is one reproducible experiment: the
// result carries the exact plan script, the firing log, and a digest of
// the final store state, so a failing seed replays with
// `chaos_runner --seed <s>` and a determinism test can assert
// byte-identical schedules and identical outcomes.
//
// Workloads:
//   kTransfer   built-in pair-transfer workload designed for the oracle —
//               intra-pair transfers conserve each pair's sum, a
//               client-side per-key ledger (updated only on kCommitted)
//               catches lost/duplicated commits, and read-only pair reads
//               assert lease fencing. All four families checked.
//   kSmallBank  the paper's SmallBank mix; checks value conservation
//               (TotalMoney) + clean recovery.
//   kTpcc       the TPC-C mix; checks the spec consistency conditions
//               (warehouse/district YTD sums, order continuity) + clean
//               recovery over warehouse/district rows.
//   kYcsb       YCSB-B over the cluster; checks clean recovery (smoke).
#ifndef SRC_CHAOS_CHAOS_RUN_H_
#define SRC_CHAOS_CHAOS_RUN_H_

#include <cstdint>
#include <string>

#include "src/chaos/fault_plan.h"
#include "src/chaos/invariants.h"

namespace drtm {
namespace chaos {

enum class ChaosWorkload {
  kTransfer,
  kSmallBank,
  kTpcc,
  kYcsb,
};

const char* ChaosWorkloadName(ChaosWorkload workload);
bool ParseChaosWorkload(const std::string& name, ChaosWorkload* out);

struct ChaosRunConfig {
  ChaosWorkload workload = ChaosWorkload::kTransfer;
  int nodes = 3;
  int workers_per_node = 2;
  // Closed-loop, fixed-op mode: every worker runs exactly this many
  // transaction attempts (deterministic volume regardless of host speed).
  uint64_t ops_per_worker = 400;
  // Plan generation knobs (used when `plan_script` is empty).
  PlanParams plan_params;
  // Explicit schedule: replay this script instead of generating from the
  // seed (the "violation artifact reproduces" path).
  std::string plan_script;
  // Determinism mode: one worker total, ops run inline on the calling
  // thread so arrival ordinals are totally ordered.
  bool single_threaded = false;
  // Epoch-batched group commit (ClusterConfig::group_commit): commits
  // acknowledge at the epoch flush, and crashes can land between a
  // record and its epoch seal — the torn-tail window the
  // log.epoch.seal/log.epoch.flush points exercise.
  bool group_commit = false;
  // Record mode: arm the replay recorder for the run and serialize the
  // merged, checksummed event log into ChaosRunResult::replay_log_text.
  // A failing seed's artifact bundle then carries everything replay mode
  // needs to re-execute the committed schedule single-threaded.
  bool record = false;
};

struct ChaosRunResult {
  uint64_t seed = 0;
  // Echo of the run shape, so Artifact() can print an exact repro line.
  std::string workload;
  int nodes = 0;
  int workers_per_node = 0;
  uint64_t ops_per_worker = 0;
  std::string plan_script;  // the schedule that was armed (canonical form)
  std::string firing_log;   // what actually fired, in firing order
  uint64_t attempted = 0;
  uint64_t committed = 0;
  uint64_t ro_commits = 0;
  uint64_t ro_anomalies = 0;
  uint64_t crashes = 0;
  InvariantReport invariants;
  // FNV-1a over the final store contents (all workloads; fold order is
  // WorkloadHarness::StateDigest) — the "same outcome" half of the
  // determinism assertion and the replay log's final digest.
  uint64_t state_digest = 0;
  // Record mode (ChaosRunConfig::record): the serialized replay log and
  // the number of ring-overflow events dropped while recording.
  std::string replay_log_text;
  uint64_t replay_dropped = 0;

  bool ok() const { return invariants.ok(); }
  // The failure artifact: seed, repro command line, plan, firings,
  // violations. Uploaded by the CI chaos job.
  std::string Artifact() const;
};

ChaosRunResult RunChaos(uint64_t seed, const ChaosRunConfig& config);

}  // namespace chaos
}  // namespace drtm

#endif  // SRC_CHAOS_CHAOS_RUN_H_
