#include "src/chaos/chaos_workload.h"

#include <algorithm>
#include <vector>

namespace drtm {
namespace chaos {
namespace {

uint64_t Fnv1a(uint64_t hash, const void* data, size_t len) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    // drtm-lint: allow(TX01 post-run digest over caller-local buffers; "reachability" is a cross-TU name collision with the log checksum helper)
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

// One transfer-workload attempt. Returns true on commit.
bool TransferStep(txn::Worker& worker, Xoshiro256& rng,
                  TransferState* state) {
  txn::Cluster& cluster = worker.cluster();
  const int home = worker.node();
  const uint64_t roll = rng.NextBounded(100);
  if (roll < 55) {
    // Intra-pair transfer (any node's pair — remote pairs make the
    // transaction distributed) + home commit-counter bump.
    const int target = static_cast<int>(rng.NextBounded(
        static_cast<uint64_t>(cluster.num_nodes())));
    const uint64_t pair = rng.NextBounded(kPairsPerNode);
    const int64_t amount = 1 + static_cast<int64_t>(rng.NextBounded(8));
    const bool flip = rng.NextBounded(2) == 1;
    const uint64_t from = PairKey(target, pair, flip ? 1 : 0);
    const uint64_t to = PairKey(target, pair, flip ? 0 : 1);
    const uint64_t counter = CounterKey(home);
    txn::Transaction txn(&worker);
    txn.AddWrite(state->table, from);
    txn.AddWrite(state->table, to);
    txn.AddWrite(state->table, counter);
    const txn::TxnStatus status = txn.Run([&](txn::Transaction& t) {
      int64_t a = 0;
      int64_t b = 0;
      int64_t c = 0;
      if (!t.Read(state->table, from, &a) || !t.Read(state->table, to, &b) ||
          !t.Read(state->table, counter, &c)) {
        return false;
      }
      a -= amount;
      b += amount;
      c += 1;
      return t.Write(state->table, from, &a) &&
             t.Write(state->table, to, &b) &&
             t.Write(state->table, counter, &c);
    });
    if (status != txn::TxnStatus::kCommitted) {
      return false;
    }
    state->ledger[state->LedgerIndex(from)].fetch_add(
        -amount, std::memory_order_relaxed);
    state->ledger[state->LedgerIndex(to)].fetch_add(
        amount, std::memory_order_relaxed);
    state->ledger[state->LedgerIndex(counter)].fetch_add(
        1, std::memory_order_relaxed);
    return true;
  }
  if (roll < 80 && state->ro_enabled) {
    // Read-only pair check: lease fencing means the snapshot can never
    // show a half-applied transfer, so the pair sum must be exact.
    const int target = static_cast<int>(rng.NextBounded(
        static_cast<uint64_t>(cluster.num_nodes())));
    const uint64_t pair = rng.NextBounded(kPairsPerNode);
    const uint64_t x = PairKey(target, pair, 0);
    const uint64_t y = PairKey(target, pair, 1);
    txn::ReadOnlyTransaction ro(&worker);
    ro.AddRead(state->table, x);
    ro.AddRead(state->table, y);
    if (ro.Execute() != txn::TxnStatus::kCommitted) {
      return false;
    }
    int64_t vx = 0;
    int64_t vy = 0;
    if (!ro.Get(state->table, x, &vx) || !ro.Get(state->table, y, &vy)) {
      return false;
    }
    state->ro_commits.fetch_add(1, std::memory_order_relaxed);
    if (vx + vy != 2 * kInitialBalance) {
      state->ro_anomalies.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }
  // Local commit-counter increment.
  const uint64_t counter = CounterKey(home);
  txn::Transaction txn(&worker);
  txn.AddWrite(state->table, counter);
  const txn::TxnStatus status = txn.Run([&](txn::Transaction& t) {
    int64_t c = 0;
    if (!t.Read(state->table, counter, &c)) {
      return false;
    }
    c += 1;
    return t.Write(state->table, counter, &c);
  });
  if (status != txn::TxnStatus::kCommitted) {
    return false;
  }
  state->ledger[state->LedgerIndex(counter)].fetch_add(
      1, std::memory_order_relaxed);
  return true;
}

}  // namespace

uint64_t PairKey(int node, uint64_t pair, int half) {
  return (static_cast<uint64_t>(node) << 32) | (2 * pair + half);
}

uint64_t CounterKey(int node) {
  return (static_cast<uint64_t>(node) << 32) | kCounterIndex;
}

uint64_t ScratchKey(int target, int node, int worker_id) {
  return (static_cast<uint64_t>(target) << 32) | (kCounterIndex << 1) |
         static_cast<uint64_t>(node * 64 + worker_id);
}

TransferState::TransferState(int num_nodes) : nodes(num_nodes) {
  ledger = std::make_unique<std::atomic<int64_t>[]>(
      static_cast<size_t>(num_nodes) * kStride);
  for (size_t i = 0; i < static_cast<size_t>(num_nodes) * kStride; ++i) {
    ledger[i].store(0, std::memory_order_relaxed);
  }
}

size_t TransferState::LedgerIndex(uint64_t key) const {
  const size_t node = static_cast<size_t>(key >> 32);
  const uint64_t low = key & 0xffffffffULL;
  if (low == kCounterIndex) {
    return node * kStride + 2 * kPairsPerNode;
  }
  return node * kStride + low;
}

WorkloadHarness::WorkloadHarness(const WorkloadShape& shape) : shape_(shape) {
  txn::ClusterConfig cluster_config;
  cluster_config.num_nodes = shape.nodes;
  cluster_config.workers_per_node =
      std::max(1, shape.cluster_workers_per_node);
  cluster_config.region_bytes = size_t{48} << 20;
  cluster_config.logging = true;
  cluster_config.group_commit = shape.group_commit;
  cluster_config.latency = rdma::LatencyModel::Zero();
  // Short leases: with the default 10 ms RO lease, a chaos-shifted
  // pile-up of read-only renewals on one hot pair can make every writer
  // wait out (and lose) lease after lease — hundreds of fallback
  // attempts at ~10 ms each turns one transaction into minutes. Chaos
  // runs want many fault/recovery cycles per second, not long leases.
  cluster_config.lease_rw_us = 1500;
  cluster_config.lease_ro_us = 2000;
  cluster_config.delta_us = 300;
  cluster_config.softtime_interval_us = 200;

  cluster_ = std::make_unique<txn::Cluster>(cluster_config);

  if (shape.workload == ChaosWorkload::kTransfer) {
    transfer_ = std::make_unique<TransferState>(shape.nodes);
    transfer_->ro_enabled = shape.transfer_ro_enabled;
    txn::TableSpec spec;
    spec.value_size = 8;
    spec.main_buckets = 1 << 8;
    spec.indirect_buckets = 1 << 7;
    spec.capacity = 1 << 12;
    spec.partition = [](uint64_t key) { return static_cast<int>(key >> 32); };
    transfer_->table = cluster_->AddTable(spec);
    cluster_->Start();
    for (int node = 0; node < shape.nodes; ++node) {
      for (uint64_t p = 0; p < kPairsPerNode; ++p) {
        for (int half = 0; half < 2; ++half) {
          const int64_t balance = kInitialBalance;
          cluster_->hash_table(node, transfer_->table)
              ->Insert(PairKey(node, p, half), &balance);
        }
      }
      const int64_t zero = 0;
      cluster_->hash_table(node, transfer_->table)
          ->Insert(CounterKey(node), &zero);
    }
  } else if (shape.workload == ChaosWorkload::kSmallBank) {
    workload::SmallBankDb::Params params;
    params.accounts_per_node = 256;
    params.hot_accounts_per_node = 32;
    params.cross_node_probability = 0.1;
    smallbank_ = std::make_unique<workload::SmallBankDb>(cluster_.get(),
                                                         params);
    cluster_->Start();
    smallbank_->Load();
    smallbank_expected_ = smallbank_->TotalMoney();
  } else if (shape.workload == ChaosWorkload::kTpcc) {
    workload::TpccDb::Params params;
    params.warehouses = shape.nodes;
    params.customers_per_district = 64;
    params.items = 256;
    params.initial_orders_per_district = 4;
    tpcc_ = std::make_unique<workload::TpccDb>(cluster_.get(), params);
    cluster_->Start();
    tpcc_->Load();
  } else {
    workload::YcsbDb::Params params;
    params.records_per_node = 2048;
    params.value_size = 64;
    params.mix = workload::YcsbDb::Mix::kB;
    params.ops_per_txn = 2;
    ycsb_ = std::make_unique<workload::YcsbDb>(cluster_.get(), params);
    cluster_->Start();
    ycsb_->Load();
  }
}

WorkloadHarness::~WorkloadHarness() {
  if (cluster_ != nullptr) {
    cluster_->Stop();
  }
}

bool WorkloadHarness::RunOp(txn::Worker& worker, Xoshiro256& rng,
                            uint64_t op) {
  const int node = worker.node();
  const int worker_id = worker.worker_id();
  if (transfer_ != nullptr) {
    if ((op & 7) == 3) {
      // Structural scratch op: a shipped INSERT then DELETE against a
      // random host. A chaos-dropped DELETE leaves a stray scratch
      // key, which no oracle reads; the point is to put traffic on
      // the RPC dispatch path while faults fire.
      const int target = static_cast<int>(
          rng.NextBounded(static_cast<uint64_t>(shape_.nodes)));
      const uint64_t scratch = ScratchKey(target, node, worker_id);
      const int64_t one = 1;
      if (cluster_->RemoteInsert(node, transfer_->table, scratch, &one)) {
        cluster_->RemoteRemove(node, transfer_->table, scratch);
      }
    }
    return TransferStep(worker, rng, transfer_.get());
  }
  if (smallbank_ != nullptr) {
    // Conservation-preserving mix only: send-payment and amalgamate
    // move money between accounts, balance reads it. The deposit /
    // write-check / transact-savings types legitimately change
    // TotalMoney, which would blind the conservation oracle.
    txn::TxnStatus status;
    const uint64_t roll = rng.NextBounded(4);
    if (roll < 2) {
      status = smallbank_->RunSendPayment(&worker);
    } else if (roll == 2) {
      status = smallbank_->RunAmalgamate(&worker);
    } else {
      status = smallbank_->RunBalance(&worker);
    }
    return status == txn::TxnStatus::kCommitted;
  }
  if (tpcc_ != nullptr) {
    return tpcc_->RunMix(&worker).status == txn::TxnStatus::kCommitted;
  }
  return ycsb_->RunTxn(&worker).committed;
}

uint64_t WorkloadHarness::StateDigest() {
  uint64_t digest = kFnvBasis;
  if (transfer_ != nullptr) {
    // Must stay byte-identical to the fold the judge historically
    // computed: node-major, pairs then counter, value bytes only.
    const int table = transfer_->table;
    for (int node = 0; node < shape_.nodes; ++node) {
      for (uint64_t p = 0; p < kPairsPerNode; ++p) {
        for (int half = 0; half < 2; ++half) {
          int64_t value = 0;
          cluster_->hash_table(node, table)->Get(PairKey(node, p, half),
                                                 &value);
          digest = Fnv1a(digest, &value, sizeof(value));
        }
      }
      int64_t value = 0;
      cluster_->hash_table(node, table)->Get(CounterKey(node), &value);
      digest = Fnv1a(digest, &value, sizeof(value));
    }
    return digest;
  }
  if (smallbank_ != nullptr) {
    for (int node = 0; node < shape_.nodes; ++node) {
      for (uint64_t i = 0; i < smallbank_->params().accounts_per_node; ++i) {
        const uint64_t key = workload::SmallBankDb::AccountKey(node, i);
        int64_t savings = 0;
        int64_t checking = 0;
        cluster_->hash_table(node, smallbank_->savings_table())
            ->Get(key, &savings);
        cluster_->hash_table(node, smallbank_->checking_table())
            ->Get(key, &checking);
        digest = Fnv1a(digest, &savings, sizeof(savings));
        digest = Fnv1a(digest, &checking, sizeof(checking));
      }
    }
    return digest;
  }
  if (tpcc_ != nullptr) {
    // Warehouse + district rows (the consistency-condition state). TPC-C
    // sits outside the replay digest gate; this digest is context.
    const uint32_t wh_size =
        cluster_->table(tpcc_->warehouse_table()).value_size;
    const uint32_t di_size =
        cluster_->table(tpcc_->district_table()).value_size;
    std::vector<uint8_t> buf(std::max(wh_size, di_size));
    for (uint64_t w = 0;
         w < static_cast<uint64_t>(tpcc_->params().warehouses); ++w) {
      const int node = cluster_->PartitionOf(tpcc_->warehouse_table(), w);
      if (cluster_->hash_table(node, tpcc_->warehouse_table())
              ->Get(w, buf.data())) {
        digest = Fnv1a(digest, buf.data(), wh_size);
      }
      for (uint64_t d = 0; d < 10; ++d) {
        const uint64_t key = workload::DistrictKey(w, d);
        const int dnode = cluster_->PartitionOf(tpcc_->district_table(), key);
        if (cluster_->hash_table(dnode, tpcc_->district_table())
                ->Get(key, buf.data())) {
          digest = Fnv1a(digest, buf.data(), di_size);
        }
      }
    }
    return digest;
  }
  const uint32_t value_size = ycsb_->params().value_size;
  std::vector<uint8_t> buf(value_size);
  for (uint64_t logical = 0; logical < ycsb_->total_records(); ++logical) {
    const uint64_t key = ycsb_->KeyAt(logical);
    const int node = cluster_->PartitionOf(ycsb_->table(), key);
    if (cluster_->hash_table(node, ycsb_->table())->Get(key, buf.data())) {
      digest = Fnv1a(digest, buf.data(), value_size);
    }
  }
  return digest;
}

}  // namespace chaos
}  // namespace drtm
