// Workload harness shared by the chaos runner and the replay engine
// (src/chaos). RunChaos historically built the cluster, loaded one of
// the four workloads, and ran the per-op mix inline; replay mode needs
// to rebuild *exactly* that environment from a recorded log header and
// re-issue the same per-op mix single-threaded. This header extracts the
// common pieces:
//
//   * WorkloadShape     — everything needed to reconstruct the run
//                         environment (also what a replay log header
//                         carries).
//   * WorkloadHarness   — owns the cluster + loaded workload; RunOp()
//                         executes one worker-loop op (including the
//                         transfer scratch RPC op and the smallbank mix
//                         roll, with identical rng draw order), and
//                         StateDigest() folds the workload's observable
//                         store state into an FNV-1a digest.
//
// Determinism contract: for a fixed (shape, worker identity, rng stream)
// the sequence of key/amount draws RunOp makes is a pure function of the
// op ordinal — both record and replay call through this one path.
#ifndef SRC_CHAOS_CHAOS_WORKLOAD_H_
#define SRC_CHAOS_CHAOS_WORKLOAD_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/chaos/chaos_run.h"
#include "src/common/rand.h"
#include "src/txn/cluster.h"
#include "src/txn/transaction.h"
#include "src/workload/smallbank.h"
#include "src/workload/tpcc.h"
#include "src/workload/ycsb.h"

namespace drtm {
namespace chaos {

// --- transfer workload shape ------------------------------------------------
// Per node: kPairsPerNode pairs of accounts (keys 2p / 2p+1, high word =
// node) plus one commit counter. Intra-pair transfers preserve each
// pair's sum; a client-side per-key delta ledger — updated only after
// Run() returned kCommitted — gives the oracle an exact expected value
// for every record.
inline constexpr uint64_t kPairsPerNode = 48;
inline constexpr int64_t kInitialBalance = 1000;
inline constexpr uint64_t kCounterIndex = uint64_t{1} << 20;

uint64_t PairKey(int node, uint64_t pair, int half);
uint64_t CounterKey(int node);
// Scratch keys live above the counter index so the conservation and
// commit-ledger oracles never scan them; they exist only to drive the
// server-thread RPC path (rpc.dispatch plus the shipped INSERT/DELETE
// chaos points), which pure one-sided transfer traffic never touches.
uint64_t ScratchKey(int target, int node, int worker_id);

struct TransferState {
  int table = -1;
  int nodes = 0;
  // node-major: [node * stride + 2p | 2p+1], counter at [node * stride +
  // 2 * kPairsPerNode]. Deltas, not absolute values.
  static constexpr size_t kStride = 2 * kPairsPerNode + 1;
  std::unique_ptr<std::atomic<int64_t>[]> ledger;
  // Read-only pair checks acquire wall-clock leases (a later write's
  // fate depends on how much real time the lease window has left), so
  // the single-threaded deterministic mode — which promises the same
  // run outcome for the same seed — skips them; the threaded runs keep
  // the full mix and the lease-safety oracle.
  bool ro_enabled = true;
  std::atomic<uint64_t> ro_commits{0};
  std::atomic<uint64_t> ro_anomalies{0};

  explicit TransferState(int num_nodes);
  size_t LedgerIndex(uint64_t key) const;
};

// Everything needed to rebuild a chaos run's environment. A replay log
// header serializes exactly these fields (plus the seed).
struct WorkloadShape {
  ChaosWorkload workload = ChaosWorkload::kTransfer;
  int nodes = 3;
  // The ClusterConfig value (WAL segmentation, server threads) — not the
  // number of workers that actually ran ops.
  int cluster_workers_per_node = 2;
  bool group_commit = false;
  // Transfer's lease-read mix knob: op-type draws depend on it, so a
  // replay must honour the recorded value.
  bool transfer_ro_enabled = true;
};

class WorkloadHarness {
 public:
  // Builds the cluster (chaos lease/logging config), adds the workload's
  // tables, starts the cluster, and loads initial data.
  explicit WorkloadHarness(const WorkloadShape& shape);
  ~WorkloadHarness();

  WorkloadHarness(const WorkloadHarness&) = delete;
  WorkloadHarness& operator=(const WorkloadHarness&) = delete;

  txn::Cluster& cluster() { return *cluster_; }
  const WorkloadShape& shape() const { return shape_; }

  // One worker-loop op: the transfer scratch RPC op on (op & 7) == 3,
  // then the workload's own mix step. All randomness comes from `rng`
  // and the worker's identity-seeded internal streams, in a fixed draw
  // order. Returns true when the op's transaction committed.
  bool RunOp(txn::Worker& worker, Xoshiro256& rng, uint64_t op);

  // FNV-1a over the workload's observable final store state, in a fixed
  // iteration order. For transfer this folds exactly the records (and
  // order) the judge historically digested; scratch keys are excluded
  // everywhere.
  uint64_t StateDigest();

  // Judge access.
  TransferState* transfer() { return transfer_.get(); }
  workload::SmallBankDb* smallbank() { return smallbank_.get(); }
  workload::TpccDb* tpcc() { return tpcc_.get(); }
  workload::YcsbDb* ycsb() { return ycsb_.get(); }
  int64_t smallbank_expected() const { return smallbank_expected_; }

 private:
  WorkloadShape shape_;
  std::unique_ptr<txn::Cluster> cluster_;
  std::unique_ptr<TransferState> transfer_;
  std::unique_ptr<workload::SmallBankDb> smallbank_;
  std::unique_ptr<workload::TpccDb> tpcc_;
  std::unique_ptr<workload::YcsbDb> ycsb_;
  int64_t smallbank_expected_ = 0;
};

}  // namespace chaos
}  // namespace drtm

#endif  // SRC_CHAOS_CHAOS_WORKLOAD_H_
