#include "src/chaos/fault_plan.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

#include "src/common/rand.h"

namespace drtm {
namespace chaos {

namespace {

constexpr const char* kKindNames[] = {
    "drop", "torn_write", "delay", "nic_down",
    "crash", "revive", "clock_skew", "crash_point",
};
constexpr size_t kKindCount = sizeof(kKindNames) / sizeof(kKindNames[0]);

}  // namespace

const char* FaultKindName(FaultKind kind) {
  const size_t index = static_cast<size_t>(kind);
  return index < kKindCount ? kKindNames[index] : "?";
}

bool ParseFaultKind(const std::string& name, FaultKind* out) {
  for (size_t i = 0; i < kKindCount; ++i) {
    if (name == kKindNames[i]) {
      *out = static_cast<FaultKind>(i);
      return true;
    }
  }
  return false;
}

FaultPlan FaultPlan::FromSeed(uint64_t seed, const PlanParams& params) {
  FaultPlan plan;
  plan.seed_ = seed;
  // Xoshiro256 seeds through SplitMix64, so nearby seeds diverge; the
  // whole generation is a pure function of (seed, params).
  Xoshiro256 rng(seed ^ 0xc5a05e93ULL);

  // Points faults are drawn from. Torn writes only make sense on the
  // write WQE path; NIC-down / crash windows stay on the RDMA points
  // (they model NIC and machine state); single-op drops and latency
  // spikes additionally land on the server-thread RPC path — dispatch
  // plus the shipped INSERT/DELETE handlers — which also covers the
  // elastic tier's migration ships and cache invalidations.
  static const char* kRdmaPoints[] = {
      "rdma.read.wqe", "rdma.write.wqe", "rdma.cas.wqe",
      "rdma.faa.wqe",  "rdma.send",
  };
  constexpr size_t kRdmaPointCount =
      sizeof(kRdmaPoints) / sizeof(kRdmaPoints[0]);
  static const char* kTransientPoints[] = {
      "rdma.read.wqe", "rdma.write.wqe", "rdma.cas.wqe",
      "rdma.faa.wqe",  "rdma.send",      "rpc.dispatch",
      "rpc.insert",    "rpc.remove",
  };
  constexpr size_t kTransientPointCount =
      sizeof(kTransientPoints) / sizeof(kTransientPoints[0]);

  // Arrivals must be unique per point for the fire-on-Nth-arrival model;
  // track (point, arrival) pairs already used.
  std::set<std::pair<std::string, uint64_t>> used;
  auto pick_arrival = [&](const std::string& point) {
    for (int tries = 0; tries < 64; ++tries) {
      const uint64_t arrival = 1 + rng.NextBounded(params.horizon_ops);
      if (used.emplace(point, arrival).second) {
        return arrival;
      }
    }
    // Dense horizon: fall back to the first free ordinal.
    uint64_t arrival = 1;
    while (!used.emplace(point, arrival).second) {
      ++arrival;
    }
    return arrival;
  };
  auto pick_victim = [&] {
    // Node 0 stays up so survivors can always drive recovery.
    return params.num_nodes > 1
               ? 1 + static_cast<int32_t>(rng.NextBounded(
                         static_cast<uint64_t>(params.num_nodes - 1)))
               : 0;
  };

  for (int i = 0; i < params.events; ++i) {
    FaultEvent event;
    const uint64_t roll = rng.NextBounded(100);
    if (roll < 30) {  // transient single-op drop
      event.point = kTransientPoints[rng.NextBounded(kTransientPointCount)];
      event.kind = FaultKind::kDropOp;
    } else if (roll < 45) {  // torn RDMA write
      event.point = "rdma.write.wqe";
      event.kind = FaultKind::kTornWrite;
      event.arg = static_cast<int64_t>(1 + rng.NextBounded(16));
    } else if (roll < 60) {  // latency spike, 50–800 us
      event.point = kTransientPoints[rng.NextBounded(kTransientPointCount)];
      event.kind = FaultKind::kDelay;
      event.arg = static_cast<int64_t>(50000 + rng.NextBounded(750000));
    } else if (roll < 75) {  // NIC-down window, count-based
      event.point = kRdmaPoints[rng.NextBounded(kRdmaPointCount)];
      event.kind = FaultKind::kNicDown;
      event.node = pick_victim();
      event.arg = static_cast<int64_t>(8 + rng.NextBounded(120));
    } else if (roll < 85 && params.allow_crash) {  // crash + paired revive
      event.point = kRdmaPoints[rng.NextBounded(kRdmaPointCount)];
      event.kind = FaultKind::kCrashNode;
      event.node = pick_victim();
      event.arrival = pick_arrival(event.point);
      FaultEvent revive;
      revive.point = event.point;
      revive.kind = FaultKind::kReviveNode;
      revive.node = event.node;
      // Revive soon after: surviving workers stall on a dead target, so
      // short windows keep the run moving (recovery runs at revive time).
      revive.arrival = event.arrival + 32 + rng.NextBounded(256);
      while (!used.emplace(revive.point, revive.arrival).second) {
        ++revive.arrival;
      }
      plan.events_.push_back(std::move(event));
      plan.events_.push_back(std::move(revive));
      continue;
    } else if (roll < 95 && params.allow_skew) {  // softtime skew
      event.point = kRdmaPoints[rng.NextBounded(kRdmaPointCount)];
      event.kind = FaultKind::kClockSkew;
      event.node = pick_victim();
      // Bounded to +-250 us: past DELTA the protocol may (correctly)
      // refuse leases, which starves rather than breaks.
      event.arg = static_cast<int64_t>(rng.NextBounded(501)) - 250;
    } else {  // simulated power-cut at a log point
      event.point = rng.Bernoulli(0.5) ? "log.append" : "log.replay";
      event.kind = FaultKind::kCrashPoint;
    }
    event.arrival = pick_arrival(event.point);
    plan.events_.push_back(std::move(event));
  }

  // Canonical order: by point name, then arrival. The firing order at run
  // time is governed by arrivals, not list order, so sorting costs
  // nothing and makes ToScript() a canonical form.
  std::sort(plan.events_.begin(), plan.events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.point != b.point) return a.point < b.point;
              return a.arrival < b.arrival;
            });
  return plan;
}

std::string FaultPlan::ToScript() const {
  std::ostringstream out;
  out << "# chaos plan seed=" << seed_ << " events=" << events_.size()
      << "\n";
  for (const FaultEvent& e : events_) {
    out << "event point=" << e.point << " arrival=" << e.arrival
        << " kind=" << FaultKindName(e.kind) << " node=" << e.node
        << " arg=" << e.arg << "\n";
  }
  return out.str();
}

bool FaultPlan::Parse(const std::string& script, FaultPlan* out,
                      std::string* error) {
  FaultPlan plan;
  std::istringstream in(script);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      const size_t seed_pos = line.find("seed=");
      if (seed_pos != std::string::npos) {
        plan.seed_ = std::strtoull(line.c_str() + seed_pos + 5, nullptr, 10);
      }
      continue;
    }
    std::istringstream fields(line);
    std::string word;
    fields >> word;
    if (word != "event") {
      return fail("expected 'event', got '" + word + "'");
    }
    FaultEvent event;
    bool have_point = false;
    while (fields >> word) {
      const size_t eq = word.find('=');
      if (eq == std::string::npos) {
        return fail("malformed field '" + word + "'");
      }
      const std::string key = word.substr(0, eq);
      const std::string value = word.substr(eq + 1);
      if (key == "point") {
        event.point = value;
        have_point = true;
      } else if (key == "arrival") {
        event.arrival = std::strtoull(value.c_str(), nullptr, 10);
      } else if (key == "kind") {
        if (!ParseFaultKind(value, &event.kind)) {
          return fail("unknown kind '" + value + "'");
        }
      } else if (key == "node") {
        event.node = static_cast<int32_t>(std::strtol(value.c_str(),
                                                      nullptr, 10));
      } else if (key == "arg") {
        event.arg = std::strtoll(value.c_str(), nullptr, 10);
      } else {
        return fail("unknown field '" + key + "'");
      }
    }
    if (!have_point || event.arrival == 0) {
      return fail("event needs point= and a positive arrival=");
    }
    plan.events_.push_back(std::move(event));
  }
  *out = std::move(plan);
  return true;
}

}  // namespace chaos
}  // namespace drtm
