// Deterministic fault schedules for the chaos subsystem.
//
// A FaultPlan is a list of FaultEvents, each bound to a *named injection
// point* (see injector.h for the point catalog) and an *arrival ordinal*:
// the event fires on exactly the Nth arrival at that point after the plan
// is armed. Counting arrivals instead of wall-clock time is what makes a
// schedule reproducible — the Nth RDMA write is the Nth RDMA write no
// matter how fast the host runs — and a plan built from a seed serializes
// to a byte-identical script every time (asserted by the determinism
// test), so a failing chaos run reproduces with `chaos_runner --seed <s>`
// or with the exact recorded script.
#ifndef SRC_CHAOS_FAULT_PLAN_H_
#define SRC_CHAOS_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace drtm {
namespace chaos {

enum class FaultKind : uint8_t {
  kDropOp = 0,     // fail this one op with kNodeDown (transient)
  kTornWrite,      // apply only `arg` bytes of this RDMA write, then fail
  kDelay,          // latency spike: spin `arg` extra nanoseconds
  kNicDown,        // drop the next `arg` RDMA ops targeting `node`
  kCrashNode,      // fail-stop `node` (delivered via the crash handler)
  kReviveNode,     // restart `node` (delivered via the revive handler)
  kClockSkew,      // skew `node`'s softtime by `arg` microseconds
  kCrashPoint,     // simulated power-cut at a log/txn point: the site
                   // abandons its remaining work (torn append, truncated
                   // replay, unreleased fallback locks)
};

const char* FaultKindName(FaultKind kind);
bool ParseFaultKind(const std::string& name, FaultKind* out);

struct FaultEvent {
  std::string point;     // injection point name, e.g. "rdma.write.wqe"
  uint64_t arrival = 1;  // fires on the Nth arrival (1-based) at `point`
  FaultKind kind = FaultKind::kDropOp;
  int32_t node = -1;     // target node; -1 means "the op's own target"
  int64_t arg = 0;       // kind-specific (bytes / ns / op count / us)
};

struct PlanParams {
  int num_nodes = 3;
  int events = 12;
  // Arrival ordinals are spread over [1, horizon_ops]; size it to the
  // expected op volume of the run so faults land mid-workload.
  uint64_t horizon_ops = 4000;
  bool allow_crash = true;   // crash/revive pairs (needs a crash handler)
  bool allow_skew = true;    // softtime skew (needs a skew handler)
};

class FaultPlan {
 public:
  // Deterministic generation: the same (seed, params) always yields the
  // same event list, independent of host, thread count, or time.
  static FaultPlan FromSeed(uint64_t seed, const PlanParams& params);

  // Parses a script previously produced by ToScript(). Returns false on
  // malformed input; *error names the offending line.
  static bool Parse(const std::string& script, FaultPlan* out,
                    std::string* error);

  // Canonical serialization; Parse(ToScript()) round-trips exactly.
  std::string ToScript() const;

  uint64_t seed() const { return seed_; }
  const std::vector<FaultEvent>& events() const { return events_; }
  std::vector<FaultEvent>& events() { return events_; }
  void set_seed(uint64_t seed) { seed_ = seed; }
  void Add(FaultEvent event) { events_.push_back(std::move(event)); }

 private:
  uint64_t seed_ = 0;
  std::vector<FaultEvent> events_;
};

}  // namespace chaos
}  // namespace drtm

#endif  // SRC_CHAOS_FAULT_PLAN_H_
