#include "src/chaos/injector.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "src/stat/metrics.h"

namespace drtm {
namespace chaos {

namespace {

// points_ must never reallocate: OnPoint indexes it without the mutex
// while new sites may still be registering their function-local statics.
constexpr size_t kMaxPoints = 256;

struct ChaosMetricIds {
  uint32_t fired = 0;
  uint32_t drop = 0;
  uint32_t torn = 0;
  uint32_t delay = 0;
  uint32_t nic_window_drop = 0;
  uint32_t crash = 0;
  uint32_t revive = 0;
  uint32_t skew = 0;
  uint32_t crash_point = 0;
};

const ChaosMetricIds& ChaosIds() {
  static const ChaosMetricIds ids = [] {
    stat::Registry& reg = stat::Registry::Global();
    ChaosMetricIds c;
    c.fired = reg.CounterId("chaos.fired");
    c.drop = reg.CounterId("chaos.drop");
    c.torn = reg.CounterId("chaos.torn_write");
    c.delay = reg.CounterId("chaos.delay");
    c.nic_window_drop = reg.CounterId("chaos.nic_window_drop");
    c.crash = reg.CounterId("chaos.crash");
    c.revive = reg.CounterId("chaos.revive");
    c.skew = reg.CounterId("chaos.clock_skew");
    c.crash_point = reg.CounterId("chaos.crash_point");
    return c;
  }();
  return ids;
}

uint32_t KindCounter(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropOp:
      return ChaosIds().drop;
    case FaultKind::kTornWrite:
      return ChaosIds().torn;
    case FaultKind::kDelay:
      return ChaosIds().delay;
    case FaultKind::kNicDown:
      return ChaosIds().nic_window_drop;
    case FaultKind::kCrashNode:
      return ChaosIds().crash;
    case FaultKind::kReviveNode:
      return ChaosIds().revive;
    case FaultKind::kClockSkew:
      return ChaosIds().skew;
    case FaultKind::kCrashPoint:
      return ChaosIds().crash_point;
  }
  return ChaosIds().fired;
}

}  // namespace

Injector& Injector::Global() {
  static Injector* injector = new Injector();
  return *injector;
}

uint32_t Injector::Point(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.capacity() < kMaxPoints) {
    points_.reserve(kMaxPoints);
  }
  for (size_t i = 0; i < points_.size(); ++i) {
    if (points_[i]->name == name) {
      return static_cast<uint32_t>(i);
    }
  }
  assert(points_.size() < kMaxPoints);
  auto state = std::make_unique<PointState>();
  state->name = name;
  state->is_rdma = name.rfind("rdma.", 0) == 0;
  points_.push_back(std::move(state));
  return static_cast<uint32_t>(points_.size() - 1);
}

void Injector::Arm(const FaultPlan& plan) {
  Disarm();
  {
    std::lock_guard<std::mutex> lock(mu_);
    armed_events_ = plan.events();
    firings_.clear();
    fired_total_.store(0, std::memory_order_relaxed);
    for (auto& point : points_) {
      point->arrivals.store(0, std::memory_order_relaxed);
      point->triggers.clear();
    }
    for (int n = 0; n < kMaxNodes; ++n) {
      nic_drop_[n].store(0, std::memory_order_relaxed);
    }
  }
  // Point() takes mu_ itself; bind triggers outside the lock.
  for (size_t i = 0; i < armed_events_.size(); ++i) {
    const uint32_t id = Point(armed_events_[i].point);
    std::lock_guard<std::mutex> lock(mu_);
    points_[id]->triggers.emplace_back(armed_events_[i].arrival, i);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& point : points_) {
      std::sort(point->triggers.begin(), point->triggers.end());
    }
  }
  armed_.store(true, std::memory_order_release);
}

void Injector::Disarm() { armed_.store(false, std::memory_order_release); }

void Injector::SetCrashHandler(std::function<void(int)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_handler_ = std::move(fn);
}

void Injector::SetReviveHandler(std::function<void(int)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  revive_handler_ = std::move(fn);
}

void Injector::SetSkewHandler(std::function<void(int, int64_t)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  skew_handler_ = std::move(fn);
}

void Injector::SetFiringObserver(std::function<void(const Firing&)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  firing_observer_ = std::move(fn);
}

void Injector::RecordFiring(const PointState& point, uint64_t arrival,
                            const FaultEvent& event, int node) {
  Firing firing;
  firing.seq = fired_total_.fetch_add(1, std::memory_order_relaxed);
  firing.point = point.name;
  firing.arrival = arrival;
  firing.kind = event.kind;
  firing.node = node;
  firing.arg = event.arg;
  std::function<void(const Firing&)> observer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    observer = firing_observer_;
    firings_.push_back(firing);
  }
  if (observer) {
    observer(firing);
  }
  stat::Registry& reg = stat::Registry::Global();
  reg.Add(ChaosIds().fired);
  reg.Add(KindCounter(event.kind));
}

Decision Injector::OnPoint(uint32_t point_id, int target_node) {
  PointState& point = *points_[point_id];
  const uint64_t arrival =
      point.arrivals.fetch_add(1, std::memory_order_relaxed) + 1;

  // Scheduled event at this exact arrival?
  const auto it = std::lower_bound(
      point.triggers.begin(), point.triggers.end(),
      std::make_pair(arrival, size_t{0}));
  if (it != point.triggers.end() && it->first == arrival) {
    const FaultEvent& event = armed_events_[it->second];
    const int node = event.node >= 0 ? event.node : target_node;
    RecordFiring(point, arrival, event, node);
    switch (event.kind) {
      case FaultKind::kDropOp:
        return Decision{Decision::Kind::kFailOp, 0};
      case FaultKind::kTornWrite:
        return Decision{Decision::Kind::kTornWrite,
                        static_cast<uint64_t>(event.arg)};
      case FaultKind::kDelay:
        return Decision{Decision::Kind::kDelayNs,
                        static_cast<uint64_t>(event.arg)};
      case FaultKind::kNicDown:
        if (node >= 0 && node < kMaxNodes) {
          nic_drop_[node].store(event.arg, std::memory_order_relaxed);
        }
        return Decision{Decision::Kind::kFailOp, 0};
      case FaultKind::kCrashNode: {
        std::function<void(int)> handler;
        {
          std::lock_guard<std::mutex> lock(mu_);
          handler = crash_handler_;
        }
        if (handler) {
          handler(node);
        }
        return Decision{Decision::Kind::kFailOp, 0};
      }
      case FaultKind::kReviveNode: {
        std::function<void(int)> handler;
        {
          std::lock_guard<std::mutex> lock(mu_);
          handler = revive_handler_;
        }
        if (handler) {
          handler(node);
        }
        return Decision{};
      }
      case FaultKind::kClockSkew: {
        std::function<void(int, int64_t)> handler;
        {
          std::lock_guard<std::mutex> lock(mu_);
          handler = skew_handler_;
        }
        if (handler) {
          handler(node, event.arg);
        }
        return Decision{};
      }
      case FaultKind::kCrashPoint:
        return Decision{Decision::Kind::kAbandon, 0};
    }
  }

  // Open NIC-down window covering this op's target?
  if (point.is_rdma && target_node >= 0 && target_node < kMaxNodes &&
      nic_drop_[target_node].load(std::memory_order_relaxed) > 0) {
    if (nic_drop_[target_node].fetch_sub(1, std::memory_order_relaxed) > 0) {
      stat::Registry::Global().Add(ChaosIds().nic_window_drop);
      return Decision{Decision::Kind::kFailOp, 0};
    }
    // Lost the race past zero; repair and fall through.
    nic_drop_[target_node].store(0, std::memory_order_relaxed);
  }
  return Decision{};
}

std::vector<Injector::Firing> Injector::Firings() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Firing> out = firings_;
  std::sort(out.begin(), out.end(),
            [](const Firing& a, const Firing& b) { return a.seq < b.seq; });
  return out;
}

std::string Injector::FiringLog() const {
  std::ostringstream out;
  for (const Firing& f : Firings()) {
    out << "fire " << f.seq << ": point=" << f.point
        << " arrival=" << f.arrival << " kind=" << FaultKindName(f.kind)
        << " node=" << f.node << " arg=" << f.arg << "\n";
  }
  return out.str();
}

}  // namespace chaos
}  // namespace drtm
