// The chaos injector: named injection points threaded through the
// existing layers, armed with a FaultPlan.
//
// Point catalog (the names a plan's events bind to):
//   rdma.read.wqe / rdma.write.wqe / rdma.cas.wqe / rdma.faa.wqe
//       per-work-request hooks in the fabric's shared executors, so one
//       hook covers the scalar verbs, the doorbell-batched SendQueue and
//       the PhaseScatter engine alike (they all funnel through
//       Fabric::Execute*).
//   rdma.send
//       two-sided SEND/RPC submission.
//   log.append
//       NvramLog::Append, between the payload write and the head-counter
//       publish — a kCrashPoint here leaves a torn (invisible) record.
//   log.replay
//       NvramLog::ForEach, per record — a kCrashPoint truncates a
//       recovery scan mid-replay.
//   log.epoch.seal
//       NvramLog::SealAndSubmit, before the checksum/backpatch — a
//       kCrashPoint here dies with records staged in an unsealed epoch,
//       which recovery must treat as invisible (torn tail).
//   log.epoch.flush
//       NvramLog flush submission (the emulated doorbell) — a kAbandon
//       drops one flush; the next epoch's cumulative end-LSN heals it.
//   log.chop
//       the chopped-transaction runtime, between a chain's remaining-piece
//       record and the piece body — a kCrashPoint dies with pieces < k
//       committed and the chain locks still held; recovery reports the
//       chain's resume point and releases its locks.
//   txn.fallback.unlock
//       the 2PL fallback's lock-release loop, per reference — a
//       kCrashPoint abandons the remaining releases and suppresses the
//       Complete log record, exactly the state a machine dying mid-release
//       leaves behind.
//   rpc.dispatch / rpc.insert / rpc.remove
//       the server-thread RPC path: every request at the dispatch switch,
//       plus the shipped structural INSERT/DELETE ops — kFailOp/kAbandon
//       read as a dropped request (empty reply). In kTransientPoints, so
//       random plans draw them.
//   rpc.upsert / rpc.erase / rpc.cache_inval
//       the elastic tier's migration dual-write, erase and
//       location-cache invalidation broadcast channels. NOT in
//       kTransientPoints (fixed CI seeds keep byte-identical schedules);
//       scripted plans target them by name.
//
// drtm-lint's CP01 rule cross-checks this catalog: every mutating
// RDMA/log/RPC entry point must reach one of these hooks on some path.
//
// Design constraints honoured here:
//   * Disarmed cost is one relaxed atomic load — the hooks live on hot
//     paths (every RDMA op).
//   * Armed, the plan is immutable: per-point arrival counters are
//     atomics, event lookup is a binary search in a sorted-by-arrival
//     vector, and no injector lock is ever held while calling a
//     crash/revive/skew handler (handlers join server threads, which may
//     themselves be inside a hook).
//   * Every firing is recorded; FiringLog() prints the exact schedule a
//     failing run needs for one-command reproduction.
#ifndef SRC_CHAOS_INJECTOR_H_
#define SRC_CHAOS_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/chaos/fault_plan.h"

namespace drtm {
namespace chaos {

// What an instrumented site should do with the current arrival.
struct Decision {
  enum class Kind : uint8_t {
    kNone = 0,   // proceed normally
    kFailOp,     // report kNodeDown for this op (transient)
    kTornWrite,  // apply only `arg` bytes, then report kNodeDown
    kDelayNs,    // spin `arg` extra nanoseconds, then proceed
    kAbandon,    // simulated power-cut: abandon the site's remaining work
  };
  Kind kind = Kind::kNone;
  uint64_t arg = 0;
};

class Injector {
 public:
  static Injector& Global();

  // Registers (or finds) a point by name and returns its dense id.
  // Sites cache the id in a function-local static.
  uint32_t Point(const std::string& name);

  // Arms the plan: resets arrival counters, firing log and NIC windows.
  // Handlers survive re-arming; Disarm() restores the zero-cost path.
  void Arm(const FaultPlan& plan);
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  // The site hook. target_node is the op's target (or the local node for
  // log/txn points); used for NIC windows and defaulted-node events.
  Decision OnPoint(uint32_t point, int target_node);

  // Control-plane handlers, registered by the harness (chaos_run) so the
  // injector does not depend on txn::Cluster. Unregistered handlers turn
  // the corresponding events into recorded no-ops.
  void SetCrashHandler(std::function<void(int)> fn);
  void SetReviveHandler(std::function<void(int)> fn);
  void SetSkewHandler(std::function<void(int, int64_t)> fn);

  struct Firing {
    uint64_t seq;       // global firing order
    std::string point;
    uint64_t arrival;
    FaultKind kind;
    int32_t node;
    int64_t arg;
  };
  std::vector<Firing> Firings() const;
  // Observer invoked synchronously on every firing (after it is recorded
  // in the firing log). Record-mode replay uses this to interleave chaos
  // firings into the replay event stream; pass nullptr to clear.
  void SetFiringObserver(std::function<void(const Firing&)> fn);
  // Deterministic text form: "fire <n>: point=... arrival=... kind=..."
  // per line, in firing order.
  std::string FiringLog() const;
  size_t firing_count() const {
    return fired_total_.load(std::memory_order_relaxed);
  }

 private:
  Injector() = default;

  struct PointState {
    std::string name;
    bool is_rdma = false;  // NIC-down windows apply here
    std::atomic<uint64_t> arrivals{0};
    // Sorted by arrival; index into armed_events_.
    std::vector<std::pair<uint64_t, size_t>> triggers;
  };

  void RecordFiring(const PointState& point, uint64_t arrival,
                    const FaultEvent& event, int node);

  std::atomic<bool> armed_{false};

  mutable std::mutex mu_;  // guards points_ growth, handlers, firings_
  std::vector<std::unique_ptr<PointState>> points_;
  std::vector<FaultEvent> armed_events_;
  std::vector<Firing> firings_;
  std::atomic<uint64_t> fired_total_{0};

  // Count-based NIC-down windows: ops remaining to drop per node.
  static constexpr int kMaxNodes = 64;
  std::atomic<int64_t> nic_drop_[kMaxNodes] = {};

  std::function<void(int)> crash_handler_;
  std::function<void(int)> revive_handler_;
  std::function<void(int, int64_t)> skew_handler_;
  std::function<void(const Firing&)> firing_observer_;
};

// The one-line site hook: zero-cost when disarmed.
inline Decision Check(uint32_t point, int target_node) {
  Injector& injector = Injector::Global();
  if (!injector.armed()) {
    return Decision{};
  }
  return injector.OnPoint(point, target_node);
}

}  // namespace chaos
}  // namespace drtm

#endif  // SRC_CHAOS_INJECTOR_H_
