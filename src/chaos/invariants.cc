#include "src/chaos/invariants.h"

#include <sstream>

#include "src/htm/htm.h"
#include "src/store/cluster_hash.h"
#include "src/store/kv_layout.h"
#include "src/txn/cluster.h"
#include "src/txn/lock_state.h"

namespace drtm {
namespace chaos {

std::string InvariantReport::ToString() const {
  std::ostringstream out;
  out << "invariants: " << checks << " checks, " << violations.size()
      << " violations\n";
  for (const std::string& v : violations) {
    out << "  VIOLATION: " << v << "\n";
  }
  return out.str();
}

void InvariantChecker::Violation(std::string message) {
  report_.violations.push_back(std::move(message));
}

void InvariantChecker::CheckConservation(const std::string& what,
                                         int64_t expected, int64_t actual) {
  ++report_.checks;
  if (actual != expected) {
    std::ostringstream msg;
    msg << "conservation: " << what << " expected " << expected << " got "
        << actual << " (delta " << (actual - expected) << ")";
    Violation(msg.str());
  }
}

void InvariantChecker::CheckCommitLedger(
    txn::Cluster* cluster, int table,
    const std::vector<std::pair<uint64_t, int64_t>>& expected) {
  for (const auto& [key, want] : expected) {
    ++report_.checks;
    const int node = cluster->PartitionOf(table, key);
    store::ClusterHashTable* ht = cluster->hash_table(node, table);
    const uint64_t entry_off = ht->FindEntry(key);
    if (entry_off == store::kInvalidOffset) {
      std::ostringstream msg;
      msg << "commit ledger: key " << key << " missing from node " << node
          << " after recovery";
      Violation(msg.str());
      continue;
    }
    int64_t got = 0;
    // drtm-lint: allow(TX03 post-run oracle scan of a quiesced store, no transactions are running)
    htm::StrongRead(&got, ht->ValuePtr(entry_off), sizeof(got));
    if (got != want) {
      std::ostringstream msg;
      msg << "commit ledger: key " << key << " on node " << node
          << " expected " << want << " got " << got
          << (got < want ? " (lost commit)" : " (duplicated commit)");
      Violation(msg.str());
    }
  }
}

void InvariantChecker::CheckLeaseSafety(uint64_t anomalies,
                                        uint64_t ro_commits) {
  ++report_.checks;
  if (anomalies != 0) {
    std::ostringstream msg;
    msg << "lease safety: " << anomalies << " of " << ro_commits
        << " read-only txns observed a fenced (half-applied) write";
    Violation(msg.str());
  }
}

void InvariantChecker::CheckCleanRecovery(
    txn::Cluster* cluster, const std::vector<std::pair<int, uint64_t>>& records,
    const std::vector<int>& still_dead) {
  ++report_.checks;
  for (const int node : still_dead) {
    std::ostringstream msg;
    msg << "clean recovery: node " << node << " still down after recovery";
    Violation(msg.str());
  }
  for (const auto& [table, key] : records) {
    const int node = cluster->PartitionOf(table, key);
    store::ClusterHashTable* ht = cluster->hash_table(node, table);
    const uint64_t entry_off = ht->FindEntry(key);
    if (entry_off == store::kInvalidOffset) {
      continue;  // absence is the ledger family's problem, not a lock leak
    }
    // drtm-lint: allow(TX03 post-run oracle scan of a quiesced store, no transactions are running)
    const uint64_t word = htm::StrongLoad(ht->StatePtr(entry_off));
    if (txn::IsWriteLocked(word)) {
      std::ostringstream msg;
      msg << "clean recovery: table " << table << " key " << key
          << " still write-locked by node "
          << static_cast<int>(txn::LockOwner(word))
          << " after recovery";
      Violation(msg.str());
    }
  }
}

}  // namespace chaos
}  // namespace drtm
