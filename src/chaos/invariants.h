// Invariant oracle for chaos runs (ISSUE 5 tentpole). After a run under
// fault injection — crashes, torn writes, dropped WQEs, clock skew — the
// checker validates the four correctness families the DrTM protocol
// promises to preserve:
//
//   1. Value conservation: transfers move money, they never mint or burn
//      it (SmallBank TotalMoney / the chaos transfer workload pair sums).
//   2. No lost or duplicated commits: a client-side commit-intent ledger
//      (updated only after Run() returned kCommitted) must match a
//      post-recovery scan of the store byte for byte.
//   3. Lease safety: no read-only transaction may observe a write it
//      should have been fenced from — an RO pair read that returns a
//      half-applied transfer is a protocol violation, not bad luck.
//   4. Clean recovery: once every crashed node is revived and recovered,
//      no record is left write-locked and no node is still marked dead.
//
// Violations are collected, not thrown, so one run reports everything it
// found; InvariantReport::ToString() is the artifact body a failing CI
// run uploads next to the fault schedule.
#ifndef SRC_CHAOS_INVARIANTS_H_
#define SRC_CHAOS_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace drtm {
namespace txn {
class Cluster;
}  // namespace txn

namespace chaos {

struct InvariantReport {
  int checks = 0;
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

class InvariantChecker {
 public:
  InvariantReport& report() { return report_; }
  const InvariantReport& report() const { return report_; }

  // Family 1: `actual` must equal `expected` exactly (quiescent sums).
  void CheckConservation(const std::string& what, int64_t expected,
                         int64_t actual);

  // Family 2: every (key -> expected int64 value) pair must match the
  // store after recovery. A mismatch means a commit was lost (store
  // behind the ledger) or duplicated/phantom (store ahead of it).
  void CheckCommitLedger(
      txn::Cluster* cluster, int table,
      const std::vector<std::pair<uint64_t, int64_t>>& expected);

  // Family 3: `anomalies` read-only transactions observed a fenced
  // write (e.g. a half-applied transfer). Any anomaly is a violation.
  void CheckLeaseSafety(uint64_t anomalies, uint64_t ro_commits);

  // Family 4: after full recovery no listed (table, key) record may be
  // write-locked and `still_dead` must be empty.
  void CheckCleanRecovery(
      txn::Cluster* cluster,
      const std::vector<std::pair<int, uint64_t>>& records,
      const std::vector<int>& still_dead);

 private:
  void Violation(std::string message);

  InvariantReport report_;
};

}  // namespace chaos
}  // namespace drtm

#endif  // SRC_CHAOS_INVARIANTS_H_
