// Reusable thread barrier for benchmark warmup/measure phases.
#ifndef SRC_COMMON_BARRIER_H_
#define SRC_COMMON_BARRIER_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace drtm {

class Barrier {
 public:
  explicit Barrier(size_t parties) : parties_(parties), waiting_(0) {}

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    const size_t generation = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != generation; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t parties_;
  size_t waiting_;
  size_t generation_ = 0;
};

}  // namespace drtm

#endif  // SRC_COMMON_BARRIER_H_
