// Cache-line geometry shared by the HTM emulator and the stores.
#ifndef SRC_COMMON_CACHELINE_H_
#define SRC_COMMON_CACHELINE_H_

#include <cstddef>
#include <cstdint>

namespace drtm {

inline constexpr size_t kCacheLineSize = 64;
inline constexpr size_t kCacheLineShift = 6;

// Rounds an address down to its cache line.
inline uintptr_t CacheLineOf(const void* addr) {
  return reinterpret_cast<uintptr_t>(addr) >> kCacheLineShift;
}

// Number of cache lines an [addr, addr+len) range touches.
inline size_t CacheLineSpan(const void* addr, size_t len) {
  if (len == 0) {
    return 0;
  }
  const uintptr_t first = reinterpret_cast<uintptr_t>(addr) >> kCacheLineShift;
  const uintptr_t last =
      (reinterpret_cast<uintptr_t>(addr) + len - 1) >> kCacheLineShift;
  return static_cast<size_t>(last - first + 1);
}

}  // namespace drtm

#endif  // SRC_COMMON_CACHELINE_H_
