#include "src/common/clock.h"

#include <chrono>

namespace drtm {

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SpinFor(uint64_t nanos) {
  if (nanos == 0) {
    return;
  }
  const uint64_t deadline = MonotonicNanos() + nanos;
  while (MonotonicNanos() < deadline) {
    // Busy wait: the latency model represents NIC/DMA time during which
    // the issuing core is blocked on a verbs completion.
  }
}

}  // namespace drtm
