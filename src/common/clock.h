// Monotonic wall-clock helpers used by the lease machinery and the
// latency model. All durations in this codebase are nanoseconds or
// microseconds as named.
#ifndef SRC_COMMON_CLOCK_H_
#define SRC_COMMON_CLOCK_H_

#include <cstdint>

namespace drtm {

// Nanoseconds from a process-local monotonic clock.
uint64_t MonotonicNanos();

// Microseconds from the same clock.
inline uint64_t MonotonicMicros() { return MonotonicNanos() / 1000; }

// Spins (without yielding the core to the OS scheduler where possible)
// for the requested number of nanoseconds. Used by the RDMA latency
// model. A zero argument returns immediately.
void SpinFor(uint64_t nanos);

}  // namespace drtm

#endif  // SRC_COMMON_CLOCK_H_
