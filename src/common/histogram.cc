#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace drtm {

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

int Histogram::BucketFor(uint64_t value) {
  if (value < 8) {
    return static_cast<int>(value);
  }
  const int log2 = 63 - std::countl_zero(value);
  const int sub = static_cast<int>((value >> (log2 - 3)) & 0x7);
  const int bucket = log2 * 8 + sub;
  return std::min(bucket, kBuckets - 1);
}

uint64_t Histogram::BucketLow(int bucket) {
  if (bucket < 8) {
    return static_cast<uint64_t>(bucket);
  }
  const int log2 = bucket / 8;
  const int sub = bucket % 8;
  return (uint64_t{1} << log2) | (static_cast<uint64_t>(sub) << (log2 - 3));
}

void Histogram::Record(uint64_t value) {
  buckets_[static_cast<size_t>(BucketFor(value))]++;
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  max_ = std::max(max_, value);
  ++count_;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<size_t>(i)] += other.buckets_[static_cast<size_t>(i)];
  }
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) {
      min_ = other.min_;
    }
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Subtract(const Histogram& earlier) {
  for (int i = 0; i < kBuckets; ++i) {
    const uint64_t prior = earlier.buckets_[static_cast<size_t>(i)];
    auto& bucket = buckets_[static_cast<size_t>(i)];
    bucket -= std::min(bucket, prior);
  }
  count_ -= std::min(count_, earlier.count_);
  sum_ -= std::min(sum_, earlier.sum_);
  if (count_ == 0) {
    min_ = 0;
    max_ = 0;
  }
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const uint64_t in_bucket = buckets_[static_cast<size_t>(i)];
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(seen + in_bucket) >= target) {
      return BucketLow(i);
    }
    seen += in_bucket;
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f p50=%llu p90=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(Percentile(50)),
                static_cast<unsigned long long>(Percentile(90)),
                static_cast<unsigned long long>(Percentile(99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace drtm
