// Latency histogram with logarithmic buckets, cheap enough to update on
// every transaction. Percentile queries interpolate within a bucket.
#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

namespace drtm {

class Histogram {
 public:
  static constexpr int kBuckets = 64 * 8;  // 8 sub-buckets per power of two

  Histogram() { Reset(); }

  void Reset();
  void Record(uint64_t value);
  void Merge(const Histogram& other);

  // Bucket-wise subtraction of an earlier cumulative snapshot of the same
  // histogram, for delta-window reporting. min/max keep this histogram's
  // values (window extrema are not recoverable from two snapshots).
  void Subtract(const Histogram& earlier);

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  // p in [0, 100].
  uint64_t Percentile(double p) const;

  // "p50=... p90=... p99=..." convenience string (values in the unit the
  // caller recorded).
  std::string Summary() const;

 private:
  static int BucketFor(uint64_t value);
  static uint64_t BucketLow(int bucket);

  std::array<uint64_t, kBuckets> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

}  // namespace drtm

#endif  // SRC_COMMON_HISTOGRAM_H_
