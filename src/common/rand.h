// Fast per-thread PRNG (xoshiro256**). Deterministic given a seed, which
// tests rely on.
#ifndef SRC_COMMON_RAND_H_
#define SRC_COMMON_RAND_H_

#include <cstdint>

namespace drtm {

class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the four lanes.
    uint64_t x = seed;
    for (auto& lane : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      lane = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be nonzero.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextRange(uint64_t lo, uint64_t hi) {
    return lo + NextBounded(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // True with the given probability in [0, 1].
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace drtm

#endif  // SRC_COMMON_RAND_H_
