// Tiny test-and-test-and-set spinlock for short critical sections
// (message rings, NIC atomics serialization).
#ifndef SRC_COMMON_SPIN_LATCH_H_
#define SRC_COMMON_SPIN_LATCH_H_

#include <atomic>

namespace drtm {

class SpinLatch {
 public:
  void Lock() {
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      while (locked_.load(std::memory_order_relaxed)) {
      }
    }
  }

  bool TryLock() { return !locked_.exchange(true, std::memory_order_acquire); }

  void Unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

class SpinLatchGuard {
 public:
  explicit SpinLatchGuard(SpinLatch& latch) : latch_(latch) { latch_.Lock(); }
  ~SpinLatchGuard() { latch_.Unlock(); }

  SpinLatchGuard(const SpinLatchGuard&) = delete;
  SpinLatchGuard& operator=(const SpinLatchGuard&) = delete;

 private:
  SpinLatch& latch_;
};

}  // namespace drtm

#endif  // SRC_COMMON_SPIN_LATCH_H_
