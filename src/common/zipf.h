// Zipfian key generator as specified by YCSB (Gray et al.'s rejection-free
// method). Used by the KV benchmarks (theta = 0.99 in the paper).
#ifndef SRC_COMMON_ZIPF_H_
#define SRC_COMMON_ZIPF_H_

#include <cstdint>

#include "src/common/rand.h"

namespace drtm {

class ZipfGenerator {
 public:
  // Generates values in [0, n). theta in (0, 1); the paper uses 0.99.
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 1);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Xoshiro256 rng_;
};

}  // namespace drtm

#endif  // SRC_COMMON_ZIPF_H_
