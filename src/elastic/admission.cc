#include "src/elastic/admission.h"

#include <algorithm>

#include "src/common/clock.h"
#include "src/rdma/verbs_batch.h"
#include "src/stat/metrics.h"

namespace drtm {
namespace elastic {

AdmissionController::AdmissionController(txn::Cluster* cluster, int node,
                                         AdmissionConfig config)
    : cluster_(cluster),
      node_(node),
      config_(config),
      tokens_(config.burst),
      last_refill_us_(MonotonicMicros()) {
  stat::Registry& reg = stat::Registry::Global();
  admitted_counter_ = reg.CounterId("elastic.admission.admitted");
  shed_counter_ = reg.CounterId("elastic.admission.shed");
  tokens_gauge_ = reg.GaugeId("elastic.admission.tokens");
}

double AdmissionController::Overload() const {
  const double q =
      static_cast<double>(cluster_->ServerQueueDepth(node_)) /
      static_cast<double>(std::max<int64_t>(config_.knee_queue_depth, 1));
  const double s =
      static_cast<double>(
          std::max<int64_t>(rdma::SendQueue::OutstandingForTarget(node_), 0)) /
      static_cast<double>(std::max<int64_t>(config_.knee_outstanding, 1));
  return std::max(1.0, std::max(q, s) * config_.latency_bias);
}

bool AdmissionController::Admit() {
  stat::Registry& reg = stat::Registry::Global();
  SpinLatchGuard guard(latch_);
  const uint64_t now = MonotonicMicros();
  const double overload = Overload();
  last_overload_ = overload;
  if (now > last_refill_us_) {
    const double elapsed = static_cast<double>(now - last_refill_us_);
    tokens_ = std::min(config_.burst,
                       tokens_ + elapsed * config_.base_rate_per_us / overload);
    last_refill_us_ = now;
  }
  reg.GaugeSet(tokens_gauge_, static_cast<int64_t>(tokens_));
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    ++admitted_;
    reg.Add(admitted_counter_);
    return true;
  }
  ++shed_;
  reg.Add(shed_counter_);
  return false;
}

double AdmissionController::LastOverload() const {
  SpinLatchGuard guard(latch_);
  return last_overload_;
}

}  // namespace elastic
}  // namespace drtm
