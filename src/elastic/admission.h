// Per-node admission control: a token bucket whose refill rate is
// keyed off the two congestion signals the simulation exposes — the
// node's server-thread RPC backlog (Cluster::ServerQueueDepth) and the
// doorbell-batched SendQueue outstanding-window occupancy toward the
// node (rdma::SendQueue::OutstandingForTarget). Past a knee the refill
// rate falls proportionally to the overload, so new transactions are
// shed at the door instead of queueing into the latency cliff.
//
// The latency_bias knob trades tail latency against shed rate: > 1
// treats a given backlog as proportionally more overloaded (sheds
// earlier, keeps p99 flat), < 1 rides closer to the knee.
//
// Exported: counters elastic.admission.admitted / elastic.admission.shed
// and gauge elastic.admission.tokens (the post-refill level observed by
// the most recent Admit()).
#ifndef SRC_ELASTIC_ADMISSION_H_
#define SRC_ELASTIC_ADMISSION_H_

#include <atomic>
#include <cstdint>

#include "src/common/spin_latch.h"
#include "src/txn/cluster.h"

namespace drtm {
namespace elastic {

struct AdmissionConfig {
  // Refill rate when unloaded, tokens per microsecond. One token admits
  // one transaction, so this is also the unloaded admit ceiling in
  // txns/us per node.
  double base_rate_per_us = 1.0;
  // Bucket capacity: the burst admitted from idle.
  double burst = 64.0;
  // Backlog knees: at a queue depth / outstanding window of exactly the
  // knee, the refill rate starts dropping (rate = base / overload).
  int64_t knee_queue_depth = 48;
  int64_t knee_outstanding = 64;
  // Latency-vs-shed knob (see file comment).
  double latency_bias = 1.0;
};

class AdmissionController {
 public:
  AdmissionController(txn::Cluster* cluster, int node, AdmissionConfig config);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Called at transaction entry. True: admitted (one token consumed).
  // False: shed at the door — the caller drops or redirects the request
  // without touching the txn layer. Thread-safe; callers on the same
  // node share the bucket.
  bool Admit();

  // The overload factor the last refill saw (>= 1.0 means at/past the
  // knee). Exposed for tests and the resharding bench's knee probe.
  double LastOverload() const;

  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }

 private:
  double Overload() const;

  txn::Cluster* cluster_;
  const int node_;
  const AdmissionConfig config_;

  mutable SpinLatch latch_;
  double tokens_;
  uint64_t last_refill_us_;
  double last_overload_ = 1.0;
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};

  uint32_t admitted_counter_;
  uint32_t shed_counter_;
  uint32_t tokens_gauge_;
};

}  // namespace elastic
}  // namespace drtm

#endif  // SRC_ELASTIC_ADMISSION_H_
