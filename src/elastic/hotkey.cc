#include "src/elastic/hotkey.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "src/stat/metrics.h"
#include "src/txn/lock_state.h"

namespace drtm {
namespace elastic {

HotKeyTracker::HotKeyTracker(size_t capacity, uint32_t sample_shift)
    : capacity_(capacity == 0 ? 1 : capacity),
      sample_mask_((uint64_t{1} << sample_shift) - 1) {}

void HotKeyTracker::RecordRead(int table, uint64_t key) {
  Record(reads_, table, key);
}

void HotKeyTracker::RecordWrite(int table, uint64_t key) {
  Record(writes_, table, key);
}

void HotKeyTracker::Record(Stream& stream, int table, uint64_t key) {
  if (sample_mask_ != 0 &&
      (stream.tick.fetch_add(1, std::memory_order_relaxed) & sample_mask_) !=
          0) {
    return;
  }
  SpinLatchGuard guard(stream.latch);
  const std::pair<int, uint64_t> id{table, key};
  auto it = stream.counts.find(id);
  if (it != stream.counts.end()) {
    ++it->second;
    return;
  }
  if (stream.counts.size() < capacity_) {
    stream.counts.emplace(id, 1);
    return;
  }
  // Space-saving eviction: the newcomer replaces the current minimum
  // and inherits its count + 1, an upper bound on its true frequency.
  auto min_it = stream.counts.begin();
  for (auto cur = stream.counts.begin(); cur != stream.counts.end(); ++cur) {
    if (cur->second < min_it->second) {
      min_it = cur;
    }
  }
  const uint64_t inherited = min_it->second + 1;
  stream.counts.erase(min_it);
  stream.counts.emplace(id, inherited);
}

std::vector<HotKeyTracker::HotKey> HotKeyTracker::Top(const Stream& stream,
                                                      size_t k) {
  std::vector<HotKey> out;
  {
    SpinLatchGuard guard(stream.latch);
    out.reserve(stream.counts.size());
    for (const auto& [id, count] : stream.counts) {
      out.push_back(HotKey{id.first, id.second, count});
    }
  }
  std::sort(out.begin(), out.end(), [](const HotKey& a, const HotKey& b) {
    return a.count != b.count ? a.count > b.count : a.key < b.key;
  });
  if (out.size() > k) {
    out.resize(k);
  }
  return out;
}

std::vector<HotKeyTracker::HotKey> HotKeyTracker::TopReads(size_t k) const {
  return Top(reads_, k);
}

std::vector<HotKeyTracker::HotKey> HotKeyTracker::TopWrites(size_t k) const {
  return Top(writes_, k);
}

std::vector<uint32_t> MigrationCandidateBuckets(const HotKeyTracker& tracker,
                                                const RoutingTable& routing,
                                                size_t max_buckets) {
  std::unordered_map<uint32_t, uint64_t> weight;
  for (const HotKeyTracker::HotKey& hot :
       tracker.TopWrites(~size_t{0} >> 1)) {
    weight[routing.BucketOf(hot.key)] += hot.count;
  }
  std::vector<std::pair<uint64_t, uint32_t>> ranked;
  ranked.reserve(weight.size());
  for (const auto& [bucket, w] : weight) {
    ranked.emplace_back(w, bucket);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a > b; });
  std::vector<uint32_t> out;
  for (const auto& [w, bucket] : ranked) {
    if (out.size() >= max_buckets) {
      break;
    }
    out.push_back(bucket);
  }
  return out;
}

ReadLeaseReplica::ReadLeaseReplica(txn::Cluster* cluster, int node)
    : cluster_(cluster), node_(node) {
  stat::Registry& reg = stat::Registry::Global();
  hit_counter_ = reg.CounterId("elastic.hotkey.replica_hit");
  miss_counter_ = reg.CounterId("elastic.hotkey.replica_miss");
  entries_gauge_ = reg.GaugeId("elastic.hotkey.replica_entries");
}

void ReadLeaseReplica::Publish(int table, uint64_t key, const void* value,
                               uint32_t len, uint64_t lease_end) {
  if (lease_end == 0) {
    return;
  }
  SpinLatchGuard guard(latch_);
  Entry& entry = entries_[{table, key}];
  entry.value.assign(static_cast<const uint8_t*>(value),
                     static_cast<const uint8_t*>(value) + len);
  entry.lease_end = lease_end;
  stat::Registry::Global().GaugeSet(entries_gauge_,
                                    static_cast<int64_t>(entries_.size()));
}

bool ReadLeaseReplica::TryServe(int table, uint64_t key, void* out,
                                uint32_t len) {
  stat::Registry& reg = stat::Registry::Global();
  const uint64_t now = cluster_->synctime().ReadStrong(node_);
  {
    SpinLatchGuard guard(latch_);
    auto it = entries_.find({table, key});
    if (it != entries_.end() &&
        txn::LeaseValid(it->second.lease_end, now,
                        cluster_->config().delta_us) &&
        it->second.value.size() >= len) {
      std::memcpy(out, it->second.value.data(), len);
      hits_.fetch_add(1, std::memory_order_relaxed);
      reg.Add(hit_counter_);
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  reg.Add(miss_counter_);
  return false;
}

void ReadLeaseReplica::Drop(int table, uint64_t key) {
  SpinLatchGuard guard(latch_);
  entries_.erase({table, key});
  stat::Registry::Global().GaugeSet(entries_gauge_,
                                    static_cast<int64_t>(entries_.size()));
}

}  // namespace elastic
}  // namespace drtm
