// Hot-key mitigation for the elastic tier.
//
// HotKeyTracker is a sampled space-saving (Metwally et al.) top-K
// sketch over the read and write streams: a bounded map of candidate
// keys where an arrival that misses a full map evicts the minimum
// count and inherits it (+1), so genuinely Zipf-hot keys float to the
// top with O(capacity) memory regardless of the keyspace. Reads and
// writes are tracked separately because they get different remedies:
//
//   * hot READ keys are served from a read-lease replica — the RO
//     protocol already pins a record immutable until lease_end, so any
//     node may answer from a local copy until then without violating
//     strict serializability (the same argument as lease sharing);
//   * hot WRITE keys cannot be replicated (writes must revoke the
//     lease), so their routing buckets are surfaced as migration
//     candidates for MigrationEngine to spread over nodes.
//
// ReadLeaseReplica is the per-node replica store: Publish() records a
// value together with the lease end observed by the RO transaction
// that read it, TryServe() answers from the copy only while
// LeaseValid(lease_end, now, DELTA) still holds against the node's
// synchronized clock — the exact validity test a remote reader would
// apply, so a served value can never outlive the writers' obligation
// to wait out the lease.
#ifndef SRC_ELASTIC_HOTKEY_H_
#define SRC_ELASTIC_HOTKEY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/common/spin_latch.h"
#include "src/elastic/routing.h"
#include "src/txn/cluster.h"

namespace drtm {
namespace elastic {

class HotKeyTracker {
 public:
  struct HotKey {
    int table = 0;
    uint64_t key = 0;
    uint64_t count = 0;
  };

  // capacity bounds each stream's candidate set; sample_shift samples
  // 1 in 2^shift arrivals (0 = every arrival) to keep the latch off
  // the hot path.
  explicit HotKeyTracker(size_t capacity = 64, uint32_t sample_shift = 0);

  HotKeyTracker(const HotKeyTracker&) = delete;
  HotKeyTracker& operator=(const HotKeyTracker&) = delete;

  void RecordRead(int table, uint64_t key);
  void RecordWrite(int table, uint64_t key);

  // Descending by count, at most k entries.
  std::vector<HotKey> TopReads(size_t k) const;
  std::vector<HotKey> TopWrites(size_t k) const;

 private:
  struct Stream {
    mutable SpinLatch latch;
    std::map<std::pair<int, uint64_t>, uint64_t> counts;
    std::atomic<uint64_t> tick{0};
  };

  void Record(Stream& stream, int table, uint64_t key);
  static std::vector<HotKey> Top(const Stream& stream, size_t k);

  const size_t capacity_;
  const uint64_t sample_mask_;
  Stream reads_;
  Stream writes_;
};

// Routing buckets holding the heaviest write traffic — the inputs a
// rebalancer would feed into MigrationPlan::buckets. Buckets are ranked
// by the summed counts of their tracked hot write keys.
std::vector<uint32_t> MigrationCandidateBuckets(const HotKeyTracker& tracker,
                                                const RoutingTable& routing,
                                                size_t max_buckets);

class ReadLeaseReplica {
 public:
  ReadLeaseReplica(txn::Cluster* cluster, int node);

  ReadLeaseReplica(const ReadLeaseReplica&) = delete;
  ReadLeaseReplica& operator=(const ReadLeaseReplica&) = delete;

  // Records a value read under a lease ending at lease_end (microseconds
  // of synchronized time, from ReadOnlyTransaction::LeaseEndOf). A
  // lease_end of 0 (no lease granted) is ignored.
  void Publish(int table, uint64_t key, const void* value, uint32_t len,
               uint64_t lease_end);

  // Serves from the replica iff the recorded lease is still valid under
  // the node's synchronized clock with the configured DELTA. Counts
  // elastic.hotkey.replica_hit / replica_miss.
  bool TryServe(int table, uint64_t key, void* out, uint32_t len);

  void Drop(int table, uint64_t key);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    std::vector<uint8_t> value;
    uint64_t lease_end = 0;
  };

  txn::Cluster* cluster_;
  const int node_;
  mutable SpinLatch latch_;
  std::map<std::pair<int, uint64_t>, Entry> entries_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  uint32_t hit_counter_;
  uint32_t miss_counter_;
  uint32_t entries_gauge_;
};

}  // namespace elastic
}  // namespace drtm

#endif  // SRC_ELASTIC_HOTKEY_H_
