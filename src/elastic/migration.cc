#include "src/elastic/migration.h"

#include <algorithm>
#include <cstring>

#include "src/common/clock.h"
#include "src/rdma/verbs_batch.h"
#include "src/stat/metrics.h"
#include "src/store/kv_layout.h"
#include "src/txn/lock_state.h"

namespace drtm {
namespace elastic {

namespace {
// A migration-side ship rides the chaos-injected RPC path, so transient
// drops are expected; the budget covers even aggressive drop rates.
constexpr int kShipAttempts = 256;
constexpr uint64_t kShipBackoffNs = 50'000;
// Lease-revocation polling granularity.
constexpr uint64_t kRevokePollNs = 100'000;
}  // namespace

MigrationEngine::MigrationEngine(txn::Cluster* cluster, RoutingTable* routing)
    : cluster_(cluster), routing_(routing) {
  stat::Registry& reg = stat::Registry::Global();
  ids_.copied = reg.CounterId("elastic.migration.copied");
  ids_.caught_up = reg.CounterId("elastic.migration.caught_up");
  ids_.dual_writes = reg.CounterId("elastic.migration.dual_writes");
  ids_.runs = reg.CounterId("elastic.migration.runs");
  ids_.inflight_bytes = reg.GaugeId("elastic.migration.inflight_bytes");
}

bool MigrationEngine::AllowAcquire(int table, uint64_t key) {
  // Only the plan's buckets ever carry the frozen bit, so the routing
  // word answers for membership too.
  return table != plan_.table || !routing_->Frozen(key);
}

void MigrationEngine::OnCommittedWrite(int node, int table, uint64_t key,
                                       uint32_t version, const void* value,
                                       uint32_t len) {
  (void)len;
  if (!dual_write_.load(std::memory_order_acquire)) {
    return;
  }
  if (node != plan_.source || !InPlan(table, key)) {
    return;
  }
  // Synchronous dual-ship from the committing thread. A chaos-dropped
  // ship is not retried here — the catch-up pass repairs it from the
  // source's version history.
  cluster_->ShipUpsert(plan_.source, plan_.dest, table, key, version, value);
  stat::Registry::Global().Add(ids_.dual_writes);
}

void MigrationEngine::OnStructuralOp(int node, int table, uint64_t key,
                                     bool inserted, const void* value,
                                     uint32_t len) {
  (void)len;
  if (!dual_write_.load(std::memory_order_acquire)) {
    return;
  }
  if (node != plan_.source || !InPlan(table, key)) {
    return;
  }
  // Source server thread shipping to the destination's server thread:
  // safe from deadlock because migration ships in one direction only.
  if (inserted) {
    cluster_->ShipUpsert(plan_.source, plan_.dest, table, key, /*version=*/1,
                         value);
  } else {
    cluster_->ShipErase(plan_.source, plan_.dest, table, key);
  }
  stat::Registry::Global().Add(ids_.dual_writes);
}

bool MigrationEngine::RetryShipUpsert(uint64_t key, uint32_t version,
                                      const void* value) {
  for (int i = 0; i < kShipAttempts; ++i) {
    if (cluster_->ShipUpsert(plan_.source, plan_.dest, plan_.table, key,
                             version, value)) {
      return true;
    }
    SpinFor(kShipBackoffNs);
  }
  return false;
}

bool MigrationEngine::RetryShipErase(int target_node, uint64_t key) {
  for (int i = 0; i < kShipAttempts; ++i) {
    if (cluster_->ShipErase(plan_.source, target_node, plan_.table, key)) {
      return true;
    }
    SpinFor(kShipBackoffNs);
  }
  return false;
}

bool MigrationEngine::CopyPass(bool catch_up, MigrationReport* report) {
  stat::Registry& reg = stat::Registry::Global();
  store::ClusterHashTable* src_table =
      cluster_->hash_table(plan_.source, plan_.table);
  const store::Geometry& geo = src_table->geometry();

  std::vector<std::pair<uint64_t, uint64_t>> targets;  // (key, entry_off)
  src_table->ForEachEntry([&](uint64_t key, uint64_t entry_off) {
    if (bucket_set_.count(routing_->BucketOf(key)) != 0) {
      targets.emplace_back(key, entry_off);
    }
    return true;
  });
  if (catch_up) {
    live_keys_.clear();
  }

  const size_t window = std::max<size_t>(cluster_->config().rdma_batch_window,
                                         size_t{1});
  std::vector<uint8_t> bufs(window * geo.entry_size);
  for (size_t base = 0; base < targets.size(); base += window) {
    const size_t n = std::min(window, targets.size() - base);
    std::vector<bool> read_ok(n, true);
    if (!catch_up) {
      // Copy pass under traffic: one doorbell batch of whole-entry READs
      // from the source, the same one-sided path a remote reader uses.
      rdma::SendQueue sq(cluster_->fabric(), plan_.source,
                         rdma::SendQueue::Config{window});
      std::vector<rdma::WrId> ids(n);
      for (size_t i = 0; i < n; ++i) {
        ids[i] = sq.PostRead(targets[base + i].second,
                             &bufs[i * geo.entry_size], geo.entry_size);
      }
      const std::vector<rdma::Completion> comps = sq.Flush();
      for (size_t i = 0; i < n; ++i) {
        bool ok = false;
        for (const rdma::Completion& comp : comps) {
          if (comp.wr_id == ids[i]) {
            ok = comp.status == rdma::OpStatus::kOk;
            break;
          }
        }
        read_ok[i] = ok;  // a lost READ is repaired by catch-up
      }
    } else {
      // Catch-up runs frozen and drained; the host-side pointers are the
      // simulation's stand-in for reads that can no longer race writers.
      for (size_t i = 0; i < n; ++i) {
        std::memcpy(&bufs[i * geo.entry_size],
                    src_table->EntryPtr(targets[base + i].second),
                    geo.entry_size);
      }
    }

    for (size_t i = 0; i < n; ++i) {
      if (!read_ok[i]) {
        continue;
      }
      const uint64_t key = targets[base + i].first;
      const uint8_t* buf = &bufs[i * geo.entry_size];
      store::EntryHeader header;
      std::memcpy(&header, buf, sizeof(header));
      if (header.key != key) {
        continue;  // entry recycled under the enumeration
      }
      if (txn::IsWriteLocked(header.state)) {
        continue;  // mid-commit; the catch-up pass ships the final value
      }
      if (catch_up) {
        live_keys_.insert(key);
        auto it = copied_versions_.find(key);
        if (it != copied_versions_.end()) {
          if (it->second == header.version) {
            continue;  // already at the shipped version
          }
          if (it->second > header.version) {
            // Version regressed: the key was deleted and re-inserted on
            // the source. Clear the destination copy so max-version-wins
            // does not reject the younger lineage.
            if (!RetryShipErase(plan_.dest, key)) {
              return false;
            }
          }
        }
      }
      if (!RetryShipUpsert(key, header.version, buf + store::kEntryValueOffset)) {
        return false;
      }
      copied_versions_[key] = header.version;
      report->shipped_bytes += geo.value_size;
      reg.GaugeAdd(ids_.inflight_bytes, geo.value_size);
      if (catch_up) {
        ++report->caught_up;
        reg.Add(ids_.caught_up);
      } else {
        ++report->copied;
        reg.Add(ids_.copied);
      }
    }
  }

  if (catch_up) {
    // Reconcile the destination against the source live set: a stray can
    // only be a copy whose source key has since been deleted (the erase
    // dual-ship may have been chaos-dropped).
    store::ClusterHashTable* dst_table =
        cluster_->hash_table(plan_.dest, plan_.table);
    std::vector<uint64_t> strays;
    dst_table->ForEachEntry([&](uint64_t key, uint64_t entry_off) {
      (void)entry_off;
      if (bucket_set_.count(routing_->BucketOf(key)) != 0 &&
          live_keys_.count(key) == 0) {
        strays.push_back(key);
      }
      return true;
    });
    for (uint64_t key : strays) {
      if (!RetryShipErase(plan_.dest, key)) {
        return false;
      }
      ++report->reconciled;
    }
  }
  return true;
}

MigrationReport MigrationEngine::Migrate(
    const MigrationPlan& plan, const std::function<void()>& mid_oracle) {
  stat::Registry& reg = stat::Registry::Global();
  MigrationReport report;
  const uint64_t t0 = MonotonicMicros();
  if (plan.source == plan.dest || plan.buckets.empty() ||
      cluster_->table(plan.table).ordered) {
    return report;
  }
  plan_ = plan;
  bucket_set_.clear();
  bucket_set_.insert(plan.buckets.begin(), plan.buckets.end());
  copied_versions_.clear();
  live_keys_.clear();
  reg.Add(ids_.runs);

  // 1. Install: dual-write on, then drain so every in-flight attempt
  //    that sampled a null hook pointer has finished.
  dual_write_.store(true, std::memory_order_release);
  cluster_->SetElasticHooks(this);
  cluster_->DrainTxnWindows();

  // 2. Copy pass under traffic.
  bool ok = CopyPass(/*catch_up=*/false, &report);

  // 3. Freeze the plan buckets and drain: after this no writer holds or
  //    can take a lock/lease on a plan key.
  for (uint32_t b : plan.buckets) {
    routing_->Freeze(b);
  }
  cluster_->DrainTxnWindows();
  const uint64_t freeze_time = cluster_->synctime().ReadStrong(plan.source);

  // 4. Lease revocation: wait out every lease granted before the freeze,
  //    as judged by every machine's clock (hence the 2 DELTA slack).
  const txn::ClusterConfig& cfg = cluster_->config();
  const uint64_t revoked_at =
      freeze_time + std::max(cfg.lease_rw_us, cfg.lease_ro_us) +
      2 * cfg.delta_us;
  while (cluster_->synctime().ReadStrong(plan.source) <= revoked_at) {
    SpinFor(kRevokePollNs);
  }

  // 5. Catch-up on the now-quiescent source; reconcile the destination.
  ok = ok && CopyPass(/*catch_up=*/true, &report);

  // 6. Mid-migration oracle: both copies reconciled, nothing in flight.
  if (ok && mid_oracle) {
    mid_oracle();
  }

  // 7. Switch: flip ownership, stamp the epoch.
  if (ok) {
    for (uint32_t b : plan.buckets) {
      routing_->SetOwner(b, plan.dest);
    }
    routing_->BumpEpoch();

    // 8. Drop stale location-cache hints for the moved keys' source-side
    //    header buckets on every other node.
    std::unordered_set<uint64_t> offs;
    const store::Geometry& geo =
        cluster_->hash_table(plan.source, plan.table)->geometry();
    for (const auto& [key, version] : copied_versions_) {
      (void)version;
      offs.insert(geo.MainBucketOffset(key));
    }
    for (uint64_t key : live_keys_) {
      offs.insert(geo.MainBucketOffset(key));
    }
    report.cache_inval_acks = cluster_->BroadcastCacheInvalidate(
        plan.dest, plan.source,
        std::vector<uint64_t>(offs.begin(), offs.end()));

    // 9. Erase the source copies while still frozen (gate-free RPC); a
    //    reader routed by a stale hint now misses and refetches.
    for (uint64_t key : live_keys_) {
      if (!RetryShipErase(plan.source, key)) {
        ok = false;
        break;
      }
      ++report.erased;
    }
  }

  // 10. Unfreeze, uninstall, drain the stragglers.
  for (uint32_t b : plan.buckets) {
    routing_->Unfreeze(b);
  }
  dual_write_.store(false, std::memory_order_release);
  cluster_->SetElasticHooks(nullptr);
  cluster_->DrainTxnWindows();

  reg.GaugeSet(ids_.inflight_bytes, 0);
  report.moved_keys = live_keys_.size();
  report.duration_us = MonotonicMicros() - t0;
  report.ok = ok;
  return report;
}

}  // namespace elastic
}  // namespace drtm
