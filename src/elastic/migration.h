// Live shard migration: moves a set of routing buckets between nodes
// while transactions keep running, via copy / catch-up / switch:
//
//   install    SetElasticHooks(this), dual-write on, DrainTxnWindows —
//              every commit that lands in a plan bucket on the source
//              is now also shipped to the destination.
//   copy       enumerate the source table (ForEachEntryInBucketRange),
//              read each plan-bucket entry over doorbell-batched RDMA
//              READs, install on the destination via gate-free
//              versioned upserts (kRpcKvUpsert). Max-version-wins makes
//              copy/dual-write interleavings converge; write-locked
//              entries are skipped (catch-up gets them).
//   freeze     set the routing frozen bit on the plan buckets and drain:
//              AllowAcquire now bounces every writer off those buckets,
//              so they retry until the flip re-routes them.
//   revoke     wait out synchronized time past
//              freeze + max(lease_rw, lease_ro) + 2 DELTA: every read
//              lease granted before the freeze has expired at every
//              machine, so no reader can still be serving old-owner
//              data after the switch.
//   catch-up   re-enumerate (now quiescent) and ship entries whose
//              version moved past the copied one, then reconcile the
//              destination against the source live set (erasing strays
//              left by dropped dual-write erases under chaos).
//   oracle     run the caller's mid-migration invariant callback while
//              both sides are frozen and reconciled.
//   switch     flip bucket ownership, bump the routing epoch, broadcast
//              location-cache invalidations for the moved keys'
//              source-side header buckets, erase the source copies
//              (gate-free kRpcKvErase), unfreeze, uninstall hooks.
//
// Known benign race (documented in README): a shipped structural INSERT
// is never frozen (gating it could deadlock the drain against a worker
// spinning inside its txn window), so one landing on the source after
// the final catch-up enumeration leaves an unreachable source copy —
// routing already points at the destination and conservation counts
// through PartitionOf, so the stray is garbage, not an anomaly; the
// dual-write hook still forwards it to the destination.
#ifndef SRC_ELASTIC_MIGRATION_H_
#define SRC_ELASTIC_MIGRATION_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/elastic/routing.h"
#include "src/txn/cluster.h"

namespace drtm {
namespace elastic {

struct MigrationPlan {
  int table = 0;
  int source = 0;
  int dest = 0;
  std::vector<uint32_t> buckets;  // routing buckets to move
};

struct MigrationReport {
  bool ok = false;
  uint64_t copied = 0;     // entries shipped by the copy pass
  uint64_t caught_up = 0;  // entries (re-)shipped by catch-up
  uint64_t reconciled = 0;  // destination strays erased by catch-up
  uint64_t erased = 0;     // source copies erased after the flip
  uint64_t shipped_bytes = 0;
  uint64_t moved_keys = 0;  // live keys owned by dest after the switch
  int cache_inval_acks = 0;
  uint64_t duration_us = 0;
};

class MigrationEngine : public txn::Cluster::ElasticHooks {
 public:
  MigrationEngine(txn::Cluster* cluster, RoutingTable* routing);

  // Runs one migration start to finish on the calling thread. The
  // optional mid_oracle runs at the quiescent point (buckets frozen,
  // leases revoked, catch-up done, ownership not yet flipped) — the
  // chaos invariant checkers hook in here. One migration at a time.
  MigrationReport Migrate(const MigrationPlan& plan,
                          const std::function<void()>& mid_oracle = nullptr);

  // --- ElasticHooks (called by the txn layer while installed) --------------
  bool AllowAcquire(int table, uint64_t key) override;
  void OnCommittedWrite(int node, int table, uint64_t key, uint32_t version,
                        const void* value, uint32_t len) override;
  void OnStructuralOp(int node, int table, uint64_t key, bool inserted,
                      const void* value, uint32_t len) override;

 private:
  bool InPlan(int table, uint64_t key) const {
    return table == plan_.table &&
           bucket_set_.count(routing_->BucketOf(key)) != 0;
  }

  // One enumerate-read-ship sweep over the source's plan-bucket entries.
  // catch_up additionally reconciles the destination against the live
  // set. Returns false if a ship failed permanently.
  bool CopyPass(bool catch_up, MigrationReport* report);

  bool RetryShipUpsert(uint64_t key, uint32_t version, const void* value);
  bool RetryShipErase(int target_node, uint64_t key);

  txn::Cluster* cluster_;
  RoutingTable* routing_;

  MigrationPlan plan_;
  std::unordered_set<uint32_t> bucket_set_;
  std::atomic<bool> dual_write_{false};

  // Engine-thread only (hooks never touch these).
  std::unordered_map<uint64_t, uint32_t> copied_versions_;
  std::unordered_set<uint64_t> live_keys_;

  struct MetricIds {
    uint32_t copied;
    uint32_t caught_up;
    uint32_t dual_writes;
    uint32_t runs;
    uint32_t inflight_bytes;  // gauge
  };
  MetricIds ids_;
};

}  // namespace elastic
}  // namespace drtm

#endif  // SRC_ELASTIC_MIGRATION_H_
