#include "src/elastic/routing.h"

#include <cassert>

#include "src/stat/metrics.h"

namespace drtm {
namespace elastic {

RoutingTable::RoutingTable(uint32_t num_buckets, int num_nodes)
    : num_buckets_(num_buckets),
      mask_(num_buckets - 1),
      words_(new std::atomic<uint64_t>[num_buckets]) {
  assert(num_buckets > 0 && (num_buckets & (num_buckets - 1)) == 0 &&
         "routing bucket count must be a power of two");
  assert(num_nodes > 0);
  for (uint32_t b = 0; b < num_buckets; ++b) {
    words_[b].store(static_cast<uint64_t>(b % num_nodes),
                    std::memory_order_relaxed);
  }
  epoch_gauge_ = stat::Registry::Global().GaugeId("elastic.routing.epoch");
  stat::Registry::Global().GaugeSet(epoch_gauge_, 0);
}

void RoutingTable::SetOwner(uint32_t bucket, int node) {
  while (true) {
    uint64_t word = words_[bucket].load(std::memory_order_acquire);
    const uint64_t next =
        (word & kFrozenBit) | (static_cast<uint64_t>(node) & kOwnerMask);
    if (words_[bucket].compare_exchange_weak(word, next,
                                             std::memory_order_acq_rel)) {
      return;
    }
  }
}

void RoutingTable::Freeze(uint32_t bucket) {
  words_[bucket].fetch_or(kFrozenBit, std::memory_order_acq_rel);
}

void RoutingTable::Unfreeze(uint32_t bucket) {
  words_[bucket].fetch_and(~kFrozenBit, std::memory_order_acq_rel);
}

void RoutingTable::BumpEpoch() {
  const uint64_t next = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  stat::Registry::Global().GaugeSet(epoch_gauge_,
                                    static_cast<int64_t>(next));
}

std::vector<uint32_t> RoutingTable::BucketsOwnedBy(int node) const {
  std::vector<uint32_t> out;
  for (uint32_t b = 0; b < num_buckets_; ++b) {
    if (OwnerOfBucket(b) == node) {
      out.push_back(b);
    }
  }
  return out;
}

}  // namespace elastic
}  // namespace drtm
