// Bucket-granular routing table for the elastic serving tier.
//
// Keys hash into a fixed power-of-two set of routing buckets (coarser
// than, and deliberately decorrelated from, the KV store's own hash
// buckets); each routing bucket maps to an owning node through one
// atomic word that also carries a "frozen" bit. A live migration flips
// ownership bucket-by-bucket: the frozen bit is what the elastic gate
// (Cluster::ElasticHooks::AllowAcquire) consults to bounce writers off
// a bucket mid-switch, and the epoch counter — exported as the
// elastic.routing.epoch gauge — stamps every completed flip so clients
// and tests can observe configuration changes.
//
// The table is installed as a TableSpec::partition function, so the txn
// layer re-resolves ownership through it on every attempt; it must
// outlive the Cluster it routes for.
#ifndef SRC_ELASTIC_ROUTING_H_
#define SRC_ELASTIC_ROUTING_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/store/kv_layout.h"

namespace drtm {
namespace elastic {

class RoutingTable {
 public:
  // num_buckets must be a power of two. Buckets start round-robin
  // striped over [0, num_nodes).
  RoutingTable(uint32_t num_buckets, int num_nodes);

  RoutingTable(const RoutingTable&) = delete;
  RoutingTable& operator=(const RoutingTable&) = delete;

  uint32_t num_buckets() const { return num_buckets_; }

  // Salted so a routing bucket does not alias the KV table's own bucket
  // mapping (both are MixHash-based); a migration then moves keys that
  // are spread across the store, not one contiguous hash range.
  uint32_t BucketOf(uint64_t key) const {
    return static_cast<uint32_t>(store::MixHash(key ^ kRoutingSalt)) & mask_;
  }

  int OwnerOfBucket(uint32_t bucket) const {
    return static_cast<int>(Word(bucket) & kOwnerMask);
  }
  int OwnerOf(uint64_t key) const { return OwnerOfBucket(BucketOf(key)); }

  bool FrozenBucket(uint32_t bucket) const {
    return (Word(bucket) & kFrozenBit) != 0;
  }
  bool Frozen(uint64_t key) const { return FrozenBucket(BucketOf(key)); }

  // Ownership flip keeps the frozen bit as-is (the migration unfreezes
  // separately, after the source copies are erased).
  void SetOwner(uint32_t bucket, int node);
  void Freeze(uint32_t bucket);
  void Unfreeze(uint32_t bucket);

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  // Stamps a completed configuration change (gauge elastic.routing.epoch).
  void BumpEpoch();

  // Adapter for TableSpec::partition. The RoutingTable must outlive the
  // Cluster the function is registered with.
  std::function<int(uint64_t)> PartitionFn() {
    return [this](uint64_t key) { return OwnerOf(key); };
  }

  std::vector<uint32_t> BucketsOwnedBy(int node) const;

 private:
  static constexpr uint64_t kRoutingSalt = 0xc28459a7d6f3b1e5ULL;
  static constexpr uint64_t kOwnerMask = (uint64_t{1} << 32) - 1;
  static constexpr uint64_t kFrozenBit = uint64_t{1} << 32;

  uint64_t Word(uint32_t bucket) const {
    return words_[bucket].load(std::memory_order_acquire);
  }

  uint32_t num_buckets_;
  uint32_t mask_;
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
  std::atomic<uint64_t> epoch_{0};
  uint32_t epoch_gauge_;
};

}  // namespace elastic
}  // namespace drtm

#endif  // SRC_ELASTIC_ROUTING_H_
