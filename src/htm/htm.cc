#include "src/htm/htm.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "src/common/cacheline.h"
#include "src/stat/abort_taxonomy.h"

namespace drtm {
namespace htm {

// The taxonomy mirrors the RTM status layout instead of including this
// header; keep the two definitions in lockstep.
static_assert(kAbortExplicit == stat::kRtmExplicitBit);
static_assert(kAbortRetry == stat::kRtmRetryBit);
static_assert(kAbortConflict == stat::kRtmConflictBit);
static_assert(kAbortCapacity == stat::kRtmCapacityBit);

namespace {

thread_local HtmThread* g_current_tx = nullptr;

// Replay seam (SetReplayHooks). The armed flag is the only thing commits
// load on the fast path; the pointers themselves are written only while
// workloads are quiesced.
std::atomic<bool> g_replay_armed{false};
ReplayHooks g_replay_hooks;

// Enumerates the version-table slot of every cache line in [addr, addr+len).
template <typename Fn>
void ForEachLineSlot(VersionTable* table, const void* addr, size_t len,
                     Fn&& fn) {
  const uintptr_t first = reinterpret_cast<uintptr_t>(addr) >> kCacheLineShift;
  const uintptr_t last =
      (reinterpret_cast<uintptr_t>(addr) + len - 1) >> kCacheLineShift;
  for (uintptr_t line = first; line <= last; ++line) {
    fn(table->SlotFor(reinterpret_cast<const void*>(line << kCacheLineShift)));
  }
}

// Locks a slot's seqlock (even -> odd). Returns the pre-lock (even) base
// version. Spins without bound: strong-access critical sections are a few
// instructions long.
uint64_t LockSlot(std::atomic<uint64_t>* slot) {
  while (true) {
    uint64_t v = slot->load(std::memory_order_acquire);
    if (!VersionTable::IsLocked(v) &&
        slot->compare_exchange_weak(v, v + 1, std::memory_order_acq_rel)) {
      return v;
    }
  }
}

}  // namespace

HtmThread::HtmThread(Config config, VersionTable* table)
    : config_(config), table_(table) {
  read_set_.reserve(256);
  write_set_.reserve(64);
  redo_log_.reserve(64);
  redo_data_.reserve(4096);
  size_t lines = std::min(config_.probe_batch_lines, kMaxProbeCache);
  while (lines & (lines - 1)) {
    lines &= lines - 1;  // round down to a power of two
  }
  probe_mask_ = lines >= 2 ? lines - 1 : 0;
  if (config_.commit_write_combining) {
    wc_slots_.reserve(64);
  }
}

HtmThread::~HtmThread() {
  assert(depth_ == 0 && "HtmThread destroyed inside a transaction");
}

HtmThread* HtmThread::Current() {
  return (g_current_tx != nullptr && g_current_tx->depth_ > 0) ? g_current_tx
                                                               : nullptr;
}

void HtmThread::Begin() {
  assert(depth_ == 0);
  assert(g_current_tx == nullptr && "another HtmThread active on this thread");
  depth_ = 1;
  g_current_tx = this;
  ++epoch_;  // invalidates both probe caches without touching them
  read_set_.clear();
  write_set_.clear();
  redo_log_.clear();
  redo_data_.clear();
  wc_slots_.clear();
}

void HtmThread::AbortWith(unsigned status) { throw AbortException{status}; }

void HtmThread::Abort(uint8_t user_code) {
  assert(depth_ > 0);
  AbortWith(kAbortExplicit | (static_cast<unsigned>(user_code) << 24));
}

void HtmThread::Rollback(unsigned status) {
  depth_ = 0;
  g_current_tx = nullptr;
  if (g_replay_armed.load(std::memory_order_relaxed) &&
      g_replay_hooks.on_abort != nullptr) {
    g_replay_hooks.on_abort(status);
  }
  if (status & kAbortCapacity) {
    ++stats_.aborts_capacity;
  } else if (status & kAbortExplicit) {
    ++stats_.aborts_explicit;
  } else {
    ++stats_.aborts_conflict;
  }
  stat::RecordHtmOutcome(status);
  read_set_.clear();
  write_set_.clear();
  redo_log_.clear();
  redo_data_.clear();
  wc_slots_.clear();
}

void HtmThread::TrackRead(const void* addr, size_t len) {
  ForEachLineSlot(table_, addr, len, [&](std::atomic<uint64_t>* slot) {
    ReadProbe* probe = nullptr;
    if (probe_mask_ != 0) {
      probe = &read_probe_[ProbeIndex(slot)];
      if (probe->slot == slot && probe->epoch == epoch_) {
        // Region-batched hit: this line was probed moments ago; skip the
        // read-set map entirely. Freshness is still verified by the
        // post-copy check in Read() and by commit validation.
        return;
      }
    }
    auto it = read_set_.find(slot);
    if (it != read_set_.end()) {
      // Already tracked; freshness is verified by the post-copy check in
      // Read() and by commit validation.
      if (probe != nullptr) {
        *probe = ReadProbe{slot, it->second, epoch_};
      }
      return;
    }
    uint64_t v = slot->load(std::memory_order_acquire);
    int spins = 0;
    while (VersionTable::IsLocked(v)) {
      if (++spins > config_.lock_spin_limit) {
        AbortWith(kAbortConflict | kAbortRetry);
      }
      v = slot->load(std::memory_order_acquire);
    }
    if (read_set_.size() >= config_.max_read_lines) {
      AbortWith(kAbortCapacity);
    }
    read_set_.emplace(slot, v);
    if (probe != nullptr) {
      *probe = ReadProbe{slot, v, epoch_};
    }
  });
}

void HtmThread::Read(void* dst, const void* src, size_t len) {
  assert(depth_ > 0);
  if (len == 0) {
    return;
  }
  TrackRead(src, len);
  std::atomic_thread_fence(std::memory_order_acquire);
  std::memcpy(dst, src, len);
  std::atomic_thread_fence(std::memory_order_acquire);
  // Seqlock re-check: every line must still carry the version this
  // transaction first observed, otherwise a concurrent commit or strong
  // write raced with the copy.
  ForEachLineSlot(table_, src, len, [&](std::atomic<uint64_t>* slot) {
    uint64_t recorded;
    if (probe_mask_ != 0) {
      const ReadProbe& probe = read_probe_[ProbeIndex(slot)];
      recorded = (probe.slot == slot && probe.epoch == epoch_)
                     ? probe.version
                     : read_set_.find(slot)->second;
    } else {
      recorded = read_set_.find(slot)->second;
    }
    if (slot->load(std::memory_order_acquire) != recorded) {
      AbortWith(kAbortConflict | kAbortRetry);
    }
  });
  // Read-your-writes: overlay buffered writes, in program order.
  const uintptr_t lo = reinterpret_cast<uintptr_t>(src);
  const uintptr_t hi = lo + len;
  for (const RedoEntry& e : redo_log_) {
    const uintptr_t elo = e.dst;
    const uintptr_t ehi = e.dst + e.len;
    if (ehi <= lo || elo >= hi) {
      continue;
    }
    const uintptr_t olo = std::max(lo, elo);
    const uintptr_t ohi = std::min(hi, ehi);
    std::memcpy(static_cast<uint8_t*>(dst) + (olo - lo),
                redo_data_.data() + e.offset + (olo - elo), ohi - olo);
  }
}

void HtmThread::Write(void* dst, const void* src, size_t len) {
  assert(depth_ > 0);
  if (len == 0) {
    return;
  }
  ForEachLineSlot(table_, dst, len, [&](std::atomic<uint64_t>* slot) {
    WriteProbe* probe = nullptr;
    if (probe_mask_ != 0) {
      probe = &write_probe_[ProbeIndex(slot)];
      if (probe->slot == slot && probe->epoch == epoch_) {
        return;  // region-batched hit: line already in the write set
      }
    }
    if (write_set_.find(slot) != write_set_.end()) {
      if (probe != nullptr) {
        *probe = WriteProbe{slot, epoch_};
      }
      return;
    }
    if (write_set_.size() >= config_.max_write_lines) {
      AbortWith(kAbortCapacity);
    }
    write_set_.emplace(slot, 0);
    if (config_.commit_write_combining) {
      wc_slots_.push_back(slot);
    }
    if (probe != nullptr) {
      *probe = WriteProbe{slot, epoch_};
    }
  });
  if (config_.commit_write_combining && !redo_log_.empty()) {
    // Write-combining: a byte-adjacent append (the common pattern when a
    // large value is written as consecutive slices) extends the previous
    // redo entry instead of growing the log. Program order is preserved —
    // only the latest entry ever extends.
    RedoEntry& last = redo_log_.back();
    if (last.dst + last.len == reinterpret_cast<uintptr_t>(dst) &&
        last.offset + last.len == redo_data_.size()) {
      redo_data_.insert(redo_data_.end(), static_cast<const uint8_t*>(src),
                        static_cast<const uint8_t*>(src) + len);
      last.len += static_cast<uint32_t>(len);
      return;
    }
  }
  const uint32_t offset = static_cast<uint32_t>(redo_data_.size());
  redo_data_.insert(redo_data_.end(), static_cast<const uint8_t*>(src),
                    static_cast<const uint8_t*>(src) + len);
  redo_log_.push_back(RedoEntry{reinterpret_cast<uintptr_t>(dst), offset,
                                static_cast<uint32_t>(len)});
}

void HtmThread::Commit() {
  assert(depth_ > 0);
  if (depth_ > 1) {
    // Flattened inner region; the outer Transact() commits.
    --depth_;
    return;
  }

  // Phase 1: lock write lines in global (slot-address) order. With write
  // combining on, the insertion-ordered wc_slots_ buffer (deduplicated at
  // insert) replaces a full re-enumeration of the write-set map — one pass
  // over the seqlock table per commit, à la mem-order's seqbatch recorder.
  std::vector<std::pair<std::atomic<uint64_t>*, uint64_t>> locked;
  locked.reserve(write_set_.size());
  {
    std::vector<std::atomic<uint64_t>*> rebuilt;
    if (!config_.commit_write_combining) {
      rebuilt.reserve(write_set_.size());
      for (const auto& [slot, unused] : write_set_) {
        rebuilt.push_back(slot);
      }
    }
    std::vector<std::atomic<uint64_t>*>& slots =
        config_.commit_write_combining ? wc_slots_ : rebuilt;
    std::sort(slots.begin(), slots.end());
    for (std::atomic<uint64_t>* slot : slots) {
      int spins = 0;
      while (true) {
        uint64_t v = slot->load(std::memory_order_acquire);
        if (!VersionTable::IsLocked(v) &&
            slot->compare_exchange_weak(v, v + 1,
                                        std::memory_order_acq_rel)) {
          locked.emplace_back(slot, v);
          break;
        }
        if (++spins > config_.lock_spin_limit) {
          for (auto& [held, base] : locked) {
            held->store(base, std::memory_order_release);
          }
          AbortWith(kAbortConflict | kAbortRetry);
        }
      }
    }
  }

  // Phase 2: validate the read set against the snapshot versions.
  // `locked` was filled in sorted slot order, so the locked-by-us lookup
  // is a binary search — a read-write transaction touching W lines would
  // otherwise pay O(W) per overlapping read line (quadratic for the
  // sliced bulk writes the chop planner emits, whose read and write sets
  // largely coincide).
  bool valid = true;
  for (const auto& [slot, recorded] : read_set_) {
    uint64_t current = slot->load(std::memory_order_acquire);
    if (VersionTable::IsLocked(current)) {
      // Locked by us? Then its pre-lock base must match what we read.
      auto it = std::lower_bound(
          locked.begin(), locked.end(), slot,
          [](const auto& p, const std::atomic<uint64_t>* s) {
            return p.first < s;
          });
      if (it == locked.end() || it->first != slot || it->second != recorded) {
        valid = false;
        break;
      }
    } else if (current != recorded) {
      valid = false;
      break;
    }
  }
  if (!valid) {
    for (auto& [slot, base] : locked) {
      slot->store(base, std::memory_order_release);
    }
    AbortWith(kAbortConflict | kAbortRetry);
  }

  // Phase 3: install buffered writes, then release with a version bump.
  std::atomic_thread_fence(std::memory_order_release);
  for (const RedoEntry& e : redo_log_) {
    std::memcpy(reinterpret_cast<void*>(e.dst), redo_data_.data() + e.offset,
                e.len);
  }
  std::atomic_thread_fence(std::memory_order_release);
  if (g_replay_armed.load(std::memory_order_relaxed) &&
      g_replay_hooks.on_publish != nullptr && !locked.empty()) {
    // Inside the critical section (slots still locked): the hook's
    // observation order is the serialization order of conflicting
    // commits. Read-only regions (no locked lines) publish nothing.
    std::vector<PublishedLine> lines;
    lines.reserve(locked.size());
    for (const auto& [slot, base] : locked) {
      lines.push_back(PublishedLine{
          static_cast<uint32_t>(table_->IndexOf(slot)), base + 2});
    }
    g_replay_hooks.on_publish(lines.data(), lines.size(), table_);
  }
  for (auto& [slot, base] : locked) {
    slot->store(base + 2, std::memory_order_release);
  }

  ++stats_.commits;
  stat::RecordHtmOutcome(kCommitted);
  depth_ = 0;
  g_current_tx = nullptr;
  read_set_.clear();
  write_set_.clear();
  redo_log_.clear();
  redo_data_.clear();
  wc_slots_.clear();
}

void SetReplayHooks(const ReplayHooks& hooks) {
  const bool arm =
      hooks.on_publish != nullptr || hooks.on_abort != nullptr;
  if (arm) {
    g_replay_hooks = hooks;
    g_replay_armed.store(true, std::memory_order_release);
  } else {
    g_replay_armed.store(false, std::memory_order_release);
    g_replay_hooks = ReplayHooks{};
  }
}

void AbortCurrentTransactionOrDie(const char* what) {
  if (HtmThread::Current() != nullptr) {
    throw AbortException{kAbortConflict | kAbortRetry};
  }
  std::fprintf(stderr, "invariant violated outside a transaction: %s\n",
               what);
  std::abort();
}

// --- Strong accesses --------------------------------------------------------

void StrongRead(void* dst, const void* src, size_t len, VersionTable* table) {
  if (len == 0) {
    return;
  }
  std::vector<std::pair<std::atomic<uint64_t>*, uint64_t>> observed;
  while (true) {
    observed.clear();
    ForEachLineSlot(table, src, len, [&](std::atomic<uint64_t>* slot) {
      uint64_t v = slot->load(std::memory_order_acquire);
      while (VersionTable::IsLocked(v)) {
        v = slot->load(std::memory_order_acquire);
      }
      observed.emplace_back(slot, v);
    });
    std::atomic_thread_fence(std::memory_order_acquire);
    std::memcpy(dst, src, len);
    std::atomic_thread_fence(std::memory_order_acquire);
    bool stable = true;
    for (const auto& [slot, v] : observed) {
      if (slot->load(std::memory_order_acquire) != v) {
        stable = false;
        break;
      }
    }
    if (stable) {
      return;
    }
  }
}

void StrongWrite(void* dst, const void* src, size_t len, VersionTable* table) {
  if (len == 0) {
    return;
  }
  std::vector<std::atomic<uint64_t>*> slots;
  ForEachLineSlot(table, dst, len, [&](std::atomic<uint64_t>* slot) {
    slots.push_back(slot);
  });
  std::sort(slots.begin(), slots.end());
  slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
  std::vector<uint64_t> bases;
  bases.reserve(slots.size());
  for (std::atomic<uint64_t>* slot : slots) {
    bases.push_back(LockSlot(slot));
  }
  std::atomic_thread_fence(std::memory_order_release);
  std::memcpy(dst, src, len);
  std::atomic_thread_fence(std::memory_order_release);
  for (size_t i = 0; i < slots.size(); ++i) {
    slots[i]->store(bases[i] + 2, std::memory_order_release);
  }
}

uint64_t StrongCas64(uint64_t* addr, uint64_t expected, uint64_t desired,
                     VersionTable* table) {
  assert(reinterpret_cast<uintptr_t>(addr) % 8 == 0);
  std::atomic<uint64_t>* slot = table->SlotFor(addr);
  const uint64_t base = LockSlot(slot);
  std::atomic_thread_fence(std::memory_order_acquire);
  const uint64_t observed = *addr;
  if (observed == expected) {
    *addr = desired;
    std::atomic_thread_fence(std::memory_order_release);
    slot->store(base + 2, std::memory_order_release);
  } else {
    slot->store(base, std::memory_order_release);
  }
  return observed;
}

uint64_t StrongFaa64(uint64_t* addr, uint64_t delta, VersionTable* table) {
  assert(reinterpret_cast<uintptr_t>(addr) % 8 == 0);
  std::atomic<uint64_t>* slot = table->SlotFor(addr);
  const uint64_t base = LockSlot(slot);
  std::atomic_thread_fence(std::memory_order_acquire);
  const uint64_t observed = *addr;
  *addr = observed + delta;
  std::atomic_thread_fence(std::memory_order_release);
  slot->store(base + 2, std::memory_order_release);
  return observed;
}

}  // namespace htm
}  // namespace drtm
