// Software emulation of Intel Restricted Transactional Memory (RTM).
//
// Real RTM traps every load/store inside XBEGIN/XEND through the cache
// coherence protocol. A software emulation cannot trap raw loads, so all
// transactional accesses go through htm::Load / htm::Store (or the
// HtmThread::Read/Write primitives). The emulator provides the three RTM
// properties DrTM depends on:
//
//   1. ACI: buffered (redo-log) writes, commit-time lock+validate over a
//      global per-cache-line version table; a committed transaction is
//      atomic and serializable against all other transactional and
//      "strong" accesses.
//   2. Capacity aborts: distinct cache lines in the read/write set are
//      bounded (defaults mirror L1-write-set / L2-read-set tracking).
//   3. Strong atomicity: non-transactional StrongWrite/StrongCas bump
//      line versions, which aborts every conflicting in-flight
//      transaction at its next access or at commit validation. (Real RTM
//      aborts eagerly; aborting at validation is observationally
//      equivalent — the doomed transaction can never commit.)
//
// The status word follows the RTM layout: kCommitted on success,
// otherwise an OR of abort cause bits with the XABORT user code in bits
// 31:24.
#ifndef SRC_HTM_HTM_H_
#define SRC_HTM_HTM_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "src/htm/version_table.h"

namespace drtm {
namespace htm {

// Abort cause bits (same bit positions as Intel RTM's EAX status).
inline constexpr unsigned kAbortExplicit = 1u << 0;
inline constexpr unsigned kAbortRetry = 1u << 1;
inline constexpr unsigned kAbortConflict = 1u << 2;
inline constexpr unsigned kAbortCapacity = 1u << 3;

// Returned by Transact() when the transaction committed.
inline constexpr unsigned kCommitted = ~0u;

inline unsigned AbortUserCode(unsigned status) { return (status >> 24) & 0xff; }

struct Config {
  // Distinct cache lines trackable before a capacity abort. The defaults
  // mirror a 32 KB L1 write set and a larger read-set tracking structure.
  size_t max_write_lines = 512;
  size_t max_read_lines = 8192;
  // Bounded spin (iterations) on a locked line before declaring conflict.
  int lock_spin_limit = 256;
  // Region batching (mem-order's RTM_BATCH_N idiom): a direct-mapped
  // per-thread cache of recently probed version-table slots, so a run of
  // accesses to the same lines pays one read/write-set map probe per
  // ~batch instead of one per access. Rounded down to a power of two,
  // clamped to 64; 0 disables the cache.
  size_t probe_batch_lines = 8;
  // Commit-time write combining (mem-order's seqbatch idiom): slots are
  // appended to a per-thread buffer as they first enter the write set, so
  // commit walks that buffer in one pass instead of re-enumerating the
  // write-set map, and byte-adjacent redo appends coalesce into one entry.
  bool commit_write_combining = true;
};

struct Stats {
  uint64_t commits = 0;
  uint64_t aborts_conflict = 0;
  uint64_t aborts_capacity = 0;
  uint64_t aborts_explicit = 0;

  uint64_t TotalAborts() const {
    return aborts_conflict + aborts_capacity + aborts_explicit;
  }
  void Add(const Stats& o) {
    commits += o.commits;
    aborts_conflict += o.aborts_conflict;
    aborts_capacity += o.aborts_capacity;
    aborts_explicit += o.aborts_explicit;
  }
};

// Thrown internally to unwind a transaction body on abort. Transaction
// bodies must be abort-safe (no irreversible side effects before commit),
// exactly like real RTM regions.
struct AbortException {
  unsigned status;
};

class HtmThread {
 public:
  explicit HtmThread(Config config = Config(),
                     VersionTable* table = &VersionTable::Global());
  ~HtmThread();

  HtmThread(const HtmThread&) = delete;
  HtmThread& operator=(const HtmThread&) = delete;

  // Runs fn inside a transaction. Returns kCommitted, or the abort
  // status. Nested calls flatten (like RTM): an inner abort aborts the
  // outermost transaction.
  template <typename Fn>
  unsigned Transact(Fn&& fn) {
    if (depth_ > 0) {
      // Flat nesting: run inline; aborts propagate to the outer region.
      // The scope guard keeps depth_ balanced when the body throws
      // (AbortException or anything else): the unwind must reach the
      // outer Transact with the depth it set up, or the thread would
      // permanently believe it is inside a transaction.
      ++depth_;
      DepthGuard guard(&depth_);
      fn();
      return kCommitted;
    }
    Begin();
    try {
      fn();
      Commit();
      return kCommitted;
    } catch (const AbortException& e) {
      Rollback(e.status);
      return e.status;
    } catch (...) {
      // A foreign exception crossing the transaction boundary tears the
      // region down (counted as an explicit abort) and propagates;
      // without this the buffered writes and depth would leak.
      Rollback(kAbortExplicit);
      throw;
    }
  }

  // Transactional read/write of an arbitrary byte range.
  void Read(void* dst, const void* src, size_t len);
  void Write(void* dst, const void* src, size_t len);

  template <typename T>
  T Load(const T* src) {
    T value;
    Read(&value, src, sizeof(T));
    return value;
  }

  template <typename T>
  void Store(T* dst, const T& value) {
    Write(dst, &value, sizeof(T));
  }

  // XABORT: aborts the current transaction with a user code (0..255).
  [[noreturn]] void Abort(uint8_t user_code);

  bool InTransaction() const { return depth_ > 0; }

  const Stats& stats() const { return stats_; }
  Stats* mutable_stats() { return &stats_; }

  // The HtmThread currently executing a transaction on this OS thread
  // (nullptr outside transactions). Used by helpers that must dispatch
  // between transactional and strong accesses.
  static HtmThread* Current();

 private:
  struct RedoEntry {
    uintptr_t dst;
    uint32_t offset;  // into redo_data_
    uint32_t len;
  };

  // Balances the flat-nesting depth increment across any exit path of
  // the inner body, including exception unwinding.
  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth(depth) {}
    ~DepthGuard() { --*depth; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    int* depth;
  };

  void Begin();
  void Commit();
  void Rollback(unsigned status);
  [[noreturn]] void AbortWith(unsigned status);

  // Tracks the lines of [addr, addr+len) in the read set, verifying a
  // stable snapshot. Aborts on conflict/capacity.
  void TrackRead(const void* addr, size_t len);

  // Direct-mapped probe-cache index for a slot (valid iff probe_mask_ != 0).
  size_t ProbeIndex(const std::atomic<uint64_t>* slot) const {
    return (reinterpret_cast<uintptr_t>(slot) >> 3) & probe_mask_;
  }

  Config config_;
  VersionTable* table_;
  int depth_ = 0;
  Stats stats_;

  // slot -> version observed at first read.
  std::unordered_map<std::atomic<uint64_t>*, uint64_t> read_set_;
  // slot -> version observed when the line first entered the write set
  // (used to validate read-after-write lines at commit).
  std::unordered_map<std::atomic<uint64_t>*, uint64_t> write_set_;
  std::vector<RedoEntry> redo_log_;
  std::vector<uint8_t> redo_data_;

  // Region-batching probe caches (Config::probe_batch_lines). Entries are
  // epoch-tagged so Begin() invalidates them without a clear pass.
  struct ReadProbe {
    std::atomic<uint64_t>* slot = nullptr;
    uint64_t version = 0;
    uint64_t epoch = 0;
  };
  struct WriteProbe {
    std::atomic<uint64_t>* slot = nullptr;
    uint64_t epoch = 0;
  };
  static constexpr size_t kMaxProbeCache = 64;
  size_t probe_mask_ = 0;  // 0 => caches disabled
  uint64_t epoch_ = 0;
  ReadProbe read_probe_[kMaxProbeCache];
  WriteProbe write_probe_[kMaxProbeCache];

  // Write-combining buffer (Config::commit_write_combining): every slot in
  // insertion order, deduplicated at insert, consumed by Commit in one pass.
  std::vector<std::atomic<uint64_t>*> wc_slots_;
};

// --- Replay hooks -----------------------------------------------------------
//
// Seam for the record/replay subsystem (src/replay). The replay library
// sits above htm in the dependency order, so htm exposes raw function
// pointers rather than linking against it. The publish hook fires inside
// the commit critical section — after the redo log is installed, before
// the seqlock slots are released — so the order in which hooks observe
// commits IS the conflict order two commits on overlapping lines
// serialized in. Disarmed cost: one relaxed atomic load per commit.
struct PublishedLine {
  uint32_t slot;      // VersionTable::IndexOf of the locked slot
  uint64_t version;   // version the slot is released to (base + 2)
};

struct ReplayHooks {
  // Called with the committed region's locked lines (empty for read-only
  // regions, which are skipped). `table` disambiguates non-global tables.
  void (*on_publish)(const PublishedLine* lines, size_t count,
                     const VersionTable* table) = nullptr;
  // Called when a top-level region rolls back, with the RTM status word.
  void (*on_abort)(unsigned status) = nullptr;
};

// Installs (or, with default-constructed hooks, clears) the process-wide
// replay hooks. Not thread-safe against in-flight commits — arm/disarm
// only while the workload threads are quiesced, as the recorder does.
void SetReplayHooks(const ReplayHooks& hooks);

// --- Strong (non-transactional) accesses -----------------------------------
//
// These model accesses that bypass the transactional tracking but are
// cache-coherent with it: one-sided RDMA operations and the softtime
// timer thread. They lock the affected version-table slots, mutate
// memory, and bump versions, thereby aborting conflicting transactions.

void StrongRead(void* dst, const void* src, size_t len,
                VersionTable* table = &VersionTable::Global());
void StrongWrite(void* dst, const void* src, size_t len,
                 VersionTable* table = &VersionTable::Global());

// Atomic 64-bit compare-and-swap against addr; returns the value observed
// before the swap (equal to expected iff the swap happened).
uint64_t StrongCas64(uint64_t* addr, uint64_t expected, uint64_t desired,
                     VersionTable* table = &VersionTable::Global());

// Atomic 64-bit fetch-and-add; returns the previous value.
uint64_t StrongFaa64(uint64_t* addr, uint64_t delta,
                     VersionTable* table = &VersionTable::Global());

template <typename T>
T StrongLoad(const T* src) {
  T value;
  StrongRead(&value, src, sizeof(T));
  return value;
}

template <typename T>
void StrongStore(T* dst, const T& value) {
  StrongWrite(dst, &value, sizeof(T));
}

// --- Dispatching helpers ----------------------------------------------------
//
// Store code paths (hash table, B+ tree) are written once and used both
// inside HTM transactions (local operations) and outside (bulk loading).
// These helpers route through the current transaction when one is active.

template <typename T>
T Load(const T* src) {
  if (HtmThread* tx = HtmThread::Current()) {
    return tx->Load(src);
  }
  return StrongLoad(src);
}

template <typename T>
void Store(T* dst, const T& value) {
  if (HtmThread* tx = HtmThread::Current()) {
    tx->Store(dst, value);
    return;
  }
  StrongStore(dst, value);
}

inline void ReadBytes(void* dst, const void* src, size_t len) {
  if (HtmThread* tx = HtmThread::Current()) {
    tx->Read(dst, src, len);
    return;
  }
  StrongRead(dst, src, len);
}

inline void WriteBytes(void* dst, const void* src, size_t len) {
  if (HtmThread* tx = HtmThread::Current()) {
    tx->Write(dst, src, len);
    return;
  }
  StrongWrite(dst, src, len);
}

// Sanity escape hatch for data structures traversed inside transactions.
// The emulator (like TL2-style STMs) validates reads lazily, so a doomed
// transaction can observe a torn multi-line structure before commit-time
// validation kills it. Structures that dereference what they read (e.g.
// the B+ tree following child ids) call this when an invariant fails:
// inside a transaction it aborts the transaction (the data was torn);
// outside one it is genuine corruption and the process aborts.
[[noreturn]] void AbortCurrentTransactionOrDie(const char* what);

}  // namespace htm
}  // namespace drtm

#endif  // SRC_HTM_HTM_H_
