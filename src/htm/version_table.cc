#include "src/htm/version_table.h"

#include <cassert>

namespace drtm {

VersionTable::VersionTable(size_t slots) {
  assert(slots != 0 && (slots & (slots - 1)) == 0);
  slots_ = std::make_unique<std::atomic<uint64_t>[]>(slots);
  for (size_t i = 0; i < slots; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
  mask_ = slots - 1;
}

VersionTable& VersionTable::Global() {
  static VersionTable table;
  return table;
}

}  // namespace drtm
