// Process-global, sharded, cache-line-granular seqlock table.
//
// This is the emulation of the cache-coherence fabric that a real machine
// gives Intel RTM for free: every 64-byte line of memory maps (by hash) to
// a 64-bit version word. Even value = unlocked, odd = locked. HTM commits
// and non-transactional "strong" accesses (RDMA, the softtime timer) bump
// versions, which is what aborts conflicting in-flight transactions.
//
// Two distinct lines may hash to the same slot; that produces false
// conflicts, exactly like false sharing within a line on real hardware.
#ifndef SRC_HTM_VERSION_TABLE_H_
#define SRC_HTM_VERSION_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "src/common/cacheline.h"

namespace drtm {

class VersionTable {
 public:
  // slots must be a power of two.
  explicit VersionTable(size_t slots = kDefaultSlots);

  VersionTable(const VersionTable&) = delete;
  VersionTable& operator=(const VersionTable&) = delete;

  std::atomic<uint64_t>* SlotFor(const void* addr) {
    const uint64_t line = CacheLineOf(addr);
    // Fibonacci hash to spread adjacent lines across the table.
    const uint64_t h = line * 0x9e3779b97f4a7c15ULL;
    return &slots_[(h >> 20) & mask_];
  }

  size_t size() const { return mask_ + 1; }

  // Index of a slot previously returned by SlotFor — stable within one
  // process (the table never grows), used by the replay recorder to name
  // lines in event context. NOT stable across processes: heap layout
  // shifts the line→slot mapping, which is why cross-run replay
  // validation never keys off slot indices.
  size_t IndexOf(const std::atomic<uint64_t>* slot) const {
    return static_cast<size_t>(slot - slots_.get());
  }

  // The process-wide instance used by default throughout the library.
  static VersionTable& Global();

  static constexpr size_t kDefaultSlots = size_t{1} << 22;

  static bool IsLocked(uint64_t version) { return (version & 1) != 0; }

 private:
  std::unique_ptr<std::atomic<uint64_t>[]> slots_;
  size_t mask_;
};

}  // namespace drtm

#endif  // SRC_HTM_VERSION_TABLE_H_
