#include "src/rdma/fabric.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>

#include "src/chaos/injector.h"
#include "src/common/clock.h"
#include "src/htm/htm.h"
#include "src/stat/metrics.h"

namespace drtm {
namespace rdma {

ThreadStats& LocalThreadStats() {
  thread_local ThreadStats stats;
  return stats;
}

namespace {

// Registry ids for the one-sided verbs and the simulated NIC latency the
// fabric model charged for each op.  Resolved once per process.
struct VerbIds {
  uint32_t reads = 0;
  uint32_t read_bytes = 0;
  uint32_t read_ns = 0;
  uint32_t writes = 0;
  uint32_t write_bytes = 0;
  uint32_t write_ns = 0;
  uint32_t cas_ops = 0;
  uint32_t cas_ns = 0;
  uint32_t faa_ops = 0;
  uint32_t faa_ns = 0;
  uint32_t sends = 0;
  uint32_t send_ns = 0;
};

const VerbIds& Verbs() {
  static const VerbIds ids = [] {
    stat::Registry& reg = stat::Registry::Global();
    VerbIds v;
    v.reads = reg.CounterId("rdma.read.ops");
    v.read_bytes = reg.CounterId("rdma.read.bytes");
    v.read_ns = reg.TimerId("rdma.read_ns");
    v.writes = reg.CounterId("rdma.write.ops");
    v.write_bytes = reg.CounterId("rdma.write.bytes");
    v.write_ns = reg.TimerId("rdma.write_ns");
    v.cas_ops = reg.CounterId("rdma.cas.ops");
    v.cas_ns = reg.TimerId("rdma.cas_ns");
    v.faa_ops = reg.CounterId("rdma.faa.ops");
    v.faa_ns = reg.TimerId("rdma.faa_ns");
    v.sends = reg.CounterId("rdma.send.ops");
    v.send_ns = reg.TimerId("rdma.send_ns");
    return v;
  }();
  return ids;
}

// Per-WQE chaos injection points. Placed in the shared executors so the
// scalar verbs, the doorbell-batched SendQueue and the PhaseScatter
// engine are all covered by the same hooks (they funnel through
// Execute*). A kDelayNs decision models a NIC latency spike; kFailOp /
// kAbandon surface as kNodeDown exactly like a real fail-stop target.
struct WqePoints {
  uint32_t read;
  uint32_t write;
  uint32_t cas;
  uint32_t faa;
  uint32_t send;
};

const WqePoints& ChaosPoints() {
  static const WqePoints points = [] {
    chaos::Injector& injector = chaos::Injector::Global();
    WqePoints p;
    p.read = injector.Point("rdma.read.wqe");
    p.write = injector.Point("rdma.write.wqe");
    p.cas = injector.Point("rdma.cas.wqe");
    p.faa = injector.Point("rdma.faa.wqe");
    p.send = injector.Point("rdma.send");
    return p;
  }();
  return points;
}

}  // namespace

struct Fabric::PendingRpc {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::vector<uint8_t> reply;
};

Fabric::Fabric(const Config& config) : config_(config) {
  nodes_.reserve(static_cast<size_t>(config.num_nodes));
  queues_.reserve(static_cast<size_t>(config.num_nodes));
  nic_latches_.reserve(static_cast<size_t>(config.num_nodes));
  alive_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<size_t>(config.num_nodes));
  for (int i = 0; i < config.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<NodeMemory>(i, config.region_bytes));
    queues_.push_back(std::make_unique<MessageQueue>());
    nic_latches_.push_back(std::make_unique<SpinLatch>());
    alive_[static_cast<size_t>(i)].store(true, std::memory_order_relaxed);
  }
}

Fabric::~Fabric() {
  for (auto& q : queues_) {
    q->Shutdown();
  }
}

OpStatus Fabric::ExecuteRead(int target, uint64_t offset, void* dst,
                             size_t len) {
  if (!IsAlive(target)) {
    return OpStatus::kNodeDown;
  }
  const chaos::Decision fault = chaos::Check(ChaosPoints().read, target);
  if (fault.kind == chaos::Decision::Kind::kFailOp ||
      fault.kind == chaos::Decision::Kind::kAbandon) {
    return OpStatus::kNodeDown;
  }
  if (fault.kind == chaos::Decision::Kind::kDelayNs) {
    SpinFor(fault.arg);
  }
  htm::StrongRead(dst, memory(target).At(offset), len);
  ThreadStats& stats = LocalThreadStats();
  ++stats.reads;
  stats.read_bytes += len;
  stat::Registry& reg = stat::Registry::Global();
  reg.Add(Verbs().reads);
  reg.Add(Verbs().read_bytes, len);
  return OpStatus::kOk;
}

OpStatus Fabric::ExecuteWrite(int target, uint64_t offset, const void* src,
                              size_t len) {
  if (!IsAlive(target)) {
    return OpStatus::kNodeDown;
  }
  const chaos::Decision fault = chaos::Check(ChaosPoints().write, target);
  if (fault.kind == chaos::Decision::Kind::kFailOp ||
      fault.kind == chaos::Decision::Kind::kAbandon) {
    return OpStatus::kNodeDown;
  }
  if (fault.kind == chaos::Decision::Kind::kTornWrite) {
    // Partial application: the NIC died mid-transfer. The prefix lands
    // (through the same strong-access path, so HTM conflicts still fire),
    // the caller sees a failed op.
    const size_t prefix = std::min(static_cast<size_t>(fault.arg), len);
    if (prefix > 0) {
      htm::StrongWrite(memory(target).At(offset), src, prefix);
    }
    return OpStatus::kNodeDown;
  }
  if (fault.kind == chaos::Decision::Kind::kDelayNs) {
    SpinFor(fault.arg);
  }
  htm::StrongWrite(memory(target).At(offset), src, len);
  ThreadStats& stats = LocalThreadStats();
  ++stats.writes;
  stats.write_bytes += len;
  stat::Registry& reg = stat::Registry::Global();
  reg.Add(Verbs().writes);
  reg.Add(Verbs().write_bytes, len);
  return OpStatus::kOk;
}

OpStatus Fabric::ExecuteCas(int target, uint64_t offset, uint64_t expected,
                            uint64_t desired, uint64_t* observed) {
  if (!IsAlive(target)) {
    return OpStatus::kNodeDown;
  }
  const chaos::Decision fault = chaos::Check(ChaosPoints().cas, target);
  if (fault.kind == chaos::Decision::Kind::kFailOp ||
      fault.kind == chaos::Decision::Kind::kAbandon) {
    return OpStatus::kNodeDown;
  }
  if (fault.kind == chaos::Decision::Kind::kDelayNs) {
    SpinFor(fault.arg);
  }
  uint64_t* addr = static_cast<uint64_t*>(memory(target).At(offset));
  {
    // RDMA atomics serialize on the target NIC regardless of level; the
    // difference between HCA and GLOB is whether processor atomics also
    // serialize with them, which the transaction layer enforces by policy.
    SpinLatchGuard nic(*nic_latches_[static_cast<size_t>(target)]);
    *observed = htm::StrongCas64(addr, expected, desired);
  }
  ++LocalThreadStats().cas_ops;
  stat::Registry::Global().Add(Verbs().cas_ops);
  return OpStatus::kOk;
}

OpStatus Fabric::ExecuteFaa(int target, uint64_t offset, uint64_t delta,
                            uint64_t* observed) {
  if (!IsAlive(target)) {
    return OpStatus::kNodeDown;
  }
  const chaos::Decision fault = chaos::Check(ChaosPoints().faa, target);
  if (fault.kind == chaos::Decision::Kind::kFailOp ||
      fault.kind == chaos::Decision::Kind::kAbandon) {
    return OpStatus::kNodeDown;
  }
  if (fault.kind == chaos::Decision::Kind::kDelayNs) {
    SpinFor(fault.arg);
  }
  uint64_t* addr = static_cast<uint64_t*>(memory(target).At(offset));
  {
    SpinLatchGuard nic(*nic_latches_[static_cast<size_t>(target)]);
    *observed = htm::StrongFaa64(addr, delta);
  }
  ++LocalThreadStats().faa_ops;
  stat::Registry::Global().Add(Verbs().faa_ops);
  return OpStatus::kOk;
}

OpStatus Fabric::Read(int target, uint64_t offset, void* dst, size_t len) {
  if (!IsAlive(target)) {
    return OpStatus::kNodeDown;
  }
  const uint64_t latency_ns = config_.latency.ReadNs(len);
  SpinFor(latency_ns);
  const OpStatus status = ExecuteRead(target, offset, dst, len);
  if (status == OpStatus::kOk) {
    stat::Registry::Global().Record(Verbs().read_ns, latency_ns);
  }
  return status;
}

OpStatus Fabric::Write(int target, uint64_t offset, const void* src,
                       size_t len) {
  if (!IsAlive(target)) {
    return OpStatus::kNodeDown;
  }
  const uint64_t latency_ns = config_.latency.WriteNs(len);
  SpinFor(latency_ns);
  const OpStatus status = ExecuteWrite(target, offset, src, len);
  if (status == OpStatus::kOk) {
    stat::Registry::Global().Record(Verbs().write_ns, latency_ns);
  }
  return status;
}

OpStatus Fabric::Cas(int target, uint64_t offset, uint64_t expected,
                     uint64_t desired, uint64_t* observed) {
  if (!IsAlive(target)) {
    return OpStatus::kNodeDown;
  }
  const uint64_t latency_ns = config_.latency.CasNs();
  SpinFor(latency_ns);
  const OpStatus status = ExecuteCas(target, offset, expected, desired,
                                     observed);
  if (status == OpStatus::kOk) {
    stat::Registry::Global().Record(Verbs().cas_ns, latency_ns);
  }
  return status;
}

OpStatus Fabric::Faa(int target, uint64_t offset, uint64_t delta,
                     uint64_t* observed) {
  if (!IsAlive(target)) {
    return OpStatus::kNodeDown;
  }
  const uint64_t latency_ns = config_.latency.FaaNs();
  SpinFor(latency_ns);
  const OpStatus status = ExecuteFaa(target, offset, delta, observed);
  if (status == OpStatus::kOk) {
    stat::Registry::Global().Record(Verbs().faa_ns, latency_ns);
  }
  return status;
}

OpStatus Fabric::Send(int from, int to, uint32_t kind,
                      std::vector<uint8_t> payload) {
  if (!IsAlive(to)) {
    return OpStatus::kNodeDown;
  }
  const chaos::Decision fault = chaos::Check(ChaosPoints().send, to);
  if (fault.kind == chaos::Decision::Kind::kFailOp ||
      fault.kind == chaos::Decision::Kind::kAbandon) {
    return OpStatus::kNodeDown;
  }
  if (fault.kind == chaos::Decision::Kind::kDelayNs) {
    SpinFor(fault.arg);
  }
  const uint64_t latency_ns = config_.latency.SendNs(payload.size());
  SpinFor(latency_ns);
  Message msg;
  msg.from = from;
  msg.kind = kind;
  msg.rpc_id = 0;
  msg.payload = std::move(payload);
  queue(to).Push(std::move(msg));
  ++LocalThreadStats().sends;
  stat::Registry& reg = stat::Registry::Global();
  reg.Add(Verbs().sends);
  reg.Record(Verbs().send_ns, latency_ns);
  return OpStatus::kOk;
}

OpStatus Fabric::Rpc(int from, int to, uint32_t kind,
                     std::vector<uint8_t> payload, std::vector<uint8_t>* reply,
                     uint64_t timeout_us) {
  if (!IsAlive(to)) {
    return OpStatus::kNodeDown;
  }
  const chaos::Decision fault = chaos::Check(ChaosPoints().send, to);
  if (fault.kind == chaos::Decision::Kind::kFailOp ||
      fault.kind == chaos::Decision::Kind::kAbandon) {
    return OpStatus::kNodeDown;
  }
  if (fault.kind == chaos::Decision::Kind::kDelayNs) {
    SpinFor(fault.arg);
  }
  const uint64_t rpc_id = next_rpc_id_.fetch_add(1, std::memory_order_relaxed);
  auto pending = std::make_shared<PendingRpc>();
  {
    std::lock_guard<std::mutex> lock(rpc_mu_);
    pending_rpcs_.emplace(rpc_id, pending);
  }
  const uint64_t latency_ns = config_.latency.SendNs(payload.size());
  SpinFor(latency_ns);
  Message msg;
  msg.from = from;
  msg.kind = kind;
  msg.rpc_id = rpc_id;
  msg.payload = std::move(payload);
  queue(to).Push(std::move(msg));
  ++LocalThreadStats().sends;
  {
    stat::Registry& reg = stat::Registry::Global();
    reg.Add(Verbs().sends);
    reg.Record(Verbs().send_ns, latency_ns);
  }

  std::unique_lock<std::mutex> lock(pending->mu);
  const bool ok =
      pending->cv.wait_for(lock, std::chrono::microseconds(timeout_us),
                           [&] { return pending->done; });
  {
    std::lock_guard<std::mutex> map_lock(rpc_mu_);
    pending_rpcs_.erase(rpc_id);
  }
  if (!ok) {
    return IsAlive(to) ? OpStatus::kTimeout : OpStatus::kNodeDown;
  }
  if (reply != nullptr) {
    *reply = std::move(pending->reply);
  }
  return OpStatus::kOk;
}

void Fabric::Reply(const Message& request, std::vector<uint8_t> payload) {
  if (request.rpc_id == 0) {
    return;
  }
  SpinFor(config_.latency.SendNs(payload.size()));
  std::shared_ptr<PendingRpc> pending;
  {
    std::lock_guard<std::mutex> lock(rpc_mu_);
    auto it = pending_rpcs_.find(request.rpc_id);
    if (it == pending_rpcs_.end()) {
      return;  // Caller timed out and abandoned the RPC.
    }
    pending = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(pending->mu);
    pending->reply = std::move(payload);
    pending->done = true;
  }
  pending->cv.notify_one();
  ++LocalThreadStats().sends;
}

}  // namespace rdma
}  // namespace drtm
