// The simulated RDMA-capable interconnect.
//
// A Fabric owns the registered memory of every simulated machine and
// implements the verbs DrTM uses:
//   * one-sided READ / WRITE / CAS / FAA against (node, offset), executed
//     directly by the issuing thread through the HTM strong-access path —
//     this is what makes the simulated RDMA cache-coherent with the HTM
//     emulator, the property DrTM's protocol rests on;
//   * two-sided SEND/RECV with a blocking RPC wrapper.
//
// Atomicity levels (paper sections 4.2 and 6.3): at IBV_ATOMIC_HCA level,
// RDMA CAS is atomic only against other RDMA atomics (serialized by a
// per-target NIC latch); processor CAS against the same word is not safe.
// The transaction layer consults atomic_level() to decide whether local
// records may be locked with processor atomics (GLOB) or must go through
// the NIC (HCA, the paper's hardware).
#ifndef SRC_RDMA_FABRIC_H_
#define SRC_RDMA_FABRIC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/spin_latch.h"
#include "src/rdma/latency.h"
#include "src/rdma/messaging.h"
#include "src/rdma/node_memory.h"

namespace drtm {
namespace rdma {

enum class OpStatus {
  kOk,
  kNodeDown,
  kTimeout,
};

enum class AtomicLevel {
  kHca,   // RDMA CAS atomic only vs. RDMA CAS (the paper's ConnectX-3)
  kGlob,  // RDMA CAS atomic vs. processor CAS (e.g. QLogic QLE series)
};

// Per-thread operation counters; the KV benchmarks read these to report
// "average number of RDMA READs per lookup" (Table 4).
struct ThreadStats {
  uint64_t reads = 0;
  uint64_t read_bytes = 0;
  uint64_t writes = 0;
  uint64_t write_bytes = 0;
  uint64_t cas_ops = 0;
  uint64_t faa_ops = 0;
  uint64_t sends = 0;

  void Reset() { *this = ThreadStats(); }
};

ThreadStats& LocalThreadStats();

class Fabric {
 public:
  struct Config {
    int num_nodes = 1;
    size_t region_bytes = size_t{256} << 20;
    LatencyModel latency = LatencyModel::Zero();
    AtomicLevel atomic_level = AtomicLevel::kHca;
  };

  explicit Fabric(const Config& config);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  NodeMemory& memory(int node) { return *nodes_[static_cast<size_t>(node)]; }
  const LatencyModel& latency() const { return config_.latency; }
  AtomicLevel atomic_level() const { return config_.atomic_level; }

  // Fail-stop crash emulation. A dead node rejects all verbs.
  bool IsAlive(int node) const {
    return alive_[static_cast<size_t>(node)].load(std::memory_order_acquire);
  }
  void SetAlive(int node, bool alive) {
    alive_[static_cast<size_t>(node)].store(alive, std::memory_order_release);
    if (!alive) {
      queues_[static_cast<size_t>(node)]->Shutdown();
    }
  }

  // --- one-sided verbs ------------------------------------------------------
  OpStatus Read(int target, uint64_t offset, void* dst, size_t len);
  OpStatus Write(int target, uint64_t offset, const void* src, size_t len);
  // observed receives the pre-swap value; swap happened iff
  // *observed == expected.
  OpStatus Cas(int target, uint64_t offset, uint64_t expected,
               uint64_t desired, uint64_t* observed);
  OpStatus Faa(int target, uint64_t offset, uint64_t delta,
               uint64_t* observed);

  // --- two-sided verbs ------------------------------------------------------
  OpStatus Send(int from, int to, uint32_t kind, std::vector<uint8_t> payload);
  // Blocking request/response; replies are produced by the target node's
  // server loop calling Reply().
  OpStatus Rpc(int from, int to, uint32_t kind, std::vector<uint8_t> payload,
               std::vector<uint8_t>* reply, uint64_t timeout_us = 1000000);
  void Reply(const Message& request, std::vector<uint8_t> payload);

  MessageQueue& queue(int node) { return *queues_[static_cast<size_t>(node)]; }

 private:
  // The doorbell-batched submission path (verbs_batch.h) reuses the
  // per-WQE executors below so batched and scalar ops are
  // result-equivalent; only the latency accounting differs.
  friend class SendQueue;

  // Execute one work request through the HTM strong-access path and bump
  // the per-op counters. No latency is charged here: the scalar verbs
  // charge one full base cost per op, the batched path charges one
  // doorbell per batch (LatencyModel::BatchNs).
  OpStatus ExecuteRead(int target, uint64_t offset, void* dst, size_t len);
  OpStatus ExecuteWrite(int target, uint64_t offset, const void* src,
                        size_t len);
  OpStatus ExecuteCas(int target, uint64_t offset, uint64_t expected,
                      uint64_t desired, uint64_t* observed);
  OpStatus ExecuteFaa(int target, uint64_t offset, uint64_t delta,
                      uint64_t* observed);

  struct PendingRpc;

  Config config_;
  std::vector<std::unique_ptr<NodeMemory>> nodes_;
  std::vector<std::unique_ptr<MessageQueue>> queues_;
  std::unique_ptr<std::atomic<bool>[]> alive_;
  // Per-target-node NIC latch serializing RDMA atomics (HCA level).
  std::vector<std::unique_ptr<SpinLatch>> nic_latches_;

  std::atomic<uint64_t> next_rpc_id_{1};
  std::mutex rpc_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<PendingRpc>> pending_rpcs_;
};

}  // namespace rdma
}  // namespace drtm

#endif  // SRC_RDMA_FABRIC_H_
