#include "src/rdma/latency.h"

namespace drtm {
namespace rdma {

LatencyModel LatencyModel::Zero() {
  LatencyModel m;
  m.scale = 0.0;
  return m;
}

LatencyModel LatencyModel::Calibrated(double scale) {
  LatencyModel m;
  m.scale = scale;
  return m;
}

LatencyModel LatencyModel::Ipoib(double scale) {
  LatencyModel m;
  // IPoIB pays the kernel network stack on both sides: tens of
  // microseconds per message instead of ~2.
  m.send_base_ns = 50000;
  m.send_per_byte_ns = 1.0;
  // One-sided operations do not exist over IPoIB; Calvin never issues
  // them, but keep them priced prohibitively in case of misuse.
  m.read_base_ns = 50000;
  m.write_base_ns = 50000;
  m.cas_ns = 100000;
  m.faa_ns = 100000;
  m.scale = scale;
  return m;
}

}  // namespace rdma
}  // namespace drtm
