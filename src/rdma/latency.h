// Latency model for the simulated interconnect.
//
// Defaults are calibrated to the paper's testbed (Mellanox ConnectX-3
// 56 Gbps InfiniBand): ~1.5 us one-sided READ/WRITE for small payloads
// with a per-byte cost that reproduces the Fig. 10(a) payload curve,
// 14.5 us RDMA CAS (paper section 6.3), ~3 us SEND/RECV verbs RPC legs and
// ~30x that for IPoIB (used by the Calvin baseline).
//
// `scale` shrinks every constant uniformly so that oversubscribed
// simulations (many logical nodes on few cores) still make progress;
// relative shapes are preserved. Tests use LatencyModel::Zero().
#ifndef SRC_RDMA_LATENCY_H_
#define SRC_RDMA_LATENCY_H_

#include <cstddef>
#include <cstdint>

namespace drtm {
namespace rdma {

struct LatencyModel {
  uint64_t read_base_ns = 1500;
  double read_per_byte_ns = 0.25;
  uint64_t write_base_ns = 1400;
  double write_per_byte_ns = 0.25;
  uint64_t cas_ns = 14500;
  uint64_t faa_ns = 14500;
  // One direction of a SEND/RECV verbs message.
  uint64_t send_base_ns = 1700;
  double send_per_byte_ns = 0.3;
  // Local CAS cost (paper: 0.08 us), charged when the transaction layer
  // is allowed to use processor atomics for local records (GLOB mode).
  uint64_t local_cas_ns = 80;
  // Marginal cost of one extra work-queue entry in a doorbell-batched
  // submission (SendQueue): the NIC fetches and executes additional WQEs
  // without paying another doorbell/PCIe round trip, so a batch of N
  // small READs costs one read_base_ns plus (N-1) of these.
  uint64_t wqe_overhead_ns = 150;
  // Cost of persisting one NVRAM-log flush unit (an epoch): a fixed
  // submission cost plus a per-byte drain cost. The paper's failure
  // model is whole-system persistence (UPS-backed DRAM), where flushes
  // are free — hence the zero defaults, which keep every preset and the
  // reproduced Table 6 numbers unchanged. The group-commit benches set
  // these explicitly to model a flush-priced medium and measure the
  // epoch-batching win (ISSUE 9 / arXiv 1806.01108).
  uint64_t flush_base_ns = 0;
  double flush_per_byte_ns = 0.0;

  double scale = 1.0;

  uint64_t ReadNs(size_t len) const {
    return Scaled(read_base_ns +
                  static_cast<uint64_t>(read_per_byte_ns * double(len)));
  }
  uint64_t WriteNs(size_t len) const {
    return Scaled(write_base_ns +
                  static_cast<uint64_t>(write_per_byte_ns * double(len)));
  }
  uint64_t CasNs() const { return Scaled(cas_ns); }
  uint64_t FaaNs() const { return Scaled(faa_ns); }
  uint64_t SendNs(size_t len) const {
    return Scaled(send_base_ns +
                  static_cast<uint64_t>(send_per_byte_ns * double(len)));
  }
  uint64_t LocalCasNs() const { return Scaled(local_cas_ns); }
  uint64_t FlushNs(size_t len) const {
    return Scaled(flush_base_ns +
                  static_cast<uint64_t>(flush_per_byte_ns * double(len)));
  }

  // Cost of a doorbell-batched submission of `wqes` work requests: one
  // base cost (the largest base among the batched opcodes — the doorbell
  // and the first op's round trip dominate), the summed unscaled per-byte
  // payload cost of every WQE, and a small per-WQE issue overhead for
  // the rest. Returns 0 for an empty batch.
  uint64_t BatchNs(uint64_t max_base_ns, uint64_t payload_ns,
                   size_t wqes) const {
    if (wqes == 0) {
      return 0;
    }
    return Scaled(max_base_ns + payload_ns +
                  uint64_t(wqes - 1) * wqe_overhead_ns);
  }

  // No simulated delay at all; unit tests use this.
  static LatencyModel Zero();

  // Paper-calibrated constants shrunk by `scale` (e.g. 0.1 = 10x faster),
  // for oversubscribed benchmark runs.
  static LatencyModel Calibrated(double scale);

  // IPoIB: same fabric, socket emulation with heavy OS involvement.
  static LatencyModel Ipoib(double scale);

 private:
  uint64_t Scaled(uint64_t ns) const {
    return static_cast<uint64_t>(double(ns) * scale);
  }
};

}  // namespace rdma
}  // namespace drtm

#endif  // SRC_RDMA_LATENCY_H_
