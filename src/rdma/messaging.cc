#include "src/rdma/messaging.h"

#include <chrono>

namespace drtm {
namespace rdma {

void MessageQueue::Push(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
}

bool MessageQueue::TryPop(Message* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) {
    return false;
  }
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

bool MessageQueue::PopWait(Message* out, uint64_t timeout_us) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, std::chrono::microseconds(timeout_us),
                    [&] { return !queue_.empty() || shutdown_; })) {
    return false;
  }
  if (queue_.empty()) {
    return false;
  }
  *out = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

size_t MessageQueue::ApproxSize() {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void MessageQueue::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

bool MessageQueue::IsShutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

void MessageQueue::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = false;
  queue_.clear();
}

}  // namespace rdma
}  // namespace drtm
