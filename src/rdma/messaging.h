// SEND/RECV verbs emulation: per-node message rings plus a blocking RPC
// convenience wrapper. DrTM uses this path only where the paper does —
// shipping INSERT/DELETE to the host machine, remote ordered-store
// accesses, and transaction shipping (section 6.5). The Calvin baseline
// runs all of its traffic through it at IPoIB latency.
#ifndef SRC_RDMA_MESSAGING_H_
#define SRC_RDMA_MESSAGING_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace drtm {
namespace rdma {

struct Message {
  int from = -1;
  uint32_t kind = 0;
  uint64_t rpc_id = 0;  // 0 = one-way
  std::vector<uint8_t> payload;
};

// One receive queue per node. Handlers run on whichever thread calls
// Poll() — higher layers dedicate a server thread per node.
class MessageQueue {
 public:
  void Push(Message msg);

  // Pops one message if available; returns false when empty.
  bool TryPop(Message* out);

  // Blocks up to timeout_us for a message.
  bool PopWait(Message* out, uint64_t timeout_us);

  size_t ApproxSize();

  void Shutdown();
  bool IsShutdown();

  // Clears the shutdown flag and drops queued messages (node restart).
  void Reset();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool shutdown_ = false;
};

}  // namespace rdma
}  // namespace drtm

#endif  // SRC_RDMA_MESSAGING_H_
