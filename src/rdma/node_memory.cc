#include "src/rdma/node_memory.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace drtm {
namespace rdma {

NodeMemory::NodeMemory(int node_id, size_t capacity)
    : node_id_(node_id), capacity_(capacity) {
  base_ = std::make_unique<uint8_t[]>(capacity);
  std::memset(base_.get(), 0, capacity);
}

uint64_t NodeMemory::Allocate(size_t bytes, size_t alignment) {
  size_t current = next_.load(std::memory_order_relaxed);
  while (true) {
    const size_t aligned = (current + alignment - 1) & ~(alignment - 1);
    const size_t end = aligned + bytes;
    if (end > capacity_) {
      std::fprintf(stderr,
                   "NodeMemory[%d]: out of registered memory "
                   "(want %zu, used %zu / %zu)\n",
                   node_id_, bytes, current, capacity_);
      std::abort();
    }
    if (next_.compare_exchange_weak(current, end,
                                    std::memory_order_relaxed)) {
      return aligned;
    }
  }
}

}  // namespace rdma
}  // namespace drtm
