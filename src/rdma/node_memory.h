// Per-node RDMA-registered memory.
//
// Each simulated machine owns one contiguous registered region (the paper
// uses 1 GB hugepages for the same reason: remote offsets must map to
// physically resolvable addresses). Remote references are (node id,
// 48-bit offset) pairs; the store layer embeds those offsets in its
// header slots.
#ifndef SRC_RDMA_NODE_MEMORY_H_
#define SRC_RDMA_NODE_MEMORY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace drtm {
namespace rdma {

class NodeMemory {
 public:
  NodeMemory(int node_id, size_t capacity);

  NodeMemory(const NodeMemory&) = delete;
  NodeMemory& operator=(const NodeMemory&) = delete;

  int node_id() const { return node_id_; }
  size_t capacity() const { return capacity_; }
  size_t used() const { return next_.load(std::memory_order_relaxed); }

  uint8_t* base() { return base_.get(); }
  const uint8_t* base() const { return base_.get(); }

  // Bump allocation of registered memory; never freed individually
  // (stores manage their own free lists inside their allocations).
  // Returns the offset of the new block. Aborts the process on
  // exhaustion — region sizing is a configuration decision.
  uint64_t Allocate(size_t bytes, size_t alignment = 64);

  void* At(uint64_t offset) { return base_.get() + offset; }
  const void* At(uint64_t offset) const { return base_.get() + offset; }

  uint64_t OffsetOf(const void* ptr) const {
    return static_cast<uint64_t>(static_cast<const uint8_t*>(ptr) -
                                 base_.get());
  }

  bool Contains(const void* ptr) const {
    const uint8_t* p = static_cast<const uint8_t*>(ptr);
    return p >= base_.get() && p < base_.get() + capacity_;
  }

 private:
  int node_id_;
  size_t capacity_;
  std::unique_ptr<uint8_t[]> base_;
  std::atomic<size_t> next_{0};
};

}  // namespace rdma
}  // namespace drtm

#endif  // SRC_RDMA_NODE_MEMORY_H_
