#include "src/rdma/phase_scatter.h"

#include <algorithm>

#include "src/stat/metrics.h"

namespace drtm {
namespace rdma {

PhaseScatter::PhaseScatter(Fabric& fabric, SendQueue::Config config,
                           const stat::ScatterPhaseIds* ids)
    : fabric_(fabric), config_(config), ids_(ids) {}

SendQueue& PhaseScatter::To(int target) {
  for (auto& [node, queue] : queues_) {
    if (node == target) {
      return *queue;
    }
  }
  queues_.emplace_back(target,
                       std::make_unique<SendQueue>(fabric_, target, config_));
  return *queues_.back().second;
}

size_t PhaseScatter::pending() const {
  size_t n = 0;
  for (const auto& [node, queue] : queues_) {
    n += queue->pending();
  }
  return n;
}

size_t PhaseScatter::pending_targets() const {
  size_t n = 0;
  for (const auto& [node, queue] : queues_) {
    if (queue->pending() > 0) {
      ++n;
    }
  }
  return n;
}

size_t PhaseScatter::Gather(std::vector<ScatterCompletion>* out) {
  // Scatter: ring every target's doorbell back to back without waiting.
  // Each submission stamps its own completion deadline, so the batches'
  // modeled in-flight windows overlap in wall time.
  size_t wqes = 0;
  size_t doorbells = 0;
  uint64_t sum_batch_ns = 0;
  uint64_t max_batch_ns = 0;
  for (auto& [node, queue] : queues_) {
    const SendQueue::Submission sub = queue->SubmitAsync();
    if (sub.wqes == 0) {
      continue;
    }
    wqes += sub.wqes;
    ++doorbells;
    sum_batch_ns += sub.batch_ns;
    max_batch_ns = std::max(max_batch_ns, sub.batch_ns);
  }
  if (wqes == 0) {
    return 0;
  }
  // Gather: complete each batch (waiting only for its own remaining
  // deadline — everything after the longest one is already past) and
  // drain its completions tagged with the target.
  for (auto& [node, queue] : queues_) {
    queue->CompleteSubmission();
    Completion comp;
    while (queue->PollCompletions(&comp, 1) == 1) {
      if (out != nullptr) {
        out->push_back(ScatterCompletion{node, comp});
      }
    }
  }
  if (ids_ != nullptr) {
    stat::Registry& reg = stat::Registry::Global();
    reg.Add(ids_->rounds);
    reg.Add(ids_->doorbells, doorbells);
    reg.Add(ids_->wqes, wqes);
    reg.Add(ids_->overlap_saved_ns, sum_batch_ns - max_batch_ns);
    reg.Record(ids_->targets, doorbells);
  }
  return wqes;
}

}  // namespace rdma
}  // namespace drtm
