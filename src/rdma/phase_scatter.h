// Cross-node scatter-gather phase engine.
//
// A PhaseScatter owns one SendQueue per target node touched by one
// transaction phase. Callers post WQEs with To(node).Post*(...), then
// call Gather(): every target's doorbell is rung *asynchronously* (one
// per target, all submitted before any completion is polled), so the
// batches are in flight concurrently and the phase pays roughly the
// longest batch's modeled latency instead of the per-target sum — a
// transaction touching k nodes sees ~1 overlapped round trip where the
// serial per-target loop paid k (ROADMAP "overlap doorbells across
// different target nodes").
//
// Semantics: within one target, WQEs execute in post order and complete
// FIFO, exactly as SendQueue guarantees; across targets there is no
// ordering (real QPs to different nodes promise none either). Gather()
// reports completions grouped per target, in each target's post order,
// with the target id attached. A dead target's WQEs complete with
// kNodeDown individually, like the scalar verbs.
//
// A PhaseScatter is owned by one initiator thread, like the SendQueues
// it wraps. Latency accounting for the overlap lives in the SendQueue
// deadline mechanism (SubmitAsync/CompleteSubmission); the saved time
// (sum - max of the batch latencies) is recorded per phase via the
// stat::ScatterPhaseIds counter set handed to the constructor.
#ifndef SRC_RDMA_PHASE_SCATTER_H_
#define SRC_RDMA_PHASE_SCATTER_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "src/rdma/verbs_batch.h"
#include "src/stat/scatter_stats.h"

namespace drtm {
namespace rdma {

struct ScatterCompletion {
  int target = -1;
  Completion comp;
};

class PhaseScatter {
 public:
  // `ids` selects the per-phase counter set (stat/scatter_stats.h);
  // nullptr disables phase accounting (the rdma.batch.* metrics still
  // move through the underlying SendQueues).
  PhaseScatter(Fabric& fabric, SendQueue::Config config,
               const stat::ScatterPhaseIds* ids = nullptr);

  PhaseScatter(const PhaseScatter&) = delete;
  PhaseScatter& operator=(const PhaseScatter&) = delete;

  // The send queue for `target`, created on first use. Queues persist
  // across Gather() rounds, so wr_ids stay unique per target.
  SendQueue& To(int target);

  // WQEs posted across all targets but not yet gathered.
  size_t pending() const;
  // Distinct targets with at least one pending WQE.
  size_t pending_targets() const;

  // Rings one async doorbell per target that has pending WQEs — all of
  // them before polling anything — then completes every batch and
  // appends each target's completions (FIFO within the target, targets
  // in first-use order) to *out. Returns the number of WQEs gathered.
  size_t Gather(std::vector<ScatterCompletion>* out);

 private:
  Fabric& fabric_;
  const SendQueue::Config config_;
  const stat::ScatterPhaseIds* ids_;
  // First-use order; small per-phase cardinality makes linear scans
  // cheaper than a hash map.
  std::vector<std::pair<int, std::unique_ptr<SendQueue>>> queues_;
};

}  // namespace rdma
}  // namespace drtm

#endif  // SRC_RDMA_PHASE_SCATTER_H_
