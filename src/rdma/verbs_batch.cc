#include "src/rdma/verbs_batch.h"

#include <algorithm>
#include <atomic>

#include "src/common/clock.h"
#include "src/stat/metrics.h"

namespace drtm {
namespace rdma {

namespace {

struct BatchIds {
  uint32_t doorbells = 0;
  uint32_t wqes = 0;
  uint32_t size = 0;
  uint32_t batch_ns = 0;
  uint32_t inflight = 0;
  uint32_t outstanding = 0;
};

const BatchIds& Batch() {
  static const BatchIds ids = [] {
    stat::Registry& reg = stat::Registry::Global();
    BatchIds b;
    b.doorbells = reg.CounterId("rdma.batch.doorbells");
    b.wqes = reg.CounterId("rdma.batch.wqes");
    b.size = reg.TimerId("rdma.batch.size");
    b.batch_ns = reg.TimerId("rdma.batch_ns");
    b.inflight = reg.TimerId("rdma.inflight");
    b.outstanding = reg.GaugeId("rdma.sendq.outstanding");
    return b;
  }();
  return ids;
}

// Outstanding-window occupancy, shared by every SendQueue in the
// process so admission control sees the node's aggregate NIC pressure,
// not one queue's. Targets hash into a fixed slot array; with the
// repo-wide 64-node ceiling the mapping is collision-free.
constexpr int kOutstandingSlots = 256;
std::atomic<int64_t> g_outstanding[kOutstandingSlots];
std::atomic<int64_t> g_outstanding_total{0};

void TrackOutstanding(int target, int64_t delta) {
  g_outstanding[target & (kOutstandingSlots - 1)].fetch_add(
      delta, std::memory_order_relaxed);
  g_outstanding_total.fetch_add(delta, std::memory_order_relaxed);
}

}  // namespace

int64_t SendQueue::OutstandingForTarget(int target) {
  return g_outstanding[target & (kOutstandingSlots - 1)].load(
      std::memory_order_relaxed);
}

SendQueue::SendQueue(Fabric& fabric, int target, Config config)
    : fabric_(fabric), target_(target), config_(config) {
  wqes_.reserve(std::max<size_t>(config_.max_outstanding, 1));
}

SendQueue::~SendQueue() {
  // WQEs abandoned without a doorbell still left the window; give their
  // occupancy back or the admission signal drifts upward forever.
  const int64_t abandoned =
      static_cast<int64_t>(wqes_.size() + submitted_.size());
  if (abandoned != 0) {
    TrackOutstanding(target_, -abandoned);
  }
}

WrId SendQueue::Enqueue(Wqe wqe) {
  wqe.wr_id = next_wr_id_++;
  const WrId id = wqe.wr_id;
  wqes_.push_back(wqe);
  TrackOutstanding(target_, 1);
  if (wqes_.size() >= std::max<size_t>(config_.max_outstanding, 1)) {
    RingDoorbell();
  }
  return id;
}

WrId SendQueue::PostRead(uint64_t offset, void* dst, size_t len) {
  Wqe wqe{};
  wqe.opcode = Opcode::kRead;
  wqe.offset = offset;
  wqe.dst = dst;
  wqe.len = len;
  return Enqueue(wqe);
}

WrId SendQueue::PostWrite(uint64_t offset, const void* src, size_t len) {
  Wqe wqe{};
  wqe.opcode = Opcode::kWrite;
  wqe.offset = offset;
  wqe.src = src;
  wqe.len = len;
  return Enqueue(wqe);
}

WrId SendQueue::PostCas(uint64_t offset, uint64_t expected, uint64_t desired) {
  Wqe wqe{};
  wqe.opcode = Opcode::kCas;
  wqe.offset = offset;
  wqe.expected = expected;
  wqe.desired = desired;
  return Enqueue(wqe);
}

WrId SendQueue::PostFaa(uint64_t offset, uint64_t delta) {
  Wqe wqe{};
  wqe.opcode = Opcode::kFaa;
  wqe.offset = offset;
  wqe.delta = delta;
  return Enqueue(wqe);
}

size_t SendQueue::RingDoorbell() {
  // The synchronous path is exactly an async submission completed on the
  // spot: the deadline is stamped now + batch_ns and the spin happens
  // immediately, so the whole modeled latency is paid here.
  const Submission sub = SubmitAsync();
  CompleteSubmission();
  return sub.wqes;
}

SendQueue::Submission SendQueue::SubmitAsync() {
  if (submission_pending()) {
    CompleteSubmission();  // one async batch outstanding at a time
  }
  if (wqes_.empty()) {
    return Submission{};
  }
  const LatencyModel& lat = fabric_.latency();

  // One doorbell pays the largest base cost among the batched opcodes
  // (the NIC executes the batch back to back; the slowest opcode's round
  // trip dominates), plus every WQE's per-byte payload cost.
  uint64_t max_base_ns = 0;
  uint64_t payload_ns = 0;
  for (const Wqe& wqe : wqes_) {
    switch (wqe.opcode) {
      case Opcode::kRead:
        max_base_ns = std::max(max_base_ns, lat.read_base_ns);
        payload_ns += uint64_t(lat.read_per_byte_ns * double(wqe.len));
        break;
      case Opcode::kWrite:
        max_base_ns = std::max(max_base_ns, lat.write_base_ns);
        payload_ns += uint64_t(lat.write_per_byte_ns * double(wqe.len));
        break;
      case Opcode::kCas:
        max_base_ns = std::max(max_base_ns, lat.cas_ns);
        break;
      case Opcode::kFaa:
        max_base_ns = std::max(max_base_ns, lat.faa_ns);
        break;
    }
  }
  Submission sub;
  sub.wqes = wqes_.size();
  sub.batch_ns = lat.BatchNs(max_base_ns, payload_ns, sub.wqes);
  submitted_ = std::move(wqes_);
  wqes_.clear();
  submitted_batch_ns_ = sub.batch_ns;
  submit_deadline_ns_ = MonotonicNanos() + sub.batch_ns;
  return sub;
}

void SendQueue::CompleteSubmission() {
  if (submitted_.empty()) {
    return;
  }
  // Wait out whatever is left of the batch's modeled in-flight window.
  // Doorbells rung on other queues since SubmitAsync() consumed real
  // time, so overlapped batches mostly find their deadline already past.
  const uint64_t now = MonotonicNanos();
  if (submit_deadline_ns_ > now) {
    SpinFor(submit_deadline_ns_ - now);
  }
  ExecuteSubmitted();
}

void SendQueue::ExecuteSubmitted() {
  // Execute the WQEs in post order. Reliable-connection semantics: the
  // first WQE that fails moves the QP to the error state, and every
  // WQE behind it completes flushed (kNodeDown) WITHOUT executing.
  // Later-posted ops must not land when an earlier one did not — e.g.
  // a commit's unlock WRITE must never apply if its write-back WRITE
  // was lost, or the failure handler's write-back retry would re-lock
  // the entry after the stale unlock and leak the lock forever. The
  // next doorbell starts from a re-armed QP (transient faults do not
  // poison the queue for good; a dead node keeps failing via IsAlive).
  const size_t submitted = submitted_.size();
  bool errored = false;
  for (const Wqe& wqe : submitted_) {
    Completion comp;
    comp.wr_id = wqe.wr_id;
    if (errored) {
      comp.status = OpStatus::kNodeDown;
      completions_.push_back(comp);
      continue;
    }
    switch (wqe.opcode) {
      case Opcode::kRead:
        comp.status = fabric_.ExecuteRead(target_, wqe.offset, wqe.dst,
                                          wqe.len);
        break;
      case Opcode::kWrite:
        comp.status = fabric_.ExecuteWrite(target_, wqe.offset, wqe.src,
                                           wqe.len);
        break;
      case Opcode::kCas:
        comp.status = fabric_.ExecuteCas(target_, wqe.offset, wqe.expected,
                                         wqe.desired, &comp.observed);
        break;
      case Opcode::kFaa:
        comp.status = fabric_.ExecuteFaa(target_, wqe.offset, wqe.delta,
                                         &comp.observed);
        break;
    }
    if (comp.status != OpStatus::kOk) {
      errored = true;
    }
    completions_.push_back(comp);
  }
  submitted_.clear();
  TrackOutstanding(target_, -static_cast<int64_t>(submitted));

  stat::Registry& reg = stat::Registry::Global();
  reg.Add(Batch().doorbells);
  reg.Add(Batch().wqes, submitted);
  reg.Record(Batch().size, submitted);
  reg.Record(Batch().batch_ns, submitted_batch_ns_);
  reg.Record(Batch().inflight, completions_.size());
  reg.GaugeSet(Batch().outstanding,
               g_outstanding_total.load(std::memory_order_relaxed));
}

size_t SendQueue::PollCompletions(Completion* out, size_t max) {
  size_t n = 0;
  while (n < max && !completions_.empty()) {
    out[n++] = completions_.front();
    completions_.pop_front();
  }
  return n;
}

std::vector<Completion> SendQueue::Flush() {
  RingDoorbell();
  std::vector<Completion> all(completions_.begin(), completions_.end());
  completions_.clear();
  return all;
}

}  // namespace rdma
}  // namespace drtm
