// Doorbell-batched asynchronous verbs (paper section 6.3, FaRM-style).
//
// A SendQueue models one RDMA send queue between an initiator thread and
// a target node. PostRead/PostWrite/PostCas/PostFaa enqueue work-queue
// entries (WQEs) without touching the network; RingDoorbell() submits
// every posted WQE as a single batch, charging the latency model one
// doorbell (the largest base cost among the batched opcodes) plus the
// summed per-byte payload cost and a small per-WQE issue overhead —
// instead of one full base round trip per op as the scalar verbs do.
// PollCompletions() drains the completion queue in FIFO post order.
//
// Semantics mirror the hardware contract DrTM relies on:
//   * WQEs execute in post order within one send queue (in-order QP).
//   * Each WQE still executes through the HTM strong-access path
//     (Fabric::Execute*), so strong atomicity and conflicting-HTM-abort
//     behaviour are preserved *per op*, exactly as for scalar verbs. The
//     batch is NOT atomic as a unit; only individual WQEs are.
//   * RDMA atomics (CAS/FAA) serialize on the target NIC latch at both
//     AtomicLevel settings, same as the scalar path.
//   * Completions are delivered exactly once, in submission order; a
//     WQE against a dead node completes with OpStatus::kNodeDown.
//   * Reliable-connection error semantics: the first WQE of a batch
//     that fails errors the queue, and every WQE posted behind it in
//     the same batch completes with kNodeDown without executing (the
//     flush a real RC QP performs when it enters the error state). The
//     next doorbell submits on a re-armed queue.
//
// Posting past the configured max-outstanding window rings the doorbell
// automatically (a full hardware send queue forces a flush). A SendQueue
// is owned by one initiator thread and is not thread-safe, like a real
// verbs QP.
#ifndef SRC_RDMA_VERBS_BATCH_H_
#define SRC_RDMA_VERBS_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/rdma/fabric.h"

namespace drtm {
namespace rdma {

using WrId = uint64_t;

struct Completion {
  WrId wr_id = 0;
  OpStatus status = OpStatus::kOk;
  // Pre-op value for CAS/FAA WQEs; undefined for READ/WRITE.
  uint64_t observed = 0;
};

class SendQueue {
 public:
  struct Config {
    // Auto-doorbell threshold: posting the WQE that fills the window
    // submits the batch, modeling a bounded hardware send queue.
    size_t max_outstanding = 16;
  };

  SendQueue(Fabric& fabric, int target, Config config);
  SendQueue(Fabric& fabric, int target) : SendQueue(fabric, target, Config{}) {}
  ~SendQueue();

  SendQueue(const SendQueue&) = delete;
  SendQueue& operator=(const SendQueue&) = delete;

  // Process-wide count of WQEs posted toward `target` but not yet
  // executed (pending + async-submitted, summed over every SendQueue).
  // This is the NIC-side congestion signal admission control samples;
  // the process-wide total is also exported as the gauge
  // "rdma.sendq.outstanding", refreshed at each doorbell.
  static int64_t OutstandingForTarget(int target);

  int target() const { return target_; }

  // --- posting --------------------------------------------------------------
  // Each returns the WQE's wr_id; the op has NOT executed yet. Buffers
  // must stay valid until the matching completion is polled.
  WrId PostRead(uint64_t offset, void* dst, size_t len);
  WrId PostWrite(uint64_t offset, const void* src, size_t len);
  // The pre-swap / pre-add value is reported via Completion::observed.
  WrId PostCas(uint64_t offset, uint64_t expected, uint64_t desired);
  WrId PostFaa(uint64_t offset, uint64_t delta);

  // --- submission and completion --------------------------------------------
  // Submit all pending WQEs as one doorbell; executes them in post order
  // and queues one completion per WQE. Returns the number submitted
  // (0 for an empty queue, a no-op).
  size_t RingDoorbell();

  // Asynchronous submission: rings the doorbell but does not wait out
  // the batch's modeled latency. The batch's completion deadline is
  // stamped now + BatchNs(...), so doorbells rung on *different* queues
  // back to back overlap in time — a k-target phase pays the longest
  // batch's latency, not the sum (PhaseScatter drives this). WQEs
  // execute (and completions appear) only at CompleteSubmission().
  // At most one async batch is outstanding; submitting again first
  // completes the previous batch.
  struct Submission {
    size_t wqes = 0;        // 0: nothing was pending, no doorbell rung
    uint64_t batch_ns = 0;  // modeled latency charged to this doorbell
  };
  Submission SubmitAsync();

  // Spins out whatever remains of the outstanding async batch's deadline
  // (nothing, if enough wall time has passed while other queues' batches
  // were in flight), then executes its WQEs in post order and queues
  // their completions. No-op without an outstanding submission.
  void CompleteSubmission();

  bool submission_pending() const { return !submitted_.empty(); }

  // Pop up to `max` completions in FIFO submission order. Each
  // completion is delivered exactly once.
  size_t PollCompletions(Completion* out, size_t max);

  // RingDoorbell + poll everything outstanding, in order.
  std::vector<Completion> Flush();

  // WQEs posted but not yet submitted.
  size_t pending() const { return wqes_.size(); }
  // Completions produced but not yet polled.
  size_t inflight() const { return completions_.size(); }

 private:
  enum class Opcode : uint8_t { kRead, kWrite, kCas, kFaa };

  struct Wqe {
    Opcode opcode;
    WrId wr_id;
    uint64_t offset;
    void* dst;         // kRead
    const void* src;   // kWrite
    size_t len;        // kRead / kWrite
    uint64_t expected;  // kCas
    uint64_t desired;   // kCas
    uint64_t delta;     // kFaa
  };

  WrId Enqueue(Wqe wqe);
  void ExecuteSubmitted();

  Fabric& fabric_;
  const int target_;
  const Config config_;
  WrId next_wr_id_ = 1;
  std::vector<Wqe> wqes_;
  // The outstanding async batch (SubmitAsync) and its completion
  // deadline on the MonotonicNanos clock.
  std::vector<Wqe> submitted_;
  uint64_t submitted_batch_ns_ = 0;
  uint64_t submit_deadline_ns_ = 0;
  std::deque<Completion> completions_;
};

}  // namespace rdma
}  // namespace drtm

#endif  // SRC_RDMA_VERBS_BATCH_H_
