#include "src/replay/recorder.h"

#include <algorithm>
#include <optional>

#include "src/stat/metrics.h"

namespace drtm {
namespace replay {
namespace {

struct CounterIds {
  uint32_t events;
  uint32_t dropped;
  uint32_t txn_commits;
  uint32_t gate_denied;
  uint32_t ops;
};

const CounterIds& Ids() {
  static const CounterIds ids = [] {
    stat::Registry& reg = stat::Registry::Global();
    CounterIds c;
    c.events = reg.CounterId("replay.events");
    c.dropped = reg.CounterId("replay.dropped");
    c.txn_commits = reg.CounterId("replay.txn_commits");
    c.gate_denied = reg.CounterId("replay.gate_denied");
    c.ops = reg.CounterId("replay.ops");
    return c;
  }();
  return ids;
}

// Thread-local recording state: the op context the worker loop set up,
// the commit the transaction layer staged inside the current HTM region,
// and the replay gate's remaining budget.
struct ThreadState {
  uint64_t ring_epoch = 0;
  void* ring = nullptr;  // Recorder::ThreadRing*, cast at use

  bool in_op = false;
  int node = -1;
  int worker = -1;
  uint64_t op = 0;

  struct Staged {
    uint64_t txn_id = 0;
    uint64_t wal_digest = 0;
    std::vector<WriteRec> writes;
  };
  std::optional<Staged> staged;

  uint64_t budget = 0;
};

ThreadState& Tls() {
  static thread_local ThreadState state;
  return state;
}

}  // namespace

struct Recorder::ThreadRing {
  size_t capacity = 0;
  size_t drain_cursor = 0;
  uint64_t dropped = 0;
  std::vector<ReplayEvent> events;
};

uint64_t WalUpdateDigest(int node, int table, uint64_t key, uint32_t version,
                         const void* value, size_t len) {
  uint64_t h = FnvMix(kFnvBasis, static_cast<uint64_t>(node));
  h = FnvMix(h, static_cast<uint64_t>(table));
  h = FnvMix(h, key);
  h = FnvMix(h, version);
  h = FnvMix(h, static_cast<uint64_t>(len));
  return Fnv1a(h, value, len);
}

Recorder& Recorder::Global() {
  static Recorder recorder;
  return recorder;
}

void Recorder::Arm(const Config& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  rings_.clear();
  seq_.store(0, std::memory_order_relaxed);
  arm_epoch_.fetch_add(1, std::memory_order_acq_rel);
  armed_.store(true, std::memory_order_release);
  htm::ReplayHooks hooks;
  hooks.on_publish = &Recorder::OnPublish;
  // The abort hook is always installed — even with record_aborts off it
  // must clear a staged commit whose region rolled back, or the stale
  // record would be mis-attributed to the next unstaged publish.
  hooks.on_abort = &Recorder::OnAbort;
  htm::SetReplayHooks(hooks);
}

void Recorder::Disarm() {
  htm::SetReplayHooks(htm::ReplayHooks{});
  armed_.store(false, std::memory_order_release);
}

Recorder::ThreadRing* Recorder::Ring() {
  ThreadState& tls = Tls();
  // Fast path, lock-free: the epoch only advances at Arm() while the
  // workload threads are quiesced, so a matching tag means the cached
  // ring pointer is current.
  if (tls.ring != nullptr &&
      tls.ring_epoch == arm_epoch_.load(std::memory_order_acquire)) {
    return static_cast<ThreadRing*>(tls.ring);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto ring = std::make_unique<ThreadRing>();
  ring->capacity = config_.ring_capacity;
  ring->events.reserve(std::min(ring->capacity, size_t{1} << 12));
  ThreadRing* raw = ring.get();
  rings_.push_back(std::move(ring));
  tls.ring = raw;
  tls.ring_epoch = arm_epoch_.load(std::memory_order_relaxed);
  // Fresh arm epoch: the previous run's thread-local op context and
  // staged commit are stale.
  tls.in_op = false;
  tls.staged.reset();
  tls.budget = 0;
  return raw;
}

void Recorder::PushEvent(ThreadRing* ring, ReplayEvent event) {
  if (ring->events.size() >= ring->capacity) {
    ++ring->dropped;
    stat::Registry::Global().Add(Ids().dropped);
    return;
  }
  ring->events.push_back(std::move(event));
  stat::Registry::Global().Add(Ids().events);
}

void Recorder::BeginOp(int node, int worker, uint64_t op) {
  if (!armed()) {
    return;
  }
  Ring();  // ensure the ring + fresh tls binding exist
  ThreadState& tls = Tls();
  tls.in_op = true;
  tls.node = node;
  tls.worker = worker;
  tls.op = op;
  tls.staged.reset();
  stat::Registry::Global().Add(Ids().ops);
}

void Recorder::EndOp(bool committed) {
  if (!armed()) {
    return;
  }
  ThreadRing* ring = Ring();
  ThreadState& tls = Tls();
  ReplayEvent e;
  e.seq = NextSeq();
  e.kind = EventKind::kOpEnd;
  e.node = tls.node;
  e.worker = tls.worker;
  e.op = tls.op;
  e.aux = committed ? 1 : 0;
  PushEvent(ring, std::move(e));
  tls.in_op = false;
  tls.staged.reset();
}

void Recorder::StageCommit(uint64_t txn_id, std::vector<WriteRec> writes,
                           uint64_t wal_digest) {
  if (!armed()) {
    return;
  }
  // Deliberately touches only thread-local state: this runs inside the
  // HTM region, where taking the ring mutex would be abort-unsafe. The
  // publish hook (commit phase, no abort possible) establishes the ring.
  ThreadState& tls = Tls();
  tls.staged.emplace();
  tls.staged->txn_id = txn_id;
  tls.staged->wal_digest = wal_digest;
  tls.staged->writes = std::move(writes);
}

void Recorder::RecordFallbackCommit(uint64_t txn_id,
                                    std::vector<WriteRec> writes,
                                    uint64_t wal_digest) {
  if (!armed()) {
    return;
  }
  ThreadRing* ring = Ring();
  ThreadState& tls = Tls();
  ReplayEvent e;
  e.seq = NextSeq();  // 2PL locks are still held: conflict-ordered
  e.kind = EventKind::kTxnCommit;
  e.node = tls.in_op ? tls.node : -1;
  e.worker = tls.in_op ? tls.worker : -1;
  e.op = tls.in_op ? tls.op : 0;
  e.txn_id = txn_id;
  e.wal_digest = wal_digest;
  e.writes = std::move(writes);
  PushEvent(ring, std::move(e));
  stat::Registry::Global().Add(Ids().txn_commits);
  if (config_.replay_gate && tls.budget > 0) {
    --tls.budget;
  }
}

void Recorder::RecordLockRelease(uint64_t txn_id, bool abandoned) {
  if (!armed()) {
    return;
  }
  ThreadRing* ring = Ring();
  ThreadState& tls = Tls();
  ReplayEvent e;
  e.seq = NextSeq();
  e.kind = EventKind::kLockRelease;
  e.node = tls.in_op ? tls.node : -1;
  e.worker = tls.in_op ? tls.worker : -1;
  e.op = tls.in_op ? tls.op : 0;
  e.txn_id = txn_id;
  e.aux = abandoned ? 1 : 0;
  PushEvent(ring, std::move(e));
}

void Recorder::RecordRpcApply(const char* op_name, int node, int table,
                              uint64_t key, bool applied) {
  if (!armed()) {
    return;
  }
  ThreadRing* ring = Ring();
  ReplayEvent e;
  e.seq = NextSeq();
  e.kind = EventKind::kRpcApply;
  e.node = node;  // the *serving* node, not a worker-op context
  e.aux = applied ? 1 : 0;
  e.point = op_name;
  e.writes.push_back(WriteRec{node, table, key, 0});
  PushEvent(ring, std::move(e));
}

void Recorder::RecordChaosFiring(const std::string& point, uint64_t arrival,
                                 int node) {
  if (!armed()) {
    return;
  }
  ThreadRing* ring = Ring();
  ThreadState& tls = Tls();
  ReplayEvent e;
  e.seq = NextSeq();
  e.kind = EventKind::kChaosFiring;
  e.node = tls.in_op ? tls.node : static_cast<int32_t>(node);
  e.worker = tls.in_op ? tls.worker : -1;
  e.op = tls.in_op ? tls.op : 0;
  e.aux = arrival;
  e.point = point;
  PushEvent(ring, std::move(e));
}

void Recorder::SetCommitBudget(uint64_t budget) {
  Ring();
  Tls().budget = budget;
}

bool Recorder::CommitAllowed() {
  if (!armed() || !config_.replay_gate) {
    return true;
  }
  ThreadState& tls = Tls();
  if (tls.ring == nullptr ||
      tls.ring_epoch != arm_epoch_.load(std::memory_order_acquire)) {
    return true;  // thread never joined this replay run
  }
  if (tls.budget > 0) {
    return true;
  }
  stat::Registry::Global().Add(Ids().gate_denied);
  return false;
}

void Recorder::OnPublish(const htm::PublishedLine* lines, size_t count,
                         const VersionTable* table) {
  (void)table;
  Recorder& rec = Global();
  if (!rec.armed()) {
    return;
  }
  ThreadState& tls = Tls();
  // Take the staged commit *before* establishing the ring: the ring's
  // slow path resets stale thread-local state (including `staged`), and
  // StageCommit deliberately does not touch the ring (abort safety), so
  // this publish may be the thread's first ring access of the epoch.
  std::optional<ThreadState::Staged> staged = std::move(tls.staged);
  tls.staged.reset();
  ThreadRing* ring = rec.Ring();
  ReplayEvent e;
  e.seq = rec.NextSeq();  // inside the critical section: conflict-ordered
  e.lines.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    e.lines.push_back(LineRec{lines[i].slot, lines[i].version});
  }
  if (staged.has_value()) {
    e.kind = EventKind::kTxnCommit;
    e.node = tls.in_op ? tls.node : -1;
    e.worker = tls.in_op ? tls.worker : -1;
    e.op = tls.in_op ? tls.op : 0;
    e.txn_id = staged->txn_id;
    e.wal_digest = staged->wal_digest;
    e.writes = std::move(staged->writes);
    stat::Registry::Global().Add(Ids().txn_commits);
    if (rec.config_.replay_gate && tls.budget > 0) {
      --tls.budget;
    }
  } else {
    // Unstaged region: a server-thread RPC apply, a fallback pending-op
    // mini-region, recovery redo. Context for the timeline, never
    // validated.
    e.kind = EventKind::kHtmCommit;
    e.node = tls.in_op ? tls.node : -1;
    e.worker = tls.in_op ? tls.worker : -1;
    e.op = tls.in_op ? tls.op : 0;
  }
  rec.PushEvent(ring, std::move(e));
}

void Recorder::OnAbort(unsigned status) {
  Recorder& rec = Global();
  if (!rec.armed()) {
    return;
  }
  ThreadState& tls = Tls();
  tls.staged.reset();  // an aborted region's staged commit never publishes
  if (!rec.config_.record_aborts || !tls.in_op) {
    return;  // opt-in only, and server/helper thread aborts are skipped
  }
  ThreadRing* ring = rec.Ring();
  ReplayEvent e;
  e.seq = rec.NextSeq();
  e.kind = EventKind::kHtmAbort;
  e.node = tls.node;
  e.worker = tls.worker;
  e.op = tls.op;
  e.aux = status;
  rec.PushEvent(ring, std::move(e));
}

std::vector<ReplayEvent> Recorder::DrainThread() {
  ThreadRing* ring = Ring();
  std::vector<ReplayEvent> out(ring->events.begin() + ring->drain_cursor,
                               ring->events.end());
  ring->drain_cursor = ring->events.size();
  return out;
}

void Recorder::Merge(ReplayLog* log) {
  std::lock_guard<std::mutex> lock(mu_);
  log->events.clear();
  log->dropped = 0;
  for (const auto& ring : rings_) {
    log->dropped += ring->dropped;
    log->events.insert(log->events.end(), ring->events.begin(),
                       ring->events.end());
  }
  std::stable_sort(
      log->events.begin(), log->events.end(),
      [](const ReplayEvent& a, const ReplayEvent& b) { return a.seq < b.seq; });
  log->Reseal();
}

uint64_t Recorder::dropped() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    total += ring->dropped;
  }
  return total;
}

}  // namespace replay
}  // namespace drtm
