// Record-mode event capture (src/replay).
//
// A process-global singleton that, when armed, collects replay events
// into per-thread bounded ring buffers (overflow is counted in
// `replay.dropped`, never silent) and merges them into a totally ordered
// ReplayLog. Sequence numbers for committed regions are allocated inside
// the seqlock critical section (htm publish hook / fallback pre-release
// tap), so the merged order of two conflicting commits is the order they
// serialized in.
//
// The same singleton drives replay mode: a thread-local commit budget
// ("gate") lets the replayer force an op that aborted during recording
// to abort again — the transaction layer consults CommitAllowed() after
// the body runs and user-aborts when the budget is exhausted.
//
// Disarmed cost on the txn/htm fast paths: one relaxed atomic load.
#ifndef SRC_REPLAY_RECORDER_H_
#define SRC_REPLAY_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/htm/htm.h"
#include "src/replay/replay_log.h"

namespace drtm {
namespace replay {

// Order-insensitive digest of one WAL update (the per-commit wal_digest
// is the wrapping sum of these, so the HTM path — which logs local
// writes in program order — and the fallback path — which gathers them
// in sorted ref order — agree on identical logical updates).
uint64_t WalUpdateDigest(int node, int table, uint64_t key, uint32_t version,
                         const void* value, size_t len);

class Recorder {
 public:
  struct Config {
    // Events buffered per thread before overflow drops (counted).
    size_t ring_capacity = size_t{1} << 16;
    // Arm the replay commit gate (replay mode). Record mode leaves the
    // gate open: every commit is allowed and budget is not consumed.
    bool replay_gate = false;
    // Record kHtmAbort events. Off by default: abort *counts* depend on
    // spin/backoff timing even when the committed schedule is
    // deterministic, and the determinism gate promises byte-identical
    // logs for a fixed seed.
    bool record_aborts = false;
  };

  static Recorder& Global();

  // Arm/disarm while workload threads are quiesced. Arm resets the
  // sequence counter, drops previously merged rings and installs the
  // htm publish/abort hooks; Disarm removes the hooks but keeps the
  // rings for Merge().
  void Arm(const Config& config);
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  // --- worker-op context (thread-local) ---
  void BeginOp(int node, int worker, uint64_t op);
  // Emits kOpEnd (aux = committed) and clears the op context.
  void EndOp(bool committed);

  // --- transaction-layer taps ---
  // Called inside the HTM region after the WAL is staged: the publish
  // hook turns the staged record into a kTxnCommit event carrying the
  // critical-section sequence number.
  void StageCommit(uint64_t txn_id, std::vector<WriteRec> writes,
                   uint64_t wal_digest);
  // Fallback commit: called with every 2PL lock still held.
  void RecordFallbackCommit(uint64_t txn_id, std::vector<WriteRec> writes,
                            uint64_t wal_digest);
  void RecordLockRelease(uint64_t txn_id, bool abandoned);

  // --- server-thread / chaos taps ---
  void RecordRpcApply(const char* op_name, int node, int table, uint64_t key,
                      bool applied);
  void RecordChaosFiring(const std::string& point, uint64_t arrival,
                         int node);

  // --- replay gate ---
  // Thread-local commit budget for the current op. With replay_gate on,
  // each published/fallback commit consumes one unit and CommitAllowed()
  // turns false at zero; with it off the gate is always open.
  void SetCommitBudget(uint64_t budget);
  bool CommitAllowed();

  // Events recorded by the calling thread since its last drain, in
  // record order. Used by the replayer to compare each replayed op
  // against the recording.
  std::vector<ReplayEvent> DrainThread();

  // Merges every thread's ring into log->events sorted by seq, fills
  // log->dropped, and seals the commit chain digests. Call after
  // Disarm().
  void Merge(ReplayLog* log);

  uint64_t dropped() const;

 private:
  struct ThreadRing;

  Recorder() = default;
  ThreadRing* Ring();
  void PushEvent(ThreadRing* ring, ReplayEvent event);
  uint64_t NextSeq() { return seq_.fetch_add(1, std::memory_order_relaxed); }

  static void OnPublish(const htm::PublishedLine* lines, size_t count,
                        const VersionTable* table);
  static void OnAbort(unsigned status);

  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> seq_{0};
  Config config_;
  // Bumped at Arm(): invalidates every thread-local ring handle.
  std::atomic<uint64_t> arm_epoch_{0};

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadRing>> rings_;
};

// Terse helpers for call sites in the txn layer.
inline bool Armed() { return Recorder::Global().armed(); }

}  // namespace replay
}  // namespace drtm

#endif  // SRC_REPLAY_RECORDER_H_
