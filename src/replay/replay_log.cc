#include "src/replay/replay_log.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace drtm {
namespace replay {
namespace {

// Rolling chain digest over the logical content of one committed event.
// txn ids and seqs are excluded: id allocation order is not replay-stable
// and seqs are covered by the whole-file checksum.
uint64_t EventChainDigest(uint64_t prev, const ReplayEvent& e) {
  uint64_t h = FnvMix(prev, static_cast<uint64_t>(e.node));
  h = FnvMix(h, static_cast<uint64_t>(e.worker));
  h = FnvMix(h, e.op);
  h = FnvMix(h, e.wal_digest);
  for (const WriteRec& w : e.writes) {
    h = FnvMix(h, static_cast<uint64_t>(w.node));
    h = FnvMix(h, static_cast<uint64_t>(w.table));
    h = FnvMix(h, w.key);
    h = FnvMix(h, w.version);
  }
  return h;
}

bool ParseU64(const std::string& tok, uint64_t* out, int base = 10) {
  if (tok.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtoull(tok.c_str(), &end, base);
  return end == tok.c_str() + tok.size();
}

bool ParseI64(const std::string& tok, int64_t* out) {
  if (tok.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtoll(tok.c_str(), &end, 10);
  return end == tok.c_str() + tok.size();
}

// Splits "a:b:c,d:e:f" into groups of `fields` u64s (":"-separated
// within a group, ","-separated between). An empty text yields zero
// groups. Values may be negative for the first field (node -1).
bool ParseGroups(const std::string& text, size_t fields,
                 std::vector<std::vector<int64_t>>* out) {
  if (text.empty()) {
    return true;
  }
  std::stringstream groups(text);
  std::string group;
  while (std::getline(groups, group, ',')) {
    std::stringstream parts(group);
    std::string part;
    std::vector<int64_t> values;
    while (std::getline(parts, part, ':')) {
      int64_t v = 0;
      if (!ParseI64(part, &v)) {
        return false;
      }
      values.push_back(v);
    }
    if (values.size() != fields) {
      return false;
    }
    out->push_back(std::move(values));
  }
  return true;
}

}  // namespace

uint64_t Fnv1a(uint64_t hash, const void* data, size_t len) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    // drtm-lint: allow(TX01 digests fold transaction-private buffers — WAL values and staged write records — never shared store lines)
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kTxnCommit:
      return "txn";
    case EventKind::kHtmCommit:
      return "htm";
    case EventKind::kHtmAbort:
      return "abort";
    case EventKind::kLockRelease:
      return "rel";
    case EventKind::kRpcApply:
      return "rpc";
    case EventKind::kChaosFiring:
      return "chaos";
    case EventKind::kOpEnd:
      return "opend";
  }
  return "?";
}

namespace {

bool ParseEventKind(const std::string& name, EventKind* out) {
  for (int k = 0; k <= static_cast<int>(EventKind::kOpEnd); ++k) {
    const EventKind kind = static_cast<EventKind>(k);
    if (name == EventKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string ReplayEvent::ToLine() const {
  std::ostringstream out;
  out << "e " << seq << ' ' << EventKindName(kind) << ' ' << node << ' '
      << worker << ' ' << op << ' ' << txn_id << ' ' << aux << ' ' << std::hex
      << wal_digest << ' ' << chain << std::dec;
  out << " w=";
  for (size_t i = 0; i < writes.size(); ++i) {
    if (i > 0) {
      out << ',';
    }
    out << writes[i].node << ':' << writes[i].table << ':' << writes[i].key
        << ':' << writes[i].version;
  }
  // Seqlock slot indices hash line *addresses* (VersionTable::IndexOf),
  // so they shift with every region allocation; serializing them would
  // break the byte-identical-logs determinism contract. They stay on the
  // in-memory event for in-process debugging but never reach log text.
  out << " l=";
  out << " p=" << point;
  return out.str();
}

std::string ReplayLog::Serialize() const {
  std::ostringstream out;
  out << "drtm-replay-log v" << kFormatVersion << "\n";
  out << "seed " << seed << "\n";
  out << "workload " << workload << "\n";
  out << "nodes " << nodes << "\n";
  out << "workers " << workers_per_node << "\n";
  out << "ops " << ops_per_worker << "\n";
  out << "single_threaded " << (single_threaded ? 1 : 0) << "\n";
  out << "ro_enabled " << (ro_enabled ? 1 : 0) << "\n";
  out << "group_commit " << (group_commit ? 1 : 0) << "\n";
  out << "dropped " << dropped << "\n";
  out << "events " << events.size() << "\n";
  for (const ReplayEvent& e : events) {
    out << e.ToLine() << "\n";
  }
  out << "final_digest " << std::hex << final_digest << std::dec << "\n";
  std::string text = out.str();
  char footer[64];
  std::snprintf(footer, sizeof(footer), "checksum %" PRIx64 "\n",
                Fnv1a(kFnvBasis, text.data(), text.size()));
  text += footer;
  return text;
}

void ReplayLog::Reseal() {
  uint64_t chain = kFnvBasis;
  for (ReplayEvent& e : events) {
    if (e.kind != EventKind::kTxnCommit) {
      continue;
    }
    chain = EventChainDigest(chain, e);
    e.chain = chain;
  }
}

bool ReplayLog::Parse(const std::string& text, ReplayLog* out,
                      std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = why;
    }
    return false;
  };
  // Checksum layer first: everything before the final "checksum " line
  // must hash to the recorded value.
  const size_t footer = text.rfind("checksum ");
  if (footer == std::string::npos ||
      (footer != 0 && text[footer - 1] != '\n')) {
    return fail("missing checksum footer");
  }
  uint64_t recorded_checksum = 0;
  {
    std::string value = text.substr(footer + 9);
    while (!value.empty() && (value.back() == '\n' || value.back() == '\r')) {
      value.pop_back();
    }
    if (!ParseU64(value, &recorded_checksum, 16)) {
      return fail("unparsable checksum footer");
    }
  }
  const uint64_t actual_checksum = Fnv1a(kFnvBasis, text.data(), footer);
  if (actual_checksum != recorded_checksum) {
    return fail("checksum mismatch: log bytes were perturbed");
  }

  ReplayLog log;
  std::istringstream in(text.substr(0, footer));
  std::string line;
  if (!std::getline(in, line) ||
      line != "drtm-replay-log v" + std::to_string(kFormatVersion)) {
    return fail("bad magic/version line: " + line);
  }
  uint64_t declared_events = 0;
  bool have_events = false;
  auto header_u64 = [&](const std::string& l, const char* key,
                        uint64_t* value) {
    const std::string prefix = std::string(key) + " ";
    if (l.rfind(prefix, 0) != 0) {
      return false;
    }
    return ParseU64(l.substr(prefix.size()), value);
  };
  // Header lines until "events N".
  while (std::getline(in, line)) {
    uint64_t v = 0;
    if (header_u64(line, "seed", &v)) {
      log.seed = v;
    } else if (line.rfind("workload ", 0) == 0) {
      log.workload = line.substr(9);
    } else if (header_u64(line, "nodes", &v)) {
      log.nodes = static_cast<int>(v);
    } else if (header_u64(line, "workers", &v)) {
      log.workers_per_node = static_cast<int>(v);
    } else if (header_u64(line, "ops", &v)) {
      log.ops_per_worker = v;
    } else if (header_u64(line, "single_threaded", &v)) {
      log.single_threaded = v != 0;
    } else if (header_u64(line, "ro_enabled", &v)) {
      log.ro_enabled = v != 0;
    } else if (header_u64(line, "group_commit", &v)) {
      log.group_commit = v != 0;
    } else if (header_u64(line, "dropped", &v)) {
      log.dropped = v;
    } else if (header_u64(line, "events", &v)) {
      declared_events = v;
      have_events = true;
      break;
    } else {
      return fail("unrecognized header line: " + line);
    }
  }
  if (!have_events) {
    return fail("missing events header");
  }

  uint64_t chain = kFnvBasis;
  log.events.reserve(declared_events);
  bool have_final = false;
  while (std::getline(in, line)) {
    if (line.rfind("final_digest ", 0) == 0) {
      if (!ParseU64(line.substr(13), &log.final_digest, 16)) {
        return fail("unparsable final_digest");
      }
      have_final = true;
      continue;
    }
    if (line.rfind("e ", 0) != 0) {
      return fail("unrecognized line: " + line);
    }
    std::istringstream fields(line);
    std::string tag, kind_name, wal_hex, chain_hex, w_tok, l_tok, p_tok;
    ReplayEvent e;
    int64_t node = 0;
    int64_t worker = 0;
    fields >> tag >> e.seq >> kind_name >> node >> worker >> e.op >>
        e.txn_id >> e.aux >> wal_hex >> chain_hex >> w_tok >> l_tok;
    if (fields.fail()) {
      return fail("truncated event line: " + line);
    }
    fields >> p_tok;  // optional: "p=" with an empty name
    e.node = static_cast<int32_t>(node);
    e.worker = static_cast<int32_t>(worker);
    if (!ParseEventKind(kind_name, &e.kind)) {
      return fail("unknown event kind: " + kind_name);
    }
    if (!ParseU64(wal_hex, &e.wal_digest, 16) ||
        !ParseU64(chain_hex, &e.chain, 16)) {
      return fail("unparsable digests in event line: " + line);
    }
    if (w_tok.rfind("w=", 0) != 0 || l_tok.rfind("l=", 0) != 0) {
      return fail("malformed event sections: " + line);
    }
    std::vector<std::vector<int64_t>> groups;
    if (!ParseGroups(w_tok.substr(2), 4, &groups)) {
      return fail("malformed write set: " + line);
    }
    for (const auto& g : groups) {
      e.writes.push_back(WriteRec{static_cast<int32_t>(g[0]),
                                  static_cast<int32_t>(g[1]),
                                  static_cast<uint64_t>(g[2]),
                                  static_cast<uint32_t>(g[3])});
    }
    groups.clear();
    if (!ParseGroups(l_tok.substr(2), 2, &groups)) {
      return fail("malformed line set: " + line);
    }
    for (const auto& g : groups) {
      e.lines.push_back(LineRec{static_cast<uint32_t>(g[0]),
                                static_cast<uint64_t>(g[1])});
    }
    if (p_tok.rfind("p=", 0) == 0) {
      e.point = p_tok.substr(2);
    }
    if (e.kind == EventKind::kTxnCommit) {
      chain = EventChainDigest(chain, e);
      if (chain != e.chain) {
        return fail("chain digest mismatch at event " +
                    std::to_string(log.events.size()) +
                    " (first corrupted committed event): " + line);
      }
    }
    log.events.push_back(std::move(e));
  }
  if (!have_final) {
    return fail("missing final_digest");
  }
  if (log.events.size() != declared_events) {
    return fail("event count mismatch: header declares " +
                std::to_string(declared_events) + ", parsed " +
                std::to_string(log.events.size()));
  }
  *out = std::move(log);
  return true;
}

}  // namespace replay
}  // namespace drtm
