// Replay log: the on-disk artifact of a recorded run (src/replay).
//
// A log is a totally ordered event stream — one event per committed HTM
// region / fallback lock release / RPC apply / chaos firing / workload op
// boundary — plus a header naming everything a replayer needs to rebuild
// the run (seed, workload, cluster shape, determinism knobs) and two
// integrity layers:
//
//   * a per-commit rolling chain digest, so a corrupted committed event
//     is localized at parse time ("chain mismatch at event N"), and
//   * an FNV-64 checksum over the whole byte stream, so any other
//     perturbation fails loudly instead of replaying garbage.
//
// Cross-run validation is logical: (node, table, key, record version)
// per committed write plus an order-insensitive WAL digest. Version-table
// slot indices are recorded too, but only as in-run debugging context —
// heap layout shifts the line→slot mapping across processes, so replay
// never keys off them.
#ifndef SRC_REPLAY_REPLAY_LOG_H_
#define SRC_REPLAY_REPLAY_LOG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace drtm {
namespace replay {

// FNV-1a over a byte range, seeded with `hash` (basis
// 0xcbf29ce484222325 for a fresh digest).
uint64_t Fnv1a(uint64_t hash, const void* data, size_t len);

inline constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

// Folds one 64-bit value into an FNV-1a digest.
inline uint64_t FnvMix(uint64_t hash, uint64_t value) {
  return Fnv1a(hash, &value, sizeof(value));
}

enum class EventKind : uint8_t {
  kTxnCommit = 0,    // a Transaction commit (HTM or fallback) + write set
  kHtmCommit = 1,    // an unstaged HTM region publish (server apply, ...)
  kHtmAbort = 2,     // a top-level HTM rollback (opt-in: record_aborts)
  kLockRelease = 3,  // post-commit lock release; aux 1 = chaos-abandoned
  kRpcApply = 4,     // server-side RPC structural apply; aux 1 = applied
  kChaosFiring = 5,  // injector point firing; aux = arrival ordinal
  kOpEnd = 6,        // end of one workload op; aux 1 = committed
};

const char* EventKindName(EventKind kind);

// One committed write, identified logically (stable across processes).
struct WriteRec {
  int32_t node = 0;
  int32_t table = 0;
  uint64_t key = 0;
  uint32_t version = 0;  // record version the commit installed

  bool operator==(const WriteRec&) const = default;
};

// One published seqlock line (slot index + released version). In-run
// debugging context only: slot indices hash line addresses, which shift
// with every region allocation, so ToLine() never serializes them —
// byte-identical logs for a fixed seed are part of the format contract.
struct LineRec {
  uint32_t slot = 0;
  uint64_t version = 0;

  bool operator==(const LineRec&) const = default;
};

struct ReplayEvent {
  uint64_t seq = 0;  // global total order (allocated in-critical-section
                     // for commits, so it respects conflict order)
  EventKind kind = EventKind::kOpEnd;
  int32_t node = -1;    // worker-op context; -1 on server/helper threads
  int32_t worker = -1;
  uint64_t op = 0;      // worker-local op ordinal
  uint64_t txn_id = 0;  // context only: allocation order is not
                        // replay-stable, so never validated
  uint64_t aux = 0;     // kind-specific (see EventKind)
  uint64_t wal_digest = 0;  // kTxnCommit: order-insensitive WAL digest
  uint64_t chain = 0;       // kTxnCommit: rolling chain digest
  std::vector<WriteRec> writes;  // kTxnCommit
  std::vector<LineRec> lines;    // kTxnCommit / kHtmCommit
  std::string point;             // kChaosFiring / kRpcApply: point name

  // One-line human/parseable rendering (the serialized event line).
  std::string ToLine() const;
};

struct ReplayLog {
  static constexpr uint32_t kFormatVersion = 1;

  uint64_t seed = 0;
  std::string workload;
  int nodes = 0;
  int workers_per_node = 0;
  uint64_t ops_per_worker = 0;
  bool single_threaded = false;
  bool ro_enabled = false;   // transfer's lease-read mix knob; op-type
                             // draws depend on it, so replay must honour
                             // the recorded value
  bool group_commit = false;
  uint64_t dropped = 0;      // ring-overflow drops during recording
  uint64_t final_digest = 0; // workload store digest at quiescence
  std::vector<ReplayEvent> events;

  // Serializes header + events + footer (final_digest, checksum).
  std::string Serialize() const;

  // Parses and verifies both integrity layers. On failure returns false
  // with *error naming the first corrupted line/event.
  static bool Parse(const std::string& text, ReplayLog* out,
                    std::string* error);

  // Recomputes every commit's chain digest from the current event
  // contents. Tests use this to build a log that parses cleanly but
  // carries a semantic perturbation, which replay must then catch as an
  // execution divergence rather than a parse error.
  void Reseal();
};

}  // namespace replay
}  // namespace drtm

#endif  // SRC_REPLAY_REPLAY_LOG_H_
