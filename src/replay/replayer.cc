#include "src/replay/replayer.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>
#include <vector>

#include "src/replay/recorder.h"

namespace drtm {
namespace replay {
namespace {

// One scheduled workload op: the recorded commits it must reproduce and
// the sequence key ordering it against every other op.
struct ScheduledOp {
  int node = 0;
  int worker = 0;
  uint64_t op = 0;
  uint64_t key_seq = 0;  // first commit's seq, else the op-end seq
  bool committed = false;
  std::vector<size_t> commit_events;  // indices into log.events
  size_t op_end_event = 0;
};

std::string DescribeWrites(const std::vector<WriteRec>& writes) {
  std::ostringstream out;
  out << '[';
  for (size_t i = 0; i < writes.size(); ++i) {
    if (i > 0) {
      out << ' ';
    }
    out << writes[i].node << ':' << writes[i].table << ':' << writes[i].key
        << "@v" << writes[i].version;
  }
  out << ']';
  return out.str();
}

std::string EventContext(const ReplayLog& log, size_t center,
                         size_t radius) {
  std::ostringstream out;
  const size_t begin = center > radius ? center - radius : 0;
  const size_t end = std::min(log.events.size(), center + radius + 1);
  for (size_t i = begin; i < end; ++i) {
    out << (i == center ? ">>> " : "    ") << '#' << i << ' '
        << log.events[i].ToLine() << "\n";
  }
  return out.str();
}

}  // namespace

std::string ReplayReport::Summary(bool diverge_dump) const {
  std::ostringstream out;
  out << "replay " << (ok() ? "ok" : "FAILED") << ": " << ops_replayed << "/"
      << ops_total << " ops, " << commits_replayed << "/" << commits_expected
      << " commits, digest " << std::hex << replayed_digest << " vs recorded "
      << recorded_digest << std::dec
      << (digest_match ? " (match)" : " (MISMATCH)") << "\n";
  if (!divergence.empty()) {
    out << "first divergence: " << divergence << "\n";
  }
  if (diverge_dump && !context.empty()) {
    out << "--- recorded event context ---\n" << context;
  }
  return out.str();
}

ReplayReport Replay(const ReplayLog& log, const ReplayCallbacks& callbacks,
                    size_t context_radius) {
  ReplayReport report;
  report.recorded_digest = log.final_digest;
  if (log.dropped > 0) {
    report.divergence =
        "recording dropped " + std::to_string(log.dropped) +
        " events on ring overflow; the log is incomplete and cannot be "
        "replayed faithfully (re-record with a larger ring)";
    return report;
  }

  // Group events into per-(node, worker, op) schedule entries. kOpEnd
  // defines an op's existence; commits attach by matching context.
  std::map<std::tuple<int, int, uint64_t>, ScheduledOp> ops;
  for (size_t i = 0; i < log.events.size(); ++i) {
    const ReplayEvent& e = log.events[i];
    if (e.node < 0) {
      continue;  // server/helper-thread context: timeline only
    }
    const auto key = std::make_tuple(e.node, e.worker, e.op);
    if (e.kind == EventKind::kTxnCommit) {
      ops[key].commit_events.push_back(i);
    } else if (e.kind == EventKind::kOpEnd) {
      ScheduledOp& s = ops[key];
      s.node = e.node;
      s.worker = e.worker;
      s.op = e.op;
      s.committed = e.aux != 0;
      s.op_end_event = i;
      s.key_seq = e.seq;
    }
  }
  std::vector<ScheduledOp> schedule;
  schedule.reserve(ops.size());
  for (auto& [key, s] : ops) {
    if (!s.commit_events.empty()) {
      // Commits were recorded inside the critical section, so the first
      // commit's seq places the op in global conflict order.
      s.key_seq = log.events[s.commit_events.front()].seq;
    }
    report.commits_expected += s.commit_events.size();
    schedule.push_back(std::move(s));
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const ScheduledOp& a, const ScheduledOp& b) {
              return a.key_seq < b.key_seq;
            });
  report.ops_total = schedule.size();

  // Re-record while replaying; the gate forces recorded aborts.
  Recorder& recorder = Recorder::Global();
  Recorder::Config config;
  config.replay_gate = true;
  recorder.Arm(config);

  // Per-worker op-order sanity: the schedule key must never invert a
  // worker's own program order (commit seqs are monotone per worker).
  std::map<std::pair<int, int>, uint64_t> next_op;

  auto diverge = [&](size_t event_index, const std::string& what) {
    report.diverged = true;
    report.divergence_event = event_index;
    report.divergence = what;
    report.context = EventContext(log, event_index, context_radius);
  };

  for (const ScheduledOp& s : schedule) {
    if (report.diverged) {
      break;
    }
    auto worker_key = std::make_pair(s.node, s.worker);
    auto it = next_op.find(worker_key);
    const uint64_t expected_next = it == next_op.end() ? s.op : it->second;
    if (s.op < expected_next) {
      diverge(s.op_end_event,
              "schedule inverts worker (" + std::to_string(s.node) + "," +
                  std::to_string(s.worker) + ") program order at op " +
                  std::to_string(s.op));
      break;
    }
    next_op[worker_key] = s.op + 1;

    recorder.BeginOp(s.node, s.worker, s.op);
    recorder.SetCommitBudget(s.commit_events.size());
    callbacks.run_op(s.node, s.worker, s.op);
    recorder.EndOp(true);  // flag compared via commit counts, not here
    ++report.ops_replayed;

    // Compare this op's replayed commits against the recording.
    std::vector<ReplayEvent> replayed = recorder.DrainThread();
    std::vector<const ReplayEvent*> commits;
    for (const ReplayEvent& e : replayed) {
      if (e.kind == EventKind::kTxnCommit) {
        commits.push_back(&e);
      }
    }
    report.commits_replayed += commits.size();
    if (commits.size() != s.commit_events.size()) {
      const size_t anchor = s.commit_events.empty()
                                ? s.op_end_event
                                : s.commit_events.front();
      diverge(anchor, "op (" + std::to_string(s.node) + "," +
                          std::to_string(s.worker) + "," +
                          std::to_string(s.op) + ") replayed " +
                          std::to_string(commits.size()) +
                          " commits, recording has " +
                          std::to_string(s.commit_events.size()));
      break;
    }
    for (size_t c = 0; c < commits.size(); ++c) {
      const ReplayEvent& recorded = log.events[s.commit_events[c]];
      const ReplayEvent& now = *commits[c];
      if (now.writes != recorded.writes) {
        diverge(s.commit_events[c],
                "commit " + std::to_string(c) + " of op (" +
                    std::to_string(s.node) + "," + std::to_string(s.worker) +
                    "," + std::to_string(s.op) + ") wrote " +
                    DescribeWrites(now.writes) + ", recording has " +
                    DescribeWrites(recorded.writes));
        break;
      }
      if (now.wal_digest != recorded.wal_digest) {
        diverge(s.commit_events[c],
                "commit " + std::to_string(c) + " of op (" +
                    std::to_string(s.node) + "," + std::to_string(s.worker) +
                    "," + std::to_string(s.op) +
                    ") WAL digest differs from the recording (same keys and "
                    "versions, different values)");
        break;
      }
    }
  }

  recorder.Disarm();
  report.complete = report.ops_replayed == report.ops_total;
  report.replayed_digest = callbacks.state_digest();
  report.digest_match = report.replayed_digest == report.recorded_digest;
  if (!report.digest_match && !report.diverged && report.complete) {
    report.divergence =
        "all per-op commits matched but the final store digest differs — "
        "state outside the recorded write sets changed (structural op or "
        "recovery effect not covered by the commit taps)";
  }
  return report;
}

}  // namespace replay
}  // namespace drtm
