// Replay-mode execution engine (src/replay).
//
// Re-executes a recorded run single-threaded, scheduling workload ops in
// recorded version order (each op is keyed by the sequence number its
// first commit drew inside the seqlock critical section), re-recording
// as it goes, and comparing every replayed commit against the recording:
// the logical write set (node, table, key, record version) and the WAL
// digest must match event-for-event, and the final store digest must
// match the recorded one. The first mismatch is reported with the
// surrounding recorded event context (chaos firings included), which is
// the debugging payoff: the diverging transaction, not a diffuse
// "digests differ".
//
// The engine is workload-agnostic: callers supply callbacks that run one
// (node, worker, op) workload step and compute the store digest. The
// chaos harness wires those up in src/chaos/chaos_replay.
#ifndef SRC_REPLAY_REPLAYER_H_
#define SRC_REPLAY_REPLAYER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/replay/replay_log.h"

namespace drtm {
namespace replay {

struct ReplayCallbacks {
  // Runs one workload op for the given worker identity. Ops of one
  // worker are always invoked in ascending op order.
  std::function<void(int node, int worker, uint64_t op)> run_op;
  // Workload store digest, compared against the log's final_digest after
  // every op has replayed.
  std::function<uint64_t()> state_digest;
};

struct ReplayReport {
  bool complete = false;      // log usable and every scheduled op ran
  bool diverged = false;
  bool digest_match = false;
  uint64_t recorded_digest = 0;
  uint64_t replayed_digest = 0;
  uint64_t ops_total = 0;
  uint64_t ops_replayed = 0;
  uint64_t commits_expected = 0;
  uint64_t commits_replayed = 0;
  size_t divergence_event = 0;  // index into log.events (when diverged)
  std::string divergence;       // first divergence, one paragraph
  std::string context;          // recorded events around the divergence

  bool ok() const { return complete && !diverged && digest_match; }
  // Human summary; with diverge_dump the event context is appended.
  std::string Summary(bool diverge_dump) const;
};

// Replays `log` through the callbacks. Arms the global Recorder in
// replay-gate mode for the duration (the caller must not have it armed).
// context_radius bounds the recorded-event window captured around a
// divergence.
ReplayReport Replay(const ReplayLog& log, const ReplayCallbacks& callbacks,
                    size_t context_radius = 8);

}  // namespace replay
}  // namespace drtm

#endif  // SRC_REPLAY_REPLAYER_H_
