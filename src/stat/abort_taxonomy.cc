#include "src/stat/abort_taxonomy.h"

#include <cstdio>

namespace drtm {
namespace stat {

AbortCause ClassifyRtmStatus(unsigned status) {
  if (status & kRtmCapacityBit) {
    return AbortCause::kCapacity;
  }
  if (status & kRtmExplicitBit) {
    return AbortCause::kExplicit;
  }
  if (status & kRtmConflictBit) {
    return AbortCause::kConflict;
  }
  if (status & kRtmRetryBit) {
    return AbortCause::kRetry;
  }
  return AbortCause::kUnknown;
}

const char* AbortCauseName(AbortCause cause) {
  switch (cause) {
    case AbortCause::kConflict:
      return "conflict";
    case AbortCause::kCapacity:
      return "capacity";
    case AbortCause::kExplicit:
      return "explicit";
    case AbortCause::kRetry:
      return "retry";
    case AbortCause::kUnknown:
    case AbortCause::kCauseCount:
      break;
  }
  return "unknown";
}

const char* AbortCauseCounterName(AbortCause cause) {
  switch (cause) {
    case AbortCause::kConflict:
      return "htm.abort.conflict";
    case AbortCause::kCapacity:
      return "htm.abort.capacity";
    case AbortCause::kExplicit:
      return "htm.abort.explicit";
    case AbortCause::kRetry:
      return "htm.abort.retry";
    case AbortCause::kUnknown:
    case AbortCause::kCauseCount:
      break;
  }
  return "htm.abort.unknown";
}

void RecordHtmOutcome(unsigned status, Registry* registry) {
  if (status == ~0u) {  // htm::kCommitted
    static thread_local struct {
      Registry* reg = nullptr;
      uint32_t id = 0;
    } commit_cache;
    if (commit_cache.reg != registry) {
      commit_cache.reg = registry;
      commit_cache.id = registry->CounterId("htm.commit");
    }
    registry->Add(commit_cache.id);
    return;
  }
  const AbortCause cause = ClassifyRtmStatus(status);
  // Per-registry id cache; the global registry is the overwhelmingly
  // common case, so cache its ids and fall back to lookups otherwise.
  struct Ids {
    uint32_t total;
    uint32_t per_cause[kAbortCauseCount];
  };
  static thread_local struct {
    Registry* reg = nullptr;
    Ids ids;
  } cache;
  if (cache.reg != registry) {
    cache.reg = registry;
    cache.ids.total = registry->CounterId("htm.abort.total");
    for (size_t i = 0; i < kAbortCauseCount; ++i) {
      cache.ids.per_cause[i] = registry->CounterId(
          AbortCauseCounterName(static_cast<AbortCause>(i)));
    }
  }
  registry->Add(cache.ids.total);
  registry->Add(cache.ids.per_cause[static_cast<size_t>(cause)]);
  if (cause == AbortCause::kExplicit) {
    char name[48];
    std::snprintf(name, sizeof(name), "htm.abort.explicit.code%u",
                  RtmUserCode(status));
    registry->Add(registry->CounterId(name));
  }
}

}  // namespace stat
}  // namespace drtm
