// Typed abort-cause taxonomy for the HTM emulator's RTM-layout status
// word and the transaction layer's fallback outcomes.
//
// Capacity vs. conflict vs. fallback attribution is the signal that
// drives HTM tuning (chopping thresholds, retry budgets, lease windows),
// so causes are first-class names here rather than raw bit tests spread
// across call sites.
#ifndef SRC_STAT_ABORT_TAXONOMY_H_
#define SRC_STAT_ABORT_TAXONOMY_H_

#include <cstdint>

#include "src/stat/metrics.h"

namespace drtm {
namespace stat {

// Intel RTM EAX status layout. Mirrored here (rather than including
// src/htm) so the taxonomy sits below the HTM emulator in the link
// order; htm.cc static_asserts the two definitions agree.
inline constexpr unsigned kRtmExplicitBit = 1u << 0;
inline constexpr unsigned kRtmRetryBit = 1u << 1;
inline constexpr unsigned kRtmConflictBit = 1u << 2;
inline constexpr unsigned kRtmCapacityBit = 1u << 3;

inline constexpr unsigned RtmUserCode(unsigned status) {
  return (status >> 24) & 0xff;
}

// One cause per abort, by RTM priority: capacity subsumes the conflict
// bit it is usually reported with, an explicit abort is attributed to
// its XABORT code, a bare retry hint (no conflict bit) is its own class.
enum class AbortCause : uint8_t {
  kConflict = 0,   // kAbortConflict (data conflict, lock-wait timeout)
  kCapacity,       // kAbortCapacity (read/write-set line budget)
  kExplicit,       // kAbortExplicit (XABORT), user code attached
  kRetry,          // kAbortRetry alone: transient, retry advised
  kUnknown,        // status carried none of the cause bits
  kCauseCount,
};

constexpr size_t kAbortCauseCount =
    static_cast<size_t>(AbortCause::kCauseCount);

// Classifies a non-kCommitted status word from htm::HtmThread::Transact.
AbortCause ClassifyRtmStatus(unsigned status);

// "conflict", "capacity", "explicit", "retry", "unknown".
const char* AbortCauseName(AbortCause cause);

// Counter names the recorder below increments, so exporters and tests
// can enumerate the full cause breakdown even when a cause never fired:
//   htm.abort.<cause>           per-cause totals
//   htm.abort.total             sum over causes
//   htm.abort.explicit.code<N>  XABORT user-code attribution
//   htm.commit                  committed regions
const char* AbortCauseCounterName(AbortCause cause);

// Records one HTM region outcome into a registry (the global one by
// default). `status` is exactly what Transact() returned.
void RecordHtmOutcome(unsigned status, Registry* registry);

inline void RecordHtmOutcome(unsigned status) {
  RecordHtmOutcome(status, &Registry::Global());
}

}  // namespace stat
}  // namespace drtm

#endif  // SRC_STAT_ABORT_TAXONOMY_H_
