#include "src/stat/bench_report.h"

#include <cstdio>
#include <cstdlib>

namespace drtm {
namespace stat {

Json AbortCausesJson(const Snapshot& stats) {
  Json causes = Json::Object();
  causes.Set("explicit", Json::Number(stats.Counter("htm.abort.explicit")));
  causes.Set("retry", Json::Number(stats.Counter("htm.abort.retry")));
  causes.Set("conflict", Json::Number(stats.Counter("htm.abort.conflict")));
  causes.Set("capacity", Json::Number(stats.Counter("htm.abort.capacity")));
  causes.Set("fallback", Json::Number(stats.Counter("txn.fallback")));
  causes.Set("user", Json::Number(stats.Counter("txn.user_abort")));
  return causes;
}

Json HistogramJson(const Histogram& hist) {
  Json h = Json::Object();
  h.Set("count", Json::Number(hist.count()));
  h.Set("min", Json::Number(hist.min()));
  h.Set("max", Json::Number(hist.max()));
  h.Set("mean", Json::Number(hist.Mean()));
  h.Set("p50", Json::Number(hist.Percentile(50)));
  h.Set("p90", Json::Number(hist.Percentile(90)));
  h.Set("p99", Json::Number(hist.Percentile(99)));
  h.Set("p999", Json::Number(hist.Percentile(99.9)));
  return h;
}

Json BenchReport::ToJson() const {
  Json root = Json::Object();
  root.Set("schema_version", Json::Number(1));
  root.Set("bench", Json::Str(bench));
  root.Set("title", Json::Str(title));

  Json config_json = Json::Object();
  for (const auto& [key, value] : config) {
    config_json.Set(key, Json::Str(value));
  }
  root.Set("config", std::move(config_json));

  Json series_json = Json::Array();
  for (const Series& s : series) {
    Json series_entry = Json::Object();
    series_entry.Set("name", Json::Str(s.name));
    Json points = Json::Array();
    for (const Point& p : s.points) {
      Json point = Json::Object();
      Json labels = Json::Object();
      for (const auto& [key, value] : p.labels) {
        labels.Set(key, Json::Str(value));
      }
      Json values = Json::Object();
      for (const auto& [key, value] : p.values) {
        values.Set(key, Json::Number(value));
      }
      point.Set("labels", std::move(labels));
      point.Set("values", std::move(values));
      points.Append(std::move(point));
    }
    series_entry.Set("points", std::move(points));
    series_json.Append(std::move(series_entry));
  }
  root.Set("series", std::move(series_json));

  Json counters = Json::Object();
  for (const auto& [name, value] : stats.counters) {
    counters.Set(name, Json::Number(value));
  }
  root.Set("counters", std::move(counters));

  Json gauges = Json::Object();
  for (const auto& [name, value] : stats.gauges) {
    gauges.Set(name, Json::Number(double(value)));
  }
  root.Set("gauges", std::move(gauges));
  root.Set("abort_causes", AbortCausesJson(stats));

  Json histograms = Json::Object();
  for (const auto& [name, hist] : stats.histograms) {
    histograms.Set(name, HistogramJson(hist));
  }
  root.Set("histograms", std::move(histograms));
  return root;
}

std::string BenchReport::WriteJsonFile(const std::string& dir) const {
  std::string out_dir = dir;
  if (out_dir.empty()) {
    const char* env = std::getenv("DRTM_BENCH_OUT");
    out_dir = env != nullptr ? env : ".";
  }
  const std::string path = out_dir + "/BENCH_" + bench + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench report: cannot write %s\n", path.c_str());
    return "";
  }
  const std::string text = ToJson().Dump(/*pretty=*/true);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) {
    return "";
  }
  std::printf("bench report: wrote %s\n", path.c_str());
  return path;
}

}  // namespace stat
}  // namespace drtm
