// Machine-readable benchmark reports: the BENCH_*.json schema that
// tracks the repository's performance trajectory (see ROADMAP.md).
//
// Schema (version 1):
//   {
//     "schema_version": 1,
//     "bench": "fig13_tpcc_threads",        // report id -> file name
//     "title": "...",
//     "config": {"duration_ms": "800", ...},// stringly-typed knobs
//     "series": [                           // the measured sweep(s)
//       {"name": "mix_tps",
//        "points": [{"labels": {"threads": "4"}, "values": {"tps": 123.0}}]}
//     ],
//     "counters": {"htm.commit": 123, ...}, // full registry delta
//     "gauges": {"cache.capacity_entries": 4096, ...},  // levels at end
//     "abort_causes": {                     // always all six keys
//       "explicit": 0, "retry": 0, "conflict": 0, "capacity": 0,
//       "fallback": 0, "user": 0},
//     "histograms": {"phase.htm_attempt_ns":
//       {"count":n,"min":..,"max":..,"mean":..,
//        "p50":..,"p90":..,"p99":..,"p999":..}}
//   }
#ifndef SRC_STAT_BENCH_REPORT_H_
#define SRC_STAT_BENCH_REPORT_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/stat/json.h"
#include "src/stat/metrics.h"

namespace drtm {
namespace stat {

struct BenchReport {
  struct Point {
    // Sweep coordinates ("threads" -> "8", "system" -> "drtm-kv").
    std::vector<std::pair<std::string, std::string>> labels;
    // Measured values ("tps" -> 1.0e6).
    std::vector<std::pair<std::string, double>> values;
  };
  struct Series {
    std::string name;
    std::vector<Point> points;
  };

  std::string bench;  // file name stem: BENCH_<bench>.json
  std::string title;
  std::vector<std::pair<std::string, std::string>> config;
  // Deque, not vector: AddSeries hands out references that benches hold
  // across later AddSeries calls, so they must stay valid under growth.
  std::deque<Series> series;
  Snapshot stats;  // registry delta covering the measured windows

  void AddConfig(const std::string& key, const std::string& value) {
    config.emplace_back(key, value);
  }
  Series& AddSeries(const std::string& name) {
    series.push_back(Series{name, {}});
    return series.back();
  }

  Json ToJson() const;

  // Writes BENCH_<bench>.json under `dir`; empty dir means the
  // DRTM_BENCH_OUT environment variable, or the working directory when
  // unset. Returns the path written, empty on I/O failure.
  std::string WriteJsonFile(const std::string& dir = "") const;
};

// The abort_causes block: the four RTM causes from the taxonomy counters
// plus the transaction layer's fallback executions and user aborts.
// Exposed for tests; always emits every key.
Json AbortCausesJson(const Snapshot& stats);

// One histogram object of the schema above.
Json HistogramJson(const Histogram& hist);

}  // namespace stat
}  // namespace drtm

#endif  // SRC_STAT_BENCH_REPORT_H_
