#include "src/stat/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace drtm {
namespace stat {

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

void Json::Append(Json value) { elements_.push_back(std::move(value)); }

size_t Json::size() const {
  return type_ == Type::kArray ? elements_.size() : members_.size();
}

const Json& Json::at(size_t index) const { return elements_[index]; }

void Json::Set(std::string_view key, Json value) {
  for (auto& [name, existing] : members_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
}

const Json* Json::Find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

namespace {

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NumberInto(double v, std::string* out) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void Indent(std::string* out, int depth) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, bool pretty, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      NumberInto(number_, out);
      return;
    case Type::kString:
      EscapeInto(string_, out);
      return;
    case Type::kArray: {
      if (elements_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (pretty) {
          out->push_back('\n');
          Indent(out, depth + 1);
        }
        elements_[i].DumpTo(out, pretty, depth + 1);
        if (i + 1 < elements_.size()) {
          out->push_back(',');
        }
      }
      if (pretty) {
        out->push_back('\n');
        Indent(out, depth);
      }
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (pretty) {
          out->push_back('\n');
          Indent(out, depth + 1);
        }
        EscapeInto(members_[i].first, out);
        *out += pretty ? ": " : ":";
        members_[i].second.DumpTo(out, pretty, depth + 1);
        if (i + 1 < members_.size()) {
          out->push_back(',');
        }
      }
      if (pretty) {
        out->push_back('\n');
        Indent(out, depth);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump(bool pretty) const {
  std::string out;
  DumpTo(&out, pretty, 0);
  if (pretty) {
    out.push_back('\n');
  }
  return out;
}

// --- parser ------------------------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool EatLiteral(std::string_view literal) {
    if (text.substr(pos, literal.size()) == literal) {
      pos += literal.size();
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Eat('"')) {
      return false;
    }
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos >= text.size()) {
          return false;
        }
        const char esc = text[pos++];
        switch (esc) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            if (pos + 4 > text.size()) {
              return false;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            // Reports are ASCII; non-ASCII escapes decode to UTF-8.
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xc0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out->push_back(static_cast<char>(0xe0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            return false;
        }
        continue;
      }
      out->push_back(c);
    }
    return false;  // unterminated
  }

  bool ParseValue(Json* out) {
    SkipSpace();
    if (pos >= text.size()) {
      return false;
    }
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      Json object = Json::Object();
      SkipSpace();
      if (Eat('}')) {
        *out = std::move(object);
        return true;
      }
      while (true) {
        std::string key;
        SkipSpace();
        if (!ParseString(&key) || !Eat(':')) {
          return false;
        }
        Json value;
        if (!ParseValue(&value)) {
          return false;
        }
        object.Set(key, std::move(value));
        if (Eat(',')) {
          continue;
        }
        if (Eat('}')) {
          *out = std::move(object);
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++pos;
      Json array = Json::Array();
      SkipSpace();
      if (Eat(']')) {
        *out = std::move(array);
        return true;
      }
      while (true) {
        Json value;
        if (!ParseValue(&value)) {
          return false;
        }
        array.Append(std::move(value));
        if (Eat(',')) {
          continue;
        }
        if (Eat(']')) {
          *out = std::move(array);
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) {
        return false;
      }
      *out = Json::Str(std::move(s));
      return true;
    }
    if (EatLiteral("true")) {
      *out = Json::Bool(true);
      return true;
    }
    if (EatLiteral("false")) {
      *out = Json::Bool(false);
      return true;
    }
    if (EatLiteral("null")) {
      *out = Json::Null();
      return true;
    }
    // Number.
    const size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    bool digits = false;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      digits = true;
      ++pos;
    }
    if (!digits) {
      return false;
    }
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return false;
    }
    *out = Json::Number(v);
    return true;
  }
};

}  // namespace

bool Json::Parse(std::string_view text, Json* out) {
  Parser parser{text};
  Json value;
  if (!parser.ParseValue(&value)) {
    return false;
  }
  parser.SkipSpace();
  if (parser.pos != text.size()) {
    return false;  // trailing garbage
  }
  *out = std::move(value);
  return true;
}

}  // namespace stat
}  // namespace drtm
