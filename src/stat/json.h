// Minimal JSON value with a writer and a strict parser — just enough for
// the BENCH_*.json reports and their round-trip tests, so the repository
// needs no external JSON dependency.
//
// Numbers are doubles (counters up to 2^53 round-trip exactly); object
// member order is preserved on write (insertion order), which keeps the
// reports diffable.
#ifndef SRC_STAT_JSON_H_
#define SRC_STAT_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace drtm {
namespace stat {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Number(double v);
  static Json Number(uint64_t v) { return Number(static_cast<double>(v)); }
  static Json Number(int v) { return Number(static_cast<double>(v)); }
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }

  // Arrays.
  void Append(Json value);
  size_t size() const;
  const Json& at(size_t index) const;

  // Objects. Set() replaces an existing member in place.
  void Set(std::string_view key, Json value);
  const Json* Find(std::string_view key) const;
  bool Has(std::string_view key) const { return Find(key) != nullptr; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  // Serializes with 2-space indentation and a trailing newline at the
  // top level when pretty; compact single-line otherwise.
  std::string Dump(bool pretty = true) const;

  // Strict parser (no comments, no trailing commas). Returns false and
  // leaves *out untouched on malformed input.
  static bool Parse(std::string_view text, Json* out);

 private:
  void DumpTo(std::string* out, bool pretty, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> elements_;                         // kArray
  std::vector<std::pair<std::string, Json>> members_;  // kObject
};

}  // namespace stat
}  // namespace drtm

#endif  // SRC_STAT_JSON_H_
