#include "src/stat/metrics.h"

#include <cassert>
#include <cstdio>

namespace drtm {
namespace stat {

Snapshot Snapshot::DeltaSince(const Snapshot& earlier) const {
  Snapshot delta = *this;
  for (auto& [name, value] : delta.counters) {
    auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) {
      value -= std::min(value, it->second);
    }
  }
  for (auto& [name, hist] : delta.histograms) {
    auto it = earlier.histograms.find(name);
    if (it != earlier.histograms.end()) {
      hist.Subtract(it->second);
    }
  }
  // Gauges are levels, not totals: the later snapshot's values (already
  // copied into delta) are the right answer for any window.
  return delta;
}

void Snapshot::Merge(const Snapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, hist] : other.histograms) {
    histograms[name].Merge(hist);
  }
  for (const auto& [name, value] : other.gauges) {
    gauges[name] = value;  // latest window wins
  }
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // immortal: worker threads
  return *registry;                            // may outlive main()'s exit
}

Registry::Registry() {
  for (auto& shard : shards_) {
    shard = std::make_unique<Shard>();
  }
}

Registry::~Registry() = default;

namespace {

// Round-robin shard assignment: a process-wide thread ordinal, not a
// hash, so the first kShards threads never collide. Shared across
// registries (the ordinal identifies the thread, not the metric).
uint32_t ThreadOrdinal() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

Registry::Shard& Registry::LocalShard() {
  return *shards_[ThreadOrdinal() % kShards];
}

uint32_t Registry::CounterId(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counter_ids_.find(name);
  if (it != counter_ids_.end()) {
    return it->second;
  }
  assert(counter_names_.size() < kMaxCounters && "raise Registry::kMaxCounters");
  const uint32_t id = static_cast<uint32_t>(counter_names_.size());
  counter_names_.emplace_back(name);
  counter_ids_.emplace(counter_names_.back(), id);
  return id;
}

uint32_t Registry::TimerId(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timer_ids_.find(name);
  if (it != timer_ids_.end()) {
    return it->second;
  }
  assert(timer_names_.size() < kMaxTimers && "raise Registry::kMaxTimers");
  const uint32_t id = static_cast<uint32_t>(timer_names_.size());
  timer_names_.emplace_back(name);
  timer_ids_.emplace(timer_names_.back(), id);
  return id;
}

uint32_t Registry::GaugeId(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauge_ids_.find(name);
  if (it != gauge_ids_.end()) {
    return it->second;
  }
  assert(gauge_names_.size() < kMaxGauges && "raise Registry::kMaxGauges");
  const uint32_t id = static_cast<uint32_t>(gauge_names_.size());
  gauge_names_.emplace_back(name);
  gauge_ids_.emplace(gauge_names_.back(), id);
  return id;
}

void Registry::GaugeSet(uint32_t gauge_id, int64_t value) {
  gauges_[gauge_id].value.store(value, std::memory_order_relaxed);
}

void Registry::GaugeAdd(uint32_t gauge_id, int64_t delta) {
  gauges_[gauge_id].value.fetch_add(delta, std::memory_order_relaxed);
}

int64_t Registry::GaugeValue(uint32_t gauge_id) const {
  return gauges_[gauge_id].value.load(std::memory_order_relaxed);
}

void Registry::Add(uint32_t counter_id, uint64_t delta) {
  LocalShard().counters[counter_id].value.fetch_add(delta,
                                                    std::memory_order_relaxed);
}

void Registry::Record(uint32_t timer_id, uint64_t value) {
  Shard& shard = LocalShard();
  SpinLatchGuard guard(shard.hist_latch);
  shard.hists[timer_id].Record(value);
}

Snapshot Registry::TakeSnapshot() {
  // Copy the name tables first so shard scanning runs without mu_.
  std::vector<std::string> counter_names;
  std::vector<std::string> timer_names;
  std::vector<std::string> gauge_names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counter_names = counter_names_;
    timer_names = timer_names_;
    gauge_names = gauge_names_;
  }
  Snapshot snapshot;
  for (size_t id = 0; id < counter_names.size(); ++id) {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->counters[id].value.load(std::memory_order_relaxed);
    }
    snapshot.counters.emplace(counter_names[id], total);
  }
  for (size_t id = 0; id < timer_names.size(); ++id) {
    Histogram merged;
    for (const auto& shard : shards_) {
      SpinLatchGuard guard(shard->hist_latch);
      merged.Merge(shard->hists[id]);
    }
    snapshot.histograms.emplace(timer_names[id], std::move(merged));
  }
  for (size_t id = 0; id < gauge_names.size(); ++id) {
    snapshot.gauges.emplace(gauge_names[id],
                            gauges_[id].value.load(std::memory_order_relaxed));
  }
  return snapshot;
}

size_t Registry::num_counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counter_names_.size();
}

size_t Registry::num_timers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timer_names_.size();
}

size_t Registry::num_gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauge_names_.size();
}

namespace {

std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') {
      c = '_';
    }
  }
  return out;
}

}  // namespace

std::string ExportPrometheus(const Snapshot& snapshot) {
  std::string out;
  char line[256];
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PromName(name);
    std::snprintf(line, sizeof(line), "# TYPE %s counter\n%s %llu\n",
                  prom.c_str(), prom.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PromName(name);
    std::snprintf(line, sizeof(line), "# TYPE %s gauge\n%s %lld\n",
                  prom.c_str(), prom.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string prom = PromName(name);
    std::snprintf(line, sizeof(line), "# TYPE %s summary\n", prom.c_str());
    out += line;
    for (const double q : {0.5, 0.9, 0.99}) {
      std::snprintf(line, sizeof(line), "%s{quantile=\"%g\"} %llu\n",
                    prom.c_str(), q,
                    static_cast<unsigned long long>(
                        hist.Percentile(q * 100.0)));
      out += line;
    }
    std::snprintf(line, sizeof(line), "%s_sum %.0f\n%s_count %llu\n",
                  prom.c_str(), hist.Mean() * static_cast<double>(hist.count()),
                  prom.c_str(), static_cast<unsigned long long>(hist.count()));
    out += line;
  }
  return out;
}

}  // namespace stat
}  // namespace drtm
