// Process-wide metrics registry: named counters and log-bucket latency
// histograms with per-thread sharded storage, snapshot/delta semantics,
// and no hot-path contention.
//
// Design:
//   * Registration (name -> dense id) takes a mutex and happens once per
//     site, typically through a function-local static.
//   * The hot path — Add(id) / Record(id, value) — touches only the
//     calling thread's shard: a cache-line-padded relaxed atomic per
//     counter, and a per-shard histogram array guarded by a spin latch
//     that is only ever contended by a concurrent snapshot.
//   * Threads are assigned shards round-robin; with fewer live threads
//     than kShards (64) every thread owns its shard exclusively. Shards
//     outlive threads, so counts from finished workers stay visible —
//     exactly what a bench that joins its workers before reporting needs.
//   * Snapshot() sums the shards into plain maps. DeltaSince() subtracts
//     an earlier snapshot, which is how benches report a steady-state
//     measurement window (snapshot after warmup, delta at the end).
#ifndef SRC_STAT_METRICS_H_
#define SRC_STAT_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/cacheline.h"
#include "src/common/histogram.h"
#include "src/common/spin_latch.h"

namespace drtm {
namespace stat {

// Aggregated registry state at one instant. Plain data: copy, subtract,
// merge, export.
struct Snapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, Histogram> histograms;
  // Instantaneous levels (cache occupancy, configured capacity, window
  // depth). Unlike counters these can move both ways and are never
  // differenced: DeltaSince keeps the later snapshot's values verbatim.
  std::map<std::string, int64_t> gauges;

  uint64_t Counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  const Histogram* Hist(const std::string& name) const {
    auto it = histograms.find(name);
    return it == histograms.end() ? nullptr : &it->second;
  }
  int64_t Gauge(const std::string& name) const {
    auto it = gauges.find(name);
    return it == gauges.end() ? 0 : it->second;
  }

  // This snapshot minus an earlier one: counter-wise subtraction (values
  // registered only in *this keep their full count) and bucket-wise
  // histogram subtraction. Histogram min/max are kept from *this — exact
  // window extrema are not recoverable from two cumulative snapshots.
  Snapshot DeltaSince(const Snapshot& earlier) const;

  // Accumulates another snapshot into this one (counter addition,
  // histogram merge). Used by benches that sum several run windows.
  void Merge(const Snapshot& other);
};

class Registry {
 public:
  // Most code uses the process-wide instance; tests build their own.
  static Registry& Global();

  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Returns a dense id for the named metric, registering it on first
  // use. Idempotent; safe from any thread. Names follow a dotted
  // lowercase convention with a unit suffix for timers, e.g.
  // "htm.abort.conflict", "phase.htm_attempt_ns".
  uint32_t CounterId(std::string_view name);
  uint32_t TimerId(std::string_view name);
  uint32_t GaugeId(std::string_view name);

  // Hot path. Ids must come from the matching *Id() on this registry.
  void Add(uint32_t counter_id, uint64_t delta = 1);
  void Record(uint32_t timer_id, uint64_t value);

  // Gauges are registry-level (not sharded): a level shared by all
  // threads, so increments and decrements from different threads net out
  // correctly. Still lock-free relaxed atomics — cheap enough for
  // install/evict paths, not meant for per-op hot loops.
  void GaugeSet(uint32_t gauge_id, int64_t value);
  void GaugeAdd(uint32_t gauge_id, int64_t delta);
  int64_t GaugeValue(uint32_t gauge_id) const;

  Snapshot TakeSnapshot();

  // Number of registered names (for tests / exporters).
  size_t num_counters() const;
  size_t num_timers() const;
  size_t num_gauges() const;

  static constexpr size_t kShards = 64;
  static constexpr size_t kMaxCounters = 256;
  static constexpr size_t kMaxTimers = 64;
  static constexpr size_t kMaxGauges = 256;

 private:
  struct alignas(kCacheLineSize) PaddedCounter {
    std::atomic<uint64_t> value{0};
  };

  struct alignas(kCacheLineSize) PaddedGauge {
    std::atomic<int64_t> value{0};
  };

  struct Shard {
    std::array<PaddedCounter, kMaxCounters> counters;
    // Guards hists against a concurrent TakeSnapshot(); the owning
    // thread is the only other party, so this latch is uncontended in
    // steady state.
    SpinLatch hist_latch;
    std::array<Histogram, kMaxTimers> hists;
  };

  Shard& LocalShard();

  mutable std::mutex mu_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> timer_names_;
  std::vector<std::string> gauge_names_;
  std::map<std::string, uint32_t, std::less<>> counter_ids_;
  std::map<std::string, uint32_t, std::less<>> timer_ids_;
  std::map<std::string, uint32_t, std::less<>> gauge_ids_;
  std::array<std::unique_ptr<Shard>, kShards> shards_;
  std::array<PaddedGauge, kMaxGauges> gauges_;
};

// Renders a snapshot in the Prometheus text exposition format
// (counters as "# TYPE x counter", histograms as summaries with
// quantile labels). Metric names have '.' mapped to '_'.
std::string ExportPrometheus(const Snapshot& snapshot);

}  // namespace stat
}  // namespace drtm

#endif  // SRC_STAT_METRICS_H_
