#include "src/stat/scatter_stats.h"

#include <string>

#include "src/stat/metrics.h"

namespace drtm {
namespace stat {

ScatterPhaseIds RegisterScatterPhase(std::string_view phase) {
  Registry& reg = Registry::Global();
  const std::string prefix = "rdma.scatter." + std::string(phase);
  ScatterPhaseIds ids;
  ids.rounds = reg.CounterId(prefix + ".rounds");
  ids.doorbells = reg.CounterId(prefix + ".doorbells");
  ids.wqes = reg.CounterId(prefix + ".wqes");
  ids.overlap_saved_ns = reg.CounterId(prefix + ".overlap_saved_ns");
  ids.targets = reg.TimerId(prefix + ".targets");
  return ids;
}

#define DRTM_SCATTER_PHASE(fn, name)                          \
  const ScatterPhaseIds& fn() {                               \
    static const ScatterPhaseIds ids = RegisterScatterPhase(name); \
    return ids;                                               \
  }

DRTM_SCATTER_PHASE(ScatterLookupIds, "lookup")
DRTM_SCATTER_PHASE(ScatterStartLockIds, "start_lock")
DRTM_SCATTER_PHASE(ScatterPrefetchIds, "prefetch")
DRTM_SCATTER_PHASE(ScatterWritebackIds, "writeback")
DRTM_SCATTER_PHASE(ScatterFallbackIds, "fallback_lock")
DRTM_SCATTER_PHASE(ScatterRoLeaseIds, "ro_lease")

#undef DRTM_SCATTER_PHASE

}  // namespace stat
}  // namespace drtm
