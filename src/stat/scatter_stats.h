// Per-phase counters for the cross-node scatter-gather phase engine
// (rdma::PhaseScatter). Each transaction phase that scatters doorbells
// across target nodes gets its own counter set, so BENCH_*.json reports
// can show doorbells-per-phase and how much latency the overlap saved:
//
//   rdma.scatter.<phase>.rounds            gather rounds executed
//   rdma.scatter.<phase>.doorbells         doorbells rung (1 per target)
//   rdma.scatter.<phase>.wqes              WQEs those doorbells carried
//   rdma.scatter.<phase>.overlap_saved_ns  sum(batch_ns) - max(batch_ns),
//                                          the serial-posting cost the
//                                          overlap avoided
//   rdma.scatter.<phase>.targets           histogram: targets per round
#ifndef SRC_STAT_SCATTER_STATS_H_
#define SRC_STAT_SCATTER_STATS_H_

#include <cstdint>
#include <string_view>

namespace drtm {
namespace stat {

struct ScatterPhaseIds {
  uint32_t rounds = 0;
  uint32_t doorbells = 0;
  uint32_t wqes = 0;
  uint32_t overlap_saved_ns = 0;
  uint32_t targets = 0;  // timer id (histogram)
};

// Registers (idempotently) the counter set for one phase name.
ScatterPhaseIds RegisterScatterPhase(std::string_view phase);

// Canonical phase sets used by the transaction layer and the remote KV
// client, resolved once per process.
const ScatterPhaseIds& ScatterLookupIds();     // chain-walk lookups
const ScatterPhaseIds& ScatterStartLockIds();  // Start: lock CAS + probes
const ScatterPhaseIds& ScatterPrefetchIds();   // Start: value prefetch
const ScatterPhaseIds& ScatterWritebackIds();  // Commit: write-back+unlock
const ScatterPhaseIds& ScatterFallbackIds();   // 2PL optimistic first pass
const ScatterPhaseIds& ScatterRoLeaseIds();    // read-only lease + confirm

}  // namespace stat
}  // namespace drtm

#endif  // SRC_STAT_SCATTER_STATS_H_
