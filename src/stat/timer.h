// Scoped phase timers: RAII stopwatches recording elapsed nanoseconds
// into a registry histogram. The timer id comes from Registry::TimerId
// and is typically resolved once per site via a function-local static.
//
//   static const uint32_t kId =
//       stat::Registry::Global().TimerId("phase.htm_attempt_ns");
//   { stat::ScopedTimer timer(kId); ... timed region ... }
//
// Phase-timer naming convention: "phase.<name>_ns". The standard phases
// instrumented by the transaction and RDMA layers:
//   phase.htm_attempt_ns     one HTM region attempt (body + commit)
//   phase.fallback_ns        one full fallback (2PL) execution
//   phase.lock_acquire_ns    exclusive-lock acquisition (RDMA CAS loop)
//   phase.lease_wait_ns      shared-lease acquisition (read + CAS loop)
//   phase.commit_ns          write-back + unlock after XEND
//   phase.log_append_ns      one NVRAM log append
#ifndef SRC_STAT_TIMER_H_
#define SRC_STAT_TIMER_H_

#include <cstdint>

#include "src/common/clock.h"
#include "src/stat/metrics.h"

namespace drtm {
namespace stat {

class ScopedTimer {
 public:
  explicit ScopedTimer(uint32_t timer_id,
                       Registry* registry = &Registry::Global())
      : registry_(registry), timer_id_(timer_id), begin_(MonotonicNanos()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (registry_ != nullptr) {
      registry_->Record(timer_id_, MonotonicNanos() - begin_);
    }
  }

  // Abandons the measurement (e.g. the phase ended on an error path the
  // caller does not want polluting the distribution).
  void Cancel() { registry_ = nullptr; }

 private:
  Registry* registry_;
  uint32_t timer_id_;
  uint64_t begin_;
};

// Pre-registers the standard phase timers listed above so that every
// snapshot (and hence every bench report) carries the full histogram
// set, including phases that never fired in this process.
inline void RegisterStandardPhaseTimers(
    Registry& registry = Registry::Global()) {
  registry.TimerId("phase.htm_attempt_ns");
  registry.TimerId("phase.fallback_ns");
  registry.TimerId("phase.lock_acquire_ns");
  registry.TimerId("phase.lease_wait_ns");
  registry.TimerId("phase.commit_ns");
  registry.TimerId("phase.log_append_ns");
}

}  // namespace stat
}  // namespace drtm

#endif  // SRC_STAT_TIMER_H_
