#include "src/store/bplus_tree.h"

#include <cassert>
#include <cstring>

#include "src/htm/htm.h"

namespace drtm {
namespace store {

namespace {
constexpr uint64_t kControlRoot = 0;
constexpr uint64_t kControlBump = 1;
constexpr uint64_t kControlLive = 2;
constexpr size_t kControlBytes = 64;

// Node header layout (byte offsets into a node).
constexpr size_t kIsLeafOff = 0;    // uint16_t
constexpr size_t kNumKeysOff = 2;   // uint16_t
constexpr size_t kNextLeafOff = 4;  // uint32_t

// Typed field access at a byte offset, with memcpy semantics through
// the htm dispatch layer: no typed pointer into the pool is ever
// formed, so there is no alignment or strict-aliasing UB for UBSan to
// find, and every access is tracked by the transaction (TX01).
template <typename T>
T LoadField(const uint8_t* base, size_t off) {
  T value;
  htm::ReadBytes(&value, base + off, sizeof(T));
  return value;
}

template <typename T>
void StoreField(uint8_t* base, size_t off, const T& value) {
  htm::WriteBytes(base + off, &value, sizeof(T));
}
}  // namespace

BPlusTree::BPlusTree(const Config& config) : config_(config) {
  keys_off_ = 8;
  payload_off_ = keys_off_ + sizeof(uint64_t) * kFanout;
  const size_t internal_payload = sizeof(uint32_t) * (kFanout + 1);
  const size_t leaf_payload =
      static_cast<size_t>(config.value_size) * kFanout;
  node_bytes_ = payload_off_ +
                (internal_payload > leaf_payload ? internal_payload
                                                 : leaf_payload);
  node_bytes_ = (node_bytes_ + 63) & ~size_t{63};
  pool_ = std::make_unique<uint8_t[]>(kControlBytes +
                                      node_bytes_ * config.max_nodes);
  std::memset(pool_.get(), 0, kControlBytes);
}

uint64_t BPlusTree::ControlLoad(uint64_t which) {
  return LoadField<uint64_t>(pool_.get(), which * sizeof(uint64_t));
}

void BPlusTree::ControlStore(uint64_t which, uint64_t value) {
  StoreField<uint64_t>(pool_.get(), which * sizeof(uint64_t), value);
}

uint8_t* BPlusTree::NodeAt(uint32_t id) {
  if (id == 0 || id > config_.max_nodes) {
    // A torn read inside a doomed transaction produced a bogus node id;
    // abort it instead of dereferencing out of the pool.
    htm::AbortCurrentTransactionOrDie("B+ tree node id out of range");
  }
  return pool_.get() + kControlBytes +
         node_bytes_ * static_cast<size_t>(id - 1);
}

BPlusTree::NodeRef BPlusTree::AllocateNode(bool leaf) {
  const uint64_t bump = ControlLoad(kControlBump);
  if (bump >= config_.max_nodes) {
    return NodeRef{};
  }
  ControlStore(kControlBump, bump + 1);
  const uint32_t id = static_cast<uint32_t>(bump + 1);
  uint8_t* node = NodeAt(id);
  StoreField<uint16_t>(node, kIsLeafOff, leaf ? uint16_t{1} : uint16_t{0});
  StoreField<uint16_t>(node, kNumKeysOff, uint16_t{0});
  StoreField<uint32_t>(node, kNextLeafOff, uint32_t{0});
  return NodeRef{id};
}

uint16_t BPlusTree::IsLeaf(uint32_t id) {
  return LoadField<uint16_t>(NodeAt(id), kIsLeafOff);
}
uint16_t BPlusTree::NumKeys(uint32_t id) {
  const uint16_t n = LoadField<uint16_t>(NodeAt(id), kNumKeysOff);
  if (n > kFanout) {
    htm::AbortCurrentTransactionOrDie("B+ tree key count out of range");
  }
  return n;
}
void BPlusTree::SetNumKeys(uint32_t id, uint16_t n) {
  StoreField<uint16_t>(NodeAt(id), kNumKeysOff, n);
}
uint32_t BPlusTree::NextLeaf(uint32_t id) {
  return LoadField<uint32_t>(NodeAt(id), kNextLeafOff);
}
void BPlusTree::SetNextLeaf(uint32_t id, uint32_t next) {
  StoreField<uint32_t>(NodeAt(id), kNextLeafOff, next);
}
uint64_t BPlusTree::KeyAt(uint32_t id, int i) {
  return LoadField<uint64_t>(NodeAt(id),
                             keys_off_ + sizeof(uint64_t) * static_cast<size_t>(i));
}
void BPlusTree::SetKeyAt(uint32_t id, int i, uint64_t key) {
  StoreField<uint64_t>(NodeAt(id),
                       keys_off_ + sizeof(uint64_t) * static_cast<size_t>(i),
                       key);
}
uint32_t BPlusTree::ChildAt(uint32_t id, int i) {
  return LoadField<uint32_t>(
      NodeAt(id), payload_off_ + sizeof(uint32_t) * static_cast<size_t>(i));
}
void BPlusTree::SetChildAt(uint32_t id, int i, uint32_t child) {
  StoreField<uint32_t>(NodeAt(id),
                       payload_off_ + sizeof(uint32_t) * static_cast<size_t>(i),
                       child);
}
void BPlusTree::ReadValueAt(uint32_t id, int i, void* out) {
  htm::ReadBytes(out,
                 NodeAt(id) + payload_off_ +
                     static_cast<size_t>(i) * config_.value_size,
                 config_.value_size);
}
void BPlusTree::WriteValueAt(uint32_t id, int i, const void* value) {
  htm::WriteBytes(NodeAt(id) + payload_off_ +
                      static_cast<size_t>(i) * config_.value_size,
                  value, config_.value_size);
}

int BPlusTree::LowerBound(uint32_t id, uint64_t key) {
  const int n = NumKeys(id);
  int i = 0;
  while (i < n && KeyAt(id, i) < key) {
    ++i;
  }
  return i;
}

// Internal routing: child index = number of keys <= key (keys[i] is the
// smallest key reachable under child[i+1]).
uint32_t BPlusTree::DescendToLeaf(uint64_t key, uint32_t* path,
                                  int* path_child, int* depth) {
  uint32_t node = static_cast<uint32_t>(ControlLoad(kControlRoot));
  int d = 0;
  while (node != 0 && !IsLeaf(node)) {
    if (d > 64) {
      htm::AbortCurrentTransactionOrDie("B+ tree descent too deep");
    }
    const int n = NumKeys(node);
    int i = 0;
    while (i < n && KeyAt(node, i) <= key) {
      ++i;
    }
    if (path != nullptr) {
      // drtm-lint: allow(TX01 out-params point at the caller's stack, not tree memory)
      path[d] = node;
      path_child[d] = i;  // drtm-lint: allow(TX01 out-param, caller's stack)
    }
    ++d;
    node = ChildAt(node, i);
  }
  if (depth != nullptr) {
    *depth = d;  // drtm-lint: allow(TX01 out-param, caller's stack)
  }
  return node;
}

void BPlusTree::InsertIntoLeaf(uint32_t leaf, int pos, uint64_t key,
                               const void* value) {
  const int n = NumKeys(leaf);
  for (int i = n; i > pos; --i) {
    SetKeyAt(leaf, i, KeyAt(leaf, i - 1));
    uint8_t tmp[512];
    assert(config_.value_size <= sizeof(tmp));
    ReadValueAt(leaf, i - 1, tmp);
    WriteValueAt(leaf, i, tmp);
  }
  SetKeyAt(leaf, pos, key);
  WriteValueAt(leaf, pos, value);
  SetNumKeys(leaf, static_cast<uint16_t>(n + 1));
}

bool BPlusTree::Insert(uint64_t key, const void* value) {
  uint32_t root = static_cast<uint32_t>(ControlLoad(kControlRoot));
  if (root == 0) {
    const NodeRef leaf = AllocateNode(true);
    if (!leaf.valid()) {
      return false;
    }
    SetKeyAt(leaf.id, 0, key);
    WriteValueAt(leaf.id, 0, value);
    SetNumKeys(leaf.id, 1);
    ControlStore(kControlRoot, static_cast<uint64_t>(leaf.id));
    ControlStore(kControlLive, ControlLoad(kControlLive) + 1);
    return true;
  }

  // Top-down preemptive splitting: any full node on the path is split
  // before descending so parents always have room.
  auto split_child = [&](uint32_t parent, int idx) -> bool {
    const uint32_t child = ChildAt(parent, idx);
    const int n = NumKeys(child);  // == kFanout
    const int mid = n / 2;
    const NodeRef right = AllocateNode(IsLeaf(child) != 0);
    if (!right.valid()) {
      return false;
    }
    uint64_t promote;
    if (IsLeaf(child) != 0) {
      // Copy-up: right gets keys[mid..n), promote right's first key.
      for (int i = mid; i < n; ++i) {
        SetKeyAt(right.id, i - mid, KeyAt(child, i));
        uint8_t tmp[512];
        ReadValueAt(child, i, tmp);
        WriteValueAt(right.id, i - mid, tmp);
      }
      SetNumKeys(right.id, static_cast<uint16_t>(n - mid));
      SetNumKeys(child, static_cast<uint16_t>(mid));
      SetNextLeaf(right.id, NextLeaf(child));
      SetNextLeaf(child, right.id);
      promote = KeyAt(right.id, 0);
    } else {
      // Push-up: keys[mid] moves to the parent.
      promote = KeyAt(child, mid);
      for (int i = mid + 1; i < n; ++i) {
        SetKeyAt(right.id, i - mid - 1, KeyAt(child, i));
      }
      for (int i = mid + 1; i <= n; ++i) {
        SetChildAt(right.id, i - mid - 1, ChildAt(child, i));
      }
      SetNumKeys(right.id, static_cast<uint16_t>(n - mid - 1));
      SetNumKeys(child, static_cast<uint16_t>(mid));
    }
    // Make room in the parent at idx.
    const int pn = NumKeys(parent);
    for (int i = pn; i > idx; --i) {
      SetKeyAt(parent, i, KeyAt(parent, i - 1));
      SetChildAt(parent, i + 1, ChildAt(parent, i));
    }
    SetKeyAt(parent, idx, promote);
    SetChildAt(parent, idx + 1, right.id);
    SetNumKeys(parent, static_cast<uint16_t>(pn + 1));
    return true;
  };

  if (NumKeys(root) == kFanout) {
    const NodeRef new_root = AllocateNode(false);
    if (!new_root.valid()) {
      return false;
    }
    SetChildAt(new_root.id, 0, root);
    if (!split_child(new_root.id, 0)) {
      return false;
    }
    ControlStore(kControlRoot, static_cast<uint64_t>(new_root.id));
    root = new_root.id;
  }

  uint32_t node = root;
  while (IsLeaf(node) == 0) {
    const int n = NumKeys(node);
    int i = 0;
    while (i < n && KeyAt(node, i) <= key) {
      ++i;
    }
    uint32_t child = ChildAt(node, i);
    if (NumKeys(child) == kFanout) {
      if (!split_child(node, i)) {
        return false;
      }
      if (key >= KeyAt(node, i)) {
        ++i;
      }
      child = ChildAt(node, i);
    }
    node = child;
  }

  const int pos = LowerBound(node, key);
  if (pos < NumKeys(node) && KeyAt(node, pos) == key) {
    return false;  // duplicate
  }
  InsertIntoLeaf(node, pos, key, value);
  ControlStore(kControlLive, ControlLoad(kControlLive) + 1);
  return true;
}

bool BPlusTree::Get(uint64_t key, void* value_out) {
  const uint32_t leaf = DescendToLeaf(key, nullptr, nullptr, nullptr);
  if (leaf == 0) {
    return false;
  }
  const int pos = LowerBound(leaf, key);
  if (pos >= NumKeys(leaf) || KeyAt(leaf, pos) != key) {
    return false;
  }
  ReadValueAt(leaf, pos, value_out);
  return true;
}

bool BPlusTree::Put(uint64_t key, const void* value) {
  const uint32_t leaf = DescendToLeaf(key, nullptr, nullptr, nullptr);
  if (leaf == 0) {
    return false;
  }
  const int pos = LowerBound(leaf, key);
  if (pos >= NumKeys(leaf) || KeyAt(leaf, pos) != key) {
    return false;
  }
  WriteValueAt(leaf, pos, value);
  return true;
}

bool BPlusTree::Remove(uint64_t key) {
  const uint32_t leaf = DescendToLeaf(key, nullptr, nullptr, nullptr);
  if (leaf == 0) {
    return false;
  }
  const int pos = LowerBound(leaf, key);
  const int n = NumKeys(leaf);
  if (pos >= n || KeyAt(leaf, pos) != key) {
    return false;
  }
  for (int i = pos; i < n - 1; ++i) {
    SetKeyAt(leaf, i, KeyAt(leaf, i + 1));
    uint8_t tmp[512];
    ReadValueAt(leaf, i + 1, tmp);
    WriteValueAt(leaf, i, tmp);
  }
  SetNumKeys(leaf, static_cast<uint16_t>(n - 1));
  ControlStore(kControlLive, ControlLoad(kControlLive) - 1);
  return true;
}

size_t BPlusTree::Scan(uint64_t lo, uint64_t hi,
                       const std::function<bool(uint64_t, const void*)>& fn) {
  uint32_t leaf = DescendToLeaf(lo, nullptr, nullptr, nullptr);
  size_t visited = 0;
  size_t hops = 0;
  uint8_t tmp[512];
  assert(config_.value_size <= sizeof(tmp));
  while (leaf != 0) {
    if (++hops > config_.max_nodes) {
      htm::AbortCurrentTransactionOrDie("B+ tree leaf chain cycle");
    }
    const int n = NumKeys(leaf);
    for (int i = 0; i < n; ++i) {
      const uint64_t key = KeyAt(leaf, i);
      if (key < lo) {
        continue;
      }
      if (key > hi) {
        return visited;
      }
      ReadValueAt(leaf, i, tmp);
      ++visited;
      if (!fn(key, tmp)) {
        return visited;
      }
    }
    leaf = NextLeaf(leaf);
  }
  return visited;
}

bool BPlusTree::FindFloor(uint64_t lo, uint64_t bound, uint64_t* key_out,
                          void* value_out) {
  bool found = false;
  Scan(lo, bound, [&](uint64_t key, const void* value) {
    found = true;
    // drtm-lint: allow(TX01 key_out is a caller-owned out-parameter, not store memory)
    *key_out = key;
    std::memcpy(value_out, value, config_.value_size);
    return true;  // keep going; the last visited is the floor
  });
  return found;
}

size_t BPlusTree::size() {
  return static_cast<size_t>(ControlLoad(kControlLive));
}

}  // namespace store
}  // namespace drtm
