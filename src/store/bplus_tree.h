// Ordered store: an HTM-protected B+ tree (the paper reuses DBX's
// HTM-protected B+ tree for its ordered tables; remote access to ordered
// stores goes over SEND/RECV verbs, so this structure has no RDMA-side
// layout obligations).
//
// All shared accesses go through the htm::Load/Store dispatch helpers:
// inside a transaction the tree is isolated by the HTM emulator; outside
// (bulk loading) the same code uses strong accesses.
//
// Structural simplifications, both standard for in-memory stores:
//   * deletes remove keys from leaves without rebalancing;
//   * nodes come from a fixed pool whose bump pointer lives in
//     HTM-visible memory, so an aborted insert rolls its allocation back.
#ifndef SRC_STORE_BPLUS_TREE_H_
#define SRC_STORE_BPLUS_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>

namespace drtm {
namespace store {

class BPlusTree {
 public:
  static constexpr int kFanout = 16;

  struct Config {
    uint32_t value_size = 8;
    uint32_t max_nodes = 1 << 16;
  };

  explicit BPlusTree(const Config& config);

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  uint32_t value_size() const { return config_.value_size; }

  // Inserts key -> value; false on duplicate or node-pool exhaustion.
  bool Insert(uint64_t key, const void* value);

  // Copies the value for key; false if absent.
  bool Get(uint64_t key, void* value_out);

  // Overwrites the value for key; false if absent.
  bool Put(uint64_t key, const void* value);

  // Removes key from its leaf; false if absent.
  bool Remove(uint64_t key);

  // Visits [lo, hi] in ascending key order; fn returns false to stop.
  // Returns the number of visited entries.
  size_t Scan(uint64_t lo, uint64_t hi,
              const std::function<bool(uint64_t, const void*)>& fn);

  // Largest key <= bound within [lo, bound]; false if none.
  bool FindFloor(uint64_t lo, uint64_t bound, uint64_t* key_out,
                 void* value_out);

  size_t size();

 private:
  // Node ids are pool indices + 1; 0 means "none".
  struct NodeRef {
    uint32_t id = 0;
    bool valid() const { return id != 0; }
  };

  uint8_t* NodeAt(uint32_t id);
  NodeRef AllocateNode(bool leaf);

  // Field accessors (all through htm dispatch).
  uint16_t IsLeaf(uint32_t id);
  uint16_t NumKeys(uint32_t id);
  void SetNumKeys(uint32_t id, uint16_t n);
  uint32_t NextLeaf(uint32_t id);
  void SetNextLeaf(uint32_t id, uint32_t next);
  uint64_t KeyAt(uint32_t id, int i);
  void SetKeyAt(uint32_t id, int i, uint64_t key);
  uint32_t ChildAt(uint32_t id, int i);
  void SetChildAt(uint32_t id, int i, uint32_t child);
  void ReadValueAt(uint32_t id, int i, void* out);
  void WriteValueAt(uint32_t id, int i, const void* value);

  // HTM-visible control words live in the 64-byte pool header:
  // {0: root_id, 1: bump, 2: live_count}. Accessed by byte offset with
  // memcpy semantics — no typed pointer into the pool exists anywhere.
  uint64_t ControlLoad(uint64_t which);
  void ControlStore(uint64_t which, uint64_t value);

  // Position of the first key >= key in node id.
  int LowerBound(uint32_t id, uint64_t key);

  // Descends to the leaf that should contain key, recording the path.
  uint32_t DescendToLeaf(uint64_t key, uint32_t* path, int* path_child,
                         int* depth);

  void InsertIntoLeaf(uint32_t leaf, int pos, uint64_t key,
                      const void* value);

  Config config_;
  size_t node_bytes_;
  size_t keys_off_;
  size_t payload_off_;
  std::unique_ptr<uint8_t[]> pool_;
};

}  // namespace store
}  // namespace drtm

#endif  // SRC_STORE_BPLUS_TREE_H_
