#include "src/store/cluster_hash.h"

#include <cassert>
#include <cstring>

#include "src/htm/htm.h"

namespace drtm {
namespace store {

namespace {

// Offsets of the allocator metadata words, relative to meta_offset_.
constexpr uint64_t kEntryBump = 0;
constexpr uint64_t kEntryFreeHead = 8;
constexpr uint64_t kBucketBump = 16;
constexpr uint64_t kBucketFreeHead = 24;
constexpr uint64_t kLiveCount = 32;
constexpr uint64_t kMetaBytes = 64;

}  // namespace

ClusterHashTable::ClusterHashTable(rdma::NodeMemory* memory,
                                   const Config& config)
    : memory_(memory) {
  assert((config.main_buckets & (config.main_buckets - 1)) == 0);
  geo_.main_buckets = config.main_buckets;
  geo_.value_size = config.value_size;
  geo_.entry_size = (sizeof(EntryHeader) + config.value_size + 7) & ~7ULL;
  geo_.indirect_buckets = config.indirect_buckets;
  geo_.capacity = config.capacity;

  meta_offset_ = memory_->Allocate(kMetaBytes, 64);
  geo_.main_offset =
      memory_->Allocate(config.main_buckets * kBucketBytes, kBucketBytes);
  geo_.indirect_offset =
      memory_->Allocate(config.indirect_buckets * kBucketBytes, kBucketBytes);
  geo_.entry_base =
      memory_->Allocate(config.capacity * geo_.entry_size, 64);

  // Region memory is zero-initialized; zero means: empty buckets
  // (SlotType::kFree), bump allocators at zero, empty free lists
  // (kInvalidOffset is used as the explicit nil below, so seed the heads).
  uint64_t* meta = reinterpret_cast<uint64_t*>(memory_->At(meta_offset_));
  meta[kEntryFreeHead / 8] = kInvalidOffset;
  meta[kBucketFreeHead / 8] = kInvalidOffset;
}

HeaderSlot ClusterHashTable::LoadSlot(uint64_t bucket_off, int index) {
  HeaderSlot slot;
  htm::ReadBytes(&slot,
                 memory_->At(bucket_off +
                             static_cast<uint64_t>(index) * kSlotBytes),
                 sizeof(slot));
  return slot;
}

void ClusterHashTable::StoreSlot(uint64_t bucket_off, int index,
                                 const HeaderSlot& slot) {
  htm::WriteBytes(
      memory_->At(bucket_off + static_cast<uint64_t>(index) * kSlotBytes),
      &slot, sizeof(slot));
}

uint64_t ClusterHashTable::AllocateEntry() {
  uint64_t* meta = reinterpret_cast<uint64_t*>(memory_->At(meta_offset_));
  const uint64_t free_head = htm::Load(&meta[kEntryFreeHead / 8]);
  if (free_head != kInvalidOffset) {
    // Pop: the first 8 bytes of a free entry hold the next-free offset.
    const uint64_t next =
        htm::Load(reinterpret_cast<uint64_t*>(memory_->At(free_head)));
    htm::Store(&meta[kEntryFreeHead / 8], next);
    return free_head;
  }
  const uint64_t bump = htm::Load(&meta[kEntryBump / 8]);
  if (bump >= geo_.capacity) {
    return kInvalidOffset;
  }
  htm::Store(&meta[kEntryBump / 8], bump + 1);
  return geo_.EntryOffset(bump);
}

void ClusterHashTable::FreeEntry(uint64_t entry_off) {
  uint64_t* meta = reinterpret_cast<uint64_t*>(memory_->At(meta_offset_));
  const uint64_t head = htm::Load(&meta[kEntryFreeHead / 8]);
  htm::Store(reinterpret_cast<uint64_t*>(memory_->At(entry_off)), head);
  htm::Store(&meta[kEntryFreeHead / 8], entry_off);
}

uint64_t ClusterHashTable::AllocateIndirectBucket() {
  uint64_t* meta = reinterpret_cast<uint64_t*>(memory_->At(meta_offset_));
  const uint64_t bump = htm::Load(&meta[kBucketBump / 8]);
  if (bump >= geo_.indirect_buckets) {
    return kInvalidOffset;
  }
  htm::Store(&meta[kBucketBump / 8], bump + 1);
  return geo_.indirect_offset + bump * kBucketBytes;
}

bool ClusterHashTable::FindSlot(uint64_t key, uint64_t* bucket_off,
                                int* slot_index) {
  uint64_t bucket = geo_.MainBucketOffset(key);
  while (true) {
    uint64_t next_bucket = kInvalidOffset;
    for (int i = 0; i < kSlotsPerBucket; ++i) {
      const HeaderSlot slot = LoadSlot(bucket, i);
      if (slot.type() == SlotType::kEntry && slot.key == key) {
        // drtm-lint: allow(TX01 out-params point at the caller's stack, not table memory)
        *bucket_off = bucket;
        *slot_index = i;  // drtm-lint: allow(TX01 out-param, caller's stack)
        return true;
      }
      if (slot.type() == SlotType::kHeader) {
        next_bucket = slot.offset();
      }
    }
    if (next_bucket == kInvalidOffset) {
      return false;
    }
    bucket = next_bucket;
  }
}

uint64_t ClusterHashTable::FindEntry(uint64_t key) {
  uint64_t bucket;
  int index;
  if (!FindSlot(key, &bucket, &index)) {
    return kInvalidOffset;
  }
  return LoadSlot(bucket, index).offset();
}

bool ClusterHashTable::Get(uint64_t key, void* value_out) {
  const uint64_t entry = FindEntry(key);
  if (entry == kInvalidOffset) {
    return false;
  }
  htm::ReadBytes(value_out, ValuePtr(entry), geo_.value_size);
  return true;
}

bool ClusterHashTable::Put(uint64_t key, const void* value) {
  const uint64_t entry = FindEntry(key);
  if (entry == kInvalidOffset) {
    return false;
  }
  const uint32_t version = htm::Load(VersionPtr(entry));
  htm::Store(VersionPtr(entry), version + 1);
  htm::WriteBytes(ValuePtr(entry), value, geo_.value_size);
  return true;
}

bool ClusterHashTable::Insert(uint64_t key, const void* value) {
  // Reject duplicates and find placement in one chain walk.
  uint64_t bucket = geo_.MainBucketOffset(key);
  uint64_t free_bucket = kInvalidOffset;
  int free_index = -1;
  uint64_t last_bucket = bucket;
  while (true) {
    uint64_t next_bucket = kInvalidOffset;
    for (int i = 0; i < kSlotsPerBucket; ++i) {
      const HeaderSlot slot = LoadSlot(bucket, i);
      if (slot.type() == SlotType::kEntry && slot.key == key) {
        return false;  // duplicate
      }
      if (slot.type() == SlotType::kFree && free_bucket == kInvalidOffset) {
        free_bucket = bucket;
        free_index = i;
      }
      if (slot.type() == SlotType::kHeader) {
        next_bucket = slot.offset();
      }
    }
    if (next_bucket == kInvalidOffset) {
      last_bucket = bucket;
      break;
    }
    bucket = next_bucket;
  }

  const uint64_t entry = AllocateEntry();
  if (entry == kInvalidOffset) {
    return false;
  }

  // Initialize the entry. Incarnation increases on INSERT (and DELETE) so
  // cached locations from a previous lifetime of this cell are detected.
  EntryHeader header;
  htm::ReadBytes(&header, EntryPtr(entry), sizeof(header));
  header.key = key;
  header.incarnation += 1;
  header.version = 0;
  header.state = 0;
  htm::WriteBytes(EntryPtr(entry), &header, sizeof(header));
  htm::WriteBytes(ValuePtr(entry), value, geo_.value_size);

  HeaderSlot new_slot;
  new_slot.meta = HeaderSlot::Pack(
      SlotType::kEntry, static_cast<uint16_t>(header.incarnation & kLossyMask),
      entry);
  new_slot.key = key;

  if (free_bucket != kInvalidOffset) {
    StoreSlot(free_bucket, free_index, new_slot);
  } else {
    // Chain extension: demote the last resident of the tail bucket into a
    // fresh indirect header, then add the new entry beside it (Fig. 9).
    const uint64_t indirect = AllocateIndirectBucket();
    if (indirect == kInvalidOffset) {
      FreeEntry(entry);
      return false;
    }
    const HeaderSlot demoted = LoadSlot(last_bucket, kSlotsPerBucket - 1);
    StoreSlot(indirect, 0, demoted);
    StoreSlot(indirect, 1, new_slot);
    HeaderSlot link;
    link.meta = HeaderSlot::Pack(SlotType::kHeader, 0, indirect);
    link.key = 0;
    StoreSlot(last_bucket, kSlotsPerBucket - 1, link);
  }

  uint64_t* meta = reinterpret_cast<uint64_t*>(memory_->At(meta_offset_));
  htm::Store(&meta[kLiveCount / 8], htm::Load(&meta[kLiveCount / 8]) + 1);
  return true;
}

bool ClusterHashTable::Remove(uint64_t key) {
  uint64_t bucket;
  int index;
  if (!FindSlot(key, &bucket, &index)) {
    return false;
  }
  const HeaderSlot slot = LoadSlot(bucket, index);
  const uint64_t entry = slot.offset();

  // Logical deletion: bump incarnation first so any cached location for
  // this entry fails its incarnation check.
  uint32_t* incarnation = reinterpret_cast<uint32_t*>(EntryPtr(entry) + 8);
  htm::Store(incarnation, htm::Load(incarnation) + 1);

  HeaderSlot cleared;
  cleared.meta = HeaderSlot::Pack(SlotType::kFree, 0, 0);
  cleared.key = 0;
  StoreSlot(bucket, index, cleared);
  FreeEntry(entry);

  uint64_t* meta = reinterpret_cast<uint64_t*>(memory_->At(meta_offset_));
  htm::Store(&meta[kLiveCount / 8], htm::Load(&meta[kLiveCount / 8]) - 1);
  return true;
}

uint64_t ClusterHashTable::ForEachEntryInBucketRange(
    uint64_t bucket_lo, uint64_t bucket_hi,
    const std::function<bool(uint64_t, uint64_t)>& fn) {
  if (bucket_hi > geo_.main_buckets) {
    bucket_hi = geo_.main_buckets;
  }
  uint64_t visited = 0;
  const uint64_t max_chain = geo_.indirect_buckets + 1;
  for (uint64_t b = bucket_lo; b < bucket_hi; ++b) {
    uint64_t bucket = geo_.main_offset + b * kBucketBytes;
    for (uint64_t depth = 0; depth < max_chain; ++depth) {
      uint64_t next_bucket = kInvalidOffset;
      for (int i = 0; i < kSlotsPerBucket; ++i) {
        const HeaderSlot slot = LoadSlot(bucket, i);
        if (slot.type() == SlotType::kEntry) {
          ++visited;
          if (!fn(slot.key, slot.offset())) {
            return visited;
          }
        } else if (slot.type() == SlotType::kHeader) {
          next_bucket = slot.offset();
        }
      }
      if (next_bucket == kInvalidOffset) {
        break;
      }
      bucket = next_bucket;
    }
  }
  return visited;
}

bool ClusterHashTable::InstallVersioned(uint64_t key, uint32_t version,
                                        const void* value) {
  uint64_t entry = FindEntry(key);
  if (entry == kInvalidOffset) {
    if (!Insert(key, value)) {
      return false;
    }
    entry = FindEntry(key);
    if (entry == kInvalidOffset) {
      return false;
    }
    htm::Store(VersionPtr(entry), version);
    return true;
  }
  const uint32_t current = htm::Load(VersionPtr(entry));
  if (current < version) {
    htm::Store(VersionPtr(entry), version);
    htm::WriteBytes(ValuePtr(entry), value, geo_.value_size);
  }
  return true;
}

uint64_t ClusterHashTable::live_entries() const {
  const uint64_t* meta =
      reinterpret_cast<const uint64_t*>(memory_->At(meta_offset_));
  return htm::Load(&meta[kLiveCount / 8]);
}

}  // namespace store
}  // namespace drtm
