// Host side of the DrTM-KV cluster-chaining hash table (section 5.2).
//
// Local operations (READ/WRITE/INSERT/DELETE) are designed to run inside
// an HTM transaction: every shared access goes through the htm::Load /
// htm::Store dispatch helpers, so the HTM emulator provides race
// detection "for free" — the property that lets DrTM-KV drop Pilaf's
// checksums and FaRM's per-line versions. Run outside a transaction
// (bulk loading), the same code uses strong accesses.
//
// INSERT never relocates existing header slots (unlike cuckoo or
// hopscotch): a full bucket demotes its last resident into a freshly
// linked indirect header, keeping the HTM write set small.
#ifndef SRC_STORE_CLUSTER_HASH_H_
#define SRC_STORE_CLUSTER_HASH_H_

#include <cstdint>
#include <functional>

#include "src/rdma/node_memory.h"
#include "src/store/kv_layout.h"

namespace drtm {
namespace store {

class ClusterHashTable {
 public:
  struct Config {
    uint64_t main_buckets = 1 << 10;  // power of two
    uint64_t indirect_buckets = 1 << 9;
    uint64_t capacity = 1 << 13;  // entries
    uint32_t value_size = 64;
  };

  ClusterHashTable(rdma::NodeMemory* memory, const Config& config);

  ClusterHashTable(const ClusterHashTable&) = delete;
  ClusterHashTable& operator=(const ClusterHashTable&) = delete;

  const Geometry& geometry() const { return geo_; }
  rdma::NodeMemory& memory() { return *memory_; }

  // --- local operations (HTM-protected when inside a transaction) ----------

  // Inserts key -> value. Returns false if the key already exists or the
  // table is out of entries/indirect buckets.
  bool Insert(uint64_t key, const void* value);

  // Logically deletes the key: bumps the entry incarnation (so cached
  // locations detect staleness), frees the entry, clears the slot.
  bool Remove(uint64_t key);

  // Copies the value out. Returns false if absent.
  bool Get(uint64_t key, void* value_out);

  // Overwrites the value and bumps the version. Returns false if absent.
  bool Put(uint64_t key, const void* value);

  // Returns the entry offset for key, or kInvalidOffset. The transaction
  // layer uses this to reach the state/version/value words directly.
  uint64_t FindEntry(uint64_t key);

  // Raw pointers into the registered region (valid for the table's
  // lifetime).
  uint8_t* EntryPtr(uint64_t entry_off) {
    return static_cast<uint8_t*>(memory_->At(entry_off));
  }
  uint64_t* StatePtr(uint64_t entry_off) {
    return reinterpret_cast<uint64_t*>(EntryPtr(entry_off) +
                                       kEntryStateOffset);
  }
  uint32_t* VersionPtr(uint64_t entry_off) {
    return reinterpret_cast<uint32_t*>(EntryPtr(entry_off) +
                                       kEntryVersionOffset);
  }
  uint8_t* ValuePtr(uint64_t entry_off) {
    return EntryPtr(entry_off) + kEntryValueOffset;
  }

  // Walks main buckets [bucket_lo, bucket_hi) and their indirect chains,
  // calling fn(key, entry_off) for every resident entry; fn returning
  // false stops the walk. Chain walks are step-capped (an indirect chain
  // can never exceed the indirect pool) so a torn header link from a
  // chaos run degrades to a short scan instead of an infinite loop.
  // Returns the number of entries visited. The snapshot is only loosely
  // consistent under concurrent writers — migration re-walks the range
  // after freezing it, so transient misses are caught up, not lost.
  uint64_t ForEachEntryInBucketRange(
      uint64_t bucket_lo, uint64_t bucket_hi,
      const std::function<bool(uint64_t key, uint64_t entry_off)>& fn);

  uint64_t ForEachEntry(
      const std::function<bool(uint64_t key, uint64_t entry_off)>& fn) {
    return ForEachEntryInBucketRange(0, geo_.main_buckets, fn);
  }

  // Migration-side install: create-or-overwrite `key` so the record ends
  // at least at `version`. Copy-pass and dual-write installs can arrive
  // in either order; keeping the max version makes every interleaving
  // converge to the newest value. Returns false only on allocation
  // failure (table full).
  bool InstallVersioned(uint64_t key, uint32_t version, const void* value);

  uint64_t live_entries() const;

 private:
  // Finds (bucket offset, slot index) holding key; returns false on miss.
  bool FindSlot(uint64_t key, uint64_t* bucket_off, int* slot_index);

  uint64_t AllocateEntry();
  void FreeEntry(uint64_t entry_off);
  uint64_t AllocateIndirectBucket();

  HeaderSlot LoadSlot(uint64_t bucket_off, int index);
  void StoreSlot(uint64_t bucket_off, int index, const HeaderSlot& slot);

  rdma::NodeMemory* memory_;
  Geometry geo_;
  // Allocation metadata lives in the registered region so it is covered
  // by HTM (an aborted INSERT rolls its allocation back).
  uint64_t meta_offset_;  // {entry_bump, entry_free_head, bucket_bump,
                          //  bucket_free_head, live_count}
};

}  // namespace store
}  // namespace drtm

#endif  // SRC_STORE_CLUSTER_HASH_H_
