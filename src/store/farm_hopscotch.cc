// drtm-lint: allow-file(TX03 FaRM-style store is part of the RDMA substrate)
// Slot publication and hopscotch displacement emulate one-sided RDMA
// writes with version-table coherence; never run inside a transaction.
#include "src/store/farm_hopscotch.h"

#include <cstring>

#include "src/htm/htm.h"
#include "src/store/kv_layout.h"

namespace drtm {
namespace store {

FarmHopscotchTable::FarmHopscotchTable(rdma::NodeMemory* memory,
                                       const Config& config)
    : memory_(memory), config_(config) {
  slot_size_ = sizeof(SlotHeader);
  if (config.mode == Mode::kInlineValue) {
    slot_size_ += config.value_size;
  }
  slot_size_ = (slot_size_ + 7) & ~7ULL;
  slots_off_ = memory_->Allocate(config.buckets * slot_size_, 64);
  const uint64_t value_cell = (8 + config.value_size + 7) & ~7ULL;
  if (config.mode == Mode::kOffsetValue) {
    values_off_ = memory_->Allocate(config.buckets * value_cell, 64);
  }
  // Overflow cells for keys that hopscotch displacement cannot place
  // (FaRM's variant tolerates high occupancy the same way; these chains
  // are what push its lookup cost slightly above 1 READ in Table 4).
  overflow_cell_size_ = (sizeof(OverflowCell) + config.value_size + 7) & ~7ULL;
  overflow_off_ = memory_->Allocate((config.buckets / 4 + 16) *
                                        overflow_cell_size_,
                                    64);
  overflow_capacity_ = config.buckets / 4 + 16;
}

FarmHopscotchTable::SlotHeader* FarmHopscotchTable::SlotAt(uint64_t index) {
  return reinterpret_cast<SlotHeader*>(memory_->At(SlotOffset(index)));
}

const uint8_t* FarmHopscotchTable::SlotValue(const SlotHeader* slot) const {
  return reinterpret_cast<const uint8_t*>(slot) + sizeof(SlotHeader);
}

uint64_t FarmHopscotchTable::Home(uint64_t key) const {
  return MixHash(key) & (config_.buckets - 1);
}

bool FarmHopscotchTable::StoreValueFor(SlotHeader* header, uint64_t key,
                                       const void* value, uint8_t* inline_at) {
  if (config_.mode == Mode::kInlineValue) {
    // drtm-lint: allow(TX01 inline_at points at the caller's staging buffer, published later via StrongWrite)
    std::memcpy(inline_at, value, config_.value_size);
    return true;
  }
  const uint64_t value_cell = (8 + config_.value_size + 7) & ~7ULL;
  if (next_value_ >= config_.buckets) {
    return false;
  }
  const uint64_t off = values_off_ + next_value_ * value_cell;
  ++next_value_;
  uint8_t* cell = static_cast<uint8_t*>(memory_->At(off));
  // drtm-lint: allow(TX01 staging a value cell nobody can reach yet, it is published by the header write below)
  std::memcpy(cell, &key, 8);
  // drtm-lint: allow(TX01 staging a value cell nobody can reach yet, it is published by the header write below)
  std::memcpy(cell + 8, value, config_.value_size);
  header->value_off = off;
  return true;
}

bool FarmHopscotchTable::InsertOverflow(uint64_t key, const void* value) {
  if (next_overflow_ >= overflow_capacity_) {
    return false;
  }
  const uint64_t cell_off =
      overflow_off_ + next_overflow_ * overflow_cell_size_;
  ++next_overflow_;
  OverflowCell cell{};
  cell.key = key;
  SlotHeader* home_slot = SlotAt(Home(key));
  cell.next = home_slot->overflow_off;
  std::vector<uint8_t> buf(overflow_cell_size_, 0);
  if (config_.mode == Mode::kOffsetValue) {
    // Reuse the inline area of the overflow cell for the value in both
    // modes; a remote reader fetches the whole cell in one READ.
  }
  std::memcpy(buf.data(), &cell, sizeof(cell));
  std::memcpy(buf.data() + sizeof(OverflowCell), value, config_.value_size);
  htm::StrongWrite(memory_->At(cell_off), buf.data(), buf.size());
  // Publish: link from the home bucket.
  SlotHeader updated = *home_slot;
  updated.overflow_off = cell_off;
  htm::StrongWrite(&home_slot->overflow_off, &updated.overflow_off, 8);
  ++live_;
  return true;
}

bool FarmHopscotchTable::Insert(uint64_t key, const void* value) {
  const uint64_t home = Home(key);
  // Duplicate check: neighborhood plus overflow chain.
  for (int i = 0; i < kNeighborhood; ++i) {
    SlotHeader* slot =
        SlotAt((home + static_cast<uint64_t>(i)) & (config_.buckets - 1));
    if (slot->used != 0 && slot->key == key) {
      return false;
    }
  }
  for (uint64_t off = SlotAt(home)->overflow_off; off != 0;) {
    const OverflowCell* cell =
        static_cast<const OverflowCell*>(memory_->At(off));
    if (cell->key == key) {
      return false;
    }
    off = cell->next;
  }

  // Linear probe for a free slot (wrapping), bounded.
  uint64_t free_index = kInvalidOffset;
  for (uint64_t d = 0; d < config_.buckets; ++d) {
    const uint64_t index = (home + d) & (config_.buckets - 1);
    if (SlotAt(index)->used == 0) {
      free_index = index;
      break;
    }
  }
  if (free_index == kInvalidOffset) {
    return InsertOverflow(key, value);
  }
  // Hopscotch displacement: walk the free slot back into the
  // neighborhood of `home`.
  auto distance = [&](uint64_t from, uint64_t to) {
    return (to - from) & (config_.buckets - 1);
  };
  while (distance(home, free_index) >= kNeighborhood) {
    bool moved = false;
    for (uint64_t back = kNeighborhood - 1; back >= 1; --back) {
      const uint64_t candidate = (free_index - back) & (config_.buckets - 1);
      SlotHeader* cand = SlotAt(candidate);
      if (cand->used == 0) {
        continue;
      }
      if (distance(Home(cand->key), free_index) < kNeighborhood) {
        SlotHeader* free_slot = SlotAt(free_index);
        std::vector<uint8_t> tmp(slot_size_);
        std::memcpy(tmp.data(), cand, slot_size_);
        // Preserve the destination bucket's overflow link and clear the
        // source's (overflow chains belong to buckets, not keys).
        SlotHeader* moved_header = reinterpret_cast<SlotHeader*>(tmp.data());
        moved_header->overflow_off = free_slot->overflow_off;
        const uint64_t cand_overflow = cand->overflow_off;
        htm::StrongWrite(free_slot, tmp.data(), slot_size_);
        SlotHeader cleared{};
        cleared.overflow_off = cand_overflow;
        std::vector<uint8_t> cleared_buf(slot_size_, 0);
        std::memcpy(cleared_buf.data(), &cleared, sizeof(cleared));
        htm::StrongWrite(cand, cleared_buf.data(), slot_size_);
        free_index = candidate;
        moved = true;
        break;
      }
    }
    if (!moved) {
      return InsertOverflow(key, value);
    }
  }

  std::vector<uint8_t> incoming(slot_size_, 0);
  SlotHeader header{};
  header.key = key;
  header.used = 1;
  header.overflow_off = SlotAt(free_index)->overflow_off;
  if (!StoreValueFor(&header, key, value,
                     incoming.data() + sizeof(SlotHeader))) {
    return false;
  }
  std::memcpy(incoming.data(), &header, sizeof(header));
  htm::StrongWrite(SlotAt(free_index), incoming.data(), slot_size_);
  ++live_;
  return true;
}

bool FarmHopscotchTable::Get(uint64_t key, void* value_out) {
  const uint64_t home = Home(key);
  for (int i = 0; i < kNeighborhood; ++i) {
    SlotHeader* slot =
        SlotAt((home + static_cast<uint64_t>(i)) & (config_.buckets - 1));
    if (slot->used == 0 || slot->key != key) {
      continue;
    }
    if (config_.mode == Mode::kInlineValue) {
      std::memcpy(value_out, SlotValue(slot), config_.value_size);
    } else {
      std::memcpy(value_out,
                  static_cast<uint8_t*>(memory_->At(slot->value_off)) + 8,
                  config_.value_size);
    }
    return true;
  }
  for (uint64_t off = SlotAt(home)->overflow_off; off != 0;) {
    const uint8_t* raw = static_cast<const uint8_t*>(memory_->At(off));
    OverflowCell cell;
    std::memcpy(&cell, raw, sizeof(cell));
    if (cell.key == key) {
      std::memcpy(value_out, raw + sizeof(OverflowCell), config_.value_size);
      return true;
    }
    off = cell.next;
  }
  return false;
}

bool FarmHopscotchTable::RemoteGet(rdma::Fabric* fabric, int target,
                                   uint64_t key, void* value_out,
                                   int* reads_out) {
  int reads = 0;
  const uint64_t home = Home(key);
  std::vector<uint8_t> buf(NeighborhoodReadBytes());
  const uint64_t wrap = config_.buckets - home;
  if (wrap >= kNeighborhood) {
    if (fabric->Read(target, SlotOffset(home), buf.data(), buf.size()) !=
        rdma::OpStatus::kOk) {
      *reads_out = reads;
      return false;
    }
    ++reads;
  } else {
    const size_t first = static_cast<size_t>(wrap) * slot_size_;
    if (fabric->Read(target, SlotOffset(home), buf.data(), first) !=
            rdma::OpStatus::kOk ||
        fabric->Read(target, SlotOffset(0), buf.data() + first,
                     buf.size() - first) != rdma::OpStatus::kOk) {
      *reads_out = reads;
      return false;
    }
    reads += 2;
  }
  for (int i = 0; i < kNeighborhood; ++i) {
    const uint8_t* raw = buf.data() + static_cast<size_t>(i) * slot_size_;
    SlotHeader header;
    std::memcpy(&header, raw, sizeof(header));
    if (header.used == 0 || header.key != key) {
      continue;
    }
    if (config_.mode == Mode::kInlineValue) {
      std::memcpy(value_out, raw + sizeof(SlotHeader), config_.value_size);
      *reads_out = reads;
      return true;
    }
    std::vector<uint8_t> cell(8 + config_.value_size);
    if (fabric->Read(target, header.value_off, cell.data(), cell.size()) !=
        rdma::OpStatus::kOk) {
      break;
    }
    ++reads;
    std::memcpy(value_out, cell.data() + 8, config_.value_size);
    *reads_out = reads;
    return true;
  }
  // Overflow chain: home slot is the first in the buffer.
  SlotHeader home_header;
  std::memcpy(&home_header, buf.data(), sizeof(home_header));
  std::vector<uint8_t> cell_buf(overflow_cell_size_);
  for (uint64_t off = home_header.overflow_off; off != 0;) {
    if (fabric->Read(target, off, cell_buf.data(), cell_buf.size()) !=
        rdma::OpStatus::kOk) {
      break;
    }
    ++reads;
    OverflowCell cell;
    std::memcpy(&cell, cell_buf.data(), sizeof(cell));
    if (cell.key == key) {
      std::memcpy(value_out, cell_buf.data() + sizeof(OverflowCell),
                  config_.value_size);
      *reads_out = reads;
      return true;
    }
    off = cell.next;
  }
  *reads_out = reads;
  return false;
}

}  // namespace store
}  // namespace drtm
