// Simplified FaRM-KV (Dragojevic et al., NSDI'14) hopscotch hash table,
// reimplemented as the paper's comparison does: neighborhood-8 hopscotch,
// GET via one RDMA READ covering the whole neighborhood. Two variants:
//   * inline  (FaRM-KV/I): values live in the slots; a GET reads
//     8 * slot_size bytes and needs no second READ — fast for small
//     values, wasteful for large ones (Fig. 10(b)).
//   * offset  (FaRM-KV/O): slots hold an offset; a GET pays a second
//     READ for the value.
#ifndef SRC_STORE_FARM_HOPSCOTCH_H_
#define SRC_STORE_FARM_HOPSCOTCH_H_

#include <cstdint>
#include <vector>

#include "src/rdma/fabric.h"
#include "src/rdma/node_memory.h"

namespace drtm {
namespace store {

class FarmHopscotchTable {
 public:
  static constexpr int kNeighborhood = 8;

  enum class Mode { kInlineValue, kOffsetValue };

  struct Config {
    uint64_t buckets = 1 << 12;  // power of two
    uint32_t value_size = 64;
    Mode mode = Mode::kOffsetValue;
  };

  FarmHopscotchTable(rdma::NodeMemory* memory, const Config& config);

  bool Insert(uint64_t key, const void* value);
  bool Get(uint64_t key, void* value_out);
  bool RemoteGet(rdma::Fabric* fabric, int target, uint64_t key,
                 void* value_out, int* reads_out);

  uint64_t size() const { return live_; }
  Mode mode() const { return config_.mode; }

  // Bytes fetched by the neighborhood READ (bench instrumentation).
  size_t NeighborhoodReadBytes() const {
    return static_cast<size_t>(kNeighborhood) * slot_size_;
  }

 private:
  // Slot header; in inline mode the value follows within the slot.
  struct SlotHeader {
    uint64_t key;
    uint64_t used;          // 0 = empty
    uint64_t value_off;     // offset mode only
    uint64_t overflow_off;  // bucket's overflow chain (0 = none)
  };

  // Overflow cell for keys displacement cannot place; the value bytes
  // follow the header so a remote reader fetches a cell in one READ.
  struct OverflowCell {
    uint64_t key;
    uint64_t next;  // 0 = end
  };

  bool StoreValueFor(SlotHeader* header, uint64_t key, const void* value,
                     uint8_t* inline_at);
  bool InsertOverflow(uint64_t key, const void* value);

  uint64_t SlotOffset(uint64_t index) const {
    return slots_off_ + index * slot_size_;
  }
  SlotHeader* SlotAt(uint64_t index);
  const uint8_t* SlotValue(const SlotHeader* slot) const;
  uint64_t Home(uint64_t key) const;

  rdma::NodeMemory* memory_;
  Config config_;
  uint64_t slot_size_;
  uint64_t slots_off_;
  uint64_t values_off_ = 0;  // offset mode pool
  uint64_t next_value_ = 0;
  uint64_t overflow_off_ = 0;
  uint64_t overflow_cell_size_ = 0;
  uint64_t overflow_capacity_ = 0;
  uint64_t next_overflow_ = 0;
  uint64_t live_ = 0;
};

}  // namespace store
}  // namespace drtm

#endif  // SRC_STORE_FARM_HOPSCOTCH_H_
