// On-"NIC" layout of the DrTM-KV cluster-chaining hash table (paper
// Fig. 9). Shared by the host-side table and the remote (one-sided RDMA)
// client, which computes the same offsets against the target node's
// registered region.
//
// Header slot (16 bytes):
//   word0: [type:2][lossy_incarnation:14][offset:48]
//   word1: key
// Bucket: 8 slots (128 bytes), fetched by a single RDMA READ.
// Entry: key(8) incarnation(4) version(4) state(8) value(V) — state and
// value are contiguous so that a lock check plus value access touches a
// minimal number of cache lines (section 4.3).
#ifndef SRC_STORE_KV_LAYOUT_H_
#define SRC_STORE_KV_LAYOUT_H_

#include <cstddef>
#include <cstdint>

namespace drtm {
namespace store {

enum class SlotType : uint64_t {
  kFree = 0,
  kEntry = 1,   // offset points at a key-value entry
  kHeader = 2,  // offset points at an indirect header bucket
  kCached = 3,  // client-cache internal: offset is a local frame index
};

inline constexpr int kSlotsPerBucket = 8;
inline constexpr size_t kSlotBytes = 16;
inline constexpr size_t kBucketBytes = kSlotsPerBucket * kSlotBytes;  // 128
inline constexpr uint64_t kInvalidOffset = ~uint64_t{0};

inline constexpr uint64_t kTypeShift = 62;
inline constexpr uint64_t kLossyShift = 48;
inline constexpr uint64_t kLossyMask = 0x3fff;
inline constexpr uint64_t kOffsetMask = (uint64_t{1} << 48) - 1;

struct HeaderSlot {
  uint64_t meta = 0;
  uint64_t key = 0;

  SlotType type() const { return static_cast<SlotType>(meta >> kTypeShift); }
  uint16_t lossy_incarnation() const {
    return static_cast<uint16_t>((meta >> kLossyShift) & kLossyMask);
  }
  uint64_t offset() const { return meta & kOffsetMask; }

  static uint64_t Pack(SlotType type, uint16_t lossy, uint64_t offset) {
    return (static_cast<uint64_t>(type) << kTypeShift) |
           ((static_cast<uint64_t>(lossy) & kLossyMask) << kLossyShift) |
           (offset & kOffsetMask);
  }
};
static_assert(sizeof(HeaderSlot) == kSlotBytes);

struct Bucket {
  HeaderSlot slots[kSlotsPerBucket];
};
static_assert(sizeof(Bucket) == kBucketBytes);

// Fixed-size prefix of every entry; the value follows immediately.
struct EntryHeader {
  uint64_t key;
  uint32_t incarnation;
  uint32_t version;
  uint64_t state;  // the DrTM lock/lease word (txn/lock_state.h)
};
static_assert(sizeof(EntryHeader) == 24);
inline constexpr uint64_t kEntryStateOffset = 16;
inline constexpr uint64_t kEntryVersionOffset = 12;
inline constexpr uint64_t kEntryValueOffset = sizeof(EntryHeader);

inline uint64_t MixHash(uint64_t key) {
  uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Geometry of one table instance inside one node's registered region.
// Identical table configurations produce identical geometry, which lets
// a client address any replica-free partition by (node, offset).
struct Geometry {
  uint64_t main_buckets = 0;  // power of two
  uint32_t value_size = 0;
  uint64_t entry_size = 0;  // sizeof(EntryHeader) + value_size, padded to 8
  uint64_t main_offset = 0;
  uint64_t indirect_offset = 0;
  uint64_t indirect_buckets = 0;
  uint64_t entry_base = 0;
  uint64_t capacity = 0;  // number of entries

  uint64_t MainBucketOffset(uint64_t key) const {
    return main_offset + (MixHash(key) & (main_buckets - 1)) * kBucketBytes;
  }
  uint64_t EntryOffset(uint64_t index) const {
    return entry_base + index * entry_size;
  }
  uint64_t StateOffset(uint64_t entry_off) const {
    return entry_off + kEntryStateOffset;
  }
  uint64_t ValueOffset(uint64_t entry_off) const {
    return entry_off + kEntryValueOffset;
  }
};

}  // namespace store
}  // namespace drtm

#endif  // SRC_STORE_KV_LAYOUT_H_
