#include "src/store/location_cache.h"

#include <cstring>

#include "src/stat/metrics.h"

namespace drtm {
namespace store {

namespace {

struct CacheMetricIds {
  uint32_t hit = 0;
  uint32_t miss = 0;
  uint32_t install = 0;
  uint32_t invalidate = 0;
};

const CacheMetricIds& CacheIds() {
  static const CacheMetricIds ids = [] {
    stat::Registry& reg = stat::Registry::Global();
    CacheMetricIds c;
    c.hit = reg.CounterId("cache.hit");
    c.miss = reg.CounterId("cache.miss");
    c.install = reg.CounterId("cache.install");
    c.invalidate = reg.CounterId("cache.invalidate");
    return c;
  }();
  return ids;
}

size_t FramesForBudget(size_t budget_bytes) {
  const size_t frame_bytes = sizeof(Bucket) + 16;
  size_t frames = budget_bytes / frame_bytes;
  if (frames < 2) {
    frames = 2;
  }
  // Round down to a power of two for masking.
  size_t pow2 = 1;
  while (pow2 * 2 <= frames) {
    pow2 *= 2;
  }
  return pow2;
}

}  // namespace

LocationCache::LocationCache(size_t budget_bytes)
    : frames_count_(FramesForBudget(budget_bytes)),
      frame_mask_(frames_count_ - 1) {
  frames_ = std::make_unique<Frame[]>(frames_count_);
}

bool LocationCache::Lookup(uint64_t bucket_off, Bucket* out) {
  Frame& frame = FrameFor(bucket_off);
  SpinLatchGuard guard(frame.latch);
  if (frame.tag != bucket_off) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    stat::Registry::Global().Add(CacheIds().miss);
    return false;
  }
  std::memcpy(out, &frame.bucket, sizeof(Bucket));
  hits_.fetch_add(1, std::memory_order_relaxed);
  stat::Registry::Global().Add(CacheIds().hit);
  return true;
}

void LocationCache::Install(uint64_t bucket_off, const Bucket& bucket) {
  Frame& frame = FrameFor(bucket_off);
  SpinLatchGuard guard(frame.latch);
  frame.tag = bucket_off;
  std::memcpy(&frame.bucket, &bucket, sizeof(Bucket));
  stat::Registry::Global().Add(CacheIds().install);
}

void LocationCache::Invalidate(uint64_t bucket_off) {
  Frame& frame = FrameFor(bucket_off);
  SpinLatchGuard guard(frame.latch);
  if (frame.tag == bucket_off) {
    frame.tag = kInvalidOffset;
    stat::Registry::Global().Add(CacheIds().invalidate);
  }
}

}  // namespace store
}  // namespace drtm
