#include "src/store/location_cache.h"

#include <cstdlib>
#include <cstring>

#include "src/stat/metrics.h"

namespace drtm {
namespace store {

namespace {

struct CacheMetricIds {
  uint32_t hit = 0;
  uint32_t miss = 0;
  uint32_t install = 0;
  uint32_t invalidate = 0;
  uint32_t hint_hit = 0;
  uint32_t admit_skip = 0;
};

const CacheMetricIds& CacheIds() {
  static const CacheMetricIds ids = [] {
    stat::Registry& reg = stat::Registry::Global();
    CacheMetricIds c;
    c.hit = reg.CounterId("cache.hit");
    c.miss = reg.CounterId("cache.miss");
    c.install = reg.CounterId("cache.install");
    c.invalidate = reg.CounterId("cache.invalidate");
    c.hint_hit = reg.CounterId("cache.hint_hit");
    c.admit_skip = reg.CounterId("cache.admit_skip");
    return c;
  }();
  return ids;
}

size_t FramesForBudget(size_t budget_bytes) {
  const size_t frame_bytes = sizeof(Bucket) + 16;
  size_t frames = budget_bytes / frame_bytes;
  if (frames < 2) {
    frames = 2;
  }
  // Round down to a power of two for masking.
  size_t pow2 = 1;
  while (pow2 * 2 <= frames) {
    pow2 *= 2;
  }
  return pow2;
}

// The bucket's chain continuation: the kHeader slot pointing at the
// chained indirect bucket, or kInvalidOffset when the chain ends here.
uint64_t ChainNext(const Bucket& bucket) {
  for (const HeaderSlot& slot : bucket.slots) {
    if (slot.type() == SlotType::kHeader) {
      return slot.offset();
    }
  }
  return kInvalidOffset;
}

}  // namespace

size_t LocationCache::BudgetFromEnv(size_t default_bytes) {
  const char* env = std::getenv("DRTM_LOC_CACHE_ENTRIES");
  if (env == nullptr || *env == '\0') {
    return default_bytes;
  }
  char* end = nullptr;
  const unsigned long long entries = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || entries == 0) {
    return default_bytes;
  }
  const size_t frame_bytes = sizeof(Bucket) + 16;
  return static_cast<size_t>(entries) * frame_bytes;
}

LocationCache::LocationCache(size_t budget_bytes, std::string shard_label,
                             bool adaptive_admission)
    : frames_count_(FramesForBudget(budget_bytes)),
      frame_mask_(frames_count_ - 1),
      adaptive_(adaptive_admission) {
  frames_ = std::make_unique<Frame[]>(frames_count_);
  stat::Registry& reg = stat::Registry::Global();
  std::string capacity_name = "cache.capacity_entries";
  std::string occupancy_name = "cache.occupied_entries";
  std::string admit_name = "cache.admit_shift";
  if (!shard_label.empty()) {
    capacity_name += "." + shard_label;
    occupancy_name += "." + shard_label;
    admit_name += "." + shard_label;
  }
  capacity_gauge_ = reg.GaugeId(capacity_name);
  occupancy_gauge_ = reg.GaugeId(occupancy_name);
  admit_shift_gauge_ = reg.GaugeId(admit_name);
  reg.GaugeAdd(capacity_gauge_, static_cast<int64_t>(frames_count_));
}

LocationCache::~LocationCache() {
  stat::Registry& reg = stat::Registry::Global();
  reg.GaugeAdd(capacity_gauge_, -static_cast<int64_t>(frames_count_));
  reg.GaugeAdd(occupancy_gauge_,
               -static_cast<int64_t>(occupied_.load(std::memory_order_relaxed)));
  reg.GaugeAdd(admit_shift_gauge_,
               -static_cast<int64_t>(admit_shift_.load(std::memory_order_relaxed)));
}

void LocationCache::AdaptAdmission() {
  const uint32_t window_hits = window_hits_.exchange(0, std::memory_order_relaxed);
  const size_t occupancy = occupied_.load(std::memory_order_relaxed);
  const uint32_t shift = admit_shift_.load(std::memory_order_relaxed);
  uint32_t next = shift;
  if (window_hits * 100 >= kAdmitWindow * 25) {
    // Healthy window: decay the throttle one step.
    if (shift > 0) {
      next = shift - 1;
    }
  } else if (occupancy * 8 >= frames_count_ * 7 &&
             window_hits * 100 < kAdmitWindow * 10) {
    // Nearly full and thrashing: churning frames buys nothing, halve
    // the install rate.
    if (shift < kMaxAdmitShift) {
      next = shift + 1;
    }
  }
  if (next != shift) {
    admit_shift_.store(next, std::memory_order_relaxed);
    stat::Registry::Global().GaugeAdd(
        admit_shift_gauge_,
        static_cast<int64_t>(next) - static_cast<int64_t>(shift));
  }
}

bool LocationCache::Lookup(uint64_t bucket_off, Bucket* out) {
  Frame& frame = FrameFor(bucket_off);
  bool hit = false;
  {
    SpinLatchGuard guard(frame.latch);
    if (frame.tag == bucket_off) {
      std::memcpy(out, &frame.bucket, sizeof(Bucket));
      hit = true;
    }
  }
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    stat::Registry::Global().Add(CacheIds().hit);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    stat::Registry::Global().Add(CacheIds().miss);
  }
  if (adaptive_) {
    if (hit) {
      window_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    const uint32_t seen =
        window_lookups_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (seen >= kAdmitWindow) {
      window_lookups_.store(0, std::memory_order_relaxed);
      AdaptAdmission();
    }
  }
  return hit;
}

void LocationCache::Install(uint64_t bucket_off, const Bucket& bucket) {
  Frame& frame = FrameFor(bucket_off);
  bool newly_occupied = false;
  {
    SpinLatchGuard guard(frame.latch);
    if (frame.tag != bucket_off) {
      // Claiming (or stealing) a frame is what the admission throttle
      // rations; refreshing a frame the bucket already owns is free.
      const uint32_t shift =
          adaptive_ ? admit_shift_.load(std::memory_order_relaxed) : 0;
      if (shift > 0 &&
          (admit_tick_.fetch_add(1, std::memory_order_relaxed) &
           ((uint64_t{1} << shift) - 1)) != 0) {
        stat::Registry::Global().Add(CacheIds().admit_skip);
        return;
      }
    }
    newly_occupied = frame.tag == kInvalidOffset;
    frame.tag = bucket_off;
    frame.hint_tag = bucket_off;
    frame.next_hint = ChainNext(bucket);
    std::memcpy(&frame.bucket, &bucket, sizeof(Bucket));
  }
  stat::Registry& reg = stat::Registry::Global();
  reg.Add(CacheIds().install);
  if (newly_occupied) {
    occupied_.fetch_add(1, std::memory_order_relaxed);
    reg.GaugeAdd(occupancy_gauge_, 1);
  }
}

void LocationCache::Invalidate(uint64_t bucket_off) {
  Frame& frame = FrameFor(bucket_off);
  bool vacated = false;
  {
    SpinLatchGuard guard(frame.latch);
    if (frame.tag == bucket_off) {
      frame.tag = kInvalidOffset;
      vacated = true;
    }
  }
  if (vacated) {
    stat::Registry& reg = stat::Registry::Global();
    reg.Add(CacheIds().invalidate);
    occupied_.fetch_sub(1, std::memory_order_relaxed);
    reg.GaugeAdd(occupancy_gauge_, -1);
  }
}

bool LocationCache::NextHint(uint64_t bucket_off, uint64_t* next_off) {
  Frame& frame = FrameFor(bucket_off);
  SpinLatchGuard guard(frame.latch);
  if (frame.hint_tag != bucket_off) {
    return false;
  }
  *next_off = frame.next_hint;
  stat::Registry::Global().Add(CacheIds().hint_hit);
  return true;
}

}  // namespace store
}  // namespace drtm
