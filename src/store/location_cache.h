// Location-based, host-transparent cache (section 5.3).
//
// Caches header buckets of a remote DrTM-KV table, keyed by their offset
// in the remote region, direct-mapped. Cached content is "a partially
// stale snapshot": staleness is detected when the entry a cached slot
// points at fails its key / lossy-incarnation check, which simply turns
// into a cache miss — no invalidation traffic, fully transparent to the
// host. The cache is shared by all client threads of a machine.
//
// Besides whole buckets the cache remembers each bucket's chain shape:
// Install() records the offset of the chained indirect bucket (the
// kHeader slot) as a *next hint*. Hints survive Invalidate() — an
// incarnation miss means the entry moved, not that the chain shape
// changed — so a revalidation walk can speculatively post the whole
// predicted chain as one doorbell batch (RemoteKv::Lookup).
#ifndef SRC_STORE_LOCATION_CACHE_H_
#define SRC_STORE_LOCATION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/spin_latch.h"
#include "src/store/kv_layout.h"

namespace drtm {
namespace store {

class LocationCache {
 public:
  // budget_bytes is divided into direct-mapped bucket frames
  // (~144 bytes each); a 16 MB cache holds about one million locations
  // (the paper's sizing example). shard_label, when non-empty, suffixes
  // the capacity/occupancy gauge names ("cache.capacity_entries.<label>")
  // so per-machine shards are distinguishable; caches sharing a label
  // aggregate into one gauge.
  //
  // adaptive_admission arms the install throttle: every kAdmitWindow
  // lookups the cache re-reads its own live hit/miss counters, and when
  // the shard is both nearly full (occupancy >= 7/8) and thrashing
  // (window hit rate < 10%) it halves the install rate, doubling the
  // throttle (up to 1/32) each window the thrash persists — a
  // direct-mapped cache that misses anyway gains nothing from churning
  // its frames. A window with a healthy hit rate (>= 25%) decays the
  // throttle one step. The current step is exported as the
  // cache.admit_shift gauge (installs admitted = 1 in 2^shift).
  explicit LocationCache(size_t budget_bytes, std::string shard_label = "",
                         bool adaptive_admission = false);
  ~LocationCache();

  LocationCache(const LocationCache&) = delete;
  LocationCache& operator=(const LocationCache&) = delete;

  // Applies the DRTM_LOC_CACHE_ENTRIES env override (frame count) to a
  // byte budget: set and positive, it wins over default_bytes, so cache
  // sweeps don't need rebuilds. Invalid or unset leaves default_bytes.
  static size_t BudgetFromEnv(size_t default_bytes);

  // Copies the cached bucket at remote offset bucket_off into *out.
  bool Lookup(uint64_t bucket_off, Bucket* out);

  // Installs (or replaces) the frame for bucket_off and records the
  // bucket's chain next-pointer as a speculation hint.
  void Install(uint64_t bucket_off, const Bucket& bucket);

  // Drops the frame for bucket_off if present (used after an
  // incarnation-check miss so the stale snapshot is refreshed). The
  // chain next hint is preserved.
  void Invalidate(uint64_t bucket_off);

  // Chain-shape speculation: returns true if the cache knows where the
  // chain continues after bucket_off. *next_off receives the chained
  // indirect bucket's offset, or kInvalidOffset if the chain is known to
  // end there. False means no hint (never observed this bucket).
  bool NextHint(uint64_t bucket_off, uint64_t* next_off);

  size_t frames() const { return frames_count_; }
  // Frames currently holding a valid bucket snapshot.
  size_t occupied() const {
    return occupied_.load(std::memory_order_relaxed);
  }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  void ResetStats() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

  // Adaptive-admission observation window, in lookups.
  static constexpr uint32_t kAdmitWindow = 2048;
  static constexpr uint32_t kMaxAdmitShift = 5;
  // Current throttle step: installs claiming a new frame are admitted
  // 1 in 2^admit_shift (0 = every install, the non-adaptive behaviour).
  uint32_t admit_shift() const {
    return admit_shift_.load(std::memory_order_relaxed);
  }

 private:
  struct Frame {
    SpinLatch latch;
    uint64_t tag = kInvalidOffset;  // remote bucket offset
    // Chain hint, tagged separately so Invalidate keeps it.
    uint64_t hint_tag = kInvalidOffset;
    uint64_t next_hint = kInvalidOffset;
    Bucket bucket;
  };

  Frame& FrameFor(uint64_t bucket_off) {
    const uint64_t index = MixHash(bucket_off / kBucketBytes) & frame_mask_;
    return frames_[index];
  }

  // Called by the lookup that completes an observation window: reads
  // the window's hit count and the live occupancy, and moves
  // admit_shift_ one step (and the cache.admit_shift gauge with it).
  void AdaptAdmission();

  std::unique_ptr<Frame[]> frames_;
  size_t frames_count_;
  uint64_t frame_mask_;
  const bool adaptive_;
  std::atomic<size_t> occupied_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint32_t> window_lookups_{0};
  std::atomic<uint32_t> window_hits_{0};
  std::atomic<uint32_t> admit_shift_{0};
  std::atomic<uint64_t> admit_tick_{0};
  uint32_t capacity_gauge_;
  uint32_t occupancy_gauge_;
  uint32_t admit_shift_gauge_;
};

}  // namespace store
}  // namespace drtm

#endif  // SRC_STORE_LOCATION_CACHE_H_
