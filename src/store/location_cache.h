// Location-based, host-transparent cache (section 5.3).
//
// Caches header buckets of a remote DrTM-KV table, keyed by their offset
// in the remote region, direct-mapped. Cached content is "a partially
// stale snapshot": staleness is detected when the entry a cached slot
// points at fails its key / lossy-incarnation check, which simply turns
// into a cache miss — no invalidation traffic, fully transparent to the
// host. The cache is shared by all client threads of a machine.
#ifndef SRC_STORE_LOCATION_CACHE_H_
#define SRC_STORE_LOCATION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/common/spin_latch.h"
#include "src/store/kv_layout.h"

namespace drtm {
namespace store {

class LocationCache {
 public:
  // budget_bytes is divided into direct-mapped bucket frames
  // (~144 bytes each); a 16 MB cache holds about one million locations
  // (the paper's sizing example).
  explicit LocationCache(size_t budget_bytes);

  LocationCache(const LocationCache&) = delete;
  LocationCache& operator=(const LocationCache&) = delete;

  // Copies the cached bucket at remote offset bucket_off into *out.
  bool Lookup(uint64_t bucket_off, Bucket* out);

  // Installs (or replaces) the frame for bucket_off.
  void Install(uint64_t bucket_off, const Bucket& bucket);

  // Drops the frame for bucket_off if present (used after an
  // incarnation-check miss so the stale snapshot is refreshed).
  void Invalidate(uint64_t bucket_off);

  size_t frames() const { return frames_count_; }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  void ResetStats() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Frame {
    SpinLatch latch;
    uint64_t tag = kInvalidOffset;  // remote bucket offset
    Bucket bucket;
  };

  Frame& FrameFor(uint64_t bucket_off) {
    const uint64_t index = MixHash(bucket_off / kBucketBytes) & frame_mask_;
    return frames_[index];
  }

  std::unique_ptr<Frame[]> frames_;
  size_t frames_count_;
  uint64_t frame_mask_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace store
}  // namespace drtm

#endif  // SRC_STORE_LOCATION_CACHE_H_
