// drtm-lint: allow-file(TX03 Pilaf server-side store is part of the RDMA substrate)
// Clients read with one-sided verbs and the server publishes buckets
// with strong writes; this code never runs inside a transaction.
#include "src/store/pilaf_cuckoo.h"

#include <cstring>
#include <vector>

#include "src/htm/htm.h"
#include "src/store/kv_layout.h"

namespace drtm {
namespace store {

PilafCuckooTable::PilafCuckooTable(rdma::NodeMemory* memory,
                                   const Config& config)
    : memory_(memory), config_(config) {
  entry_size_ = (8 + config.value_size + 7) & ~7ULL;
  buckets_off_ =
      memory_->Allocate(config.buckets * sizeof(BucketSlot), 64);
  entries_off_ = memory_->Allocate(config.capacity * entry_size_, 64);
}

uint64_t PilafCuckooTable::HashIndex(uint64_t key, int which) const {
  static constexpr uint64_t kSeeds[3] = {0x1234567887654321ULL,
                                         0xdeadbeefcafebabeULL,
                                         0x0f0f0f0ff0f0f0f0ULL};
  return MixHash(key ^ kSeeds[which]) & (config_.buckets - 1);
}

uint64_t PilafCuckooTable::Checksum(const void* data, size_t len) {
  // FNV-1a, 64-bit. Pilaf uses CRC64; any strong-enough mixing works for
  // the self-verification role.
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t PilafCuckooTable::KvChecksum(uint64_t key, const void* value) const {
  uint64_t h = Checksum(&key, sizeof(key));
  return h ^ Checksum(value, config_.value_size);
}

void PilafCuckooTable::SealBucket(BucketSlot* slot) const {
  slot->bucket_checksum = Checksum(slot, offsetof(BucketSlot, bucket_checksum));
}

PilafCuckooTable::BucketSlot* PilafCuckooTable::SlotAt(uint64_t index) {
  return reinterpret_cast<BucketSlot*>(memory_->At(BucketOffset(index)));
}

uint8_t* PilafCuckooTable::EntryAt(uint64_t entry_off) {
  return static_cast<uint8_t*>(memory_->At(entry_off));
}

bool PilafCuckooTable::Insert(uint64_t key, const void* value) {
  if (next_entry_ >= config_.capacity) {
    return false;
  }
  // Write the key-value object.
  const uint64_t entry_off = entries_off_ + next_entry_ * entry_size_;
  ++next_entry_;
  uint8_t* entry = EntryAt(entry_off);
  // The entry is unpublished until the bucket StrongWrite below, so raw
  // initialization cannot race a transactional or one-sided reader.
  // drtm-lint: allow(TX01 unpublished entry memory, published by the bucket StrongWrite)
  std::memcpy(entry, &key, 8);
  // drtm-lint: allow(TX01 unpublished entry memory, published by the bucket StrongWrite)
  std::memcpy(entry + 8, value, config_.value_size);

  BucketSlot incoming;
  incoming.key = key;
  incoming.entry_off = entry_off;
  incoming.kv_checksum = KvChecksum(key, value);
  SealBucket(&incoming);

  // Prefer an empty candidate bucket.
  for (int which = 0; which < 3; ++which) {
    BucketSlot* slot = SlotAt(HashIndex(key, which));
    if (slot->entry_off == 0) {
      htm::StrongWrite(slot, &incoming, sizeof(incoming));
      ++live_;
      return true;
    }
    if (slot->key == key) {
      return false;  // duplicate
    }
  }

  // Cuckoo displacement.
  int which = 0;
  for (int kick = 0; kick < config_.max_kicks; ++kick) {
    const uint64_t index = HashIndex(incoming.key, which);
    BucketSlot* slot = SlotAt(index);
    BucketSlot evicted = *slot;
    htm::StrongWrite(slot, &incoming, sizeof(incoming));
    if (evicted.entry_off == 0) {
      ++live_;
      return true;
    }
    incoming = evicted;
    // Move the evicted key to one of its other two candidate buckets.
    uint64_t from = index;
    which = 0;
    for (int w = 0; w < 3; ++w) {
      if (HashIndex(incoming.key, w) == from) {
        which = (w + 1) % 3;
        break;
      }
    }
  }
  return false;  // kick chain too long
}

bool PilafCuckooTable::Get(uint64_t key, void* value_out) {
  for (int which = 0; which < 3; ++which) {
    BucketSlot* slot = SlotAt(HashIndex(key, which));
    if (slot->entry_off != 0 && slot->key == key) {
      std::memcpy(value_out, EntryAt(slot->entry_off) + 8,
                  config_.value_size);
      return true;
    }
  }
  return false;
}

bool PilafCuckooTable::RemoteGet(rdma::Fabric* fabric, int target,
                                 uint64_t key, void* value_out,
                                 int* reads_out) {
  int reads = 0;
  for (int which = 0; which < 3; ++which) {
    BucketSlot slot;
    if (fabric->Read(target, BucketOffset(HashIndex(key, which)), &slot,
                     sizeof(slot)) != rdma::OpStatus::kOk) {
      break;
    }
    ++reads;
    if (slot.entry_off == 0 || slot.key != key) {
      continue;
    }
    if (Checksum(&slot, offsetof(BucketSlot, bucket_checksum)) !=
        slot.bucket_checksum) {
      --which;  // concurrent update: self-verification failed, reread
      continue;
    }
    std::vector<uint8_t> buf(8 + config_.value_size);
    if (fabric->Read(target, slot.entry_off, buf.data(), buf.size()) !=
        rdma::OpStatus::kOk) {
      break;
    }
    ++reads;
    uint64_t stored_key;
    std::memcpy(&stored_key, buf.data(), 8);
    if (stored_key == key &&
        KvChecksum(key, buf.data() + 8) == slot.kv_checksum) {
      std::memcpy(value_out, buf.data() + 8, config_.value_size);
      *reads_out = reads;
      return true;
    }
  }
  *reads_out = reads;
  return false;
}

}  // namespace store
}  // namespace drtm
