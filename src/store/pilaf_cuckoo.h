// Simplified Pilaf-style key-value store (Mitchell et al., ATC'13),
// reimplemented as the paper does for its comparison (its footnote 6):
// 3-way cuckoo hashing, one slot per 32-byte self-verifying bucket
// (two checksums: one over the bucket, one over the key-value object).
// GETs use one-sided RDMA READs; PUT/INSERT are host-side operations.
#ifndef SRC_STORE_PILAF_CUCKOO_H_
#define SRC_STORE_PILAF_CUCKOO_H_

#include <cstdint>

#include "src/rdma/fabric.h"
#include "src/rdma/node_memory.h"

namespace drtm {
namespace store {

class PilafCuckooTable {
 public:
  struct Config {
    uint64_t buckets = 1 << 12;  // power of two, 1 slot each
    uint64_t capacity = 1 << 12;
    uint32_t value_size = 64;
    int max_kicks = 512;
  };

  // 32-byte self-verifying bucket.
  struct BucketSlot {
    uint64_t key;
    uint64_t entry_off;  // 0 = empty
    uint64_t kv_checksum;
    uint64_t bucket_checksum;
  };
  static_assert(sizeof(BucketSlot) == 32);

  PilafCuckooTable(rdma::NodeMemory* memory, const Config& config);

  // Host-side insert with cuckoo displacement; false when the kick chain
  // exceeds max_kicks or the entry pool is exhausted.
  bool Insert(uint64_t key, const void* value);

  // Host-side read (tests).
  bool Get(uint64_t key, void* value_out);

  // Remote GET over one-sided READs. reads_out counts RDMA READs issued.
  bool RemoteGet(rdma::Fabric* fabric, int target, uint64_t key,
                 void* value_out, int* reads_out);

  uint64_t size() const { return live_; }
  uint32_t value_size() const { return config_.value_size; }

 private:
  uint64_t BucketOffset(uint64_t index) const {
    return buckets_off_ + index * sizeof(BucketSlot);
  }
  uint64_t HashIndex(uint64_t key, int which) const;
  static uint64_t Checksum(const void* data, size_t len);
  uint64_t KvChecksum(uint64_t key, const void* value) const;
  void SealBucket(BucketSlot* slot) const;

  BucketSlot* SlotAt(uint64_t index);
  uint8_t* EntryAt(uint64_t entry_off);

  rdma::NodeMemory* memory_;
  Config config_;
  uint64_t buckets_off_;
  uint64_t entries_off_;
  uint64_t entry_size_;
  uint64_t next_entry_ = 0;
  uint64_t live_ = 0;
};

}  // namespace store
}  // namespace drtm

#endif  // SRC_STORE_PILAF_CUCKOO_H_
