#include "src/store/remote_kv.h"

#include <cstring>

#include "src/rdma/verbs_batch.h"

namespace drtm {
namespace store {

namespace {

// How far ahead of the confirmed chain position the walk speculates:
// the deepest predicted run posted as one doorbell. Chains beyond this
// depth fall back to another batch per window. Small, because chain
// hints beyond a few hops are increasingly likely to be stale.
constexpr size_t kSpeculationWindow = 4;

}  // namespace

RemoteKv::RemoteKv(rdma::Fabric* fabric, int target_node,
                   const Geometry& geometry, LocationCache* cache)
    : fabric_(fabric), target_(target_node), geo_(geometry), cache_(cache) {}

RemoteEntryRef RemoteKv::LookupInternal(uint64_t key, bool bypass_cache) {
  RemoteEntryRef ref;
  uint64_t bucket_off = geo_.MainBucketOffset(key);
  // A chain longer than the indirect pool means corruption; bound the walk.
  const uint64_t max_hops = geo_.indirect_buckets + 1;
  uint64_t hops = 0;
  rdma::SendQueue sq(*fabric_, target_,
                     rdma::SendQueue::Config{kSpeculationWindow});
  while (hops <= max_hops) {
    // Serve the walk from cache-resident buckets one hop at a time
    // first: the warm path must stay one hash probe + one bucket copy
    // per hop, with no speculation bookkeeping. Only a cache miss below
    // is worth a predicted run.
    if (!bypass_cache && cache_ != nullptr) {
      Bucket cached;
      while (hops <= max_hops && cache_->Lookup(bucket_off, &cached)) {
        ++hops;
        uint64_t next = kInvalidOffset;
        for (const HeaderSlot& slot : cached.slots) {
          if (slot.type() == SlotType::kEntry && slot.key == key) {
            ref.found = true;
            ref.entry_off = slot.offset();
            ref.incarnation = slot.lossy_incarnation();
            return ref;
          }
          if (slot.type() == SlotType::kHeader) {
            next = slot.offset();
          }
        }
        if (next == kInvalidOffset) {
          return ref;  // end of chain, key absent
        }
        bucket_off = next;
      }
      if (hops > max_hops) {
        return ref;
      }
    }
    // Predict a run of chain buckets starting at bucket_off from the
    // cache's chain-shape hints. Hints are used even in bypass mode —
    // bypass distrusts cached *content*, not cached shape, and every
    // speculative READ's content is still verified below.
    uint64_t offsets[kSpeculationWindow];
    size_t run = 0;
    offsets[run++] = bucket_off;
    if (cache_ != nullptr) {
      uint64_t cur = bucket_off;
      uint64_t next = kInvalidOffset;
      while (run < kSpeculationWindow && cache_->NextHint(cur, &next) &&
             next != kInvalidOffset) {
        offsets[run++] = next;
        cur = next;
      }
    }
    // Fetch the run: cache-resident buckets are served locally, the
    // rest ride one doorbell batch.
    Bucket buckets[kSpeculationWindow];
    bool from_remote[kSpeculationWindow] = {};
    size_t posted = 0;
    for (size_t i = 0; i < run; ++i) {
      if (!bypass_cache && cache_ != nullptr &&
          cache_->Lookup(offsets[i], &buckets[i])) {
        continue;
      }
      from_remote[i] = true;
      sq.PostRead(offsets[i], &buckets[i], sizeof(Bucket));
      ++posted;
    }
    if (posted > 0) {
      ++ref.rdma_doorbells;
      ref.rdma_reads += static_cast<int>(posted);
      for (const rdma::Completion& comp : sq.Flush()) {
        if (comp.status != rdma::OpStatus::kOk) {
          return ref;  // target down mid-walk: report not-found
        }
      }
      if (cache_ != nullptr) {
        // Install every fetched bucket — including mispredicted ones:
        // the snapshot is genuinely that offset's current content, and
        // installing refreshes its chain hint too.
        for (size_t i = 0; i < run; ++i) {
          if (from_remote[i]) {
            cache_->Install(offsets[i], buckets[i]);
          }
        }
      }
    }
    // Walk the fetched run in chain order, verifying the predictions.
    bool restarted = false;
    for (size_t i = 0; i < run; ++i) {
      if (++hops > max_hops + 1) {
        return ref;
      }
      uint64_t next = kInvalidOffset;
      for (const HeaderSlot& slot : buckets[i].slots) {
        if (slot.type() == SlotType::kEntry && slot.key == key) {
          ref.found = true;
          ref.entry_off = slot.offset();
          ref.incarnation = slot.lossy_incarnation();
          return ref;
        }
        if (slot.type() == SlotType::kHeader) {
          next = slot.offset();
        }
      }
      if (next == kInvalidOffset) {
        return ref;  // end of chain, key absent
      }
      if (i + 1 < run && offsets[i + 1] == next) {
        continue;  // speculation confirmed, consume the next bucket
      }
      // Mispredicted (or the run simply ended): resume the walk at the
      // true next bucket, discarding any remaining speculative fetches.
      bucket_off = next;
      restarted = true;
      break;
    }
    if (!restarted) {
      return ref;
    }
  }
  return ref;
}

RemoteEntryRef RemoteKv::Lookup(uint64_t key) {
  return LookupInternal(key, /*bypass_cache=*/false);
}

bool RemoteKv::ReadEntry(uint64_t entry_off, RemoteEntrySnapshot* out) {
  out->value.resize(geo_.value_size);
  std::vector<uint8_t> buf(sizeof(EntryHeader) + geo_.value_size);
  if (fabric_->Read(target_, entry_off, buf.data(), buf.size()) !=
      rdma::OpStatus::kOk) {
    return false;
  }
  std::memcpy(&out->header, buf.data(), sizeof(EntryHeader));
  std::memcpy(out->value.data(), buf.data() + sizeof(EntryHeader),
              geo_.value_size);
  return true;
}

bool RemoteKv::ReadValue(uint64_t entry_off, void* out) {
  return fabric_->Read(target_, geo_.ValueOffset(entry_off), out,
                       geo_.value_size) == rdma::OpStatus::kOk;
}

bool RemoteKv::Get(uint64_t key, void* value_out) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool bypass = (attempt == 1);
    const RemoteEntryRef ref = LookupInternal(key, bypass);
    if (!ref.found) {
      if (!bypass && cache_ != nullptr) {
        // The miss may be a stale cached bucket; retry against the host.
        continue;
      }
      return false;
    }
    RemoteEntrySnapshot snap;
    if (!ReadEntry(ref.entry_off, &snap)) {
      return false;
    }
    // Incarnation checking: the entry must still belong to this key and
    // the slot's lossy incarnation must match the entry's (section 5.3).
    if (snap.header.key == key &&
        (snap.header.incarnation & kLossyMask) == ref.incarnation) {
      std::memcpy(value_out, snap.value.data(), geo_.value_size);
      return true;
    }
    if (cache_ == nullptr || bypass) {
      return false;  // Entry mutated under an uncached reader: true miss.
    }
    cache_->Invalidate(geo_.MainBucketOffset(key));
  }
  return false;
}

}  // namespace store
}  // namespace drtm
