#include "src/store/remote_kv.h"

#include <cstring>

namespace drtm {
namespace store {

RemoteKv::RemoteKv(rdma::Fabric* fabric, int target_node,
                   const Geometry& geometry, LocationCache* cache)
    : fabric_(fabric), target_(target_node), geo_(geometry), cache_(cache) {}

bool RemoteKv::FetchBucket(uint64_t bucket_off, Bucket* out, bool* from_cache,
                           int* reads) {
  if (cache_ != nullptr && cache_->Lookup(bucket_off, out)) {
    *from_cache = true;
    return true;
  }
  *from_cache = false;
  if (fabric_->Read(target_, bucket_off, out, sizeof(Bucket)) !=
      rdma::OpStatus::kOk) {
    return false;
  }
  ++*reads;
  if (cache_ != nullptr) {
    cache_->Install(bucket_off, *out);
  }
  return true;
}

RemoteEntryRef RemoteKv::LookupInternal(uint64_t key, bool bypass_cache) {
  RemoteEntryRef ref;
  uint64_t bucket_off = geo_.MainBucketOffset(key);
  // A chain longer than the indirect pool means corruption; bound the walk.
  for (uint64_t hops = 0; hops <= geo_.indirect_buckets + 1; ++hops) {
    Bucket bucket;
    bool from_cache = false;
    if (bypass_cache) {
      if (fabric_->Read(target_, bucket_off, &bucket, sizeof(bucket)) !=
          rdma::OpStatus::kOk) {
        return ref;
      }
      ++ref.rdma_reads;
      if (cache_ != nullptr) {
        cache_->Install(bucket_off, bucket);
      }
    } else if (!FetchBucket(bucket_off, &bucket, &from_cache,
                            &ref.rdma_reads)) {
      return ref;
    }
    uint64_t next = kInvalidOffset;
    for (const HeaderSlot& slot : bucket.slots) {
      if (slot.type() == SlotType::kEntry && slot.key == key) {
        ref.found = true;
        ref.entry_off = slot.offset();
        ref.incarnation = slot.lossy_incarnation();
        return ref;
      }
      if (slot.type() == SlotType::kHeader) {
        next = slot.offset();
      }
    }
    if (next == kInvalidOffset) {
      return ref;
    }
    bucket_off = next;
  }
  return ref;
}

RemoteEntryRef RemoteKv::Lookup(uint64_t key) {
  return LookupInternal(key, /*bypass_cache=*/false);
}

bool RemoteKv::ReadEntry(uint64_t entry_off, RemoteEntrySnapshot* out) {
  out->value.resize(geo_.value_size);
  std::vector<uint8_t> buf(sizeof(EntryHeader) + geo_.value_size);
  if (fabric_->Read(target_, entry_off, buf.data(), buf.size()) !=
      rdma::OpStatus::kOk) {
    return false;
  }
  std::memcpy(&out->header, buf.data(), sizeof(EntryHeader));
  std::memcpy(out->value.data(), buf.data() + sizeof(EntryHeader),
              geo_.value_size);
  return true;
}

bool RemoteKv::ReadValue(uint64_t entry_off, void* out) {
  return fabric_->Read(target_, geo_.ValueOffset(entry_off), out,
                       geo_.value_size) == rdma::OpStatus::kOk;
}

bool RemoteKv::Get(uint64_t key, void* value_out) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool bypass = (attempt == 1);
    const RemoteEntryRef ref = LookupInternal(key, bypass);
    if (!ref.found) {
      if (!bypass && cache_ != nullptr) {
        // The miss may be a stale cached bucket; retry against the host.
        continue;
      }
      return false;
    }
    RemoteEntrySnapshot snap;
    if (!ReadEntry(ref.entry_off, &snap)) {
      return false;
    }
    // Incarnation checking: the entry must still belong to this key and
    // the slot's lossy incarnation must match the entry's (section 5.3).
    if (snap.header.key == key &&
        (snap.header.incarnation & kLossyMask) == ref.incarnation) {
      std::memcpy(value_out, snap.value.data(), geo_.value_size);
      return true;
    }
    if (cache_ == nullptr || bypass) {
      return false;  // Entry mutated under an uncached reader: true miss.
    }
    cache_->Invalidate(geo_.MainBucketOffset(key));
  }
  return false;
}

}  // namespace store
}  // namespace drtm
