#include "src/store/remote_kv.h"

#include <cstring>

#include "src/rdma/verbs_batch.h"

namespace drtm {
namespace store {

namespace {

// How far ahead of the confirmed chain position the walk speculates:
// the deepest predicted run posted as one doorbell. Chains beyond this
// depth fall back to another batch per window. Small, because chain
// hints beyond a few hops are increasingly likely to be stale.
constexpr size_t kSpeculationWindow = 4;

}  // namespace

RemoteKv::RemoteKv(rdma::Fabric* fabric, int target_node,
                   const Geometry& geometry, LocationCache* cache)
    : fabric_(fabric), target_(target_node), geo_(geometry), cache_(cache) {}

// Resumable chain-walk state: the serial Lookup and the multi-target
// ScatterLookup run the same walk steps, differing only in who rings the
// doorbell between WalkPostRun and WalkConsumeRun.
struct RemoteKv::Walk {
  uint64_t key = 0;
  bool bypass_cache = false;
  uint64_t bucket_off = 0;
  uint64_t max_hops = 0;
  uint64_t hops = 0;
  bool done = false;
  // The current speculative run.
  uint64_t offsets[kSpeculationWindow];
  Bucket buckets[kSpeculationWindow];
  bool from_remote[kSpeculationWindow] = {};
  size_t run = 0;
  RemoteEntryRef ref;

  void Finish() { done = true; }
  void FinishFound(const HeaderSlot& slot) {
    ref.found = true;
    ref.entry_off = slot.offset();
    ref.incarnation = slot.lossy_incarnation();
    done = true;
  }
};

bool RemoteKv::WalkServeFromCache(Walk& w) {
  if (w.hops > w.max_hops) {
    w.Finish();  // chain longer than the indirect pool: corruption bound
    return true;
  }
  // Serve the walk from cache-resident buckets one hop at a time first:
  // the warm path must stay one hash probe + one bucket copy per hop,
  // with no speculation bookkeeping. Only a cache miss below is worth a
  // predicted run.
  if (w.bypass_cache || cache_ == nullptr) {
    return false;
  }
  Bucket cached;
  while (w.hops <= w.max_hops && cache_->Lookup(w.bucket_off, &cached)) {
    ++w.hops;
    uint64_t next = kInvalidOffset;
    for (const HeaderSlot& slot : cached.slots) {
      if (slot.type() == SlotType::kEntry && slot.key == w.key) {
        w.FinishFound(slot);
        return true;
      }
      if (slot.type() == SlotType::kHeader) {
        next = slot.offset();
      }
    }
    if (next == kInvalidOffset) {
      w.Finish();  // end of chain, key absent
      return true;
    }
    w.bucket_off = next;
  }
  if (w.hops > w.max_hops) {
    w.Finish();
    return true;
  }
  return false;
}

void RemoteKv::WalkPredictRun(Walk& w) {
  // Predict a run of chain buckets starting at bucket_off from the
  // cache's chain-shape hints. Hints are used even in bypass mode —
  // bypass distrusts cached *content*, not cached shape, and every
  // speculative READ's content is still verified in WalkConsumeRun.
  w.run = 0;
  w.offsets[w.run++] = w.bucket_off;
  if (cache_ != nullptr) {
    uint64_t cur = w.bucket_off;
    uint64_t next = kInvalidOffset;
    while (w.run < kSpeculationWindow && cache_->NextHint(cur, &next) &&
           next != kInvalidOffset) {
      w.offsets[w.run++] = next;
      cur = next;
    }
  }
}

size_t RemoteKv::WalkPostRun(Walk& w, rdma::SendQueue& sq,
                             std::vector<uint64_t>* wr_ids) {
  // Fetch the run: cache-resident buckets are served locally, the rest
  // ride one doorbell batch.
  size_t posted = 0;
  for (size_t i = 0; i < w.run; ++i) {
    w.from_remote[i] = false;
    if (!w.bypass_cache && cache_ != nullptr &&
        cache_->Lookup(w.offsets[i], &w.buckets[i])) {
      continue;
    }
    w.from_remote[i] = true;
    const rdma::WrId id =
        sq.PostRead(w.offsets[i], &w.buckets[i], sizeof(Bucket));
    if (wr_ids != nullptr) {
      wr_ids->push_back(id);
    }
    ++posted;
  }
  return posted;
}

bool RemoteKv::WalkConsumeRun(Walk& w, bool fetch_failed) {
  if (fetch_failed) {
    w.Finish();  // target down mid-walk: report not-found
    return true;
  }
  if (cache_ != nullptr) {
    // Install every fetched bucket — including mispredicted ones: the
    // snapshot is genuinely that offset's current content, and
    // installing refreshes its chain hint too.
    for (size_t i = 0; i < w.run; ++i) {
      if (w.from_remote[i]) {
        cache_->Install(w.offsets[i], w.buckets[i]);
      }
    }
  }
  // Walk the fetched run in chain order, verifying the predictions.
  for (size_t i = 0; i < w.run; ++i) {
    if (++w.hops > w.max_hops + 1) {
      w.Finish();
      return true;
    }
    uint64_t next = kInvalidOffset;
    for (const HeaderSlot& slot : w.buckets[i].slots) {
      if (slot.type() == SlotType::kEntry && slot.key == w.key) {
        w.FinishFound(slot);
        return true;
      }
      if (slot.type() == SlotType::kHeader) {
        next = slot.offset();
      }
    }
    if (next == kInvalidOffset) {
      w.Finish();  // end of chain, key absent
      return true;
    }
    if (i + 1 < w.run && w.offsets[i + 1] == next) {
      continue;  // speculation confirmed, consume the next bucket
    }
    // Mispredicted (or the run simply ended): resume the walk at the
    // true next bucket, discarding any remaining speculative fetches.
    w.bucket_off = next;
    return false;
  }
  w.Finish();  // the run was fully consumed without finding a next hop
  return true;
}

RemoteEntryRef RemoteKv::LookupInternal(uint64_t key, bool bypass_cache) {
  Walk w;
  w.key = key;
  w.bypass_cache = bypass_cache;
  w.bucket_off = geo_.MainBucketOffset(key);
  // A chain longer than the indirect pool means corruption; bound the walk.
  w.max_hops = geo_.indirect_buckets + 1;
  rdma::SendQueue sq(*fabric_, target_,
                     rdma::SendQueue::Config{kSpeculationWindow});
  while (!w.done) {
    if (WalkServeFromCache(w)) {
      break;
    }
    WalkPredictRun(w);
    const size_t posted = WalkPostRun(w, sq, nullptr);
    bool failed = false;
    if (posted > 0) {
      ++w.ref.rdma_doorbells;
      w.ref.rdma_reads += static_cast<int>(posted);
      for (const rdma::Completion& comp : sq.Flush()) {
        if (comp.status != rdma::OpStatus::kOk) {
          failed = true;
        }
      }
    }
    if (WalkConsumeRun(w, failed)) {
      break;
    }
  }
  return w.ref;
}

void RemoteKv::ScatterLookup(rdma::PhaseScatter& scatter,
                             std::vector<LookupTask>* tasks) {
  const size_t n = tasks->size();
  std::vector<Walk> walks(n);
  for (size_t i = 0; i < n; ++i) {
    Walk& w = walks[i];
    LookupTask& task = (*tasks)[i];
    w.key = task.key;
    w.bypass_cache = false;
    w.bucket_off = task.client->geo_.MainBucketOffset(task.key);
    w.max_hops = task.client->geo_.indirect_buckets + 1;
  }
  // Round-distinguishing wr_id ownership: (target, wr_id) -> task index,
  // rebuilt per round (wr_ids are unique per target queue for the
  // scatter's lifetime, but the map only needs this round's READs).
  std::vector<std::pair<std::pair<int, uint64_t>, size_t>> owners;
  std::vector<uint64_t> round_ids;
  std::vector<bool> posted_this_round(n, false);
  std::vector<bool> failed(n, false);
  std::vector<rdma::ScatterCompletion> comps;
  while (true) {
    // Scatter: each unfinished walk serves what it can from its cache,
    // predicts its next run, and posts the run's READs on its host
    // node's queue. Nothing is polled yet.
    owners.clear();
    bool any_posted = false;
    for (size_t i = 0; i < n; ++i) {
      Walk& w = walks[i];
      posted_this_round[i] = false;
      if (w.done) {
        continue;
      }
      RemoteKv* kv = (*tasks)[i].client;
      if (kv->WalkServeFromCache(w)) {
        continue;
      }
      kv->WalkPredictRun(w);
      round_ids.clear();
      const size_t posted =
          kv->WalkPostRun(w, scatter.To(kv->target_), &round_ids);
      if (posted > 0) {
        ++w.ref.rdma_doorbells;
        w.ref.rdma_reads += static_cast<int>(posted);
        for (const uint64_t id : round_ids) {
          owners.emplace_back(std::make_pair(kv->target_, id), i);
        }
        posted_this_round[i] = true;
        any_posted = true;
      }
    }
    if (!any_posted) {
      break;  // every walk finished from cache
    }
    // Gather: one overlapped doorbell per target, then match each READ's
    // status back to its walk.
    comps.clear();
    scatter.Gather(&comps);
    for (const rdma::ScatterCompletion& sc : comps) {
      if (sc.comp.status == rdma::OpStatus::kOk) {
        continue;
      }
      for (const auto& [owner_key, task_idx] : owners) {
        if (owner_key.first == sc.target && owner_key.second == sc.comp.wr_id) {
          failed[task_idx] = true;
          break;
        }
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (!posted_this_round[i] || walks[i].done) {
        continue;
      }
      (*tasks)[i].client->WalkConsumeRun(walks[i], failed[i]);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    (*tasks)[i].result = walks[i].ref;
  }
}

RemoteEntryRef RemoteKv::Lookup(uint64_t key) {
  return LookupInternal(key, /*bypass_cache=*/false);
}

bool RemoteKv::ReadEntry(uint64_t entry_off, RemoteEntrySnapshot* out) {
  out->value.resize(geo_.value_size);
  std::vector<uint8_t> buf(sizeof(EntryHeader) + geo_.value_size);
  if (fabric_->Read(target_, entry_off, buf.data(), buf.size()) !=
      rdma::OpStatus::kOk) {
    return false;
  }
  std::memcpy(&out->header, buf.data(), sizeof(EntryHeader));
  std::memcpy(out->value.data(), buf.data() + sizeof(EntryHeader),
              geo_.value_size);
  return true;
}

bool RemoteKv::ReadValue(uint64_t entry_off, void* out) {
  return fabric_->Read(target_, geo_.ValueOffset(entry_off), out,
                       geo_.value_size) == rdma::OpStatus::kOk;
}

bool RemoteKv::Get(uint64_t key, void* value_out) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool bypass = (attempt == 1);
    const RemoteEntryRef ref = LookupInternal(key, bypass);
    if (!ref.found) {
      if (!bypass && cache_ != nullptr) {
        // The miss may be a stale cached bucket; retry against the host.
        continue;
      }
      return false;
    }
    RemoteEntrySnapshot snap;
    if (!ReadEntry(ref.entry_off, &snap)) {
      return false;
    }
    // Incarnation checking: the entry must still belong to this key and
    // the slot's lossy incarnation must match the entry's (section 5.3).
    if (snap.header.key == key &&
        (snap.header.incarnation & kLossyMask) == ref.incarnation) {
      std::memcpy(value_out, snap.value.data(), geo_.value_size);
      return true;
    }
    if (cache_ == nullptr || bypass) {
      return false;  // Entry mutated under an uncached reader: true miss.
    }
    cache_->Invalidate(geo_.MainBucketOffset(key));
  }
  return false;
}

}  // namespace store
}  // namespace drtm
