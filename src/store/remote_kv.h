// One-sided RDMA client for a remote DrTM-KV table.
//
// Lookup walks the remote bucket chain (each READ fetches all 8
// candidate slots — the property that gives cluster chaining its low
// lookup cost in Table 4), optionally short-circuited by the location
// cache. The walk is pipelined: chain-shape hints remembered by the
// cache (LocationCache::NextHint) let the client post the predicted
// next bucket's READ in the same doorbell batch as the current one
// (rdma::SendQueue), so a k-deep chain costs one doorbell instead of k
// serialized round trips whenever the shape was seen before. A
// misprediction only wastes the speculative READ — correctness never
// depends on a hint, because every fetched bucket is re-examined for
// the key and the true chain pointer. A hit through the cache is
// validated by incarnation checking against the fetched entry; a stale
// location degrades to a cache miss and a refetch, never to a wrong
// answer.
#ifndef SRC_STORE_REMOTE_KV_H_
#define SRC_STORE_REMOTE_KV_H_

#include <cstdint>
#include <vector>

#include "src/rdma/fabric.h"
#include "src/rdma/phase_scatter.h"
#include "src/store/kv_layout.h"
#include "src/store/location_cache.h"

namespace drtm {
namespace store {

struct RemoteEntryRef {
  bool found = false;
  uint64_t entry_off = kInvalidOffset;
  uint32_t incarnation = 0;
  int rdma_reads = 0;  // READs spent on this lookup (bench instrumentation)
  int rdma_doorbells = 0;  // batched submissions those READs rode on
};

// Snapshot of a remote entry: header plus value bytes.
struct RemoteEntrySnapshot {
  EntryHeader header;
  std::vector<uint8_t> value;
};

class RemoteKv {
 public:
  // cache may be nullptr (uncached client, as in Table 4).
  RemoteKv(rdma::Fabric* fabric, int target_node, const Geometry& geometry,
           LocationCache* cache = nullptr);

  // Locates the entry for key. On a found result, entry_off addresses the
  // entry in the target node's region.
  RemoteEntryRef Lookup(uint64_t key);

  // Reads header + value in one RDMA READ. Returns false if the node is
  // down.
  bool ReadEntry(uint64_t entry_off, RemoteEntrySnapshot* out);

  // Reads only the value bytes.
  bool ReadValue(uint64_t entry_off, void* out);

  // Combined GET: lookup, fetch, incarnation check (retries once on a
  // stale cached location).
  bool Get(uint64_t key, void* value_out);

  int target_node() const { return target_; }
  const Geometry& geometry() const { return geo_; }

  // One key's lookup in a multi-target scatter round: `client` is the
  // RemoteKv for the key's host node (clients may repeat across tasks).
  struct LookupTask {
    RemoteKv* client = nullptr;
    uint64_t key = 0;
    RemoteEntryRef result;
  };

  // Multi-target lookup: walks every task's bucket chain in lockstep.
  // Each round posts each unfinished walk's next predicted run of chain
  // READs on its host's queue in `scatter`, rings one doorbell per
  // target (overlapped — see rdma::PhaseScatter), then consumes the
  // fetched buckets. A transaction resolving keys on k nodes pays
  // ~max(chain depth) overlapped rounds instead of the sum of every
  // node's walk. A task against a dead node reports not-found, exactly
  // like Lookup.
  static void ScatterLookup(rdma::PhaseScatter& scatter,
                            std::vector<LookupTask>* tasks);

 private:
  struct Walk;  // resumable chain-walk state (defined in remote_kv.cc)

  RemoteEntryRef LookupInternal(uint64_t key, bool bypass_cache);

  // Chain-walk steps shared by the serial and scatter lookups. A walk
  // round is: serve from cache (may finish the walk), predict the next
  // speculative run, post the run's uncached READs, then — after the
  // doorbell — consume the fetched buckets (may finish or restart).
  bool WalkServeFromCache(Walk& w);  // true when the walk finished
  void WalkPredictRun(Walk& w);
  size_t WalkPostRun(Walk& w, rdma::SendQueue& sq,
                     std::vector<uint64_t>* wr_ids);
  bool WalkConsumeRun(Walk& w, bool fetch_failed);  // true when finished

  rdma::Fabric* fabric_;
  int target_;
  Geometry geo_;
  LocationCache* cache_;
};

}  // namespace store
}  // namespace drtm

#endif  // SRC_STORE_REMOTE_KV_H_
