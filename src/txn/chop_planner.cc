#include "src/txn/chop_planner.h"

#include <algorithm>
#include <cassert>
#include <string_view>

#include "src/common/cacheline.h"
#include "src/stat/metrics.h"

namespace drtm {
namespace txn {

namespace {

// The offline SC-graph catalog (see the header). Adding a workload here
// asserts that its fragment decomposition, as declared at the AddFragment
// sites, has no cyclic C-edge through the pieces.
constexpr ChopCatalogEntry kCatalog[] = {
    // New-order: header piece (district o_id allocation; the 1% rollback
    // decision lives here so only the first piece user-aborts), one
    // fragment per item line (stock rows are disjoint per line), inserts
    // last. Cross-piece stock writes are chain-locked by the planner.
    {"tpcc.new_order", true, 0},
    // Delivery: the paper's canonical chopping — one district per piece,
    // pieces mutually independent, so fragments never merge.
    {"tpcc.delivery", true, 1},
    // YCSB update: a single-record value update sliced by WriteRange;
    // slices of one record trivially have no cross-piece C-edge beyond
    // the record itself, which is chain-locked.
    {"ycsb.update", true, 0},
};

// Fraction of max_write_lines a piece may plan to fill; the rest absorbs
// bookkeeping (lease confirmation reads, version bumps, estimate error).
constexpr size_t kHeadroomNum = 1;
constexpr size_t kHeadroomDen = 2;

size_t FragmentWriteLines(const ChopPlanner& planner,
                          const ChopPlanner::Fragment& fragment) {
  size_t lines = fragment.extra_write_lines;
  for (const FragmentRecord& record : fragment.records) {
    if (record.write) {
      lines += planner.RecordWriteLines(record.table, record.key);
    }
  }
  return lines;
}

// Accumulates records into a deduplicated union, write-wins on
// read+write overlap.
void MergeRecords(const std::vector<FragmentRecord>& records,
                  std::vector<FragmentRecord>* out) {
  for (const FragmentRecord& record : records) {
    FragmentRecord* existing = nullptr;
    for (FragmentRecord& candidate : *out) {
      if (candidate.table == record.table && candidate.key == record.key) {
        existing = &candidate;
        break;
      }
    }
    if (existing == nullptr) {
      out->push_back(record);
    } else {
      existing->write |= record.write;
    }
  }
}

void DeclareRecords(const std::vector<FragmentRecord>& records,
                    Transaction* txn) {
  for (const FragmentRecord& record : records) {
    if (record.write) {
      txn->AddWrite(record.table, record.key);
    } else {
      txn->AddRead(record.table, record.key);
    }
  }
}

}  // namespace

const ChopCatalogEntry* FindChopCatalog(const char* name) {
  for (const ChopCatalogEntry& entry : kCatalog) {
    if (std::string_view(entry.name) == name) {
      return &entry;
    }
  }
  return nullptr;
}

ChopPlanner::ChopPlanner(Cluster* cluster, int node, const char* catalog_name)
    : cluster_(cluster), node_(node), catalog_(FindChopCatalog(catalog_name)) {}

void ChopPlanner::AddFragment(Fragment fragment) {
  assert((!fragment.may_user_abort || fragments_.empty()) &&
         "only the first fragment may user-abort (first-piece rule)");
  fragments_.push_back(std::move(fragment));
}

size_t ChopPlanner::LinesForBytes(size_t bytes) {
  return (bytes + kCacheLineSize - 1) / kCacheLineSize + 1;
}

size_t ChopPlanner::RecordWriteLines(int table, uint64_t key) const {
  if (cluster_->PartitionOf(table, key) != node_) {
    return 0;  // remote writes bypass the HTM write set
  }
  return LinesForBytes(cluster_->table(table).value_size);
}

size_t ChopPlanner::PieceBudgetLines() const {
  const size_t budget =
      cluster_->config().htm.max_write_lines * kHeadroomNum / kHeadroomDen;
  return std::max<size_t>(budget, 8);
}

ChopPlanner::Plan ChopPlanner::BuildPlan() const {
  Plan plan;
  for (const Fragment& fragment : fragments_) {
    plan.write_lines += FragmentWriteLines(*this, fragment);
  }

  const size_t max_per_piece =
      catalog_ != nullptr ? catalog_->max_fragments_per_piece : 0;
  const bool allowed = catalog_ != nullptr && catalog_->choppable &&
                       cluster_->config().enable_chop_planner;
  const bool over_budget =
      plan.write_lines > cluster_->config().htm.max_write_lines;
  const bool forced_split =
      max_per_piece > 0 && fragments_.size() > max_per_piece;
  if (!allowed || (!over_budget && !forced_split) || fragments_.size() <= 1) {
    plan.pieces.emplace_back();
    for (size_t i = 0; i < fragments_.size(); ++i) {
      plan.pieces.back().push_back(i);
    }
    return plan;
  }

  // Greedy packing in declaration order (order is part of the SC-graph
  // argument, so fragments never reorder). A fragment larger than the
  // budget gets a piece of its own — it may still commit via the 2PL
  // fallback, and chopping cannot shrink it further.
  const size_t budget = PieceBudgetLines();
  size_t piece_lines = 0;
  for (size_t i = 0; i < fragments_.size(); ++i) {
    const size_t lines = FragmentWriteLines(*this, fragments_[i]);
    const bool full =
        !plan.pieces.empty() && !plan.pieces.back().empty() &&
        (piece_lines + lines > budget ||
         (max_per_piece > 0 && plan.pieces.back().size() >= max_per_piece));
    if (plan.pieces.empty() || full) {
      plan.pieces.emplace_back();
      piece_lines = 0;
    }
    plan.pieces.back().push_back(i);
    piece_lines += lines;
  }
  plan.chopped = plan.pieces.size() > 1;
  if (!plan.chopped) {
    return plan;
  }

  // Chain locks: writes spanning pieces, and remote writes issued by any
  // piece after the first (locks-ahead discipline, §4.6).
  struct WriteSite {
    int table;
    uint64_t key;
    size_t first_piece;
    size_t last_piece;
    size_t piece_count;
  };
  std::vector<WriteSite> sites;
  for (size_t p = 0; p < plan.pieces.size(); ++p) {
    for (const size_t f : plan.pieces[p]) {
      for (const FragmentRecord& record : fragments_[f].records) {
        if (!record.write) {
          continue;
        }
        WriteSite* site = nullptr;
        for (WriteSite& existing : sites) {
          if (existing.table == record.table && existing.key == record.key) {
            site = &existing;
            break;
          }
        }
        if (site == nullptr) {
          sites.push_back(WriteSite{record.table, record.key, p, p, 1});
        } else if (site->last_piece != p) {
          site->last_piece = p;
          ++site->piece_count;
        }
      }
    }
  }
  for (const WriteSite& site : sites) {
    const bool remote = cluster_->PartitionOf(site.table, site.key) != node_;
    if (site.piece_count > 1 || (remote && site.last_piece > 0)) {
      plan.chain_locks.emplace_back(site.table, site.key);
    }
  }
  return plan;
}

TxnStatus ChopPlanner::Run(Worker* worker) {
  static const uint32_t kMonolithicId =
      stat::Registry::Global().CounterId("txn.chop.monolithic");
  static const uint32_t kChainsId =
      stat::Registry::Global().CounterId("txn.chop.chains");
  static const uint32_t kPiecesId =
      stat::Registry::Global().CounterId("txn.chop.pieces");

  const Plan plan = BuildPlan();
  if (!plan.chopped) {
    stat::Registry::Global().Add(kMonolithicId);
    Transaction txn(worker);
    std::vector<FragmentRecord> declared;
    for (const Fragment& fragment : fragments_) {
      MergeRecords(fragment.records, &declared);
    }
    DeclareRecords(declared, &txn);
    return txn.Run([this](Transaction& t) {
      for (const Fragment& fragment : fragments_) {
        if (!fragment.body(t)) {
          return false;
        }
      }
      return true;
    });
  }

  stat::Registry::Global().Add(kChainsId);
  stat::Registry::Global().Add(kPiecesId, plan.pieces.size());
  ChoppedTransaction chain;
  for (const auto& [table, key] : plan.chain_locks) {
    chain.AddChainLock(table, key);
  }
  for (const std::vector<size_t>& piece : plan.pieces) {
    chain.AddPiece(
        [this, piece](Transaction& t) {
          std::vector<FragmentRecord> declared;
          for (const size_t f : piece) {
            MergeRecords(fragments_[f].records, &declared);
          }
          DeclareRecords(declared, &t);
        },
        [this, piece](Transaction& t) {
          for (const size_t f : piece) {
            if (!fragments_[f].body(t)) {
              return false;
            }
          }
          return true;
        });
  }
  return chain.Run(worker);
}

size_t ChopSliceBytes(const Cluster& cluster) {
  // Unlike fragment packing — where the per-fragment line estimate is
  // itself uncertain and gets the 1/2 headroom — a slice piece's write
  // set is exactly the slice payload plus the entry header and version
  // words, so only a fixed slack is reserved and the slice fills nearly
  // the whole budget (fewer pieces per value, fewer HTM regions).
  const size_t max_lines = cluster.config().htm.max_write_lines;
  constexpr size_t kSlack = 8;
  const size_t budget_lines = max_lines > 2 * kSlack
                                  ? max_lines - kSlack
                                  : std::max<size_t>(max_lines / 2, 1);
  // Two lines inside the slack stay off the payload: the entry header
  // line plus the version bump.
  const size_t payload_lines = budget_lines > 2 ? budget_lines - 2 : 1;
  return payload_lines * kCacheLineSize;
}

size_t ChopSlicesForValue(const Cluster& cluster, uint32_t value_bytes) {
  if (!cluster.config().enable_chop_planner || value_bytes == 0) {
    return 1;
  }
  const ChopCatalogEntry* entry = FindChopCatalog("ycsb.update");
  if (entry == nullptr || !entry->choppable) {
    return 1;
  }
  if (ChopPlanner::LinesForBytes(value_bytes) <=
      cluster.config().htm.max_write_lines) {
    return 1;  // the whole value fits one HTM region
  }
  const size_t slice = ChopSliceBytes(cluster);
  return (value_bytes + slice - 1) / slice;
}

}  // namespace txn
}  // namespace drtm
