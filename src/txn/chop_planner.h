// Auto-chopping planner (paper section 3, ROADMAP "transaction
// chopping"): turns a declared transaction footprint into either one
// monolithic Transaction or a ChoppedTransaction chain, depending on
// whether the footprint fits the HTM write-line budget.
//
// The unit of planning is a *fragment*: a body closure plus the hash
// records it touches (and an estimate for untracked extras such as
// ordered-store inserts). The workload declares fragments in program
// order; the planner packs consecutive fragments into pieces whose
// estimated HTM write set stays inside a headroom-scaled budget, and
// derives the chain locks the paper's discipline requires (§4.6: all
// cross-piece locks acquired before the first piece, released after the
// last):
//   * a record written by fragments landing in more than one piece;
//   * a remote record written by any piece after the first (acquiring it
//     ahead converts a mid-chain acquisition failure — which would
//     strand the already-committed prefix — into a before-chain one).
//
// Only *local* writes count against the budget: remote writes land in
// the prefetch buffer and are written back over RDMA after XEND, so they
// never enter the HTM write set.
//
// Chopping is only sound for decompositions whose SC-graph has no cyclic
// C-edge through the pieces (Shasha et al.); that analysis is offline,
// per workload, and recorded in the catalog below. Workloads name their
// catalog entry when constructing a planner; entries that are not
// choppable (and transactions under budget) always run monolithically.
#ifndef SRC_TXN_CHOP_PLANNER_H_
#define SRC_TXN_CHOP_PLANNER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/txn/chopping.h"
#include "src/txn/transaction.h"

namespace drtm {
namespace txn {

// One hash record in a fragment's footprint.
struct FragmentRecord {
  int table = 0;
  uint64_t key = 0;
  bool write = false;
};

// The offline SC-graph verdict for a workload transaction type. The
// planner consults it by name; an absent or non-choppable entry pins the
// transaction to monolithic execution regardless of footprint.
struct ChopCatalogEntry {
  const char* name;
  bool choppable;
  // Upper bound on fragments per piece; 0 = budget-only packing.
  // Delivery uses 1: the paper's decomposition is one district per piece
  // and the pieces are mutually independent, so they never merge.
  size_t max_fragments_per_piece;
};

// nullptr when the name is unknown.
const ChopCatalogEntry* FindChopCatalog(const char* name);

class ChopPlanner {
 public:
  struct Fragment {
    std::vector<FragmentRecord> records;
    Transaction::Body body;
    // Estimated HTM write lines not visible in `records` (ordered-store
    // inserts/puts: tree-node writes are HTM-tracked but not declared).
    size_t extra_write_lines = 0;
    // Only the first fragment may set this (chopped chains may only
    // user-abort from the first piece, §3).
    bool may_user_abort = false;
  };

  struct Plan {
    bool chopped = false;
    // Fragment indices per piece, in declaration order.
    std::vector<std::vector<size_t>> pieces;
    // Records whose exclusive lock must span the chain.
    std::vector<std::pair<int, uint64_t>> chain_locks;
    // Monolithic write-line estimate, for introspection.
    size_t write_lines = 0;
  };

  ChopPlanner(Cluster* cluster, int node, const char* catalog_name);

  void AddFragment(Fragment fragment);

  // HTM lines a value of `bytes` occupies, plus one line for the entry
  // header (version/state words share the first line).
  static size_t LinesForBytes(size_t bytes);

  // Write-line cost of (table, key) for this planner's node: 0 when the
  // record is remote (remote writes bypass the HTM write set).
  size_t RecordWriteLines(int table, uint64_t key) const;

  // Per-piece write-line budget: max_write_lines scaled by headroom so
  // bookkeeping (lease confirmation, WAL, version bumps) fits too.
  size_t PieceBudgetLines() const;

  // Pure planning step, unit-testable without running anything.
  Plan BuildPlan() const;

  // Plans and executes: monolithic Transaction when the plan has one
  // piece (or the planner/catalog disables chopping), otherwise a
  // ChoppedTransaction chain with the plan's chain locks.
  TxnStatus Run(Worker* worker);

 private:
  Cluster* cluster_;
  int node_;
  const ChopCatalogEntry* catalog_;
  std::vector<Fragment> fragments_;
};

// Slices needed to update one local value of value_bytes through
// Transaction::WriteRange so each piece's write set fits the budget;
// 1 = the whole value fits one HTM region (or the planner is disabled).
size_t ChopSlicesForValue(const Cluster& cluster, uint32_t value_bytes);

// Byte width of one such slice (the last slice may be shorter).
size_t ChopSliceBytes(const Cluster& cluster);

}  // namespace txn
}  // namespace drtm

#endif  // SRC_TXN_CHOP_PLANNER_H_
