#include "src/txn/chopping.h"

#include <cassert>

#include "src/chaos/injector.h"

namespace drtm {
namespace txn {

namespace {

struct ChopInfo {
  uint32_t piece;  // next piece to run; pieces < piece have committed
  uint32_t total;
};

}  // namespace

TxnStatus ChoppedTransaction::RunFrom(Worker* worker, size_t first_piece) {
  Cluster& cluster = worker->cluster();
  const bool logging = cluster.config().logging;
  const bool chained = pieces_.size() > 1;
  const uint64_t chain_id =
      cluster.NextTxnId(worker->node(), worker->worker_id());

  // All chain locks are acquired before the first piece runs and held
  // until after the last (§4.6). A resumed chain re-acquires them —
  // recovery released the crashed node's.
  if (chained && !chain_locks_.empty()) {
    const TxnStatus lock_status =
        AcquireChainLocks(worker, chain_id, &chain_locks_);
    if (lock_status != TxnStatus::kCommitted) {
      return lock_status;
    }
  }

  // Chaos point on the chop log path: fires between the remaining-piece
  // record and the piece body, simulating a power-cut at the resume
  // point. Chain locks stay held (recovery releases them) and the piece
  // has not started, so recovery resumes exactly here.
  static const uint32_t kChopPoint =
      chaos::Injector::Global().Point("log.chop");

  for (size_t i = first_piece; i < pieces_.size(); ++i) {
    if (chained) {
      if (logging) {
        // Remaining-piece record ahead of each piece: on recovery, the
        // highest logged index is the chain's resume point (§4.6).
        const ChopInfo info{static_cast<uint32_t>(i),
                            static_cast<uint32_t>(pieces_.size())};
        NvramLog* log = cluster.log(worker->node());
        if (!log->Append(worker->worker_id(), LogType::kChopInfo, chain_id,
                         &info, sizeof(info)) &&
            (!log->ReclaimSpace(worker->worker_id()) ||
             !log->Append(worker->worker_id(), LogType::kChopInfo, chain_id,
                          &info, sizeof(info)))) {
          if (i == first_piece) {
            // Nothing from this segment committed yet; surface as a
            // retryable abort rather than running without a resume marker.
            ReleaseChainLocks(worker, &chain_locks_);
            return TxnStatus::kAborted;
          }
          // Mid-chain: earlier pieces committed, so keep the locks and let
          // the caller resume once log space frees up.
          return TxnStatus::kAborted;
        }
        // The resume marker must be recoverable before the piece makes any
        // of its effects visible (it runs under already-held chain locks).
        log->Externalize(worker->worker_id());
      }
      if (chaos::Check(kChopPoint, worker->node()).kind ==
          chaos::Decision::Kind::kAbandon) {
        return TxnStatus::kNodeFailure;  // simulated death: locks stay held
      }
    }
    Transaction txn(worker);
    pieces_[i].declare(txn);
    for (const ChainLock& lock : chain_locks_) {
      txn.MarkChainLocked(lock.table, lock.key);
    }
    const TxnStatus status = txn.Run(pieces_[i].body);
    if (status == TxnStatus::kUserAbort) {
      assert(i == 0 &&
             "only the first piece of a chopped transaction may user-abort");
      ReleaseChainLocks(worker, &chain_locks_);
      return status;
    }
    if (status != TxnStatus::kCommitted) {
      if (i == first_piece && status == TxnStatus::kAborted) {
        // Nothing from this (possibly resumed) chain segment committed;
        // release so the caller can retry the chain from scratch.
        ReleaseChainLocks(worker, &chain_locks_);
      }
      // Otherwise surface as-is: earlier pieces committed, the chain
      // locks stay held, and recovery (or the caller) finishes the chain.
      return status;
    }
  }
  if (chained) {
    if (logging) {
      // Chain-complete marker: {total, total} tells recovery there is
      // nothing left to resume.
      const ChopInfo info{static_cast<uint32_t>(pieces_.size()),
                          static_cast<uint32_t>(pieces_.size())};
      NvramLog* log = cluster.log(worker->node());
      if (!log->Append(worker->worker_id(), LogType::kChopInfo, chain_id,
                       &info, sizeof(info)) &&
          log->ReclaimSpace(worker->worker_id())) {
        log->Append(worker->worker_id(), LogType::kChopInfo, chain_id, &info,
                    sizeof(info));
      }
      // Seal before the release below: resuming a finished chain would
      // re-run its last piece, so the marker must outlive the locks.
      log->Externalize(worker->worker_id());
    }
    ReleaseChainLocks(worker, &chain_locks_);
  }
  return TxnStatus::kCommitted;
}

}  // namespace txn
}  // namespace drtm
