#include "src/txn/chopping.h"

#include <cassert>

#include "src/chaos/injector.h"
#include "src/stat/metrics.h"

namespace drtm {
namespace txn {

namespace {

struct ChopInfo {
  uint32_t piece;  // next piece to run; pieces < piece have committed
  uint32_t total;
};

// Chain markers that could not be made durable (see AppendChopMarker's
// give-up conditions) — each one is a chain that aborted mid-way or
// completed without its {total, total} record.
uint32_t MarkerDroppedId() {
  static const uint32_t id =
      stat::Registry::Global().CounterId("txn.chop.marker_dropped");
  return id;
}

// Appends a chain marker, riding out a full segment: each retry drains
// the flush pipeline (so the durability frontier catches up with the
// sealed frontier) and reclaims completed epochs before trying again.
// Gives up only when the segment stays full with the pipeline fully
// drained — the leading epochs then carry obligations of unfinished
// transactions (this chain's own lock-ahead among them), which no
// amount of waiting clears — or when chaos injection fails the append
// itself (a modeled op failure, not reclaimable).
bool AppendChopMarker(NvramLog* log, int worker, uint64_t chain_id,
                      const ChopInfo& info) {
  // One drained-and-reclaimed retry observes the steady state; the
  // extra rounds ride out chaos-delayed seals and dropped doorbells.
  constexpr int kDrainRetries = 3;
  for (int attempt = 0;; ++attempt) {
    const AppendStatus status = log->TryAppend(worker, LogType::kChopInfo,
                                               chain_id, &info, sizeof(info));
    if (status == AppendStatus::kOk) {
      return true;
    }
    if (status == AppendStatus::kFaulted || attempt >= kDrainRetries) {
      return false;
    }
    log->DrainFlushes(worker);
    log->ReclaimSpace(worker);
  }
}

}  // namespace

TxnStatus ChoppedTransaction::RunFrom(Worker* worker, size_t first_piece) {
  Cluster& cluster = worker->cluster();
  const bool logging = cluster.config().logging;
  const bool chained = pieces_.size() > 1;
  const uint64_t chain_id =
      cluster.NextTxnId(worker->node(), worker->worker_id());

  // All chain locks are acquired before the first piece runs and held
  // until after the last (§4.6). A resumed chain re-acquires them —
  // recovery released the crashed node's.
  if (chained && !chain_locks_.empty()) {
    const TxnStatus lock_status =
        AcquireChainLocks(worker, chain_id, &chain_locks_);
    if (lock_status != TxnStatus::kCommitted) {
      return lock_status;
    }
  }

  // Chaos point on the chop log path: fires between the remaining-piece
  // record and the piece body, simulating a power-cut at the resume
  // point. Chain locks stay held (recovery releases them) and the piece
  // has not started, so recovery resumes exactly here.
  static const uint32_t kChopPoint =
      chaos::Injector::Global().Point("log.chop");

  for (size_t i = first_piece; i < pieces_.size(); ++i) {
    if (chained) {
      if (logging) {
        // Remaining-piece record ahead of each piece: on recovery, the
        // highest logged index is the chain's resume point (§4.6).
        const ChopInfo info{static_cast<uint32_t>(i),
                            static_cast<uint32_t>(pieces_.size())};
        NvramLog* log = cluster.log(worker->node());
        if (!AppendChopMarker(log, worker->worker_id(), chain_id, info)) {
          // No resume marker can be made durable even with the flush
          // pipeline drained and every completed epoch reclaimed. Never
          // keep the chain locks on a live node — no caller resumes an
          // aborted chain, so the keys would stay write-locked until a
          // crash. Release and surface a retryable abort; mid-chain
          // (pieces < i committed) the retried chain re-runs those
          // pieces, which catalog pieces after the first are written to
          // tolerate — the same idempotence contract recovery's resume
          // path relies on.
          stat::Registry::Global().Add(MarkerDroppedId());
          ReleaseChainLocks(worker, &chain_locks_);
          return TxnStatus::kAborted;
        }
        // The resume marker must be recoverable before the piece makes any
        // of its effects visible (it runs under already-held chain locks).
        log->Externalize(worker->worker_id());
      }
      if (chaos::Check(kChopPoint, worker->node()).kind ==
          chaos::Decision::Kind::kAbandon) {
        return TxnStatus::kNodeFailure;  // simulated death: locks stay held
      }
    }
    Transaction txn(worker);
    pieces_[i].declare(txn);
    for (const ChainLock& lock : chain_locks_) {
      txn.MarkChainLocked(lock.table, lock.key);
    }
    const TxnStatus status = txn.Run(pieces_[i].body);
    if (status == TxnStatus::kUserAbort) {
      assert(i == 0 &&
             "only the first piece of a chopped transaction may user-abort");
      ReleaseChainLocks(worker, &chain_locks_);
      return status;
    }
    if (status != TxnStatus::kCommitted) {
      if (i == first_piece && status == TxnStatus::kAborted) {
        // Nothing from this (possibly resumed) chain segment committed;
        // release so the caller can retry the chain from scratch.
        ReleaseChainLocks(worker, &chain_locks_);
      }
      // Otherwise surface as-is: earlier pieces committed, the chain
      // locks stay held, and recovery (or the caller) finishes the chain.
      return status;
    }
  }
  if (chained) {
    if (logging) {
      // Chain-complete marker: {total, total} tells recovery there is
      // nothing left to resume. It must be durable before the chain
      // locks are released — resuming a "finished" chain would re-run
      // its last piece — so a full segment is ridden out (drain +
      // reclaim + retry) rather than the marker being dropped.
      const ChopInfo info{static_cast<uint32_t>(pieces_.size()),
                          static_cast<uint32_t>(pieces_.size())};
      NvramLog* log = cluster.log(worker->node());
      if (AppendChopMarker(log, worker->worker_id(), chain_id, info)) {
        // Seal before the release below so the marker is
        // recovery-visible before the locks go.
        log->Externalize(worker->worker_id());
      } else {
        // The marker cannot be persisted (segment pinned by unfinished
        // transactions even after draining, or an injected append
        // fault). Holding the chain locks forever would wedge every
        // later writer on these keys, so release anyway and count the
        // drop: if this node later crashes, recovery resumes at the
        // final piece and re-runs it, which catalog pieces after the
        // first are written to tolerate.
        stat::Registry::Global().Add(MarkerDroppedId());
      }
    }
    ReleaseChainLocks(worker, &chain_locks_);
  }
  return TxnStatus::kCommitted;
}

}  // namespace txn
}  // namespace drtm
