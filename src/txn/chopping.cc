#include "src/txn/chopping.h"

#include <cassert>

namespace drtm {
namespace txn {

namespace {

struct ChopInfo {
  uint32_t piece;
  uint32_t total;
};

}  // namespace

TxnStatus ChoppedTransaction::Run(Worker* worker) {
  Cluster& cluster = worker->cluster();
  const bool logging = cluster.config().logging;
  const uint64_t chain_id =
      cluster.NextTxnId(worker->node(), worker->worker_id());

  for (size_t i = 0; i < pieces_.size(); ++i) {
    if (logging && pieces_.size() > 1) {
      // Chop-info ahead of each piece: on recovery, the highest logged
      // piece index tells DrTM which pieces of the parent remain (§4.6).
      const ChopInfo info{static_cast<uint32_t>(i),
                          static_cast<uint32_t>(pieces_.size())};
      cluster.log(worker->node())
          ->Append(worker->worker_id(), LogType::kChopInfo, chain_id, &info,
                   sizeof(info));
    }
    Transaction txn(worker);
    pieces_[i].declare(txn);
    const TxnStatus status = txn.Run(pieces_[i].body);
    if (status == TxnStatus::kUserAbort) {
      assert(i == 0 &&
             "only the first piece of a chopped transaction may user-abort");
      return status;
    }
    if (status != TxnStatus::kCommitted) {
      return status;
    }
  }
  return TxnStatus::kCommitted;
}

}  // namespace txn
}  // namespace drtm
