// Transaction chopping runtime (paper section 3).
//
// DrTM fits large transactions into HTM capacity by decomposing them into
// pieces; each piece runs as its own HTM+2PL transaction. Serializability
// of the decomposition is a *static* property of the workload's SC-graph
// (Shasha et al.), established offline — this runtime only executes a
// given decomposition and maintains the paper's invariants:
//   * only the first piece may user-abort;
//   * records written across piece boundaries are chain-locked before the
//     first piece runs and released only after the last (§4.6's
//     "locks acquired in the first piece, write-back in the last");
//   * when logging is on, a remaining-piece record {next_piece, total} is
//     appended before each piece — the highest logged index is the resume
//     point — and a final {total, total} record marks the chain complete.
//
// The `log.chop` chaos point fires between the remaining-piece record and
// the piece body: an injected crash there leaves pieces < k committed,
// piece k unstarted, and the resume point unambiguous. (A machine dying
// *inside* piece k instead leaves the classic ambiguity — the piece's own
// commit is not correlated with the chain log — so catalog pieces after
// the first are written to be idempotent under re-execution.)
#ifndef SRC_TXN_CHOPPING_H_
#define SRC_TXN_CHOPPING_H_

#include <functional>
#include <vector>

#include "src/txn/transaction.h"

namespace drtm {
namespace txn {

class ChoppedTransaction {
 public:
  struct Piece {
    // Declares the piece's read/write sets on a fresh Transaction.
    std::function<void(Transaction&)> declare;
    // The piece body.
    Transaction::Body body;
  };

  void AddPiece(std::function<void(Transaction&)> declare,
                Transaction::Body body) {
    pieces_.push_back(Piece{std::move(declare), std::move(body)});
  }

  // Declares a record whose exclusive lock must span the whole chain:
  // written by more than one piece, or written remotely by a later piece.
  // Acquired (in global order) before the first piece, released after the
  // last; pieces that declare it are marked chain-locked automatically.
  void AddChainLock(int table, uint64_t key) {
    chain_locks_.push_back(ChainLock{table, key});
  }

  size_t piece_count() const { return pieces_.size(); }
  size_t chain_lock_count() const { return chain_locks_.size(); }

  // Runs the pieces in order. A kUserAbort from the first piece aborts
  // the whole chain (nothing has committed yet); later pieces must not
  // user-abort. Any piece failure after the first has committed is
  // surfaced as-is — recovery (or the caller) finishes the chain.
  TxnStatus Run(Worker* worker) { return RunFrom(worker, 0); }

  // Resumes a chain from piece `first_piece` — the recovery path (§4.6):
  // RecoveryManager reports the resume point of each unfinished chain
  // (its chain locks were released during recovery); this re-acquires
  // them and runs the remaining pieces.
  TxnStatus RunFrom(Worker* worker, size_t first_piece);

 private:
  std::vector<Piece> pieces_;
  std::vector<ChainLock> chain_locks_;
};

}  // namespace txn
}  // namespace drtm

#endif  // SRC_TXN_CHOPPING_H_
