// Transaction chopping runtime (paper section 3).
//
// DrTM fits large transactions into HTM capacity by decomposing them into
// pieces; each piece runs as its own HTM+2PL transaction. Serializability
// of the decomposition is a *static* property of the workload's SC-graph
// (Shasha et al.), established offline — this runtime only executes a
// given decomposition and maintains the two invariants the paper states:
//   * only the first piece may user-abort;
//   * when logging is on, the remaining-piece information is logged
//     before each piece so recovery knows where to resume (§4.6).
#ifndef SRC_TXN_CHOPPING_H_
#define SRC_TXN_CHOPPING_H_

#include <functional>
#include <vector>

#include "src/txn/transaction.h"

namespace drtm {
namespace txn {

class ChoppedTransaction {
 public:
  struct Piece {
    // Declares the piece's read/write sets on a fresh Transaction.
    std::function<void(Transaction&)> declare;
    // The piece body.
    Transaction::Body body;
  };

  void AddPiece(std::function<void(Transaction&)> declare,
                Transaction::Body body) {
    pieces_.push_back(Piece{std::move(declare), std::move(body)});
  }

  size_t piece_count() const { return pieces_.size(); }

  // Runs the pieces in order. A kUserAbort from the first piece aborts
  // the whole chain (nothing has committed yet); later pieces must not
  // user-abort. Any piece failure after the first has committed is
  // surfaced as-is — recovery (or the caller) finishes the chain.
  TxnStatus Run(Worker* worker);

 private:
  std::vector<Piece> pieces_;
};

}  // namespace txn
}  // namespace drtm

#endif  // SRC_TXN_CHOPPING_H_
