#include "src/txn/cluster.h"

#include <cassert>
#include <cstring>

#include "src/chaos/injector.h"
#include "src/replay/recorder.h"
#include "src/common/clock.h"
#include "src/stat/metrics.h"

namespace drtm {
namespace txn {

namespace {

// Server-side RPC dispatch and shipped structural operations.
struct ClusterMetricIds {
  uint32_t rpc_handled = 0;
  uint32_t insert_shipped = 0;
  uint32_t remove_shipped = 0;
  uint32_t upsert_shipped = 0;
  uint32_t erase_shipped = 0;
  uint32_t cache_inval_sent = 0;
  uint32_t crash = 0;
  uint32_t revive = 0;
};

const ClusterMetricIds& ClusterIds() {
  static const ClusterMetricIds ids = [] {
    stat::Registry& reg = stat::Registry::Global();
    ClusterMetricIds c;
    c.rpc_handled = reg.CounterId("cluster.rpc.handled");
    c.insert_shipped = reg.CounterId("cluster.insert.shipped");
    c.remove_shipped = reg.CounterId("cluster.remove.shipped");
    c.upsert_shipped = reg.CounterId("cluster.upsert.shipped");
    c.erase_shipped = reg.CounterId("cluster.erase.shipped");
    c.cache_inval_sent = reg.CounterId("cluster.cache_inval.sent");
    c.crash = reg.CounterId("cluster.crash");
    c.revive = reg.CounterId("cluster.revive");
    return c;
  }();
  return ids;
}

// Chaos injection points in the server-thread RPC path (the carried-over
// gap from ROADMAP item 5): rpc.dispatch covers every request at the
// dispatch switch, rpc.insert / rpc.remove cover the shipped structural
// ops specifically, and rpc.upsert / rpc.erase / rpc.cache_inval cover
// the elastic tier's migration dual-write, erase and invalidation
// broadcast channels. kFailOp / kAbandon read as a dropped request — an
// empty reply, the same visible class as a lost SEND — and kDelayNs
// models a stalled server thread. The three migration-path points are
// deliberately NOT in chaos::kTransientPoints: random plan generation
// draws only from that list, so the fixed CI seeds keep byte-identical
// schedules; scripted plans target the new points by name.
struct RpcPointIds {
  uint32_t dispatch = 0;
  uint32_t insert = 0;
  uint32_t remove = 0;
  uint32_t upsert = 0;
  uint32_t erase = 0;
  uint32_t cache_inval = 0;
  // Ordered-store server ops. Like the migration points these stay out
  // of chaos::kTransientPoints, so the fixed CI seeds keep
  // byte-identical schedules; scripted plans target them by name.
  uint32_t ordered_get = 0;
  uint32_t ordered_scan = 0;
  uint32_t ordered_insert = 0;
  uint32_t ordered_remove = 0;
};

const RpcPointIds& RpcPoints() {
  static const RpcPointIds ids = [] {
    chaos::Injector& inj = chaos::Injector::Global();
    RpcPointIds p;
    p.dispatch = inj.Point("rpc.dispatch");
    p.insert = inj.Point("rpc.insert");
    p.remove = inj.Point("rpc.remove");
    p.upsert = inj.Point("rpc.upsert");
    p.erase = inj.Point("rpc.erase");
    p.cache_inval = inj.Point("rpc.cache_inval");
    p.ordered_get = inj.Point("rpc.ordered.get");
    p.ordered_scan = inj.Point("rpc.ordered.scan");
    p.ordered_insert = inj.Point("rpc.ordered.insert");
    p.ordered_remove = inj.Point("rpc.ordered.remove");
    return p;
  }();
  return ids;
}

// Returns true when the op should be dropped (fail/abandon); applies a
// delay decision in place.
bool ChaosDropsRpc(uint32_t point, int node) {
  const chaos::Decision decision = chaos::Check(point, node);
  switch (decision.kind) {
    case chaos::Decision::Kind::kFailOp:
    case chaos::Decision::Kind::kAbandon:
      return true;
    case chaos::Decision::Kind::kDelayNs:
      SpinFor(decision.arg);
      return false;
    default:
      return false;
  }
}

}  // namespace

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  rdma::Fabric::Config fabric_config;
  fabric_config.num_nodes = config.num_nodes;
  fabric_config.region_bytes = config.region_bytes;
  fabric_config.latency = config.latency;
  fabric_config.atomic_level = config.atomic_level;
  fabric_ = std::make_unique<rdma::Fabric>(fabric_config);
  synctime_ =
      std::make_unique<SyncTime>(fabric_.get(), config.softtime_interval_us);

  hash_tables_.resize(static_cast<size_t>(config.num_nodes));
  ordered_tables_.resize(static_cast<size_t>(config.num_nodes));
  caches_.resize(static_cast<size_t>(config.num_nodes));
  for (int n = 0; n < config.num_nodes; ++n) {
    caches_[static_cast<size_t>(n)].resize(
        static_cast<size_t>(config.num_nodes));
    // NVRAM segments consume registered memory; only reserve them when
    // durability is on.
    LogEpochConfig epoch;
    epoch.group_commit = config.group_commit;
    epoch.epoch_bytes = config.durability_epoch_bytes;
    epoch.epoch_us = config.durability_epoch_us;
    epoch.latency = config.latency;
    logs_.push_back(config.logging
                        ? std::make_unique<NvramLog>(
                              &fabric_->memory(n),
                              config.workers_per_node + 1,
                              config.log_segment_bytes, epoch)
                        : nullptr);
    server_running_.push_back(std::make_unique<std::atomic<bool>>(false));
    txn_seq_.push_back(std::make_unique<std::atomic<uint64_t>>(1));
  }
}

Cluster::~Cluster() { Stop(); }

int Cluster::AddTable(const TableSpec& spec) {
  assert(!started_ && "tables must be registered before Start()");
  assert(spec.partition && "a table needs a partition function");
  const int id = static_cast<int>(tables_.size());
  tables_.push_back(spec);
  for (int n = 0; n < config_.num_nodes; ++n) {
    auto& hash_row = hash_tables_[static_cast<size_t>(n)];
    auto& ordered_row = ordered_tables_[static_cast<size_t>(n)];
    if (spec.ordered) {
      store::BPlusTree::Config tree_config;
      tree_config.value_size = spec.value_size;
      tree_config.max_nodes = spec.max_nodes;
      hash_row.push_back(nullptr);
      ordered_row.push_back(std::make_unique<store::BPlusTree>(tree_config));
    } else {
      store::ClusterHashTable::Config table_config;
      table_config.main_buckets = spec.main_buckets;
      table_config.indirect_buckets = spec.indirect_buckets;
      table_config.capacity = spec.capacity;
      table_config.value_size = spec.value_size;
      hash_row.push_back(std::make_unique<store::ClusterHashTable>(
          &fabric_->memory(n), table_config));
      ordered_row.push_back(nullptr);
    }
  }
  return id;
}

store::LocationCache* Cluster::cache(int local_node, int target_node) {
  if (!config_.enable_location_cache || local_node == target_node) {
    return nullptr;
  }
  auto& slot = caches_[static_cast<size_t>(local_node)]
                      [static_cast<size_t>(target_node)];
  if (slot == nullptr) {
    // DRTM_LOC_CACHE_ENTRIES sweeps the per-shard frame count without a
    // rebuild; all caches owned by one machine share a gauge label.
    slot = std::make_unique<store::LocationCache>(
        store::LocationCache::BudgetFromEnv(config_.location_cache_bytes),
        "n" + std::to_string(local_node), config_.adaptive_cache_admission);
  }
  return slot.get();
}

void Cluster::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  // Materialize every location-cache shard before any worker or server
  // thread can race through cache(): its lazy create is single-threaded
  // setup only — two concurrent first calls for one (local, target) pair
  // would free a cache out from under its first user.
  for (int n = 0; n < config_.num_nodes; ++n) {
    for (int t = 0; t < config_.num_nodes; ++t) {
      (void)cache(n, t);
    }
  }
  synctime_->Start();
  for (int n = 0; n < config_.num_nodes; ++n) {
    server_running_[static_cast<size_t>(n)]->store(true);
    servers_.emplace_back([this, n] { ServerLoop(n); });
  }
}

void Cluster::Stop() {
  if (!started_) {
    return;
  }
  started_ = false;
  for (int n = 0; n < config_.num_nodes; ++n) {
    server_running_[static_cast<size_t>(n)]->store(false);
    fabric_->queue(n).Shutdown();
  }
  for (auto& server : servers_) {
    if (server.joinable()) {
      server.join();
    }
  }
  servers_.clear();
  synctime_->Stop();
}

void Cluster::ServerLoop(int node) {
  htm::HtmThread htm(config_.htm);
  while (server_running_[static_cast<size_t>(node)]->load(
      std::memory_order_acquire)) {
    rdma::Message msg;
    if (!fabric_->queue(node).PopWait(&msg, 1000)) {
      continue;
    }
    if (ChaosDropsRpc(RpcPoints().dispatch, node)) {
      // Drop at the door: the empty reply reads as op-failed at every
      // call site, same visible class as a lost SEND.
      fabric_->Reply(msg, {});
      continue;
    }
    std::vector<uint8_t> reply;
    switch (msg.kind) {
      case kRpcKvInsert:
        reply = HandleKvInsert(node, msg);
        break;
      case kRpcKvRemove:
        reply = HandleKvRemove(node, msg);
        break;
      case kRpcKvUpsert:
        reply = HandleKvUpsert(node, msg);
        break;
      case kRpcKvErase:
        reply = HandleKvErase(node, msg);
        break;
      case kRpcCacheInval:
        reply = HandleCacheInval(node, msg);
        break;
      case kRpcOrderedGet:
        reply = HandleOrderedGet(node, msg);
        break;
      case kRpcOrderedScan:
        reply = HandleOrderedScan(node, msg);
        break;
      default: {
        auto it = handlers_.find(msg.kind);
        if (it != handlers_.end()) {
          reply = it->second(msg);
        }
        break;
      }
    }
    stat::Registry::Global().Add(ClusterIds().rpc_handled);
    fabric_->Reply(msg, std::move(reply));
  }
}

namespace {

struct KvRequest {
  int32_t table;
  uint64_t key;
};

}  // namespace

std::vector<uint8_t> Cluster::HandleKvInsert(int node,
                                             const rdma::Message& msg) {
  if (ChaosDropsRpc(RpcPoints().insert, node)) {
    return {static_cast<uint8_t>(0)};
  }
  KvRequest req;
  std::memcpy(&req, msg.payload.data(), sizeof(req));
  const uint8_t* value = msg.payload.data() + sizeof(req);
  htm::HtmThread htm(config_.htm);
  bool ok = false;
  if (tables_[static_cast<size_t>(req.table)].ordered) {
    // Ordered tables take the same shipped-insert channel; a dedicated
    // point lets scripted chaos plans drop B+-tree inserts specifically.
    if (ChaosDropsRpc(RpcPoints().ordered_insert, node)) {
      return {static_cast<uint8_t>(0)};
    }
    store::BPlusTree* tree = ordered_table(node, req.table);
    while (true) {
      const unsigned status =
          htm.Transact([&] { ok = tree->Insert(req.key, value); });
      if (status == htm::kCommitted) {
        break;
      }
    }
    replay::Recorder::Global().RecordRpcApply("rpc.ordered.insert", node,
                                              req.table, req.key, ok);
  } else {
    store::ClusterHashTable* table = hash_table(node, req.table);
    while (true) {
      const unsigned status =
          htm.Transact([&] { ok = table->Insert(req.key, value); });
      if (status == htm::kCommitted) {
        break;
      }
    }
    replay::Recorder::Global().RecordRpcApply("rpc.insert", node, req.table,
                                              req.key, ok);
  }
  if (ok) {
    if (ElasticHooks* hooks = elastic_hooks()) {
      hooks->OnStructuralOp(node, req.table, req.key, /*inserted=*/true,
                            value,
                            tables_[static_cast<size_t>(req.table)].value_size);
    }
  }
  return {static_cast<uint8_t>(ok ? 1 : 0)};
}

std::vector<uint8_t> Cluster::HandleKvRemove(int node,
                                             const rdma::Message& msg) {
  if (ChaosDropsRpc(RpcPoints().remove, node)) {
    return {static_cast<uint8_t>(0)};
  }
  KvRequest req;
  std::memcpy(&req, msg.payload.data(), sizeof(req));
  htm::HtmThread htm(config_.htm);
  bool ok = false;
  if (tables_[static_cast<size_t>(req.table)].ordered) {
    if (ChaosDropsRpc(RpcPoints().ordered_remove, node)) {
      return {static_cast<uint8_t>(0)};
    }
    store::BPlusTree* tree = ordered_table(node, req.table);
    while (true) {
      const unsigned status =
          htm.Transact([&] { ok = tree->Remove(req.key); });
      if (status == htm::kCommitted) {
        break;
      }
    }
    replay::Recorder::Global().RecordRpcApply("rpc.ordered.remove", node,
                                              req.table, req.key, ok);
  } else {
    store::ClusterHashTable* table = hash_table(node, req.table);
    while (true) {
      const unsigned status =
          htm.Transact([&] { ok = table->Remove(req.key); });
      if (status == htm::kCommitted) {
        break;
      }
    }
    replay::Recorder::Global().RecordRpcApply("rpc.remove", node, req.table,
                                              req.key, ok);
  }
  if (ok) {
    if (ElasticHooks* hooks = elastic_hooks()) {
      hooks->OnStructuralOp(node, req.table, req.key, /*inserted=*/false,
                            nullptr, 0);
    }
  }
  return {static_cast<uint8_t>(ok ? 1 : 0)};
}

namespace {

struct UpsertRequest {
  int32_t table;
  uint32_t version;
  uint64_t key;
};

struct CacheInvalHeader {
  int32_t source;
  uint32_t count;
};

}  // namespace

std::vector<uint8_t> Cluster::HandleKvUpsert(int node,
                                             const rdma::Message& msg) {
  // A dropped upsert is a lost dual-write/catch-up installment: the
  // migration engine must retry off the 0 reply or reconcile at flip.
  if (ChaosDropsRpc(RpcPoints().upsert, node)) {
    return {static_cast<uint8_t>(0)};
  }
  UpsertRequest req;
  std::memcpy(&req, msg.payload.data(), sizeof(req));
  const uint8_t* value = msg.payload.data() + sizeof(req);
  store::ClusterHashTable* table = hash_table(node, req.table);
  htm::HtmThread htm(config_.htm);
  bool ok = false;
  while (true) {
    const unsigned status = htm.Transact(
        [&] { ok = table->InstallVersioned(req.key, req.version, value); });
    if (status == htm::kCommitted) {
      break;
    }
  }
  replay::Recorder::Global().RecordRpcApply("rpc.upsert", node, req.table,
                                            req.key, ok);
  return {static_cast<uint8_t>(ok ? 1 : 0)};
}

std::vector<uint8_t> Cluster::HandleKvErase(int node,
                                            const rdma::Message& msg) {
  if (ChaosDropsRpc(RpcPoints().erase, node)) {
    return {static_cast<uint8_t>(0)};
  }
  KvRequest req;
  std::memcpy(&req, msg.payload.data(), sizeof(req));
  store::ClusterHashTable* table = hash_table(node, req.table);
  htm::HtmThread htm(config_.htm);
  bool ok = false;
  while (true) {
    const unsigned status =
        htm.Transact([&] { ok = table->Remove(req.key); });
    if (status == htm::kCommitted) {
      break;
    }
  }
  replay::Recorder::Global().RecordRpcApply("rpc.erase", node, req.table,
                                            req.key, ok);
  return {static_cast<uint8_t>(ok ? 1 : 0)};
}

std::vector<uint8_t> Cluster::HandleCacheInval(int node,
                                               const rdma::Message& msg) {
  // A dropped invalidation leaves stale location-cache hints; hints are
  // validated on use, so the cost is extra RDMA reads, never wrong data.
  if (ChaosDropsRpc(RpcPoints().cache_inval, node)) {
    return {static_cast<uint8_t>(0)};
  }
  CacheInvalHeader header;
  if (msg.payload.size() < sizeof(header)) {
    return {static_cast<uint8_t>(0)};
  }
  std::memcpy(&header, msg.payload.data(), sizeof(header));
  store::LocationCache* local = cache(node, header.source);
  if (local != nullptr) {
    const uint8_t* offs = msg.payload.data() + sizeof(header);
    for (uint32_t i = 0;
         i < header.count &&
         sizeof(header) + (i + 1) * sizeof(uint64_t) <= msg.payload.size();
         ++i) {
      uint64_t bucket_off = 0;
      std::memcpy(&bucket_off, offs + i * sizeof(uint64_t), sizeof(uint64_t));
      local->Invalidate(bucket_off);
    }
  }
  return {static_cast<uint8_t>(1)};
}

namespace {

struct OrderedGetRequest {
  int32_t table;
  uint64_t key;
};

struct OrderedScanRequest {
  int32_t table;
  uint32_t limit;
  uint64_t lo;
  uint64_t hi;
};

}  // namespace

std::vector<uint8_t> Cluster::HandleOrderedGet(int node,
                                               const rdma::Message& msg) {
  // A dropped ordered get reads as a lost request: empty/negative reply,
  // and the client treats the key as unreachable this attempt.
  if (ChaosDropsRpc(RpcPoints().ordered_get, node)) {
    return {static_cast<uint8_t>(0)};
  }
  OrderedGetRequest req;
  std::memcpy(&req, msg.payload.data(), sizeof(req));
  store::BPlusTree* tree = ordered_table(node, req.table);
  const uint32_t value_size = tables_[static_cast<size_t>(req.table)]
                                  .value_size;
  std::vector<uint8_t> reply(1 + value_size, 0);
  htm::HtmThread htm(config_.htm);
  bool found = false;
  while (true) {
    const unsigned status =
        htm.Transact([&] { found = tree->Get(req.key, reply.data() + 1); });
    if (status == htm::kCommitted) {
      break;
    }
  }
  reply[0] = found ? 1 : 0;
  return reply;
}

std::vector<uint8_t> Cluster::HandleOrderedScan(int node,
                                                const rdma::Message& msg) {
  // Dropped scan: a sub-4-byte reply, which RemoteOrderedScan reports as
  // a failed RPC rather than an empty (but successful) result set.
  if (ChaosDropsRpc(RpcPoints().ordered_scan, node)) {
    return {static_cast<uint8_t>(0)};
  }
  OrderedScanRequest req;
  std::memcpy(&req, msg.payload.data(), sizeof(req));
  store::BPlusTree* tree = ordered_table(node, req.table);
  const uint32_t value_size = tables_[static_cast<size_t>(req.table)]
                                  .value_size;
  std::vector<uint8_t> reply(4, 0);
  htm::HtmThread htm(config_.htm);
  uint32_t count = 0;
  while (true) {
    reply.resize(4);
    count = 0;
    const unsigned status = htm.Transact([&] {
      tree->Scan(req.lo, req.hi, [&](uint64_t key, const void* value) {
        const size_t base = reply.size();
        reply.resize(base + 8 + value_size);
        std::memcpy(reply.data() + base, &key, 8);
        std::memcpy(reply.data() + base + 8, value, value_size);
        return ++count < req.limit;
      });
    });
    if (status == htm::kCommitted) {
      break;
    }
  }
  std::memcpy(reply.data(), &count, 4);
  return reply;
}

bool Cluster::RemoteOrderedGet(int from_node, int target_node, int table,
                               uint64_t key, void* value_out) {
  OrderedGetRequest req{table, key};
  std::vector<uint8_t> payload(sizeof(req));
  std::memcpy(payload.data(), &req, sizeof(req));
  std::vector<uint8_t> reply;
  if (fabric_->Rpc(from_node, target_node, kRpcOrderedGet, std::move(payload),
                   &reply) != rdma::OpStatus::kOk ||
      reply.empty() || reply[0] == 0) {
    return false;
  }
  std::memcpy(value_out, reply.data() + 1,
              tables_[static_cast<size_t>(table)].value_size);
  return true;
}

bool Cluster::RemoteOrderedScan(int from_node, int target_node, int table,
                                uint64_t lo, uint64_t hi, uint32_t limit,
                                std::vector<OrderedScanRow>* rows_out) {
  OrderedScanRequest req{table, limit, lo, hi};
  std::vector<uint8_t> payload(sizeof(req));
  std::memcpy(payload.data(), &req, sizeof(req));
  std::vector<uint8_t> reply;
  if (fabric_->Rpc(from_node, target_node, kRpcOrderedScan,
                   std::move(payload), &reply) != rdma::OpStatus::kOk ||
      reply.size() < 4) {
    return false;
  }
  uint32_t count = 0;
  std::memcpy(&count, reply.data(), 4);
  const uint32_t value_size = tables_[static_cast<size_t>(table)].value_size;
  rows_out->clear();
  size_t pos = 4;
  for (uint32_t i = 0; i < count && pos + 8 + value_size <= reply.size();
       ++i) {
    OrderedScanRow row;
    std::memcpy(&row.key, reply.data() + pos, 8);
    row.value.assign(reply.begin() + static_cast<long>(pos + 8),
                     reply.begin() + static_cast<long>(pos + 8 + value_size));
    rows_out->push_back(std::move(row));
    pos += 8 + value_size;
  }
  return true;
}

bool Cluster::RemoteInsert(int from_node, int table, uint64_t key,
                           const void* value) {
  const TableSpec& spec = tables_[static_cast<size_t>(table)];
  KvRequest req{table, key};
  std::vector<uint8_t> payload(sizeof(req) + spec.value_size);
  std::memcpy(payload.data(), &req, sizeof(req));
  std::memcpy(payload.data() + sizeof(req), value, spec.value_size);
  std::vector<uint8_t> reply;
  const int target = PartitionOf(table, key);
  stat::Registry::Global().Add(ClusterIds().insert_shipped);
  if (fabric_->Rpc(from_node, target, kRpcKvInsert, std::move(payload),
                   &reply) != rdma::OpStatus::kOk) {
    return false;
  }
  return !reply.empty() && reply[0] == 1;
}

bool Cluster::RemoteRemove(int from_node, int table, uint64_t key) {
  KvRequest req{table, key};
  std::vector<uint8_t> payload(sizeof(req));
  std::memcpy(payload.data(), &req, sizeof(req));
  std::vector<uint8_t> reply;
  const int target = PartitionOf(table, key);
  stat::Registry::Global().Add(ClusterIds().remove_shipped);
  if (fabric_->Rpc(from_node, target, kRpcKvRemove, std::move(payload),
                   &reply) != rdma::OpStatus::kOk) {
    return false;
  }
  return !reply.empty() && reply[0] == 1;
}

bool Cluster::ShipUpsert(int from_node, int target_node, int table,
                         uint64_t key, uint32_t version, const void* value) {
  const TableSpec& spec = tables_[static_cast<size_t>(table)];
  UpsertRequest req{table, version, key};
  std::vector<uint8_t> payload(sizeof(req) + spec.value_size);
  std::memcpy(payload.data(), &req, sizeof(req));
  std::memcpy(payload.data() + sizeof(req), value, spec.value_size);
  std::vector<uint8_t> reply;
  stat::Registry::Global().Add(ClusterIds().upsert_shipped);
  if (fabric_->Rpc(from_node, target_node, kRpcKvUpsert, std::move(payload),
                   &reply) != rdma::OpStatus::kOk) {
    return false;
  }
  return !reply.empty() && reply[0] == 1;
}

bool Cluster::ShipErase(int from_node, int target_node, int table,
                        uint64_t key) {
  KvRequest req{table, key};
  std::vector<uint8_t> payload(sizeof(req));
  std::memcpy(payload.data(), &req, sizeof(req));
  std::vector<uint8_t> reply;
  stat::Registry::Global().Add(ClusterIds().erase_shipped);
  if (fabric_->Rpc(from_node, target_node, kRpcKvErase, std::move(payload),
                   &reply) != rdma::OpStatus::kOk) {
    return false;
  }
  return !reply.empty() && reply[0] == 1;
}

int Cluster::BroadcastCacheInvalidate(
    int from_node, int source_node, const std::vector<uint64_t>& bucket_offs) {
  if (bucket_offs.empty()) {
    return 0;
  }
  CacheInvalHeader header{source_node,
                          static_cast<uint32_t>(bucket_offs.size())};
  std::vector<uint8_t> payload(sizeof(header) +
                               bucket_offs.size() * sizeof(uint64_t));
  std::memcpy(payload.data(), &header, sizeof(header));
  std::memcpy(payload.data() + sizeof(header), bucket_offs.data(),
              bucket_offs.size() * sizeof(uint64_t));
  int acked = 0;
  for (int n = 0; n < config_.num_nodes; ++n) {
    if (n == source_node) {
      continue;  // a node never caches its own memory
    }
    std::vector<uint8_t> reply;
    stat::Registry::Global().Add(ClusterIds().cache_inval_sent);
    if (fabric_->Rpc(from_node, n, kRpcCacheInval, payload, &reply) ==
            rdma::OpStatus::kOk &&
        !reply.empty() && reply[0] == 1) {
      ++acked;
    }
  }
  return acked;
}

uint64_t Cluster::BeginTxnWindow() {
  while (true) {
    const uint64_t epoch = window_epoch_.load(std::memory_order_acquire);
    std::atomic<int64_t>& counter =
        (epoch & 1) != 0 ? windows_odd_ : windows_even_;
    counter.fetch_add(1, std::memory_order_acq_rel);
    if (window_epoch_.load(std::memory_order_acquire) == epoch) {
      return epoch;
    }
    // A drain slipped between the epoch read and the increment; back out
    // and register under the new epoch so the drain does not wait on us.
    counter.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void Cluster::EndTxnWindow(uint64_t token) {
  std::atomic<int64_t>& counter =
      (token & 1) != 0 ? windows_odd_ : windows_even_;
  counter.fetch_sub(1, std::memory_order_acq_rel);
}

void Cluster::DrainTxnWindows() {
  const uint64_t old_epoch =
      window_epoch_.fetch_add(1, std::memory_order_acq_rel);
  std::atomic<int64_t>& counter =
      (old_epoch & 1) != 0 ? windows_odd_ : windows_even_;
  while (counter.load(std::memory_order_acquire) != 0) {
    SpinFor(2000);
  }
}

void Cluster::RegisterRpcHandler(uint32_t kind, RpcHandler handler) {
  assert(kind >= kUserRpcBase);
  handlers_[kind] = std::move(handler);
}

rdma::OpStatus Cluster::Rpc(int from, int to, uint32_t kind,
                            std::vector<uint8_t> payload,
                            std::vector<uint8_t>* reply) {
  return fabric_->Rpc(from, to, kind, std::move(payload), reply);
}

void Cluster::Crash(int node) {
  stat::Registry::Global().Add(ClusterIds().crash);
  fabric_->SetAlive(node, false);
  server_running_[static_cast<size_t>(node)]->store(false);
}

void Cluster::Revive(int node) {
  stat::Registry::Global().Add(ClusterIds().revive);
  fabric_->queue(node).Reset();
  fabric_->SetAlive(node, true);
  if (started_) {
    server_running_[static_cast<size_t>(node)]->store(true);
    servers_.emplace_back([this, node] { ServerLoop(node); });
  }
}

uint64_t Cluster::NextTxnId(int node, int worker) {
  const uint64_t seq =
      txn_seq_[static_cast<size_t>(node)]->fetch_add(1,
                                                     std::memory_order_relaxed);
  return (static_cast<uint64_t>(node) << 48) |
         (static_cast<uint64_t>(worker) << 40) | seq;
}

}  // namespace txn
}  // namespace drtm
