// The DrTM cluster: simulated machines, their memory stores, synchronized
// time, NVRAM logs, location caches, and per-node server threads (which
// play the role of the paper's SEND/RECV service for shipped INSERT /
// DELETE, ordered-store access and transaction shipping, section 6.5).
#ifndef SRC_TXN_CLUSTER_H_
#define SRC_TXN_CLUSTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/htm/htm.h"
#include "src/rdma/fabric.h"
#include "src/store/bplus_tree.h"
#include "src/store/cluster_hash.h"
#include "src/store/location_cache.h"
#include "src/txn/nvram_log.h"
#include "src/txn/sync_time.h"

namespace drtm {
namespace txn {

struct ClusterConfig {
  int num_nodes = 2;
  int workers_per_node = 2;
  size_t region_bytes = size_t{256} << 20;
  rdma::LatencyModel latency = rdma::LatencyModel::Zero();
  rdma::AtomicLevel atomic_level = rdma::AtomicLevel::kHca;
  htm::Config htm;

  // Lease machinery (paper defaults are 400 us / 1 ms / small DELTA; the
  // simulation oversubscribes cores, so defaults here are scaled up —
  // relative behaviour is what matters).
  // DELTA must absorb both PTP skew and softtime staleness (one update
  // interval), so keep delta_us >= softtime_interval_us.
  uint64_t lease_rw_us = 4000;
  uint64_t lease_ro_us = 10000;
  uint64_t delta_us = 300;
  uint64_t softtime_interval_us = 200;

  // Contention management: HTM retries before the fallback handler, and
  // Start-phase (remote lock) retries before counting as an HTM retry.
  int htm_retry_limit = 8;
  int start_retry_limit = 64;
  // Lock-observed XABORTs (the body saw a 2PL write lock) mean the
  // holder is mid-commit: stretch the retry budget by up to this many
  // extra attempts with a stronger bounded-exponential backoff instead
  // of falling through to the ~1000x-costlier 2PL fallback (ROADMAP
  // "SmallBank fallback cost"). 0 restores the paper's flat budget.
  int lock_abort_extra_retries = 8;
  // Max-outstanding window for doorbell-batched verbs (rdma::SendQueue)
  // used by the transaction layer's lock/prefetch/write-back phases.
  size_t rdma_batch_window = 16;
  // Adaptive contention management: scale htm_retry_limit /
  // lock_abort_extra_retries from each worker's live abort-cause mix
  // (ROADMAP "adaptive budgets") — capacity-dominant mixes shrink the
  // budget (retrying a deterministic overflow only delays the fallback),
  // conflict/lock-dominant mixes stretch it. The chosen budget is
  // exported as gauge txn.adaptive.retry_budget. htm_retry_limit == 0
  // (fallback-only mode) is never overridden; false restores the static
  // knobs exactly.
  bool adaptive_retry_budget = true;
  // 2PL fallback first tries to acquire *all* locks/leases with one
  // non-blocking overlapped scatter round (rdma::PhaseScatter) and only
  // drops to the global-sort-order serial loop when a ref comes back
  // contended (everything acquired out of order is released first, so
  // deadlock freedom is preserved). false restores the always-serial
  // paper fallback.
  bool optimistic_fallback_locking = true;
  // Auto-chopping planner (paper section 3 / ROADMAP "transaction
  // chopping"): workloads route capacity-bound transactions through
  // txn::ChopPlanner, which splits a declared footprint that exceeds the
  // HTM write-line budget into a chain of chopped pieces (locks ahead of
  // the first piece, write-back in the last). false forces every planned
  // transaction to run monolithically — the pre-chopping behaviour.
  bool enable_chop_planner = true;

  bool logging = false;
  size_t log_segment_bytes = size_t{8} << 20;
  // Group-commit durability pipeline (ISSUE 9 / ROADMAP item 3). Off,
  // every log record seals + flushes its own epoch and the commit path
  // waits out the flush — the synchronous per-record baseline. On,
  // records batch into per-worker epochs sealed at the byte/time
  // thresholds below (or at externalization barriers), flushed
  // asynchronously; transactions still commit at XEND but are durably
  // acknowledged only at their epoch's flush (Worker::WaitDurable /
  // NvramLog::DurableUpTo).
  bool group_commit = false;
  size_t durability_epoch_bytes = size_t{64} << 10;
  uint64_t durability_epoch_us = 200;
  size_t location_cache_bytes = size_t{16} << 20;
  bool enable_location_cache = true;
  // Adaptive install admission for the location caches: a shard that is
  // nearly full and thrashing (live cache.hit/cache.miss window hit
  // rate < 10%) rations installs to 1 in 2^k, k <= 5, and decays the
  // throttle when the hit rate recovers (>= 25%). Exported as the
  // cache.admit_shift.<label> gauge; false restores unconditional
  // installs.
  bool adaptive_cache_admission = true;
  // When false, remote reads take exclusive locks instead of leases
  // (the paper's "w/o read lease" ablation, Fig. 17).
  bool enable_read_lease = true;
  // Fig. 11 ablation. DrTM's default (c) reuses the Start-phase softtime
  // for all local lock/lease checks and only reads softtime
  // transactionally at lease confirmation. Strategy (b) reads it
  // transactionally in every local operation, widening the conflict
  // window with the timer thread.
  bool softtime_read_every_local_op = false;
};

struct TableSpec {
  uint32_t value_size = 8;
  bool ordered = false;
  // Unordered (hash) sizing, per node:
  uint64_t main_buckets = 1 << 12;
  uint64_t indirect_buckets = 1 << 10;
  uint64_t capacity = 1 << 15;
  // Ordered (B+ tree) sizing, per node:
  uint32_t max_nodes = 1 << 15;
  // Key -> owning node.
  std::function<int(uint64_t)> partition;
};

class Cluster {
 public:
  // Built-in RPC kinds; user handlers start at kUserRpcBase.
  static constexpr uint32_t kRpcKvInsert = 1;
  static constexpr uint32_t kRpcKvRemove = 2;
  static constexpr uint32_t kRpcOrderedGet = 3;
  static constexpr uint32_t kRpcOrderedScan = 4;
  // Elastic-tier kinds: migration-side installs/erases (gate-free — they
  // carry the migration itself) and location-cache invalidation.
  static constexpr uint32_t kRpcKvUpsert = 5;
  static constexpr uint32_t kRpcKvErase = 6;
  static constexpr uint32_t kRpcCacheInval = 7;
  static constexpr uint32_t kUserRpcBase = 100;

  // Hooks the elastic tier (src/elastic) installs around the txn layer
  // while a migration is live. One engine at a time; install/uninstall
  // must bracket DrainTxnWindows() so no in-flight transaction straddles
  // the toggle. All methods may be called concurrently from worker and
  // server threads.
  class ElasticHooks {
   public:
    virtual ~ElasticHooks() = default;
    // Gate for write-lock / lease acquisition and local HTM writes.
    // Returning false means the key's bucket is frozen mid-switch: the
    // transaction aborts the attempt and retries, re-resolving the
    // owner, so it lands on the new owner after the flip.
    virtual bool AllowAcquire(int table, uint64_t key) { return true; }
    // A transaction's write to (table, key) on `node` became visible at
    // `version`. Drives dual-write during the catch-up phase.
    virtual void OnCommittedWrite(int node, int table, uint64_t key,
                                  uint32_t version, const void* value,
                                  uint32_t len) {}
    // A shipped INSERT (inserted=true) / DELETE executed on `node`.
    virtual void OnStructuralOp(int node, int table, uint64_t key,
                                bool inserted, const void* value,
                                uint32_t len) {}
  };

  using RpcHandler =
      std::function<std::vector<uint8_t>(const rdma::Message&)>;

  explicit Cluster(const ClusterConfig& config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Table registration; call before Start(). Returns the table id.
  int AddTable(const TableSpec& spec);

  void Start();
  void Stop();

  const ClusterConfig& config() const { return config_; }
  int num_nodes() const { return config_.num_nodes; }
  int workers_per_node() const { return config_.workers_per_node; }
  rdma::Fabric& fabric() { return *fabric_; }
  SyncTime& synctime() { return *synctime_; }

  const TableSpec& table(int id) const {
    return tables_[static_cast<size_t>(id)];
  }
  int num_tables() const { return static_cast<int>(tables_.size()); }
  int PartitionOf(int table, uint64_t key) const {
    return tables_[static_cast<size_t>(table)].partition(key);
  }

  store::ClusterHashTable* hash_table(int node, int table) {
    return hash_tables_[static_cast<size_t>(node)][static_cast<size_t>(table)]
        .get();
  }
  store::BPlusTree* ordered_table(int node, int table) {
    return ordered_tables_[static_cast<size_t>(node)]
                          [static_cast<size_t>(table)]
        .get();
  }

  // The location cache a client on local_node uses for target_node's
  // memory (nullptr if caching is disabled).
  store::LocationCache* cache(int local_node, int target_node);

  NvramLog* log(int node) {
    return logs_[static_cast<size_t>(node)].get();
  }

  // Ships an INSERT/DELETE to the key's host, which executes it inside an
  // HTM transaction on its server thread (paper footnote 5).
  bool RemoteInsert(int from_node, int table, uint64_t key,
                    const void* value);
  bool RemoteRemove(int from_node, int table, uint64_t key);

  // --- elastic-tier plumbing -----------------------------------------------
  // Installs (or clears, with nullptr) the migration hooks. The caller
  // must DrainTxnWindows() after every toggle before relying on it.
  void SetElasticHooks(ElasticHooks* hooks) {
    elastic_hooks_.store(hooks, std::memory_order_release);
  }
  ElasticHooks* elastic_hooks() const {
    return elastic_hooks_.load(std::memory_order_acquire);
  }

  // Epoch-tagged transaction windows. Every transaction attempt brackets
  // itself with Begin/End (see txn::WindowGuard); DrainTxnWindows() bumps
  // the epoch and waits until every attempt that began under the old
  // epoch has ended — i.e. until no in-flight attempt can still be
  // acting on hook state sampled before the toggle.
  uint64_t BeginTxnWindow();
  void EndTxnWindow(uint64_t token);
  void DrainTxnWindows();

  // Migration-side record shipping: install-or-overwrite at `version`
  // (max-version-wins, idempotent) / erase on an explicit node,
  // bypassing the partition function and the elastic gate.
  bool ShipUpsert(int from_node, int target_node, int table, uint64_t key,
                  uint32_t version, const void* value);
  bool ShipErase(int from_node, int target_node, int table, uint64_t key);

  // Tells every other node to drop its location-cache hints for the
  // listed bucket offsets in `source_node`'s memory. Returns the number
  // of nodes that acknowledged.
  int BroadcastCacheInvalidate(int from_node, int source_node,
                               const std::vector<uint64_t>& bucket_offs);

  // Queue depth of a node's server thread — the admission-control
  // congestion signal on the RPC side.
  size_t ServerQueueDepth(int node) {
    return fabric_->queue(node).ApproxSize();
  }

  // Remote access to ordered stores over SEND/RECV verbs (the paper's
  // stated mechanism for ordered tables, sections 3 and 6.5 — DrTM has
  // no RDMA-friendly B+ tree). The host executes the operation inside an
  // HTM transaction on its server thread; the result is a consistent
  // snapshot of that one operation.
  bool RemoteOrderedGet(int from_node, int target_node, int table,
                        uint64_t key, void* value_out);
  struct OrderedScanRow {
    uint64_t key;
    std::vector<uint8_t> value;
  };
  // Returns up to `limit` rows of [lo, hi]; false on node failure.
  bool RemoteOrderedScan(int from_node, int target_node, int table,
                         uint64_t lo, uint64_t hi, uint32_t limit,
                         std::vector<OrderedScanRow>* rows_out);

  // Registers a user RPC handler (kind must be >= kUserRpcBase). Handlers
  // run on the target node's server thread.
  void RegisterRpcHandler(uint32_t kind, RpcHandler handler);
  rdma::OpStatus Rpc(int from, int to, uint32_t kind,
                     std::vector<uint8_t> payload,
                     std::vector<uint8_t>* reply);

  // Fail-stop crash / restart (server thread included).
  void Crash(int node);
  void Revive(int node);

  uint64_t NextTxnId(int node, int worker);

 private:
  void ServerLoop(int node);
  std::vector<uint8_t> HandleKvInsert(int node, const rdma::Message& msg);
  std::vector<uint8_t> HandleKvRemove(int node, const rdma::Message& msg);
  std::vector<uint8_t> HandleKvUpsert(int node, const rdma::Message& msg);
  std::vector<uint8_t> HandleKvErase(int node, const rdma::Message& msg);
  std::vector<uint8_t> HandleCacheInval(int node, const rdma::Message& msg);
  std::vector<uint8_t> HandleOrderedGet(int node, const rdma::Message& msg);
  std::vector<uint8_t> HandleOrderedScan(int node, const rdma::Message& msg);

  ClusterConfig config_;
  std::unique_ptr<rdma::Fabric> fabric_;
  std::unique_ptr<SyncTime> synctime_;
  std::vector<TableSpec> tables_;
  std::vector<std::vector<std::unique_ptr<store::ClusterHashTable>>>
      hash_tables_;
  std::vector<std::vector<std::unique_ptr<store::BPlusTree>>> ordered_tables_;
  std::vector<std::vector<std::unique_ptr<store::LocationCache>>> caches_;
  std::vector<std::unique_ptr<NvramLog>> logs_;
  std::unordered_map<uint32_t, RpcHandler> handlers_;
  std::vector<std::thread> servers_;
  std::vector<std::unique_ptr<std::atomic<bool>>> server_running_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> txn_seq_;
  std::atomic<ElasticHooks*> elastic_hooks_{nullptr};
  // Two-parity window counters: attempts increment the counter of the
  // epoch they began under; a drain bumps the epoch and waits out the
  // old parity. Parity reuse is safe because a drain only returns once
  // its parity counter reached zero.
  std::atomic<uint64_t> window_epoch_{0};
  std::atomic<int64_t> windows_even_{0};
  std::atomic<int64_t> windows_odd_{0};
  bool started_ = false;
};

}  // namespace txn
}  // namespace drtm

#endif  // SRC_TXN_CLUSTER_H_
