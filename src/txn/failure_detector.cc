#include "src/txn/failure_detector.h"

#include <chrono>

#include "src/common/clock.h"

namespace drtm {
namespace txn {

FailureDetector::FailureDetector(Cluster* cluster, uint64_t poll_interval_us,
                                 uint64_t timeout_us, OnSuspect on_suspect)
    : cluster_(cluster),
      poll_interval_us_(poll_interval_us),
      timeout_us_(timeout_us),
      on_suspect_(std::move(on_suspect)),
      suspected_(static_cast<size_t>(cluster->num_nodes())),
      last_seen_(static_cast<size_t>(cluster->num_nodes()), 0),
      last_change_ns_(static_cast<size_t>(cluster->num_nodes()), 0) {
  for (auto& flag : suspected_) {
    flag.store(false, std::memory_order_relaxed);
  }
}

FailureDetector::~FailureDetector() { Stop(); }

void FailureDetector::Start() {
  if (running_.exchange(true)) {
    return;
  }
  const uint64_t now = MonotonicNanos();
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    last_seen_[static_cast<size_t>(n)] = cluster_->synctime().ReadStrong(n);
    last_change_ns_[static_cast<size_t>(n)] = now;
  }
  thread_ = std::thread([this] { Loop(); });
}

void FailureDetector::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  if (thread_.joinable()) {
    thread_.join();
  }
}

void FailureDetector::Loop() {
  while (running_.load(std::memory_order_acquire)) {
    const uint64_t now = MonotonicNanos();
    for (int n = 0; n < cluster_->num_nodes(); ++n) {
      const size_t i = static_cast<size_t>(n);
      // Out-of-band read (the "separate 10GbE network"): the region
      // memory is accessible even when the simulated NIC rejects verbs.
      const uint64_t heartbeat = cluster_->synctime().ReadStrong(n);
      if (heartbeat != last_seen_[i]) {
        last_seen_[i] = heartbeat;
        last_change_ns_[i] = now;
        if (suspected_[i].load(std::memory_order_acquire)) {
          suspected_[i].store(false, std::memory_order_release);  // revived
        }
        continue;
      }
      if (!suspected_[i].load(std::memory_order_acquire) &&
          now - last_change_ns_[i] > timeout_us_ * 1000) {
        suspected_[i].store(true, std::memory_order_release);
        if (on_suspect_) {
          on_suspect_(n);
        }
      }
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(poll_interval_us_));
  }
}

}  // namespace txn
}  // namespace drtm
