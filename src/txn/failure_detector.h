// Failure detection (the paper uses Zookeeper over a separate 10GbE
// network for heartbeats and recovery notification, section 4.6).
//
// Every live machine's timer publishes softtime into its region; a
// crashed (fail-stop) machine's word stops advancing. The detector polls
// the softtime words out-of-band — playing the separate-network role —
// and notifies a callback (typically: run RecoveryManager) when a node's
// heartbeat goes stale. Recovered/revived nodes are re-armed
// automatically once their heartbeat resumes.
#ifndef SRC_TXN_FAILURE_DETECTOR_H_
#define SRC_TXN_FAILURE_DETECTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "src/txn/cluster.h"

namespace drtm {
namespace txn {

class FailureDetector {
 public:
  using OnSuspect = std::function<void(int node)>;

  // timeout_us: how stale a heartbeat may be before the node is
  // suspected. Must comfortably exceed the softtime update interval.
  FailureDetector(Cluster* cluster, uint64_t poll_interval_us,
                  uint64_t timeout_us, OnSuspect on_suspect);
  ~FailureDetector();

  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  void Start();
  void Stop();

  bool IsSuspected(int node) const {
    return suspected_[static_cast<size_t>(node)].load(
        std::memory_order_acquire);
  }

 private:
  void Loop();

  Cluster* cluster_;
  uint64_t poll_interval_us_;
  uint64_t timeout_us_;
  OnSuspect on_suspect_;
  std::vector<std::atomic<bool>> suspected_;
  std::vector<uint64_t> last_seen_;
  std::vector<uint64_t> last_change_ns_;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace txn
}  // namespace drtm

#endif  // SRC_TXN_FAILURE_DETECTOR_H_
