// The 64-bit lock/lease state word guarding every record (paper Fig. 4):
//
//   bit 0      : write (exclusive) lock
//   bits 1..8  : owner machine id (kept for durability/recovery, §4.6)
//   bits 9..63 : read-lease end time, microseconds (shared lock)
//
// INIT (0) means unlocked and unleased. The word is manipulated only by
// RDMA CAS from remote machines (and, per §6.3, also for local records in
// the fallback handler and read-only transactions when the NIC provides
// only HCA-level atomicity); local transactional code merely reads it
// inside an HTM region, which is safe against RDMA CAS because RDMA
// memory is cache-coherent.
#ifndef SRC_TXN_LOCK_STATE_H_
#define SRC_TXN_LOCK_STATE_H_

#include <cstdint>

namespace drtm {
namespace txn {

inline constexpr uint64_t kStateInit = 0;
inline constexpr uint64_t kLeaseShift = 9;
inline constexpr uint64_t kOwnerMask = 0xff;

inline bool IsWriteLocked(uint64_t state) { return (state & 1) != 0; }

inline uint64_t MakeWriteLocked(uint8_t owner_machine) {
  return 1 | (static_cast<uint64_t>(owner_machine) << 1);
}

inline uint8_t LockOwner(uint64_t state) {
  return static_cast<uint8_t>((state >> 1) & kOwnerMask);
}

inline uint64_t MakeLease(uint64_t end_time_us) {
  return end_time_us << kLeaseShift;
}

inline uint64_t LeaseEnd(uint64_t state) { return state >> kLeaseShift; }

inline bool HasLease(uint64_t state) {
  return !IsWriteLocked(state) && LeaseEnd(state) != 0;
}

// EXPIRED / VALID from Fig. 4. DELTA absorbs the clock skew between
// machines; in between the two bounds the lease state is indeterminate
// and treated pessimistically by both sides.
inline bool LeaseExpired(uint64_t end_time_us, uint64_t now_us,
                         uint64_t delta_us) {
  return now_us > end_time_us + delta_us;
}

inline bool LeaseValid(uint64_t end_time_us, uint64_t now_us,
                       uint64_t delta_us) {
  return now_us + delta_us < end_time_us;
}

}  // namespace txn
}  // namespace drtm

#endif  // SRC_TXN_LOCK_STATE_H_
