#include "src/txn/nvram_log.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>
#include <set>

#include "src/chaos/injector.h"
#include "src/common/clock.h"
#include "src/htm/htm.h"
#include "src/stat/metrics.h"
#include "src/stat/timer.h"

namespace drtm {
namespace txn {

namespace {

struct RecordHeader {
  uint32_t len;  // payload length
  uint8_t type;
  uint8_t pad[3];
  uint64_t txn_id;
};
static_assert(sizeof(RecordHeader) == 16);

// Payload of a kEpoch framing record. Written open when the epoch's
// first record is staged; backpatched (magic flip, counts, checksum)
// by the seal. Recovery trusts an epoch only when the magic says
// sealed *and* the checksum over its data bytes matches — a crash
// between staging and seal leaves the open magic, so the whole tail
// epoch is invisible.
struct EpochInfo {
  uint32_t magic;
  uint32_t record_count;
  uint64_t data_bytes;
  uint64_t checksum;
  uint64_t reserved;
};
static_assert(sizeof(EpochInfo) == 32);

constexpr uint32_t kEpochOpen = 0x45504f50;    // "EPOP"
constexpr uint32_t kEpochSealed = 0x4550534c;  // "EPSL"
constexpr size_t kHeaderBytes = sizeof(RecordHeader);
constexpr size_t kEpochHeaderBytes = sizeof(RecordHeader) + sizeof(EpochInfo);
// Flush-device window, mirroring SendQueue's max-outstanding doorbells:
// at most this many sealed epochs may be in flight before a submit
// blocks on the oldest completion.
constexpr size_t kMaxInflightFlushes = 4;

uint64_t Align8(uint64_t len) { return (len + 7) & ~uint64_t{7}; }

uint64_t Fnv1a(const uint8_t* data, size_t len) {
  uint64_t hash = 1469598103934665603ull;
  for (size_t i = 0; i < len; ++i) {
    hash ^= data[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

struct LogMetricIds {
  uint32_t appends = 0;
  uint32_t bytes = 0;
  uint32_t full = 0;
  uint32_t append_ns = 0;
  uint32_t epoch_sealed = 0;
  uint32_t epoch_flushed = 0;
  uint32_t epoch_records = 0;
  uint32_t epoch_bytes = 0;
  uint32_t epoch_reclaimed = 0;
  uint32_t ack_ns = 0;
};

const LogMetricIds& LogIds() {
  static const LogMetricIds ids = [] {
    stat::Registry& reg = stat::Registry::Global();
    LogMetricIds l;
    l.appends = reg.CounterId("log.append.ops");
    l.bytes = reg.CounterId("log.append.bytes");
    l.full = reg.CounterId("log.segment_full");
    l.append_ns = reg.TimerId("phase.log_append_ns");
    l.epoch_sealed = reg.CounterId("log.epoch.sealed");
    l.epoch_flushed = reg.CounterId("log.epoch.flushed");
    l.epoch_records = reg.CounterId("log.epoch.records");
    l.epoch_bytes = reg.CounterId("log.epoch.bytes");
    l.epoch_reclaimed = reg.CounterId("log.epoch.reclaimed_bytes");
    l.ack_ns = reg.TimerId("txn.durability.ack_ns");
    return l;
  }();
  return ids;
}

}  // namespace

NvramLog::NvramLog(rdma::NodeMemory* memory, int workers, size_t segment_bytes,
                   const LogEpochConfig& epoch)
    : memory_(memory), segment_bytes_(segment_bytes), epoch_cfg_(epoch) {
  assert(segment_bytes_ >= 2 * kEpochHeaderBytes);
  segments_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    SegmentRef ref;
    ref.ctrl_off = memory_->Allocate(64, 64);
    ref.base_off = memory_->Allocate(segment_bytes, 64);
    segments_.push_back(ref);
    flush_.push_back(std::make_unique<FlushState>());
    // No epoch is open at boot.
    htm::StrongStore(Ctrl(ref, kEpochStartSlot), kNoEpoch);
  }
}

uint64_t* NvramLog::Ctrl(const SegmentRef& seg, size_t slot) const {
  return static_cast<uint64_t*>(memory_->At(seg.ctrl_off + slot * 8));
}

uint8_t* NvramLog::SegAt(const SegmentRef& seg, uint64_t lsn) const {
  return static_cast<uint8_t*>(
      memory_->At(seg.base_off + lsn % segment_bytes_));
}

AppendStatus NvramLog::TryAppend(int worker, LogType type, uint64_t txn_id,
                                 const void* payload, size_t len) {
  // If the enclosing (emulated) HTM region aborts out of Append via
  // longjmp the destructor is skipped and the sample is simply dropped,
  // which is the intended behaviour for an undone append.
  stat::ScopedTimer phase(LogIds().append_ns);
  const SegmentRef& seg = segments_[static_cast<size_t>(worker)];
  const bool in_htm = htm::HtmThread::Current() != nullptr;
  if (!in_htm) {
    Poll(worker);
    MaybeSealOnThreshold(worker);
  }
  const uint64_t need = kHeaderBytes + Align8(len);
  bool reclaimed = false;
  while (true) {
    const uint64_t head = htm::Load(Ctrl(seg, kHeadSlot));
    const uint64_t epoch_start = htm::Load(Ctrl(seg, kEpochStartSlot));
    // The truncation base only moves under this worker's own
    // ReclaimSpace (outside HTM), so it cannot change underneath us and
    // needs no HTM subscription.
    const uint64_t truncate = htm::StrongLoad(Ctrl(seg, kTruncateSlot));

    const bool open_epoch = (epoch_start == kNoEpoch);
    uint64_t pad_bytes = 0;
    uint64_t record_lsn = head;
    uint64_t total = need;
    const uint64_t phys_left = segment_bytes_ - head % segment_bytes_;
    if (open_epoch) {
      // A new epoch (header + first record) must be physically
      // contiguous; pad the ring tail if it cannot fit. An *exact* fit
      // pads too: it would leave the open epoch ending on the ring
      // boundary, and the next record would continue it at physical
      // offset 0 — breaking the contiguity the seal/replay checksums
      // (which read data_bytes linearly from data_start) rely on.
      if (phys_left <= kEpochHeaderBytes + need) {
        pad_bytes = phys_left;
      }
      record_lsn = head + pad_bytes + kEpochHeaderBytes;
      total = pad_bytes + kEpochHeaderBytes + need;
    } else if (phys_left <= need) {
      // The record would reach or cross the ring boundary mid-epoch.
      // Epochs are contiguous — and may never end *on* the boundary
      // while open (see above) — so the open one must seal first.
      // Impossible inside an HTM region (the seal takes the flush
      // mutex); the caller aborts and the retry path seals/reclaims
      // outside.
      if (in_htm) {
        stat::Registry::Global().Add(LogIds().full);
        return AppendStatus::kFull;
      }
      SealAndSubmit(worker);
      continue;
    }
    if (head + total - truncate > segment_bytes_) {
      if (!in_htm && !reclaimed) {
        reclaimed = true;
        if (ReclaimSpace(worker)) {
          continue;
        }
      }
      stat::Registry::Global().Add(LogIds().full);
      return AppendStatus::kFull;
    }

    // Stage every byte before publishing anything: inside HTM the
    // region's rollback makes the append all-or-nothing; outside, the
    // chaos check below models the power cut and nothing staged is
    // visible until the head moves.
    if (pad_bytes >= kHeaderBytes) {
      RecordHeader pad{};
      pad.len = static_cast<uint32_t>(pad_bytes - kHeaderBytes);
      pad.type = static_cast<uint8_t>(LogType::kPad);
      htm::WriteBytes(SegAt(seg, head), &pad, sizeof(pad));
    }
    uint64_t epoch_id = 0;
    if (open_epoch) {
      epoch_id = htm::Load(Ctrl(seg, kEpochSeqSlot));
      RecordHeader eh{};
      eh.len = sizeof(EpochInfo);
      eh.type = static_cast<uint8_t>(LogType::kEpoch);
      eh.txn_id = epoch_id;
      EpochInfo info{};
      info.magic = kEpochOpen;
      htm::WriteBytes(SegAt(seg, head + pad_bytes), &eh, sizeof(eh));
      htm::WriteBytes(SegAt(seg, head + pad_bytes + kHeaderBytes), &info,
                      sizeof(info));
    }
    RecordHeader header{};
    header.len = static_cast<uint32_t>(len);
    header.type = static_cast<uint8_t>(type);
    header.txn_id = txn_id;
    uint8_t* dst = SegAt(seg, record_lsn);
    htm::WriteBytes(dst, &header, sizeof(header));
    if (len > 0) {
      htm::WriteBytes(dst + sizeof(header), payload, len);
    }
    // Chaos crash point between the staged bytes and the publish: a
    // power cut here leaves a torn record below the head counter —
    // which must be invisible to replay (the head is the commit point
    // of an append). kAbandon simulates exactly that: bytes written,
    // head untouched, caller told the append failed.
    static const uint32_t kAppendPoint =
        chaos::Injector::Global().Point("log.append");
    const chaos::Decision fault =
        chaos::Check(kAppendPoint, memory_->node_id());
    if (fault.kind == chaos::Decision::Kind::kAbandon ||
        fault.kind == chaos::Decision::Kind::kFailOp) {
      // kFaulted, not kFull: the injected fault models the op failing,
      // so callers must not respond with a reclaim-and-retry.
      return AppendStatus::kFaulted;
    }
    if (fault.kind == chaos::Decision::Kind::kDelayNs) {
      SpinFor(fault.arg);
    }
    htm::Store(Ctrl(seg, kHeadSlot), head + total);
    if (open_epoch) {
      htm::Store(Ctrl(seg, kEpochStartSlot), head + pad_bytes);
      htm::Store(Ctrl(seg, kEpochRecordsSlot), uint64_t{1});
      htm::Store(Ctrl(seg, kEpochSeqSlot), epoch_id + 1);
    } else {
      htm::Store(Ctrl(seg, kEpochRecordsSlot),
                 htm::Load(Ctrl(seg, kEpochRecordsSlot)) + 1);
    }
    stat::Registry& reg = stat::Registry::Global();
    reg.Add(LogIds().appends);
    reg.Add(LogIds().bytes, need);
    if (!in_htm) {
      if (open_epoch) {
        flush_[static_cast<size_t>(worker)]->epoch_open_ns = MonotonicNanos();
      }
      if (!epoch_cfg_.group_commit) {
        // Synchronous baseline: every record is its own sealed epoch
        // (the degenerate 1-record epoch) and is submitted immediately.
        SealAndSubmit(worker);
      } else {
        MaybeSealOnThreshold(worker);
      }
    }
    return AppendStatus::kOk;
  }
}

void NvramLog::MaybeSealOnThreshold(int worker) {
  const SegmentRef& seg = segments_[static_cast<size_t>(worker)];
  const uint64_t epoch_start = htm::StrongLoad(Ctrl(seg, kEpochStartSlot));
  if (epoch_start == kNoEpoch) {
    return;
  }
  const uint64_t head = htm::StrongLoad(Ctrl(seg, kHeadSlot));
  const uint64_t data_bytes = head - (epoch_start + kEpochHeaderBytes);
  FlushState& state = *flush_[static_cast<size_t>(worker)];
  if (data_bytes >= epoch_cfg_.epoch_bytes) {
    SealAndSubmit(worker);
    return;
  }
  if (epoch_cfg_.epoch_us > 0) {
    // The epoch may have been opened inside an HTM region (where host
    // state is off limits); stamp it at first outside-HTM sighting.
    if (state.epoch_open_ns == 0) {
      state.epoch_open_ns = MonotonicNanos();
    } else if (MonotonicNanos() - state.epoch_open_ns >
               epoch_cfg_.epoch_us * 1000) {
      SealAndSubmit(worker);
    }
  }
}

uint64_t NvramLog::SealAndSubmit(int worker) {
  const SegmentRef& seg = segments_[static_cast<size_t>(worker)];
  FlushState& state = *flush_[static_cast<size_t>(worker)];
  const uint64_t epoch_start = htm::StrongLoad(Ctrl(seg, kEpochStartSlot));
  if (epoch_start == kNoEpoch) {
    return htm::StrongLoad(Ctrl(seg, kSealedSlot));
  }
  const uint64_t head = htm::StrongLoad(Ctrl(seg, kHeadSlot));
  // Chaos: the seal itself is the epoch boundary. A kCrashPoint here is
  // the crash-between-records-and-seal window — the node dies with the
  // tail epoch open, and recovery must treat it as invisible.
  static const uint32_t kSealPoint =
      chaos::Injector::Global().Point("log.epoch.seal");
  const chaos::Decision seal_fault =
      chaos::Check(kSealPoint, memory_->node_id());
  if (seal_fault.kind == chaos::Decision::Kind::kAbandon ||
      seal_fault.kind == chaos::Decision::Kind::kFailOp) {
    return htm::StrongLoad(Ctrl(seg, kSealedSlot));
  }
  if (seal_fault.kind == chaos::Decision::Kind::kDelayNs) {
    SpinFor(seal_fault.arg);
  }
  const uint64_t records = htm::StrongLoad(Ctrl(seg, kEpochRecordsSlot));
  const uint64_t data_start = epoch_start + kEpochHeaderBytes;
  const uint64_t data_bytes = head - data_start;
  std::lock_guard<std::mutex> lock(state.mu);
  EpochInfo info{};
  info.magic = kEpochSealed;
  info.record_count = static_cast<uint32_t>(records);
  info.data_bytes = data_bytes;
  // The epoch is physically contiguous and only this worker writes its
  // segment, so the checksum can read the raw bytes.
  info.checksum = Fnv1a(SegAt(seg, data_start), data_bytes);
  htm::StrongWrite(SegAt(seg, epoch_start) + kHeaderBytes, &info,
                   sizeof(info));
  // Publishing the sealed frontier is the epoch's commit point: a crash
  // before this store leaves the open magic in place and the epoch
  // invisible.
  htm::StrongStore(Ctrl(seg, kSealedSlot), head);
  htm::StrongStore(Ctrl(seg, kEpochStartSlot), kNoEpoch);
  htm::StrongStore(Ctrl(seg, kEpochRecordsSlot), uint64_t{0});
  state.epoch_open_ns = 0;
  stat::Registry& reg = stat::Registry::Global();
  reg.Add(LogIds().epoch_sealed);
  reg.Add(LogIds().epoch_records, records);
  reg.Add(LogIds().epoch_bytes, data_bytes);
  SubmitFlush(worker, head, head - epoch_start);
  PollLocked(worker, state);
  return head;
}

void NvramLog::SubmitFlush(int worker, uint64_t end_lsn, size_t bytes) {
  // Called with state.mu held. The submission is the doorbell of the
  // durability pipeline: one modeled flush per sealed epoch, executed
  // by a serial per-worker device.
  FlushState& state = *flush_[static_cast<size_t>(worker)];
  static const uint32_t kFlushPoint =
      chaos::Injector::Global().Point("log.epoch.flush");
  const chaos::Decision fault =
      chaos::Check(kFlushPoint, memory_->node_id());
  if (fault.kind == chaos::Decision::Kind::kAbandon ||
      fault.kind == chaos::Decision::Kind::kFailOp) {
    // Lost doorbell. Durability stalls but nothing breaks: end LSNs are
    // cumulative, so the next submission flushes this epoch too.
    return;
  }
  if (state.inflight.size() >= kMaxInflightFlushes) {
    // Window full: block on the oldest in-flight flush, like a full
    // SendQueue blocks on its oldest completion.
    const uint64_t ready = state.inflight.front().ready_ns;
    const uint64_t now = MonotonicNanos();
    if (ready > now) {
      SpinFor(ready - now);
    }
    PollLocked(worker, state);
  }
  uint64_t cost = epoch_cfg_.latency.FlushNs(bytes);
  if (fault.kind == chaos::Decision::Kind::kDelayNs) {
    cost += fault.arg;
  }
  const uint64_t start = std::max(MonotonicNanos(), state.device_free_ns);
  state.device_free_ns = start + cost;
  state.inflight.push_back(Flush{end_lsn, start + cost});
}

void NvramLog::PollLocked(int worker, FlushState& state) {
  (void)worker;
  const uint64_t now = MonotonicNanos();
  while (!state.inflight.empty() && state.inflight.front().ready_ns <= now) {
    const Flush done = state.inflight.front();
    state.inflight.pop_front();
    if (done.end_lsn >
        state.durable_lsn.load(std::memory_order_relaxed)) {
      state.durable_lsn.store(done.end_lsn, std::memory_order_release);
    }
    stat::Registry::Global().Add(LogIds().epoch_flushed);
    // Acks are registered in LSN order (one owner thread), so the
    // durable prefix sits at the front.
    while (!state.acks.empty() && state.acks.front().lsn <= done.end_lsn) {
      const PendingAck ack = state.acks.front();
      state.acks.pop_front();
      stat::Registry::Global().Record(
          LogIds().ack_ns,
          done.ready_ns > ack.commit_ns ? done.ready_ns - ack.commit_ns : 0);
    }
  }
}

void NvramLog::Poll(int worker) {
  FlushState& state = *flush_[static_cast<size_t>(worker)];
  std::lock_guard<std::mutex> lock(state.mu);
  PollLocked(worker, state);
}

void NvramLog::DrainFlushes(int worker) {
  // Seal whatever is open, then wait out the device up to the sealed
  // frontier. WaitFlushed re-submits if a chaos-dropped doorbell (or a
  // chaos-skipped seal) left the frontier short, so this converges to
  // durable == head as long as the injector eventually lets one through.
  WaitFlushed(worker, SealAndSubmit(worker));
}

void NvramLog::Externalize(int worker) {
  SealAndSubmit(worker);
}

uint64_t NvramLog::NoteCommit(int worker, uint64_t txn_id) {
  const SegmentRef& seg = segments_[static_cast<size_t>(worker)];
  FlushState& state = *flush_[static_cast<size_t>(worker)];
  const uint64_t lsn = htm::StrongLoad(Ctrl(seg, kHeadSlot));
  const uint64_t commit_ns = MonotonicNanos();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    PollLocked(worker, state);
    if (state.durable_lsn.load(std::memory_order_relaxed) >= lsn) {
      stat::Registry::Global().Record(LogIds().ack_ns, 0);
      return lsn;
    }
    state.acks.push_back(PendingAck{txn_id, lsn, commit_ns});
  }
  if (!epoch_cfg_.group_commit) {
    // Synchronous durability: commit is acknowledged only at flush, and
    // the flush is waited out right here on the commit path.
    SealAndSubmit(worker);
    WaitFlushed(worker, lsn);
  } else {
    MaybeSealOnThreshold(worker);
  }
  return lsn;
}

void NvramLog::WaitDurable(int worker, uint64_t txn_id) {
  FlushState& state = *flush_[static_cast<size_t>(worker)];
  uint64_t lsn = 0;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    PollLocked(worker, state);
    bool found = false;
    for (const PendingAck& ack : state.acks) {
      if (ack.txn_id == txn_id) {
        lsn = ack.lsn;
        found = true;
        break;
      }
    }
    if (!found) {
      return;  // never registered, or its epoch already flushed
    }
  }
  const SegmentRef& seg = segments_[static_cast<size_t>(worker)];
  if (htm::StrongLoad(Ctrl(seg, kSealedSlot)) < lsn) {
    SealAndSubmit(worker);
  }
  WaitFlushed(worker, lsn);
}

void NvramLog::WaitFlushed(int worker, uint64_t lsn) {
  FlushState& state = *flush_[static_cast<size_t>(worker)];
  while (true) {
    uint64_t spin_until = 0;
    {
      std::lock_guard<std::mutex> lock(state.mu);
      PollLocked(worker, state);
      if (state.durable_lsn.load(std::memory_order_relaxed) >= lsn) {
        return;
      }
      for (const Flush& f : state.inflight) {
        if (f.end_lsn >= lsn) {
          spin_until = f.ready_ns;
          break;
        }
      }
      if (spin_until == 0) {
        // No in-flight flush covers lsn (a chaos-dropped doorbell, or
        // the epoch is still open): submit whatever is sealed but
        // unflushed, then re-check.
        const SegmentRef& seg = segments_[static_cast<size_t>(worker)];
        const uint64_t sealed = htm::StrongLoad(Ctrl(seg, kSealedSlot));
        if (sealed >= lsn) {
          SubmitFlush(worker, sealed, kEpochHeaderBytes);
          continue;
        }
      }
    }
    if (spin_until == 0) {
      // Sealed frontier below lsn: the owner must seal first. This only
      // happens on WaitDurable misuse; seal and retry.
      SealAndSubmit(worker);
      continue;
    }
    const uint64_t now = MonotonicNanos();
    if (spin_until > now) {
      SpinFor(spin_until - now);
    }
  }
}

uint64_t NvramLog::DurableUpTo(int worker) const {
  return flush_[static_cast<size_t>(worker)]->durable_lsn.load(
      std::memory_order_acquire);
}

void NvramLog::ForEach(
    const std::function<void(int worker, const LogRecord&)>& fn) const {
  // Chaos crash point per replayed record: a recovery scan interrupted
  // here models the recovering machine itself dying mid-replay. Replay
  // must be idempotent, so a later full scan finishes the job (asserted
  // by tests/recovery_fault_test.cc).
  static const uint32_t kReplayPoint =
      chaos::Injector::Global().Point("log.replay");
  for (size_t w = 0; w < segments_.size(); ++w) {
    const SegmentRef& seg = segments_[w];
    FlushState& state = *flush_[w];
    // Serialize against seal backpatches and truncation; record bytes
    // themselves are stable below the sealed frontier.
    std::lock_guard<std::mutex> lock(state.mu);
    uint64_t pos = htm::StrongLoad(Ctrl(seg, kTruncateSlot));
    const uint64_t sealed = htm::StrongLoad(Ctrl(seg, kSealedSlot));
    while (pos < sealed) {
      const uint64_t phys_left = segment_bytes_ - pos % segment_bytes_;
      if (phys_left < kHeaderBytes) {
        pos += phys_left;  // implicit ring-tail skip (gap < header)
        continue;
      }
      RecordHeader header;
      htm::StrongRead(&header, SegAt(seg, pos), sizeof(header));
      if (header.type == static_cast<uint8_t>(LogType::kPad)) {
        pos += kHeaderBytes + Align8(header.len);
        continue;
      }
      if (header.type != static_cast<uint8_t>(LogType::kEpoch)) {
        break;  // corrupt framing: stop at the torn tail
      }
      EpochInfo info;
      htm::StrongRead(&info, SegAt(seg, pos) + kHeaderBytes, sizeof(info));
      const uint64_t data_start = pos + kEpochHeaderBytes;
      if (info.magic != kEpochSealed ||
          data_start + info.data_bytes > sealed ||
          Fnv1a(SegAt(seg, data_start), info.data_bytes) != info.checksum) {
        break;  // unsealed or torn epoch: invisible, scan ends here
      }
      uint64_t dpos = data_start;
      const uint64_t dend = data_start + info.data_bytes;
      while (dpos + kHeaderBytes <= dend) {
        const chaos::Decision fault =
            chaos::Check(kReplayPoint, memory_->node_id());
        if (fault.kind == chaos::Decision::Kind::kAbandon ||
            fault.kind == chaos::Decision::Kind::kFailOp) {
          return;
        }
        RecordHeader rec;
        htm::StrongRead(&rec, SegAt(seg, dpos), sizeof(rec));
        LogRecord record;
        record.type = static_cast<LogType>(rec.type);
        record.txn_id = rec.txn_id;
        record.payload.resize(rec.len);
        if (rec.len > 0) {
          htm::StrongRead(record.payload.data(),
                          SegAt(seg, dpos) + kHeaderBytes, rec.len);
        }
        fn(static_cast<int>(w), record);
        dpos += kHeaderBytes + Align8(rec.len);
      }
      pos = dend;
    }
  }
}

size_t NvramLog::UsedBytes(int worker) const {
  const SegmentRef& seg = segments_[static_cast<size_t>(worker)];
  return htm::StrongLoad(Ctrl(seg, kHeadSlot)) -
         htm::StrongLoad(Ctrl(seg, kTruncateSlot));
}

bool NvramLog::ReclaimSpace(int worker) {
  const SegmentRef& seg = segments_[static_cast<size_t>(worker)];
  FlushState& state = *flush_[static_cast<size_t>(worker)];
  std::lock_guard<std::mutex> lock(state.mu);
  PollLocked(worker, state);
  const uint64_t sealed = htm::StrongLoad(Ctrl(seg, kSealedSlot));
  const uint64_t durable = state.durable_lsn.load(std::memory_order_relaxed);
  // Truncation is keyed off the durability frontier: a record may only
  // be dropped once the flush covering it — and the kComplete that
  // obsoletes it — has completed.
  const uint64_t limit = std::min(sealed, durable);
  const uint64_t base = htm::StrongLoad(Ctrl(seg, kTruncateSlot));
  if (base >= limit) {
    return false;
  }

  // Pass 1: which transactions in [base, limit) are finished? kComplete
  // closes a plain transaction; a {total, total} kChopInfo closes a
  // chopped chain (chains never write kComplete).
  std::set<uint64_t> done;
  std::map<uint64_t, std::pair<uint32_t, uint32_t>> chains;  // id -> max,total
  auto walk = [&](uint64_t from,
                  const std::function<bool(uint64_t epoch_end,
                                           uint64_t records_start)>& on_epoch) {
    uint64_t pos = from;
    while (pos < limit) {
      const uint64_t phys_left = segment_bytes_ - pos % segment_bytes_;
      if (phys_left < kHeaderBytes) {
        pos += phys_left;
        continue;
      }
      RecordHeader header;
      std::memcpy(&header, SegAt(seg, pos), sizeof(header));
      if (header.type == static_cast<uint8_t>(LogType::kPad)) {
        pos += kHeaderBytes + Align8(header.len);
        continue;
      }
      if (header.type != static_cast<uint8_t>(LogType::kEpoch)) {
        break;
      }
      EpochInfo info;
      std::memcpy(&info, SegAt(seg, pos) + kHeaderBytes, sizeof(info));
      const uint64_t dend = pos + kEpochHeaderBytes + info.data_bytes;
      if (info.magic != kEpochSealed || dend > limit) {
        break;
      }
      if (!on_epoch(dend, pos + kEpochHeaderBytes)) {
        break;
      }
      pos = dend;
    }
    return pos;
  };
  auto each_record = [&](uint64_t from, uint64_t to,
                         const std::function<void(const RecordHeader&)>& fn) {
    uint64_t dpos = from;
    while (dpos + kHeaderBytes <= to) {
      RecordHeader rec;
      std::memcpy(&rec, SegAt(seg, dpos), sizeof(rec));
      fn(rec);
      dpos += kHeaderBytes + Align8(rec.len);
    }
  };
  walk(base, [&](uint64_t dend, uint64_t dstart) {
    uint64_t dpos = dstart;
    while (dpos + kHeaderBytes <= dend) {
      RecordHeader rec;
      std::memcpy(&rec, SegAt(seg, dpos), sizeof(rec));
      if (rec.type == static_cast<uint8_t>(LogType::kComplete)) {
        done.insert(rec.txn_id);
      } else if (rec.type == static_cast<uint8_t>(LogType::kChopInfo) &&
                 rec.len >= 2 * sizeof(uint32_t)) {
        uint32_t piece = 0;
        uint32_t total = 0;
        std::memcpy(&piece, SegAt(seg, dpos) + kHeaderBytes, sizeof(piece));
        std::memcpy(&total, SegAt(seg, dpos) + kHeaderBytes + sizeof(piece),
                    sizeof(total));
        auto& entry = chains[rec.txn_id];
        entry.first = std::max(entry.first, piece);
        entry.second = total;
      }
      dpos += kHeaderBytes + Align8(rec.len);
    }
    return true;
  });
  for (const auto& [id, mt] : chains) {
    if (mt.second != 0 && mt.first >= mt.second) {
      done.insert(id);
    }
  }

  // Pass 2: drop the longest leading run of epochs whose every
  // obligation-carrying record belongs to a finished transaction.
  uint64_t new_base = walk(base, [&](uint64_t dend, uint64_t dstart) {
    bool reclaimable = true;
    each_record(dstart, dend, [&](const RecordHeader& rec) {
      switch (static_cast<LogType>(rec.type)) {
        case LogType::kLockAhead:
        case LogType::kWriteAhead:
        case LogType::kChopInfo:
          if (done.find(rec.txn_id) == done.end()) {
            reclaimable = false;
          }
          break;
        default:
          break;  // kComplete / framing never block reclamation
      }
    });
    return reclaimable;
  });
  if (new_base <= base) {
    return false;
  }
  htm::StrongStore(Ctrl(seg, kTruncateSlot), new_base);
  stat::Registry::Global().Add(LogIds().epoch_reclaimed, new_base - base);
  return true;
}

std::vector<uint8_t> NvramLog::EncodeLocks(const std::vector<LogLock>& locks) {
  std::vector<uint8_t> out(locks.size() * sizeof(LogLock));
  std::memcpy(out.data(), locks.data(), out.size());
  return out;
}

std::vector<LogLock> NvramLog::DecodeLocks(
    const std::vector<uint8_t>& payload) {
  std::vector<LogLock> locks(payload.size() / sizeof(LogLock));
  std::memcpy(locks.data(), payload.data(), locks.size() * sizeof(LogLock));
  return locks;
}

void NvramLog::EncodeUpdate(std::vector<uint8_t>* out, const LogUpdate& update,
                            const void* value) {
  const size_t base = out->size();
  out->resize(base + sizeof(LogUpdate) + update.value_len);
  std::memcpy(out->data() + base, &update, sizeof(LogUpdate));
  std::memcpy(out->data() + base + sizeof(LogUpdate), value,
              update.value_len);
}

void NvramLog::DecodeUpdates(
    const std::vector<uint8_t>& payload,
    const std::function<void(const LogUpdate&, const uint8_t* value)>& fn) {
  size_t pos = 0;
  while (pos + sizeof(LogUpdate) <= payload.size()) {
    LogUpdate update;
    std::memcpy(&update, payload.data() + pos, sizeof(LogUpdate));
    const uint8_t* value = payload.data() + pos + sizeof(LogUpdate);
    fn(update, value);
    pos += sizeof(LogUpdate) + update.value_len;
  }
}

}  // namespace txn
}  // namespace drtm
