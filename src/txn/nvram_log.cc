#include "src/txn/nvram_log.h"

#include <cassert>
#include <cstring>

#include "src/chaos/injector.h"
#include "src/htm/htm.h"
#include "src/stat/metrics.h"
#include "src/stat/timer.h"

namespace drtm {
namespace txn {

namespace {

struct RecordHeader {
  uint32_t len;  // payload length
  uint8_t type;
  uint8_t pad[3];
  uint64_t txn_id;
};
static_assert(sizeof(RecordHeader) == 16);

struct LogMetricIds {
  uint32_t appends = 0;
  uint32_t bytes = 0;
  uint32_t full = 0;
  uint32_t append_ns = 0;
};

const LogMetricIds& LogIds() {
  static const LogMetricIds ids = [] {
    stat::Registry& reg = stat::Registry::Global();
    LogMetricIds l;
    l.appends = reg.CounterId("log.append.ops");
    l.bytes = reg.CounterId("log.append.bytes");
    l.full = reg.CounterId("log.segment_full");
    l.append_ns = reg.TimerId("phase.log_append_ns");
    return l;
  }();
  return ids;
}

}  // namespace

NvramLog::NvramLog(rdma::NodeMemory* memory, int workers,
                   size_t segment_bytes)
    : memory_(memory), segment_bytes_(segment_bytes) {
  segments_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    SegmentRef ref;
    ref.head_off = memory_->Allocate(64, 64);
    ref.base_off = memory_->Allocate(segment_bytes, 64);
    segments_.push_back(ref);
  }
}

bool NvramLog::Append(int worker, LogType type, uint64_t txn_id,
                      const void* payload, size_t len) {
  // If the enclosing (emulated) HTM region aborts out of Append via
  // longjmp the destructor is skipped and the sample is simply dropped,
  // which is the intended behaviour for an undone append.
  stat::ScopedTimer phase(LogIds().append_ns);
  const SegmentRef& seg = segments_[static_cast<size_t>(worker)];
  uint64_t* head =
      static_cast<uint64_t*>(memory_->At(seg.head_off));
  const uint64_t used = htm::Load(head);
  const uint64_t need = sizeof(RecordHeader) + ((len + 7) & ~size_t{7});
  if (used + need > segment_bytes_) {
    stat::Registry::Global().Add(LogIds().full);
    return false;
  }
  RecordHeader header{};
  header.len = static_cast<uint32_t>(len);
  header.type = static_cast<uint8_t>(type);
  header.txn_id = txn_id;
  uint8_t* dst = static_cast<uint8_t*>(memory_->At(seg.base_off + used));
  htm::WriteBytes(dst, &header, sizeof(header));
  if (len > 0) {
    htm::WriteBytes(dst + sizeof(header), payload, len);
  }
  // Chaos crash point between the payload write and the head publish: a
  // power cut here leaves a torn record below the head counter — which
  // must be invisible to replay (the head is the commit point of an
  // append). kAbandon simulates exactly that: payload written, head
  // untouched, caller told the append failed.
  static const uint32_t kAppendPoint =
      chaos::Injector::Global().Point("log.append");
  const chaos::Decision fault =
      chaos::Check(kAppendPoint, memory_->node_id());
  if (fault.kind == chaos::Decision::Kind::kAbandon ||
      fault.kind == chaos::Decision::Kind::kFailOp) {
    return false;
  }
  htm::Store(head, used + need);
  stat::Registry& reg = stat::Registry::Global();
  reg.Add(LogIds().appends);
  reg.Add(LogIds().bytes, need);
  return true;
}

void NvramLog::ForEach(
    const std::function<void(int worker, const LogRecord&)>& fn) const {
  // Chaos crash point per replayed record: a recovery scan interrupted
  // here models the recovering machine itself dying mid-replay. Replay
  // must be idempotent, so a later full scan finishes the job (asserted
  // by tests/recovery_fault_test.cc).
  static const uint32_t kReplayPoint =
      chaos::Injector::Global().Point("log.replay");
  for (size_t w = 0; w < segments_.size(); ++w) {
    const SegmentRef& seg = segments_[w];
    const uint64_t used = htm::StrongLoad(
        static_cast<const uint64_t*>(memory_->At(seg.head_off)));
    uint64_t pos = 0;
    while (pos + sizeof(RecordHeader) <= used) {
      const chaos::Decision fault =
          chaos::Check(kReplayPoint, memory_->node_id());
      if (fault.kind == chaos::Decision::Kind::kAbandon ||
          fault.kind == chaos::Decision::Kind::kFailOp) {
        return;
      }
      RecordHeader header;
      htm::StrongRead(&header, memory_->At(seg.base_off + pos),
                      sizeof(header));
      LogRecord record;
      record.type = static_cast<LogType>(header.type);
      record.txn_id = header.txn_id;
      record.payload.resize(header.len);
      if (header.len > 0) {
        htm::StrongRead(record.payload.data(),
                        memory_->At(seg.base_off + pos + sizeof(header)),
                        header.len);
      }
      fn(static_cast<int>(w), record);
      pos += sizeof(RecordHeader) + ((header.len + 7) & ~uint64_t{7});
    }
  }
}

size_t NvramLog::UsedBytes(int worker) const {
  const SegmentRef& seg = segments_[static_cast<size_t>(worker)];
  return htm::StrongLoad(
      static_cast<const uint64_t*>(memory_->At(seg.head_off)));
}

std::vector<uint8_t> NvramLog::EncodeLocks(const std::vector<LogLock>& locks) {
  std::vector<uint8_t> out(locks.size() * sizeof(LogLock));
  std::memcpy(out.data(), locks.data(), out.size());
  return out;
}

std::vector<LogLock> NvramLog::DecodeLocks(
    const std::vector<uint8_t>& payload) {
  std::vector<LogLock> locks(payload.size() / sizeof(LogLock));
  std::memcpy(locks.data(), payload.data(), locks.size() * sizeof(LogLock));
  return locks;
}

void NvramLog::EncodeUpdate(std::vector<uint8_t>* out, const LogUpdate& update,
                            const void* value) {
  const size_t base = out->size();
  out->resize(base + sizeof(LogUpdate) + update.value_len);
  std::memcpy(out->data() + base, &update, sizeof(LogUpdate));
  std::memcpy(out->data() + base + sizeof(LogUpdate), value,
              update.value_len);
}

void NvramLog::DecodeUpdates(
    const std::vector<uint8_t>& payload,
    const std::function<void(const LogUpdate&, const uint8_t* value)>& fn) {
  size_t pos = 0;
  while (pos + sizeof(LogUpdate) <= payload.size()) {
    LogUpdate update;
    std::memcpy(&update, payload.data() + pos, sizeof(LogUpdate));
    const uint8_t* value = payload.data() + pos + sizeof(LogUpdate);
    fn(update, value);
    pos += sizeof(LogUpdate) + update.value_len;
  }
}

}  // namespace txn
}  // namespace drtm
