// Durability logging to emulated NVRAM (paper section 4.6).
//
// The paper's failure model is whole-system persistence: UPS-backed
// machines flush registers/caches to NVDIMM on power failure, so DRAM
// content is effectively durable and no explicit flush ordering is
// needed. Our emulation therefore keeps log bytes in ordinary memory;
// a simulated crash loses nothing that was written.
//
// The crucial trick the paper relies on is reproduced exactly: the
// write-ahead log is appended *inside* the HTM region (through htm::Store),
// so HTM's all-or-nothing property guarantees the WAL record exists iff
// the enclosing HTM transaction committed. Lock-ahead and chop-info
// records are appended before the HTM region with strong writes.
//
// Each worker thread owns a private log segment to keep log appends out
// of other transactions' conflict sets.
#ifndef SRC_TXN_NVRAM_LOG_H_
#define SRC_TXN_NVRAM_LOG_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/rdma/node_memory.h"

namespace drtm {
namespace txn {

enum class LogType : uint8_t {
  kChopInfo = 1,   // remaining pieces of a chopped parent transaction
  kLockAhead = 2,  // remote records this txn will exclusively lock
  kWriteAhead = 3, // all updates (local + remote), logged inside HTM
  kComplete = 4,   // write-back finished; earlier records are obsolete
};

struct LogUpdate {
  int32_t node;
  int32_t table;
  uint64_t key;
  uint64_t entry_off;
  uint32_t version;
  uint32_t value_len;
  // value bytes follow in the serialized record
};

struct LogLock {
  int32_t node;
  int32_t table;
  uint64_t key;
  uint64_t state_off;
};

// A parsed record, as seen by recovery.
struct LogRecord {
  LogType type;
  uint64_t txn_id;
  std::vector<uint8_t> payload;
};

class NvramLog {
 public:
  // One segment per worker thread of the node.
  NvramLog(rdma::NodeMemory* memory, int workers, size_t segment_bytes);

  NvramLog(const NvramLog&) = delete;
  NvramLog& operator=(const NvramLog&) = delete;

  // Appends a record to the worker's segment. When called inside an HTM
  // transaction the append is transactional (WAL records use this).
  // Returns false if the segment is full.
  bool Append(int worker, LogType type, uint64_t txn_id, const void* payload,
              size_t len);

  // Iterates every record of every segment in append order per segment.
  void ForEach(const std::function<void(int worker, const LogRecord&)>& fn)
      const;

  // Bytes used in a worker's segment.
  size_t UsedBytes(int worker) const;

  // --- payload builders / parsers -------------------------------------------
  static std::vector<uint8_t> EncodeLocks(const std::vector<LogLock>& locks);
  static std::vector<LogLock> DecodeLocks(const std::vector<uint8_t>& payload);
  static void EncodeUpdate(std::vector<uint8_t>* out, const LogUpdate& update,
                           const void* value);
  // Walks all updates serialized in payload.
  static void DecodeUpdates(
      const std::vector<uint8_t>& payload,
      const std::function<void(const LogUpdate&, const uint8_t* value)>& fn);

 private:
  struct SegmentRef {
    uint64_t base_off;   // region offset of the segment
    uint64_t head_off;   // region offset of the 8-byte head counter
  };

  rdma::NodeMemory* memory_;
  size_t segment_bytes_;
  std::vector<SegmentRef> segments_;
};

}  // namespace txn
}  // namespace drtm

#endif  // SRC_TXN_NVRAM_LOG_H_
