// Durability logging to emulated NVRAM (paper section 4.6), with an
// epoch-batched group-commit pipeline (ROADMAP item 3 / arXiv 1806.01108).
//
// The paper's failure model is whole-system persistence: UPS-backed
// machines flush registers/caches to NVDIMM on power failure, so DRAM
// content is effectively durable and no explicit flush ordering is
// needed. Our emulation therefore keeps log bytes in ordinary memory;
// a simulated crash loses nothing that was written.
//
// The crucial trick the paper relies on is reproduced exactly: the
// write-ahead log is appended *inside* the HTM region (through htm::Store),
// so HTM's all-or-nothing property guarantees the WAL record exists iff
// the enclosing HTM transaction committed. Lock-ahead and chop-info
// records are appended before the HTM region with strong writes.
//
// Group commit separates the HTM commit point from the durability point:
// records are staged into a per-worker *open epoch* (a kEpoch framing
// record whose header is backpatched at seal time with record count,
// data length and checksum), epochs seal on byte/time thresholds or at
// externalization barriers, and each sealed epoch is submitted to a
// per-worker flush device asynchronously — doorbell-style, the same
// one-submission-per-batch amortization shape as rdma::SendQueue. A
// transaction is durably *acknowledged* only once the flush covering
// its records completes (DurableUpTo / WaitDurable). Recovery never
// looks past the sealed frontier, and validates each epoch's checksum,
// so a torn tail epoch (crash between staging and seal) is invisible —
// the torn epoch is the new torn record.
//
// Each worker thread owns a private log segment to keep log appends out
// of other transactions' conflict sets. Segments are rings addressed by
// monotone LSNs (physical = lsn % segment_bytes); space is reclaimed by
// dropping leading epochs whose every transaction has a durable
// kComplete record (ReclaimSpace).
#ifndef SRC_TXN_NVRAM_LOG_H_
#define SRC_TXN_NVRAM_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/rdma/latency.h"
#include "src/rdma/node_memory.h"

namespace drtm {
namespace txn {

enum class LogType : uint8_t {
  kChopInfo = 1,   // remaining pieces of a chopped parent transaction
  kLockAhead = 2,  // remote records this txn will exclusively lock
  kWriteAhead = 3, // all updates (local + remote), logged inside HTM
  kComplete = 4,   // write-back finished; earlier records are obsolete
  // Framing records, never surfaced through ForEach:
  kEpoch = 5,      // epoch header; txn_id is the epoch id, payload is
                   // an EpochInfo backpatched at seal time
  kPad = 6,        // ring-wrap filler between epochs
};

struct LogUpdate {
  int32_t node;
  int32_t table;
  uint64_t key;
  uint64_t entry_off;
  uint32_t version;
  uint32_t value_len;
  // value bytes follow in the serialized record
};

struct LogLock {
  int32_t node;
  int32_t table;
  uint64_t key;
  uint64_t state_off;
};

// A parsed record, as seen by recovery.
struct LogRecord {
  LogType type;
  uint64_t txn_id;
  std::vector<uint8_t> payload;
};

// Outcome of a log append attempt. The two failure kinds demand
// different reactions: a full segment is healed by sealing/reclaiming
// and retrying, while a chaos-injected fault models the op itself
// failing (power cut, lost write) — reclaiming cannot heal it and the
// caller must take its failure path.
enum class AppendStatus : uint8_t {
  kOk = 0,
  kFull,
  kFaulted,
};

// Group-commit knobs, mirrored from ClusterConfig by the cluster.
struct LogEpochConfig {
  // false = synchronous baseline: every record seals its own epoch and
  // the commit acknowledgement (NoteCommit) waits out its flush — the
  // degenerate 1-record epoch ISSUE 9 sweeps against.
  bool group_commit = false;
  // Seal the open epoch once it holds this many data bytes...
  size_t epoch_bytes = size_t{64} << 10;
  // ...or once it has been open this long (checked at outside-HTM log
  // touches; 0 disables the timer).
  uint64_t epoch_us = 200;
  // Source of the modeled flush cost (FlushNs).
  rdma::LatencyModel latency{};
};

class NvramLog {
 public:
  // One segment per worker thread of the node.
  NvramLog(rdma::NodeMemory* memory, int workers, size_t segment_bytes,
           const LogEpochConfig& epoch = LogEpochConfig{});

  NvramLog(const NvramLog&) = delete;
  NvramLog& operator=(const NvramLog&) = delete;

  // Appends a record to the worker's segment. When called inside an HTM
  // transaction the append is transactional (WAL records use this) and
  // the epoch bookkeeping rolls back with the region. Returns kFull if
  // the segment is full (callers outside HTM should ReclaimSpace and
  // retry; inside HTM, abort and reclaim outside) and kFaulted when
  // chaos injection failed the append itself.
  AppendStatus TryAppend(int worker, LogType type, uint64_t txn_id,
                         const void* payload, size_t len);

  // Convenience wrapper collapsing both failure kinds to false, for
  // callers whose reaction does not depend on which one it was.
  bool Append(int worker, LogType type, uint64_t txn_id, const void* payload,
              size_t len) {
    return TryAppend(worker, type, txn_id, payload, len) == AppendStatus::kOk;
  }

  // Iterates every *sealed* record of every segment in append order per
  // segment. The sealed frontier is the recovery visibility bound: the
  // open tail epoch — and any epoch whose backpatched header fails its
  // magic/checksum validation — is invisible, exactly as a torn record
  // used to be.
  void ForEach(const std::function<void(int worker, const LogRecord&)>& fn)
      const;

  // Bytes between the truncation base and the head of a worker's segment.
  size_t UsedBytes(int worker) const;

  // --- group-commit surface -------------------------------------------------
  // Externalization barrier: seals + submits the worker's open epoch so
  // everything appended so far is recovery-visible before any effect of
  // it can be observed remotely (lock CAS, write-back). Never waits for
  // the flush itself.
  void Externalize(int worker);

  // Registers txn_id for a durability acknowledgement covering every
  // record the worker appended so far, and returns that LSN. In
  // synchronous mode this seals, submits and *waits* — commit equals
  // durable, the per-record baseline. In group-commit mode it returns
  // immediately; the ack drains when the epoch's flush completes
  // (txn.durability.ack_ns measures the gap).
  uint64_t NoteCommit(int worker, uint64_t txn_id);

  // Blocks until txn_id's registered ack has drained (sealing and
  // submitting the open epoch first if needed). A txn_id never
  // registered with NoteCommit returns immediately.
  void WaitDurable(int worker, uint64_t txn_id);

  // The worker's durability frontier: every byte below this LSN has
  // been flushed. Monotone.
  uint64_t DurableUpTo(int worker) const;

  // Drives the worker's flush device forward without blocking: retires
  // submissions whose modeled completion time has passed and drains
  // their acks. Called from outside-HTM log touches; harmless anytime.
  void Poll(int worker);

  // Seals the open epoch and blocks until the durability frontier covers
  // everything appended so far — the strongest precondition ReclaimSpace
  // can be given. Callers that must not proceed until an append succeeds
  // (chain resume markers) drain, reclaim and retry. Outside HTM only.
  void DrainFlushes(int worker);

  // Drops leading epochs in which every transaction has a kComplete
  // record below the durability frontier, freeing ring space. Returns
  // true if the truncation base advanced. Outside HTM only.
  bool ReclaimSpace(int worker);

  // --- payload builders / parsers -------------------------------------------
  static std::vector<uint8_t> EncodeLocks(const std::vector<LogLock>& locks);
  static std::vector<LogLock> DecodeLocks(const std::vector<uint8_t>& payload);
  static void EncodeUpdate(std::vector<uint8_t>* out, const LogUpdate& update,
                           const void* value);
  // Walks all updates serialized in payload.
  static void DecodeUpdates(
      const std::vector<uint8_t>& payload,
      const std::function<void(const LogUpdate&, const uint8_t* value)>& fn);

 private:
  // Control block layout at ctrl_off (one 64-byte line per worker).
  // Slots 0-3 are epoch/head state managed through htm:: dispatch so an
  // aborted HTM region rolls its appends back; slots 4-5 are only ever
  // touched outside HTM.
  static constexpr size_t kHeadSlot = 0;         // next LSN to write
  static constexpr size_t kEpochStartSlot = 1;   // LSN of the open epoch
                                                 // header (kNoEpoch = none)
  static constexpr size_t kEpochRecordsSlot = 2; // records in open epoch
  static constexpr size_t kEpochSeqSlot = 3;     // next epoch id
  static constexpr size_t kSealedSlot = 4;       // recovery visibility bound
  static constexpr size_t kTruncateSlot = 5;     // ring truncation base

  static constexpr uint64_t kNoEpoch = ~uint64_t{0};

  // One modeled in-flight flush submission.
  struct Flush {
    uint64_t end_lsn;   // cumulative: completion makes [0, end_lsn) durable
    uint64_t ready_ns;  // modeled completion time (MonotonicNanos clock)
  };
  struct PendingAck {
    uint64_t txn_id;
    uint64_t lsn;        // durable once durable_lsn >= lsn
    uint64_t commit_ns;  // NoteCommit time; ack latency = ready - commit
  };

  // Host-side per-segment state (not part of the emulated NVRAM image).
  // The mutex serializes seal/submit/poll/reclaim against ForEach; the
  // in-HTM append path never touches it.
  struct FlushState {
    mutable std::mutex mu;
    uint64_t device_free_ns = 0;  // flush device busy-until (serial)
    std::deque<Flush> inflight;
    std::atomic<uint64_t> durable_lsn{0};
    std::deque<PendingAck> acks;
    uint64_t epoch_open_ns = 0;  // wall time the open epoch was opened
  };

  struct SegmentRef {
    uint64_t base_off;  // region offset of the segment ring
    uint64_t ctrl_off;  // region offset of the control block
  };

  uint64_t* Ctrl(const SegmentRef& seg, size_t slot) const;
  uint8_t* SegAt(const SegmentRef& seg, uint64_t lsn) const;

  // Seals the open epoch (checksum + header backpatch + sealed-frontier
  // publish) and submits its flush. Outside HTM only; no-op without an
  // open epoch. Returns the sealed LSN (== head).
  uint64_t SealAndSubmit(int worker);
  // Seals if a byte/time threshold tripped (group-commit mode).
  void MaybeSealOnThreshold(int worker);
  void SubmitFlush(int worker, uint64_t end_lsn, size_t bytes);
  // Poll core with state.mu held.
  void PollLocked(int worker, FlushState& state);
  // Spins until durable_lsn >= lsn, advancing the flush device.
  void WaitFlushed(int worker, uint64_t lsn);

  rdma::NodeMemory* memory_;
  size_t segment_bytes_;
  LogEpochConfig epoch_cfg_;
  std::vector<SegmentRef> segments_;
  std::vector<std::unique_ptr<FlushState>> flush_;
};

}  // namespace txn
}  // namespace drtm

#endif  // SRC_TXN_NVRAM_LOG_H_
