#include "src/txn/recovery.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "src/store/kv_layout.h"
#include "src/txn/lock_state.h"
#include "src/txn/nvram_log.h"

namespace drtm {
namespace txn {

namespace {

struct TxnLogState {
  std::vector<LogLock> locks;
  std::vector<uint8_t> wal;
  bool has_wal = false;
  bool complete = false;
  // Chopped-chain records under this id: {next_piece, total} is appended
  // before each piece, {total, total} after the last.
  uint32_t chop_max = 0;
  uint32_t chop_total = 0;  // 0 = not a chopped chain
};

}  // namespace

RecoveryManager::Report RecoveryManager::Recover(int crashed_node) {
  Report report;
  std::map<uint64_t, TxnLogState> txns;
  cluster_->log(crashed_node)
      ->ForEach([&](int worker, const LogRecord& record) {
        TxnLogState& state = txns[record.txn_id];
        switch (record.type) {
          case LogType::kLockAhead:
            for (const LogLock& lock : NvramLog::DecodeLocks(record.payload)) {
              state.locks.push_back(lock);
            }
            break;
          case LogType::kWriteAhead:
            state.wal = record.payload;
            state.has_wal = true;
            break;
          case LogType::kComplete:
            state.complete = true;
            break;
          case LogType::kChopInfo:
            if (record.payload.size() >= 2 * sizeof(uint32_t)) {
              uint32_t piece = 0;
              uint32_t total = 0;
              std::memcpy(&piece, record.payload.data(), sizeof(piece));
              std::memcpy(&total, record.payload.data() + sizeof(piece),
                          sizeof(total));
              state.chop_max = std::max(state.chop_max, piece);
              state.chop_total = total;
            }
            break;
          case LogType::kEpoch:
          case LogType::kPad:
            break;  // framing records never surface through ForEach
        }
      });

  rdma::Fabric& fabric = cluster_->fabric();
  for (auto& [txn_id, state] : txns) {
    if (state.complete) {
      continue;
    }
    if (state.chop_total != 0) {
      // A chopped chain. {total, total} marks it finished (its locks were
      // released by the chain itself); anything less is a resume point —
      // release the chain locks the crashed node still owns (the
      // lock-ahead under the chain id names them; RunFrom re-acquires)
      // and report the chain so the caller can finish it.
      if (state.chop_max >= state.chop_total) {
        continue;
      }
      for (const LogLock& lock : state.locks) {
        if (!fabric.IsAlive(lock.node)) {
          continue;
        }
        uint64_t lock_word = 0;
        if (fabric.Read(lock.node, lock.state_off, &lock_word,
                        sizeof(lock_word)) != rdma::OpStatus::kOk) {
          continue;
        }
        if (IsWriteLocked(lock_word) && LockOwner(lock_word) == crashed_node) {
          uint64_t observed = 0;
          if (fabric.Cas(lock.node, lock.state_off, lock_word, kStateInit,
                         &observed) == rdma::OpStatus::kOk &&
              observed == lock_word) {
            ++report.released_locks;
          }
        }
      }
      report.pending_chains.push_back(
          PendingChain{txn_id, state.chop_max, state.chop_total});
      continue;
    }
    if (state.has_wal) {
      // Committed: redo remote updates (version decides order), then
      // release the locks the transaction still holds.
      ++report.committed_txns;
      NvramLog::DecodeUpdates(
          state.wal, [&](const LogUpdate& update, const uint8_t* value) {
            if (!fabric.IsAlive(update.node)) {
              return;
            }
            if (update.node != crashed_node) {
              // Remote effects may be missing: redo if the target is
              // still on an older version. Local effects (the crashed
              // node's own records) committed with XEND and survived in
              // NVRAM-backed memory — no redo, but their locks must
              // still be released below once the node is back.
              uint32_t current_version = 0;
              if (fabric.Read(update.node,
                              update.entry_off + store::kEntryVersionOffset,
                              &current_version, sizeof(current_version)) !=
                  rdma::OpStatus::kOk) {
                return;
              }
              if (current_version < update.version) {
                std::vector<uint8_t> blob(4 + update.value_len);
                std::memcpy(blob.data(), &update.version, 4);
                std::memcpy(blob.data() + 4, value, update.value_len);
                // Write version, skip the state word, then the value.
                fabric.Write(update.node,
                             update.entry_off + store::kEntryVersionOffset,
                             blob.data(), 4);
                fabric.Write(update.node,
                             update.entry_off + store::kEntryValueOffset,
                             blob.data() + 4, update.value_len);
                ++report.redone_updates;
              }
            }
            // Release the exclusive lock if the crashed machine owns it.
            const uint64_t state_off =
                update.entry_off + store::kEntryStateOffset;
            uint64_t lock_word = 0;
            if (fabric.Read(update.node, state_off, &lock_word,
                            sizeof(lock_word)) != rdma::OpStatus::kOk) {
              return;
            }
            if (IsWriteLocked(lock_word) &&
                LockOwner(lock_word) == crashed_node) {
              uint64_t observed = 0;
              if (fabric.Cas(update.node, state_off, lock_word, kStateInit,
                             &observed) == rdma::OpStatus::kOk &&
                  observed == lock_word) {
                ++report.released_locks;
              }
            }
          });
    } else if (!state.locks.empty()) {
      // Aborted: the lock-ahead log names every record the transaction
      // may have locked; clear the ones still owned by the crashed node.
      ++report.aborted_txns;
      for (const LogLock& lock : state.locks) {
        if (!fabric.IsAlive(lock.node)) {
          continue;
        }
        uint64_t lock_word = 0;
        if (fabric.Read(lock.node, lock.state_off, &lock_word,
                        sizeof(lock_word)) != rdma::OpStatus::kOk) {
          continue;
        }
        if (IsWriteLocked(lock_word) && LockOwner(lock_word) == crashed_node) {
          uint64_t observed = 0;
          if (fabric.Cas(lock.node, lock.state_off, lock_word, kStateInit,
                         &observed) == rdma::OpStatus::kOk &&
              observed == lock_word) {
            ++report.released_locks;
          }
        }
      }
    }
  }
  return report;
}

}  // namespace txn
}  // namespace drtm
