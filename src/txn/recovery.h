// Cooperative recovery from a fail-stop crash (paper section 4.6).
//
// The failure model is whole-system persistence: on power loss a UPS
// flushes caches/DRAM to NVRAM, so the crashed machine's memory — and in
// particular its NVRAM log — survives. Recovery scans the crashed node's
// log and:
//   * for transactions whose write-ahead log exists (the HTM region
//     committed, so the transaction must commit): re-applies remote
//     updates whose target version is still older, and releases the
//     exclusive locks the transaction held (Fig. 7(b));
//   * for transactions with only a lock-ahead log (crashed before XEND,
//     so the transaction must abort): releases any remote locks still
//     owned by the crashed machine (Fig. 7(a));
//   * transactions with a Complete record finished write-back and are
//     skipped.
#ifndef SRC_TXN_RECOVERY_H_
#define SRC_TXN_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "src/txn/cluster.h"

namespace drtm {
namespace txn {

class RecoveryManager {
 public:
  explicit RecoveryManager(Cluster* cluster) : cluster_(cluster) {}

  // A chopped chain the crashed node left unfinished: pieces
  // [0, next_piece) committed, [next_piece, total) remain. The chain's
  // locks were released during recovery; ChoppedTransaction::RunFrom
  // re-acquires them and finishes the chain (§4.6).
  struct PendingChain {
    uint64_t chain_id = 0;
    uint32_t next_piece = 0;
    uint32_t total = 0;
  };

  struct Report {
    int committed_txns = 0;   // redone from WAL
    int aborted_txns = 0;     // rolled back via lock-ahead
    int redone_updates = 0;   // remote records rewritten
    int released_locks = 0;   // exclusive locks cleared
    std::vector<PendingChain> pending_chains;  // chopped chains to resume
  };

  // Recovers the effects of crashed_node's in-flight transactions on the
  // surviving nodes. Operations targeting nodes that are down are skipped
  // (run again after Revive to finish).
  Report Recover(int crashed_node);

 private:
  Cluster* cluster_;
};

}  // namespace txn
}  // namespace drtm

#endif  // SRC_TXN_RECOVERY_H_
