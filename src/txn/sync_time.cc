#include "src/txn/sync_time.h"

#include <chrono>

#include "src/common/clock.h"
#include "src/htm/htm.h"

namespace drtm {
namespace txn {

SyncTime::SyncTime(rdma::Fabric* fabric, uint64_t update_interval_us)
    : fabric_(fabric),
      interval_us_(update_interval_us),
      skews_(static_cast<size_t>(fabric->num_nodes())),
      epoch_ns_(MonotonicNanos()) {
  offsets_.reserve(static_cast<size_t>(fabric->num_nodes()));
  for (int i = 0; i < fabric->num_nodes(); ++i) {
    // A dedicated cache line per softtime word: the conflict footprint of
    // the timer thread should be exactly this word (Fig. 11).
    offsets_.push_back(fabric->memory(i).Allocate(64, 64));
    skews_[static_cast<size_t>(i)].store(0, std::memory_order_relaxed);
  }
  PublishNow();
}

SyncTime::~SyncTime() { Stop(); }

void SyncTime::PublishNow() {
  const uint64_t now_us = (MonotonicNanos() - epoch_ns_) / 1000 + 1;
  for (int i = 0; i < fabric_->num_nodes(); ++i) {
    if (!fabric_->IsAlive(i)) {
      continue;
    }
    const int64_t skew = skews_[static_cast<size_t>(i)].load(
        std::memory_order_relaxed);
    const uint64_t value =
        static_cast<uint64_t>(static_cast<int64_t>(now_us) + skew);
    uint64_t* word = static_cast<uint64_t*>(
        fabric_->memory(i).At(offsets_[static_cast<size_t>(i)]));
    htm::StrongStore(word, value);
  }
}

void SyncTime::Start() {
  if (running_.exchange(true)) {
    return;
  }
  timer_ = std::thread([this] {
    while (running_.load(std::memory_order_acquire)) {
      PublishNow();
      // Sleep rather than spin: the simulation oversubscribes cores, and
      // the paper's timer thread is idle between updates anyway.
      std::this_thread::sleep_for(std::chrono::microseconds(interval_us_));
    }
  });
}

void SyncTime::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  if (timer_.joinable()) {
    timer_.join();
  }
}

uint64_t SyncTime::ReadStrong(int node) const {
  return htm::StrongLoad(Word(node));
}

}  // namespace txn
}  // namespace drtm
