// Synchronized time (paper section 6.1).
//
// The paper synchronizes machine clocks with PTP, but cannot call a time
// service inside an RTM region, so each machine runs a timer thread that
// periodically publishes a "softtime" word; transactions read that word.
// We reproduce the same structure: one softtime word per node, placed in
// that node's registered region, strong-written by a timer thread. A
// transactional read of the word inside an HTM region can therefore
// genuinely conflict with the timer (Fig. 11) — the Start-phase value is
// read non-transactionally and reused, and only the lease confirmation
// right before commit performs a transactional read.
//
// Optional per-node skew injection emulates imperfect PTP sync for the
// DELTA tests.
#ifndef SRC_TXN_SYNC_TIME_H_
#define SRC_TXN_SYNC_TIME_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/rdma/fabric.h"

namespace drtm {
namespace txn {

class SyncTime {
 public:
  SyncTime(rdma::Fabric* fabric, uint64_t update_interval_us);
  ~SyncTime();

  SyncTime(const SyncTime&) = delete;
  SyncTime& operator=(const SyncTime&) = delete;

  void Start();
  void Stop();

  // Non-transactional read of a node's softtime (Start phase).
  uint64_t ReadStrong(int node) const;

  // The softtime word of a node, for transactional reads inside an HTM
  // region (lease confirmation).
  const uint64_t* Word(int node) const {
    return static_cast<const uint64_t*>(
        const_cast<rdma::Fabric*>(fabric_)->memory(node).At(
            offsets_[static_cast<size_t>(node)]));
  }

  // Injects a fixed skew (microseconds, may be negative) into a node's
  // published time.
  void SetSkew(int node, int64_t skew_us) {
    skews_[static_cast<size_t>(node)].store(skew_us,
                                            std::memory_order_relaxed);
  }

  uint64_t update_interval_us() const { return interval_us_; }

  // Publishes the current time to every live node immediately (also used
  // by tests to avoid waiting for the timer).
  void PublishNow();

 private:
  rdma::Fabric* fabric_;
  uint64_t interval_us_;
  std::vector<uint64_t> offsets_;
  std::vector<std::atomic<int64_t>> skews_;
  std::thread timer_;
  std::atomic<bool> running_{false};
  uint64_t epoch_ns_;
};

}  // namespace txn
}  // namespace drtm

#endif  // SRC_TXN_SYNC_TIME_H_
