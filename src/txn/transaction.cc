#include "src/txn/transaction.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <utility>

#include "src/chaos/injector.h"
#include "src/common/clock.h"
#include "src/rdma/phase_scatter.h"
#include "src/replay/recorder.h"
#include "src/rdma/verbs_batch.h"
#include "src/stat/metrics.h"
#include "src/stat/scatter_stats.h"
#include "src/stat/timer.h"
#include "src/store/kv_layout.h"
#include "src/store/remote_kv.h"
#include "src/txn/lock_state.h"

namespace drtm {
namespace txn {

namespace {

constexpr int kFallbackAttempts = 512;
constexpr int kWaitTriesLimit = 4096;
constexpr int kWriteBackRetries = 2000;

void SleepUs(uint64_t us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

// RAII bracket around one transaction attempt so the elastic tier's
// DrainTxnWindows() can wait out every attempt that sampled hook or
// routing state from before a toggle.
class WindowGuard {
 public:
  explicit WindowGuard(Cluster& cluster)
      : cluster_(cluster), token_(cluster.BeginTxnWindow()) {}
  ~WindowGuard() { cluster_.EndTxnWindow(token_); }

  WindowGuard(const WindowGuard&) = delete;
  WindowGuard& operator=(const WindowGuard&) = delete;

 private:
  Cluster& cluster_;
  uint64_t token_;
};

// The elastic freeze gate: false while a live migration has the key's
// bucket frozen mid-switch. Gated acquisitions fail as conflicts; the
// retry re-resolves the owner and lands on the new one after the flip.
bool GateAllows(Cluster& cluster, int table, uint64_t key) {
  Cluster::ElasticHooks* hooks = cluster.elastic_hooks();
  return hooks == nullptr || hooks->AllowAcquire(table, key);
}

// Registry ids for the transaction-layer counters and phase timers,
// resolved once per process.
struct TxnMetricIds {
  uint32_t commit = 0;
  uint32_t user_abort = 0;
  uint32_t start_conflict = 0;
  uint32_t fallback = 0;
  uint32_t exhausted = 0;
  uint32_t node_failure = 0;
  uint32_t lease_abort = 0;
  uint32_t lock_abort = 0;
  uint32_t ro_commit = 0;
  uint32_t ro_retry = 0;
  uint32_t lock_backoff = 0;
  uint32_t fallback_optimistic_hit = 0;
  uint32_t fallback_fallthrough = 0;
  uint32_t adaptive_budget_gauge = 0;
  uint32_t htm_attempt_ns = 0;
  uint32_t fallback_ns = 0;
  uint32_t lock_acquire_ns = 0;
  uint32_t lease_wait_ns = 0;
  uint32_t commit_ns = 0;
};

const TxnMetricIds& Ids() {
  static const TxnMetricIds ids = [] {
    stat::Registry& reg = stat::Registry::Global();
    TxnMetricIds t;
    t.commit = reg.CounterId("txn.commit");
    t.user_abort = reg.CounterId("txn.user_abort");
    t.start_conflict = reg.CounterId("txn.start_conflict");
    t.fallback = reg.CounterId("txn.fallback");
    t.exhausted = reg.CounterId("txn.fallback_exhausted");
    t.node_failure = reg.CounterId("txn.node_failure");
    t.lease_abort = reg.CounterId("txn.lease_abort");
    t.lock_abort = reg.CounterId("txn.lock_abort");
    t.ro_commit = reg.CounterId("txn.readonly.commit");
    t.ro_retry = reg.CounterId("txn.readonly.retry");
    t.lock_backoff = reg.CounterId("txn.lock_backoff");
    t.fallback_optimistic_hit = reg.CounterId("txn.fallback.optimistic_hit");
    t.fallback_fallthrough =
        reg.CounterId("txn.fallback.ordered_fallthrough");
    t.adaptive_budget_gauge = reg.GaugeId("txn.adaptive.retry_budget");
    t.htm_attempt_ns = reg.TimerId("phase.htm_attempt_ns");
    t.fallback_ns = reg.TimerId("phase.fallback_ns");
    t.lock_acquire_ns = reg.TimerId("phase.lock_acquire_ns");
    t.lease_wait_ns = reg.TimerId("phase.lease_wait_ns");
    t.commit_ns = reg.TimerId("phase.commit_ns");
    return t;
  }();
  return ids;
}

}  // namespace

void TxnStats::Add(const TxnStats& o) {
  committed += o.committed;
  user_aborts += o.user_aborts;
  start_conflicts += o.start_conflicts;
  htm_conflict_aborts += o.htm_conflict_aborts;
  htm_capacity_aborts += o.htm_capacity_aborts;
  htm_lock_aborts += o.htm_lock_aborts;
  htm_lease_aborts += o.htm_lease_aborts;
  fallbacks += o.fallbacks;
  node_failures += o.node_failures;
  read_only_committed += o.read_only_committed;
  read_only_retries += o.read_only_retries;
}

Worker::Worker(Cluster* cluster, int node, int worker_id)
    : cluster_(cluster),
      node_(node),
      worker_id_(worker_id),
      htm_(cluster->config().htm),
      rng_(0x5bd1e995u * static_cast<uint64_t>(node * 131 + worker_id + 7)),
      backoff_rng_(0xb5297a4db432ca99ULL ^
                   (0x9e3779b9u * static_cast<uint64_t>(node * 131 +
                                                        worker_id + 7))) {}

void Worker::WaitDurable(uint64_t txn_id) {
  if (!cluster_->config().logging) {
    return;
  }
  cluster_->log(node_)->WaitDurable(worker_id_, txn_id);
}

void Worker::Backoff(int attempt) {
  const int shift = attempt < 8 ? attempt : 8;
  const uint64_t ceiling = uint64_t{1} << shift;
  SleepUs(1 + backoff_rng_.NextBounded(ceiling));
}

void Worker::LockBackoff(int consecutive_lock_aborts) {
  // Ceiling grows 8 -> 256 us: enough for the holder's two-WRITE
  // write-back (a few us modeled) plus queueing, bounded so a stuck
  // holder still sends us to the fallback reasonably fast.
  const int shift =
      consecutive_lock_aborts < 6 ? consecutive_lock_aborts : 6;
  const uint64_t ceiling = uint64_t{4} << shift;
  SleepUs(2 + backoff_rng_.NextBounded(ceiling));
}

int Worker::MixRegime() const {
  if (abort_mix_.total() < AbortMixWindow::kMinSamples) {
    return -1;
  }
  if (abort_mix_.capacity * 2 >= abort_mix_.total()) {
    return 0;  // capacity-dominant
  }
  if ((abort_mix_.conflict + abort_mix_.lock) * 4 >=
      abort_mix_.total() * 3) {
    return 1;  // contention-dominant
  }
  return -1;
}

int Worker::AdaptiveRetryLimit() {
  const int base = cluster_->config().htm_retry_limit;
  int chosen = base;
  if (cluster_->config().adaptive_retry_budget && base > 0) {
    switch (MixRegime()) {
      case 0:
        chosen = std::max(1, base / 2);
        break;
      case 1:
        chosen = base * 2;
        break;
      default:
        break;
    }
  }
  stat::Registry::Global().GaugeSet(Ids().adaptive_budget_gauge, chosen);
  return chosen;
}

int Worker::AdaptiveLockExtraRetries() const {
  const int base = cluster_->config().lock_abort_extra_retries;
  if (!cluster_->config().adaptive_retry_budget || base <= 0) {
    return base;
  }
  switch (MixRegime()) {
    case 0:
      return base / 2;
    case 1:
      return base * 2;
    default:
      return base;
  }
}

Transaction::Transaction(Worker* worker)
    : worker_(worker),
      cluster_(worker->cluster()),
      cfg_(worker->cluster().config()) {}

int Transaction::home_node() const { return worker_->node(); }

void Transaction::AddRead(int table, uint64_t key) {
  if (Ref* existing = FindRef(table, key)) {
    (void)existing;  // write subsumes read; duplicate reads are idempotent
    return;
  }
  Ref ref;
  ref.table = table;
  ref.key = key;
  ref.write = false;
  ref.node = cluster_.PartitionOf(table, key);
  ref.local = (ref.node == worker_->node());
  ref.value_size = cluster_.table(table).value_size;
  refs_.push_back(std::move(ref));
}

void Transaction::AddWrite(int table, uint64_t key) {
  if (Ref* existing = FindRef(table, key)) {
    existing->write = true;  // upgrade
    return;
  }
  AddRead(table, key);
  refs_.back().write = true;
}

void Transaction::MarkChainLocked(int table, uint64_t key) {
  if (Ref* ref = FindRef(table, key)) {
    ref->chain_locked = true;
  }
}

Transaction::Ref* Transaction::FindRef(int table, uint64_t key) {
  for (Ref& ref : refs_) {
    if (ref.table == table && ref.key == key) {
      return &ref;
    }
  }
  return nullptr;
}

void Transaction::SortRefs() {
  std::sort(refs_.begin(), refs_.end(), [](const Ref& a, const Ref& b) {
    return a.table != b.table ? a.table < b.table : a.key < b.key;
  });
}

// --- lock helpers ------------------------------------------------------------

rdma::OpStatus Transaction::StateCas(const Ref& ref, uint64_t expected,
                                     uint64_t desired, uint64_t* observed) {
  const uint64_t state_off = ref.entry_off + store::kEntryStateOffset;
  if (ref.local &&
      cluster_.fabric().atomic_level() == rdma::AtomicLevel::kGlob) {
    // GLOB-level NICs keep RDMA CAS coherent with processor CAS, so the
    // cheap local atomic is allowed (section 6.3).
    SpinFor(cfg_.latency.LocalCasNs());
    uint64_t* addr =
        cluster_.hash_table(ref.node, ref.table)->StatePtr(ref.entry_off);
    // drtm-lint: allow(TX03 local stand-in for an RDMA CAS verb on GLOB-coherent NICs)
    *observed = htm::StrongCas64(addr, expected, desired);
    return rdma::OpStatus::kOk;
  }
  return cluster_.fabric().Cas(ref.node, state_off, expected, desired,
                               observed);
}

void Transaction::UnlockRef(const Ref& ref) {
  const uint64_t state_off = ref.entry_off + store::kEntryStateOffset;
  const uint64_t init = kStateInit;
  for (int attempt = 0; attempt < kWriteBackRetries; ++attempt) {
    if (cluster_.fabric().Write(ref.node, state_off, &init, sizeof(init)) ==
        rdma::OpStatus::kOk) {
      return;
    }
    // Target down: the paper's surviving workers wait for recovery
    // (Fig. 7(d)); recovery also clears locks from lock-ahead logs.
    SleepUs(1000);
  }
}

Transaction::StartResult Transaction::AcquireExclusive(Ref& ref, bool wait) {
  if (!GateAllows(cluster_, ref.table, ref.key)) {
    return StartResult::kConflict;
  }
  stat::ScopedTimer phase(Ids().lock_acquire_ns);
  const uint64_t locked_val =
      MakeWriteLocked(static_cast<uint8_t>(worker_->node()));
  uint64_t expected = kStateInit;
  int tries = 0;
  while (true) {
    uint64_t observed = 0;
    if (StateCas(ref, expected, locked_val, &observed) !=
        rdma::OpStatus::kOk) {
      return StartResult::kNodeDown;
    }
    if (observed == expected) {
      ref.locked = true;
      return StartResult::kOk;
    }
    if (IsWriteLocked(observed)) {
      if (!wait || ++tries > kWaitTriesLimit) {
        return StartResult::kConflict;
      }
      SleepUs(10 + worker_->backoff_rng().NextBounded(50));
      expected = kStateInit;
      continue;
    }
    // A read lease is present; writers must wait for expiry (Fig. 5).
    const uint64_t end = LeaseEnd(observed);
    while (true) {
      const uint64_t now = cluster_.synctime().ReadStrong(worker_->node());
      if (LeaseExpired(end, now, cfg_.delta_us)) {
        break;
      }
      if (!wait || ++tries > kWaitTriesLimit) {
        return StartResult::kConflict;
      }
      SleepUs(20);
    }
    expected = observed;  // CAS the expired lease away
  }
}

Transaction::StartResult Transaction::AcquireLease(Ref& ref, bool wait) {
  // Fast path: an 8-byte READ of the state word. If a healthy lease is
  // already installed, share it without any CAS — an RDMA CAS costs an
  // order of magnitude more than a small READ (section 6.3), and under
  // read-heavy sharing the optimistic CAS-on-INIT would fail anyway.
  const uint64_t state_off = ref.entry_off + store::kEntryStateOffset;
  uint64_t observed = 0;
  if (cluster_.fabric().Read(ref.node, state_off, &observed,
                             sizeof(observed)) != rdma::OpStatus::kOk) {
    return StartResult::kNodeDown;
  }
  return AcquireLeaseWithState(ref, wait, observed);
}

Transaction::StartResult Transaction::AcquireLeaseWithState(Ref& ref,
                                                            bool wait,
                                                            uint64_t probed) {
  if (!GateAllows(cluster_, ref.table, ref.key)) {
    return StartResult::kConflict;
  }
  stat::ScopedTimer phase(Ids().lease_wait_ns);
  const uint64_t desired = MakeLease(lease_end_);
  uint64_t expected = kStateInit;
  int tries = 0;
  if (IsWriteLocked(probed)) {
    if (!wait) {
      return StartResult::kConflict;
    }
    // Leave expected = INIT; the CAS loop below waits the lock out.
  } else if (HasLease(probed)) {
    const uint64_t end = LeaseEnd(probed);
    const uint64_t now = cluster_.synctime().ReadStrong(worker_->node());
    if (end > now + 2 * cfg_.delta_us + cfg_.lease_rw_us / 8) {
      ref.leased = true;
      ref.lease_end = end;
      return StartResult::kOk;
    }
    expected = probed;  // expired or short: steal/renew via CAS
  }
  while (true) {
    uint64_t observed = 0;
    if (StateCas(ref, expected, desired, &observed) != rdma::OpStatus::kOk) {
      return StartResult::kNodeDown;
    }
    if (observed == expected) {
      ref.leased = true;
      ref.lease_end = lease_end_;
      return StartResult::kOk;
    }
    if (IsWriteLocked(observed)) {
      if (!wait || ++tries > kWaitTriesLimit) {
        return StartResult::kConflict;
      }
      SleepUs(10 + worker_->backoff_rng().NextBounded(50));
      expected = kStateInit;
      continue;
    }
    const uint64_t end = LeaseEnd(observed);
    const uint64_t now = cluster_.synctime().ReadStrong(worker_->node());
    if (!LeaseExpired(end, now, cfg_.delta_us)) {
      // Read-read sharing: adopt the existing lease and its end time —
      // unless too little of it remains for this transaction to confirm
      // it at commit, in which case renew it in place (extending a lease
      // only delays writers; readers of the old end stay valid).
      if (end > now + 2 * cfg_.delta_us + cfg_.lease_rw_us / 8) {
        ref.leased = true;
        ref.lease_end = end;
        return StartResult::kOk;
      }
      expected = observed;  // renew
      continue;
    }
    expected = observed;  // replace the expired lease with ours
  }
}

Transaction::StartResult Transaction::PrefetchFromRaw(Ref& ref,
                                                      const uint8_t* raw) {
  store::EntryHeader header;
  std::memcpy(&header, raw, sizeof(header));
  if (header.key != ref.key) {
    // The entry was deleted (and possibly recycled) between lookup and
    // lock; undo and let the retry re-resolve.
    if (ref.locked) {
      UnlockRef(ref);
      ref.locked = false;
    }
    ref.leased = false;
    ref.found = false;
    return StartResult::kConflict;
  }
  ref.version = header.version;
  ref.buf.resize(ref.value_size);
  std::memcpy(ref.buf.data(), raw + sizeof(header), ref.value_size);
  return StartResult::kOk;
}

Transaction::StartResult Transaction::PrefetchRef(Ref& ref) {
  std::vector<uint8_t> raw(sizeof(store::EntryHeader) + ref.value_size);
  if (cluster_.fabric().Read(ref.node, ref.entry_off, raw.data(),
                             raw.size()) != rdma::OpStatus::kOk) {
    return StartResult::kNodeDown;
  }
  return PrefetchFromRaw(ref, raw.data());
}

bool Transaction::ResolveRef(Ref& ref) {
  if (ref.local) {
    ref.entry_off =
        cluster_.hash_table(ref.node, ref.table)->FindEntry(ref.key);
    ref.found = ref.entry_off != store::kInvalidOffset;
    return true;
  }
  store::ClusterHashTable* host = cluster_.hash_table(ref.node, ref.table);
  store::RemoteKv client(&cluster_.fabric(), ref.node, host->geometry(),
                         cluster_.cache(worker_->node(), ref.node));
  const store::RemoteEntryRef found = client.Lookup(ref.key);
  if (!cluster_.fabric().IsAlive(ref.node)) {
    return false;
  }
  ref.found = found.found;
  ref.entry_off = found.entry_off;
  return true;
}

bool Transaction::ResolveRemoteRefs(const std::vector<Ref*>& remote) {
  if (remote.empty()) {
    return true;
  }
  if (remote.size() == 1) {
    return ResolveRef(*remote[0]);  // nothing to overlap
  }
  // One RemoteKv per ref (geometry is per <node, table>); the scatter
  // dedups queues per target node, so all chains walk in lockstep with
  // one overlapped doorbell per node per round.
  std::vector<std::unique_ptr<store::RemoteKv>> clients;
  std::vector<store::RemoteKv::LookupTask> tasks(remote.size());
  clients.reserve(remote.size());
  for (size_t i = 0; i < remote.size(); ++i) {
    const Ref& ref = *remote[i];
    store::ClusterHashTable* host = cluster_.hash_table(ref.node, ref.table);
    clients.push_back(std::make_unique<store::RemoteKv>(
        &cluster_.fabric(), ref.node, host->geometry(),
        cluster_.cache(worker_->node(), ref.node)));
    tasks[i].client = clients.back().get();
    tasks[i].key = ref.key;
  }
  rdma::PhaseScatter scatter(cluster_.fabric(),
                             rdma::SendQueue::Config{cfg_.rdma_batch_window},
                             &stat::ScatterLookupIds());
  store::RemoteKv::ScatterLookup(scatter, &tasks);
  for (size_t i = 0; i < remote.size(); ++i) {
    Ref& ref = *remote[i];
    if (!cluster_.fabric().IsAlive(ref.node)) {
      return false;
    }
    ref.found = tasks[i].result.found;
    ref.entry_off = tasks[i].result.entry_off;
  }
  return true;
}

// --- HTM path ----------------------------------------------------------------

Transaction::StartResult Transaction::StartPhase() {
  now_start_ = cluster_.synctime().ReadStrong(worker_->node());
  lease_end_ = now_start_ + cfg_.lease_rw_us;

  // Re-resolve every ref's owner: the elastic tier can flip bucket
  // ownership between attempts (live migration), and a stale node would
  // acquire against the old owner's copy after the switch.
  for (Ref& ref : refs_) {
    ref.node = cluster_.PartitionOf(ref.table, ref.key);
    ref.local = (ref.node == worker_->node());
  }

  std::vector<Ref*> remote_all;
  for (Ref& ref : refs_) {
    if (!ref.local) {
      remote_all.push_back(&ref);
    }
  }
  if (!ResolveRemoteRefs(remote_all)) {
    return StartResult::kNodeDown;
  }
  bool any_remote_write = false;
  for (const Ref* ref : remote_all) {
    // Chain-locked refs are excluded: their lock belongs to the chain
    // (logged once under the chain id), and a per-piece lock-ahead entry
    // would let recovery release the chain lock after a mere piece crash.
    any_remote_write |= (ref->write && ref->found && !ref->chain_locked);
  }

  if (cfg_.logging && any_remote_write) {
    // Lock-ahead log: which remote records this transaction is about to
    // lock, so recovery can unlock them if we crash pre-commit (§4.6).
    std::vector<LogLock> locks;
    for (const Ref& ref : refs_) {
      if (!ref.local && ref.write && ref.found && !ref.chain_locked) {
        locks.push_back(LogLock{ref.node, ref.table, ref.key,
                                ref.entry_off + store::kEntryStateOffset});
      }
    }
    const std::vector<uint8_t> payload = NvramLog::EncodeLocks(locks);
    NvramLog* log = cluster_.log(worker_->node());
    AppendStatus logged =
        log->TryAppend(worker_->worker_id(), LogType::kLockAhead, txn_id_,
                       payload.data(), payload.size());
    if (logged == AppendStatus::kFull &&
        log->ReclaimSpace(worker_->worker_id())) {
      logged = log->TryAppend(worker_->worker_id(), LogType::kLockAhead,
                              txn_id_, payload.data(), payload.size());
    }
    if (logged != AppendStatus::kOk) {
      // Log full even after reclaiming, or the append itself faulted:
      // without a lock-ahead record a pre-commit crash would strand the
      // remote locks, so the transaction must not acquire them. Retry
      // as a conflict.
      return StartResult::kConflict;
    }
    // Externalization barrier: the lock-ahead record must be
    // recovery-visible (sealed) before any remote lock CAS lands, or a
    // crash inside the locked window could not be repaired (§4.6).
    log->Externalize(worker_->worker_id());
  }

  std::vector<Ref*> remote;
  for (Ref& ref : refs_) {
    if (!ref.local && ref.found) {
      remote.push_back(&ref);
    }
  }
  return BatchedStartRemote(remote);
}

Transaction::StartResult Transaction::BatchedStartRemote(
    const std::vector<Ref*>& remote) {
  if (remote.empty()) {
    return StartResult::kOk;
  }
  // The scatter below posts first-attempt lock CASes directly, bypassing
  // the scalar acquire helpers — so the elastic freeze gate must be
  // checked here, before any CAS can land on a frozen bucket.
  // Chain-locked refs are exempt throughout: the chain already holds
  // their exclusive lock, so this piece only prefetches them.
  for (const Ref* ref : remote) {
    if (!ref->chain_locked && !GateAllows(cluster_, ref->table, ref->key)) {
      return StartResult::kConflict;
    }
  }
  const uint64_t locked_val =
      MakeWriteLocked(static_cast<uint8_t>(worker_->node()));
  const rdma::SendQueue::Config sq_cfg{cfg_.rdma_batch_window};

  // Round 1: first-attempt lock CASes (INIT -> locked) and lease-probe
  // READs for *all* target nodes ride one overlapped scatter — every
  // doorbell is rung before any completion is polled, so k nodes cost
  // ~1 round trip (PhaseScatter). Contended refs drop to the scalar
  // helpers, which know how to steal expired leases and renew short
  // ones — that path costs one redundant CAS/READ, but only under
  // contention.
  StartResult fail = StartResult::kOk;
  std::vector<Ref*> contended;
  {
    stat::ScopedTimer phase(Ids().lock_acquire_ns);
    std::vector<uint64_t> probes(remote.size(), 0);
    std::vector<bool> is_cas(remote.size(), false);
    rdma::PhaseScatter scatter(cluster_.fabric(), sq_cfg,
                               &stat::ScatterStartLockIds());
    // (target, wr_id) -> remote index, for matching completions back.
    std::vector<std::pair<std::pair<int, rdma::WrId>, size_t>> owners;
    for (size_t i = 0; i < remote.size(); ++i) {
      const Ref& ref = *remote[i];
      if (ref.chain_locked) {
        continue;  // lock already held by the chain; prefetch-only below
      }
      const uint64_t state_off = ref.entry_off + store::kEntryStateOffset;
      rdma::SendQueue& sq = scatter.To(ref.node);
      rdma::WrId id;
      if (ref.write || !cfg_.enable_read_lease) {
        is_cas[i] = true;
        id = sq.PostCas(state_off, kStateInit, locked_val);
      } else {
        id = sq.PostRead(state_off, &probes[i], sizeof(probes[i]));
      }
      owners.emplace_back(std::make_pair(ref.node, id), i);
    }
    std::vector<rdma::ScatterCompletion> comps;
    scatter.Gather(&comps);
    // Mark every acquired lock before acting on any failure, so an
    // early conflict return still releases everything acquired by
    // other completions (Run() walks the marked flags).
    for (const rdma::ScatterCompletion& sc : comps) {
      size_t i = remote.size();
      for (const auto& [owner_key, idx] : owners) {
        if (owner_key.first == sc.target &&
            owner_key.second == sc.comp.wr_id) {
          i = idx;
          break;
        }
      }
      Ref& ref = *remote[i];
      if (sc.comp.status != rdma::OpStatus::kOk) {
        fail = StartResult::kNodeDown;
        continue;
      }
      if (!is_cas[i]) {
        continue;  // lease probes are processed below
      }
      if (sc.comp.observed == kStateInit) {
        ref.locked = true;
      } else {
        contended.push_back(&ref);
      }
    }
    if (fail == StartResult::kOk) {
      for (size_t i = 0; i < remote.size(); ++i) {
        if (is_cas[i] || remote[i]->chain_locked) {
          continue;
        }
        const StartResult sr =
            AcquireLeaseWithState(*remote[i], /*wait=*/false, probes[i]);
        if (sr != StartResult::kOk) {
          fail = sr;
          break;
        }
      }
    }
    if (fail == StartResult::kOk) {
      for (Ref* ref : contended) {
        const StartResult sr = AcquireExclusive(*ref, /*wait=*/false);
        if (sr != StartResult::kOk) {
          fail = sr;
          break;
        }
      }
    }
  }
  if (fail != StartResult::kOk) {
    return fail;
  }

  // Round 2: prefetch every acquired ref's header+value image in one
  // more overlapped scatter round, then parse locally.
  std::vector<std::vector<uint8_t>> raws(remote.size());
  {
    rdma::PhaseScatter scatter(cluster_.fabric(), sq_cfg,
                               &stat::ScatterPrefetchIds());
    for (size_t i = 0; i < remote.size(); ++i) {
      Ref& ref = *remote[i];
      if (!(ref.locked || ref.leased || ref.chain_locked)) {
        continue;
      }
      raws[i].resize(sizeof(store::EntryHeader) + ref.value_size);
      scatter.To(ref.node).PostRead(ref.entry_off, raws[i].data(),
                                    raws[i].size());
    }
    std::vector<rdma::ScatterCompletion> comps;
    scatter.Gather(&comps);
    for (const rdma::ScatterCompletion& sc : comps) {
      if (sc.comp.status != rdma::OpStatus::kOk) {
        fail = StartResult::kNodeDown;
      }
    }
  }
  if (fail != StartResult::kOk) {
    return fail;
  }
  for (size_t i = 0; i < remote.size(); ++i) {
    if (raws[i].empty()) {
      continue;
    }
    const StartResult sr = PrefetchFromRaw(*remote[i], raws[i].data());
    if (sr != StartResult::kOk) {
      return sr;
    }
  }
  return StartResult::kOk;
}

void Transaction::ConfirmLeasesInHtm() {
  bool any_lease = false;
  for (const Ref& ref : refs_) {
    if (ref.leased) {
      any_lease = true;
      break;
    }
  }
  if (!any_lease) {
    return;
  }
  // Fresh softtime via a *transactional* read: this is the only place the
  // timer thread's word enters the HTM working set (Fig. 11(c)).
  const uint64_t now =
      worker_->htm().Load(cluster_.synctime().Word(worker_->node()));
  for (const Ref& ref : refs_) {
    if (ref.leased && !LeaseValid(ref.lease_end, now, cfg_.delta_us)) {
      worker_->htm().Abort(kCodeLease);
    }
  }
}

void Transaction::RecordWalUpdate(const Ref& ref, const void* value) {
  if (replay::Armed()) {
    // Wrapping sum of per-update digests: order-insensitive, so the HTM
    // path (locals logged in program order, remotes gathered at commit)
    // and the fallback path (everything gathered in sorted ref order)
    // produce the same digest for the same logical updates. Deliberately
    // excludes entry_off — entry allocation is not replay-stable.
    replay_wal_sum_ +=
        replay::WalUpdateDigest(ref.node, ref.table, ref.key,
                                ref.version + 1, value, ref.value_size);
  }
  if (!cfg_.logging) {
    return;
  }
  LogUpdate update;
  update.node = ref.node;
  update.table = ref.table;
  update.key = ref.key;
  update.entry_off = ref.entry_off;
  update.version = ref.version + 1;
  update.value_len = ref.value_size;
  NvramLog::EncodeUpdate(&wal_buffer_, update, value);
}

std::vector<replay::WriteRec> Transaction::ReplayGatherWrites() const {
  std::vector<replay::WriteRec> writes;
  for (const Ref& ref : refs_) {
    if (ref.dirty) {
      writes.push_back(replay::WriteRec{ref.node, ref.table, ref.key,
                                        ref.version + 1});
    }
  }
  return writes;
}

// Split from the fallback variant on purpose: this one runs inside the
// HTM region, so it must only touch thread-local recorder state (no ring
// mutex on an abortable path).
void Transaction::ReplayStageCommitHtm() {
  std::vector<replay::WriteRec> writes = ReplayGatherWrites();
  if (writes.empty()) {
    // Zero-write commit (e.g. smallbank's insufficient-funds success):
    // nothing observable changed, so there is nothing to validate.
    return;
  }
  replay::Recorder::Global().StageCommit(txn_id_, std::move(writes),
                                         replay_wal_sum_);
}

void Transaction::ReplayRecordFallbackCommit() {
  std::vector<replay::WriteRec> writes = ReplayGatherWrites();
  if (writes.empty()) {
    return;
  }
  replay::Recorder::Global().RecordFallbackCommit(txn_id_, std::move(writes),
                                                  replay_wal_sum_);
}

void Transaction::WriteWalInHtm() {
  if (!cfg_.logging && !replay::Armed()) {
    return;
  }
  // Local updates were recorded as they happened (LocalWriteInHtm);
  // remote updates sit in their prefetch buffers until write-back, so
  // log their final values here. With replay recording armed this also
  // folds the remote updates into the replay WAL digest even when
  // durability logging itself is off.
  for (const Ref& ref : refs_) {
    if (!ref.local && ref.dirty) {
      RecordWalUpdate(ref, ref.buf.data());
    }
  }
  if (!cfg_.logging || wal_buffer_.empty()) {
    return;
  }
  // Inside the HTM region: the record becomes durable iff XEND commits
  // (all-or-nothing), which is what recovery keys off (§4.6). A full
  // segment cannot be reclaimed here (reclamation takes the flush
  // mutex), so abort; the retry path reclaims outside the region.
  if (!cluster_.log(worker_->node())
           ->Append(worker_->worker_id(), LogType::kWriteAhead, txn_id_,
                    wal_buffer_.data(), wal_buffer_.size())) {
    worker_->htm().Abort(kCodeLogFull);
  }
}

bool Transaction::WriteBackAndUnlock() {
  const uint64_t locked_val =
      MakeWriteLocked(static_cast<uint8_t>(worker_->node()));
  const uint64_t init = kStateInit;
  // Chaos crash point, mirrored from the ordered fallback's release
  // loop: a machine dying here posts no further write-backs or unlocks
  // and never writes its Complete record — recovery must redo the WAL
  // updates and release the remaining locks.
  static const uint32_t kFallbackUnlockPoint =
      chaos::Injector::Global().Point("txn.fallback.unlock");
  bool release_abandoned = false;
  // Per ref: one WRITE for version + (still-held) state + value, then
  // one WRITE to unlock — the two-op commit of REMOTE_WRITE_BACK
  // (Fig. 5). All of a node's WRITEs ride one doorbell and every
  // target's doorbell is rung before any is polled (PhaseScatter), so k
  // commit targets overlap into ~1 round trip. Each per-target send
  // queue executes in post order, so each unlock still lands after its
  // write-back exactly as in the scalar sequence.
  std::vector<std::vector<uint8_t>> blobs(refs_.size());
  struct Posted {
    size_t ref_idx;
    bool unlock;
  };
  // (target, wr_id) -> which ref/kind, for failure handling.
  std::vector<std::pair<std::pair<int, rdma::WrId>, Posted>> owners;
  rdma::PhaseScatter scatter(cluster_.fabric(),
                             rdma::SendQueue::Config{cfg_.rdma_batch_window},
                             &stat::ScatterWritebackIds());
  for (size_t i = 0; i < refs_.size(); ++i) {
    Ref& ref = refs_[i];
    // Chain-locked dirty remote refs are written back here too — the
    // state-word field of the blob re-writes the chain's own lock word
    // (a no-op) — but their unlock belongs to the chain, not this piece.
    const bool chain_write_back = ref.chain_locked && ref.dirty && !ref.local;
    if (!ref.locked && !chain_write_back) {
      continue;
    }
    if (!release_abandoned &&
        chaos::Check(kFallbackUnlockPoint, ref.node).kind ==
            chaos::Decision::Kind::kAbandon) {
      release_abandoned = true;
    }
    if (release_abandoned) {
      continue;  // simulated death mid-release: lock stays held
    }
    rdma::SendQueue& sq = scatter.To(ref.node);
    if (ref.dirty) {
      blobs[i].resize(12 + ref.value_size);
      const uint32_t new_version = ref.version + 1;
      std::memcpy(blobs[i].data(), &new_version, 4);
      std::memcpy(blobs[i].data() + 4, &locked_val, 8);
      std::memcpy(blobs[i].data() + 12, ref.buf.data(), ref.value_size);
      const rdma::WrId id =
          sq.PostWrite(ref.entry_off + store::kEntryVersionOffset,
                       blobs[i].data(), blobs[i].size());
      owners.emplace_back(std::make_pair(ref.node, id), Posted{i, false});
    }
    if (ref.locked) {
      const rdma::WrId id = sq.PostWrite(
          ref.entry_off + store::kEntryStateOffset, &init, sizeof(init));
      owners.emplace_back(std::make_pair(ref.node, id), Posted{i, true});
    }
  }
  std::vector<rdma::ScatterCompletion> comps;
  scatter.Gather(&comps);
  for (const rdma::ScatterCompletion& sc : comps) {
    if (sc.comp.status == rdma::OpStatus::kOk) {
      continue;
    }
    const Posted* p = nullptr;
    for (const auto& [owner_key, posted] : owners) {
      if (owner_key.first == sc.target && owner_key.second == sc.comp.wr_id) {
        p = &posted;
        break;
      }
    }
    // Target down mid-commit: the transaction has committed, so retry
    // until the node recovers (§4.6(e)), preserving per-ref order
    // (scatter completions come back in per-target post order, so a
    // write-back failure is retried before its unlock, which also
    // failed and follows later in `comps`).
    Ref& ref = refs_[p->ref_idx];
    if (!p->unlock) {
      for (int attempt = 0; attempt < kWriteBackRetries; ++attempt) {
        if (cluster_.fabric().Write(
                ref.node, ref.entry_off + store::kEntryVersionOffset,
                blobs[p->ref_idx].data(),
                blobs[p->ref_idx].size()) == rdma::OpStatus::kOk) {
          break;
        }
        SleepUs(1000);
      }
    } else {
      UnlockRef(ref);
    }
  }
  if (!release_abandoned) {
    for (Ref& ref : refs_) {
      ref.locked = false;
    }
  }
  return !release_abandoned;
}

void Transaction::ReleaseRemoteLocks() {
  for (Ref& ref : refs_) {
    if (ref.locked) {
      UnlockRef(ref);
      ref.locked = false;
    }
    ref.leased = false;
  }
}

void Transaction::ResetRefsForRetry() {
  for (Ref& ref : refs_) {
    ref.found = false;
    ref.entry_off = ~uint64_t{0};
    ref.locked = false;
    ref.leased = false;
    ref.dirty = false;
    ref.version = 0;
    ref.lease_end = 0;
  }
  wal_buffer_.clear();
  replay_wal_sum_ = 0;
}

TxnStatus Transaction::Run(const Body& body) {
  assert(!ran_ && "a Transaction object runs once");
  ran_ = true;
  SortRefs();
  txn_id_ = cluster_.NextTxnId(worker_->node(), worker_->worker_id());
  TxnStats& stats = worker_->stats();

  int start_conflicts = 0;
  int attempt = 0;
  int lock_aborts = 0;
  // The retry budget and its lock-abort extension come from the live
  // abort-cause mix (AdaptiveRetryLimit); with adaptive_retry_budget off
  // or too few samples they equal the static knobs.
  const int base_budget = worker_->AdaptiveRetryLimit();
  const int lock_extra = worker_->AdaptiveLockExtraRetries();
  int retry_budget = base_budget;
  while (attempt < retry_budget) {
    WindowGuard window(cluster_);
    const StartResult sr = StartPhase();
    if (sr == StartResult::kNodeDown) {
      ReleaseRemoteLocks();
      ++stats.node_failures;
      stat::Registry::Global().Add(Ids().node_failure);
      return TxnStatus::kNodeFailure;
    }
    if (sr == StartResult::kConflict) {
      ReleaseRemoteLocks();
      ResetRefsForRetry();
      ++stats.start_conflicts;
      stat::Registry::Global().Add(Ids().start_conflict);
      if (++start_conflicts > cfg_.start_retry_limit) {
        break;  // heavy remote contention: let the fallback serialize us
      }
      worker_->Backoff(start_conflicts);
      continue;
    }

    user_abort_ = false;
    wal_buffer_.clear();
    replay_wal_sum_ = 0;
    // HTM-mode structural ops append notification-only records here;
    // an aborted attempt's records must not survive into the retry
    // (plain heap state is not rolled back by the HTM emulator).
    pending_local_ops_.clear();
    htm::HtmThread& htm = worker_->htm();
    unsigned hstatus;
    {
      stat::ScopedTimer attempt_phase(Ids().htm_attempt_ns);
      hstatus = htm.Transact([&] {
        if (!body(*this)) {
          user_abort_ = true;
          htm.Abort(kCodeUser);
        }
        if (replay::Armed() &&
            !replay::Recorder::Global().CommitAllowed()) {
          // Replay mode: the recording says this op committed fewer
          // transactions than the body just tried to — suppress the
          // extra commit so the replayed schedule matches the log.
          user_abort_ = true;
          htm.Abort(kCodeUser);
        }
        ConfirmLeasesInHtm();
        WriteWalInHtm();
        if (replay::Armed()) {
          // Stage inside the region: the publish hook turns this into a
          // kTxnCommit stamped with the critical-section sequence iff
          // XEND actually commits; a rollback discards it.
          ReplayStageCommitHtm();
        }
      });
    }

    if (hstatus == htm::kCommitted) {
      bool release_clean;
      {
        stat::ScopedTimer commit_phase(Ids().commit_ns);
        if (cfg_.logging) {
          bool any_remote_effect = false;
          for (const Ref& ref : refs_) {
            any_remote_effect |=
                ref.locked || (ref.chain_locked && ref.dirty && !ref.local);
          }
          if (any_remote_effect) {
            // Externalization barrier: the WAL staged inside the HTM
            // region must be sealed (recovery-visible) before the first
            // remote write-back, or a crash mid-write-back could not be
            // redone. Local-only commits skip this — their effects live
            // in whole-system-persistent memory and need no redo — so
            // their epochs keep batching.
            cluster_.log(worker_->node())->Externalize(worker_->worker_id());
          }
        }
        release_clean = WriteBackAndUnlock();
        if (replay::Armed()) {
          bool any_locked = false;
          for (const Ref& ref : refs_) {
            any_locked |= ref.locked;
          }
          if (any_locked) {
            replay::Recorder::Global().RecordLockRelease(txn_id_,
                                                         !release_clean);
          }
        }
        if (release_clean && cfg_.logging) {
          NvramLog* log = cluster_.log(worker_->node());
          if (log->TryAppend(worker_->worker_id(), LogType::kComplete,
                             txn_id_, nullptr, 0) == AppendStatus::kFull &&
              log->ReclaimSpace(worker_->worker_id())) {
            // Dropping a Complete is benign (redo is version-gated and
            // lock release idempotent), but try once more after
            // reclaiming — the record is what lets the epoch recycle. A
            // kFaulted append is the modeled drop itself; no retry.
            log->Append(worker_->worker_id(), LogType::kComplete, txn_id_,
                        nullptr, 0);
          }
          log->NoteCommit(worker_->worker_id(), txn_id_);
        }
      }
      if (release_clean) {
        // A chaos-abandoned release simulates the machine dying
        // mid-commit; a dead machine reports nothing.
        NotifyCommittedWrites();
      }
      ++stats.committed;
      stat::Registry::Global().Add(Ids().commit);
      return TxnStatus::kCommitted;
    }

    ReleaseRemoteLocks();
    ResetRefsForRetry();
    if (user_abort_) {
      ++stats.user_aborts;
      stat::Registry::Global().Add(Ids().user_abort);
      return TxnStatus::kUserAbort;
    }
    bool lock_observed = false;
    AbortMixWindow& mix = worker_->abort_mix();
    if (hstatus & htm::kAbortCapacity) {
      ++stats.htm_capacity_aborts;
      mix.Observe(&mix.capacity);
    } else if (hstatus & htm::kAbortExplicit) {
      const unsigned code = htm::AbortUserCode(hstatus);
      if (code == kCodeLogFull) {
        // The in-HTM WAL append found the segment full; reclaim durable
        // completed epochs out here and retry. Deterministic like a
        // capacity overflow, so it feeds that bucket.
        cluster_.log(worker_->node())->ReclaimSpace(worker_->worker_id());
        ++stats.htm_capacity_aborts;
        mix.Observe(&mix.capacity);
      } else if (code == kCodeLease) {
        ++stats.htm_lease_aborts;
        stat::Registry::Global().Add(Ids().lease_abort);
        mix.Observe(&mix.conflict);
      } else {
        ++stats.htm_lock_aborts;
        stat::Registry::Global().Add(Ids().lock_abort);
        lock_observed = true;
        mix.Observe(&mix.lock);
      }
    } else {
      ++stats.htm_conflict_aborts;
      mix.Observe(&mix.conflict);
    }
    ++attempt;
    if (lock_observed && lock_extra > 0) {
      // A lock-observed XABORT means the holder is mid-commit: grant up
      // to lock_extra extra attempts and wait it out with the stronger
      // bounded backoff, rather than burning straight through the budget
      // into the ~1000x-costlier 2PL fallback.
      ++lock_aborts;
      retry_budget = base_budget + std::min(lock_aborts, lock_extra);
      stat::Registry::Global().Add(Ids().lock_backoff);
      worker_->LockBackoff(lock_aborts);
    } else {
      worker_->Backoff(attempt);
    }
  }

  ++stats.fallbacks;
  stat::Registry::Global().Add(Ids().fallback);
  return RunFallback(body);
}

// --- body accessors ----------------------------------------------------------

bool Transaction::LocalReadInHtm(Ref& ref, void* out) {
  store::ClusterHashTable* table = cluster_.hash_table(ref.node, ref.table);
  const uint64_t entry = table->FindEntry(ref.key);
  if (entry == store::kInvalidOffset) {
    return false;
  }
  htm::HtmThread& htm = worker_->htm();
  // LOCAL_READ (Fig. 6): a write lock by a distributed transaction means
  // we must abort; a read lease is fine for readers. The state word is
  // subscribed AFTER the value read (lazy lock subscription, rtmseq):
  // probing first would keep the word in the HTM read set across the
  // value copy, so a holder's unlock store aborts this reader
  // needlessly. Reordering is safe inside the region — if the word turns
  // out write-locked we abort and the speculative read is discarded
  // before the body can observe it.
  htm.Read(out, table->ValuePtr(entry), ref.value_size);
  const uint64_t state = htm.Load(table->StatePtr(entry));
  if (IsWriteLocked(state) && !ref.chain_locked) {
    // A chain-locked ref's write lock is necessarily our own chain's
    // (held continuously across the pieces), never a conflict.
    htm.Abort(kCodeLocked);
  }
  return true;
}

bool Transaction::LocalWriteInHtm(Ref& ref, const void* value) {
  store::ClusterHashTable* table = cluster_.hash_table(ref.node, ref.table);
  const uint64_t entry = table->FindEntry(ref.key);
  if (entry == store::kInvalidOffset) {
    return false;
  }
  htm::HtmThread& htm = worker_->htm();
  // Elastic freeze gate: local HTM writes take no lock at all, so a
  // frozen bucket must abort the attempt here or a post-catch-up local
  // commit would race the ownership flip.
  if (!GateAllows(cluster_, ref.table, ref.key)) {
    htm.Abort(kCodeLocked);
  }
  // LOCAL_WRITE (Fig. 6): write the version bump and the value
  // speculatively, then subscribe the state word as late as possible
  // (lazy lock subscription, rtmseq): probing before the data writes
  // would hold the word in the HTM read set across the value copy and
  // abort needlessly on the holder's unlock store. Safe to defer — if
  // the word turns out locked/leased we abort and the region's stores
  // are discarded wholesale.
  const uint32_t version = htm.Load(table->VersionPtr(entry));
  htm.Store(table->VersionPtr(entry), version + 1);
  htm.Write(table->ValuePtr(entry), value, ref.value_size);
  // Abort on a write lock or an unexpired lease; actively clear an
  // expired lease (side effect: the state word joins the HTM write set,
  // which is why LOCAL_READ does not do this). A chain-locked ref's
  // write lock is our own chain's — tolerated, and left in place.
  const uint64_t state = htm.Load(table->StatePtr(entry));
  if (IsWriteLocked(state) && !ref.chain_locked) {
    htm.Abort(kCodeLocked);
  }
  if (HasLease(state)) {
    // Fig. 11: the default reuses the Start-phase softtime; the (b)
    // strategy reads it transactionally here, making every local write
    // conflict-prone against the timer thread.
    const uint64_t now =
        cfg_.softtime_read_every_local_op
            ? htm.Load(cluster_.synctime().Word(worker_->node()))
            : now_start_;
    if (!LeaseExpired(LeaseEnd(state), now, cfg_.delta_us)) {
      htm.Abort(kCodeLocked);
    }
    htm.Store(table->StatePtr(entry), kStateInit);
  }
  ref.entry_off = entry;
  ref.version = version;
  // Local HTM refs are never `locked`, so WriteBackAndUnlock ignores
  // them; the dirty flag is what NotifyCommittedWrites keys off.
  ref.dirty = true;
  RecordWalUpdate(ref, value);
  return true;
}

bool Transaction::LocalWriteRangeInHtm(Ref& ref, uint32_t offset,
                                       const void* data, uint32_t len) {
  store::ClusterHashTable* table = cluster_.hash_table(ref.node, ref.table);
  const uint64_t entry = table->FindEntry(ref.key);
  if (entry == store::kInvalidOffset) {
    return false;
  }
  htm::HtmThread& htm = worker_->htm();
  if (!GateAllows(cluster_, ref.table, ref.key)) {
    htm.Abort(kCodeLocked);
  }
  // The sliced LOCAL_WRITE: only the slice's lines (plus the header)
  // enter the HTM write set — this is what lets a chopped piece update
  // one slice of a value whose full footprint overflows the budget.
  const uint32_t version = htm.Load(table->VersionPtr(entry));
  htm.Store(table->VersionPtr(entry), version + 1);
  htm.Write(static_cast<uint8_t*>(table->ValuePtr(entry)) + offset, data,
            len);
  // Lazy state subscription, identical to LocalWriteInHtm.
  const uint64_t state = htm.Load(table->StatePtr(entry));
  if (IsWriteLocked(state) && !ref.chain_locked) {
    htm.Abort(kCodeLocked);
  }
  if (HasLease(state)) {
    const uint64_t now =
        cfg_.softtime_read_every_local_op
            ? htm.Load(cluster_.synctime().Word(worker_->node()))
            : now_start_;
    if (!LeaseExpired(LeaseEnd(state), now, cfg_.delta_us)) {
      htm.Abort(kCodeLocked);
    }
    htm.Store(table->StatePtr(entry), kStateInit);
  }
  ref.entry_off = entry;
  ref.version = version;
  ref.dirty = true;
  if (cfg_.logging || replay::Armed()) {
    // The WAL (and the replay digest) record full values; compose the
    // post-write image (the transactional read overlays our buffered
    // slice). Logging/recording-only cost.
    std::vector<uint8_t> full(ref.value_size);
    htm.Read(full.data(), table->ValuePtr(entry), ref.value_size);
    RecordWalUpdate(ref, full.data());
  }
  return true;
}

void Transaction::NotifyCommittedWrites() {
  Cluster::ElasticHooks* hooks = cluster_.elastic_hooks();
  if (hooks == nullptr) {
    return;
  }
  for (Ref& ref : refs_) {
    if (!ref.dirty) {
      continue;
    }
    if (ref.local && mode_ == Mode::kHtm) {
      // Local HTM writes landed directly in the table; read the
      // committed version/value back with strong accesses. A concurrent
      // later writer may bump them again in between — harmless, the
      // dual-write install keeps the max version.
      store::ClusterHashTable* table = cluster_.hash_table(ref.node, ref.table);
      const uint64_t entry = table->FindEntry(ref.key);
      if (entry == store::kInvalidOffset) {
        continue;  // removed since; the remove's own report covers it
      }
      const uint32_t version = htm::Load(table->VersionPtr(entry));
      std::vector<uint8_t> value(ref.value_size);
      htm::ReadBytes(value.data(), table->ValuePtr(entry), ref.value_size);
      hooks->OnCommittedWrite(ref.node, ref.table, ref.key, version,
                              value.data(), ref.value_size);
    } else {
      hooks->OnCommittedWrite(ref.node, ref.table, ref.key, ref.version + 1,
                              ref.buf.data(), ref.value_size);
    }
  }
  for (const PendingOp& op : pending_local_ops_) {
    switch (op.op) {
      case PendingOp::kHashInsert:
        hooks->OnStructuralOp(worker_->node(), op.table, op.key,
                              /*inserted=*/true, op.value.data(),
                              static_cast<uint32_t>(op.value.size()));
        break;
      case PendingOp::kHashRemove:
        hooks->OnStructuralOp(worker_->node(), op.table, op.key,
                              /*inserted=*/false, nullptr, 0);
        break;
      default:
        break;  // ordered stores are not elastic-managed
    }
  }
}

bool Transaction::Read(int table, uint64_t key, void* out) {
  Ref* ref = FindRef(table, key);
  assert(ref != nullptr && "record accessed without declaration");
  if (mode_ == Mode::kFallback || !ref->local) {
    if (!ref->found) {
      return false;
    }
    std::memcpy(out, ref->buf.data(), ref->value_size);
    return true;
  }
  return LocalReadInHtm(*ref, out);
}

bool Transaction::Write(int table, uint64_t key, const void* value) {
  Ref* ref = FindRef(table, key);
  assert(ref != nullptr && ref->write && "write requires AddWrite");
  if (mode_ == Mode::kFallback || !ref->local) {
    if (!ref->found) {
      return false;
    }
    std::memcpy(ref->buf.data(), value, ref->value_size);
    if (!ref->dirty) {
      ref->dirty = true;
    }
    return true;
  }
  return LocalWriteInHtm(*ref, value);
}

bool Transaction::WriteRange(int table, uint64_t key, uint32_t offset,
                             const void* data, uint32_t len) {
  Ref* ref = FindRef(table, key);
  assert(ref != nullptr && ref->write && "write requires AddWrite");
  assert(offset + len <= ref->value_size && "range outside the value");
  if (mode_ == Mode::kFallback || !ref->local) {
    if (!ref->found) {
      return false;
    }
    // Overlay the slice on the prefetched image; write-back ships the
    // composed full value.
    std::memcpy(ref->buf.data() + offset, data, len);
    ref->dirty = true;
    return true;
  }
  return LocalWriteRangeInHtm(*ref, offset, data, len);
}

bool Transaction::ReadDynamic(int table, uint64_t key, void* out) {
  assert(cluster_.PartitionOf(table, key) == worker_->node() &&
         "ReadDynamic is for locally hosted records");
  if (mode_ == Mode::kHtm) {
    Ref scratch;
    scratch.table = table;
    scratch.key = key;
    scratch.node = worker_->node();
    scratch.local = true;
    scratch.value_size = cluster_.table(table).value_size;
    return LocalReadInHtm(scratch, out);
  }
  // Fallback: lease-as-discovered. The lease is confirmed together with
  // the static ones before any update is applied.
  Ref ref;
  ref.table = table;
  ref.key = key;
  ref.write = false;
  ref.node = worker_->node();
  ref.local = true;
  ref.value_size = cluster_.table(table).value_size;
  if (!ResolveRef(ref) || !ref.found) {
    return false;
  }
  if (AcquireLease(ref, /*wait=*/true) != StartResult::kOk ||
      PrefetchRef(ref) != StartResult::kOk) {
    dynamic_conflict_ = true;
    return false;
  }
  std::memcpy(out, ref.buf.data(), ref.value_size);
  dynamic_refs_.push_back(std::move(ref));
  return true;
}

bool Transaction::Insert(int table, uint64_t key, const void* value) {
  assert(cluster_.PartitionOf(table, key) == worker_->node() &&
         "in-transaction INSERT must target the local partition; remote "
         "inserts are shipped outside transactions (paper footnote 5)");
  store::ClusterHashTable* host = cluster_.hash_table(worker_->node(), table);
  if (mode_ == Mode::kHtm) {
    const bool ok = host->Insert(key, value);
    if (ok && cluster_.elastic_hooks() != nullptr) {
      // Notification-only record: the insert already landed in the
      // table; NotifyCommittedWrites replays it to the elastic hooks
      // after commit (aborted attempts clear pending_local_ops_).
      pending_local_ops_.push_back(
          PendingOp{PendingOp::kHashInsert, table, key,
                    std::vector<uint8_t>(
                        static_cast<const uint8_t*>(value),
                        static_cast<const uint8_t*>(value) +
                            cluster_.table(table).value_size)});
    }
    return ok;
  }
  pending_local_ops_.push_back(
      PendingOp{PendingOp::kHashInsert, table, key,
                std::vector<uint8_t>(static_cast<const uint8_t*>(value),
                                     static_cast<const uint8_t*>(value) +
                                         cluster_.table(table).value_size)});
  return true;
}

bool Transaction::Remove(int table, uint64_t key) {
  assert(cluster_.PartitionOf(table, key) == worker_->node());
  store::ClusterHashTable* host = cluster_.hash_table(worker_->node(), table);
  if (mode_ == Mode::kHtm) {
    const bool ok = host->Remove(key);
    if (ok && cluster_.elastic_hooks() != nullptr) {
      pending_local_ops_.push_back(
          PendingOp{PendingOp::kHashRemove, table, key, {}});
    }
    return ok;
  }
  pending_local_ops_.push_back(
      PendingOp{PendingOp::kHashRemove, table, key, {}});
  return true;
}

bool Transaction::OrderedInsert(int table, uint64_t key, const void* value) {
  store::BPlusTree* tree = cluster_.ordered_table(worker_->node(), table);
  if (mode_ == Mode::kHtm) {
    return tree->Insert(key, value);
  }
  pending_local_ops_.push_back(
      PendingOp{PendingOp::kOrderedInsert, table, key,
                std::vector<uint8_t>(static_cast<const uint8_t*>(value),
                                     static_cast<const uint8_t*>(value) +
                                         cluster_.table(table).value_size)});
  return true;
}

bool Transaction::OrderedPut(int table, uint64_t key, const void* value) {
  store::BPlusTree* tree = cluster_.ordered_table(worker_->node(), table);
  if (mode_ == Mode::kHtm) {
    return tree->Put(key, value);
  }
  pending_local_ops_.push_back(
      PendingOp{PendingOp::kOrderedPut, table, key,
                std::vector<uint8_t>(static_cast<const uint8_t*>(value),
                                     static_cast<const uint8_t*>(value) +
                                         cluster_.table(table).value_size)});
  return true;
}

bool Transaction::OrderedRemove(int table, uint64_t key) {
  store::BPlusTree* tree = cluster_.ordered_table(worker_->node(), table);
  if (mode_ == Mode::kHtm) {
    return tree->Remove(key);
  }
  pending_local_ops_.push_back(
      PendingOp{PendingOp::kOrderedRemove, table, key, {}});
  return true;
}

bool Transaction::OrderedGet(int table, uint64_t key, void* out) {
  store::BPlusTree* tree = cluster_.ordered_table(worker_->node(), table);
  if (mode_ == Mode::kHtm) {
    return tree->Get(key, out);
  }
  bool found = false;
  htm::HtmThread& htm = worker_->htm();
  while (htm.Transact([&] { found = tree->Get(key, out); }) !=
         htm::kCommitted) {
  }
  return found;
}

size_t Transaction::OrderedScan(
    int table, uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, const void*)>& fn) {
  store::BPlusTree* tree = cluster_.ordered_table(worker_->node(), table);
  if (mode_ == Mode::kHtm) {
    return tree->Scan(lo, hi, fn);
  }
  size_t count = 0;
  htm::HtmThread& htm = worker_->htm();
  // Buffer results so a conflict-retry does not re-invoke fn.
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> rows;
  const uint32_t value_size = cluster_.table(table).value_size;
  while (true) {
    rows.clear();
    const unsigned status = htm.Transact([&] {
      tree->Scan(lo, hi, [&](uint64_t key, const void* value) {
        rows.emplace_back(key,
                          std::vector<uint8_t>(
                              static_cast<const uint8_t*>(value),
                              static_cast<const uint8_t*>(value) + value_size));
        return true;
      });
    });
    if (status == htm::kCommitted) {
      break;
    }
  }
  for (const auto& [key, value] : rows) {
    ++count;
    if (!fn(key, value.data())) {
      break;
    }
  }
  return count;
}

bool Transaction::OrderedFindFloor(int table, uint64_t lo, uint64_t bound,
                                   uint64_t* key_out, void* value_out) {
  store::BPlusTree* tree = cluster_.ordered_table(worker_->node(), table);
  if (mode_ == Mode::kHtm) {
    return tree->FindFloor(lo, bound, key_out, value_out);
  }
  bool found = false;
  htm::HtmThread& htm = worker_->htm();
  while (htm.Transact([&] {
           found = tree->FindFloor(lo, bound, key_out, value_out);
         }) != htm::kCommitted) {
  }
  return found;
}

// --- fallback path -------------------------------------------------------------

Transaction::StartResult Transaction::OptimisticFallbackAcquire() {
  // Like BatchedStartRemote, this posts CASes directly; check the
  // elastic freeze gate up front. Chain-locked refs are exempt: their
  // lock is already held by the chain, so they are prefetch-only here.
  for (const Ref& ref : refs_) {
    if (ref.found && !ref.chain_locked &&
        !GateAllows(cluster_, ref.table, ref.key)) {
      return StartResult::kConflict;
    }
  }
  stat::ScopedTimer phase(Ids().lock_acquire_ns);
  const uint64_t locked_val =
      MakeWriteLocked(static_cast<uint8_t>(worker_->node()));
  const uint64_t lease_val = MakeLease(lease_end_);
  const bool glob =
      cluster_.fabric().atomic_level() == rdma::AtomicLevel::kGlob;

  // Local records first, via the cheap processor CAS where the NIC
  // level allows it: if a neighbour's record is already contended there
  // is no point ringing any doorbell.
  bool contended = false;
  for (Ref& ref : refs_) {
    if (!ref.found || !(ref.local && glob) || ref.chain_locked) {
      continue;
    }
    const bool wants_lock = ref.write || !cfg_.enable_read_lease;
    uint64_t observed = 0;
    StateCas(ref, kStateInit, wants_lock ? locked_val : lease_val, &observed);
    if (observed == kStateInit) {
      if (wants_lock) {
        ref.locked = true;
      } else {
        ref.leased = true;
        ref.lease_end = lease_end_;
      }
      continue;
    }
    if (!wants_lock && HasLease(observed)) {
      const uint64_t end = LeaseEnd(observed);
      const uint64_t now = cluster_.synctime().ReadStrong(worker_->node());
      if (end > now + 2 * cfg_.delta_us + cfg_.lease_rw_us / 8) {
        ref.leased = true;
        ref.lease_end = end;
        continue;
      }
    }
    contended = true;
    break;
  }
  if (contended) {
    ReleaseRemoteLocks();
    return StartResult::kConflict;
  }

  // One non-blocking CAS per remaining record — every target's doorbell
  // rings before any completion is polled, so the whole lock set costs
  // ~1 overlapped round trip when uncontended. Acquisition order is
  // arbitrary, which is safe exactly because nothing here waits: on any
  // contention every acquired ref is released below before the ordered
  // serial loop re-acquires from scratch, so no worker ever blocks
  // while holding out-of-order locks (deadlock freedom, §6.2).
  struct Post {
    size_t ref_idx;
    bool wants_lock;
  };
  std::vector<std::pair<std::pair<int, rdma::WrId>, Post>> owners;
  StartResult fail = StartResult::kOk;
  {
    rdma::PhaseScatter scatter(cluster_.fabric(),
                               rdma::SendQueue::Config{cfg_.rdma_batch_window},
                               &stat::ScatterFallbackIds());
    for (size_t i = 0; i < refs_.size(); ++i) {
      Ref& ref = refs_[i];
      if (!ref.found || (ref.local && glob) || ref.chain_locked) {
        continue;
      }
      const bool wants_lock = ref.write || !cfg_.enable_read_lease;
      const uint64_t state_off = ref.entry_off + store::kEntryStateOffset;
      const rdma::WrId id = scatter.To(ref.node).PostCas(
          state_off, kStateInit, wants_lock ? locked_val : lease_val);
      owners.emplace_back(std::make_pair(ref.node, id), Post{i, wants_lock});
    }
    std::vector<rdma::ScatterCompletion> comps;
    scatter.Gather(&comps);
    const uint64_t now = cluster_.synctime().ReadStrong(worker_->node());
    for (const rdma::ScatterCompletion& sc : comps) {
      const Post* p = nullptr;
      for (const auto& [owner_key, post] : owners) {
        if (owner_key.first == sc.target &&
            owner_key.second == sc.comp.wr_id) {
          p = &post;
          break;
        }
      }
      Ref& ref = refs_[p->ref_idx];
      if (sc.comp.status != rdma::OpStatus::kOk) {
        fail = StartResult::kNodeDown;
        continue;  // keep marking acquisitions so the release sees them
      }
      if (sc.comp.observed == kStateInit) {
        if (p->wants_lock) {
          ref.locked = true;
        } else {
          ref.leased = true;
          ref.lease_end = lease_end_;
        }
        continue;
      }
      if (!p->wants_lock && HasLease(sc.comp.observed)) {
        const uint64_t end = LeaseEnd(sc.comp.observed);
        if (end > now + 2 * cfg_.delta_us + cfg_.lease_rw_us / 8) {
          ref.leased = true;
          ref.lease_end = end;
          continue;
        }
      }
      contended = true;
    }
  }
  if (fail != StartResult::kOk || contended) {
    ReleaseRemoteLocks();
    return fail != StartResult::kOk ? fail : StartResult::kConflict;
  }

  // Everything acquired: prefetch all images in one more overlapped
  // round (local records too — the serial fallback's PrefetchRef also
  // reads them through the fabric).
  std::vector<std::vector<uint8_t>> raws(refs_.size());
  {
    rdma::PhaseScatter scatter(cluster_.fabric(),
                               rdma::SendQueue::Config{cfg_.rdma_batch_window},
                               &stat::ScatterPrefetchIds());
    for (size_t i = 0; i < refs_.size(); ++i) {
      Ref& ref = refs_[i];
      if (!ref.found) {
        continue;
      }
      raws[i].resize(sizeof(store::EntryHeader) + ref.value_size);
      scatter.To(ref.node).PostRead(ref.entry_off, raws[i].data(),
                                    raws[i].size());
    }
    std::vector<rdma::ScatterCompletion> comps;
    scatter.Gather(&comps);
    for (const rdma::ScatterCompletion& sc : comps) {
      if (sc.comp.status != rdma::OpStatus::kOk) {
        fail = StartResult::kNodeDown;
      }
    }
  }
  if (fail != StartResult::kOk) {
    ReleaseRemoteLocks();
    return fail;
  }
  for (size_t i = 0; i < refs_.size(); ++i) {
    if (raws[i].empty()) {
      continue;
    }
    const StartResult sr = PrefetchFromRaw(refs_[i], raws[i].data());
    if (sr != StartResult::kOk) {
      // The entry was deleted under us; release and let the ordered
      // loop (or the next attempt) re-resolve.
      ReleaseRemoteLocks();
      return sr;
    }
  }
  return StartResult::kOk;
}

TxnStatus Transaction::RunFallback(const Body& body) {
  mode_ = Mode::kFallback;
  stat::ScopedTimer fallback_phase(Ids().fallback_ns);
  TxnStats& stats = worker_->stats();
  htm::HtmThread& htm = worker_->htm();

  for (int attempt = 0; attempt < kFallbackAttempts; ++attempt) {
    WindowGuard window(cluster_);
    now_start_ = cluster_.synctime().ReadStrong(worker_->node());
    lease_end_ = now_start_ + cfg_.lease_rw_us;
    // Re-resolve ownership each attempt: a live migration may have
    // flipped a key's home node between attempts.
    for (Ref& ref : refs_) {
      ref.node = cluster_.PartitionOf(ref.table, ref.key);
      ref.local = (ref.node == worker_->node());
    }
    pending_local_ops_.clear();
    wal_buffer_.clear();
    replay_wal_sum_ = 0;

    StartResult fail = StartResult::kOk;
    bool acquired = false;
    if (cfg_.optimistic_fallback_locking) {
      // Optimistic first pass: resolve every chain in lockstep, then try
      // the whole lock set with one non-blocking overlapped CAS scatter.
      // Any contention releases everything (preserving deadlock freedom)
      // and drops to the ordered serial loop below.
      std::vector<Ref*> remote_all;
      for (Ref& ref : refs_) {
        if (ref.local) {
          ResolveRef(ref);
        } else {
          remote_all.push_back(&ref);
        }
      }
      if (!ResolveRemoteRefs(remote_all)) {
        fail = StartResult::kNodeDown;
      } else {
        const StartResult sr = OptimisticFallbackAcquire();
        if (sr == StartResult::kOk) {
          acquired = true;
          stat::Registry::Global().Add(Ids().fallback_optimistic_hit);
        } else if (sr == StartResult::kNodeDown) {
          fail = sr;
        } else {
          stat::Registry::Global().Add(Ids().fallback_fallthrough);
        }
      }
    }
    // Resolve and lock everything — local records included — in the
    // global <table, key> order (refs_ is already sorted), waiting out
    // holders; this order is what makes the waiting deadlock-free.
    if (fail == StartResult::kOk && !acquired) {
      for (Ref& ref : refs_) {
        if (!ResolveRef(ref)) {
          fail = StartResult::kNodeDown;
          break;
        }
        if (!ref.found) {
          continue;
        }
        StartResult result;
        if (ref.chain_locked) {
          result = StartResult::kOk;  // the chain already holds the lock
        } else if (ref.write || !cfg_.enable_read_lease) {
          result = AcquireExclusive(ref, /*wait=*/true);
        } else {
          result = AcquireLease(ref, /*wait=*/true);
        }
        if (result == StartResult::kOk) {
          result = PrefetchRef(ref);
        }
        if (result != StartResult::kOk) {
          fail = result;
          break;
        }
      }
    }
    if (fail == StartResult::kOk) {
      // Leases must be valid before any irreversible update (§6.2): the
      // confirmation is the serialization point of the fallback.
      const uint64_t now = cluster_.synctime().ReadStrong(worker_->node());
      for (const Ref& ref : refs_) {
        if (ref.leased && !LeaseValid(ref.lease_end, now, cfg_.delta_us)) {
          fail = StartResult::kConflict;
          break;
        }
      }
    }
    if (fail != StartResult::kOk) {
      ReleaseRemoteLocks();
      ResetRefsForRetry();
      if (fail == StartResult::kNodeDown) {
        ++stats.node_failures;
        stat::Registry::Global().Add(Ids().node_failure);
        return TxnStatus::kNodeFailure;
      }
      worker_->Backoff(attempt);
      continue;
    }

    user_abort_ = false;
    dynamic_conflict_ = false;
    dynamic_refs_.clear();
    const bool body_ok = body(*this);
    if (dynamic_conflict_) {
      ReleaseRemoteLocks();
      ResetRefsForRetry();
      worker_->Backoff(attempt);
      continue;
    }
    if (!body_ok) {
      ReleaseRemoteLocks();
      ResetRefsForRetry();
      ++stats.user_aborts;
      stat::Registry::Global().Add(Ids().user_abort);
      return TxnStatus::kUserAbort;
    }
    if (replay::Armed() && !replay::Recorder::Global().CommitAllowed()) {
      // Replay mode: the recording committed fewer transactions in this
      // op — suppress the extra commit (see the HTM-path gate).
      ReleaseRemoteLocks();
      ResetRefsForRetry();
      ++stats.user_aborts;
      stat::Registry::Global().Add(Ids().user_abort);
      return TxnStatus::kUserAbort;
    }
    if (!dynamic_refs_.empty()) {
      // Dynamic leases join the pre-body confirmation as the
      // serialization point; all must still be valid before any update.
      const uint64_t now2 = cluster_.synctime().ReadStrong(worker_->node());
      bool dynamic_valid = true;
      for (const Ref& ref : dynamic_refs_) {
        if (!LeaseValid(ref.lease_end, now2, cfg_.delta_us)) {
          dynamic_valid = false;
          break;
        }
      }
      if (!dynamic_valid) {
        ReleaseRemoteLocks();
        ResetRefsForRetry();
        worker_->Backoff(attempt);
        continue;
      }
    }

    // Gather WAL updates for buffered hash writes (local ones were
    // buffered, not applied through LocalWriteInHtm).
    for (Ref& ref : refs_) {
      if (ref.dirty) {
        RecordWalUpdate(ref, ref.buf.data());
      }
    }
    if (cfg_.logging && !wal_buffer_.empty()) {
      NvramLog* log = cluster_.log(worker_->node());
      AppendStatus logged =
          log->TryAppend(worker_->worker_id(), LogType::kWriteAhead, txn_id_,
                         wal_buffer_.data(), wal_buffer_.size());
      if (logged == AppendStatus::kFull &&
          log->ReclaimSpace(worker_->worker_id())) {
        logged = log->TryAppend(worker_->worker_id(), LogType::kWriteAhead,
                                txn_id_, wal_buffer_.data(),
                                wal_buffer_.size());
      }
      if (logged != AppendStatus::kOk) {
        // Log full even after reclaiming (or the append faulted): nothing
        // has been applied yet, so release the locks and retry the attempt
        // instead of committing writes that recovery could not redo.
        ReleaseRemoteLocks();
        ResetRefsForRetry();
        worker_->Backoff(attempt);
        continue;
      }
      // The fallback always externalizes effects (strong write-backs and
      // remote lock releases below), so the WAL epoch must be sealed before
      // any of them become visible to other nodes.
      log->Externalize(worker_->worker_id());
    }

    // Apply: hash-record write-backs (strong writes abort conflicting HTM
    // readers; the state word is locked so local transactions stay away),
    // then the buffered local structural operations, then unlock.
    stat::ScopedTimer commit_phase(Ids().commit_ns);
    const uint64_t locked_val =
        MakeWriteLocked(static_cast<uint8_t>(worker_->node()));
    for (Ref& ref : refs_) {
      // Chain-locked dirty refs are applied too (their blob's state-word
      // field re-writes the chain's own lock word, a no-op); the release
      // loop below still skips them — the chain unlocks after its last
      // piece.
      if (!ref.locked && !(ref.chain_locked && ref.dirty)) {
        continue;
      }
      if (ref.dirty) {
        std::vector<uint8_t> blob(12 + ref.value_size);
        const uint32_t new_version = ref.version + 1;
        std::memcpy(blob.data(), &new_version, 4);
        std::memcpy(blob.data() + 4, &locked_val, 8);
        std::memcpy(blob.data() + 12, ref.buf.data(), ref.value_size);
        if (ref.local) {
          // drtm-lint: allow(TX03 commit write-back of a locked entry, the lock serializes it like an RDMA WRITE)
          htm::StrongWrite(cluster_.hash_table(ref.node, ref.table)
                               ->EntryPtr(ref.entry_off) +
                               store::kEntryVersionOffset,
                           blob.data(), blob.size());
        } else {
          for (int retries = 0; retries < kWriteBackRetries; ++retries) {
            if (cluster_.fabric().Write(
                    ref.node, ref.entry_off + store::kEntryVersionOffset,
                    blob.data(), blob.size()) == rdma::OpStatus::kOk) {
              break;
            }
            SleepUs(1000);
          }
        }
      }
    }
    for (const PendingOp& op : pending_local_ops_) {
      store::ClusterHashTable* hash =
          op.op == PendingOp::kHashInsert || op.op == PendingOp::kHashRemove
              ? cluster_.hash_table(worker_->node(), op.table)
              : nullptr;
      store::BPlusTree* tree =
          hash == nullptr ? cluster_.ordered_table(worker_->node(), op.table)
                          : nullptr;
      while (true) {
        const unsigned status = htm.Transact([&] {
          switch (op.op) {
            case PendingOp::kHashInsert:
              hash->Insert(op.key, op.value.data());
              break;
            case PendingOp::kHashRemove:
              hash->Remove(op.key);
              break;
            case PendingOp::kOrderedInsert:
              tree->Insert(op.key, op.value.data());
              break;
            case PendingOp::kOrderedPut:
              tree->Put(op.key, op.value.data());
              break;
            case PendingOp::kOrderedRemove:
              tree->Remove(op.key);
              break;
          }
        });
        if (status == htm::kCommitted) {
          break;
        }
      }
    }
    if (replay::Armed()) {
      // Every 2PL lock is still held, so the sequence number this
      // records lands inside the critical section — totally ordering the
      // fallback commit against concurrent HTM publishes on its lines.
      ReplayRecordFallbackCommit();
    }
    // Chaos crash point in the release loop: a machine dying here leaves
    // the remaining locks held and never writes the Complete record —
    // recovery must release them from the lock-ahead/WAL logs.
    static const uint32_t kFallbackUnlockPoint =
        chaos::Injector::Global().Point("txn.fallback.unlock");
    bool release_abandoned = false;
    for (Ref& ref : refs_) {
      if (ref.locked) {
        if (!release_abandoned &&
            chaos::Check(kFallbackUnlockPoint, ref.node).kind ==
                chaos::Decision::Kind::kAbandon) {
          release_abandoned = true;
        }
        if (release_abandoned) {
          continue;  // simulated death mid-release: lock stays held
        }
        if (ref.local &&
            cluster_.fabric().atomic_level() == rdma::AtomicLevel::kGlob) {
          uint64_t* addr = cluster_.hash_table(ref.node, ref.table)
                               ->StatePtr(ref.entry_off);
          // drtm-lint: allow(TX03 lock release on a state word we own, stands in for an RDMA WRITE)
          htm::StrongStore(addr, kStateInit);
        } else {
          UnlockRef(ref);
        }
        ref.locked = false;
      }
    }
    if (replay::Armed()) {
      replay::Recorder::Global().RecordLockRelease(txn_id_,
                                                   release_abandoned);
    }
    if (cfg_.logging && !release_abandoned) {
      NvramLog* log = cluster_.log(worker_->node());
      if (log->TryAppend(worker_->worker_id(), LogType::kComplete, txn_id_,
                         nullptr, 0) == AppendStatus::kFull &&
          log->ReclaimSpace(worker_->worker_id())) {
        // Losing a Complete record is benign (redo is version-gated and
        // lock release is idempotent), so a second failure is ignored —
        // and a kFaulted append is the modeled drop itself; no retry.
        log->Append(worker_->worker_id(), LogType::kComplete, txn_id_,
                    nullptr, 0);
      }
      log->NoteCommit(worker_->worker_id(), txn_id_);
    }
    if (!release_abandoned) {
      NotifyCommittedWrites();
    }
    ++stats.committed;
    stat::Registry::Global().Add(Ids().commit);
    return TxnStatus::kCommitted;
  }
  stat::Registry::Global().Add(Ids().exhausted);
  return TxnStatus::kAborted;
}

// --- chain locks (chopped transactions, section 4.6) -------------------------

namespace {

// Resolves a chain lock's owner node and entry offset. Returns false on a
// dead node; *found is false when the key is absent.
bool ResolveChainLock(Worker* worker, ChainLock* lock, bool* found) {
  Cluster& cluster = worker->cluster();
  lock->node = cluster.PartitionOf(lock->table, lock->key);
  store::ClusterHashTable* host = cluster.hash_table(lock->node, lock->table);
  if (lock->node == worker->node()) {
    lock->entry_off = host->FindEntry(lock->key);
    *found = lock->entry_off != store::kInvalidOffset;
    return true;
  }
  store::RemoteKv client(&cluster.fabric(), lock->node, host->geometry(),
                         cluster.cache(worker->node(), lock->node));
  const store::RemoteEntryRef ref = client.Lookup(lock->key);
  if (!cluster.fabric().IsAlive(lock->node)) {
    return false;
  }
  *found = ref.found;
  lock->entry_off = ref.entry_off;
  return true;
}

}  // namespace

TxnStatus AcquireChainLocks(Worker* worker, uint64_t chain_id,
                            std::vector<ChainLock>* locks) {
  Cluster& cluster = worker->cluster();
  const ClusterConfig& cfg = cluster.config();
  // Global <table, key> order, like the 2PL fallback: waiting while
  // holding earlier chain locks is deadlock-free.
  std::sort(locks->begin(), locks->end(),
            [](const ChainLock& a, const ChainLock& b) {
              return a.table != b.table ? a.table < b.table : a.key < b.key;
            });
  for (ChainLock& lock : *locks) {
    bool found = false;
    if (!ResolveChainLock(worker, &lock, &found)) {
      return TxnStatus::kNodeFailure;
    }
    if (!found) {
      return TxnStatus::kAborted;
    }
  }
  if (cfg.logging) {
    // One lock-ahead record for the whole chain, under the chain id: if
    // this machine dies mid-chain, recovery releases the chain locks it
    // still owns (the resumed chain re-acquires them).
    std::vector<LogLock> entries;
    entries.reserve(locks->size());
    for (const ChainLock& lock : *locks) {
      entries.push_back(LogLock{lock.node, lock.table, lock.key,
                                lock.entry_off + store::kEntryStateOffset});
    }
    const std::vector<uint8_t> payload = NvramLog::EncodeLocks(entries);
    NvramLog* log = cluster.log(worker->node());
    AppendStatus logged =
        log->TryAppend(worker->worker_id(), LogType::kLockAhead, chain_id,
                       payload.data(), payload.size());
    if (logged == AppendStatus::kFull &&
        log->ReclaimSpace(worker->worker_id())) {
      logged = log->TryAppend(worker->worker_id(), LogType::kLockAhead,
                              chain_id, payload.data(), payload.size());
    }
    if (logged != AppendStatus::kOk) {
      // Without a durable lock-ahead record a crash mid-chain would strand
      // the chain locks; abort before acquiring any.
      return TxnStatus::kAborted;
    }
    // Seal so the lock-ahead is recoverable before the first CAS makes the
    // chain's locks visible to other nodes.
    log->Externalize(worker->worker_id());
  }
  const uint64_t locked_val =
      MakeWriteLocked(static_cast<uint8_t>(worker->node()));
  for (ChainLock& lock : *locks) {
    if (!GateAllows(cluster, lock.table, lock.key)) {
      ReleaseChainLocks(worker, locks);
      return TxnStatus::kAborted;
    }
    uint64_t expected = kStateInit;
    int tries = 0;
    while (!lock.locked) {
      uint64_t observed = 0;
      rdma::OpStatus cas_status;
      if (lock.node == worker->node() &&
          cluster.fabric().atomic_level() == rdma::AtomicLevel::kGlob) {
        SpinFor(cfg.latency.LocalCasNs());
        uint64_t* addr = cluster.hash_table(lock.node, lock.table)
                             ->StatePtr(lock.entry_off);
        // drtm-lint: allow(TX03 local stand-in for an RDMA CAS verb on GLOB-coherent NICs)
        observed = htm::StrongCas64(addr, expected, locked_val);
        cas_status = rdma::OpStatus::kOk;
      } else {
        cas_status = cluster.fabric().Cas(
            lock.node, lock.entry_off + store::kEntryStateOffset, expected,
            locked_val, &observed);
      }
      if (cas_status != rdma::OpStatus::kOk) {
        ReleaseChainLocks(worker, locks);
        return TxnStatus::kNodeFailure;
      }
      if (observed == expected) {
        lock.locked = true;
        break;
      }
      if (IsWriteLocked(observed)) {
        if (++tries > kWaitTriesLimit) {
          ReleaseChainLocks(worker, locks);
          return TxnStatus::kAborted;
        }
        SleepUs(10 + worker->backoff_rng().NextBounded(50));
        expected = kStateInit;
        continue;
      }
      // A read lease: writers wait for expiry, then CAS it away (Fig. 5).
      const uint64_t end = LeaseEnd(observed);
      while (true) {
        const uint64_t now = cluster.synctime().ReadStrong(worker->node());
        if (LeaseExpired(end, now, cfg.delta_us)) {
          break;
        }
        if (++tries > kWaitTriesLimit) {
          ReleaseChainLocks(worker, locks);
          return TxnStatus::kAborted;
        }
        SleepUs(20);
      }
      expected = observed;
    }
  }
  return TxnStatus::kCommitted;
}

void ReleaseChainLocks(Worker* worker, std::vector<ChainLock>* locks) {
  Cluster& cluster = worker->cluster();
  const uint64_t init = kStateInit;
  for (ChainLock& lock : *locks) {
    if (!lock.locked) {
      continue;
    }
    if (lock.node == worker->node() &&
        cluster.fabric().atomic_level() == rdma::AtomicLevel::kGlob) {
      uint64_t* addr =
          cluster.hash_table(lock.node, lock.table)->StatePtr(lock.entry_off);
      // drtm-lint: allow(TX03 chain-lock release on a state word we own, stands in for an RDMA WRITE)
      htm::StrongStore(addr, init);
    } else {
      for (int attempt = 0; attempt < kWriteBackRetries; ++attempt) {
        if (cluster.fabric().Write(lock.node,
                                   lock.entry_off + store::kEntryStateOffset,
                                   &init, sizeof(init)) ==
            rdma::OpStatus::kOk) {
          break;
        }
        SleepUs(1000);
      }
    }
    lock.locked = false;
  }
}

// --- read-only transactions ----------------------------------------------------

ReadOnlyTransaction::ReadOnlyTransaction(Worker* worker)
    : worker_(worker), cluster_(worker->cluster()) {}

void ReadOnlyTransaction::AddRead(int table, uint64_t key) {
  RoRef ref;
  ref.table = table;
  ref.key = key;
  ref.node = cluster_.PartitionOf(table, key);
  refs_.push_back(std::move(ref));
}

TxnStatus ReadOnlyTransaction::Execute() {
  const ClusterConfig& cfg = cluster_.config();
  TxnStats& stats = worker_->stats();
  std::sort(refs_.begin(), refs_.end(), [](const RoRef& a, const RoRef& b) {
    return a.table != b.table ? a.table < b.table : a.key < b.key;
  });

  const rdma::SendQueue::Config sq_cfg{cfg.rdma_batch_window};
  for (int attempt = 0; attempt < kFallbackAttempts; ++attempt) {
    WindowGuard window(cluster_);
    // Re-resolve ownership each attempt: a live migration may have
    // flipped a key's home node between attempts.
    for (RoRef& ref : refs_) {
      ref.node = cluster_.PartitionOf(ref.table, ref.key);
    }
    const uint64_t now0 = cluster_.synctime().ReadStrong(worker_->node());
    const uint64_t end = now0 + cfg.lease_ro_us;
    const uint64_t desired = MakeLease(end);
    bool conflict = false;
    bool node_down = false;

    // Phase 1: resolve every key; remote chains walk in lockstep with
    // one overlapped doorbell per host per round.
    {
      std::vector<std::unique_ptr<store::RemoteKv>> clients;
      std::vector<store::RemoteKv::LookupTask> tasks;
      std::vector<size_t> task_ref;
      for (size_t i = 0; i < refs_.size(); ++i) {
        RoRef& ref = refs_[i];
        store::ClusterHashTable* host =
            cluster_.hash_table(ref.node, ref.table);
        if (ref.node == worker_->node()) {
          ref.entry_off = host->FindEntry(ref.key);
          ref.found = ref.entry_off != store::kInvalidOffset;
          continue;
        }
        clients.push_back(std::make_unique<store::RemoteKv>(
            &cluster_.fabric(), ref.node, host->geometry(),
            cluster_.cache(worker_->node(), ref.node)));
        store::RemoteKv::LookupTask task;
        task.client = clients.back().get();
        task.key = ref.key;
        tasks.push_back(std::move(task));
        task_ref.push_back(i);
      }
      if (tasks.size() == 1) {
        tasks[0].result = tasks[0].client->Lookup(tasks[0].key);
      } else if (!tasks.empty()) {
        rdma::PhaseScatter scatter(cluster_.fabric(), sq_cfg,
                                   &stat::ScatterLookupIds());
        store::RemoteKv::ScatterLookup(scatter, &tasks);
      }
      for (size_t t = 0; t < tasks.size(); ++t) {
        RoRef& ref = refs_[task_ref[t]];
        if (!cluster_.fabric().IsAlive(ref.node)) {
          node_down = true;
          break;
        }
        ref.found = tasks[t].result.found;
        ref.entry_off = tasks[t].result.entry_off;
      }
    }

    // Phase 2: probe every found record's state word — local via a
    // strong load, all remote probes in one overlapped scatter. A
    // healthy existing lease is shared from the plain READ, CAS-free
    // (an RDMA CAS costs an order of magnitude more, section 6.3).
    std::vector<uint64_t> probes(refs_.size(), 0);
    if (!node_down) {
      rdma::PhaseScatter scatter(cluster_.fabric(), sq_cfg,
                                 &stat::ScatterRoLeaseIds());
      for (size_t i = 0; i < refs_.size(); ++i) {
        RoRef& ref = refs_[i];
        if (!ref.found) {
          continue;
        }
        if (ref.node == worker_->node()) {
          store::ClusterHashTable* host =
              cluster_.hash_table(ref.node, ref.table);
          // drtm-lint: allow(TX03 fallback lease probe, stands in for a one-sided RDMA READ)
          probes[i] = htm::StrongLoad(host->StatePtr(ref.entry_off));
        } else {
          scatter.To(ref.node).PostRead(
              ref.entry_off + store::kEntryStateOffset, &probes[i],
              sizeof(probes[i]));
        }
      }
      std::vector<rdma::ScatterCompletion> comps;
      scatter.Gather(&comps);
      for (const rdma::ScatterCompletion& sc : comps) {
        if (sc.comp.status != rdma::OpStatus::kOk) {
          node_down = true;
        }
      }
    }

    // Phase 3: lease every found record with a common end time via CAS
    // (sections 4.5 and 6.3), seeded by its probe. The first CAS of
    // every record that needs one rides a single overlapped scatter;
    // only CAS failures drop to the scalar share/renew loop.
    std::vector<uint64_t> expected(refs_.size(), kStateInit);
    std::vector<uint64_t> observed(refs_.size(), 0);
    std::vector<bool> need_cas(refs_.size(), false);
    if (!node_down) {
      const bool glob =
          cluster_.fabric().atomic_level() == rdma::AtomicLevel::kGlob;
      rdma::PhaseScatter scatter(cluster_.fabric(), sq_cfg,
                                 &stat::ScatterRoLeaseIds());
      std::vector<std::pair<std::pair<int, rdma::WrId>, size_t>> owners;
      for (size_t i = 0; i < refs_.size(); ++i) {
        RoRef& ref = refs_[i];
        if (!ref.found) {
          continue;
        }
        const bool local = ref.node == worker_->node();
        if (HasLease(probes[i])) {
          const uint64_t lease = LeaseEnd(probes[i]);
          const uint64_t now = cluster_.synctime().ReadStrong(worker_->node());
          if (lease > now + 2 * cfg.delta_us + cfg.lease_ro_us / 8) {
            ref.lease_end = lease;  // share
            continue;
          }
          expected[i] = probes[i];  // expired or short: steal/renew
        } else if (IsWriteLocked(probes[i])) {
          conflict = true;
          break;
        }
        // Elastic freeze gate: sharing an existing lease above is safe
        // (it never extends one), but installing or renewing a lease on
        // a frozen bucket would stretch the revocation wait — retry.
        if (!GateAllows(cluster_, ref.table, ref.key)) {
          conflict = true;
          break;
        }
        need_cas[i] = true;
        if (local && glob) {
          SpinFor(cfg.latency.LocalCasNs());
          store::ClusterHashTable* host =
              cluster_.hash_table(ref.node, ref.table);
          // drtm-lint: allow(TX03 local stand-in for an RDMA CAS verb on GLOB-coherent NICs)
          observed[i] = htm::StrongCas64(host->StatePtr(ref.entry_off),
                                         expected[i], desired);
        } else {
          const rdma::WrId id = scatter.To(ref.node).PostCas(
              ref.entry_off + store::kEntryStateOffset, expected[i], desired);
          owners.emplace_back(std::make_pair(ref.node, id), i);
        }
      }
      std::vector<rdma::ScatterCompletion> comps;
      scatter.Gather(&comps);
      for (const rdma::ScatterCompletion& sc : comps) {
        size_t i = refs_.size();
        for (const auto& [owner_key, idx] : owners) {
          if (owner_key.first == sc.target &&
              owner_key.second == sc.comp.wr_id) {
            i = idx;
            break;
          }
        }
        if (sc.comp.status != rdma::OpStatus::kOk) {
          node_down = true;
          continue;
        }
        observed[i] = sc.comp.observed;
      }
    }
    if (!node_down && !conflict) {
      // Scalar continuation for refs whose batched CAS lost the race.
      for (size_t i = 0; i < refs_.size() && !conflict && !node_down; ++i) {
        if (!need_cas[i]) {
          continue;
        }
        RoRef& ref = refs_[i];
        const bool local = ref.node == worker_->node();
        store::ClusterHashTable* host =
            cluster_.hash_table(ref.node, ref.table);
        uint64_t exp = expected[i];
        uint64_t obs = observed[i];
        while (true) {
          if (obs == exp) {
            ref.lease_end = end;
            break;
          }
          if (IsWriteLocked(obs)) {
            conflict = true;
            break;
          }
          const uint64_t lease = LeaseEnd(obs);
          const uint64_t now = cluster_.synctime().ReadStrong(worker_->node());
          if (!LeaseExpired(lease, now, cfg.delta_us) &&
              lease > now + 2 * cfg.delta_us + cfg.lease_ro_us / 8) {
            ref.lease_end = lease;  // share
            break;
          }
          exp = obs;  // renew a nearly-expired lease / steal an expired one
          if (local &&
              cluster_.fabric().atomic_level() == rdma::AtomicLevel::kGlob) {
            SpinFor(cfg.latency.LocalCasNs());
            // drtm-lint: allow(TX03 local stand-in for an RDMA CAS verb on GLOB-coherent NICs)
            obs = htm::StrongCas64(host->StatePtr(ref.entry_off), exp,
                                   desired);
          } else if (cluster_.fabric().Cas(
                         ref.node, ref.entry_off + store::kEntryStateOffset,
                         exp, desired, &obs) != rdma::OpStatus::kOk) {
            node_down = true;
            break;
          }
        }
      }
    }

    // Phase 4: prefetch every leased record in one overlapped scatter.
    if (!node_down && !conflict) {
      std::vector<std::vector<uint8_t>> raws(refs_.size());
      rdma::PhaseScatter scatter(cluster_.fabric(), sq_cfg,
                                 &stat::ScatterPrefetchIds());
      for (size_t i = 0; i < refs_.size(); ++i) {
        RoRef& ref = refs_[i];
        if (!ref.found) {
          continue;
        }
        ref.buf.resize(cluster_.table(ref.table).value_size);
        raws[i].resize(sizeof(store::EntryHeader) + ref.buf.size());
        scatter.To(ref.node).PostRead(ref.entry_off, raws[i].data(),
                                      raws[i].size());
      }
      std::vector<rdma::ScatterCompletion> comps;
      scatter.Gather(&comps);
      for (const rdma::ScatterCompletion& sc : comps) {
        if (sc.comp.status != rdma::OpStatus::kOk) {
          node_down = true;
        }
      }
      for (size_t i = 0; i < refs_.size() && !node_down; ++i) {
        if (raws[i].empty()) {
          continue;
        }
        RoRef& ref = refs_[i];
        store::EntryHeader header;
        std::memcpy(&header, raws[i].data(), sizeof(header));
        if (header.key != ref.key) {
          conflict = true;  // deleted under us; retry
          break;
        }
        std::memcpy(ref.buf.data(), raws[i].data() + sizeof(header),
                    ref.buf.size());
      }
    }

    if (node_down) {
      ++stats.node_failures;
      stat::Registry::Global().Add(Ids().node_failure);
      return TxnStatus::kNodeFailure;
    }
    if (!conflict) {
      // Confirmation: all leases still valid at one instant (Fig. 8).
      const uint64_t now = cluster_.synctime().ReadStrong(worker_->node());
      bool all_valid = true;
      for (const RoRef& ref : refs_) {
        if (ref.found && !LeaseValid(ref.lease_end, now, cfg.delta_us)) {
          all_valid = false;
          break;
        }
      }
      if (all_valid) {
        ++stats.read_only_committed;
        stat::Registry::Global().Add(Ids().ro_commit);
        return TxnStatus::kCommitted;
      }
    }
    ++stats.read_only_retries;
    stat::Registry::Global().Add(Ids().ro_retry);
    worker_->Backoff(attempt);
  }
  return TxnStatus::kAborted;
}

bool ReadOnlyTransaction::Get(int table, uint64_t key, void* out) const {
  for (const RoRef& ref : refs_) {
    if (ref.table == table && ref.key == key) {
      if (!ref.found) {
        return false;
      }
      std::memcpy(out, ref.buf.data(), ref.buf.size());
      return true;
    }
  }
  return false;
}

uint64_t ReadOnlyTransaction::LeaseEndOf(int table, uint64_t key) const {
  for (const RoRef& ref : refs_) {
    if (ref.table == table && ref.key == key) {
      return ref.found ? ref.lease_end : 0;
    }
  }
  return 0;
}

}  // namespace txn
}  // namespace drtm
