#include "src/txn/transaction.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/common/clock.h"
#include "src/rdma/verbs_batch.h"
#include "src/stat/metrics.h"
#include "src/stat/timer.h"
#include "src/store/kv_layout.h"
#include "src/store/remote_kv.h"
#include "src/txn/lock_state.h"

namespace drtm {
namespace txn {

namespace {

constexpr int kFallbackAttempts = 512;
constexpr int kWaitTriesLimit = 4096;
constexpr int kWriteBackRetries = 2000;

void SleepUs(uint64_t us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

// Registry ids for the transaction-layer counters and phase timers,
// resolved once per process.
struct TxnMetricIds {
  uint32_t commit = 0;
  uint32_t user_abort = 0;
  uint32_t start_conflict = 0;
  uint32_t fallback = 0;
  uint32_t exhausted = 0;
  uint32_t node_failure = 0;
  uint32_t lease_abort = 0;
  uint32_t lock_abort = 0;
  uint32_t ro_commit = 0;
  uint32_t ro_retry = 0;
  uint32_t lock_backoff = 0;
  uint32_t htm_attempt_ns = 0;
  uint32_t fallback_ns = 0;
  uint32_t lock_acquire_ns = 0;
  uint32_t lease_wait_ns = 0;
  uint32_t commit_ns = 0;
};

const TxnMetricIds& Ids() {
  static const TxnMetricIds ids = [] {
    stat::Registry& reg = stat::Registry::Global();
    TxnMetricIds t;
    t.commit = reg.CounterId("txn.commit");
    t.user_abort = reg.CounterId("txn.user_abort");
    t.start_conflict = reg.CounterId("txn.start_conflict");
    t.fallback = reg.CounterId("txn.fallback");
    t.exhausted = reg.CounterId("txn.fallback_exhausted");
    t.node_failure = reg.CounterId("txn.node_failure");
    t.lease_abort = reg.CounterId("txn.lease_abort");
    t.lock_abort = reg.CounterId("txn.lock_abort");
    t.ro_commit = reg.CounterId("txn.readonly.commit");
    t.ro_retry = reg.CounterId("txn.readonly.retry");
    t.lock_backoff = reg.CounterId("txn.lock_backoff");
    t.htm_attempt_ns = reg.TimerId("phase.htm_attempt_ns");
    t.fallback_ns = reg.TimerId("phase.fallback_ns");
    t.lock_acquire_ns = reg.TimerId("phase.lock_acquire_ns");
    t.lease_wait_ns = reg.TimerId("phase.lease_wait_ns");
    t.commit_ns = reg.TimerId("phase.commit_ns");
    return t;
  }();
  return ids;
}

}  // namespace

void TxnStats::Add(const TxnStats& o) {
  committed += o.committed;
  user_aborts += o.user_aborts;
  start_conflicts += o.start_conflicts;
  htm_conflict_aborts += o.htm_conflict_aborts;
  htm_capacity_aborts += o.htm_capacity_aborts;
  htm_lock_aborts += o.htm_lock_aborts;
  htm_lease_aborts += o.htm_lease_aborts;
  fallbacks += o.fallbacks;
  node_failures += o.node_failures;
  read_only_committed += o.read_only_committed;
  read_only_retries += o.read_only_retries;
}

Worker::Worker(Cluster* cluster, int node, int worker_id)
    : cluster_(cluster),
      node_(node),
      worker_id_(worker_id),
      htm_(cluster->config().htm),
      rng_(0x5bd1e995u * static_cast<uint64_t>(node * 131 + worker_id + 7)) {}

void Worker::Backoff(int attempt) {
  const int shift = attempt < 8 ? attempt : 8;
  const uint64_t ceiling = uint64_t{1} << shift;
  SleepUs(1 + rng_.NextBounded(ceiling));
}

void Worker::LockBackoff(int consecutive_lock_aborts) {
  // Ceiling grows 8 -> 256 us: enough for the holder's two-WRITE
  // write-back (a few us modeled) plus queueing, bounded so a stuck
  // holder still sends us to the fallback reasonably fast.
  const int shift =
      consecutive_lock_aborts < 6 ? consecutive_lock_aborts : 6;
  const uint64_t ceiling = uint64_t{4} << shift;
  SleepUs(2 + rng_.NextBounded(ceiling));
}

Transaction::Transaction(Worker* worker)
    : worker_(worker),
      cluster_(worker->cluster()),
      cfg_(worker->cluster().config()) {}

int Transaction::home_node() const { return worker_->node(); }

void Transaction::AddRead(int table, uint64_t key) {
  if (Ref* existing = FindRef(table, key)) {
    (void)existing;  // write subsumes read; duplicate reads are idempotent
    return;
  }
  Ref ref;
  ref.table = table;
  ref.key = key;
  ref.write = false;
  ref.node = cluster_.PartitionOf(table, key);
  ref.local = (ref.node == worker_->node());
  ref.value_size = cluster_.table(table).value_size;
  refs_.push_back(std::move(ref));
}

void Transaction::AddWrite(int table, uint64_t key) {
  if (Ref* existing = FindRef(table, key)) {
    existing->write = true;  // upgrade
    return;
  }
  AddRead(table, key);
  refs_.back().write = true;
}

Transaction::Ref* Transaction::FindRef(int table, uint64_t key) {
  for (Ref& ref : refs_) {
    if (ref.table == table && ref.key == key) {
      return &ref;
    }
  }
  return nullptr;
}

void Transaction::SortRefs() {
  std::sort(refs_.begin(), refs_.end(), [](const Ref& a, const Ref& b) {
    return a.table != b.table ? a.table < b.table : a.key < b.key;
  });
}

// --- lock helpers ------------------------------------------------------------

rdma::OpStatus Transaction::StateCas(const Ref& ref, uint64_t expected,
                                     uint64_t desired, uint64_t* observed) {
  const uint64_t state_off = ref.entry_off + store::kEntryStateOffset;
  if (ref.local &&
      cluster_.fabric().atomic_level() == rdma::AtomicLevel::kGlob) {
    // GLOB-level NICs keep RDMA CAS coherent with processor CAS, so the
    // cheap local atomic is allowed (section 6.3).
    SpinFor(cfg_.latency.LocalCasNs());
    uint64_t* addr =
        cluster_.hash_table(ref.node, ref.table)->StatePtr(ref.entry_off);
    // drtm-lint: allow(TX03 local stand-in for an RDMA CAS verb on GLOB-coherent NICs)
    *observed = htm::StrongCas64(addr, expected, desired);
    return rdma::OpStatus::kOk;
  }
  return cluster_.fabric().Cas(ref.node, state_off, expected, desired,
                               observed);
}

void Transaction::UnlockRef(const Ref& ref) {
  const uint64_t state_off = ref.entry_off + store::kEntryStateOffset;
  const uint64_t init = kStateInit;
  for (int attempt = 0; attempt < kWriteBackRetries; ++attempt) {
    if (cluster_.fabric().Write(ref.node, state_off, &init, sizeof(init)) ==
        rdma::OpStatus::kOk) {
      return;
    }
    // Target down: the paper's surviving workers wait for recovery
    // (Fig. 7(d)); recovery also clears locks from lock-ahead logs.
    SleepUs(1000);
  }
}

Transaction::StartResult Transaction::AcquireExclusive(Ref& ref, bool wait) {
  stat::ScopedTimer phase(Ids().lock_acquire_ns);
  const uint64_t locked_val =
      MakeWriteLocked(static_cast<uint8_t>(worker_->node()));
  uint64_t expected = kStateInit;
  int tries = 0;
  while (true) {
    uint64_t observed = 0;
    if (StateCas(ref, expected, locked_val, &observed) !=
        rdma::OpStatus::kOk) {
      return StartResult::kNodeDown;
    }
    if (observed == expected) {
      ref.locked = true;
      return StartResult::kOk;
    }
    if (IsWriteLocked(observed)) {
      if (!wait || ++tries > kWaitTriesLimit) {
        return StartResult::kConflict;
      }
      SleepUs(10 + worker_->rng().NextBounded(50));
      expected = kStateInit;
      continue;
    }
    // A read lease is present; writers must wait for expiry (Fig. 5).
    const uint64_t end = LeaseEnd(observed);
    while (true) {
      const uint64_t now = cluster_.synctime().ReadStrong(worker_->node());
      if (LeaseExpired(end, now, cfg_.delta_us)) {
        break;
      }
      if (!wait || ++tries > kWaitTriesLimit) {
        return StartResult::kConflict;
      }
      SleepUs(20);
    }
    expected = observed;  // CAS the expired lease away
  }
}

Transaction::StartResult Transaction::AcquireLease(Ref& ref, bool wait) {
  // Fast path: an 8-byte READ of the state word. If a healthy lease is
  // already installed, share it without any CAS — an RDMA CAS costs an
  // order of magnitude more than a small READ (section 6.3), and under
  // read-heavy sharing the optimistic CAS-on-INIT would fail anyway.
  const uint64_t state_off = ref.entry_off + store::kEntryStateOffset;
  uint64_t observed = 0;
  if (cluster_.fabric().Read(ref.node, state_off, &observed,
                             sizeof(observed)) != rdma::OpStatus::kOk) {
    return StartResult::kNodeDown;
  }
  return AcquireLeaseWithState(ref, wait, observed);
}

Transaction::StartResult Transaction::AcquireLeaseWithState(Ref& ref,
                                                            bool wait,
                                                            uint64_t probed) {
  stat::ScopedTimer phase(Ids().lease_wait_ns);
  const uint64_t desired = MakeLease(lease_end_);
  uint64_t expected = kStateInit;
  int tries = 0;
  if (IsWriteLocked(probed)) {
    if (!wait) {
      return StartResult::kConflict;
    }
    // Leave expected = INIT; the CAS loop below waits the lock out.
  } else if (HasLease(probed)) {
    const uint64_t end = LeaseEnd(probed);
    const uint64_t now = cluster_.synctime().ReadStrong(worker_->node());
    if (end > now + 2 * cfg_.delta_us + cfg_.lease_rw_us / 8) {
      ref.leased = true;
      ref.lease_end = end;
      return StartResult::kOk;
    }
    expected = probed;  // expired or short: steal/renew via CAS
  }
  while (true) {
    uint64_t observed = 0;
    if (StateCas(ref, expected, desired, &observed) != rdma::OpStatus::kOk) {
      return StartResult::kNodeDown;
    }
    if (observed == expected) {
      ref.leased = true;
      ref.lease_end = lease_end_;
      return StartResult::kOk;
    }
    if (IsWriteLocked(observed)) {
      if (!wait || ++tries > kWaitTriesLimit) {
        return StartResult::kConflict;
      }
      SleepUs(10 + worker_->rng().NextBounded(50));
      expected = kStateInit;
      continue;
    }
    const uint64_t end = LeaseEnd(observed);
    const uint64_t now = cluster_.synctime().ReadStrong(worker_->node());
    if (!LeaseExpired(end, now, cfg_.delta_us)) {
      // Read-read sharing: adopt the existing lease and its end time —
      // unless too little of it remains for this transaction to confirm
      // it at commit, in which case renew it in place (extending a lease
      // only delays writers; readers of the old end stay valid).
      if (end > now + 2 * cfg_.delta_us + cfg_.lease_rw_us / 8) {
        ref.leased = true;
        ref.lease_end = end;
        return StartResult::kOk;
      }
      expected = observed;  // renew
      continue;
    }
    expected = observed;  // replace the expired lease with ours
  }
}

Transaction::StartResult Transaction::PrefetchFromRaw(Ref& ref,
                                                      const uint8_t* raw) {
  store::EntryHeader header;
  std::memcpy(&header, raw, sizeof(header));
  if (header.key != ref.key) {
    // The entry was deleted (and possibly recycled) between lookup and
    // lock; undo and let the retry re-resolve.
    if (ref.locked) {
      UnlockRef(ref);
      ref.locked = false;
    }
    ref.leased = false;
    ref.found = false;
    return StartResult::kConflict;
  }
  ref.version = header.version;
  ref.buf.resize(ref.value_size);
  std::memcpy(ref.buf.data(), raw + sizeof(header), ref.value_size);
  return StartResult::kOk;
}

Transaction::StartResult Transaction::PrefetchRef(Ref& ref) {
  std::vector<uint8_t> raw(sizeof(store::EntryHeader) + ref.value_size);
  if (cluster_.fabric().Read(ref.node, ref.entry_off, raw.data(),
                             raw.size()) != rdma::OpStatus::kOk) {
    return StartResult::kNodeDown;
  }
  return PrefetchFromRaw(ref, raw.data());
}

bool Transaction::ResolveRef(Ref& ref) {
  if (ref.local) {
    ref.entry_off =
        cluster_.hash_table(ref.node, ref.table)->FindEntry(ref.key);
    ref.found = ref.entry_off != store::kInvalidOffset;
    return true;
  }
  store::ClusterHashTable* host = cluster_.hash_table(ref.node, ref.table);
  store::RemoteKv client(&cluster_.fabric(), ref.node, host->geometry(),
                         cluster_.cache(worker_->node(), ref.node));
  const store::RemoteEntryRef found = client.Lookup(ref.key);
  if (!cluster_.fabric().IsAlive(ref.node)) {
    return false;
  }
  ref.found = found.found;
  ref.entry_off = found.entry_off;
  return true;
}

// --- HTM path ----------------------------------------------------------------

Transaction::StartResult Transaction::StartPhase() {
  now_start_ = cluster_.synctime().ReadStrong(worker_->node());
  lease_end_ = now_start_ + cfg_.lease_rw_us;

  bool any_remote_write = false;
  for (Ref& ref : refs_) {
    if (!ref.local) {
      if (!ResolveRef(ref)) {
        return StartResult::kNodeDown;
      }
      any_remote_write |= (ref.write && ref.found);
    }
  }

  if (cfg_.logging && any_remote_write) {
    // Lock-ahead log: which remote records this transaction is about to
    // lock, so recovery can unlock them if we crash pre-commit (§4.6).
    std::vector<LogLock> locks;
    for (const Ref& ref : refs_) {
      if (!ref.local && ref.write && ref.found) {
        locks.push_back(LogLock{ref.node, ref.table, ref.key,
                                ref.entry_off + store::kEntryStateOffset});
      }
    }
    const std::vector<uint8_t> payload = NvramLog::EncodeLocks(locks);
    cluster_.log(worker_->node())
        ->Append(worker_->worker_id(), LogType::kLockAhead, txn_id_,
                 payload.data(), payload.size());
  }

  std::vector<Ref*> remote;
  for (Ref& ref : refs_) {
    if (!ref.local && ref.found) {
      remote.push_back(&ref);
    }
  }
  return BatchedStartRemote(remote);
}

Transaction::StartResult Transaction::BatchedStartRemote(
    const std::vector<Ref*>& remote) {
  if (remote.empty()) {
    return StartResult::kOk;
  }
  const uint64_t locked_val =
      MakeWriteLocked(static_cast<uint8_t>(worker_->node()));
  const rdma::SendQueue::Config sq_cfg{cfg_.rdma_batch_window};
  std::vector<int> nodes;
  for (const Ref* ref : remote) {
    if (std::find(nodes.begin(), nodes.end(), ref->node) == nodes.end()) {
      nodes.push_back(ref->node);
    }
  }

  // Round 1: per target node, first-attempt lock CASes (INIT -> locked)
  // and lease-probe READs share one doorbell. Contended refs drop to the
  // scalar helpers, which know how to steal expired leases and renew
  // short ones — that path costs one redundant CAS/READ, but only under
  // contention.
  StartResult fail = StartResult::kOk;
  std::vector<Ref*> contended;
  {
    stat::ScopedTimer phase(Ids().lock_acquire_ns);
    for (const int node : nodes) {
      std::vector<Ref*> batch;
      for (Ref* ref : remote) {
        if (ref->node == node) {
          batch.push_back(ref);
        }
      }
      std::vector<uint64_t> probes(batch.size(), 0);
      std::vector<bool> is_cas(batch.size(), false);
      rdma::SendQueue sq(cluster_.fabric(), node, sq_cfg);
      for (size_t i = 0; i < batch.size(); ++i) {
        const Ref& ref = *batch[i];
        const uint64_t state_off = ref.entry_off + store::kEntryStateOffset;
        if (ref.write || !cfg_.enable_read_lease) {
          is_cas[i] = true;
          sq.PostCas(state_off, kStateInit, locked_val);
        } else {
          sq.PostRead(state_off, &probes[i], sizeof(probes[i]));
        }
      }
      const std::vector<rdma::Completion> comps = sq.Flush();
      // Mark every acquired lock before acting on any failure, so an
      // early conflict return still releases everything acquired by
      // later completions (Run() walks the marked flags).
      for (size_t i = 0; i < comps.size(); ++i) {
        Ref& ref = *batch[i];
        if (comps[i].status != rdma::OpStatus::kOk) {
          fail = StartResult::kNodeDown;
          continue;
        }
        if (!is_cas[i]) {
          continue;  // lease probes are processed below
        }
        if (comps[i].observed == kStateInit) {
          ref.locked = true;
        } else {
          contended.push_back(&ref);
        }
      }
      if (fail != StartResult::kOk) {
        break;  // this node's batch is fully marked; nothing half-posted
      }
      for (size_t i = 0; i < batch.size(); ++i) {
        if (is_cas[i]) {
          continue;
        }
        const StartResult sr =
            AcquireLeaseWithState(*batch[i], /*wait=*/false, probes[i]);
        if (sr != StartResult::kOk) {
          fail = sr;
          break;
        }
      }
      if (fail != StartResult::kOk) {
        break;
      }
    }
    if (fail == StartResult::kOk) {
      for (Ref* ref : contended) {
        const StartResult sr = AcquireExclusive(*ref, /*wait=*/false);
        if (sr != StartResult::kOk) {
          fail = sr;
          break;
        }
      }
    }
  }
  if (fail != StartResult::kOk) {
    return fail;
  }

  // Round 2: prefetch every acquired ref's header+value image, one
  // doorbell per target node, then parse locally.
  std::vector<std::vector<uint8_t>> raws(remote.size());
  for (const int node : nodes) {
    rdma::SendQueue sq(cluster_.fabric(), node, sq_cfg);
    std::vector<size_t> posted;
    for (size_t i = 0; i < remote.size(); ++i) {
      Ref& ref = *remote[i];
      if (ref.node != node || !(ref.locked || ref.leased)) {
        continue;
      }
      raws[i].resize(sizeof(store::EntryHeader) + ref.value_size);
      sq.PostRead(ref.entry_off, raws[i].data(), raws[i].size());
      posted.push_back(i);
    }
    const std::vector<rdma::Completion> comps = sq.Flush();
    for (size_t j = 0; j < comps.size(); ++j) {
      if (comps[j].status != rdma::OpStatus::kOk) {
        fail = StartResult::kNodeDown;
      }
    }
  }
  if (fail != StartResult::kOk) {
    return fail;
  }
  for (size_t i = 0; i < remote.size(); ++i) {
    if (raws[i].empty()) {
      continue;
    }
    const StartResult sr = PrefetchFromRaw(*remote[i], raws[i].data());
    if (sr != StartResult::kOk) {
      return sr;
    }
  }
  return StartResult::kOk;
}

void Transaction::ConfirmLeasesInHtm() {
  bool any_lease = false;
  for (const Ref& ref : refs_) {
    if (ref.leased) {
      any_lease = true;
      break;
    }
  }
  if (!any_lease) {
    return;
  }
  // Fresh softtime via a *transactional* read: this is the only place the
  // timer thread's word enters the HTM working set (Fig. 11(c)).
  const uint64_t now =
      worker_->htm().Load(cluster_.synctime().Word(worker_->node()));
  for (const Ref& ref : refs_) {
    if (ref.leased && !LeaseValid(ref.lease_end, now, cfg_.delta_us)) {
      worker_->htm().Abort(kCodeLease);
    }
  }
}

void Transaction::RecordWalUpdate(const Ref& ref, const void* value) {
  if (!cfg_.logging) {
    return;
  }
  LogUpdate update;
  update.node = ref.node;
  update.table = ref.table;
  update.key = ref.key;
  update.entry_off = ref.entry_off;
  update.version = ref.version + 1;
  update.value_len = ref.value_size;
  NvramLog::EncodeUpdate(&wal_buffer_, update, value);
}

void Transaction::WriteWalInHtm() {
  if (!cfg_.logging) {
    return;
  }
  // Local updates were recorded as they happened (LocalWriteInHtm);
  // remote updates sit in their prefetch buffers until write-back, so
  // log their final values here.
  for (const Ref& ref : refs_) {
    if (!ref.local && ref.dirty) {
      RecordWalUpdate(ref, ref.buf.data());
    }
  }
  if (wal_buffer_.empty()) {
    return;
  }
  // Inside the HTM region: the record becomes durable iff XEND commits
  // (all-or-nothing), which is what recovery keys off (§4.6).
  cluster_.log(worker_->node())
      ->Append(worker_->worker_id(), LogType::kWriteAhead, txn_id_,
               wal_buffer_.data(), wal_buffer_.size());
}

void Transaction::WriteBackAndUnlock() {
  const uint64_t locked_val =
      MakeWriteLocked(static_cast<uint8_t>(worker_->node()));
  const uint64_t init = kStateInit;
  // Per ref: one WRITE for version + (still-held) state + value, then
  // one WRITE to unlock — the two-op commit of REMOTE_WRITE_BACK
  // (Fig. 5). All of a node's WRITEs ride one doorbell; the send queue
  // executes in post order, so each unlock still lands after its
  // write-back exactly as in the scalar sequence.
  std::vector<std::vector<uint8_t>> blobs(refs_.size());
  std::vector<int> nodes;
  for (size_t i = 0; i < refs_.size(); ++i) {
    Ref& ref = refs_[i];
    if (!ref.locked) {
      continue;
    }
    if (std::find(nodes.begin(), nodes.end(), ref.node) == nodes.end()) {
      nodes.push_back(ref.node);
    }
    if (ref.dirty) {
      blobs[i].resize(12 + ref.value_size);
      const uint32_t new_version = ref.version + 1;
      std::memcpy(blobs[i].data(), &new_version, 4);
      std::memcpy(blobs[i].data() + 4, &locked_val, 8);
      std::memcpy(blobs[i].data() + 12, ref.buf.data(), ref.value_size);
    }
  }
  for (const int node : nodes) {
    rdma::SendQueue sq(cluster_.fabric(), node,
                       rdma::SendQueue::Config{cfg_.rdma_batch_window});
    struct Posted {
      size_t ref_idx;
      bool unlock;
    };
    std::vector<Posted> posted;
    for (size_t i = 0; i < refs_.size(); ++i) {
      Ref& ref = refs_[i];
      if (!ref.locked || ref.node != node) {
        continue;
      }
      if (ref.dirty) {
        sq.PostWrite(ref.entry_off + store::kEntryVersionOffset,
                     blobs[i].data(), blobs[i].size());
        posted.push_back(Posted{i, false});
      }
      sq.PostWrite(ref.entry_off + store::kEntryStateOffset, &init,
                   sizeof(init));
      posted.push_back(Posted{i, true});
    }
    const std::vector<rdma::Completion> comps = sq.Flush();
    for (size_t j = 0; j < comps.size(); ++j) {
      if (comps[j].status == rdma::OpStatus::kOk) {
        continue;
      }
      // Target down mid-commit: the transaction has committed, so retry
      // until the node recovers (§4.6(e)), preserving per-ref order
      // (write-back failures are retried before their unlock, which
      // also failed and follows in `posted`).
      Ref& ref = refs_[posted[j].ref_idx];
      if (!posted[j].unlock) {
        for (int attempt = 0; attempt < kWriteBackRetries; ++attempt) {
          if (cluster_.fabric().Write(
                  ref.node, ref.entry_off + store::kEntryVersionOffset,
                  blobs[posted[j].ref_idx].data(),
                  blobs[posted[j].ref_idx].size()) == rdma::OpStatus::kOk) {
            break;
          }
          SleepUs(1000);
        }
      } else {
        UnlockRef(ref);
      }
    }
    for (Ref& ref : refs_) {
      if (ref.locked && ref.node == node) {
        ref.locked = false;
      }
    }
  }
}

void Transaction::ReleaseRemoteLocks() {
  for (Ref& ref : refs_) {
    if (ref.locked) {
      UnlockRef(ref);
      ref.locked = false;
    }
    ref.leased = false;
  }
}

void Transaction::ResetRefsForRetry() {
  for (Ref& ref : refs_) {
    ref.found = false;
    ref.entry_off = ~uint64_t{0};
    ref.locked = false;
    ref.leased = false;
    ref.dirty = false;
    ref.version = 0;
    ref.lease_end = 0;
  }
  wal_buffer_.clear();
}

TxnStatus Transaction::Run(const Body& body) {
  assert(!ran_ && "a Transaction object runs once");
  ran_ = true;
  SortRefs();
  txn_id_ = cluster_.NextTxnId(worker_->node(), worker_->worker_id());
  TxnStats& stats = worker_->stats();

  int start_conflicts = 0;
  int attempt = 0;
  int lock_aborts = 0;
  int retry_budget = cfg_.htm_retry_limit;
  while (attempt < retry_budget) {
    const StartResult sr = StartPhase();
    if (sr == StartResult::kNodeDown) {
      ReleaseRemoteLocks();
      ++stats.node_failures;
      stat::Registry::Global().Add(Ids().node_failure);
      return TxnStatus::kNodeFailure;
    }
    if (sr == StartResult::kConflict) {
      ReleaseRemoteLocks();
      ResetRefsForRetry();
      ++stats.start_conflicts;
      stat::Registry::Global().Add(Ids().start_conflict);
      if (++start_conflicts > cfg_.start_retry_limit) {
        break;  // heavy remote contention: let the fallback serialize us
      }
      worker_->Backoff(start_conflicts);
      continue;
    }

    user_abort_ = false;
    wal_buffer_.clear();
    htm::HtmThread& htm = worker_->htm();
    unsigned hstatus;
    {
      stat::ScopedTimer attempt_phase(Ids().htm_attempt_ns);
      hstatus = htm.Transact([&] {
        if (!body(*this)) {
          user_abort_ = true;
          htm.Abort(kCodeUser);
        }
        ConfirmLeasesInHtm();
        WriteWalInHtm();
      });
    }

    if (hstatus == htm::kCommitted) {
      {
        stat::ScopedTimer commit_phase(Ids().commit_ns);
        WriteBackAndUnlock();
        if (cfg_.logging) {
          cluster_.log(worker_->node())
              ->Append(worker_->worker_id(), LogType::kComplete, txn_id_,
                       nullptr, 0);
        }
      }
      ++stats.committed;
      stat::Registry::Global().Add(Ids().commit);
      return TxnStatus::kCommitted;
    }

    ReleaseRemoteLocks();
    ResetRefsForRetry();
    if (user_abort_) {
      ++stats.user_aborts;
      stat::Registry::Global().Add(Ids().user_abort);
      return TxnStatus::kUserAbort;
    }
    bool lock_observed = false;
    if (hstatus & htm::kAbortCapacity) {
      ++stats.htm_capacity_aborts;
    } else if (hstatus & htm::kAbortExplicit) {
      const unsigned code = htm::AbortUserCode(hstatus);
      if (code == kCodeLease) {
        ++stats.htm_lease_aborts;
        stat::Registry::Global().Add(Ids().lease_abort);
      } else {
        ++stats.htm_lock_aborts;
        stat::Registry::Global().Add(Ids().lock_abort);
        lock_observed = true;
      }
    } else {
      ++stats.htm_conflict_aborts;
    }
    ++attempt;
    if (lock_observed && cfg_.lock_abort_extra_retries > 0) {
      // A lock-observed XABORT means the holder is mid-commit: grant up
      // to lock_abort_extra_retries extra attempts and wait it out with
      // the stronger bounded backoff, rather than burning straight
      // through the budget into the ~1000x-costlier 2PL fallback.
      ++lock_aborts;
      retry_budget = cfg_.htm_retry_limit +
                     std::min(lock_aborts, cfg_.lock_abort_extra_retries);
      stat::Registry::Global().Add(Ids().lock_backoff);
      worker_->LockBackoff(lock_aborts);
    } else {
      worker_->Backoff(attempt);
    }
  }

  ++stats.fallbacks;
  stat::Registry::Global().Add(Ids().fallback);
  return RunFallback(body);
}

// --- body accessors ----------------------------------------------------------

bool Transaction::LocalReadInHtm(Ref& ref, void* out) {
  store::ClusterHashTable* table = cluster_.hash_table(ref.node, ref.table);
  const uint64_t entry = table->FindEntry(ref.key);
  if (entry == store::kInvalidOffset) {
    return false;
  }
  htm::HtmThread& htm = worker_->htm();
  // LOCAL_READ (Fig. 6): a write lock by a distributed transaction means
  // we must abort; a read lease is fine for readers.
  const uint64_t state = htm.Load(table->StatePtr(entry));
  if (IsWriteLocked(state)) {
    htm.Abort(kCodeLocked);
  }
  htm.Read(out, table->ValuePtr(entry), ref.value_size);
  return true;
}

bool Transaction::LocalWriteInHtm(Ref& ref, const void* value) {
  store::ClusterHashTable* table = cluster_.hash_table(ref.node, ref.table);
  const uint64_t entry = table->FindEntry(ref.key);
  if (entry == store::kInvalidOffset) {
    return false;
  }
  htm::HtmThread& htm = worker_->htm();
  // LOCAL_WRITE (Fig. 6): abort on a write lock or an unexpired lease;
  // actively clear an expired lease (side effect: the state word joins
  // the HTM write set, which is why LOCAL_READ does not do this).
  const uint64_t state = htm.Load(table->StatePtr(entry));
  if (IsWriteLocked(state)) {
    htm.Abort(kCodeLocked);
  }
  if (HasLease(state)) {
    // Fig. 11: the default reuses the Start-phase softtime; the (b)
    // strategy reads it transactionally here, making every local write
    // conflict-prone against the timer thread.
    const uint64_t now =
        cfg_.softtime_read_every_local_op
            ? htm.Load(cluster_.synctime().Word(worker_->node()))
            : now_start_;
    if (!LeaseExpired(LeaseEnd(state), now, cfg_.delta_us)) {
      htm.Abort(kCodeLocked);
    }
    htm.Store(table->StatePtr(entry), kStateInit);
  }
  const uint32_t version = htm.Load(table->VersionPtr(entry));
  htm.Store(table->VersionPtr(entry), version + 1);
  htm.Write(table->ValuePtr(entry), value, ref.value_size);
  ref.entry_off = entry;
  ref.version = version;
  RecordWalUpdate(ref, value);
  return true;
}

bool Transaction::Read(int table, uint64_t key, void* out) {
  Ref* ref = FindRef(table, key);
  assert(ref != nullptr && "record accessed without declaration");
  if (mode_ == Mode::kFallback || !ref->local) {
    if (!ref->found) {
      return false;
    }
    std::memcpy(out, ref->buf.data(), ref->value_size);
    return true;
  }
  return LocalReadInHtm(*ref, out);
}

bool Transaction::Write(int table, uint64_t key, const void* value) {
  Ref* ref = FindRef(table, key);
  assert(ref != nullptr && ref->write && "write requires AddWrite");
  if (mode_ == Mode::kFallback || !ref->local) {
    if (!ref->found) {
      return false;
    }
    std::memcpy(ref->buf.data(), value, ref->value_size);
    if (!ref->dirty) {
      ref->dirty = true;
    }
    return true;
  }
  return LocalWriteInHtm(*ref, value);
}

bool Transaction::ReadDynamic(int table, uint64_t key, void* out) {
  assert(cluster_.PartitionOf(table, key) == worker_->node() &&
         "ReadDynamic is for locally hosted records");
  if (mode_ == Mode::kHtm) {
    Ref scratch;
    scratch.table = table;
    scratch.key = key;
    scratch.node = worker_->node();
    scratch.local = true;
    scratch.value_size = cluster_.table(table).value_size;
    return LocalReadInHtm(scratch, out);
  }
  // Fallback: lease-as-discovered. The lease is confirmed together with
  // the static ones before any update is applied.
  Ref ref;
  ref.table = table;
  ref.key = key;
  ref.write = false;
  ref.node = worker_->node();
  ref.local = true;
  ref.value_size = cluster_.table(table).value_size;
  if (!ResolveRef(ref) || !ref.found) {
    return false;
  }
  if (AcquireLease(ref, /*wait=*/true) != StartResult::kOk ||
      PrefetchRef(ref) != StartResult::kOk) {
    dynamic_conflict_ = true;
    return false;
  }
  std::memcpy(out, ref.buf.data(), ref.value_size);
  dynamic_refs_.push_back(std::move(ref));
  return true;
}

bool Transaction::Insert(int table, uint64_t key, const void* value) {
  assert(cluster_.PartitionOf(table, key) == worker_->node() &&
         "in-transaction INSERT must target the local partition; remote "
         "inserts are shipped outside transactions (paper footnote 5)");
  store::ClusterHashTable* host = cluster_.hash_table(worker_->node(), table);
  if (mode_ == Mode::kHtm) {
    return host->Insert(key, value);
  }
  pending_local_ops_.push_back(
      PendingOp{PendingOp::kHashInsert, table, key,
                std::vector<uint8_t>(static_cast<const uint8_t*>(value),
                                     static_cast<const uint8_t*>(value) +
                                         cluster_.table(table).value_size)});
  return true;
}

bool Transaction::Remove(int table, uint64_t key) {
  assert(cluster_.PartitionOf(table, key) == worker_->node());
  store::ClusterHashTable* host = cluster_.hash_table(worker_->node(), table);
  if (mode_ == Mode::kHtm) {
    return host->Remove(key);
  }
  pending_local_ops_.push_back(
      PendingOp{PendingOp::kHashRemove, table, key, {}});
  return true;
}

bool Transaction::OrderedInsert(int table, uint64_t key, const void* value) {
  store::BPlusTree* tree = cluster_.ordered_table(worker_->node(), table);
  if (mode_ == Mode::kHtm) {
    return tree->Insert(key, value);
  }
  pending_local_ops_.push_back(
      PendingOp{PendingOp::kOrderedInsert, table, key,
                std::vector<uint8_t>(static_cast<const uint8_t*>(value),
                                     static_cast<const uint8_t*>(value) +
                                         cluster_.table(table).value_size)});
  return true;
}

bool Transaction::OrderedPut(int table, uint64_t key, const void* value) {
  store::BPlusTree* tree = cluster_.ordered_table(worker_->node(), table);
  if (mode_ == Mode::kHtm) {
    return tree->Put(key, value);
  }
  pending_local_ops_.push_back(
      PendingOp{PendingOp::kOrderedPut, table, key,
                std::vector<uint8_t>(static_cast<const uint8_t*>(value),
                                     static_cast<const uint8_t*>(value) +
                                         cluster_.table(table).value_size)});
  return true;
}

bool Transaction::OrderedRemove(int table, uint64_t key) {
  store::BPlusTree* tree = cluster_.ordered_table(worker_->node(), table);
  if (mode_ == Mode::kHtm) {
    return tree->Remove(key);
  }
  pending_local_ops_.push_back(
      PendingOp{PendingOp::kOrderedRemove, table, key, {}});
  return true;
}

bool Transaction::OrderedGet(int table, uint64_t key, void* out) {
  store::BPlusTree* tree = cluster_.ordered_table(worker_->node(), table);
  if (mode_ == Mode::kHtm) {
    return tree->Get(key, out);
  }
  bool found = false;
  htm::HtmThread& htm = worker_->htm();
  while (htm.Transact([&] { found = tree->Get(key, out); }) !=
         htm::kCommitted) {
  }
  return found;
}

size_t Transaction::OrderedScan(
    int table, uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, const void*)>& fn) {
  store::BPlusTree* tree = cluster_.ordered_table(worker_->node(), table);
  if (mode_ == Mode::kHtm) {
    return tree->Scan(lo, hi, fn);
  }
  size_t count = 0;
  htm::HtmThread& htm = worker_->htm();
  // Buffer results so a conflict-retry does not re-invoke fn.
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> rows;
  const uint32_t value_size = cluster_.table(table).value_size;
  while (true) {
    rows.clear();
    const unsigned status = htm.Transact([&] {
      tree->Scan(lo, hi, [&](uint64_t key, const void* value) {
        rows.emplace_back(key,
                          std::vector<uint8_t>(
                              static_cast<const uint8_t*>(value),
                              static_cast<const uint8_t*>(value) + value_size));
        return true;
      });
    });
    if (status == htm::kCommitted) {
      break;
    }
  }
  for (const auto& [key, value] : rows) {
    ++count;
    if (!fn(key, value.data())) {
      break;
    }
  }
  return count;
}

bool Transaction::OrderedFindFloor(int table, uint64_t lo, uint64_t bound,
                                   uint64_t* key_out, void* value_out) {
  store::BPlusTree* tree = cluster_.ordered_table(worker_->node(), table);
  if (mode_ == Mode::kHtm) {
    return tree->FindFloor(lo, bound, key_out, value_out);
  }
  bool found = false;
  htm::HtmThread& htm = worker_->htm();
  while (htm.Transact([&] {
           found = tree->FindFloor(lo, bound, key_out, value_out);
         }) != htm::kCommitted) {
  }
  return found;
}

// --- fallback path -------------------------------------------------------------

TxnStatus Transaction::RunFallback(const Body& body) {
  mode_ = Mode::kFallback;
  stat::ScopedTimer fallback_phase(Ids().fallback_ns);
  TxnStats& stats = worker_->stats();
  htm::HtmThread& htm = worker_->htm();

  for (int attempt = 0; attempt < kFallbackAttempts; ++attempt) {
    now_start_ = cluster_.synctime().ReadStrong(worker_->node());
    lease_end_ = now_start_ + cfg_.lease_rw_us;
    pending_local_ops_.clear();
    wal_buffer_.clear();

    // Resolve and lock everything — local records included — in the
    // global <table, key> order (refs_ is already sorted).
    StartResult fail = StartResult::kOk;
    for (Ref& ref : refs_) {
      if (!ResolveRef(ref)) {
        fail = StartResult::kNodeDown;
        break;
      }
      if (!ref.found) {
        continue;
      }
      StartResult result;
      if (ref.write || !cfg_.enable_read_lease) {
        result = AcquireExclusive(ref, /*wait=*/true);
      } else {
        result = AcquireLease(ref, /*wait=*/true);
      }
      if (result == StartResult::kOk) {
        result = PrefetchRef(ref);
      }
      if (result != StartResult::kOk) {
        fail = result;
        break;
      }
    }
    if (fail == StartResult::kOk) {
      // Leases must be valid before any irreversible update (§6.2): the
      // confirmation is the serialization point of the fallback.
      const uint64_t now = cluster_.synctime().ReadStrong(worker_->node());
      for (const Ref& ref : refs_) {
        if (ref.leased && !LeaseValid(ref.lease_end, now, cfg_.delta_us)) {
          fail = StartResult::kConflict;
          break;
        }
      }
    }
    if (fail != StartResult::kOk) {
      ReleaseRemoteLocks();
      ResetRefsForRetry();
      if (fail == StartResult::kNodeDown) {
        ++stats.node_failures;
        stat::Registry::Global().Add(Ids().node_failure);
        return TxnStatus::kNodeFailure;
      }
      worker_->Backoff(attempt);
      continue;
    }

    user_abort_ = false;
    dynamic_conflict_ = false;
    dynamic_refs_.clear();
    const bool body_ok = body(*this);
    if (dynamic_conflict_) {
      ReleaseRemoteLocks();
      ResetRefsForRetry();
      worker_->Backoff(attempt);
      continue;
    }
    if (!body_ok) {
      ReleaseRemoteLocks();
      ResetRefsForRetry();
      ++stats.user_aborts;
      stat::Registry::Global().Add(Ids().user_abort);
      return TxnStatus::kUserAbort;
    }
    if (!dynamic_refs_.empty()) {
      // Dynamic leases join the pre-body confirmation as the
      // serialization point; all must still be valid before any update.
      const uint64_t now2 = cluster_.synctime().ReadStrong(worker_->node());
      bool dynamic_valid = true;
      for (const Ref& ref : dynamic_refs_) {
        if (!LeaseValid(ref.lease_end, now2, cfg_.delta_us)) {
          dynamic_valid = false;
          break;
        }
      }
      if (!dynamic_valid) {
        ReleaseRemoteLocks();
        ResetRefsForRetry();
        worker_->Backoff(attempt);
        continue;
      }
    }

    // Gather WAL updates for buffered hash writes (local ones were
    // buffered, not applied through LocalWriteInHtm).
    for (Ref& ref : refs_) {
      if (ref.dirty) {
        RecordWalUpdate(ref, ref.buf.data());
      }
    }
    if (cfg_.logging && !wal_buffer_.empty()) {
      cluster_.log(worker_->node())
          ->Append(worker_->worker_id(), LogType::kWriteAhead, txn_id_,
                   wal_buffer_.data(), wal_buffer_.size());
    }

    // Apply: hash-record write-backs (strong writes abort conflicting HTM
    // readers; the state word is locked so local transactions stay away),
    // then the buffered local structural operations, then unlock.
    stat::ScopedTimer commit_phase(Ids().commit_ns);
    const uint64_t locked_val =
        MakeWriteLocked(static_cast<uint8_t>(worker_->node()));
    for (Ref& ref : refs_) {
      if (!ref.locked) {
        continue;
      }
      if (ref.dirty) {
        std::vector<uint8_t> blob(12 + ref.value_size);
        const uint32_t new_version = ref.version + 1;
        std::memcpy(blob.data(), &new_version, 4);
        std::memcpy(blob.data() + 4, &locked_val, 8);
        std::memcpy(blob.data() + 12, ref.buf.data(), ref.value_size);
        if (ref.local) {
          // drtm-lint: allow(TX03 commit write-back of a locked entry, the lock serializes it like an RDMA WRITE)
          htm::StrongWrite(cluster_.hash_table(ref.node, ref.table)
                               ->EntryPtr(ref.entry_off) +
                               store::kEntryVersionOffset,
                           blob.data(), blob.size());
        } else {
          for (int retries = 0; retries < kWriteBackRetries; ++retries) {
            if (cluster_.fabric().Write(
                    ref.node, ref.entry_off + store::kEntryVersionOffset,
                    blob.data(), blob.size()) == rdma::OpStatus::kOk) {
              break;
            }
            SleepUs(1000);
          }
        }
      }
    }
    for (const PendingOp& op : pending_local_ops_) {
      store::ClusterHashTable* hash =
          op.op == PendingOp::kHashInsert || op.op == PendingOp::kHashRemove
              ? cluster_.hash_table(worker_->node(), op.table)
              : nullptr;
      store::BPlusTree* tree =
          hash == nullptr ? cluster_.ordered_table(worker_->node(), op.table)
                          : nullptr;
      while (true) {
        const unsigned status = htm.Transact([&] {
          switch (op.op) {
            case PendingOp::kHashInsert:
              hash->Insert(op.key, op.value.data());
              break;
            case PendingOp::kHashRemove:
              hash->Remove(op.key);
              break;
            case PendingOp::kOrderedInsert:
              tree->Insert(op.key, op.value.data());
              break;
            case PendingOp::kOrderedPut:
              tree->Put(op.key, op.value.data());
              break;
            case PendingOp::kOrderedRemove:
              tree->Remove(op.key);
              break;
          }
        });
        if (status == htm::kCommitted) {
          break;
        }
      }
    }
    for (Ref& ref : refs_) {
      if (ref.locked) {
        if (ref.local &&
            cluster_.fabric().atomic_level() == rdma::AtomicLevel::kGlob) {
          uint64_t* addr = cluster_.hash_table(ref.node, ref.table)
                               ->StatePtr(ref.entry_off);
          // drtm-lint: allow(TX03 lock release on a state word we own, stands in for an RDMA WRITE)
          htm::StrongStore(addr, kStateInit);
        } else {
          UnlockRef(ref);
        }
        ref.locked = false;
      }
    }
    if (cfg_.logging) {
      cluster_.log(worker_->node())
          ->Append(worker_->worker_id(), LogType::kComplete, txn_id_, nullptr,
                   0);
    }
    ++stats.committed;
    stat::Registry::Global().Add(Ids().commit);
    return TxnStatus::kCommitted;
  }
  stat::Registry::Global().Add(Ids().exhausted);
  return TxnStatus::kAborted;
}

// --- read-only transactions ----------------------------------------------------

ReadOnlyTransaction::ReadOnlyTransaction(Worker* worker)
    : worker_(worker), cluster_(worker->cluster()) {}

void ReadOnlyTransaction::AddRead(int table, uint64_t key) {
  RoRef ref;
  ref.table = table;
  ref.key = key;
  ref.node = cluster_.PartitionOf(table, key);
  refs_.push_back(std::move(ref));
}

TxnStatus ReadOnlyTransaction::Execute() {
  const ClusterConfig& cfg = cluster_.config();
  TxnStats& stats = worker_->stats();
  std::sort(refs_.begin(), refs_.end(), [](const RoRef& a, const RoRef& b) {
    return a.table != b.table ? a.table < b.table : a.key < b.key;
  });

  for (int attempt = 0; attempt < kFallbackAttempts; ++attempt) {
    const uint64_t now0 = cluster_.synctime().ReadStrong(worker_->node());
    const uint64_t end = now0 + cfg.lease_ro_us;
    bool conflict = false;
    bool node_down = false;

    for (RoRef& ref : refs_) {
      store::ClusterHashTable* host = cluster_.hash_table(ref.node, ref.table);
      const bool local = ref.node == worker_->node();
      if (local) {
        ref.entry_off = host->FindEntry(ref.key);
        ref.found = ref.entry_off != store::kInvalidOffset;
      } else {
        store::RemoteKv client(&cluster_.fabric(), ref.node, host->geometry(),
                               cluster_.cache(worker_->node(), ref.node));
        const store::RemoteEntryRef found = client.Lookup(ref.key);
        if (!cluster_.fabric().IsAlive(ref.node)) {
          node_down = true;
          break;
        }
        ref.found = found.found;
        ref.entry_off = found.entry_off;
      }
      if (!ref.found) {
        continue;
      }
      // All records — local ones included — are leased with a common end
      // time via CAS (sections 4.5 and 6.3). A healthy existing lease is
      // shared from a plain state READ, CAS-free.
      const uint64_t state_off = ref.entry_off + store::kEntryStateOffset;
      const uint64_t desired = MakeLease(end);
      uint64_t expected = kStateInit;
      {
        uint64_t observed = 0;
        if (local) {
          // drtm-lint: allow(TX03 fallback lease probe, stands in for a one-sided RDMA READ)
          observed = htm::StrongLoad(host->StatePtr(ref.entry_off));
        } else if (cluster_.fabric().Read(ref.node, state_off, &observed,
                                          sizeof(observed)) !=
                   rdma::OpStatus::kOk) {
          node_down = true;
          break;
        }
        if (HasLease(observed)) {
          const uint64_t lease = LeaseEnd(observed);
          const uint64_t now = cluster_.synctime().ReadStrong(worker_->node());
          if (lease > now + 2 * cfg.delta_us + cfg.lease_ro_us / 8) {
            ref.lease_end = lease;
            goto lease_done;
          }
          expected = observed;
        } else if (IsWriteLocked(observed)) {
          conflict = true;
          break;
        }
      }
      while (true) {
        uint64_t observed = 0;
        rdma::OpStatus cas_status;
        if (local &&
            cluster_.fabric().atomic_level() == rdma::AtomicLevel::kGlob) {
          SpinFor(cfg.latency.LocalCasNs());
          // drtm-lint: allow(TX03 local stand-in for an RDMA CAS verb on GLOB-coherent NICs)
          observed = htm::StrongCas64(host->StatePtr(ref.entry_off), expected,
                                      desired);
          cas_status = rdma::OpStatus::kOk;
        } else {
          cas_status = cluster_.fabric().Cas(ref.node, state_off, expected,
                                             desired, &observed);
        }
        if (cas_status != rdma::OpStatus::kOk) {
          node_down = true;
          break;
        }
        if (observed == expected) {
          ref.lease_end = end;
          break;
        }
        if (IsWriteLocked(observed)) {
          conflict = true;
          break;
        }
        const uint64_t lease = LeaseEnd(observed);
        const uint64_t now = cluster_.synctime().ReadStrong(worker_->node());
        if (!LeaseExpired(lease, now, cfg.delta_us)) {
          if (lease > now + 2 * cfg.delta_us + cfg.lease_ro_us / 8) {
            ref.lease_end = lease;  // share
            break;
          }
          expected = observed;  // renew a nearly-expired lease
          continue;
        }
        expected = observed;
      }
    lease_done:
      if (conflict || node_down) {
        break;
      }
      // Prefetch under the lease.
      ref.buf.resize(cluster_.table(ref.table).value_size);
      store::EntryHeader header;
      std::vector<uint8_t> raw(sizeof(header) + ref.buf.size());
      if (cluster_.fabric().Read(ref.node, ref.entry_off, raw.data(),
                                 raw.size()) != rdma::OpStatus::kOk) {
        node_down = true;
        break;
      }
      std::memcpy(&header, raw.data(), sizeof(header));
      if (header.key != ref.key) {
        conflict = true;  // deleted under us; retry
        break;
      }
      std::memcpy(ref.buf.data(), raw.data() + sizeof(header),
                  ref.buf.size());
    }

    if (node_down) {
      ++stats.node_failures;
      stat::Registry::Global().Add(Ids().node_failure);
      return TxnStatus::kNodeFailure;
    }
    if (!conflict) {
      // Confirmation: all leases still valid at one instant (Fig. 8).
      const uint64_t now = cluster_.synctime().ReadStrong(worker_->node());
      bool all_valid = true;
      for (const RoRef& ref : refs_) {
        if (ref.found && !LeaseValid(ref.lease_end, now, cfg.delta_us)) {
          all_valid = false;
          break;
        }
      }
      if (all_valid) {
        ++stats.read_only_committed;
        stat::Registry::Global().Add(Ids().ro_commit);
        return TxnStatus::kCommitted;
      }
    }
    ++stats.read_only_retries;
    stat::Registry::Global().Add(Ids().ro_retry);
    worker_->Backoff(attempt);
  }
  return TxnStatus::kAborted;
}

bool ReadOnlyTransaction::Get(int table, uint64_t key, void* out) const {
  for (const RoRef& ref : refs_) {
    if (ref.table == table && ref.key == key) {
      if (!ref.found) {
        return false;
      }
      std::memcpy(out, ref.buf.data(), ref.buf.size());
      return true;
    }
  }
  return false;
}

}  // namespace txn
}  // namespace drtm
