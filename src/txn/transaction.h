// The DrTM transaction layer (paper sections 4 and 6) — the core
// contribution: HTM for local concurrency control, glued to strict 2PL
// across machines with one-sided RDMA.
//
// A transaction runs in three phases (Fig. 2(a) / Fig. 3):
//   Start    — remote records in the declared read/write sets are leased
//              (shared) or CAS-locked (exclusive) and prefetched;
//   LocalTX  — the body runs inside an HTM region; local records are
//              read/written transactionally with the Fig. 6 state checks;
//   Commit   — leases are confirmed against a fresh softtime, the HTM
//              region commits (XEND), then remote updates are written
//              back and exclusive locks released.
//
// Contention management (section 6.2): after the HTM retry budget is
// exhausted, the fallback handler reruns the transaction under pure 2PL,
// locking *all* records (local ones via RDMA CAS when the NIC only has
// HCA-level atomicity, section 6.3) in a global <table, key> order.
//
// Read-only transactions (Fig. 8) skip HTM entirely: every record is
// leased with one common end time, read, and the leases confirmed.
#ifndef SRC_TXN_TRANSACTION_H_
#define SRC_TXN_TRANSACTION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rand.h"
#include "src/htm/htm.h"
#include "src/replay/replay_log.h"
#include "src/txn/cluster.h"

namespace drtm {
namespace txn {

enum class TxnStatus {
  kCommitted,
  kAborted,      // retry budget exhausted (should be rare: fallback wins)
  kUserAbort,    // body returned false
  kNodeFailure,  // a required remote node is down
};

// XABORT user codes used by the protocol.
inline constexpr uint8_t kCodeUser = 1;
inline constexpr uint8_t kCodeLocked = 2;   // local access hit a 2PL lock
inline constexpr uint8_t kCodeLease = 3;    // lease confirmation failed
inline constexpr uint8_t kCodeMissing = 4;  // record vanished mid-run
inline constexpr uint8_t kCodeLogFull = 5;  // WAL append hit a full log
                                            // segment; reclaim + retry

struct TxnStats {
  uint64_t committed = 0;
  uint64_t user_aborts = 0;
  uint64_t start_conflicts = 0;  // remote lock/lease acquisition failures
  uint64_t htm_conflict_aborts = 0;
  uint64_t htm_capacity_aborts = 0;
  uint64_t htm_lock_aborts = 0;   // kCodeLocked
  uint64_t htm_lease_aborts = 0;  // kCodeLease
  uint64_t fallbacks = 0;
  uint64_t node_failures = 0;
  uint64_t read_only_committed = 0;
  uint64_t read_only_retries = 0;

  void Add(const TxnStats& o);
};

// Decayed per-worker window of recent HTM abort causes — the input to
// the adaptive retry budget (ClusterConfig::adaptive_retry_budget).
// Counts halve once the window fills, so the mix tracks the live
// workload rather than process history.
struct AbortMixWindow {
  static constexpr uint64_t kWindow = 512;
  // Below this many observed aborts the static knobs are used verbatim.
  static constexpr uint64_t kMinSamples = 32;

  uint64_t capacity = 0;  // read/write-set overflow: retries are futile
  uint64_t conflict = 0;  // data conflicts + lease-confirm failures
  uint64_t lock = 0;      // lock-observed XABORTs: holder mid-commit

  uint64_t total() const { return capacity + conflict + lock; }
  void Observe(uint64_t* bucket) {
    ++*bucket;
    if (total() >= kWindow) {
      capacity /= 2;
      conflict /= 2;
      lock /= 2;
    }
  }
};

class Worker {
 public:
  Worker(Cluster* cluster, int node, int worker_id);

  Cluster& cluster() { return *cluster_; }
  int node() const { return node_; }
  int worker_id() const { return worker_id_; }
  htm::HtmThread& htm() { return htm_; }
  Xoshiro256& rng() { return rng_; }
  // Retry/wait jitter stream, deliberately separate from rng(): workload
  // key draws come from rng(), and contention-dependent retry counts
  // must not desynchronize them between a threaded recording and its
  // single-threaded replay.
  Xoshiro256& backoff_rng() { return backoff_rng_; }
  TxnStats& stats() { return stats_; }
  Histogram& latency_us() { return latency_us_; }

  // Blocks until txn_id — a transaction this worker committed — is
  // durably acknowledged: its epoch sealed and its flush completed
  // (NvramLog::WaitDurable). No-op when logging is off, when group
  // commit is off (commit already waited), or for unknown ids.
  void WaitDurable(uint64_t txn_id);

  // Randomized exponential backoff used between transaction retries.
  void Backoff(int attempt);

  // Stronger bounded-exponential backoff (with jitter) applied after a
  // lock-observed XABORT: the lock holder is mid-commit and needs real
  // time (an RDMA write-back) to finish, so waiting beats burning HTM
  // retries and falling through to the 2PL fallback.
  void LockBackoff(int consecutive_lock_aborts);

  // Adaptive contention management: the HTM retry budget and the
  // lock-abort extension derived from this worker's live abort-cause
  // mix. With too few samples (or adaptive_retry_budget off) these are
  // the static knobs; a capacity-dominant mix halves them (retrying a
  // deterministic overflow only delays the fallback), a contention-
  // dominant mix doubles them (retries are ~1000x cheaper than a 2PL
  // rerun). htm_retry_limit == 0 (fallback-only mode) is never touched.
  // The chosen budget is exported as gauge txn.adaptive.retry_budget.
  int AdaptiveRetryLimit();
  int AdaptiveLockExtraRetries() const;
  AbortMixWindow& abort_mix() { return abort_mix_; }

 private:
  // -1 neutral, 0 capacity-dominant (shrink), 1 contention-dominant
  // (stretch); computed from abort_mix_.
  int MixRegime() const;

  Cluster* cluster_;
  int node_;
  int worker_id_;
  htm::HtmThread htm_;
  Xoshiro256 rng_;
  Xoshiro256 backoff_rng_;
  TxnStats stats_;
  Histogram latency_us_;
  AbortMixWindow abort_mix_;
};

// A record whose exclusive lock spans a whole chopped-transaction chain
// (paper §4.6): acquired before the first piece runs, held across every
// piece, released only after the last piece committed. Pieces mark the
// matching declared refs chain-locked so their own acquire/release
// machinery skips them and tolerates observing the (held-by-us) lock.
struct ChainLock {
  int table = 0;
  uint64_t key = 0;
  int node = -1;
  uint64_t entry_off = ~uint64_t{0};
  bool locked = false;
};

// Acquires every chain lock (resolving owner + entry offset) in global
// <table, key> order, waiting out holders and lease expiry like the 2PL
// fallback. When logging is on, a lock-ahead record is appended under
// chain_id first, so recovery can release the chain locks of a crashed
// node (§4.6). On any failure everything acquired is released. Returns
// kCommitted on success, kAborted on conflict/missing-record exhaustion,
// kNodeFailure when an owner node is down.
TxnStatus AcquireChainLocks(Worker* worker, uint64_t chain_id,
                            std::vector<ChainLock>* locks);
void ReleaseChainLocks(Worker* worker, std::vector<ChainLock>* locks);

class Transaction {
 public:
  using Body = std::function<bool(Transaction&)>;

  explicit Transaction(Worker* worker);

  // --- declaration (before Run) --------------------------------------------
  void AddRead(int table, uint64_t key);
  void AddWrite(int table, uint64_t key);
  // Marks a declared record as covered by a ChainLock held by the
  // enclosing chopped transaction: this piece neither acquires nor
  // releases it, and a write lock observed on it is (necessarily) our
  // own chain lock, not a conflict.
  void MarkChainLocked(int table, uint64_t key);

  // Runs the body to commit (HTM path with retries, then fallback). The
  // body may execute several times and must be idempotent in its effects
  // outside this transaction; it returns false to user-abort.
  TxnStatus Run(const Body& body);

  // --- accessors usable inside the body -------------------------------------
  // Declared hash-table records:
  bool Read(int table, uint64_t key, void* out);
  bool Write(int table, uint64_t key, const void* value);
  // Partial write of [offset, offset+len) within a declared record's
  // value. The workhorse of chopped large-value updates: each piece
  // writes only its slice, so the piece's HTM write set holds the
  // slice's lines instead of the whole value's.
  bool WriteRange(int table, uint64_t key, uint32_t offset, const void* data,
                  uint32_t len);

  // Dynamic (undeclared) read of a *local* hash record, for read sets
  // discovered during execution (paper section 4.1 pairs this with a
  // reconnaissance query; stock-level uses it directly). In HTM mode this
  // is a plain LOCAL_READ; in fallback mode it takes a lease on the spot,
  // which is confirmed with the static leases before any update.
  bool ReadDynamic(int table, uint64_t key, void* out);

  // Local dynamic operations (the key's partition must be this node):
  bool Insert(int table, uint64_t key, const void* value);
  bool Remove(int table, uint64_t key);

  // Local ordered-store operations (HTM-protected; in fallback mode each
  // runs as its own small HTM transaction while the 2PL locks on the
  // declared records serialize the logical transaction):
  bool OrderedInsert(int table, uint64_t key, const void* value);
  bool OrderedGet(int table, uint64_t key, void* out);
  bool OrderedPut(int table, uint64_t key, const void* value);
  size_t OrderedScan(int table, uint64_t lo, uint64_t hi,
                     const std::function<bool(uint64_t, const void*)>& fn);
  bool OrderedFindFloor(int table, uint64_t lo, uint64_t bound,
                        uint64_t* key_out, void* value_out);
  bool OrderedRemove(int table, uint64_t key);

  // Softtime captured at Start (reused for all local checks, Fig. 11(c)).
  uint64_t start_time_us() const { return now_start_; }

  bool in_fallback() const { return mode_ == Mode::kFallback; }
  int home_node() const;

 private:
  enum class Mode { kHtm, kFallback };
  enum class StartResult { kOk, kConflict, kNodeDown };

  struct Ref {
    int table;
    uint64_t key;
    bool write;
    int node;
    bool local;
    bool found = false;
    uint64_t entry_off = ~uint64_t{0};
    uint32_t value_size = 0;
    std::vector<uint8_t> buf;  // prefetched value (remote; fallback: all)
    uint32_t version = 0;
    uint64_t lease_end = 0;
    bool locked = false;  // exclusive lock held by us
    bool leased = false;
    bool dirty = false;
    // Covered by an enclosing chain lock: skip acquire/release, and an
    // observed write lock is our own (the chain holds it continuously).
    bool chain_locked = false;
  };

  // Local structural operations buffered by the fallback path until after
  // lease confirmation (its serialization point), then applied inside
  // small HTM transactions.
  struct PendingOp {
    enum Kind {
      kHashInsert,
      kHashRemove,
      kOrderedInsert,
      kOrderedPut,
      kOrderedRemove,
    };
    Kind op;
    int table;
    uint64_t key;
    std::vector<uint8_t> value;
  };

  Ref* FindRef(int table, uint64_t key);
  void SortRefs();

  // HTM path.
  StartResult StartPhase();
  // Scatter-gather Start-phase core: first-attempt lock CASes and
  // lease-probe READs for all remote refs ride one *overlapped* doorbell
  // per target node (rdma::PhaseScatter), then the prefetch READs ride a
  // second scatter round — a k-node transaction pays ~2 overlapped round
  // trips, not 2k serial ones. Contended refs (failed first CAS, locked
  // probe) drop to the scalar helpers.
  StartResult BatchedStartRemote(const std::vector<Ref*>& remote);
  // Scatter-resolves every ref in `remote` (entry_off lookup, one
  // overlapped doorbell per target node per chain round). Returns false
  // if a target died mid-walk.
  bool ResolveRemoteRefs(const std::vector<Ref*>& remote);
  void ConfirmLeasesInHtm();
  void WriteWalInHtm();
  // Returns false when a chaos crash point abandoned the release
  // (simulated death mid-commit): remaining locks stay held and the
  // caller must not write the Complete record.
  bool WriteBackAndUnlock();
  void ReleaseRemoteLocks();
  void ResetRefsForRetry();
  TxnStatus RunHtmPath(const Body& body, bool* out_committed);

  // Shared lock helpers (both paths).
  StartResult AcquireExclusive(Ref& ref, bool wait);
  StartResult AcquireLease(Ref& ref, bool wait);
  // Lease acquisition given an already-observed state word (the probe
  // READ happened elsewhere — batched, in the Start doorbell).
  StartResult AcquireLeaseWithState(Ref& ref, bool wait, uint64_t observed);
  StartResult PrefetchRef(Ref& ref);
  // Parses a prefetched header+value image into ref (key check, version,
  // value copy); undoes the ref's lock on a key mismatch.
  StartResult PrefetchFromRaw(Ref& ref, const uint8_t* raw);
  rdma::OpStatus StateCas(const Ref& ref, uint64_t expected, uint64_t desired,
                          uint64_t* observed);
  void UnlockRef(const Ref& ref);

  // Fallback path (section 6.2).
  TxnStatus RunFallback(const Body& body);
  // Optimistic batched first pass of the 2PL fallback: every lock CAS /
  // lease CAS rides one overlapped scatter round, then every prefetch a
  // second — strictly non-blocking, so acquiring out of the global order
  // is deadlock-free. kConflict means some ref came back contended;
  // everything acquired has been released and the caller must drop to
  // the global-sort-order serial loop.
  StartResult OptimisticFallbackAcquire();
  bool ResolveRef(Ref& ref);  // strong/remote lookup of entry_off

  // In-body helpers.
  bool LocalReadInHtm(Ref& ref, void* out);
  bool LocalWriteInHtm(Ref& ref, const void* value);
  bool LocalWriteRangeInHtm(Ref& ref, uint32_t offset, const void* data,
                            uint32_t len);
  void RecordWalUpdate(const Ref& ref, const void* value);

  // Replay taps (src/replay): hand the recorder this commit's logical
  // write set and WAL digest. The HTM variant stages inside the region
  // (the seqlock publish hook emits the event with the critical-section
  // sequence) and touches only thread-local state; the fallback variant
  // emits directly while its 2PL locks are still held. Zero-write
  // commits stage nothing.
  std::vector<replay::WriteRec> ReplayGatherWrites() const;
  void ReplayStageCommitHtm();
  void ReplayRecordFallbackCommit();

  // After a commit became visible: reports every written record (and
  // buffered structural op) to the installed ElasticHooks, driving the
  // dual-write phase of a live migration. No-op without hooks.
  void NotifyCommittedWrites();

  Worker* worker_;
  Cluster& cluster_;
  const ClusterConfig& cfg_;
  Mode mode_ = Mode::kHtm;
  std::vector<Ref> refs_;
  uint64_t txn_id_ = 0;
  uint64_t now_start_ = 0;
  uint64_t lease_end_ = 0;
  bool user_abort_ = false;
  std::vector<uint8_t> wal_buffer_;
  // Order-insensitive digest of this attempt's WAL updates (replay
  // recording); reset wherever wal_buffer_ is.
  uint64_t replay_wal_sum_ = 0;
  std::vector<PendingOp> pending_local_ops_;
  // Leases taken by ReadDynamic in fallback mode (confirmed post-body).
  std::vector<Ref> dynamic_refs_;
  bool dynamic_conflict_ = false;
  bool ran_ = false;
};

// Read-only transactions (paper section 4.5, Fig. 8).
class ReadOnlyTransaction {
 public:
  explicit ReadOnlyTransaction(Worker* worker);

  void AddRead(int table, uint64_t key);

  // Leases every declared record with one common end time, prefetches,
  // and confirms. Retries internally on conflicts.
  TxnStatus Execute();

  // Valid after a kCommitted Execute(). Returns false if the key did not
  // exist at snapshot time.
  bool Get(int table, uint64_t key, void* out) const;

  // Lease end time (synctime µs) of a record read by a kCommitted
  // Execute(), or 0 if the key was absent. The elastic hot-key replica
  // cache serves a cached value only while this lease is still valid —
  // writers wait out the lease, so the cached value cannot go stale
  // within it (paper section 4.5).
  uint64_t LeaseEndOf(int table, uint64_t key) const;

 private:
  struct RoRef {
    int table;
    uint64_t key;
    int node;
    bool found = false;
    uint64_t entry_off = ~uint64_t{0};
    uint64_t lease_end = 0;
    std::vector<uint8_t> buf;
  };

  Worker* worker_;
  Cluster& cluster_;
  std::vector<RoRef> refs_;
};

}  // namespace txn
}  // namespace drtm

#endif  // SRC_TXN_TRANSACTION_H_
