#include "src/workload/driver.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/barrier.h"
#include "src/common/clock.h"

namespace drtm {
namespace workload {

RunResult RunWorkers(txn::Cluster* cluster, const RunOptions& options,
                     const std::function<bool(txn::Worker&)>& step) {
  const int total_threads = options.nodes * options.workers_per_node;
  Barrier start_barrier(static_cast<size_t>(total_threads) + 1);
  std::atomic<bool> warming{true};
  std::atomic<bool> running{true};

  RunResult result;
  std::mutex result_mu;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(total_threads));

  for (int i = 0; i < total_threads; ++i) {
    const int node = i % options.nodes;
    const int worker_id = i / options.nodes;
    threads.emplace_back([&, node, worker_id] {
      txn::Worker worker(cluster, node, worker_id);
      start_barrier.Wait();
      while (warming.load(std::memory_order_acquire)) {
        (void)step(worker);
      }
      // Reset after warmup so only the measured window is reported.
      worker.stats() = txn::TxnStats();
      *worker.htm().mutable_stats() = htm::Stats();
      uint64_t committed = 0;
      uint64_t attempted = 0;
      Histogram latency;
      while (running.load(std::memory_order_acquire)) {
        const uint64_t begin =
            options.record_latency ? MonotonicNanos() : 0;
        const bool ok = step(worker);
        ++attempted;
        if (ok) {
          ++committed;
          if (options.record_latency) {
            latency.Record((MonotonicNanos() - begin) / 1000);
          }
        }
      }
      std::lock_guard<std::mutex> lock(result_mu);
      result.committed += committed;
      result.attempted += attempted;
      result.txn_stats.Add(worker.stats());
      result.htm_stats.Add(worker.htm().stats());
      result.latency_us.Merge(latency);
    });
  }

  start_barrier.Wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(options.warmup_ms));
  warming.store(false, std::memory_order_release);
  const stat::Snapshot stats_begin = stat::Registry::Global().TakeSnapshot();
  const uint64_t measure_begin = MonotonicNanos();
  std::this_thread::sleep_for(std::chrono::milliseconds(options.duration_ms));
  running.store(false, std::memory_order_release);
  const uint64_t measure_end = MonotonicNanos();
  for (auto& thread : threads) {
    thread.join();
  }
  result.seconds =
      static_cast<double>(measure_end - measure_begin) / 1e9;
  result.stats_delta =
      stat::Registry::Global().TakeSnapshot().DeltaSince(stats_begin);
  return result;
}

}  // namespace workload
}  // namespace drtm
