// Multi-threaded closed-loop benchmark driver: N worker threads per node
// run a workload step function for a fixed duration after a warmup, and
// the per-thread statistics are merged.
#ifndef SRC_WORKLOAD_DRIVER_H_
#define SRC_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <functional>

#include "src/common/histogram.h"
#include "src/stat/metrics.h"
#include "src/txn/transaction.h"

namespace drtm {
namespace workload {

struct RunResult {
  double seconds = 0;
  uint64_t committed = 0;
  uint64_t attempted = 0;
  txn::TxnStats txn_stats;
  htm::Stats htm_stats;
  Histogram latency_us;
  // Global-registry delta covering only the measured window (the warmup
  // is excluded): counters by name plus phase/RDMA histograms.
  stat::Snapshot stats_delta;

  double Throughput() const {
    return seconds > 0 ? static_cast<double>(committed) / seconds : 0;
  }
  double AbortRate() const {
    return attempted > 0
               ? 1.0 - static_cast<double>(committed) /
                           static_cast<double>(attempted)
               : 0;
  }
};

struct RunOptions {
  int nodes = 1;             // worker threads are spread over nodes 0..nodes-1
  int workers_per_node = 1;
  uint64_t warmup_ms = 200;
  uint64_t duration_ms = 1000;
  bool record_latency = true;
};

// step returns true when the attempt committed. Each worker thread gets
// its own txn::Worker bound to node (thread_index % nodes).
RunResult RunWorkers(txn::Cluster* cluster, const RunOptions& options,
                     const std::function<bool(txn::Worker&)>& step);

}  // namespace workload
}  // namespace drtm

#endif  // SRC_WORKLOAD_DRIVER_H_
