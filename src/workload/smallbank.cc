#include "src/workload/smallbank.h"

#include <array>
#include <cstring>
#include <string>
#include <utility>

#include "src/stat/metrics.h"

namespace drtm {
namespace workload {

namespace {

const char* SmallBankTxnName(SmallBankDb::TxnType type) {
  switch (type) {
    case SmallBankDb::TxnType::kSendPayment:
      return "send_payment";
    case SmallBankDb::TxnType::kBalance:
      return "balance";
    case SmallBankDb::TxnType::kDepositChecking:
      return "deposit_checking";
    case SmallBankDb::TxnType::kWriteCheck:
      return "write_check";
    case SmallBankDb::TxnType::kTransactSavings:
      return "transact_savings";
    case SmallBankDb::TxnType::kAmalgamate:
      return "amalgamate";
  }
  return "unknown";
}

void RecordSmallBankOutcome(SmallBankDb::TxnType type, txn::TxnStatus status) {
  // Two counters per mix type, resolved lazily into one table.
  constexpr int kTypes = 6;
  static const std::array<std::pair<uint32_t, uint32_t>, kTypes> ids = [] {
    stat::Registry& reg = stat::Registry::Global();
    std::array<std::pair<uint32_t, uint32_t>, kTypes> out{};
    for (int i = 0; i < kTypes; ++i) {
      const std::string base =
          std::string("txn.smallbank.") +
          SmallBankTxnName(static_cast<SmallBankDb::TxnType>(i));
      out[static_cast<size_t>(i)] = {reg.CounterId(base + ".committed"),
                                     reg.CounterId(base + ".aborted")};
    }
    return out;
  }();
  const auto& [committed, aborted] = ids[static_cast<size_t>(type)];
  stat::Registry::Global().Add(
      status == txn::TxnStatus::kCommitted ? committed : aborted);
}

}  // namespace

SmallBankDb::SmallBankDb(txn::Cluster* cluster, const Params& params)
    : cluster_(cluster), params_(params) {
  txn::TableSpec spec;
  spec.value_size = 8;  // int64 balance in cents
  spec.capacity = params.accounts_per_node + 64;
  spec.main_buckets = 1;
  while (spec.main_buckets * 6 < spec.capacity) {
    spec.main_buckets <<= 1;
  }
  spec.indirect_buckets = spec.main_buckets / 2 + 16;
  spec.partition = [](uint64_t key) { return static_cast<int>(key >> 32); };
  savings_ = cluster->AddTable(spec);
  checking_ = cluster->AddTable(spec);
}

void SmallBankDb::Load() {
  for (int node = 0; node < cluster_->num_nodes(); ++node) {
    for (uint64_t i = 0; i < params_.accounts_per_node; ++i) {
      const uint64_t key = AccountKey(node, i);
      const int64_t balance = params_.initial_balance;
      cluster_->hash_table(node, savings_)->Insert(key, &balance);
      cluster_->hash_table(node, checking_)->Insert(key, &balance);
    }
  }
}

uint64_t SmallBankDb::PickLocalAccount(txn::Worker* worker) {
  Xoshiro256& rng = worker->rng();
  const uint64_t index =
      rng.Bernoulli(params_.hot_probability)
          ? rng.NextBounded(params_.hot_accounts_per_node)
          : rng.NextBounded(params_.accounts_per_node);
  return AccountKey(worker->node(), index);
}

uint64_t SmallBankDb::PickSecondAccount(txn::Worker* worker) {
  Xoshiro256& rng = worker->rng();
  int node = worker->node();
  if (cluster_->num_nodes() > 1 &&
      rng.Bernoulli(params_.cross_node_probability)) {
    do {
      node = static_cast<int>(
          rng.NextBounded(static_cast<uint64_t>(cluster_->num_nodes())));
    } while (node == worker->node());
  }
  const uint64_t index =
      rng.Bernoulli(params_.hot_probability)
          ? rng.NextBounded(params_.hot_accounts_per_node)
          : rng.NextBounded(params_.accounts_per_node);
  return AccountKey(node, index);
}

txn::TxnStatus SmallBankDb::RunSendPayment(txn::Worker* worker) {
  const uint64_t from = PickLocalAccount(worker);
  uint64_t to = PickSecondAccount(worker);
  if (to == from) {
    to = AccountKey(worker->node(),
                    ((from & 0xffffffff) + 1) % params_.accounts_per_node);
  }
  const int64_t amount =
      1 + static_cast<int64_t>(worker->rng().NextBounded(100));
  txn::Transaction txn(worker);
  txn.AddWrite(checking_, from);
  txn.AddWrite(checking_, to);
  return txn.Run([&](txn::Transaction& t) {
    int64_t a = 0;
    int64_t b = 0;
    if (!t.Read(checking_, from, &a) || !t.Read(checking_, to, &b)) {
      return false;
    }
    if (a < amount) {
      return true;  // insufficient funds: committed no-op
    }
    a -= amount;
    b += amount;
    return t.Write(checking_, from, &a) && t.Write(checking_, to, &b);
  });
}

txn::TxnStatus SmallBankDb::RunBalance(txn::Worker* worker) {
  const uint64_t account = PickLocalAccount(worker);
  // Read-only: runs under the Fig. 8 lease scheme, no HTM region.
  txn::ReadOnlyTransaction ro(worker);
  ro.AddRead(savings_, account);
  ro.AddRead(checking_, account);
  const txn::TxnStatus status = ro.Execute();
  if (status == txn::TxnStatus::kCommitted) {
    int64_t savings = 0;
    int64_t checking = 0;
    ro.Get(savings_, account, &savings);
    ro.Get(checking_, account, &checking);
    (void)(savings + checking);
  }
  return status;
}

txn::TxnStatus SmallBankDb::RunDepositChecking(txn::Worker* worker) {
  const uint64_t account = PickLocalAccount(worker);
  const int64_t amount =
      1 + static_cast<int64_t>(worker->rng().NextBounded(100));
  txn::Transaction txn(worker);
  txn.AddWrite(checking_, account);
  return txn.Run([&](txn::Transaction& t) {
    int64_t balance = 0;
    if (!t.Read(checking_, account, &balance)) {
      return false;
    }
    balance += amount;
    return t.Write(checking_, account, &balance);
  });
}

txn::TxnStatus SmallBankDb::RunWriteCheck(txn::Worker* worker) {
  const uint64_t account = PickLocalAccount(worker);
  const int64_t amount =
      1 + static_cast<int64_t>(worker->rng().NextBounded(100));
  txn::Transaction txn(worker);
  txn.AddRead(savings_, account);
  txn.AddWrite(checking_, account);
  return txn.Run([&](txn::Transaction& t) {
    int64_t savings = 0;
    int64_t checking = 0;
    if (!t.Read(savings_, account, &savings) ||
        !t.Read(checking_, account, &checking)) {
      return false;
    }
    // Overdraft penalty per the H-Store definition.
    checking -= (savings + checking < amount) ? amount + 1 : amount;
    return t.Write(checking_, account, &checking);
  });
}

txn::TxnStatus SmallBankDb::RunTransactSavings(txn::Worker* worker) {
  const uint64_t account = PickLocalAccount(worker);
  const int64_t amount =
      1 + static_cast<int64_t>(worker->rng().NextBounded(100));
  txn::Transaction txn(worker);
  txn.AddWrite(savings_, account);
  return txn.Run([&](txn::Transaction& t) {
    int64_t balance = 0;
    if (!t.Read(savings_, account, &balance)) {
      return false;
    }
    balance += amount;
    return t.Write(savings_, account, &balance);
  });
}

txn::TxnStatus SmallBankDb::RunAmalgamate(txn::Worker* worker) {
  const uint64_t from = PickLocalAccount(worker);
  uint64_t to = PickSecondAccount(worker);
  if (to == from) {
    to = AccountKey(worker->node(),
                    ((from & 0xffffffff) + 1) % params_.accounts_per_node);
  }
  txn::Transaction txn(worker);
  txn.AddWrite(savings_, from);
  txn.AddWrite(checking_, from);
  txn.AddWrite(checking_, to);
  return txn.Run([&](txn::Transaction& t) {
    int64_t savings = 0;
    int64_t checking = 0;
    int64_t target = 0;
    if (!t.Read(savings_, from, &savings) ||
        !t.Read(checking_, from, &checking) ||
        !t.Read(checking_, to, &target)) {
      return false;
    }
    target += savings + checking;
    savings = 0;
    checking = 0;
    return t.Write(savings_, from, &savings) &&
           t.Write(checking_, from, &checking) &&
           t.Write(checking_, to, &target);
  });
}

SmallBankDb::MixResult SmallBankDb::RunMix(txn::Worker* worker) {
  const uint64_t roll = worker->rng().NextBounded(100);
  TxnType type;
  if (roll < 25) {
    type = TxnType::kSendPayment;
  } else if (roll < 40) {
    type = TxnType::kBalance;
  } else if (roll < 55) {
    type = TxnType::kDepositChecking;
  } else if (roll < 70) {
    type = TxnType::kWriteCheck;
  } else if (roll < 85) {
    type = TxnType::kTransactSavings;
  } else {
    type = TxnType::kAmalgamate;
  }
  txn::TxnStatus status;
  switch (type) {
    case TxnType::kSendPayment:
      status = RunSendPayment(worker);
      break;
    case TxnType::kBalance:
      status = RunBalance(worker);
      break;
    case TxnType::kDepositChecking:
      status = RunDepositChecking(worker);
      break;
    case TxnType::kWriteCheck:
      status = RunWriteCheck(worker);
      break;
    case TxnType::kTransactSavings:
      status = RunTransactSavings(worker);
      break;
    case TxnType::kAmalgamate:
      status = RunAmalgamate(worker);
      break;
  }
  RecordSmallBankOutcome(type, status);
  return MixResult{type, status};
}

int64_t SmallBankDb::TotalMoney() {
  int64_t sum = 0;
  for (int node = 0; node < cluster_->num_nodes(); ++node) {
    for (uint64_t i = 0; i < params_.accounts_per_node; ++i) {
      const uint64_t key = AccountKey(node, i);
      int64_t savings = 0;
      int64_t checking = 0;
      cluster_->hash_table(node, savings_)->Get(key, &savings);
      cluster_->hash_table(node, checking_)->Get(key, &checking);
      sum += savings + checking;
    }
  }
  return sum;
}

}  // namespace workload
}  // namespace drtm
