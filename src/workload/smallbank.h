// SmallBank on DrTM (paper sections 7.1/7.2, Fig. 15).
//
// Six transaction types over per-customer savings/checking rows (H-Store
// mix): send-payment 25%, balance / deposit-checking / withdraw-from-
// checking (write-check) / transfer-to-savings / amalgamate 15% each.
// Working sets are tiny, so nothing is chopped (paper section 7.1).
// Access is skewed: most picks hit a small hot set. send-payment and
// amalgamate touch two customers; with probability
// `cross_node_probability` the second lives on another node, which makes
// the transaction distributed — the knob swept in Fig. 15.
#ifndef SRC_WORKLOAD_SMALLBANK_H_
#define SRC_WORKLOAD_SMALLBANK_H_

#include <cstdint>

#include "src/txn/cluster.h"
#include "src/txn/transaction.h"

namespace drtm {
namespace workload {

class SmallBankDb {
 public:
  struct Params {
    uint64_t accounts_per_node = 10000;
    uint64_t hot_accounts_per_node = 100;
    double hot_probability = 0.9;
    double cross_node_probability = 0.01;
    int64_t initial_balance = 10000;
  };

  enum class TxnType {
    kSendPayment,
    kBalance,
    kDepositChecking,
    kWriteCheck,
    kTransactSavings,
    kAmalgamate,
  };

  SmallBankDb(txn::Cluster* cluster, const Params& params);

  void Load();

  struct MixResult {
    TxnType type;
    txn::TxnStatus status;
  };
  MixResult RunMix(txn::Worker* worker);

  txn::TxnStatus RunSendPayment(txn::Worker* worker);
  txn::TxnStatus RunBalance(txn::Worker* worker);
  txn::TxnStatus RunDepositChecking(txn::Worker* worker);
  txn::TxnStatus RunWriteCheck(txn::Worker* worker);
  txn::TxnStatus RunTransactSavings(txn::Worker* worker);
  txn::TxnStatus RunAmalgamate(txn::Worker* worker);

  // Sum of all savings + checking balances (quiescent use only).
  int64_t TotalMoney();

  static uint64_t AccountKey(int node, uint64_t index) {
    return (static_cast<uint64_t>(node) << 32) | index;
  }

  int savings_table() const { return savings_; }
  int checking_table() const { return checking_; }
  const Params& params() const { return params_; }

 private:
  uint64_t PickLocalAccount(txn::Worker* worker);
  uint64_t PickSecondAccount(txn::Worker* worker);

  txn::Cluster* cluster_;
  Params params_;
  int savings_;
  int checking_;
};

}  // namespace workload
}  // namespace drtm

#endif  // SRC_WORKLOAD_SMALLBANK_H_
