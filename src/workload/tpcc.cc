#include "src/workload/tpcc.h"

#include <array>
#include <cassert>
#include <cstring>
#include <set>
#include <string>
#include <utility>

#include "src/stat/metrics.h"
#include "src/txn/chop_planner.h"
#include "src/txn/chopping.h"

namespace drtm {
namespace workload {

namespace {

constexpr uint32_t kPaymentRpc = txn::Cluster::kUserRpcBase + 1;

const char* TpccTxnName(TpccDb::TxnType type) {
  switch (type) {
    case TpccDb::TxnType::kNewOrder:
      return "new_order";
    case TpccDb::TxnType::kPayment:
      return "payment";
    case TpccDb::TxnType::kOrderStatus:
      return "order_status";
    case TpccDb::TxnType::kDelivery:
      return "delivery";
    case TpccDb::TxnType::kStockLevel:
      return "stock_level";
  }
  return "unknown";
}

void RecordTpccOutcome(TpccDb::TxnType type, txn::TxnStatus status) {
  constexpr int kTypes = 5;
  static const std::array<std::pair<uint32_t, uint32_t>, kTypes> ids = [] {
    stat::Registry& reg = stat::Registry::Global();
    std::array<std::pair<uint32_t, uint32_t>, kTypes> out{};
    for (int i = 0; i < kTypes; ++i) {
      const std::string base = std::string("txn.tpcc.") +
                               TpccTxnName(static_cast<TpccDb::TxnType>(i));
      out[static_cast<size_t>(i)] = {reg.CounterId(base + ".committed"),
                                     reg.CounterId(base + ".aborted")};
    }
    return out;
  }();
  const auto& [committed, aborted] = ids[static_cast<size_t>(type)];
  stat::Registry::Global().Add(
      status == txn::TxnStatus::kCommitted ? committed : aborted);
}

// TPC-C NURand with the spec's per-run constant C.
uint64_t NuRand(Xoshiro256& rng, uint64_t a, uint64_t n) {
  constexpr uint64_t kC = 42;
  const uint64_t r = ((rng.NextBounded(a + 1) | rng.NextBounded(n)) + kC) % n;
  return r;
}

}  // namespace

TpccDb::TpccDb(txn::Cluster* cluster, const Params& params)
    : cluster_(cluster), params_(params) {
  const int nodes = cluster->num_nodes();
  const uint64_t warehouses_per_node =
      static_cast<uint64_t>((params.warehouses + nodes - 1) / nodes);

  auto by_warehouse = [nodes](uint64_t w) {
    return static_cast<int>(w % static_cast<uint64_t>(nodes));
  };

  txn::TableSpec spec;
  spec.value_size = sizeof(WarehouseRow);
  spec.main_buckets = 64;
  spec.indirect_buckets = 32;
  spec.capacity = warehouses_per_node + 8;
  spec.partition = [by_warehouse](uint64_t key) { return by_warehouse(key); };
  warehouse_ = cluster->AddTable(spec);

  spec = txn::TableSpec();
  spec.value_size = sizeof(DistrictRow);
  spec.main_buckets = 128;
  spec.indirect_buckets = 64;
  spec.capacity = warehouses_per_node * kDistrictsPerWarehouse + 16;
  spec.partition = [by_warehouse](uint64_t key) {
    return by_warehouse(key / kDistrictsPerWarehouse);
  };
  district_ = cluster->AddTable(spec);

  spec = txn::TableSpec();
  spec.value_size = sizeof(CustomerRow);
  const uint64_t customers_per_node =
      warehouses_per_node * kDistrictsPerWarehouse *
      static_cast<uint64_t>(params.customers_per_district);
  spec.capacity = customers_per_node + 64;
  spec.main_buckets = 1;
  while (spec.main_buckets * 6 < spec.capacity) {
    spec.main_buckets <<= 1;
  }
  spec.indirect_buckets = spec.main_buckets / 2 + 16;
  spec.partition = [by_warehouse](uint64_t key) {
    return by_warehouse((key >> 20) / kDistrictsPerWarehouse);
  };
  customer_ = cluster->AddTable(spec);

  spec = txn::TableSpec();
  spec.value_size = sizeof(StockRow);
  const uint64_t stock_per_node =
      warehouses_per_node * static_cast<uint64_t>(params.items);
  spec.capacity = stock_per_node + 64;
  spec.main_buckets = 1;
  while (spec.main_buckets * 6 < spec.capacity) {
    spec.main_buckets <<= 1;
  }
  spec.indirect_buckets = spec.main_buckets / 2 + 16;
  spec.partition = [by_warehouse](uint64_t key) {
    return by_warehouse(key >> 24);
  };
  stock_ = cluster->AddTable(spec);

  spec = txn::TableSpec();
  spec.value_size = sizeof(ItemRow);
  spec.capacity = static_cast<uint64_t>(params.items) + 64;
  spec.main_buckets = 1;
  while (spec.main_buckets * 6 < spec.capacity) {
    spec.main_buckets <<= 1;
  }
  spec.indirect_buckets = spec.main_buckets / 2 + 16;
  spec.partition = [](uint64_t key) { return static_cast<int>(key >> 32); };
  item_ = cluster->AddTable(spec);

  spec = txn::TableSpec();
  spec.value_size = sizeof(HistoryRow);
  spec.capacity = 1 << 17;
  spec.main_buckets = 1 << 14;
  spec.indirect_buckets = 1 << 13;
  spec.partition = [](uint64_t key) { return static_cast<int>(key >> 40); };
  history_ = cluster->AddTable(spec);

  auto ordered_by_district = [by_warehouse](int shift) {
    return [by_warehouse, shift](uint64_t key) {
      return by_warehouse((key >> shift) / kDistrictsPerWarehouse);
    };
  };

  txn::TableSpec ordered;
  ordered.ordered = true;
  ordered.value_size = sizeof(OrderRow);
  ordered.max_nodes = 1 << 15;
  ordered.partition = ordered_by_district(32);
  order_ = cluster->AddTable(ordered);

  ordered = txn::TableSpec();
  ordered.ordered = true;
  ordered.value_size = sizeof(NewOrderRow);
  ordered.max_nodes = 1 << 14;
  ordered.partition = ordered_by_district(32);
  new_order_ = cluster->AddTable(ordered);

  ordered = txn::TableSpec();
  ordered.ordered = true;
  ordered.value_size = sizeof(OrderLineRow);
  ordered.max_nodes = 1 << 17;
  ordered.partition = ordered_by_district(36);
  order_line_ = cluster->AddTable(ordered);

  ordered = txn::TableSpec();
  ordered.ordered = true;
  ordered.value_size = 8;  // customer id
  ordered.max_nodes = 1 << 13;
  ordered.partition = ordered_by_district(32);
  name_index_ = cluster->AddTable(ordered);

  ordered = txn::TableSpec();
  ordered.ordered = true;
  ordered.value_size = 8;  // presence marker
  ordered.max_nodes = 1 << 15;
  // key = (customer_key << 24) | o_id; customer_key >> 20 = district key.
  ordered.partition = [by_warehouse](uint64_t key) {
    return by_warehouse(((key >> 24) >> 20) / kDistrictsPerWarehouse);
  };
  cust_order_ = cluster->AddTable(ordered);

  shipped_workers_.resize(static_cast<size_t>(nodes));
  cluster_->RegisterRpcHandler(kPaymentRpc, [this](const rdma::Message& msg) {
    PaymentArgs args;
    std::memcpy(&args, msg.payload.data(), sizeof(args));
    const int node = cluster_->PartitionOf(customer_, CustomerKey(args.cw,
                                                                  args.cd, 0));
    txn::Worker* worker = ShippedWorker(node);
    const txn::TxnStatus status = PaymentLocal(worker, args);
    return std::vector<uint8_t>{static_cast<uint8_t>(status)};
  });
}

txn::Worker* TpccDb::ShippedWorker(int node) {
  auto& slot = shipped_workers_[static_cast<size_t>(node)];
  if (slot == nullptr) {
    // Server threads are one per node, so lazy creation is race-free.
    slot = std::make_unique<txn::Worker>(cluster_, node,
                                         cluster_->workers_per_node());
  }
  return slot.get();
}

void TpccDb::Load() {
  const int nodes = cluster_->num_nodes();
  Xoshiro256 rng(0x7bcc5eedULL);
  for (int node = 0; node < nodes; ++node) {
    for (int i = 0; i < params_.items; ++i) {
      // Replicated read-only table: every node's copy must be identical,
      // so derive fields from the item id alone.
      Xoshiro256 item_rng(0x17e3 + static_cast<uint64_t>(i));
      ItemRow item{};
      item.price_cents = 100 + item_rng.NextBounded(9900);
      item.im_id = static_cast<uint32_t>(item_rng.NextBounded(10000));
      cluster_->hash_table(node, item_)->Insert(
          ItemKey(node, static_cast<uint64_t>(i)), &item);
    }
  }
  for (uint64_t w = 0; w < static_cast<uint64_t>(params_.warehouses); ++w) {
    const int node = cluster_->PartitionOf(warehouse_, w);
    WarehouseRow wr{};
    wr.tax_bp = static_cast<uint32_t>(rng.NextBounded(2000));
    cluster_->hash_table(node, warehouse_)->Insert(w, &wr);
    for (uint64_t i = 0; i < static_cast<uint64_t>(params_.items); ++i) {
      StockRow sr{};
      sr.quantity = 10 + rng.NextBounded(91);
      cluster_->hash_table(node, stock_)->Insert(StockKey(w, i), &sr);
    }
    for (uint64_t d = 0; d < kDistrictsPerWarehouse; ++d) {
      DistrictRow dr{};
      dr.next_o_id = static_cast<uint64_t>(params_.initial_orders_per_district);
      dr.tax_bp = static_cast<uint32_t>(rng.NextBounded(2000));
      cluster_->hash_table(node, district_)->Insert(DistrictKey(w, d), &dr);
      for (uint64_t c = 0;
           c < static_cast<uint64_t>(params_.customers_per_district); ++c) {
        CustomerRow cr{};
        cr.balance_cents = -1000;
        cr.discount_bp = static_cast<uint32_t>(rng.NextBounded(5000));
        cr.name_id = static_cast<uint32_t>(
            c % static_cast<uint64_t>(params_.name_count));
        cluster_->hash_table(node, customer_)
            ->Insert(CustomerKey(w, d, c), &cr);
        const uint64_t c_id = c;
        cluster_->ordered_table(node, name_index_)
            ->Insert(NameIndexKey(w, d, cr.name_id, c), &c_id);
      }
      // A small initial backlog of orders; the newest third is
      // undelivered (has NEWORDER rows), mirroring the spec's shape.
      for (uint64_t o = 0;
           o < static_cast<uint64_t>(params_.initial_orders_per_district);
           ++o) {
        const uint64_t c =
            o % static_cast<uint64_t>(params_.customers_per_district);
        OrderRow orow{};
        orow.c_id = static_cast<uint32_t>(c);
        orow.ol_cnt = 10;
        orow.carrier_id =
            o < static_cast<uint64_t>(
                    params_.initial_orders_per_district * 2 / 3)
                ? 1u + static_cast<uint32_t>(rng.NextBounded(10))
                : 0u;
        cluster_->ordered_table(node, order_)->Insert(OrderKey(w, d, o),
                                                      &orow);
        const uint64_t marker = 1;
        cluster_->ordered_table(node, cust_order_)
            ->Insert((CustomerKey(w, d, c) << 24) | o, &marker);
        if (orow.carrier_id == 0) {
          NewOrderRow nrow{1};
          cluster_->ordered_table(node, new_order_)
              ->Insert(OrderKey(w, d, o), &nrow);
        }
        for (uint64_t ol = 0; ol < orow.ol_cnt; ++ol) {
          OrderLineRow line{};
          line.i_id = static_cast<uint32_t>(
              rng.NextBounded(static_cast<uint64_t>(params_.items)));
          line.supply_w = static_cast<uint32_t>(w);
          line.quantity = 5;
          line.amount_cents = static_cast<uint32_t>(rng.NextBounded(10000));
          line.delivery_date = orow.carrier_id != 0 ? 12345 : 0;
          cluster_->ordered_table(node, order_line_)
              ->Insert(OrderLineKey(w, d, o, ol), &line);
        }
      }
    }
  }
}

uint64_t TpccDb::HomeWarehouse(txn::Worker* worker) {
  const uint64_t nodes = static_cast<uint64_t>(cluster_->num_nodes());
  const uint64_t node = static_cast<uint64_t>(worker->node());
  const uint64_t total = static_cast<uint64_t>(params_.warehouses);
  const uint64_t count = (total - node + nodes - 1) / nodes;  // w = node + k*nodes < total
  const uint64_t k = worker->rng().NextBounded(count);
  return node + k * nodes;
}

uint64_t TpccDb::NuRandCustomer(Xoshiro256& rng) {
  return NuRand(rng, 1023,
                static_cast<uint64_t>(params_.customers_per_district));
}

uint64_t TpccDb::NuRandItem(Xoshiro256& rng) {
  return NuRand(rng, 8191, static_cast<uint64_t>(params_.items));
}

txn::TxnStatus TpccDb::RunNewOrder(txn::Worker* worker) {
  return RunNewOrderWithCross(worker, params_.cross_warehouse_new_order);
}

txn::TxnStatus TpccDb::RunNewOrderWithCross(txn::Worker* worker,
                                            double cross_prob) {
  Xoshiro256& rng = worker->rng();
  const uint64_t w = HomeWarehouse(worker);
  const uint64_t d = rng.NextBounded(kDistrictsPerWarehouse);
  const uint64_t c = NuRandCustomer(rng);
  const int ol_cnt = 5 + static_cast<int>(rng.NextBounded(11));
  const bool rollback = rng.Bernoulli(params_.new_order_rollback) &&
                        cross_prob == params_.cross_warehouse_new_order;

  struct Line {
    uint64_t item;
    uint64_t supply_w;
    uint32_t quantity;
  };
  std::vector<Line> lines;
  lines.reserve(static_cast<size_t>(ol_cnt));
  for (int l = 0; l < ol_cnt; ++l) {
    uint64_t item;
    bool unique;
    do {
      item = NuRandItem(rng);
      unique = true;
      for (const Line& existing : lines) {
        if (existing.item == item) {
          unique = false;
          break;
        }
      }
    } while (!unique);
    uint64_t supply = w;
    if (params_.warehouses > 1 && rng.Bernoulli(cross_prob)) {
      do {
        supply = rng.NextBounded(static_cast<uint64_t>(params_.warehouses));
      } while (supply == w);
    }
    lines.push_back(
        Line{item, supply, 1 + static_cast<uint32_t>(rng.NextBounded(10))});
  }

  const int node = worker->node();

  // Fragment decomposition for the planner ("tpcc.new_order" catalog
  // entry): a header fragment allocating o_id, one fragment per item
  // line, ordered inserts last. When the whole footprint fits the HTM
  // write budget the fragments fuse back into one monolithic transaction
  // identical to the pre-planner body; otherwise the item loop is chopped
  // into pieces and cross-piece stock writes are chain-locked (§4.6).
  struct Ctx {
    uint64_t o_id = 0;
    std::vector<OrderLineRow> rows;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->rows.resize(lines.size());

  txn::ChopPlanner planner(cluster_, node, "tpcc.new_order");

  txn::ChopPlanner::Fragment header;
  header.records = {
      {warehouse_, w, false},
      {district_, DistrictKey(w, d), true},
      {customer_, CustomerKey(w, d, c), false},
  };
  header.may_user_abort = true;
  header.body = [this, w, d, c, rollback, ctx](txn::Transaction& t) {
    WarehouseRow wr;
    DistrictRow dr;
    CustomerRow cr;
    if (!t.Read(warehouse_, w, &wr) ||
        !t.Read(district_, DistrictKey(w, d), &dr) ||
        !t.Read(customer_, CustomerKey(w, d, c), &cr)) {
      return false;
    }
    ctx->o_id = dr.next_o_id;
    dr.next_o_id = ctx->o_id + 1;
    if (!t.Write(district_, DistrictKey(w, d), &dr)) {
      return false;
    }
    // The spec's 1% invalid-item rollback. Decided in the header so a
    // chopped chain only ever user-aborts from its first piece.
    return !rollback;
  };
  planner.AddFragment(std::move(header));

  for (size_t l = 0; l < lines.size(); ++l) {
    const Line line = lines[l];
    txn::ChopPlanner::Fragment item;
    item.records = {
        {item_, ItemKey(node, line.item), false},
        {stock_, StockKey(line.supply_w, line.item), true},
    };
    item.body = [this, node, w, l, line, ctx](txn::Transaction& t) {
      ItemRow item_row;
      StockRow stock;
      if (!t.Read(item_, ItemKey(node, line.item), &item_row) ||
          !t.Read(stock_, StockKey(line.supply_w, line.item), &stock)) {
        return false;
      }
      if (stock.quantity >= line.quantity + 10) {
        stock.quantity -= line.quantity;
      } else {
        stock.quantity += 91 - line.quantity;
      }
      stock.ytd += line.quantity;
      stock.order_cnt += 1;
      if (line.supply_w != w) {
        stock.remote_cnt += 1;
      }
      if (!t.Write(stock_, StockKey(line.supply_w, line.item), &stock)) {
        return false;
      }
      OrderLineRow& row = ctx->rows[l];
      row.i_id = static_cast<uint32_t>(line.item);
      row.supply_w = static_cast<uint32_t>(line.supply_w);
      row.quantity = line.quantity;
      row.amount_cents =
          static_cast<uint32_t>(line.quantity * item_row.price_cents);
      row.delivery_date = 0;
      return true;
    };
    planner.AddFragment(std::move(item));
  }

  txn::ChopPlanner::Fragment inserts;
  // Ordered inserts write B+ tree nodes inside the HTM region (leaf
  // rewrite, occasional split) — not visible as declared records, so
  // estimated here at ~8 lines per insert.
  inserts.extra_write_lines = (3 + lines.size()) * 8;
  inserts.body = [this, w, d, c, ctx](txn::Transaction& t) {
    const uint64_t o_id = ctx->o_id;
    OrderRow orow{};
    orow.c_id = static_cast<uint32_t>(c);
    orow.ol_cnt = static_cast<uint32_t>(ctx->rows.size());
    orow.entry_date = t.start_time_us();
    if (!t.OrderedInsert(order_, OrderKey(w, d, o_id), &orow)) {
      return false;
    }
    const NewOrderRow nrow{1};
    if (!t.OrderedInsert(new_order_, OrderKey(w, d, o_id), &nrow)) {
      return false;
    }
    const uint64_t marker = 1;
    if (!t.OrderedInsert(cust_order_, (CustomerKey(w, d, c) << 24) | o_id,
                         &marker)) {
      return false;
    }
    for (size_t l = 0; l < ctx->rows.size(); ++l) {
      if (!t.OrderedInsert(order_line_, OrderLineKey(w, d, o_id, l),
                           &ctx->rows[l])) {
        return false;
      }
    }
    return true;
  };
  planner.AddFragment(std::move(inserts));

  return planner.Run(worker);
}

txn::TxnStatus TpccDb::RunPayment(txn::Worker* worker) {
  Xoshiro256& rng = worker->rng();
  PaymentArgs args{};
  args.w = HomeWarehouse(worker);
  args.d = rng.NextBounded(kDistrictsPerWarehouse);
  args.cw = args.w;
  args.cd = args.d;
  if (params_.warehouses > 1 &&
      rng.Bernoulli(params_.cross_warehouse_payment)) {
    do {
      args.cw = rng.NextBounded(static_cast<uint64_t>(params_.warehouses));
    } while (args.cw == args.w);
    args.cd = rng.NextBounded(kDistrictsPerWarehouse);
  }
  args.by_name = rng.Bernoulli(params_.payment_by_name) ? 1 : 0;
  args.customer = args.by_name != 0
                      ? rng.NextBounded(
                            static_cast<uint64_t>(params_.name_count))
                      : NuRandCustomer(rng);
  args.amount_cents = 100 + rng.NextBounded(499900);

  const int customer_node =
      cluster_->PartitionOf(customer_, CustomerKey(args.cw, args.cd, 0));
  if (customer_node == worker->node()) {
    return PaymentLocal(worker, args);
  }
  // Remote customer: resolving by name needs a remote ordered-store scan,
  // so ship the whole transaction to the customer's node (section 6.5).
  std::vector<uint8_t> payload(sizeof(args));
  std::memcpy(payload.data(), &args, sizeof(args));
  std::vector<uint8_t> reply;
  if (cluster_->Rpc(worker->node(), customer_node, kPaymentRpc,
                    std::move(payload), &reply) != rdma::OpStatus::kOk ||
      reply.empty()) {
    ++worker->stats().node_failures;
    return txn::TxnStatus::kNodeFailure;
  }
  const auto status = static_cast<txn::TxnStatus>(reply[0]);
  if (status == txn::TxnStatus::kCommitted) {
    ++worker->stats().committed;
  }
  return status;
}

txn::TxnStatus TpccDb::PaymentLocal(txn::Worker* worker,
                                    const PaymentArgs& args) {
  // Resolve by-name customers with a local index scan (reconnaissance;
  // names are immutable so no in-transaction re-check is needed).
  uint64_t c = args.customer;
  if (args.by_name != 0) {
    std::vector<uint64_t> matches;
    store::BPlusTree* index =
        cluster_->ordered_table(worker->node(), name_index_);
    htm::HtmThread& htm = worker->htm();
    while (true) {
      matches.clear();
      const unsigned status = htm.Transact([&] {
        index->Scan(NameIndexKey(args.cw, args.cd, args.customer, 0),
                    NameIndexKey(args.cw, args.cd, args.customer, 0xfff),
                    [&](uint64_t, const void* value) {
                      uint64_t c_id;
                      std::memcpy(&c_id, value, 8);
                      matches.push_back(c_id);
                      return true;
                    });
      });
      if (status == htm::kCommitted) {
        break;
      }
    }
    if (matches.empty()) {
      return txn::TxnStatus::kUserAbort;
    }
    c = matches[matches.size() / 2];  // the spec's "middle" customer
  }

  const uint64_t ck = CustomerKey(args.cw, args.cd, c);
  txn::Transaction txn(worker);
  txn.AddWrite(warehouse_, args.w);
  txn.AddWrite(district_, DistrictKey(args.w, args.d));
  txn.AddWrite(customer_, ck);
  const uint64_t history_key =
      (static_cast<uint64_t>(worker->node()) << 40) |
      history_seq_.fetch_add(1, std::memory_order_relaxed);
  return txn.Run([&](txn::Transaction& t) {
    WarehouseRow wr;
    DistrictRow dr;
    CustomerRow cr;
    if (!t.Read(warehouse_, args.w, &wr) ||
        !t.Read(district_, DistrictKey(args.w, args.d), &dr) ||
        !t.Read(customer_, ck, &cr)) {
      return false;
    }
    wr.ytd_cents += args.amount_cents;
    dr.ytd_cents += args.amount_cents;
    cr.balance_cents -= static_cast<int64_t>(args.amount_cents);
    cr.ytd_payment_cents += args.amount_cents;
    cr.payment_cnt += 1;
    if (!t.Write(warehouse_, args.w, &wr) ||
        !t.Write(district_, DistrictKey(args.w, args.d), &dr) ||
        !t.Write(customer_, ck, &cr)) {
      return false;
    }
    HistoryRow history{};
    history.amount_cents = args.amount_cents;
    history.wdc = ck;
    history.date = t.start_time_us();
    t.Insert(history_, history_key, &history);
    return true;
  });
}

txn::TxnStatus TpccDb::RunOrderStatus(txn::Worker* worker) {
  Xoshiro256& rng = worker->rng();
  const uint64_t w = HomeWarehouse(worker);
  const uint64_t d = rng.NextBounded(kDistrictsPerWarehouse);
  uint64_t c = NuRandCustomer(rng);
  if (rng.Bernoulli(params_.payment_by_name)) {
    // By-name resolution against the local index (reconnaissance).
    const uint64_t name = rng.NextBounded(
        static_cast<uint64_t>(params_.name_count));
    std::vector<uint64_t> matches;
    store::BPlusTree* index =
        cluster_->ordered_table(worker->node(), name_index_);
    htm::HtmThread& htm = worker->htm();
    while (true) {
      matches.clear();
      const unsigned status = htm.Transact([&] {
        index->Scan(NameIndexKey(w, d, name, 0),
                    NameIndexKey(w, d, name, 0xfff),
                    [&](uint64_t, const void* value) {
                      uint64_t c_id;
                      std::memcpy(&c_id, value, 8);
                      matches.push_back(c_id);
                      return true;
                    });
      });
      if (status == htm::kCommitted) {
        break;
      }
    }
    if (!matches.empty()) {
      c = matches[matches.size() / 2];
    }
  }

  const uint64_t ck = CustomerKey(w, d, c);
  txn::Transaction txn(worker);
  txn.AddRead(customer_, ck);
  return txn.Run([&](txn::Transaction& t) {
    CustomerRow cr;
    if (!t.Read(customer_, ck, &cr)) {
      return false;
    }
    // Latest order of this customer via the per-customer index.
    uint64_t index_key = 0;
    uint64_t marker;
    if (!t.OrderedFindFloor(cust_order_, ck << 24, (ck << 24) | 0xffffff,
                            &index_key, &marker)) {
      return true;  // customer has no orders yet
    }
    const uint64_t o_id = index_key & 0xffffff;
    OrderRow orow;
    if (!t.OrderedGet(order_, OrderKey(w, d, o_id), &orow)) {
      return true;
    }
    uint64_t lines_seen = 0;
    t.OrderedScan(order_line_, OrderLineKey(w, d, o_id, 0),
                  OrderLineKey(w, d, o_id, 0xff),
                  [&](uint64_t, const void* value) {
                    OrderLineRow line;
                    std::memcpy(&line, value, sizeof(line));
                    ++lines_seen;
                    return true;
                  });
    return true;
  });
}

txn::TxnStatus TpccDb::RunDelivery(txn::Worker* worker) {
  Xoshiro256& rng = worker->rng();
  const uint64_t w = HomeWarehouse(worker);
  const uint32_t carrier = 1 + static_cast<uint32_t>(rng.NextBounded(10));

  // Reconnaissance (section 4.1): discover per-district oldest undelivered
  // orders and their customers outside the transaction; each piece then
  // re-checks its NEWORDER row and no-ops if another delivery beat it.
  struct Target {
    uint64_t d, o_id, c_id;
  };
  std::vector<Target> targets;
  htm::HtmThread& htm = worker->htm();
  for (uint64_t d = 0; d < kDistrictsPerWarehouse; ++d) {
    uint64_t oldest = ~uint64_t{0};
    while (true) {
      oldest = ~uint64_t{0};
      const unsigned status = htm.Transact([&] {
        cluster_->ordered_table(worker->node(), new_order_)
            ->Scan(OrderKey(w, d, 0), OrderKey(w, d, 0xffffffff),
                   [&](uint64_t key, const void*) {
                     oldest = key & 0xffffffff;
                     return false;  // first = oldest
                   });
      });
      if (status == htm::kCommitted) {
        break;
      }
    }
    if (oldest == ~uint64_t{0}) {
      continue;
    }
    OrderRow orow{};
    bool found = false;
    while (true) {
      const unsigned status = htm.Transact([&] {
        found = cluster_->ordered_table(worker->node(), order_)
                    ->Get(OrderKey(w, d, oldest), &orow);
      });
      if (status == htm::kCommitted) {
        break;
      }
    }
    if (found) {
      targets.push_back(Target{d, oldest, orow.c_id});
    }
  }
  if (targets.empty()) {
    return txn::TxnStatus::kCommitted;  // nothing to deliver
  }

  // One piece per district via the planner (the paper chops TPC-C;
  // delivery is the canonical beneficiary — its "tpcc.delivery" catalog
  // entry pins one fragment per piece, so the per-district decomposition
  // survives regardless of footprint).
  txn::ChopPlanner planner(cluster_, worker->node(), "tpcc.delivery");
  for (const Target& target : targets) {
    const uint64_t ck = CustomerKey(w, target.d, target.c_id);
    txn::ChopPlanner::Fragment piece;
    piece.records = {{customer_, ck, true}};
    // Order/new-order/order-line tree writes inside the HTM region.
    piece.extra_write_lines = 96;
    piece.body = [this, w, target, carrier, ck](txn::Transaction& t) {
          const uint64_t okey = OrderKey(w, target.d, target.o_id);
          NewOrderRow nrow;
          if (!t.OrderedGet(new_order_, okey, &nrow)) {
            return true;  // someone else delivered it; piece is a no-op
          }
          t.OrderedRemove(new_order_, okey);
          OrderRow orow;
          if (!t.OrderedGet(order_, okey, &orow)) {
            return true;
          }
          orow.carrier_id = carrier;
          t.OrderedPut(order_, okey, &orow);
          uint64_t amount = 0;
          std::vector<std::pair<uint64_t, OrderLineRow>> lines;
          t.OrderedScan(order_line_, OrderLineKey(w, target.d, target.o_id, 0),
                        OrderLineKey(w, target.d, target.o_id, 0xff),
                        [&](uint64_t key, const void* value) {
                          OrderLineRow line;
                          std::memcpy(&line, value, sizeof(line));
                          amount += line.amount_cents;
                          lines.emplace_back(key, line);
                          return true;
                        });
          for (auto& [key, line] : lines) {
            line.delivery_date = t.start_time_us();
            t.OrderedPut(order_line_, key, &line);
          }
          CustomerRow cr;
          if (!t.Read(customer_, ck, &cr)) {
            return true;
          }
          cr.balance_cents += static_cast<int64_t>(amount);
          cr.delivery_cnt += 1;
          return t.Write(customer_, ck, &cr);
        };
    planner.AddFragment(std::move(piece));
  }
  return planner.Run(worker);
}

txn::TxnStatus TpccDb::RunStockLevel(txn::Worker* worker) {
  Xoshiro256& rng = worker->rng();
  const uint64_t w = HomeWarehouse(worker);
  const uint64_t d = rng.NextBounded(kDistrictsPerWarehouse);
  const uint64_t threshold = 10 + rng.NextBounded(11);

  txn::Transaction txn(worker);
  txn.AddRead(district_, DistrictKey(w, d));
  return txn.Run([&](txn::Transaction& t) {
    DistrictRow dr;
    if (!t.Read(district_, DistrictKey(w, d), &dr)) {
      return false;
    }
    const uint64_t hi_o = dr.next_o_id;
    const uint64_t lo_o = hi_o >= 20 ? hi_o - 20 : 0;
    std::set<uint32_t> items;
    t.OrderedScan(order_line_, OrderLineKey(w, d, lo_o, 0),
                  OrderLineKey(w, d, hi_o, 0),
                  [&](uint64_t, const void* value) {
                    OrderLineRow line;
                    std::memcpy(&line, value, sizeof(line));
                    items.insert(line.i_id);
                    return true;
                  });
    uint64_t low_stock = 0;
    for (const uint32_t item : items) {
      StockRow stock;
      if (t.ReadDynamic(stock_, StockKey(w, item), &stock) &&
          stock.quantity < threshold) {
        ++low_stock;
      }
    }
    return true;
  });
}

TpccDb::MixResult TpccDb::RunMix(txn::Worker* worker) {
  const uint64_t roll = worker->rng().NextBounded(100);
  TxnType type;
  if (roll < 45) {
    type = TxnType::kNewOrder;
  } else if (roll < 88) {
    type = TxnType::kPayment;
  } else if (roll < 92) {
    type = TxnType::kOrderStatus;
  } else if (roll < 96) {
    type = TxnType::kDelivery;
  } else {
    type = TxnType::kStockLevel;
  }
  txn::TxnStatus status;
  switch (type) {
    case TxnType::kNewOrder:
      status = RunNewOrder(worker);
      break;
    case TxnType::kPayment:
      status = RunPayment(worker);
      break;
    case TxnType::kOrderStatus:
      status = RunOrderStatus(worker);
      break;
    case TxnType::kDelivery:
      status = RunDelivery(worker);
      break;
    case TxnType::kStockLevel:
      status = RunStockLevel(worker);
      break;
  }
  RecordTpccOutcome(type, status);
  return MixResult{type, status};
}

bool TpccDb::CheckConsistency() {
  bool ok = true;
  for (uint64_t w = 0; w < static_cast<uint64_t>(params_.warehouses); ++w) {
    const int node = cluster_->PartitionOf(warehouse_, w);
    WarehouseRow wr;
    if (!cluster_->hash_table(node, warehouse_)->Get(w, &wr)) {
      return false;
    }
    uint64_t district_ytd = 0;
    for (uint64_t d = 0; d < kDistrictsPerWarehouse; ++d) {
      DistrictRow dr;
      if (!cluster_->hash_table(node, district_)->Get(DistrictKey(w, d),
                                                      &dr)) {
        return false;
      }
      district_ytd += dr.ytd_cents;
      // Order ids are dense in [0, next_o_id).
      uint64_t orders = 0;
      uint64_t max_o = 0;
      cluster_->ordered_table(node, order_)
          ->Scan(OrderKey(w, d, 0), OrderKey(w, d, 0xffffffff),
                 [&](uint64_t key, const void* value) {
                   ++orders;
                   max_o = key & 0xffffffff;
                   OrderRow orow;
                   std::memcpy(&orow, value, sizeof(orow));
                   uint64_t lines = 0;
                   cluster_->ordered_table(node, order_line_)
                       ->Scan(OrderLineKey(w, d, max_o, 0),
                              OrderLineKey(w, d, max_o, 0xff),
                              [&](uint64_t, const void*) {
                                ++lines;
                                return true;
                              });
                   if (lines != orow.ol_cnt) {
                     ok = false;
                   }
                   return true;
                 });
      if (orders != dr.next_o_id || (orders > 0 && max_o + 1 != dr.next_o_id)) {
        ok = false;
      }
      // Every NEWORDER row has a matching ORDER row.
      cluster_->ordered_table(node, new_order_)
          ->Scan(OrderKey(w, d, 0), OrderKey(w, d, 0xffffffff),
                 [&](uint64_t key, const void*) {
                   OrderRow orow;
                   if (!cluster_->ordered_table(node, order_)
                            ->Get(key, &orow)) {
                     ok = false;
                   }
                   return true;
                 });
    }
    if (wr.ytd_cents != district_ytd) {
      ok = false;
    }
  }
  return ok;
}

}  // namespace workload
}  // namespace drtm
