// TPC-C on DrTM (paper section 7.1/7.2).
//
// Scaling knobs shrink the row counts for a small simulation host; the
// schema, transaction logic, access patterns and the mix (Table 5:
// NEW 45%, PAY 43%, OS 4%, DLY 4%, SL 4%) follow the spec the way the
// paper's implementation does:
//   * partitioned by warehouse across nodes;
//   * unordered tables (warehouse, district, customer, stock, item,
//     history) in DrTM-KV; ordered tables (order, new-order, order-line,
//     customer-name index) in the HTM B+ tree;
//   * item is replicated per node (read-only);
//   * payment with a remote customer resolved *by name* needs a remote
//     ordered-store scan, so the whole transaction is shipped to the
//     customer's node (paper section 6.5);
//   * delivery is chopped into per-district pieces with a reconnaissance
//     query discovering the customer write set (sections 3, 4.1);
//   * 1% of new-orders roll back (the spec's invalid-item case),
//     exercising the user-abort path.
#ifndef SRC_WORKLOAD_TPCC_H_
#define SRC_WORKLOAD_TPCC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rand.h"
#include "src/txn/cluster.h"
#include "src/txn/transaction.h"

namespace drtm {
namespace workload {

// --- row formats -------------------------------------------------------------

struct WarehouseRow {
  uint64_t ytd_cents;
  uint32_t tax_bp;  // basis points
  uint8_t pad[20];
};
static_assert(sizeof(WarehouseRow) == 32);

struct DistrictRow {
  uint64_t next_o_id;
  uint64_t ytd_cents;
  uint32_t tax_bp;
  uint8_t pad[12];
};
static_assert(sizeof(DistrictRow) == 32);

struct CustomerRow {
  int64_t balance_cents;
  uint64_t ytd_payment_cents;
  uint32_t payment_cnt;
  uint32_t delivery_cnt;
  uint32_t discount_bp;
  uint32_t name_id;
  uint8_t data[96];  // stands in for the spec's wide character columns
};
static_assert(sizeof(CustomerRow) == 128);

struct StockRow {
  uint64_t quantity;
  uint64_t ytd;
  uint32_t order_cnt;
  uint32_t remote_cnt;
  uint8_t dist_info[40];
};
static_assert(sizeof(StockRow) == 64);

struct ItemRow {
  uint64_t price_cents;
  uint32_t im_id;
  uint8_t name[20];
};
static_assert(sizeof(ItemRow) == 32);

struct HistoryRow {
  uint64_t amount_cents;
  uint64_t wdc;  // packed (w, d, customer key)
  uint64_t date;
};
static_assert(sizeof(HistoryRow) == 24);

struct OrderRow {
  uint32_t c_id;
  uint32_t ol_cnt;
  uint64_t entry_date;
  uint32_t carrier_id;
  uint32_t pad;
};
static_assert(sizeof(OrderRow) == 24);

struct NewOrderRow {
  uint64_t present;
};

struct OrderLineRow {
  uint32_t i_id;
  uint32_t supply_w;
  uint32_t quantity;
  uint32_t amount_cents;
  uint64_t delivery_date;
};
static_assert(sizeof(OrderLineRow) == 24);

// --- key packing ---------------------------------------------------------------

inline constexpr int kDistrictsPerWarehouse = 10;

inline uint64_t DistrictKey(uint64_t w, uint64_t d) {
  return w * kDistrictsPerWarehouse + d;
}
inline uint64_t CustomerKey(uint64_t w, uint64_t d, uint64_t c) {
  return (DistrictKey(w, d) << 20) | c;
}
inline uint64_t StockKey(uint64_t w, uint64_t i) { return (w << 24) | i; }
inline uint64_t ItemKey(int node, uint64_t i) {
  return (static_cast<uint64_t>(node) << 32) | i;
}
inline uint64_t OrderKey(uint64_t w, uint64_t d, uint64_t o) {
  return (DistrictKey(w, d) << 32) | o;
}
inline uint64_t OrderLineKey(uint64_t w, uint64_t d, uint64_t o, uint64_t ol) {
  return (DistrictKey(w, d) << 36) | (o << 8) | ol;
}
inline uint64_t NameIndexKey(uint64_t w, uint64_t d, uint64_t name_id,
                             uint64_t c) {
  return (DistrictKey(w, d) << 32) | (name_id << 12) | c;
}

class TpccDb {
 public:
  struct Params {
    int warehouses = 2;  // node(w) = w % num_nodes
    int customers_per_district = 300;
    int items = 2000;
    int name_count = 100;  // distinct last names per district
    int initial_orders_per_district = 10;
    // Probability that a new-order item line is supplied by a remote
    // warehouse (spec default 1%) and that a payment customer belongs to
    // a remote warehouse (spec default 15%).
    double cross_warehouse_new_order = 0.01;
    double cross_warehouse_payment = 0.15;
    double payment_by_name = 0.60;
    double new_order_rollback = 0.01;
  };

  enum class TxnType {
    kNewOrder,
    kPayment,
    kOrderStatus,
    kDelivery,
    kStockLevel,
  };

  TpccDb(txn::Cluster* cluster, const Params& params);

  // Populates every node's partition. Call after cluster.Start().
  void Load();

  // Standard-mix step for one worker: picks a type per Table 5 and runs
  // it against a home warehouse on the worker's node.
  struct MixResult {
    TxnType type;
    txn::TxnStatus status;
  };
  MixResult RunMix(txn::Worker* worker);

  txn::TxnStatus RunNewOrder(txn::Worker* worker);
  txn::TxnStatus RunPayment(txn::Worker* worker);
  txn::TxnStatus RunOrderStatus(txn::Worker* worker);
  txn::TxnStatus RunDelivery(txn::Worker* worker);
  txn::TxnStatus RunStockLevel(txn::Worker* worker);

  // New-order with a caller-chosen cross-warehouse probability and no
  // rollback — the Fig. 16 sweep and the Fig. 17 micro-benchmarks reuse
  // this entry point.
  txn::TxnStatus RunNewOrderWithCross(txn::Worker* worker, double cross_prob);

  // Verifies warehouse/district YTD, order-id continuity and
  // order/order-line matching invariants across the whole database.
  bool CheckConsistency();

  const Params& params() const { return params_; }

  // Table ids.
  int warehouse_table() const { return warehouse_; }
  int district_table() const { return district_; }
  int customer_table() const { return customer_; }
  int stock_table() const { return stock_; }
  int item_table() const { return item_; }
  int history_table() const { return history_; }
  int order_table() const { return order_; }
  int new_order_table() const { return new_order_; }
  int order_line_table() const { return order_line_; }
  int name_index_table() const { return name_index_; }
  int customer_order_table() const { return cust_order_; }

 private:
  // Uniformly picks a warehouse hosted by the worker's node.
  uint64_t HomeWarehouse(txn::Worker* worker);
  uint64_t NuRandCustomer(Xoshiro256& rng);
  uint64_t NuRandItem(Xoshiro256& rng);

  // Payment executed where the customer is local; warehouse/district may
  // be remote. Registered as an RPC handler for shipped transactions.
  struct PaymentArgs {
    uint64_t w, d, cw, cd;
    uint64_t customer;  // resolved id, or name_id when by_name
    uint64_t amount_cents;
    uint8_t by_name;
  };
  txn::TxnStatus PaymentLocal(txn::Worker* worker, const PaymentArgs& args);
  txn::Worker* ShippedWorker(int node);

  txn::Cluster* cluster_;
  Params params_;
  int warehouse_, district_, customer_, stock_, item_, history_;
  int order_, new_order_, order_line_, name_index_, cust_order_;
  std::atomic<uint64_t> history_seq_{1};
  std::vector<std::unique_ptr<txn::Worker>> shipped_workers_;
};

}  // namespace workload
}  // namespace drtm

#endif  // SRC_WORKLOAD_TPCC_H_
