#include "src/workload/ycsb.h"

#include <cstring>
#include <vector>

namespace drtm {
namespace workload {

YcsbDb::YcsbDb(txn::Cluster* cluster, const Params& params)
    : cluster_(cluster), params_(params) {
  txn::TableSpec spec;
  spec.value_size = params.value_size;
  spec.capacity = params.records_per_node + 64;
  spec.main_buckets = 1;
  while (spec.main_buckets * 6 < spec.capacity) {
    spec.main_buckets <<= 1;
  }
  spec.indirect_buckets = spec.main_buckets / 2 + 16;
  const int nodes = cluster->num_nodes();
  spec.partition = [nodes](uint64_t key) {
    return static_cast<int>(key % static_cast<uint64_t>(nodes));
  };
  table_ = cluster->AddTable(spec);
}

uint64_t YcsbDb::KeyAt(uint64_t logical) const { return logical; }

void YcsbDb::Load() {
  std::vector<uint8_t> value(params_.value_size);
  for (uint64_t k = 0; k < total_records(); ++k) {
    for (size_t i = 0; i < value.size(); ++i) {
      value[i] = static_cast<uint8_t>((k + i) & 0xff);
    }
    cluster_->hash_table(cluster_->PartitionOf(table_, k), table_)
        ->Insert(k, value.data());
  }
}

uint64_t YcsbDb::PickKey(txn::Worker* worker) {
  if (params_.distribution == Distribution::kUniform) {
    return worker->rng().NextBounded(total_records());
  }
  // Per-thread Zipf generator (zeta precomputation is per-thread too).
  thread_local std::unique_ptr<ZipfGenerator> zipf;
  thread_local uint64_t zipf_n = 0;
  if (zipf == nullptr || zipf_n != total_records()) {
    zipf = std::make_unique<ZipfGenerator>(
        total_records(), params_.zipf_theta,
        0x9c5b + static_cast<uint64_t>(worker->node()) * 131 +
            static_cast<uint64_t>(worker->worker_id()));
    zipf_n = total_records();
  }
  return zipf->Next();
}

bool YcsbDb::IsReadOp(Xoshiro256& rng) const {
  switch (params_.mix) {
    case Mix::kA:
      return rng.NextBounded(100) < 50;
    case Mix::kB:
      return rng.NextBounded(100) < 95;
    case Mix::kC:
      return true;
    case Mix::kF:
      return rng.NextBounded(100) < 50;
  }
  return true;
}

YcsbDb::OpResult YcsbDb::RunTxn(txn::Worker* worker) {
  struct Op {
    uint64_t key;
    bool read;
  };
  std::vector<Op> ops;
  ops.reserve(static_cast<size_t>(params_.ops_per_txn));
  bool all_reads = true;
  for (int i = 0; i < params_.ops_per_txn; ++i) {
    uint64_t key = PickKey(worker);
    bool duplicate = false;
    for (auto& op : ops) {
      if (op.key == key) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      --i;
      continue;
    }
    const bool read = IsReadOp(worker->rng());
    all_reads &= read;
    ops.push_back(Op{key, read});
  }

  OpResult result;
  std::vector<uint8_t> buf(params_.value_size);

  if (all_reads && params_.use_read_only_path) {
    txn::ReadOnlyTransaction ro(worker);
    for (const Op& op : ops) {
      ro.AddRead(table_, op.key);
    }
    result.committed = ro.Execute() == txn::TxnStatus::kCommitted;
    result.was_read_only = true;
    if (result.committed) {
      for (const Op& op : ops) {
        ro.Get(table_, op.key, buf.data());
      }
    }
    return result;
  }

  txn::Transaction txn(worker);
  for (const Op& op : ops) {
    if (op.read) {
      txn.AddRead(table_, op.key);
    } else {
      txn.AddWrite(table_, op.key);
    }
  }
  result.committed =
      txn.Run([&](txn::Transaction& t) {
        for (const Op& op : ops) {
          if (!t.Read(table_, op.key, buf.data())) {
            return false;
          }
          if (!op.read) {
            // Update: YCSB overwrites a field; F additionally derives the
            // new value from the read (read-modify-write) — both amount
            // to a value mutation here.
            buf[0] = static_cast<uint8_t>(buf[0] + 1);
            if (!t.Write(table_, op.key, buf.data())) {
              return false;
            }
          }
        }
        return true;
      }) == txn::TxnStatus::kCommitted;
  return result;
}

}  // namespace workload
}  // namespace drtm
