#include "src/workload/ycsb.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "src/txn/chop_planner.h"
#include "src/txn/chopping.h"

namespace drtm {
namespace workload {

YcsbDb::YcsbDb(txn::Cluster* cluster, const Params& params)
    : cluster_(cluster), params_(params) {
  txn::TableSpec spec;
  spec.value_size = params.value_size;
  spec.capacity = params.records_per_node + 64;
  spec.main_buckets = 1;
  while (spec.main_buckets * 6 < spec.capacity) {
    spec.main_buckets <<= 1;
  }
  spec.indirect_buckets = spec.main_buckets / 2 + 16;
  const int nodes = cluster->num_nodes();
  spec.partition = [nodes](uint64_t key) {
    return static_cast<int>(key % static_cast<uint64_t>(nodes));
  };
  table_ = cluster->AddTable(spec);
  zipf_.resize(static_cast<size_t>(nodes) * kMaxWorkersPerNode);
}

uint64_t YcsbDb::KeyAt(uint64_t logical) const { return logical; }

void YcsbDb::Load() {
  std::vector<uint8_t> value(params_.value_size);
  for (uint64_t k = 0; k < total_records(); ++k) {
    for (size_t i = 0; i < value.size(); ++i) {
      value[i] = static_cast<uint8_t>((k + i) & 0xff);
    }
    cluster_->hash_table(cluster_->PartitionOf(table_, k), table_)
        ->Insert(k, value.data());
  }
}

uint64_t YcsbDb::PickKey(txn::Worker* worker) {
  if (params_.distribution == Distribution::kUniform) {
    return worker->rng().NextBounded(total_records());
  }
  // Per-worker Zipf generator (zeta precomputation is per-worker too).
  const size_t slot =
      static_cast<size_t>(worker->node()) * kMaxWorkersPerNode +
      static_cast<size_t>(worker->worker_id());
  std::unique_ptr<ZipfGenerator>& zipf = zipf_.at(slot);
  if (zipf == nullptr) {
    zipf = std::make_unique<ZipfGenerator>(
        total_records(), params_.zipf_theta,
        0x9c5b + static_cast<uint64_t>(worker->node()) * 131 +
            static_cast<uint64_t>(worker->worker_id()));
  }
  return zipf->Next();
}

bool YcsbDb::IsReadOp(Xoshiro256& rng) const {
  if (params_.update_fraction >= 0) {
    return rng.NextBounded(10000) >=
           static_cast<uint64_t>(params_.update_fraction * 10000);
  }
  switch (params_.mix) {
    case Mix::kA:
      return rng.NextBounded(100) < 50;
    case Mix::kB:
      return rng.NextBounded(100) < 95;
    case Mix::kC:
      return true;
    case Mix::kF:
      return rng.NextBounded(100) < 50;
  }
  return true;
}

YcsbDb::OpResult YcsbDb::RunTxn(txn::Worker* worker) {
  struct Op {
    uint64_t key;
    bool read;
  };
  std::vector<Op> ops;
  ops.reserve(static_cast<size_t>(params_.ops_per_txn));
  bool all_reads = true;
  for (int i = 0; i < params_.ops_per_txn; ++i) {
    uint64_t key = PickKey(worker);
    bool duplicate = false;
    for (auto& op : ops) {
      if (op.key == key) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      --i;
      continue;
    }
    const bool read = IsReadOp(worker->rng());
    all_reads &= read;
    ops.push_back(Op{key, read});
  }

  OpResult result;
  std::vector<uint8_t> buf(params_.value_size);
  // A/B updates overwrite the value with fresh content; only F derives
  // the new value from a read (read-modify-write), per the YCSB core
  // workload definitions.
  const bool rmw = params_.mix == Mix::kF;
  const uint8_t stamp = static_cast<uint8_t>(worker->rng().Next() | 1);

  if (all_reads && params_.use_read_only_path) {
    txn::ReadOnlyTransaction ro(worker);
    for (const Op& op : ops) {
      ro.AddRead(table_, op.key);
    }
    result.committed = ro.Execute() == txn::TxnStatus::kCommitted;
    result.was_read_only = true;
    if (result.committed) {
      for (const Op& op : ops) {
        ro.Get(table_, op.key, buf.data());
      }
    }
    return result;
  }

  // Capacity-bound single-record update on a *local* key: values past
  // the HTM write-line budget abort every HTM attempt, so slice the
  // write into a chopped chain ("ycsb.update" catalog entry) — piece 0
  // reads and mutates the value, every piece WriteRanges one budget-
  // sized slice, and the record's exclusive lock spans the chain.
  // Remote writes never enter the HTM write set and stay monolithic.
  if (ops.size() == 1 && !ops[0].read) {
    const uint64_t key = ops[0].key;
    const size_t slices =
        txn::ChopSlicesForValue(*cluster_, params_.value_size);
    if (slices > 1 &&
        cluster_->PartitionOf(table_, key) == worker->node()) {
      auto value = std::make_shared<std::vector<uint8_t>>(params_.value_size);
      const uint32_t slice_bytes =
          static_cast<uint32_t>(txn::ChopSliceBytes(*cluster_));
      txn::ChoppedTransaction chain;
      chain.AddChainLock(table_, key);
      chain.AddPiece(
          [this, key](txn::Transaction& t) { t.AddWrite(table_, key); },
          [this, key, value, slice_bytes, stamp, rmw](txn::Transaction& t) {
            if (rmw) {
              if (!t.Read(table_, key, value->data())) {
                return false;
              }
              (*value)[0] = static_cast<uint8_t>((*value)[0] + 1);
            } else {
              std::fill(value->begin(), value->end(), stamp);
            }
            const uint32_t len =
                std::min<uint32_t>(slice_bytes, params_.value_size);
            return t.WriteRange(table_, key, 0, value->data(), len);
          });
      for (uint32_t off = slice_bytes; off < params_.value_size;
           off += slice_bytes) {
        const uint32_t len =
            std::min<uint32_t>(slice_bytes, params_.value_size - off);
        chain.AddPiece(
            [this, key](txn::Transaction& t) { t.AddWrite(table_, key); },
            [this, key, value, off, len](txn::Transaction& t) {
              return t.WriteRange(table_, key, off, value->data() + off, len);
            });
      }
      result.committed = chain.Run(worker) == txn::TxnStatus::kCommitted;
      return result;
    }
  }

  txn::Transaction txn(worker);
  for (const Op& op : ops) {
    if (op.read) {
      txn.AddRead(table_, op.key);
    } else {
      txn.AddWrite(table_, op.key);
    }
  }
  result.committed =
      txn.Run([&](txn::Transaction& t) {
        for (const Op& op : ops) {
          if (op.read || rmw) {
            if (!t.Read(table_, op.key, buf.data())) {
              return false;
            }
          }
          if (!op.read) {
            if (rmw) {
              buf[0] = static_cast<uint8_t>(buf[0] + 1);
            } else {
              std::fill(buf.begin(), buf.end(), stamp);
            }
            if (!t.Write(table_, op.key, buf.data())) {
              return false;
            }
          }
        }
        return true;
      }) == txn::TxnStatus::kCommitted;
  return result;
}

}  // namespace workload
}  // namespace drtm
