// YCSB-style key-value workloads over DrTM (the paper drives its KV
// evaluation with YCSB's key distributions, section 5.4). Core workload
// mixes A (update-heavy 50/50), B (read-mostly 95/5), C (read-only) and
// F (read-modify-write) over a table partitioned across the cluster;
// keys are drawn uniformly or Zipf(theta)-skewed across the whole key
// space, so most operations on a multi-node cluster are remote.
#ifndef SRC_WORKLOAD_YCSB_H_
#define SRC_WORKLOAD_YCSB_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/zipf.h"
#include "src/txn/cluster.h"
#include "src/txn/transaction.h"

namespace drtm {
namespace workload {

class YcsbDb {
 public:
  enum class Mix {
    kA,  // 50% read / 50% update
    kB,  // 95% read / 5% update
    kC,  // 100% read
    kF,  // 50% read / 50% read-modify-write
  };

  enum class Distribution {
    kUniform,
    kZipfian,
  };

  struct Params {
    uint64_t records_per_node = 10000;
    uint32_t value_size = 96;
    Mix mix = Mix::kB;
    Distribution distribution = Distribution::kZipfian;
    double zipf_theta = 0.99;
    // Operations grouped into one transaction (1 = plain YCSB ops).
    int ops_per_txn = 1;
    // Read-only transactions (single- or multi-read) go through the
    // lease-based read-only scheme instead of HTM when true.
    bool use_read_only_path = true;
    // >= 0 overrides the mix's read/update split with this update
    // probability (1.0 = update-only). The capacity benchmarks use it to
    // isolate the write path the HTM line budget actually constrains.
    double update_fraction = -1;
  };

  YcsbDb(txn::Cluster* cluster, const Params& params);

  void Load();

  struct OpResult {
    bool committed = false;
    bool was_read_only = false;
  };
  OpResult RunTxn(txn::Worker* worker);

  // Key space helpers.
  uint64_t total_records() const {
    return params_.records_per_node *
           static_cast<uint64_t>(cluster_->num_nodes());
  }
  uint64_t KeyAt(uint64_t logical) const;

  int table() const { return table_; }
  const Params& params() const { return params_; }

 private:
  uint64_t PickKey(txn::Worker* worker);
  bool IsReadOp(Xoshiro256& rng) const;

  txn::Cluster* cluster_;
  Params params_;
  int table_;
  // Per-worker Zipf generators, keyed by worker identity rather than OS
  // thread: a single-threaded replay run hosts every worker on one
  // thread, and each must continue its own recorded key stream. Slots
  // are pre-sized, each touched by exactly one worker, so draws stay
  // lock-free.
  static constexpr int kMaxWorkersPerNode = 64;
  std::vector<std::unique_ptr<ZipfGenerator>> zipf_;
};

}  // namespace workload
}  // namespace drtm

#endif  // SRC_WORKLOAD_YCSB_H_
