// Extended Calvin tests: deterministic lock-manager semantics, epoch
// batching latency, multi-partition read exchange, and mixed-shape
// concurrency.
#include "src/calvin/calvin.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "src/common/clock.h"
#include "src/common/rand.h"

namespace drtm {
namespace calvin {
namespace {

Row RowOf(uint64_t v) {
  Row row(8);
  std::memcpy(row.data(), &v, 8);
  return row;
}

uint64_t ValueOf(const Row& row) {
  uint64_t v = 0;
  if (row.size() >= 8) {
    std::memcpy(&v, row.data(), 8);
  }
  return v;
}

class CalvinExtendedTest : public ::testing::Test {
 protected:
  void SetUpCluster(int nodes, int workers, uint64_t epoch_us) {
    CalvinCluster::Config config;
    config.num_nodes = nodes;
    config.workers_per_node = workers;
    config.epoch_us = epoch_us;
    cluster_ = std::make_unique<CalvinCluster>(config);
    table_ = cluster_->AddTable(
        [nodes](uint64_t key) { return static_cast<int>(key % nodes); });
    for (uint64_t k = 0; k < 64; ++k) {
      cluster_->LoadRow(table_, k, RowOf(100));
    }
    cluster_->Start();
  }
  void TearDown() override {
    if (cluster_ != nullptr) {
      cluster_->Stop();
    }
  }

  std::shared_ptr<TxnRequest> Increment(uint64_t key) {
    auto request = std::make_shared<TxnRequest>();
    const int table = table_;
    request->read_set = {{table, key}};
    request->write_set = {{table, key}};
    request->home_node = cluster_->PartitionOf(table, key);
    request->logic = [table, key](const ReadMap& reads, WriteMap* writes) {
      (*writes)[RecordKey{table, key}] =
          RowOf(ValueOf(reads.at(RecordKey{table, key})) + 1);
    };
    return request;
  }

  std::unique_ptr<CalvinCluster> cluster_;
  int table_ = -1;
};

TEST_F(CalvinExtendedTest, EpochBatchingBoundsLatencyFromBelow) {
  SetUpCluster(1, 1, /*epoch_us=*/20000);
  const uint64_t t0 = MonotonicNanos();
  cluster_->Execute(Increment(1));
  const uint64_t latency_us = (MonotonicNanos() - t0) / 1000;
  // A transaction cannot commit before the next epoch boundary.
  EXPECT_GE(latency_us, 1000u);
}

TEST_F(CalvinExtendedTest, ConflictingIncrementsAllApply) {
  SetUpCluster(2, 2, 300);
  constexpr int kClients = 4;
  constexpr int kPerClient = 60;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerClient; ++i) {
        cluster_->Execute(Increment(7));  // single hot key
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  Row row;
  ASSERT_TRUE(cluster_->PeekRow(table_, 7, &row));
  EXPECT_EQ(ValueOf(row), 100u + kClients * kPerClient);
}

TEST_F(CalvinExtendedTest, MultiPartitionReadExchangeComputesCorrectSum) {
  SetUpCluster(3, 2, 300);
  // A transaction reading one key per node and writing their sum into a
  // fourth record exercises the cross-node read push.
  cluster_->Stop();
  cluster_ = nullptr;
  SetUpCluster(3, 2, 300);
  auto request = std::make_shared<TxnRequest>();
  const int table = table_;
  request->read_set = {{table, 0}, {table, 1}, {table, 2}};
  request->write_set = {{table, 3}};
  request->home_node = cluster_->PartitionOf(table, 3);
  request->logic = [table](const ReadMap& reads, WriteMap* writes) {
    uint64_t sum = 0;
    for (uint64_t k = 0; k < 3; ++k) {
      sum += ValueOf(reads.at(RecordKey{table, k}));
    }
    (*writes)[RecordKey{table, 3}] = RowOf(sum);
  };
  cluster_->Execute(request);
  Row row;
  ASSERT_TRUE(cluster_->PeekRow(table_, 3, &row));
  EXPECT_EQ(ValueOf(row), 300u);
}

TEST_F(CalvinExtendedTest, ReadersDoNotBlockDistinctWriters) {
  SetUpCluster(2, 2, 300);
  // Writers on key A and readers on key B proceed independently; all
  // complete within a few epochs.
  std::atomic<int> done{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 20; ++i) {
        if (c % 2 == 0) {
          cluster_->Execute(Increment(2));
        } else {
          auto request = std::make_shared<TxnRequest>();
          const int table = table_;
          request->read_set = {{table, 5}};
          request->home_node = cluster_->PartitionOf(table, 5);
          request->logic = [table](const ReadMap& reads, WriteMap*) {
            EXPECT_EQ(ValueOf(reads.at(RecordKey{table, 5})), 100u);
          };
          cluster_->Execute(request);
        }
        ++done;
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  EXPECT_EQ(done.load(), 80);
  Row row;
  ASSERT_TRUE(cluster_->PeekRow(table_, 2, &row));
  EXPECT_EQ(ValueOf(row), 140u);
}

TEST_F(CalvinExtendedTest, RandomMixedShapesConserveMoney) {
  SetUpCluster(3, 2, 200);
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Xoshiro256 rng(41 + static_cast<uint64_t>(c));
      for (int i = 0; i < 40; ++i) {
        // Random multi-record transfer: move 1 unit along a random chain
        // of 2-4 records (conserving the total).
        const int chain = 2 + static_cast<int>(rng.NextBounded(3));
        std::vector<uint64_t> keys;
        while (static_cast<int>(keys.size()) < chain) {
          const uint64_t k = rng.NextBounded(64);
          bool dup = false;
          for (uint64_t e : keys) {
            dup |= (e == k);
          }
          if (!dup) {
            keys.push_back(k);
          }
        }
        auto request = std::make_shared<TxnRequest>();
        const int table = table_;
        for (uint64_t k : keys) {
          request->read_set.push_back({table, k});
          request->write_set.push_back({table, k});
        }
        request->home_node = cluster_->PartitionOf(table, keys[0]);
        request->logic = [table, keys](const ReadMap& reads,
                                       WriteMap* writes) {
          const uint64_t first = ValueOf(reads.at(RecordKey{table, keys[0]}));
          if (first == 0) {
            return;
          }
          (*writes)[RecordKey{table, keys[0]}] = RowOf(first - 1);
          const uint64_t last =
              ValueOf(reads.at(RecordKey{table, keys.back()}));
          (*writes)[RecordKey{table, keys.back()}] = RowOf(last + 1);
        };
        cluster_->Execute(request);
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  // Chain transfers span partitions; drain the non-home participants'
  // write installation before auditing the total.
  cluster_->Quiesce();
  uint64_t sum = 0;
  for (uint64_t k = 0; k < 64; ++k) {
    Row row;
    ASSERT_TRUE(cluster_->PeekRow(table_, k, &row));
    sum += ValueOf(row);
  }
  EXPECT_EQ(sum, 64u * 100u);
}

}  // namespace
}  // namespace calvin
}  // namespace drtm
