#include "src/calvin/calvin.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "src/common/rand.h"

namespace drtm {
namespace calvin {
namespace {

Row RowOf(uint64_t v) {
  Row row(8);
  std::memcpy(row.data(), &v, 8);
  return row;
}

uint64_t ValueOf(const Row& row) {
  uint64_t v = 0;
  if (row.size() >= 8) {
    std::memcpy(&v, row.data(), 8);
  }
  return v;
}

class CalvinTest : public ::testing::Test {
 protected:
  void SetUpCluster(int nodes, int workers = 2, uint64_t epoch_us = 500) {
    CalvinCluster::Config config;
    config.num_nodes = nodes;
    config.workers_per_node = workers;
    config.epoch_us = epoch_us;
    config.latency_scale = 0.0;
    cluster_ = std::make_unique<CalvinCluster>(config);
    table_ = cluster_->AddTable(
        [nodes](uint64_t key) { return static_cast<int>(key % nodes); });
    for (uint64_t k = 0; k < 32; ++k) {
      cluster_->LoadRow(table_, k, RowOf(1000));
    }
    cluster_->Start();
  }

  void TearDown() override {
    if (cluster_ != nullptr) {
      cluster_->Stop();
    }
  }

  std::shared_ptr<TxnRequest> MakeTransfer(uint64_t from, uint64_t to,
                                           uint64_t amount) {
    auto request = std::make_shared<TxnRequest>();
    request->read_set = {{table_, from}, {table_, to}};
    request->write_set = {{table_, from}, {table_, to}};
    request->home_node = cluster_->PartitionOf(table_, from);
    const int table = table_;
    request->logic = [table, from, to, amount](const ReadMap& reads,
                                               WriteMap* writes) {
      const uint64_t a = ValueOf(reads.at(RecordKey{table, from}));
      const uint64_t b = ValueOf(reads.at(RecordKey{table, to}));
      if (a < amount) {
        return;
      }
      (*writes)[RecordKey{table, from}] = RowOf(a - amount);
      (*writes)[RecordKey{table, to}] = RowOf(b + amount);
    };
    return request;
  }

  uint64_t Balance(uint64_t key) {
    Row row;
    EXPECT_TRUE(cluster_->PeekRow(table_, key, &row));
    return ValueOf(row);
  }

  std::unique_ptr<CalvinCluster> cluster_;
  int table_ = -1;
};

TEST_F(CalvinTest, SinglePartitionTransaction) {
  SetUpCluster(1);
  cluster_->Execute(MakeTransfer(1, 2, 100));
  EXPECT_EQ(Balance(1), 900u);
  EXPECT_EQ(Balance(2), 1100u);
  EXPECT_EQ(cluster_->committed(), 1u);
}

TEST_F(CalvinTest, DistributedTransaction) {
  SetUpCluster(2);
  cluster_->Execute(MakeTransfer(0, 1, 300));  // key 0 -> node 0, 1 -> node 1
  cluster_->Quiesce();  // node 1's credit installs after the home commit
  EXPECT_EQ(Balance(0), 700u);
  EXPECT_EQ(Balance(1), 1300u);
}

TEST_F(CalvinTest, DeterministicLogicConditionalNoOp) {
  SetUpCluster(2);
  cluster_->Execute(MakeTransfer(0, 1, 10000));  // insufficient funds
  EXPECT_EQ(Balance(0), 1000u);
  EXPECT_EQ(Balance(1), 1000u);
  EXPECT_EQ(cluster_->committed(), 1u);  // still a (no-op) commit
}

TEST_F(CalvinTest, ConcurrentTransfersConserveMoney) {
  SetUpCluster(3, /*workers=*/2, /*epoch_us=*/200);
  constexpr int kClients = 6;
  constexpr int kPerClient = 50;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Xoshiro256 rng(7 + static_cast<uint64_t>(c));
      for (int i = 0; i < kPerClient; ++i) {
        const uint64_t from = rng.NextBounded(32);
        uint64_t to = rng.NextBounded(32);
        if (to == from) {
          to = (to + 1) % 32;
        }
        cluster_->Execute(MakeTransfer(from, to, 1 + rng.NextBounded(3)));
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  // Execute() returns at the home node's commit; a transfer's remote
  // credit may still be in a peer worker's hands. Drain before summing.
  cluster_->Quiesce();
  EXPECT_EQ(cluster_->committed(),
            static_cast<uint64_t>(kClients) * kPerClient);
  uint64_t sum = 0;
  for (uint64_t k = 0; k < 32; ++k) {
    sum += Balance(k);
  }
  EXPECT_EQ(sum, 32u * 1000u);
}

TEST_F(CalvinTest, WritesToNewKeysAreInserted) {
  SetUpCluster(2);
  auto request = std::make_shared<TxnRequest>();
  const int table = table_;
  request->read_set = {};
  request->write_set = {{table, 100}, {table, 101}};
  request->home_node = cluster_->PartitionOf(table_, 100);
  request->logic = [table](const ReadMap&, WriteMap* writes) {
    (*writes)[RecordKey{table, 100}] = RowOf(5);
    (*writes)[RecordKey{table, 101}] = RowOf(6);
  };
  cluster_->Execute(request);
  cluster_->Quiesce();  // key 101 lives off the home node
  EXPECT_EQ(Balance(100), 5u);
  EXPECT_EQ(Balance(101), 6u);
}

TEST_F(CalvinTest, ReadSharingAllowsParallelReads) {
  SetUpCluster(2);
  // Many read-only transactions over the same key must all complete
  // (shared locks do not serialize readers).
  std::atomic<int> done{0};
  constexpr int kReaders = 20;
  std::vector<std::thread> clients;
  for (int c = 0; c < kReaders; ++c) {
    clients.emplace_back([&] {
      auto request = std::make_shared<TxnRequest>();
      const int table = table_;
      request->read_set = {{table, 3}};
      request->write_set = {};
      request->home_node = cluster_->PartitionOf(table_, 3);
      request->logic = [table](const ReadMap& reads, WriteMap*) {
        EXPECT_EQ(ValueOf(reads.at(RecordKey{table, 3})), 1000u);
      };
      cluster_->Execute(request);
      ++done;
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  EXPECT_EQ(done.load(), kReaders);
}

TEST(CalvinKey, OrderingAndHashing) {
  RecordKey a{1, 5};
  RecordKey b{1, 6};
  RecordKey c{2, 0};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a == (RecordKey{1, 5}));
  RecordKeyHash hash;
  EXPECT_NE(hash(a), hash(b));
}

}  // namespace
}  // namespace calvin
}  // namespace drtm
