// Chaos subsystem tests (src/chaos): fault-plan determinism and script
// round-tripping, exact-arrival injector firing, NIC-down windows, the
// invariant oracle, and whole-run determinism of the chaos harness —
// the same seed must produce a byte-identical fault schedule and the
// same run outcome, which is what makes `chaos_runner --seed <s>` a
// one-command reproduction of any failure.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/chaos/chaos_run.h"
#include "src/chaos/fault_plan.h"
#include "src/chaos/injector.h"
#include "src/chaos/invariants.h"
#include "src/htm/htm.h"
#include "src/store/kv_layout.h"
#include "src/txn/cluster.h"
#include "src/txn/lock_state.h"

namespace drtm {
namespace chaos {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Injector::Global().Disarm();
    Injector::Global().SetCrashHandler(nullptr);
    Injector::Global().SetReviveHandler(nullptr);
    Injector::Global().SetSkewHandler(nullptr);
  }
};

// --- fault plans -----------------------------------------------------------

TEST_F(ChaosTest, FromSeedIsByteIdentical) {
  PlanParams params;
  params.num_nodes = 3;
  params.events = 16;
  params.horizon_ops = 5000;
  const FaultPlan a = FaultPlan::FromSeed(42, params);
  const FaultPlan b = FaultPlan::FromSeed(42, params);
  EXPECT_EQ(a.ToScript(), b.ToScript());
  EXPECT_FALSE(a.events().empty());
}

TEST_F(ChaosTest, FromSeedDifferentSeedsDiffer) {
  PlanParams params;
  const FaultPlan a = FaultPlan::FromSeed(1, params);
  const FaultPlan b = FaultPlan::FromSeed(2, params);
  EXPECT_NE(a.ToScript(), b.ToScript());
}

TEST_F(ChaosTest, ScriptRoundTrips) {
  PlanParams params;
  params.events = 20;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const FaultPlan plan = FaultPlan::FromSeed(seed, params);
    FaultPlan reparsed;
    std::string error;
    ASSERT_TRUE(FaultPlan::Parse(plan.ToScript(), &reparsed, &error)) << error;
    EXPECT_EQ(reparsed.seed(), seed);
    EXPECT_EQ(reparsed.ToScript(), plan.ToScript());
  }
}

TEST_F(ChaosTest, ParseRejectsMalformedScript) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(FaultPlan::Parse(
      "event point=rdma.read.wqe arrival=1 kind=not_a_kind node=0 arg=0\n",
      &plan, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(ChaosTest, FromSeedNeverCrashesNodeZeroAndPairsRevives) {
  PlanParams params;
  params.events = 24;
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    const FaultPlan plan = FaultPlan::FromSeed(seed, params);
    int crashes = 0;
    int revives = 0;
    for (const FaultEvent& event : plan.events()) {
      if (event.kind == FaultKind::kCrashNode) {
        ++crashes;
        EXPECT_GE(event.node, 1) << "node 0 must never be crashed";
      } else if (event.kind == FaultKind::kReviveNode) {
        ++revives;
      }
    }
    EXPECT_EQ(crashes, revives) << "every crash needs a paired revive";
  }
}

// --- injector --------------------------------------------------------------

TEST_F(ChaosTest, InjectorFiresAtExactArrival) {
  Injector& injector = Injector::Global();
  const uint32_t point = injector.Point("test.exact_arrival");
  FaultPlan plan;
  plan.Add(FaultEvent{"test.exact_arrival", 3, FaultKind::kDropOp, -1, 0});
  injector.Arm(plan);
  EXPECT_EQ(Check(point, 0).kind, Decision::Kind::kNone);
  EXPECT_EQ(Check(point, 0).kind, Decision::Kind::kNone);
  EXPECT_EQ(Check(point, 0).kind, Decision::Kind::kFailOp);
  EXPECT_EQ(Check(point, 0).kind, Decision::Kind::kNone);
  EXPECT_EQ(injector.firing_count(), 1u);
  EXPECT_NE(injector.FiringLog().find("test.exact_arrival"),
            std::string::npos);
}

TEST_F(ChaosTest, InjectorArmResetsArrivalCounters) {
  Injector& injector = Injector::Global();
  const uint32_t point = injector.Point("test.rearm");
  FaultPlan plan;
  plan.Add(FaultEvent{"test.rearm", 1, FaultKind::kDropOp, -1, 0});
  injector.Arm(plan);
  EXPECT_EQ(Check(point, 0).kind, Decision::Kind::kFailOp);
  injector.Arm(plan);  // re-arm: the same event must fire again
  EXPECT_EQ(Check(point, 0).kind, Decision::Kind::kFailOp);
}

TEST_F(ChaosTest, NicDownWindowDropsFollowingOpsToThatNode) {
  Injector& injector = Injector::Global();
  const uint32_t point = injector.Point("rdma.read.wqe");
  FaultPlan plan;
  plan.Add(FaultEvent{"rdma.read.wqe", 1, FaultKind::kNicDown, 1, 2});
  injector.Arm(plan);
  // The triggering op is dropped and opens a 2-op window for node 1.
  EXPECT_EQ(Check(point, 1).kind, Decision::Kind::kFailOp);
  // Other targets are unaffected while node 1's window drains.
  EXPECT_EQ(Check(point, 0).kind, Decision::Kind::kNone);
  EXPECT_EQ(Check(point, 1).kind, Decision::Kind::kFailOp);
  EXPECT_EQ(Check(point, 1).kind, Decision::Kind::kFailOp);
  EXPECT_EQ(Check(point, 1).kind, Decision::Kind::kNone);
}

TEST_F(ChaosTest, DisarmedCheckIsTransparent) {
  Injector& injector = Injector::Global();
  const uint32_t point = injector.Point("test.disarmed");
  ASSERT_FALSE(injector.armed());
  EXPECT_EQ(Check(point, 0).kind, Decision::Kind::kNone);
}

// --- invariant oracle ------------------------------------------------------

TEST_F(ChaosTest, ConservationCheckPassesAndFails) {
  InvariantChecker ok_checker;
  ok_checker.CheckConservation("total", 100, 100);
  EXPECT_TRUE(ok_checker.report().ok());

  InvariantChecker bad_checker;
  bad_checker.CheckConservation("total", 100, 93);
  EXPECT_FALSE(bad_checker.report().ok());
  EXPECT_NE(bad_checker.report().ToString().find("conservation"),
            std::string::npos);
}

TEST_F(ChaosTest, LeaseSafetyCheckFlagsAnomalies) {
  InvariantChecker checker;
  checker.CheckLeaseSafety(0, 500);
  EXPECT_TRUE(checker.report().ok());
  checker.CheckLeaseSafety(3, 500);
  EXPECT_FALSE(checker.report().ok());
}

TEST_F(ChaosTest, LedgerAndCleanRecoveryChecksScanTheStore) {
  txn::ClusterConfig config;
  config.num_nodes = 2;
  config.workers_per_node = 1;
  config.region_bytes = 16 << 20;
  txn::Cluster cluster(config);
  txn::TableSpec spec;
  spec.value_size = 8;
  spec.main_buckets = 1 << 6;
  spec.capacity = 1 << 10;
  spec.partition = [](uint64_t key) { return static_cast<int>(key % 2); };
  const int table = cluster.AddTable(spec);
  cluster.Start();
  const int64_t value = 77;
  ASSERT_TRUE(cluster.hash_table(1, table)->Insert(1, &value));

  InvariantChecker good;
  good.CheckCommitLedger(&cluster, table, {{1, 77}});
  good.CheckCleanRecovery(&cluster, {{table, 1}}, {});
  EXPECT_TRUE(good.report().ok());

  InvariantChecker lost;
  lost.CheckCommitLedger(&cluster, table, {{1, 78}});
  EXPECT_FALSE(lost.report().ok());
  EXPECT_NE(lost.report().ToString().find("lost commit"), std::string::npos);

  // Leak a write lock; the clean-recovery family must flag it.
  store::ClusterHashTable* host = cluster.hash_table(1, table);
  const uint64_t entry = host->FindEntry(1);
  htm::StrongStore(host->StatePtr(entry), txn::MakeWriteLocked(0));
  InvariantChecker leaked;
  leaked.CheckCleanRecovery(&cluster, {{table, 1}}, {});
  EXPECT_FALSE(leaked.report().ok());
  EXPECT_NE(leaked.report().ToString().find("write-locked"),
            std::string::npos);
  htm::StrongStore(host->StatePtr(entry), txn::kStateInit);
  cluster.Stop();
}

// --- whole-run determinism -------------------------------------------------

ChaosRunConfig DeterministicConfig() {
  ChaosRunConfig config;
  config.workload = ChaosWorkload::kTransfer;
  config.nodes = 2;
  config.workers_per_node = 1;
  config.ops_per_worker = 150;
  config.single_threaded = true;
  // Crash choreography and skew run on operator threads whose timing is
  // not part of the deterministic contract; keep the plan to data-plane
  // faults (drops, torn writes, delays, NIC windows).
  config.plan_params.allow_crash = false;
  config.plan_params.allow_skew = false;
  config.plan_params.events = 10;
  config.plan_params.horizon_ops = 600;
  return config;
}

TEST_F(ChaosTest, SameSeedSameScheduleSameOutcome) {
  const ChaosRunConfig config = DeterministicConfig();
  const ChaosRunResult a = RunChaos(11, config);
  const ChaosRunResult b = RunChaos(11, config);
  ASSERT_TRUE(a.ok()) << a.Artifact();
  EXPECT_EQ(a.plan_script, b.plan_script);
  EXPECT_EQ(a.firing_log, b.firing_log);
  EXPECT_EQ(a.attempted, b.attempted);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.state_digest, b.state_digest);
}

TEST_F(ChaosTest, DifferentSeedsDifferentSchedule) {
  const ChaosRunConfig config = DeterministicConfig();
  const ChaosRunResult a = RunChaos(11, config);
  const ChaosRunResult b = RunChaos(12, config);
  EXPECT_NE(a.plan_script, b.plan_script);
}

TEST_F(ChaosTest, ScriptReplayReproducesSeedRun) {
  const ChaosRunConfig config = DeterministicConfig();
  const ChaosRunResult from_seed = RunChaos(11, config);
  ChaosRunConfig replay = config;
  replay.plan_script = from_seed.plan_script;  // the artifact repro path
  const ChaosRunResult replayed = RunChaos(11, replay);
  EXPECT_EQ(replayed.plan_script, from_seed.plan_script);
  EXPECT_EQ(replayed.firing_log, from_seed.firing_log);
  EXPECT_EQ(replayed.committed, from_seed.committed);
  EXPECT_EQ(replayed.state_digest, from_seed.state_digest);
}

TEST_F(ChaosTest, ScriptedCrashAndReviveRecoversCleanly) {
  ChaosRunConfig config;
  config.workload = ChaosWorkload::kTransfer;
  config.nodes = 3;
  config.workers_per_node = 2;
  config.ops_per_worker = 200;
  config.plan_script =
      "# chaos plan seed=0 events=2\n"
      "event point=rdma.read.wqe arrival=40 kind=crash node=1 arg=0\n"
      "event point=rdma.read.wqe arrival=900 kind=revive node=1 arg=0\n";
  const ChaosRunResult result = RunChaos(5, config);
  EXPECT_TRUE(result.ok()) << result.Artifact();
  EXPECT_GE(result.crashes, 1u);
}

TEST_F(ChaosTest, GroupCommitCrashAtEpochSealHoldsInvariants) {
  // A power cut inside the epoch seal leaves the victim's log with an
  // unsealed tail; recovery must treat it as invisible (no half-epoch
  // redo) and conservation must still hold after the revive.
  ChaosRunConfig config;
  config.workload = ChaosWorkload::kTransfer;
  config.nodes = 3;
  config.workers_per_node = 2;
  config.ops_per_worker = 200;
  config.group_commit = true;
  config.plan_script =
      "# chaos plan seed=0 events=2\n"
      "event point=log.epoch.seal arrival=6 kind=crash node=1 arg=0\n"
      "event point=rdma.read.wqe arrival=900 kind=revive node=1 arg=0\n";
  const ChaosRunResult result = RunChaos(7, config);
  EXPECT_TRUE(result.ok()) << result.Artifact();
  EXPECT_GE(result.crashes, 1u);
}

TEST_F(ChaosTest, GroupCommitLostFlushDoorbellHeals) {
  // Dropping a flush submission loses one doorbell; the next epoch's
  // cumulative end-LSN covers it, so commits keep acknowledging and the
  // invariant sweep stays green.
  ChaosRunConfig config;
  config.workload = ChaosWorkload::kTransfer;
  config.nodes = 3;
  config.workers_per_node = 2;
  config.ops_per_worker = 200;
  config.group_commit = true;
  config.plan_script =
      "# chaos plan seed=0 events=2\n"
      "event point=log.epoch.flush arrival=2 kind=drop node=-1 arg=0\n"
      "event point=log.epoch.flush arrival=5 kind=drop node=-1 arg=0\n";
  const ChaosRunResult result = RunChaos(9, config);
  EXPECT_TRUE(result.ok()) << result.Artifact();
}

TEST_F(ChaosTest, ArtifactCarriesReproLine) {
  const ChaosRunConfig config = DeterministicConfig();
  const ChaosRunResult result = RunChaos(11, config);
  const std::string artifact = result.Artifact();
  EXPECT_NE(artifact.find("chaos_runner"), std::string::npos);
  EXPECT_NE(artifact.find("--seed 11"), std::string::npos);
  EXPECT_NE(artifact.find("chaos plan"), std::string::npos);
}

}  // namespace
}  // namespace chaos
}  // namespace drtm
